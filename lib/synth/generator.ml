(** YarpGen-style random NF generator guided by corpus statistics (§3.2).

    Programs are generated top-down from weighted production rules whose
    weights come from an {!Ast_stats.t} profile, then wrapped in Click
    Element classes (packet handler, Packet/WritablePacket field access),
    exactly the customization the paper applies to YarpGen.  Generated
    programs are well-formed (locals defined before use, loop bounds
    constant) so they can be interpreted, lowered and compiled. *)

open Nf_lang

type config = {
  stats : Ast_stats.t;
  max_depth : int;  (** nesting depth for if/for *)
  seed : int;
}

let default_config stats = { stats; max_depth = 3; seed = 101 }

type env = {
  rng : Util.Rng.t;
  cfg : config;
  mutable locals : string list;
  mutable n_locals : int;
  scalars : string list;
  arrays : (string * int) list;
  maps : string list;  (** maps with a (find, read-field) protocol *)
  expr_scratch : float array;  (** reusable copy of [stats.expr_leaves] *)
  stmt_scratch : float array;  (** reusable copy of [stats.stmt_kinds] *)
}

(* expression and statement weights are tweaked (entries zeroed) before
   every draw, thousands of times per program; refreshing a per-env
   scratch array avoids an [Array.copy] allocation at each site.  The
   draw itself consumes the weights before any recursion, so reuse is
   safe. *)
let refresh scratch src =
  Array.blit src 0 scratch 0 (Array.length src);
  scratch

(* local names are drawn thousands of times per batch; plain concatenation
   is several times cheaper than [Printf.sprintf] and yields the same
   strings *)
let fresh_local env =
  let name = "v" ^ string_of_int env.n_locals in
  env.n_locals <- env.n_locals + 1;
  env.locals <- name :: env.locals;
  name

let pick_weighted env weights values =
  values.(Util.Rng.weighted_index env.rng weights)

let pick_field env = pick_weighted env env.cfg.stats.Ast_stats.hdr_fields Ast_stats.all_fields

let gen_const env =
  if Util.Rng.bernoulli env.rng env.cfg.stats.Ast_stats.const_small then
    Ast.Int (Util.Rng.int env.rng 256)
  else if Util.Rng.bool env.rng then Ast.Int (256 + Util.Rng.int env.rng 65280)
  else Ast.Int (65536 + Util.Rng.int env.rng 0xffff0)

let rec gen_expr env depth =
  let leaf () =
    let weights = refresh env.expr_scratch env.cfg.stats.Ast_stats.expr_leaves in
    (* disable unavailable leaves *)
    if env.locals = [] then weights.(1) <- 0.0;
    if env.scalars = [] then weights.(2) <- 0.0;
    match Util.Rng.weighted_index env.rng weights with
    | 0 -> gen_const env
    | 1 -> Ast.Local (Util.Rng.choose env.rng env.locals)
    | 2 -> Ast.Global (Util.Rng.choose env.rng env.scalars)
    | 3 -> Ast.Hdr (pick_field env)
    | 4 -> Ast.Payload_byte (Ast.Int (Util.Rng.int env.rng 26))
    | _ -> Ast.Packet_len
  in
  if depth <= 0 || Util.Rng.bernoulli env.rng 0.4 then leaf ()
  else begin
    let op = pick_weighted env env.cfg.stats.Ast_stats.binops Ast_stats.all_binops in
    let a = gen_expr env (depth - 1) in
    let b = gen_expr env (depth - 1) in
    (* shifts by bounded constants only, to stay NIC-portable *)
    match op with
    | Ast.Shl | Ast.Shr -> Ast.Bin (op, a, Ast.Int (1 + Util.Rng.int env.rng 7))
    | Ast.Add | Ast.Sub | Ast.Mul | Ast.BAnd | Ast.BOr | Ast.BXor -> Ast.Bin (op, a, b)
  end

let gen_cond env =
  let op = pick_weighted env env.cfg.stats.Ast_stats.cmpops Ast_stats.all_cmpops in
  Ast.Cmp (op, gen_expr env 1, gen_expr env 1)

let rec gen_stmt env depth : Ast.stmt list =
  let stats = env.cfg.stats in
  let weights = refresh env.stmt_scratch stats.Ast_stats.stmt_kinds in
  (* kinds: let set_hdr set_global arr map if for api payload verdict *)
  if env.scalars = [] then weights.(2) <- 0.0;
  if env.arrays = [] then weights.(3) <- 0.0;
  if env.maps = [] then weights.(4) <- 0.0;
  if depth >= env.cfg.max_depth then begin
    weights.(5) <- 0.0;
    weights.(6) <- 0.0
  end;
  weights.(9) <- 0.0;
  (* verdicts added at the end only *)
  match Util.Rng.weighted_index env.rng weights with
  | 0 ->
    let e = gen_expr env 2 in
    [ Build.let_ (fresh_local env) e ]
  | 1 -> [ Build.set_hdr (pick_field env) (gen_expr env 2) ]
  | 2 ->
    let gname = Util.Rng.choose env.rng env.scalars in
    [ Build.set_g gname (gen_expr env 2) ]
  | 3 ->
    let aname, alen = Util.Rng.choose env.rng env.arrays in
    let idx = Ast.Bin (Ast.BAnd, gen_expr env 1, Ast.Int (alen - 1)) in
    if Util.Rng.bool env.rng then [ Build.arr_set aname idx (gen_expr env 2) ]
    else [ Build.let_ (fresh_local env) (Ast.Arr_get (aname, idx)) ]
  | 4 ->
    let m = Util.Rng.choose env.rng env.maps in
    let hit = fresh_local env in
    let v = fresh_local env in
    [ Build.map_find m [ Ast.Hdr Ast.Ip_src; Ast.Hdr Ast.Ip_dst ] hit;
      Build.if_
        (Ast.Cmp (Ast.Ne, Ast.Local hit, Ast.Int 0))
        [ Build.map_read m "val0" v; Build.map_write m "val0" (Ast.Bin (Ast.Add, Ast.Local v, Ast.Int 1)) ]
        [ Build.map_insert m [ Ast.Hdr Ast.Ip_src; Ast.Hdr Ast.Ip_dst ] [ Ast.Int 1 ] ] ]
  | 5 ->
    (* locals introduced inside a branch stay scoped to it so later code
       never reads a conditionally-defined variable *)
    let scope = env.locals in
    let len = max 1 (1 + Util.Rng.int env.rng (int_of_float stats.Ast_stats.mean_branch_len * 2)) in
    let then_branch = List.concat (List.init len (fun _ -> gen_stmt env (depth + 1))) in
    env.locals <- scope;
    let else_branch =
      if Util.Rng.bernoulli env.rng 0.4 then
        List.concat (List.init (max 1 (len / 2)) (fun _ -> gen_stmt env (depth + 1)))
      else []
    in
    env.locals <- scope;
    [ Build.if_ (gen_cond env) then_branch else_branch ]
  | 6 ->
    let scope = env.locals in
    let bound = 2 + Util.Rng.int env.rng (int_of_float stats.Ast_stats.mean_loop_bound * 2) in
    let len = max 1 (1 + Util.Rng.int env.rng 2) in
    let var = fresh_local env in
    let body = List.concat (List.init len (fun _ -> gen_stmt env (depth + 1))) in
    env.locals <- scope;
    [ Build.for_ var (Ast.Int 0) (Ast.Int bound) body ]
  | 7 ->
    let choice = Util.Rng.int env.rng 4 in
    if choice = 0 then [ Build.api_stmt "checksum_update_ip" [] ]
    else if choice = 1 then
      [ Build.let_ (fresh_local env) (Ast.Api_expr ("hash32", [ gen_expr env 1; gen_expr env 1 ])) ]
    else if choice = 2 then
      [ Build.let_ (fresh_local env) (Ast.Api_expr ("crc16_payload", [ Ast.Int 0; Ast.Int 8 ])) ]
    else [ Build.api_stmt "csum_incr_update" [ gen_expr env 1; gen_expr env 1 ] ]
  | _ -> [ Build.set_payload (Ast.Int (Util.Rng.int env.rng 26)) (gen_expr env 1) ]

(** Generate one element.  Statefulness follows the corpus profile. *)
let generate ?(config : config option) ~(stats : Ast_stats.t) ~seed name =
  let cfg = match config with Some c -> { c with seed } | None -> { (default_config stats) with seed } in
  let rng = Util.Rng.create seed in
  let stateful = Util.Rng.bernoulli rng stats.Ast_stats.stateful_fraction in
  let n_scalars =
    if stateful then max 1 (Util.Rng.int rng (1 + (2 * int_of_float stats.Ast_stats.mean_scalars)))
    else 0
  in
  let n_arrays =
    if stateful then Util.Rng.int rng (1 + (2 * int_of_float (max 1.0 stats.Ast_stats.mean_arrays)))
    else 0
  in
  let with_map = stateful && Util.Rng.bernoulli rng stats.Ast_stats.map_fraction in
  let scalars = List.init n_scalars (fun i -> "g" ^ string_of_int i) in
  let arrays = List.init n_arrays (fun i -> ("tbl" ^ string_of_int i, 256 lsl Util.Rng.int rng 3)) in
  let maps = if with_map then [ "state_map" ] else [] in
  let state =
    List.map (fun s -> Build.scalar s) scalars
    @ List.map (fun (a, len) -> Build.array a len) arrays
    @ (if with_map then
         [ Build.map_decl "state_map" ~key_widths:[ 32; 32 ] ~val_fields:[ ("val0", 32) ]
             ~capacity:(1024 lsl Util.Rng.int rng 3) ]
       else [])
  in
  let env =
    {
      rng;
      cfg;
      locals = [];
      n_locals = 0;
      scalars;
      arrays;
      maps;
      expr_scratch = Array.make (Array.length stats.Ast_stats.expr_leaves) 0.0;
      stmt_scratch = Array.make (Array.length stats.Ast_stats.stmt_kinds) 0.0;
    }
  in
  let len =
    max 3 (int_of_float stats.Ast_stats.mean_handler_len / 2 + Util.Rng.int rng (max 1 (int_of_float stats.Ast_stats.mean_handler_len)))
  in
  let body = List.concat (List.init len (fun _ -> gen_stmt env 0)) in
  let verdict =
    if Util.Rng.bernoulli rng 0.85 then [ Build.emit 0 ]
    else [ Build.if_ (gen_cond env) [ Build.emit 0 ] [ Build.drop ] ]
  in
  Build.element name ~state (body @ verdict)

(** The default guidance profile.  [Corpus.table2 ()] rebuilds all 17
    corpus elements and [Ast_stats.of_corpus] walks every handler, so the
    result — a pure function of the static corpus — is computed once and
    shared across batches. *)
let corpus_stats = lazy (Ast_stats.of_corpus (Corpus.table2 ()))

(** Generate a batch of [n] elements with distinct seeds.  Each element is
    deterministic in its own derived seed, so the batch fans out on the
    domain pool without changing a single generated program. *)
let batch ?(stats : Ast_stats.t option) ?(seed = 1000) n =
  let stats = match stats with Some s -> s | None -> Lazy.force corpus_stats in
  (* ~30 us per program: small batches stay serial under cost-aware
     chunking *)
  Array.to_list
    (Util.Pool.parallel_init ~cost:30.0 n (fun k ->
         generate ~stats ~seed:(seed + (k * 7919)) (Printf.sprintf "syn_%d" k)))

(** Baseline batch: ignores the corpus distribution (uniform weights). *)
let baseline_batch ?(seed = 2000) n =
  Array.to_list
    (Util.Pool.parallel_init ~cost:30.0 n (fun k ->
         generate ~stats:Ast_stats.uniform ~seed:(seed + (k * 7919)) (Printf.sprintf "base_%d" k)))
