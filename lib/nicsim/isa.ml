(** SmartNIC instruction set, Netronome-NFP flavored.

    The flow-processing cores are simple RISC engines with a few quirks
    that make the IR→assembly mapping non-trivial (and therefore worth
    learning, §3.2):

    - ALU operations can fuse an operand shift ([Alu_shf]);
    - there is no single-cycle multiply: multiplies expand to [Mul_step]
      sequences;
    - immediates above 16 bits need a separate [Immed] instruction;
    - byte-field extraction/insertion ([Ld_field]) covers C zext/trunc and
      packet header slots held in transfer registers;
    - compares fuse with branches ([Br_cmp]);
    - memory operations name a symbol whose hierarchy level (and hence
      latency) is decided by data placement at run time. *)

type mem_dir = Read | Write

type op =
  | Alu  (** add/sub/and/or/xor on registers/small immediates *)
  | Alu_shf  (** ALU with fused operand shift *)
  | Shf  (** plain shift/rotate *)
  | Immed  (** materialize a large immediate *)
  | Ld_field  (** byte field extract/insert; packet/xfer register access *)
  | Mul_step  (** one step of a multi-step multiply *)
  | Mem of mem_dir * string  (** access to the named stateful structure *)
  | Local_mem of mem_dir  (** spilled-local access (per-core LMEM) *)
  | Br  (** branch (conditional branches are fused compare+branch) *)
  | Br_cmp  (** fused compare-and-branch *)
  | Csr  (** control/status register access (IO, doorbells) *)
  | Accel_call of string  (** hand-off to an ASIC accelerator *)
  | Nop

type instr = { op : op }

let mk op = { op }

(** Issue cost in core cycles, excluding memory wait time (added by the
    performance model from the placement). *)
let issue_cycles i =
  match i.op with
  | Alu | Alu_shf | Shf | Ld_field | Nop -> 1
  | Immed -> 1
  | Mul_step -> 1
  | Mem (_, _) -> 2  (* command formation; latency modeled separately *)
  | Local_mem _ -> 1
  | Br | Br_cmp -> 1
  | Csr -> 2
  | Accel_call _ -> 2

let is_mem i = match i.op with Mem (_, _) -> true | _ -> false
let is_local_mem i = match i.op with Local_mem _ -> true | _ -> false

let mem_target i = match i.op with Mem (_, g) -> Some g | _ -> None

(** "Compute instruction" in the paper's sense: everything the core's ALU
    pipeline executes, i.e. non-memory instructions. *)
let is_compute i = not (is_mem i || is_local_mem i)

let op_str = function
  | Alu -> "alu"
  | Alu_shf -> "alu_shf"
  | Shf -> "shf"
  | Immed -> "immed"
  | Ld_field -> "ld_field"
  | Mul_step -> "mul_step"
  | Mem (Read, g) -> "mem[read," ^ g ^ "]"
  | Mem (Write, g) -> "mem[write," ^ g ^ "]"
  | Local_mem Read -> "lmem[read]"
  | Local_mem Write -> "lmem[write]"
  | Br -> "br"
  | Br_cmp -> "br_cmp"
  | Csr -> "csr"
  | Accel_call a -> "accel[" ^ a ^ "]"
  | Nop -> "nop"

(* counting folds: these run per compiled block in the dataset pipeline,
   so they avoid materializing the filtered lists *)
let count p instrs = List.fold_left (fun acc i -> if p i then acc + 1 else acc) 0 instrs
let count_compute instrs = count is_compute instrs
let count_mem instrs = count is_mem instrs
let count_local_mem instrs = count is_local_mem instrs
