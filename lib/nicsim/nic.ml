(** End-to-end NIC evaluation pipeline.

    [port] is the "manually port and benchmark" step of the paper's
    methodology: lower an element, compile it with NFCC-sim under a porting
    configuration (accelerators, placement, packing), profile it under a
    workload with NIC data-structure semantics, and measure operating
    points on the multicore model.  Experiments and Clara's training both
    go through this entry point. *)

open Nf_lang

(** A porting configuration — the knobs the paper's insights tune. *)
type port_config = {
  accel_apis : string list;  (** API calls offloaded to ASIC engines *)
  placement : Mem.placement option;  (** None = naive all-EMEM *)
  packs : Perf.packs;  (** coalesced variable packs *)
}

let naive_port = { accel_apis = []; placement = None; packs = [] }

type ported = {
  elt : Ast.element;
  spec : Workload.spec;
  config : port_config;
  ir : Nf_ir.Ir.func;
  compiled : Nfcc.compiled;
  profile : Interp.profile;
  demand : Perf.demand;
}

let state_names (elt : Ast.element) = List.map Ast.state_name elt.Ast.state

let state_sizes (elt : Ast.element) =
  List.map (fun d -> (Ast.state_name d, Ast.state_size_bytes d)) elt.Ast.state

(** Lower, compile, profile and assemble the demand of an element under a
    porting configuration and workload.

    [packets] lets a caller that benchmarks many elements under one spec
    generate the trace once and replay it (pass fresh
    {!Nf_lang.Packet.copy} copies — the interpreter mutates packets).
    The list must be the trace [Workload.generate spec] would produce;
    omitted, it is generated here. *)
let port ?(config = naive_port) ?packets (elt : Ast.element) (spec : Workload.spec) : ported =
  let ir = Nf_frontend.Lower.lower_element elt in
  let nfcc_config = Accel.accel_config config.accel_apis in
  let compiled = Nfcc.compile ~config:nfcc_config ir in
  let interp = Interp.create ~mode:State.Nic elt in
  let packets = match packets with Some ps -> ps | None -> Workload.generate spec in
  let profile = Interp.run interp packets in
  let placement =
    match config.placement with
    | Some p -> p
    | None -> Mem.naive_placement (state_names elt)
  in
  let demand = Perf.demand_of ~packs:config.packs ~placement ~spec elt compiled profile in
  { elt; spec; config; ir; compiled; profile; demand }

(** Re-derive the demand of an already-ported NF under a new placement or
    packing without re-running the compiler or the interpreter (neither
    depends on those knobs).  Accelerator changes do require a full
    [port]. *)
let reconfigure (p : ported) (config : port_config) : ported =
  if config.accel_apis <> p.config.accel_apis then port ~config p.elt p.spec
  else begin
    let placement =
      match config.placement with
      | Some pl -> pl
      | None -> Mem.naive_placement (state_names p.elt)
    in
    let demand =
      Perf.demand_of ~packs:config.packs ~placement ~spec:p.spec p.elt p.compiled p.profile
    in
    { p with config; demand }
  end

let measure ?(nic = Multicore.default_nic) ?cores (p : ported) =
  let cores = match cores with Some c -> c | None -> nic.Multicore.n_cores in
  Multicore.measure ~nic p.demand ~cores

let sweep ?(nic = Multicore.default_nic) (p : ported) = Multicore.sweep ~nic p.demand

let optimal_cores ?(nic = Multicore.default_nic) (p : ported) =
  Multicore.optimal_cores ~nic p.demand

(** Peak throughput across the core sweep, with its latency. *)
let peak ?(nic = Multicore.default_nic) (p : ported) =
  let points = sweep ~nic p in
  List.fold_left
    (fun acc pt ->
      if pt.Multicore.throughput_mpps > acc.Multicore.throughput_mpps then pt else acc)
    (List.hd points) points
