(* Process-wide multiplicative perturbation of simulated ground truth.
   Scales live in atomics as int-encoded millis so reads on the shadow
   path are one atomic load with no float boxing in the common
   (inactive) case. *)

let encode s = int_of_float (Float.round (s *. 1000.0))
let decode i = float_of_int i /. 1000.0

let compute_millis = Atomic.make (encode 1.0)
let memory_millis = Atomic.make (encode 1.0)

let set ?compute_scale ?memory_scale () =
  (match compute_scale with
  | Some s ->
      if not (Float.is_finite s && s > 0.0) then
        invalid_arg "Nicsim.Perturb.set: compute_scale must be finite and positive";
      Atomic.set compute_millis (encode s)
  | None -> ());
  match memory_scale with
  | Some s ->
      if not (Float.is_finite s && s > 0.0) then
        invalid_arg "Nicsim.Perturb.set: memory_scale must be finite and positive";
      Atomic.set memory_millis (encode s)
  | None -> ()

let reset () =
  Atomic.set compute_millis (encode 1.0);
  Atomic.set memory_millis (encode 1.0)

let compute_scale () = decode (Atomic.get compute_millis)
let memory_scale () = decode (Atomic.get memory_millis)

let active () =
  Atomic.get compute_millis <> encode 1.0 || Atomic.get memory_millis <> encode 1.0
