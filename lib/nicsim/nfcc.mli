(** NFCC-sim: the closed-source SmartNIC compiler stand-in.

    Performs contextual instruction selection and peephole optimization
    (shift-ALU fusion, compare-branch fusion, load-absorbed widenings,
    magnitude-dependent immediates, multi-step multiplies, address
    folding, register allocation with LMEM spills, and burst merging of
    adjacent same-structure accesses).  Per-block output size is a
    non-linear function of the instruction *sequence* and of
    whole-function register pressure — the reason Clara mimics this
    compiler with an LSTM instead of a cost table (§3.2). *)

(** Compilation options: [accel api] returns true when calls to [api] are
    handed to an ASIC engine instead of being expanded inline. *)
type config = { register_budget : int; accel : string -> bool }

val default_config : config

type compiled_block = { bid : int; src_sid : int; instrs : Isa.instr list }

type compiled = { source : Nf_ir.Ir.func; cblocks : compiled_block array }

(** Per-slot load/store counts, the register allocator's input. *)
val slot_usage : Nf_ir.Ir.func -> (string, int) Hashtbl.t

(** The stack slots kept in registers: the [budget] most-used, ties broken
    deterministically by name. *)
val register_allocated : Nf_ir.Ir.func -> budget:int -> string list

(** Compile a function to NIC assembly. *)
val compile : ?config:config -> Nf_ir.Ir.func -> compiled

(** The retained pre-optimization compiler (quadratic accumulator, linear
    register lookups): the baseline `bench/main.exe parallel` times
    {!compile} against.  Output is identical to {!compile}. *)
val compile_reference : ?config:config -> Nf_ir.Ir.func -> compiled

(** All emitted instructions in block order. *)
val all_instrs : compiled -> Isa.instr list

val count_compute : compiled -> int

(** Stateful memory operations — excludes packet-buffer traffic, which the
    paper does not count as NF state accesses. *)
val count_mem : compiled -> int

val count_local_mem : compiled -> int
val count_total : compiled -> int

(** Memory accesses per stateful structure across the function. *)
val mem_by_target : compiled -> (string * int) list
