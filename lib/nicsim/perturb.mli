(** Process-wide multiplicative perturbation of simulated ground truth.

    Test and bench hook for drift scenarios: scaling the compute or
    memory counts the simulator reports mid-stream emulates a NIC
    profile shift (firmware change, contention onset) without touching
    any cached model state.  Consumers that derive ground truth (the
    shadow-evaluation path in [Serve.Quality]) multiply their raw
    counts by these scales at use time, so caches can keep unperturbed
    values.  Scales are stored at milli resolution in atomics — safe
    to flip from any domain mid-stream. *)

val set : ?compute_scale:float -> ?memory_scale:float -> unit -> unit
(** Set either scale (unset arguments keep their current value).
    Raises [Invalid_argument] on non-positive or non-finite scales. *)

val reset : unit -> unit
(** Back to the identity (1.0 / 1.0). *)

val compute_scale : unit -> float
val memory_scale : unit -> float

val active : unit -> bool
(** True iff either scale differs from 1.0. *)
