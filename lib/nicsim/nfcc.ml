open Nf_ir

(** NFCC-sim: the closed-source SmartNIC compiler stand-in.

    Translates the LLVM-like IR into NIC assembly with the contextual
    instruction selection and peephole rules that make per-block output
    size a non-linear function of the instruction *sequence* — the reason
    the paper mimics the compiler with an LSTM instead of a per-opcode
    cost table (§3.2):

    - shifts fuse into a following ALU op ([Alu_shf]);
    - compares fuse into a following conditional branch ([Br_cmp]);
    - zext/trunc after a load are free ([Ld_field] absorption);
    - immediates expand by magnitude (0, 1 or 2 extra [Immed]);
    - multiplies expand into [Mul_step] sequences (power-of-two
      multiplies become shifts);
    - address computations fold into memory operations when adjacent;
    - named locals are register-allocated: with more live slots than the
      register budget, the least-used slots spill to per-core LMEM —
      a whole-function decision invisible from a single block. *)

(** Compilation options: [accel api] returns true when calls to [api]
    should be handed to an ASIC accelerator instead of expanded inline. *)
type config = { register_budget : int; accel : string -> bool }

let default_config = { register_budget = 14; accel = (fun _ -> false) }

type compiled_block = { bid : int; src_sid : int; instrs : Isa.instr list }

type compiled = { source : Ir.func; cblocks : compiled_block array }

(* -- register allocation: decide which stack slots live in registers -- *)

let slot_usage (f : Ir.func) =
  let tbl = Hashtbl.create 32 in
  let note name =
    Hashtbl.replace tbl name (1 + Option.value ~default:0 (Hashtbl.find_opt tbl name))
  in
  Ir.fold_instrs
    (fun () i ->
      match (i.Ir.op, i.Ir.args) with
      | Ir.Load, [ Ir.Slot s ] -> note s
      | Ir.Store, [ _; Ir.Slot s ] -> note s
      | _ -> ())
    () f;
  tbl

(** Slots kept in registers: the [budget] most-used (ties broken by name,
    deterministically). *)
let register_allocated f ~budget =
  let usage = slot_usage f in
  let ranked =
    Hashtbl.fold (fun name count acc -> (name, count) :: acc) usage []
    |> List.sort (fun (n1, c1) (n2, c2) ->
           match compare c2 c1 with 0 -> compare n1 n2 | c -> c)
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (name, _) :: rest -> name :: take (n - 1) rest
  in
  take budget ranked

let imm_magnitude n =
  let a = abs n in
  if a < 256 then `Small else if a < 65536 then `Medium else `Large

let immed_cost n =
  match imm_magnitude n with `Small -> [] | `Medium -> [ Isa.mk Isa.Immed ] | `Large -> [ Isa.mk Isa.Immed; Isa.mk Isa.Immed ]

let is_pow2 n = n > 0 && n land (n - 1) = 0

(* -- per-block instruction selection with a peephole window -- *)

type ctx = {
  cfg : config;
  in_regs : string -> bool;  (** slot is register-allocated *)
}

(** Does instruction [j] consume register [r]? *)
let uses_reg r (j : Ir.instr) = List.exists (function Ir.Reg x -> x = r | _ -> false) j.Ir.args

let alu_fusable (j : Ir.instr) =
  match j.Ir.op with Ir.Add | Ir.Sub | Ir.And | Ir.Or | Ir.Xor -> true | _ -> false

let compile_block ctx (b : Ir.block) : Isa.instr list =
  (* [fused_shifts] and [fused_cmps] hold result regs whose producing
     instruction was folded into a later consumer. *)
  (* [out] accumulates in reverse emission order (constant-time prepend);
     it is re-reversed once before burst merging. *)
  let out = ref [] in
  let emit is = out := List.rev_append is !out in
  let rec go (instrs : Ir.instr list) =
    match instrs with
    | [] -> ()
    | i :: rest -> (
      let next = match rest with n :: _ -> Some n | [] -> None in
      (match i.Ir.op with
      | Ir.Shl | Ir.Lshr -> (
        match (i.Ir.res, next) with
        | Some r, Some n when alu_fusable n && uses_reg r n ->
          (* shift fuses into the following ALU op *)
          emit [ Isa.mk Isa.Alu_shf ];
          go (List.tl rest);
          (* the fused ALU op is consumed here *)
          ()
        | _ ->
          emit (imm_shift_cost i);
          go rest;
          ()
        (* note: when fused we already recursed; fall through below is
           avoided by returning from both branches *))
      | Ir.Icmp _ -> (
        match (i.Ir.res, next) with
        | Some r, Some ({ Ir.op = Ir.Cond_br (_, _); _ } as n) when uses_reg r n ->
          emit [ Isa.mk Isa.Br_cmp ];
          go (List.tl rest)
        | Some r, Some ({ Ir.op = Ir.Zext; _ } as n) when uses_reg r n ->
          (* bool materialization: compare into register, zext free *)
          emit [ Isa.mk Isa.Alu ];
          go (List.tl rest)
        | _ ->
          emit [ Isa.mk Isa.Alu ];
          go rest)
      | Ir.Add | Ir.Sub | Ir.And | Ir.Xor ->
        emit (alu_cost i);
        go rest
      | Ir.Or -> (
        match i.Ir.args with
        | [ Ir.Imm n; Ir.Imm 0 ] ->
          (* constant materialization *)
          emit
            (match imm_magnitude n with
            | `Small -> [ Isa.mk Isa.Alu ]
            | `Medium -> [ Isa.mk Isa.Immed ]
            | `Large -> [ Isa.mk Isa.Immed; Isa.mk Isa.Immed ]);
          go rest
        | _ ->
          emit (alu_cost i);
          go rest)
      | Ir.Mul -> (
        match i.Ir.args with
        | [ _; Ir.Imm n ] when is_pow2 n ->
          emit [ Isa.mk Isa.Shf ];
          go rest
        | [ _; Ir.Imm n ] when imm_magnitude n <> `Large ->
          emit [ Isa.mk Isa.Mul_step; Isa.mk Isa.Mul_step; Isa.mk Isa.Alu ];
          go rest
        | _ ->
          emit
            [ Isa.mk Isa.Mul_step; Isa.mk Isa.Mul_step; Isa.mk Isa.Mul_step;
              Isa.mk Isa.Mul_step; Isa.mk Isa.Alu ];
          go rest)
      | Ir.Zext | Ir.Trunc ->
        (* free after a load (byte-field semantics come with Ld_field);
           otherwise one ld_field *)
        emit (if prev_was_load i !out then [] else [ Isa.mk Isa.Ld_field ]);
        go rest
      | Ir.Select ->
        emit [ Isa.mk Isa.Alu; Isa.mk Isa.Alu ];
        go rest
      | Ir.Gep -> (
        match (i.Ir.res, i.Ir.args, next) with
        | _, [ _; Ir.Imm _ ], _ ->
          (* constant offset folds into the memory operand *)
          go rest
        | Some r, _, Some ({ Ir.op = Ir.Load | Ir.Store; _ } as n) when uses_reg r n ->
          emit [ Isa.mk Isa.Alu ];
          go rest
        | _ ->
          emit [ Isa.mk Isa.Shf; Isa.mk Isa.Alu ];
          go rest)
      | Ir.Load ->
        emit (load_cost ctx i);
        go rest
      | Ir.Store ->
        emit (store_cost ctx i);
        go rest
      | Ir.Call api ->
        emit (call_cost ctx i api);
        go rest
      | Ir.Br _ ->
        emit [ Isa.mk Isa.Br ];
        go rest
      | Ir.Cond_br (_, _) ->
        (* reached only when the compare did not fuse (e.g. condition came
           from a register): compare-and-branch on the register *)
        emit [ Isa.mk Isa.Br_cmp ];
        go rest
      | Ir.Ret ->
        emit [ Isa.mk Isa.Br ];
        go rest))
  and imm_shift_cost (i : Ir.instr) =
    match i.Ir.args with
    | [ _; Ir.Imm _ ] -> [ Isa.mk Isa.Shf ]
    | _ -> [ Isa.mk Isa.Shf ]
  and alu_cost (i : Ir.instr) =
    let extra =
      List.concat_map (function Ir.Imm n -> immed_cost n | _ -> []) i.Ir.args
    in
    extra @ [ Isa.mk Isa.Alu ]
  and prev_was_load (_ : Ir.instr) emitted =
    (* [emitted] is the reverse-order accumulator: its head is the most
       recently emitted ISA instruction *)
    match emitted with
    | { Isa.op = Isa.Ld_field } :: _ | { Isa.op = Isa.Mem (Isa.Read, _) } :: _
    | { Isa.op = Isa.Local_mem Isa.Read } :: _ ->
      true
    | _ -> false
  and load_cost ctx (i : Ir.instr) =
    match (i.Ir.annot, i.Ir.args) with
    | Ir.Mem_stateless, [ Ir.Slot s ] ->
      if ctx.in_regs s then [] else [ Isa.mk (Isa.Local_mem Isa.Read) ]
    | Ir.Mem_stateful g, _ -> [ Isa.mk (Isa.Mem (Isa.Read, g)) ]
    | Ir.Mem_packet, [ Ir.Hdr _ ] -> [ Isa.mk Isa.Ld_field ]
    | Ir.Mem_packet, _ ->
      (* payload bytes live in the CTM packet buffer, not xfer registers *)
      [ Isa.mk (Isa.Mem (Isa.Read, "__pkt")) ]
    | (Ir.Compute | Ir.Api _ | Ir.Control | Ir.Mem_stateless), _ ->
      [ Isa.mk Isa.Ld_field ]
  and store_cost ctx (i : Ir.instr) =
    match (i.Ir.annot, i.Ir.args) with
    | Ir.Mem_stateless, [ _; Ir.Slot s ] ->
      if ctx.in_regs s then [] else [ Isa.mk (Isa.Local_mem Isa.Write) ]
    | Ir.Mem_stateful g, _ -> [ Isa.mk (Isa.Mem (Isa.Write, g)) ]
    | Ir.Mem_packet, [ _; Ir.Hdr _ ] -> [ Isa.mk Isa.Ld_field ]
    | Ir.Mem_packet, _ -> [ Isa.mk (Isa.Mem (Isa.Write, "__pkt")) ]
    | (Ir.Compute | Ir.Api _ | Ir.Control | Ir.Mem_stateless), _ ->
      [ Isa.mk Isa.Ld_field ]
  and call_cost ctx (i : Ir.instr) api =
    if ctx.cfg.accel api then [ Isa.mk (Isa.Accel_call api) ]
    else
      let nargs = List.length i.Ir.args in
      Isa.mk Isa.Csr :: List.init ((nargs + 1) / 2) (fun _ -> Isa.mk Isa.Alu)
  in
  go b.Ir.instrs;
  (* burst merge: consecutive reads of the same structure combine into one
     wider memory command (the reason direct IR memory counting is close
     to, but not exactly, 100% accurate — §3.2) *)
  let merge_window = 2 in
  let rec merge_bursts last = function
    | [] -> []
    | ({ Isa.op = Isa.Mem (d, g) } as x) :: rest -> (
      match last with
      | Some (d', g', dist) when d = d' && String.equal g g' && dist <= merge_window ->
        (* absorbed into the previous command's burst; the next memory op
           starts a fresh command *)
        merge_bursts None rest
      | Some _ | None -> x :: merge_bursts (Some (d, g, 0)) rest)
    | x :: rest ->
      let last = match last with Some (d, g, dist) -> Some (d, g, dist + 1) | None -> None in
      x :: merge_bursts last rest
  in
  merge_bursts None (List.rev !out)

(** Compile a function to NIC assembly. *)
let compile ?(config = default_config) (f : Ir.func) : compiled =
  let regs = register_allocated f ~budget:config.register_budget in
  let reg_set = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace reg_set s ()) regs;
  let ctx = { cfg = config; in_regs = Hashtbl.mem reg_set } in
  let cblocks =
    Array.map
      (fun b -> { bid = b.Ir.bid; src_sid = b.Ir.src_sid; instrs = compile_block ctx b })
      f.Ir.blocks
  in
  { source = f; cblocks }

(* -- retained reference implementation -- *)

(** The pre-optimization [compile_block]: quadratic list-append
    accumulator, full [List.rev] per peephole lookback and linear
    [List.mem] register lookups.  Kept verbatim (like {!Mlkit.Naive}) as
    the baseline `bench/main.exe parallel` times {!compile} against and
    the oracle `test_parallel` checks bit-equivalence with.  Selection
    rules are identical to {!compile_block} — only the accumulator
    representation differs. *)
let compile_block_reference ctx (b : Ir.block) : Isa.instr list =
  let out = ref [] in
  let emit is = out := !out @ is in
  let rec go (instrs : Ir.instr list) =
    match instrs with
    | [] -> ()
    | i :: rest -> (
      let next = match rest with n :: _ -> Some n | [] -> None in
      (match i.Ir.op with
      | Ir.Shl | Ir.Lshr -> (
        match (i.Ir.res, next) with
        | Some r, Some n when alu_fusable n && uses_reg r n ->
          emit [ Isa.mk Isa.Alu_shf ];
          go (List.tl rest)
        | _ ->
          emit [ Isa.mk Isa.Shf ];
          go rest)
      | Ir.Icmp _ -> (
        match (i.Ir.res, next) with
        | Some r, Some ({ Ir.op = Ir.Cond_br (_, _); _ } as n) when uses_reg r n ->
          emit [ Isa.mk Isa.Br_cmp ];
          go (List.tl rest)
        | Some r, Some ({ Ir.op = Ir.Zext; _ } as n) when uses_reg r n ->
          emit [ Isa.mk Isa.Alu ];
          go (List.tl rest)
        | _ ->
          emit [ Isa.mk Isa.Alu ];
          go rest)
      | Ir.Add | Ir.Sub | Ir.And | Ir.Xor ->
        emit (alu_cost i);
        go rest
      | Ir.Or -> (
        match i.Ir.args with
        | [ Ir.Imm n; Ir.Imm 0 ] ->
          emit
            (match imm_magnitude n with
            | `Small -> [ Isa.mk Isa.Alu ]
            | `Medium -> [ Isa.mk Isa.Immed ]
            | `Large -> [ Isa.mk Isa.Immed; Isa.mk Isa.Immed ]);
          go rest
        | _ ->
          emit (alu_cost i);
          go rest)
      | Ir.Mul -> (
        match i.Ir.args with
        | [ _; Ir.Imm n ] when is_pow2 n ->
          emit [ Isa.mk Isa.Shf ];
          go rest
        | [ _; Ir.Imm n ] when imm_magnitude n <> `Large ->
          emit [ Isa.mk Isa.Mul_step; Isa.mk Isa.Mul_step; Isa.mk Isa.Alu ];
          go rest
        | _ ->
          emit
            [ Isa.mk Isa.Mul_step; Isa.mk Isa.Mul_step; Isa.mk Isa.Mul_step;
              Isa.mk Isa.Mul_step; Isa.mk Isa.Alu ];
          go rest)
      | Ir.Zext | Ir.Trunc ->
        emit (if prev_was_load !out then [] else [ Isa.mk Isa.Ld_field ]);
        go rest
      | Ir.Select ->
        emit [ Isa.mk Isa.Alu; Isa.mk Isa.Alu ];
        go rest
      | Ir.Gep -> (
        match (i.Ir.res, i.Ir.args, next) with
        | _, [ _; Ir.Imm _ ], _ -> go rest
        | Some r, _, Some ({ Ir.op = Ir.Load | Ir.Store; _ } as n) when uses_reg r n ->
          emit [ Isa.mk Isa.Alu ];
          go rest
        | _ ->
          emit [ Isa.mk Isa.Shf; Isa.mk Isa.Alu ];
          go rest)
      | Ir.Load ->
        emit (load_cost i);
        go rest
      | Ir.Store ->
        emit (store_cost i);
        go rest
      | Ir.Call api ->
        emit (call_cost i api);
        go rest
      | Ir.Br _ ->
        emit [ Isa.mk Isa.Br ];
        go rest
      | Ir.Cond_br (_, _) ->
        emit [ Isa.mk Isa.Br_cmp ];
        go rest
      | Ir.Ret ->
        emit [ Isa.mk Isa.Br ];
        go rest))
  and alu_cost (i : Ir.instr) =
    let extra =
      List.concat_map (function Ir.Imm n -> immed_cost n | _ -> []) i.Ir.args
    in
    extra @ [ Isa.mk Isa.Alu ]
  and prev_was_load emitted =
    match List.rev emitted with
    | { Isa.op = Isa.Ld_field } :: _ | { Isa.op = Isa.Mem (Isa.Read, _) } :: _
    | { Isa.op = Isa.Local_mem Isa.Read } :: _ ->
      true
    | _ -> false
  and load_cost (i : Ir.instr) =
    match (i.Ir.annot, i.Ir.args) with
    | Ir.Mem_stateless, [ Ir.Slot s ] ->
      if ctx.in_regs s then [] else [ Isa.mk (Isa.Local_mem Isa.Read) ]
    | Ir.Mem_stateful g, _ -> [ Isa.mk (Isa.Mem (Isa.Read, g)) ]
    | Ir.Mem_packet, [ Ir.Hdr _ ] -> [ Isa.mk Isa.Ld_field ]
    | Ir.Mem_packet, _ -> [ Isa.mk (Isa.Mem (Isa.Read, "__pkt")) ]
    | (Ir.Compute | Ir.Api _ | Ir.Control | Ir.Mem_stateless), _ ->
      [ Isa.mk Isa.Ld_field ]
  and store_cost (i : Ir.instr) =
    match (i.Ir.annot, i.Ir.args) with
    | Ir.Mem_stateless, [ _; Ir.Slot s ] ->
      if ctx.in_regs s then [] else [ Isa.mk (Isa.Local_mem Isa.Write) ]
    | Ir.Mem_stateful g, _ -> [ Isa.mk (Isa.Mem (Isa.Write, g)) ]
    | Ir.Mem_packet, [ _; Ir.Hdr _ ] -> [ Isa.mk Isa.Ld_field ]
    | Ir.Mem_packet, _ -> [ Isa.mk (Isa.Mem (Isa.Write, "__pkt")) ]
    | (Ir.Compute | Ir.Api _ | Ir.Control | Ir.Mem_stateless), _ ->
      [ Isa.mk Isa.Ld_field ]
  and call_cost (i : Ir.instr) api =
    if ctx.cfg.accel api then [ Isa.mk (Isa.Accel_call api) ]
    else
      let nargs = List.length i.Ir.args in
      Isa.mk Isa.Csr :: List.init ((nargs + 1) / 2) (fun _ -> Isa.mk Isa.Alu)
  in
  go b.Ir.instrs;
  let merge_window = 2 in
  let rec merge_bursts last = function
    | [] -> []
    | ({ Isa.op = Isa.Mem (d, g) } as x) :: rest -> (
      match last with
      | Some (d', g', dist) when d = d' && String.equal g g' && dist <= merge_window ->
        merge_bursts None rest
      | Some _ | None -> x :: merge_bursts (Some (d, g, 0)) rest)
    | x :: rest ->
      let last = match last with Some (d, g, dist) -> Some (d, g, dist + 1) | None -> None in
      x :: merge_bursts last rest
  in
  merge_bursts None !out

(** Compile with the retained pre-optimization block compiler and linear
    register lookups.  Output is identical to {!compile}. *)
let compile_reference ?(config = default_config) (f : Ir.func) : compiled =
  let regs = register_allocated f ~budget:config.register_budget in
  let ctx = { cfg = config; in_regs = (fun s -> List.mem s regs) } in
  let cblocks =
    Array.map
      (fun b ->
        { bid = b.Ir.bid; src_sid = b.Ir.src_sid; instrs = compile_block_reference ctx b })
      f.Ir.blocks
  in
  { source = f; cblocks }

(* -- whole-function counts -- *)

let all_instrs c = Array.to_list c.cblocks |> List.concat_map (fun cb -> cb.instrs)

let count_compute c = Isa.count_compute (all_instrs c)

(** Stateful memory operations — excludes packet-buffer (payload) traffic,
    which the paper does not count as NF state accesses. *)
let count_mem c =
  List.length
    (List.filter
       (fun i -> match Isa.mem_target i with Some g -> not (String.equal g "__pkt") | None -> false)
       (all_instrs c))
let count_local_mem c = Isa.count_local_mem (all_instrs c)
let count_total c = List.length (all_instrs c)

(** Memory accesses per stateful structure across the function. *)
let mem_by_target c =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun i ->
      match Isa.mem_target i with
      | Some g -> Hashtbl.replace tbl g (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g))
      | None -> ())
    (all_instrs c);
  Hashtbl.fold (fun g n acc -> (g, n) :: acc) tbl []
