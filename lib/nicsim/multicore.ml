(** Multicore run-to-completion performance model (§4.2).

    Cores process packets independently; contention arises at the shared
    memory levels and accelerator engines.  Each shared resource is an
    open queue: its utilization is driven by the *offered* load (cores /
    service-time, uncapped), so past the saturation point throughput
    plateaus at the resource bandwidth while latency keeps climbing —
    exactly the knee-then-divergence shape of Figure 11.  The model solves

      S      = C + sum_l M_l * (L_l + q_l)        (service time, cycles)
      q_l    = (1/B_l) * rho_l / (1 - rho_l)      (queueing delay)
      rho_l  = offered * M_l / B_l                (utilization, capped)
      offered= cores / S
      T      = min(offered, wire, 0.98 * B_l/M_l for all l)

    by damped fixed-point iteration. *)

type nic = { n_cores : int; freq_mhz : float; wire_gbps : float }

(** Netronome Agilio CX-like: 60 wimpy 1.2 GHz cores on a 40 Gbps port. *)
let default_nic = { n_cores = 60; freq_mhz = 1200.0; wire_gbps = 40.0 }

(** Memory-fabric parameters of a SmartNIC family (§6: "an interesting
    exercise would be to evaluate Clara on a wider range of SoC-based
    platforms").  Bandwidths are accesses per core cycle; [lat_scale]
    multiplies the Netronome base latencies (a faster core clock makes the
    same wall-clock memory look slower in cycles). *)
type hw = {
  hw_name : string;
  cls_bw : float;
  ctm_bw : float;
  imem_bw : float;
  emem_cache_bw : float;
  emem_dram_bw : float;
  lat_scale : float;
}

let agilio_hw =
  { hw_name = "netronome-agilio"; cls_bw = 0.40; ctm_bw = 0.50; imem_bw = 0.70;
    emem_cache_bw = 0.22; emem_dram_bw = 0.08; lat_scale = 1.0 }

type point = { cores : int; throughput_mpps : float; latency_us : float }

let rho_cap = 0.995

(** Aggregate bandwidth per level in accesses/cycle; EMEM blends its SRAM
    cache and DRAM banks by hit ratio. *)
let level_bandwidth ?(hw = agilio_hw) ~emem_hit level =
  match level with
  | Mem.LMEM -> 10000.0
  | Mem.CLS -> hw.cls_bw
  | Mem.CTM -> hw.ctm_bw
  | Mem.IMEM -> hw.imem_bw
  | Mem.EMEM -> (emem_hit *. hw.emem_cache_bw) +. ((1.0 -. emem_hit) *. hw.emem_dram_bw)

let level_base_latency ?(hw = agilio_hw) ~emem_hit level =
  hw.lat_scale
  *.
  match level with
  | Mem.EMEM -> Mem.emem_latency ~hit_ratio:emem_hit
  | Mem.LMEM | Mem.CLS | Mem.CTM | Mem.IMEM -> Mem.base_latency level

(** Line rate in packets per core-cycle for a given wire size. *)
let wire_limit nic ~wire_bytes =
  let mpps = nic.wire_gbps *. 1000.0 /. (8.0 *. float_of_int (wire_bytes + 20)) in
  mpps /. nic.freq_mhz

let queue_delay ~bandwidth ~rho = rho /. (bandwidth *. (1.0 -. rho))

(** Service time (cycles/packet) given per-level and per-engine queueing
    delays. *)
let service_time ?(hw = agilio_hw) (d : Perf.demand) q_levels q_accel =
  let mem =
    List.fold_left
      (fun acc level ->
        let idx = Mem.level_index level in
        let l0 = level_base_latency ~hw ~emem_hit:d.Perf.emem_hit level in
        acc +. (d.Perf.levels.(idx) *. (l0 +. q_levels.(idx))))
      0.0 Mem.all_levels
  in
  let accel =
    List.fold_left
      (fun acc (e, n) ->
        let l0 = Accel.latency e ~payload_bytes:d.Perf.payload_bytes in
        let q = try List.assoc e q_accel with Not_found -> 0.0 in
        acc +. (n *. (l0 +. q)))
      0.0 d.Perf.accel_ops
  in
  d.Perf.compute +. mem +. accel

(** Hard throughput ceiling from resource bandwidths. *)
let bandwidth_cap ?(hw = agilio_hw) (d : Perf.demand) =
  let level_cap =
    List.fold_left
      (fun acc level ->
        let idx = Mem.level_index level in
        let m = d.Perf.levels.(idx) in
        if m <= 1e-9 then acc
        else min acc (0.98 *. level_bandwidth ~hw ~emem_hit:d.Perf.emem_hit level /. m))
      infinity Mem.all_levels
  in
  List.fold_left
    (fun acc (e, n) -> if n <= 1e-9 then acc else min acc (0.98 *. Accel.bandwidth e /. n))
    level_cap d.Perf.accel_ops

(** Queue state from a driving rate. *)
let queues_at ?(hw = agilio_hw) (d : Perf.demand) rate q_levels q_accel =
  List.iter
    (fun level ->
      let idx = Mem.level_index level in
      let b = level_bandwidth ~hw ~emem_hit:d.Perf.emem_hit level in
      let rho = min rho_cap (rate *. d.Perf.levels.(idx) /. b) in
      q_levels.(idx) <- queue_delay ~bandwidth:b ~rho)
    Mem.all_levels;
  List.map
    (fun (e, _) ->
      let n = try List.assoc e d.Perf.accel_ops with Not_found -> 0.0 in
      let b = Accel.bandwidth e in
      let rho = min rho_cap (rate *. n /. b) in
      (e, queue_delay ~bandwidth:b ~rho))
    q_accel

(** Solve the contention fixed point for [cores] cores running demand [d].
    Returns (throughput in packets/cycle, latency in cycles).

    Throughput is self-consistent with the *served* rate (queues driven by
    the actual throughput), which keeps it monotone in cores.  Latency is
    driven by the *offered* load: past saturation, extra cores inflate
    utilization and — by Little's law — hold extra in-flight packets, so
    per-packet latency keeps climbing while throughput plateaus. *)
let solve ?(hw = agilio_hw) nic (d : Perf.demand) ~cores =
  let wire = wire_limit nic ~wire_bytes:d.Perf.wire_bytes in
  let cap = bandwidth_cap ~hw d in
  (* The bisection below evaluates the queue state ~50 times per call and
     the sweep calls [solve] once per core count, so the per-level and
     per-engine constants (bandwidths, unloaded latencies, demand rates)
     are hoisted into arrays here: same values, same [Mem.all_levels] /
     [accel_ops] iteration order as the list-walking {!queues_at} /
     {!service_time} (engine keys are unique — [Perf.demand_of] builds
     them from a hash table), just no allocation or assoc scans in the
     inner loop. *)
  let n_levels = 5 in
  let lvl_bw =
    Array.init n_levels (fun i ->
        level_bandwidth ~hw ~emem_hit:d.Perf.emem_hit (Mem.level_of_index i))
  in
  let lvl_l0 =
    Array.init n_levels (fun i ->
        level_base_latency ~hw ~emem_hit:d.Perf.emem_hit (Mem.level_of_index i))
  in
  let accel_n = Array.of_list (List.map snd d.Perf.accel_ops) in
  let n_accel = Array.length accel_n in
  let accel_bw = Array.of_list (List.map (fun (e, _) -> Accel.bandwidth e) d.Perf.accel_ops) in
  let accel_l0 =
    Array.of_list
      (List.map (fun (e, _) -> Accel.latency e ~payload_bytes:d.Perf.payload_bytes) d.Perf.accel_ops)
  in
  let q_levels = Array.make n_levels 0.0 in
  let q_accel = Array.make (max 1 n_accel) 0.0 in
  let queues_into rate =
    for i = 0 to n_levels - 1 do
      let b = lvl_bw.(i) in
      let rho = min rho_cap (rate *. d.Perf.levels.(i) /. b) in
      q_levels.(i) <- queue_delay ~bandwidth:b ~rho
    done;
    for i = 0 to n_accel - 1 do
      let b = accel_bw.(i) in
      let rho = min rho_cap (rate *. accel_n.(i) /. b) in
      q_accel.(i) <- queue_delay ~bandwidth:b ~rho
    done
  in
  let service () =
    let mem = ref 0.0 in
    for i = 0 to n_levels - 1 do
      mem := !mem +. (d.Perf.levels.(i) *. (lvl_l0.(i) +. q_levels.(i)))
    done;
    let accel = ref 0.0 in
    for i = 0 to n_accel - 1 do
      accel := !accel +. (accel_n.(i) *. (accel_l0.(i) +. q_accel.(i)))
    done;
    d.Perf.compute +. !mem +. !accel
  in
  (* phase A: throughput.  g(t) = min(cores/s(t), wire, cap) is decreasing
     in t, so the fixed point g(t) = t is unique: bisect. *)
  let g t =
    queues_into t;
    let s = service () in
    min (float_of_int cores /. s) (min wire cap)
  in
  let lo = ref 0.0 and hi = ref (min wire cap) in
  for _ = 1 to 50 do
    let mid = 0.5 *. (!lo +. !hi) in
    if g mid >= mid then lo := mid else hi := mid
  done;
  let throughput = !lo in
  queues_into throughput;
  let s_served = service () in
  (* phase B: latency under the offered pressure *)
  let offered = float_of_int cores /. s_served in
  let pressure = min offered (1.02 *. min wire cap) in
  queues_into pressure;
  let s_offered = service () in
  let t_internal = min (float_of_int cores /. s_offered) cap in
  let latency =
    if wire < t_internal then s_offered
    else max s_offered (float_of_int cores /. max 1e-12 t_internal)
  in
  (throughput, latency)

(** Measure one operating point. *)
let measure ?(hw = agilio_hw) ?(nic = default_nic) (d : Perf.demand) ~cores =
  let t, latency = solve ~hw nic d ~cores in
  { cores; throughput_mpps = t *. nic.freq_mhz; latency_us = latency /. nic.freq_mhz }

(** Sweep all core counts 1..n_cores. *)
let sweep ?(hw = agilio_hw) ?(nic = default_nic) (d : Perf.demand) =
  List.init nic.n_cores (fun i -> measure ~hw ~nic d ~cores:(i + 1))

(** The paper's operating-point criterion: maximize throughput/latency —
    the knee of the latency curve (§4.2, Figure 11c-d). *)
let optimal_cores ?(hw = agilio_hw) ?(nic = default_nic) (d : Perf.demand) =
  let points = sweep ~hw ~nic d in
  let score p = p.throughput_mpps /. max 1e-9 p.latency_us in
  let best = List.fold_left (fun acc p -> max acc (score p)) 0.0 points in
  (* the knee: the smallest core count within 1% of the best ratio *)
  let rec scan = function
    | [] -> nic.n_cores
    | p :: rest -> if score p >= 0.99 *. best then p.cores else scan rest
  in
  scan points

(** Minimum cores whose throughput reaches [fraction] of the peak across
    the sweep — the saturation metric of Figure 13. *)
let cores_to_saturate ?(hw = agilio_hw) ?(nic = default_nic) ?(fraction = 0.95) (d : Perf.demand) =
  let points = sweep ~hw ~nic d in
  let peak = List.fold_left (fun acc p -> max acc p.throughput_mpps) 0.0 points in
  let rec scan = function
    | [] -> nic.n_cores
    | p :: rest -> if p.throughput_mpps >= fraction *. peak then p.cores else scan rest
  in
  scan points
