(** End-to-end NIC evaluation pipeline — the "manually port and benchmark"
    step of the paper's methodology, against the simulator. *)

(** The porting knobs Clara's insights tune. *)
type port_config = {
  accel_apis : string list;  (** API calls offloaded to ASIC engines *)
  placement : Mem.placement option;  (** None = naive all-EMEM *)
  packs : Perf.packs;  (** coalesced variable packs *)
}

(** Faithful translation: no accelerators, all state in EMEM, no packing. *)
val naive_port : port_config

(** A ported NF: lowered, compiled, profiled under a workload, with its
    assembled per-packet demand. *)
type ported = {
  elt : Nf_lang.Ast.element;
  spec : Workload.spec;
  config : port_config;
  ir : Nf_ir.Ir.func;
  compiled : Nfcc.compiled;
  profile : Nf_lang.Interp.profile;
  demand : Perf.demand;
}

(** The element's stateful structure names. *)
val state_names : Nf_lang.Ast.element -> string list

(** The element's structure footprints in bytes (ILP sizes). *)
val state_sizes : Nf_lang.Ast.element -> (string * int) list

(** Lower, compile, profile and assemble the demand of an element under a
    porting configuration and workload.  [packets] replays a pre-generated
    trace (pass fresh {!Nf_lang.Packet.copy} copies — the interpreter
    mutates packets); it must equal the trace [Workload.generate spec]
    would produce. *)
val port :
  ?config:port_config -> ?packets:Nf_lang.Packet.t list -> Nf_lang.Ast.element -> Workload.spec -> ported

(** Re-derive the demand under a new placement/packing without re-running
    the compiler or interpreter (neither depends on those knobs);
    accelerator changes trigger a full re-port. *)
val reconfigure : ported -> port_config -> ported

(** Measure at [cores] (default: all). *)
val measure : ?nic:Multicore.nic -> ?cores:int -> ported -> Multicore.point

val sweep : ?nic:Multicore.nic -> ported -> Multicore.point list
val optimal_cores : ?nic:Multicore.nic -> ported -> int

(** The highest-throughput point of the sweep. *)
val peak : ?nic:Multicore.nic -> ported -> Multicore.point
