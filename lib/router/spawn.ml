(** Worker-process lifecycle (see spawn.mli). *)

let sentinel = "--clara-worker"

type t = {
  sp_name : string;
  sp_socket : string;
  sp_pid : int;
  mutable sp_reaped : bool;
}

(* The worker child: a fresh exec of the harness executable.  No fork
   hazards — this process has its own runtime and pool. *)
let worker_main_if_requested () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = sentinel then begin
    let socket = ref "" and bundle = ref "" and quiet = ref false in
    let cache = ref None and shards = ref None in
    let max_pending = ref None and max_clients = ref None in
    let i = ref 2 in
    let next () =
      incr i;
      Sys.argv.(!i - 1)
    in
    while !i < Array.length Sys.argv do
      (match next () with
      | "--socket" -> socket := next ()
      | "--bundle" -> bundle := next ()
      | "--quiet" -> quiet := true
      | "--cache" -> cache := Some (int_of_string (next ()))
      | "--shards" -> shards := Some (int_of_string (next ()))
      | "--max-pending" -> max_pending := Some (int_of_string (next ()))
      | "--max-clients" -> max_clients := Some (int_of_string (next ()))
      | arg ->
        prerr_endline ("worker: unknown argument " ^ arg);
        exit 2);
    done;
    if !quiet then Obs.Log.set_sink Obs.Log.Off;
    (match Persist.Bundle.load_salvage ~dir:!bundle with
    | Error e ->
      Printf.eprintf "worker: cannot load bundle %s: %s\n%!" !bundle
        (Persist.Wire.error_to_string e);
      exit 2
    | Ok (b, _dropped) ->
      let version = Persist.Bundle.version b.Persist.Bundle.manifest in
      let server =
        Serve.Server.create ?cache_capacity:!cache ?shards:!shards
          ?max_pending:!max_pending ?max_clients:!max_clients ~version
          b.Persist.Bundle.models
      in
      Serve.Server.run server ~socket_path:!socket;
      exit 0)
  end

let spawn ?(quiet = true) ?cache_capacity ?shards ?max_pending ?max_clients ~name
    ~socket_path ~bundle () =
  let opt flag = function
    | None -> []
    | Some n -> [ flag; string_of_int n ]
  in
  let argv =
    [ Sys.executable_name; sentinel; "--socket"; socket_path; "--bundle"; bundle ]
    @ (if quiet then [ "--quiet" ] else [])
    @ opt "--cache" cache_capacity
    @ opt "--shards" shards
    @ opt "--max-pending" max_pending
    @ opt "--max-clients" max_clients
  in
  let pid =
    Unix.create_process Sys.executable_name (Array.of_list argv) Unix.stdin Unix.stdout
      Unix.stderr
  in
  { sp_name = name; sp_socket = socket_path; sp_pid = pid; sp_reaped = false }

let wait_ready ?(timeout_s = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let line = {|{"cmd":"ping","id":0}|} in
  let rec go () =
    match Upstream.oneshot ~socket_path:t.sp_socket ~timeout_s:1.0 line with
    | Ok _ -> true
    | Error _ ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        Unix.sleepf 0.02;
        go ()
      end
  in
  go ()

let signal t s = if not t.sp_reaped then try Unix.kill t.sp_pid s with Unix.Unix_error _ -> ()
let kill t = signal t Sys.sigkill
let terminate t = signal t Sys.sigterm

let reap t =
  t.sp_reaped
  || (match Unix.waitpid [ Unix.WNOHANG ] t.sp_pid with
     | 0, _ -> false
     | _ -> t.sp_reaped <- true; true
     | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
       t.sp_reaped <- true;
       true)

let wait t =
  if not t.sp_reaped then begin
    (match Unix.waitpid [] t.sp_pid with
    | _ -> ()
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ());
    t.sp_reaped <- true
  end

let alive t = not (reap t)
