(** Worker-process lifecycle: spawn, signal, reap.

    Workers are {e fresh processes}, not forks of the caller: the child
    is the current executable re-executed ([create_process] of
    [Sys.executable_name]) with a sentinel argv that
    {!worker_main_if_requested} recognizes.  A fresh exec sidesteps every
    multicore-fork hazard — the child gets its own runtime, its own
    [Util.Pool] (sized by the inherited [CLARA_JOBS]), and none of the
    parent's domains — and is exactly how a production router would run
    its fleet anyway.

    A harness that spawns workers (the router tests, the topology soak,
    the router bench) must call {!worker_main_if_requested} as the very
    first thing in [main]: in the parent it returns immediately; in a
    worker child it loads the bundle, serves until shutdown/SIGTERM, and
    [exit]s without returning.  The [clara] CLI does not need it — its
    router verb spawns workers as [clara serve] child processes. *)

type t = {
  sp_name : string;
  sp_socket : string;
  sp_pid : int;
  mutable sp_reaped : bool;
}

(** In a worker child (argv starts with the sentinel): run the worker and
    [exit] — 0 on clean shutdown, 2 when the bundle fails to load.
    Otherwise: return immediately. *)
val worker_main_if_requested : unit -> unit

(** Spawn one worker serving [bundle] on [socket_path].  [quiet] (default
    [true]) silences the child's logs — harness stderr stays readable.
    The remaining options mirror {!Serve.Server.create}'s.  Returns once
    the child is forked; await the socket with {!wait_ready}. *)
val spawn :
  ?quiet:bool ->
  ?cache_capacity:int ->
  ?shards:int ->
  ?max_pending:int ->
  ?max_clients:int ->
  name:string ->
  socket_path:string ->
  bundle:string ->
  unit ->
  t

(** Poll until the worker answers a [ping] on its socket (or [timeout_s],
    default 10, elapses — [false]). *)
val wait_ready : ?timeout_s:float -> t -> bool

(** SIGKILL — the chaos harness's hammer.  Idempotent; reap afterwards. *)
val kill : t -> unit

(** SIGTERM — ask the worker to drain. *)
val terminate : t -> unit

(** Non-blocking reap ([WNOHANG]); [true] once the child is gone
    (then and on every later call). *)
val reap : t -> bool

(** Blocking reap; idempotent. *)
val wait : t -> unit

(** Has the process neither exited nor been reaped? *)
val alive : t -> bool
