(** Blocking line I/O to one worker socket.

    The router keeps one persistent connection per live worker and
    pipelines each round's request lines down it; these helpers do the
    raw byte work and map every [Unix_error] (and timeout, and EOF) to
    [Error msg] so the caller can treat "this worker just died" as data.
    All sockets are opened close-on-exec: respawned worker children must
    not inherit the router's descriptors. *)

(** Connect to a Unix-domain socket. *)
val connect : socket_path:string -> (Unix.file_descr, string) result

(** Write [lines] (newline-terminated) fully. *)
val send_lines : Unix.file_descr -> string list -> (unit, string) result

(** Read exactly [n] reply lines, starting from [residue] (bytes already
    read past the previous round's last newline), within [timeout_s]
    overall.  Returns the lines plus the new residue.  EOF before [n]
    lines is an error — a worker never half-answers a batch. *)
val read_lines :
  Unix.file_descr ->
  residue:string ->
  n:int ->
  timeout_s:float ->
  (string list * string, string) result

(** One-shot request: connect, send one line, read one reply, close.
    What the health prober uses on workers it holds no connection to. *)
val oneshot : socket_path:string -> timeout_s:float -> string -> (string, string) result
