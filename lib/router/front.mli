(** The scale-out front: one router process consistent-hashing request
    lines over N worker processes (each worker is {!Serve.Server}).

    Speaks the same line-delimited JSON protocol as a single server, on
    the same kind of Unix socket — [clara query] works unchanged against
    a router socket.  Per round ({!Fastpath.Evloop} level-triggered, as
    in the server):

    - {b Placement.}  Each forwarded line is keyed — [analyze] requests
      by ["nf|workload"] (so a key's flow-cache entry warms exactly one
      worker), everything else by the raw line — and looked up on a
      consistent-hash ring ({!Chash}) over the live, non-draining
      workers.  Lines for the same worker are pipelined down one
      persistent connection; all groups are written before any replies
      are read, so workers crunch concurrently.
    - {b Admission.}  Per-tenant quotas ({!Quota}) shed over-quota lines
      router-side with typed ["overloaded":true] replies, layered on the
      workers' own [max_pending]/[max_clients] shedding and the router's
      own [max_clients] connection bound.
    - {b Failover.}  A connect/write/read failure marks the worker down:
      its in-flight lines are answered ["ok":false, "unavailable":true]
      (typed retryable — {!Serve.Client} backs off and retries, and the
      retry re-hashes over the survivors), the rings are rebuilt, and the
      health prober re-admits the worker when it answers again.
    - {b Rollout.}  {!start_rollout} hot-reloads a configurable canary
      subset of workers to a new bundle version (negotiated end-to-end:
      {!Persist.Bundle.peek_version} on the router, ["expect"] checked in
      the worker's serial reload path) and steers a deterministic
      fraction of keyspace at them ({!Chash.canary_draw} — pure in
      [(seed, key)], so arrival order is irrelevant).  {!promote} reloads
      the rest; {!rollback} restores the previous bundle.  Zero downtime:
      workers swap models between batches, never mid-request.

    Router-local commands (everything else forwards): [health] (the
    aggregated [/healthz] document's fields), [topology] (ring
    membership), [rollout]/[promote]/[rollback], [metrics] (the router
    process's exposition), [shutdown] (broadcast to workers, then stop).
    Direct [reload] is refused — fleet versions move via rollout.

    Workers start presumed-up; the first failed forward or health probe
    corrects that.  With every worker down, lines are answered
    ["unavailable"] rather than erroring the router. *)

type t

(** Where a request line would go — the test suite's determinism hook.
    [None] when the line is router-local. *)
type route = {
  rt_worker : string option;  (** [None] iff no worker is live *)
  rt_canary : bool;
  rt_key : string;
  rt_tenant : string;
}

(** [create ~workers ()] with [(name, socket_path)] pairs (sorted by
    name; names must be unique).  [vnodes] per worker on the ring
    (default 64); [tenant_quota] lines per tenant per round (default 0 =
    unlimited); [forward_timeout_s] per-round worker reply budget
    (default 5); [health_period_s] between probe sweeps in {!run}
    (default 0.5); [canary_seed] the default rollout draw seed (default
    1); [max_clients] the router's own connection bound (default 64);
    [active_bundle] the bundle directory the fleet currently serves —
    required for {!rollback} and partial-canary cleanup. *)
val create :
  ?vnodes:int ->
  ?tenant_quota:int ->
  ?forward_timeout_s:float ->
  ?health_period_s:float ->
  ?canary_seed:int ->
  ?max_clients:int ->
  ?active_bundle:string ->
  workers:(string * string) list ->
  unit ->
  t

(** Route one batch of request lines; replies come back in order.  The
    in-process harness entry ({!run}'s rounds call it too).  Never
    raises: worker failures become typed replies. *)
val route_batch : t -> string list -> string list

(** Where would [line] go right now?  Pure: no I/O, no counters. *)
val target : t -> string -> route option

(** One health sweep: refresh every worker's up/version/draining/pid and
    rebuild the rings.  Down workers are probed with one-shot connects —
    a respawned worker is re-admitted here. *)
val probe : t -> unit

(** Begin a canary rollout of the bundle in [bundle]: reload
    [ceil (fraction * live)] workers (at least one; at least one
    non-canary is kept when [fraction < 1] and two or more workers are
    live) and steer [fraction] of keyspace at them.  Fails — with every
    already-reloaded canary rolled back — when a reload is refused or a
    rollout is already in progress.  [Ok version] on success. *)
val start_rollout : t -> bundle:string -> fraction:float -> ?seed:int -> unit -> (string, string) result

(** Reload the remaining workers to the canary bundle and make it the
    active bundle.  [Ok (version, failed)] — [failed] names workers that
    could not be reloaded (down, or refused). *)
val promote : t -> (string * string list, string) result

(** Reload the canaries back to the active bundle and end the rollout. *)
val rollback : t -> (string list, string) result

(** The aggregated health document: router ok/pid/counters, rollout
    state, and per-worker name/socket/up/draining/version/pid/forwarded —
    what [GET /healthz] serves when the router fronts an {!Serve.Http}
    endpoint, rebuilt on every round/probe into {!healthz_cached}. *)
val healthz_json : t -> string

(** Last rendered {!healthz_json} (safe from another domain — what the
    HTTP endpoint's callback reads). *)
val healthz_cached : t -> string

(** Counters: lines entering the router / forwarded to workers / shed
    (quota + connection) / answered unavailable / steered to canaries /
    worker down-transitions. *)
val served : t -> int

val forwarded : t -> int
val shed : t -> int
val unavailable : t -> int
val canaried : t -> int
val failovers : t -> int

(** Ask {!run} to drain and return (what its SIGTERM handler calls). *)
val request_drain : t -> unit

(** Close the persistent worker connections (idempotent; a later round
    reconnects).  In-process harnesses should call it before checking
    fd hygiene. *)
val close : t -> unit

(** Bind [socket_path] and serve until [shutdown] or a drain is
    requested (SIGTERM / {!request_drain}).  Same event-loop shape as
    {!Serve.Server.run}: batched rounds, coalesced writes, graceful
    drain window; plus a health sweep every [health_period_s].  Worker
    connections are closed on the way out. *)
val run : t -> socket_path:string -> unit
