(** Blocking line I/O to one worker socket (see upstream.mli). *)

let unix_msg fn err = Printf.sprintf "%s: %s" fn (Unix.error_message err)

let connect ~socket_path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
  | () -> Ok fd
  | exception Unix.Unix_error (err, fn, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (unix_msg fn err)

let send_lines fd lines =
  let payload = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  let n = String.length payload in
  match
    let sent = ref 0 in
    while !sent < n do
      sent := !sent + Unix.write_substring fd payload !sent (n - !sent)
    done
  with
  | () -> Ok ()
  | exception Unix.Unix_error (err, fn, _) -> Error (unix_msg fn err)

let read_lines fd ~residue ~n ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Buffer.create 512 in
  Buffer.add_string buf residue;
  let chunk = Bytes.create 8192 in
  let lines = ref [] and got = ref 0 and scanned = ref 0 in
  let rec take () =
    (* Scan only bytes not yet scanned: the buffer grows monotonically. *)
    let data = Buffer.contents buf in
    match String.index_from_opt data !scanned '\n' with
    | Some i when !got < n ->
      lines := String.sub data !scanned (i - !scanned) :: !lines;
      incr got;
      scanned := i + 1;
      take ()
    | _ ->
      if !got >= n then begin
        let data = Buffer.contents buf in
        Ok (List.rev !lines, String.sub data !scanned (String.length data - !scanned))
      end
      else begin
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error "timed out awaiting worker reply"
        else
          match Unix.select [ fd ] [] [] remaining with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> take ()
          | exception Unix.Unix_error (err, fn, _) -> Error (unix_msg fn err)
          | [], _, _ -> Error "timed out awaiting worker reply"
          | _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> Error "worker closed the connection"
            | r ->
              Buffer.add_subbytes buf chunk 0 r;
              take ()
            | exception Unix.Unix_error (err, fn, _) -> Error (unix_msg fn err))
      end
  in
  take ()

let oneshot ~socket_path ~timeout_s line =
  match connect ~socket_path with
  | Error _ as e -> e
  | Ok fd ->
    let out =
      match send_lines fd [ line ] with
      | Error _ as e -> e
      | Ok () -> (
        match read_lines fd ~residue:"" ~n:1 ~timeout_s with
        | Ok ([ reply ], _) -> Ok reply
        | Ok _ -> Error "protocol error: expected one reply line"
        | Error _ as e -> e)
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    out
