(** Per-tenant admission quotas, layered in front of the workers' own
    [max_pending]/[max_clients] shedding.

    The router charges each forwarded request line to its tenant (the
    request's ["tenant"] member, or ["default"]) and admits at most
    [limit] lines per tenant {e per event-loop round} — the same unit
    the workers' [max_pending] batch bound uses, so one noisy tenant
    cannot monopolize a round's worth of worker capacity.  Requests over
    quota are shed router-side with a typed ["overloaded":true] reply
    (the client's retry/backoff loop already understands it).

    Counts reset at {!begin_round}; a [limit <= 0] disables the quota. *)

type t

val create : ?limit:int -> unit -> t
val limit : t -> int

(** Forget this round's per-tenant charges. *)
val begin_round : t -> unit

(** Charge [tenant] one line; [false] means shed (and is counted). *)
val admit : t -> tenant:string -> bool

(** Total lines shed over quota since {!create}. *)
val shed : t -> int
