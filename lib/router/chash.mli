(** Consistent-hash ring over worker names.

    The ring is the router's placement function: each worker contributes
    [vnodes] virtual points (FNV-1a/64 of ["name#i"], passed through the
    splitmix64 finalizer — raw FNV of short similar strings clusters in
    the high bits that decide ring order), sorted; a key maps to the
    first point clockwise of its own (identically mixed) hash.  Two properties the
    test suite pins:

    - {b Determinism.}  The mapping is a pure function of the member set,
      [vnodes] and the key — independent of insertion order, process, or
      [CLARA_JOBS].  The pin test rebuilds it from an independent
      reimplementation of FNV-1a and sorting.
    - {b Bounded movement.}  Adding or removing one member only remaps
      keys whose clockwise-first point belonged to that member's vnodes —
      about [1/n] of the keyspace; keys mapped to surviving members stay
      put.

    The canary draw lives here too: a pure splitmix64 hash of
    [(seed, key)] to a unit float, so the canaried fraction of keyspace
    is identical whatever order requests arrive in. *)

type t

(** FNV-1a 64-bit of a string (exposed so tests can pin the ring against
    an independent reimplementation). *)
val fnv64 : string -> int64

(** Build a ring over [names] (deduplicated, order-irrelevant).
    [vnodes] points per member, default 64, must be [>= 1]. *)
val create : ?vnodes:int -> string list -> t

(** Sorted, deduplicated member set. *)
val members : t -> string list

val vnodes : t -> int

(** The member owning [key] — first vnode clockwise of [fnv64 key],
    wrapping; [None] iff the ring is empty. *)
val lookup : t -> string -> string option

(** Unit-interval draw for canary selection: pure in [(seed, key)].
    A request is canaried when its draw is [< fraction]. *)
val canary_draw : seed:int -> string -> float
