(** The scale-out front (see front.mli). *)

module Jsonl = Serve.Jsonl

type worker = {
  w_name : string;
  w_socket : string;
  mutable w_up : bool;
  mutable w_draining : bool;
  mutable w_version : string;
  mutable w_pid : int;
  mutable w_fd : Unix.file_descr option;
  mutable w_residue : string;  (* bytes read past the last reply's newline *)
  mutable w_forwarded : int;
}

type rollout =
  | Idle
  | Canary of {
      bundle : string;
      version : string;
      fraction : float;
      seed : int;
      canaries : string list;
    }

type t = {
  workers : worker array;  (* sorted by name; membership is fixed *)
  vnodes : int;
  quota : Quota.t;
  forward_timeout_s : float;
  health_period_s : float;
  canary_seed : int;
  max_clients : int;
  mutable active_bundle : string option;
  mutable ring : Chash.t;  (* live, non-draining, non-canary workers *)
  mutable canary_ring : Chash.t;  (* live canaries during a rollout *)
  mutable rollout : rollout;
  mutable served_count : int;
  mutable forwarded_count : int;
  mutable conn_shed_count : int;
  mutable unavailable_count : int;
  mutable canary_count : int;
  mutable failover_count : int;
  mutable trace_counter : int;
  mutable stop_requested : bool;
  mutable drain_requested : bool;
  healthz_cache : string Atomic.t;
}

type route = {
  rt_worker : string option;
  rt_canary : bool;
  rt_key : string;
  rt_tenant : string;
}

(* -- metrics (registered once per process) -- *)

let m_requests =
  Obs.Metrics.counter ~help:"Request lines entering the router" "clara_router_requests_total"

let m_forwarded =
  Obs.Metrics.counter ~help:"Request lines forwarded to workers" "clara_router_forwarded_total"

let m_quota_shed =
  Obs.Metrics.counter ~help:"Lines shed by per-tenant quotas" "clara_router_quota_shed_total"

let m_unavailable =
  Obs.Metrics.counter ~help:"Lines answered unavailable (worker died mid-request)"
    "clara_router_unavailable_total"

let m_canaried =
  Obs.Metrics.counter ~help:"Lines steered to canary workers" "clara_router_canaried_total"

let m_failovers =
  Obs.Metrics.counter ~help:"Worker up-to-down transitions" "clara_router_failovers_total"

let m_workers_up = Obs.Metrics.gauge ~help:"Workers currently up" "clara_router_workers_up"

(* -- construction -- *)

let canaries_of t = match t.rollout with Idle -> [] | Canary c -> c.canaries

let rebuild_rings t =
  let live =
    Array.to_list t.workers
    |> List.filter (fun w -> w.w_up && not w.w_draining)
    |> List.map (fun w -> w.w_name)
  in
  let canaries = canaries_of t in
  let mains, cans = List.partition (fun n -> not (List.mem n canaries)) live in
  t.ring <- Chash.create ~vnodes:t.vnodes mains;
  t.canary_ring <- Chash.create ~vnodes:t.vnodes cans;
  Obs.Metrics.set_gauge m_workers_up (float_of_int (List.length live))

let create ?(vnodes = 64) ?(tenant_quota = 0) ?(forward_timeout_s = 5.0)
    ?(health_period_s = 0.5) ?(canary_seed = 1) ?(max_clients = 64) ?active_bundle ~workers ()
    =
  if workers = [] then invalid_arg "Front.create: need at least one worker";
  (* A worker SIGKILLed mid-round turns the next pipelined write into a
     SIGPIPE; failover depends on seeing the EPIPE instead — ignore it
     here, not just in [run], so in-process harnesses calling
     [route_batch] directly survive worker kills too. *)
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let names = List.map fst workers in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Front.create: worker names must be unique";
  let workers =
    List.sort (fun (a, _) (b, _) -> String.compare a b) workers
    |> List.map (fun (name, socket) ->
           (* Presumed up until a probe or a failed forward says otherwise:
              the ring must be well-defined before the first health sweep. *)
           { w_name = name; w_socket = socket; w_up = true; w_draining = false;
             w_version = "unknown"; w_pid = 0; w_fd = None; w_residue = "";
             w_forwarded = 0 })
    |> Array.of_list
  in
  let t =
    { workers; vnodes; quota = Quota.create ~limit:tenant_quota (); forward_timeout_s;
      health_period_s; canary_seed; max_clients; active_bundle;
      ring = Chash.create ~vnodes []; canary_ring = Chash.create ~vnodes [];
      rollout = Idle; served_count = 0; forwarded_count = 0; conn_shed_count = 0;
      unavailable_count = 0; canary_count = 0; failover_count = 0; trace_counter = 0;
      stop_requested = false; drain_requested = false; healthz_cache = Atomic.make "{}" }
  in
  rebuild_rings t;
  t

let fresh_trace t =
  t.trace_counter <- t.trace_counter + 1;
  Printf.sprintf "r-%d" t.trace_counter

(* -- replies (same field layout as the worker's) -- *)

let ok_reply ~trace id fields =
  Jsonl.to_string
    (Jsonl.Obj
       (("id", id) :: ("ok", Jsonl.Bool true) :: ("trace_id", Jsonl.Str trace) :: fields))

let err_reply ?(extra = []) ~trace id msg =
  Jsonl.to_string
    (Jsonl.Obj
       (("id", id) :: ("ok", Jsonl.Bool false) :: ("trace_id", Jsonl.Str trace)
        :: ("error", Jsonl.Str msg) :: extra))

(* Echo id/trace even from lines that failed to parse. *)
let salvage_identity t line =
  let id = Option.value (Jsonl.salvage_member "id" line) ~default:Jsonl.Null in
  let trace =
    match Jsonl.salvage_member "trace_id" line with
    | Some (Jsonl.Str s) -> s
    | _ -> fresh_trace t
  in
  (id, trace)

let unavailable_reply t ~worker line =
  t.unavailable_count <- t.unavailable_count + 1;
  Obs.Metrics.inc m_unavailable;
  let id, trace = salvage_identity t line in
  err_reply ~trace id
    (Printf.sprintf "worker %s unavailable; retry re-hashes to a live worker" worker)
    ~extra:[ ("unavailable", Jsonl.Bool true); ("worker", Jsonl.Str worker) ]

let quota_reply t ~tenant line =
  Obs.Metrics.inc m_quota_shed;
  let id, trace = salvage_identity t line in
  err_reply ~trace id
    (Printf.sprintf "overloaded: tenant %s over its %d-lines-per-round quota" tenant
       (Quota.limit t.quota))
    ~extra:[ ("overloaded", Jsonl.Bool true); ("tenant", Jsonl.Str tenant) ]

(* -- worker connections -- *)

let close_conn w =
  (match w.w_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  w.w_fd <- None;
  w.w_residue <- ""

let mark_down t w ~why =
  close_conn w;
  if w.w_up then begin
    w.w_up <- false;
    t.failover_count <- t.failover_count + 1;
    Obs.Metrics.inc m_failovers;
    Obs.Log.warn
      ~fields:[ ("worker", Obs.Log.Str w.w_name); ("error", Obs.Log.Str why) ]
      "router.worker_down"
  end

let ensure_conn t w =
  match w.w_fd with
  | Some fd -> Ok fd
  | None -> (
    match Upstream.connect ~socket_path:w.w_socket with
    | Ok fd ->
      w.w_fd <- Some fd;
      w.w_residue <- "";
      Ok fd
    | Error e ->
      mark_down t w ~why:e;
      Error e)

(* One request/one reply over the persistent connection (rollout
   control and the up-worker health probe). *)
let worker_request t w ~timeout_s line =
  match ensure_conn t w with
  | Error _ as e -> e
  | Ok fd -> (
    match Upstream.send_lines fd [ line ] with
    | Error e ->
      mark_down t w ~why:e;
      Error e
    | Ok () -> (
      match Upstream.read_lines fd ~residue:w.w_residue ~n:1 ~timeout_s with
      | Ok (reply :: _, residue) ->
        w.w_residue <- residue;
        Ok reply
      | Ok ([], _) -> Error "protocol error: empty reply batch"
      | Error e ->
        mark_down t w ~why:e;
        Error e))

(* -- health -- *)

let health_line = {|{"cmd":"health","id":"hc"}|}

let apply_health w reply =
  match Jsonl.of_string reply with
  | Error _ -> false
  | Ok j ->
    (match Jsonl.str_member "version" j with Some v -> w.w_version <- v | None -> ());
    (match Jsonl.member "draining" j with
    | Some (Jsonl.Bool b) -> w.w_draining <- b
    | _ -> ());
    (match Jsonl.num_member "pid" j with
    | Some p -> w.w_pid <- int_of_float p
    | None -> ());
    true

let healthz_fields t =
  let workers =
    Array.to_list t.workers
    |> List.map (fun w ->
           Jsonl.Obj
             [ ("name", Jsonl.Str w.w_name); ("socket", Jsonl.Str w.w_socket);
               ("up", Jsonl.Bool w.w_up); ("draining", Jsonl.Bool w.w_draining);
               ("version", Jsonl.Str w.w_version);
               ("pid", Jsonl.Num (float_of_int w.w_pid));
               ("forwarded", Jsonl.Num (float_of_int w.w_forwarded)) ])
  in
  let rollout =
    match t.rollout with
    | Idle -> Jsonl.Obj [ ("state", Jsonl.Str "idle") ]
    | Canary { bundle; version; fraction; seed; canaries } ->
      Jsonl.Obj
        [ ("state", Jsonl.Str "canary"); ("bundle", Jsonl.Str bundle);
          ("version", Jsonl.Str version); ("fraction", Jsonl.Num fraction);
          ("seed", Jsonl.Num (float_of_int seed));
          ("canaries", Jsonl.Arr (List.map (fun n -> Jsonl.Str n) canaries)) ]
  in
  let up = Array.fold_left (fun n w -> if w.w_up then n + 1 else n) 0 t.workers in
  [ ("role", Jsonl.Str "router");
    ("pid", Jsonl.Num (float_of_int (Unix.getpid ())));
    ("workers_up", Jsonl.Num (float_of_int up));
    ("served", Jsonl.Num (float_of_int t.served_count));
    ("forwarded", Jsonl.Num (float_of_int t.forwarded_count));
    ("shed", Jsonl.Num (float_of_int (Quota.shed t.quota + t.conn_shed_count)));
    ("unavailable", Jsonl.Num (float_of_int t.unavailable_count));
    ("canaried", Jsonl.Num (float_of_int t.canary_count));
    ("failovers", Jsonl.Num (float_of_int t.failover_count));
    ("tenant_quota", Jsonl.Num (float_of_int (Quota.limit t.quota)));
    ("rollout", rollout); ("workers", Jsonl.Arr workers) ]

let healthz_json t =
  let ok = Array.exists (fun w -> w.w_up) t.workers in
  Jsonl.to_string (Jsonl.Obj (("ok", Jsonl.Bool ok) :: healthz_fields t))

let refresh_healthz t = Atomic.set t.healthz_cache (healthz_json t)
let healthz_cached t = Atomic.get t.healthz_cache

let probe t =
  Array.iter
    (fun w ->
      if w.w_up then begin
        match worker_request t w ~timeout_s:t.forward_timeout_s health_line with
        | Ok reply -> ignore (apply_health w reply)
        | Error _ -> ()  (* worker_request already marked it down *)
      end
      else
        match Upstream.oneshot ~socket_path:w.w_socket ~timeout_s:t.forward_timeout_s
                health_line
        with
        | Ok reply when apply_health w reply ->
          w.w_up <- true;
          Obs.Log.info ~fields:[ ("worker", Obs.Log.Str w.w_name) ] "router.worker_up"
        | Ok _ | Error _ -> ())
    t.workers;
  rebuild_rings t;
  refresh_healthz t

(* -- placement -- *)

let cmd_of req =
  match Jsonl.str_member "cmd" req with Some _ as c -> c | None -> Jsonl.str_member "op" req

let local_cmd = function
  | Some
      ( "health" | "topology" | "rollout" | "promote" | "rollback" | "reload" | "metrics"
      | "shutdown" ) ->
    true
  | Some _ | None -> false

(* The placement key: [analyze] requests collapse to "nf|workload" so one
   worker's flow cache warms per key; anything else (including malformed
   lines, which the worker answers with typed errors) keys on the raw
   line. *)
let forward_key req_opt line =
  match req_opt with
  | None ->
    let tenant =
      match Jsonl.salvage_member "tenant" line with Some (Jsonl.Str s) -> s | _ -> "default"
    in
    (line, tenant)
  | Some req ->
    let tenant = Option.value (Jsonl.str_member "tenant" req) ~default:"default" in
    let key =
      match cmd_of req with
      | Some "analyze" -> (
        match Jsonl.str_member "nf" req with
        | Some nf ->
          nf ^ "|" ^ Option.value (Jsonl.str_member "workload" req) ~default:"mixed"
        | None -> line)
      | _ -> line
    in
    (key, tenant)

let make_route t ~key ~tenant =
  let canary =
    match t.rollout with
    | Canary c -> Chash.canary_draw ~seed:c.seed key < c.fraction
    | Idle -> false
  in
  let primary, fallback =
    if canary then (t.canary_ring, t.ring) else (t.ring, t.canary_ring)
  in
  let worker =
    match Chash.lookup primary key with Some _ as w -> w | None -> Chash.lookup fallback key
  in
  { rt_worker = worker; rt_canary = canary; rt_key = key; rt_tenant = tenant }

let target t line =
  match Jsonl.of_string line with
  | Error _ ->
    let key, tenant = forward_key None line in
    Some (make_route t ~key ~tenant)
  | Ok req ->
    if local_cmd (cmd_of req) then None
    else begin
      let key, tenant = forward_key (Some req) line in
      Some (make_route t ~key ~tenant)
    end

(* -- rollout control -- *)

let reload_line ~bundle ~expect =
  let fields =
    [ ("cmd", Jsonl.Str "reload"); ("bundle", Jsonl.Str bundle); ("id", Jsonl.Str "rollout") ]
  in
  let fields =
    match expect with None -> fields | Some v -> fields @ [ ("expect", Jsonl.Str v) ]
  in
  Jsonl.to_string (Jsonl.Obj fields)

(* Reloads wait longer than forwards: the worker loads a bundle and
   recompiles its serving lanes before answering. *)
let reload_worker t w ~bundle ~expect =
  let timeout_s = Float.max 10.0 t.forward_timeout_s in
  match worker_request t w ~timeout_s (reload_line ~bundle ~expect) with
  | Error _ as e -> e
  | Ok reply -> (
    match Jsonl.of_string reply with
    | Error m -> Error ("unparseable reload reply: " ^ m)
    | Ok j -> (
      match Jsonl.member "ok" j with
      | Some (Jsonl.Bool true) ->
        (match Jsonl.str_member "version" j with Some v -> w.w_version <- v | None -> ());
        Ok ()
      | _ -> Error (Option.value (Jsonl.str_member "error" j) ~default:reply)))

let live_workers t =
  Array.to_list t.workers |> List.filter (fun w -> w.w_up && not w.w_draining)

let start_rollout t ~bundle ~fraction ?seed () =
  let seed = Option.value seed ~default:t.canary_seed in
  if t.rollout <> Idle then
    Error "a rollout is already in progress (promote or rollback first)"
  else if not (fraction > 0.0 && fraction <= 1.0) then Error "fraction must be in (0, 1]"
  else
    match Persist.Bundle.peek_version ~dir:bundle with
    | Error e ->
      Error (Printf.sprintf "cannot read bundle %s: %s" bundle (Persist.Wire.error_to_string e))
    | Ok version -> (
      match live_workers t with
      | [] -> Error "no live workers to canary"
      | live ->
        let n_live = List.length live in
        let n_can =
          if fraction >= 1.0 then n_live
          else
            (* keep at least one worker on the old version when we can *)
            max 1
              (min
                 (int_of_float (Float.ceil (fraction *. float_of_int n_live)))
                 (max 1 (n_live - 1)))
        in
        let chosen = List.filteri (fun i _ -> i < n_can) live in
        let rec reload_all done_ = function
          | [] -> Ok ()
          | w :: rest -> (
            match reload_worker t w ~bundle ~expect:(Some version) with
            | Ok () -> reload_all (w :: done_) rest
            | Error e ->
              (* Undo the half-rolled canaries so the fleet stays on one
                 version; best effort — a worker that just died stays
                 down and reloads on re-admission anyway. *)
              (match t.active_bundle with
              | Some old ->
                List.iter (fun w -> ignore (reload_worker t w ~bundle:old ~expect:None)) done_
              | None -> ());
              Error (Printf.sprintf "canary reload failed on %s: %s" w.w_name e))
        in
        (match reload_all [] chosen with
        | Error _ as e ->
          rebuild_rings t;
          refresh_healthz t;
          e
        | Ok () ->
          t.rollout <-
            Canary
              { bundle; version; fraction; seed;
                canaries = List.map (fun w -> w.w_name) chosen };
          rebuild_rings t;
          refresh_healthz t;
          Obs.Log.info
            ~fields:
              [ ("bundle", Obs.Log.Str bundle); ("version", Obs.Log.Str version);
                ("fraction", Obs.Log.Num fraction); ("canaries", Obs.Log.Int n_can) ]
            "router.rollout_start";
          Ok version))

let promote t =
  match t.rollout with
  | Idle -> Error "no rollout in progress"
  | Canary { bundle; version; canaries; _ } ->
    let failed = ref [] in
    Array.iter
      (fun w ->
        if not (List.mem w.w_name canaries) then
          if not w.w_up then failed := w.w_name :: !failed
          else
            match reload_worker t w ~bundle ~expect:(Some version) with
            | Ok () -> ()
            | Error _ -> failed := w.w_name :: !failed)
      t.workers;
    t.active_bundle <- Some bundle;
    t.rollout <- Idle;
    rebuild_rings t;
    refresh_healthz t;
    Obs.Log.info
      ~fields:
        [ ("version", Obs.Log.Str version); ("failed", Obs.Log.Int (List.length !failed)) ]
      "router.promote";
    Ok (version, List.rev !failed)

let rollback t =
  match t.rollout with
  | Idle -> Error "no rollout in progress"
  | Canary { canaries; _ } -> (
    match t.active_bundle with
    | None -> Error "no active bundle recorded (router started without one); cannot rollback"
    | Some old ->
      let expect =
        match Persist.Bundle.peek_version ~dir:old with Ok v -> Some v | Error _ -> None
      in
      let failed = ref [] in
      Array.iter
        (fun w ->
          if List.mem w.w_name canaries then
            if not w.w_up then failed := w.w_name :: !failed
            else
              match reload_worker t w ~bundle:old ~expect with
              | Ok () -> ()
              | Error _ -> failed := w.w_name :: !failed)
        t.workers;
      t.rollout <- Idle;
      rebuild_rings t;
      refresh_healthz t;
      Obs.Log.info
        ~fields:[ ("bundle", Obs.Log.Str old); ("failed", Obs.Log.Int (List.length !failed)) ]
        "router.rollback";
      Ok (List.rev !failed))

(* -- router-local commands -- *)

let topology_reply t ~trace id =
  ok_reply ~trace id
    [ ("ring", Jsonl.Arr (List.map (fun n -> Jsonl.Str n) (Chash.members t.ring)));
      ("canary_ring",
       Jsonl.Arr (List.map (fun n -> Jsonl.Str n) (Chash.members t.canary_ring)));
      ("vnodes", Jsonl.Num (float_of_int t.vnodes)) ]

let rollout_reply t ~trace id req =
  match Jsonl.str_member "bundle" req with
  | None -> err_reply ~trace id "rollout wants \"bundle\" (a model-bundle directory)"
  | Some bundle -> (
    let fraction = Option.value (Jsonl.num_member "fraction" req) ~default:0.1 in
    let seed = Option.map int_of_float (Jsonl.num_member "seed" req) in
    match start_rollout t ~bundle ~fraction ?seed () with
    | Error msg -> err_reply ~trace id msg
    | Ok version ->
      ok_reply ~trace id
        [ ("rollout", Jsonl.Str "canary"); ("version", Jsonl.Str version);
          ("fraction", Jsonl.Num fraction);
          ("canaries",
           Jsonl.Arr (List.map (fun n -> Jsonl.Str n) (canaries_of t))) ])

let promote_reply t ~trace id =
  match promote t with
  | Error msg -> err_reply ~trace id msg
  | Ok (version, failed) ->
    ok_reply ~trace id
      [ ("promoted", Jsonl.Bool true); ("version", Jsonl.Str version);
        ("failed", Jsonl.Arr (List.map (fun n -> Jsonl.Str n) failed)) ]

let rollback_reply t ~trace id =
  match rollback t with
  | Error msg -> err_reply ~trace id msg
  | Ok failed ->
    ok_reply ~trace id
      [ ("rolled_back", Jsonl.Bool true);
        ("failed", Jsonl.Arr (List.map (fun n -> Jsonl.Str n) failed)) ]

let shutdown_reply t ~trace id =
  let line = {|{"cmd":"shutdown","id":"rollout"}|} in
  Array.iter
    (fun w -> if w.w_up then ignore (worker_request t w ~timeout_s:1.0 line))
    t.workers;
  t.stop_requested <- true;
  ok_reply ~trace id [ ("stopping", Jsonl.Bool true) ]

type decision = Local of string | Forward of route

let decide t line =
  match Jsonl.of_string line with
  | Error _ ->
    let key, tenant = forward_key None line in
    Forward (make_route t ~key ~tenant)
  | Ok req -> (
    let id = Option.value (Jsonl.member "id" req) ~default:Jsonl.Null in
    let trace =
      match Jsonl.str_member "trace_id" req with Some s -> s | None -> fresh_trace t
    in
    match cmd_of req with
    | Some "health" -> Local (ok_reply ~trace id (healthz_fields t))
    | Some "topology" -> Local (topology_reply t ~trace id)
    | Some "rollout" -> Local (rollout_reply t ~trace id req)
    | Some "promote" -> Local (promote_reply t ~trace id)
    | Some "rollback" -> Local (rollback_reply t ~trace id)
    | Some "metrics" ->
      Local (ok_reply ~trace id [ ("metrics", Jsonl.Str (Obs.Metrics.exposition ())) ])
    | Some "reload" ->
      Local
        (err_reply ~trace id
           "reload is worker-scoped; drive fleet versions with rollout/promote/rollback")
    | Some "shutdown" -> Local (shutdown_reply t ~trace id)
    | _ ->
      let key, tenant = forward_key (Some req) line in
      Forward (make_route t ~key ~tenant))

(* -- the batch path -- *)

let route_batch t lines =
  Quota.begin_round t.quota;
  let lines_a = Array.of_list lines in
  let n = Array.length lines_a in
  let replies = Array.make n "" in
  (* worker name -> reversed [(index, line)] *)
  let groups : (string, (int * string) list ref) Hashtbl.t = Hashtbl.create 8 in
  let membership_changed = ref false in
  Array.iteri
    (fun i line ->
      t.served_count <- t.served_count + 1;
      Obs.Metrics.inc m_requests;
      match decide t line with
      | Local reply -> replies.(i) <- reply
      | Forward { rt_worker = None; _ } -> replies.(i) <- unavailable_reply t ~worker:"none" line
      | Forward { rt_worker = Some name; rt_canary; rt_tenant; _ } ->
        if not (Quota.admit t.quota ~tenant:rt_tenant) then
          replies.(i) <- quota_reply t ~tenant:rt_tenant line
        else begin
          if rt_canary then begin
            t.canary_count <- t.canary_count + 1;
            Obs.Metrics.inc m_canaried
          end;
          let g =
            match Hashtbl.find_opt groups name with
            | Some g -> g
            | None ->
              let g = ref [] in
              Hashtbl.add groups name g;
              g
          in
          g := (i, line) :: !g
        end)
    lines_a;
  let fail_group w items why =
    mark_down t w ~why;
    membership_changed := true;
    List.iter (fun (i, line) -> replies.(i) <- unavailable_reply t ~worker:w.w_name line) items
  in
  (* Phase 1: write every group; phase 2: read counted replies.  Writes
     all go first so the workers crunch their batches concurrently. *)
  let pending =
    Array.to_list t.workers
    |> List.filter_map (fun w ->
           match Hashtbl.find_opt groups w.w_name with
           | None -> None
           | Some g -> Some (w, List.rev !g))
    |> List.filter_map (fun (w, items) ->
           match ensure_conn t w with
           | Error e ->
             fail_group w items e;
             membership_changed := true;
             None
           | Ok fd -> (
             match Upstream.send_lines fd (List.map snd items) with
             | Error e ->
               fail_group w items e;
               None
             | Ok () -> Some (w, fd, items)))
  in
  List.iter
    (fun (w, fd, items) ->
      let count = List.length items in
      match
        Upstream.read_lines fd ~residue:w.w_residue ~n:count ~timeout_s:t.forward_timeout_s
      with
      | Ok (worker_replies, residue) ->
        w.w_residue <- residue;
        w.w_forwarded <- w.w_forwarded + count;
        t.forwarded_count <- t.forwarded_count + count;
        Obs.Metrics.add m_forwarded count;
        List.iter2 (fun (i, _) reply -> replies.(i) <- reply) items worker_replies
      | Error e -> fail_group w items e)
    pending;
  if !membership_changed then rebuild_rings t;
  refresh_healthz t;
  Array.to_list replies

(* -- counters -- *)

let served t = t.served_count
let forwarded t = t.forwarded_count
let shed t = Quota.shed t.quota + t.conn_shed_count
let unavailable t = t.unavailable_count
let canaried t = t.canary_count
let failovers t = t.failover_count
let request_drain t = t.drain_requested <- true
let close t = Array.iter close_conn t.workers

(* -- the event loop (same shape as Serve.Server.run) -- *)

let really_write fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let run t ~socket_path =
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let old_sigterm =
    if Sys.os_type = "Unix" then
      try Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_drain t)))
      with Invalid_argument _ | Sys_error _ -> None
    else None
  in
  Fun.protect ~finally:(fun () ->
      match old_sigterm with
      | Some h -> ( try Sys.set_signal Sys.sigterm h with Invalid_argument _ | Sys_error _ -> ())
      | None -> ())
  @@ fun () ->
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 16;
  probe t;
  Obs.Log.info
    ~fields:
      [ ("socket", Obs.Log.Str socket_path);
        ("workers", Obs.Log.Int (Array.length t.workers));
        ("vnodes", Obs.Log.Int t.vnodes);
        ("tenant_quota", Obs.Log.Int (Quota.limit t.quota));
        ("health_period_s", Obs.Log.Num t.health_period_s);
        ("max_clients", Obs.Log.Int t.max_clients) ]
    "router.start";
  let callbacks =
    { Fastpath.Evloop.on_reject =
        (fun fd ->
          t.conn_shed_count <- t.conn_shed_count + 1;
          let reply =
            err_reply ~trace:(fresh_trace t) Jsonl.Null
              (Printf.sprintf "overloaded: router at its %d-connection limit" t.max_clients)
              ~extra:[ ("overloaded", Jsonl.Bool true) ]
          in
          (try really_write fd (reply ^ "\n") with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ()));
      on_disconnect =
        (fun ~fn err ->
          Obs.Log.info
            ~fields:
              [ ("fn", Obs.Log.Str fn); ("error", Obs.Log.Str (Unix.error_message err)) ]
            "router.client_disconnected");
      on_error =
        (fun ~ctx ~fn err ->
          Obs.Log.warn
            ~fields:
              [ ("fn", Obs.Log.Str fn); ("error", Obs.Log.Str (Unix.error_message err)) ]
            ctx)
    }
  in
  let loop = Fastpath.Evloop.create ~listener ~max_clients:t.max_clients callbacks in
  let service_round batches =
    let all_lines = List.concat_map snd batches in
    if all_lines <> [] then begin
      let replies = ref (route_batch t all_lines) in
      List.iter
        (fun (conn, lines) ->
          List.iter
            (fun _ ->
              match !replies with
              | reply :: rest ->
                replies := rest;
                Fastpath.Evloop.send conn reply
              | [] -> ())
            lines)
        batches;
      Fastpath.Evloop.flush loop
    end
  in
  let next_health = ref (Obs.Clock.now_s () +. t.health_period_s) in
  let maybe_probe () =
    let now = Obs.Clock.now_s () in
    if now >= !next_health then begin
      probe t;
      next_health := Obs.Clock.now_s () +. t.health_period_s
    end
  in
  while not (t.stop_requested || t.drain_requested) do
    maybe_probe ();
    match Fastpath.Evloop.poll loop ~timeout_s:0.25 with
    | `Eintr -> ()
    | `Round batches -> service_round batches
  done;
  if t.drain_requested && not t.stop_requested then begin
    Obs.Log.info
      ~fields:[ ("clients", Obs.Log.Int (Fastpath.Evloop.clients loop)) ]
      "router.drain";
    Fastpath.Evloop.stop_accepting loop;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
    let drain_until = Obs.Clock.now_s () +. 0.5 in
    let quiescent = ref false in
    while
      (not !quiescent)
      && (not t.stop_requested)
      && Fastpath.Evloop.clients loop > 0
      && Obs.Clock.now_s () < drain_until
    do
      match Fastpath.Evloop.poll loop ~timeout_s:0.05 with
      | `Eintr -> ()
      | `Round [] -> if not (Fastpath.Evloop.has_pending loop) then quiescent := true
      | `Round batches -> service_round batches
    done
  end;
  Fastpath.Evloop.close_all loop;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  close t;
  Obs.Log.info
    ~fields:
      [ ("served", Obs.Log.Int t.served_count);
        ("forwarded", Obs.Log.Int t.forwarded_count);
        ("unavailable", Obs.Log.Int t.unavailable_count);
        ("failovers", Obs.Log.Int t.failover_count);
        ("drained", Obs.Log.Bool t.drain_requested) ]
    "router.stop"
