(** Consistent-hash ring (see chash.mli). *)

(* FNV-1a/64: tiny, allocation-free, and easy to reimplement
   independently — the test suite's pin test does exactly that. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

(* splitmix64 finalizer, as in [Serve.Client] / [Obs.Fault]. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Ring positions are finalizer-mixed: raw FNV-1a of short, similar
   strings ("w0#17", "key-42") clusters in the high bits that decide
   ring order, badly enough that a 5-member/32-vnode ring can leave a
   member with no keyspace at all.  The splitmix64 finalizer restores
   the avalanche while keeping positions a pure function of the bytes. *)
let position s = mix64 (fnv64 s)

type t = {
  points : (int64 * string) array;  (* vnode points, sorted unsigned *)
  members : string list;
  vnodes : int;
}

let create ?(vnodes = 64) names =
  if vnodes < 1 then invalid_arg "Chash.create: vnodes must be >= 1";
  let members = List.sort_uniq String.compare names in
  let points =
    List.concat_map
      (fun name -> List.init vnodes (fun i -> (position (Printf.sprintf "%s#%d" name i), name)))
      members
    |> Array.of_list
  in
  Array.sort
    (fun (a, an) (b, bn) ->
      match Int64.unsigned_compare a b with 0 -> String.compare an bn | c -> c)
    points;
  { points; members; vnodes }

let members t = t.members
let vnodes t = t.vnodes

(* First vnode clockwise from the key's hash (wrapping), so removing a
   member only remaps keys that pointed at its vnodes — ~1/n of them. *)
let lookup t key =
  let n = Array.length t.points in
  if n = 0 then None
  else begin
    let h = position key in
    let lo = ref 0 and hi = ref n in
    (* least index whose point is >= h, unsigned *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1 else hi := mid
    done;
    Some (snd t.points.(if !lo = n then 0 else !lo))
  end

let canary_draw ~seed key =
  let bits =
    mix64 (Int64.add (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L) (fnv64 key))
  in
  Int64.to_float (Int64.shift_right_logical bits 11) *. (1.0 /. 9007199254740992.0)
