(** Per-tenant, per-round admission quotas (see quota.mli). *)

type t = {
  limit : int;
  counts : (string, int ref) Hashtbl.t;
  mutable shed_count : int;
}

let create ?(limit = 0) () = { limit; counts = Hashtbl.create 16; shed_count = 0 }
let limit t = t.limit
let begin_round t = Hashtbl.reset t.counts

let admit t ~tenant =
  if t.limit <= 0 then true
  else begin
    let r =
      match Hashtbl.find_opt t.counts tenant with
      | Some r -> r
      | None ->
        let r = ref 0 in
        Hashtbl.add t.counts tenant r;
        r
    in
    if !r < t.limit then begin
      incr r;
      true
    end
    else begin
      t.shed_count <- t.shed_count + 1;
      false
    end
  end

let shed t = t.shed_count
