(** Deterministic fault-injection registry (see fault.mli). *)

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected point -> Some (Printf.sprintf "injected fault at %s" point)
    | _ -> None)

type point_state = {
  prob : float;
  seed : int;
  draws : int Atomic.t; (* next draw index when the caller supplies no key *)
  hits : int Atomic.t;
}

let lock = Mutex.create ()
let table : (string, point_state) Hashtbl.t = Hashtbl.create 8

(* Fast path: [fire] on a disarmed registry is one atomic load. *)
let n_armed = Atomic.make 0

let m_injected point =
  Metrics.counter ~help:"Faults injected by Obs.Fault"
    ~labels:[ ("point", point) ]
    "clara_fault_injected_total"

(* splitmix64 finalizer: decision i of a point is a pure function of
   (seed, i), so sequences replay exactly for a fixed seed. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float ~seed k =
  let bits =
    mix64 (Int64.add (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L) (Int64.of_int k))
  in
  Int64.to_float (Int64.shift_right_logical bits 11) *. (1.0 /. 9007199254740992.0)

let parse spec =
  let parse_one part =
    match String.split_on_char ':' (String.trim part) with
    | [ point; prob ] | [ point; prob; "" ] -> (
      match float_of_string_opt prob with
      | Some p when p >= 0.0 && p <= 1.0 -> Ok (point, p, 1)
      | _ -> Error (Printf.sprintf "bad probability %S in %S" prob part))
    | [ point; prob; seed ] -> (
      match (float_of_string_opt prob, int_of_string_opt seed) with
      | Some p, Some s when p >= 0.0 && p <= 1.0 -> Ok (point, p, s)
      | Some p, None when p >= 0.0 && p <= 1.0 ->
        Error (Printf.sprintf "bad seed %S in %S" seed part)
      | _ -> Error (Printf.sprintf "bad probability %S in %S" prob part))
    | _ -> Error (Printf.sprintf "expected point:prob[:seed], got %S" part)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest when String.trim part = "" -> go acc rest
    | part :: rest -> ( match parse_one part with Ok t -> go (t :: acc) rest | Error _ as e -> e)
  in
  go [] (String.split_on_char ',' spec)

let set ~point ~prob ~seed =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Obs.Fault.set: probability must be in [0, 1]";
  Mutex.lock lock;
  if not (Hashtbl.mem table point) then Atomic.incr n_armed;
  Hashtbl.replace table point { prob; seed; draws = Atomic.make 0; hits = Atomic.make 0 };
  Mutex.unlock lock

let remove point =
  Mutex.lock lock;
  if Hashtbl.mem table point then begin
    Hashtbl.remove table point;
    Atomic.decr n_armed
  end;
  Mutex.unlock lock

let clear () =
  Mutex.lock lock;
  Hashtbl.reset table;
  Atomic.set n_armed 0;
  Mutex.unlock lock

let active () =
  Mutex.lock lock;
  let l = Hashtbl.fold (fun p s acc -> (p, s.prob, s.seed) :: acc) table [] in
  Mutex.unlock lock;
  List.sort compare l

let find point =
  Mutex.lock lock;
  let s = Hashtbl.find_opt table point in
  Mutex.unlock lock;
  s

(* Armed-ness check without consuming a draw: one atomic load when the
   registry is empty (the common case), a locked lookup otherwise.  The
   serving fast path uses this to fall back to the full parser whenever
   its parse point is armed, so injected-fault draw sequences stay
   identical to the pre-fast-path server. *)
let armed point = Atomic.get n_armed > 0 && find point <> None

let fire ?k point =
  if Atomic.get n_armed = 0 then false
  else
    match find point with
    | None -> false
    | Some s ->
      let idx = match k with Some k -> k | None -> Atomic.fetch_and_add s.draws 1 in
      let hit = s.prob > 0.0 && (s.prob >= 1.0 || unit_float ~seed:s.seed idx < s.prob) in
      if hit then begin
        Atomic.incr s.hits;
        Metrics.inc (m_injected point)
      end;
      hit

let guard ?k point = if fire ?k point then raise (Injected point)

let fired point = match find point with Some s -> Atomic.get s.hits | None -> 0

(* Arm points named in the environment at program start; tests arm
   programmatically instead. *)
let () =
  match Sys.getenv_opt "CLARA_FAULT" with
  | None -> ()
  | Some spec -> (
    match parse spec with
    | Ok points -> List.iter (fun (point, prob, seed) -> set ~point ~prob ~seed) points
    | Error msg ->
      Log.warn ~fields:[ ("spec", Log.Str spec); ("error", Log.Str msg) ] "CLARA_FAULT ignored")
