(** Process-wide metric registry (see metrics.mli). *)

(* Counters store micro-units in an int atomic so fractional amounts
   (seconds) accumulate lock-free; histograms keep per-bucket int atomics
   and guard only the float sum with a mutex. *)

let micro = 1_000_000

type hist = {
  bounds : float array;
  counts : int Atomic.t array; (* length = Array.length bounds + 1 (+Inf) *)
  h_lock : Mutex.t;
  mutable h_sum : float;
}

type counter = { c_cell : int Atomic.t }
type gauge = { g_cell : float Atomic.t }
type histogram = hist

type value = Counter of counter | Gauge of gauge | Histogram of hist

type metric = {
  base : string;
  labels : (string * string) list;
  help : string;
  value : value;
}

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let reg_lock = Mutex.create ()

let label_string labels =
  match labels with
  | [] -> ""
  | l ->
    "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) l) ^ "}"

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let register base labels help make extract =
  let labels = List.sort compare labels in
  let key = base ^ label_string labels in
  Mutex.lock reg_lock;
  let m =
    match Hashtbl.find_opt registry key with
    | Some m -> m
    | None ->
      let m = { base; labels; help; value = make () } in
      Hashtbl.add registry key m;
      m
  in
  Mutex.unlock reg_lock;
  match extract m.value with
  | Some v -> v
  | None ->
    invalid_arg
      (Printf.sprintf "Obs.Metrics: %s is already registered as a %s" key (kind_name m.value))

(* -- counters -- *)

let counter ?(help = "") ?(labels = []) base =
  register base labels help
    (fun () -> Counter { c_cell = Atomic.make 0 })
    (function Counter c -> Some c | _ -> None)

let add c n =
  if n < 0 then invalid_arg "Obs.Metrics.add: counters are monotone";
  ignore (Atomic.fetch_and_add c.c_cell (n * micro))

let inc c = ignore (Atomic.fetch_and_add c.c_cell micro)

let addf c v =
  if not (v >= 0.0) then invalid_arg "Obs.Metrics.addf: counters are monotone";
  ignore (Atomic.fetch_and_add c.c_cell (int_of_float ((v *. float_of_int micro) +. 0.5)))

let counter_value c = float_of_int (Atomic.get c.c_cell) /. float_of_int micro

(* -- gauges -- *)

let gauge ?(help = "") ?(labels = []) base =
  register base labels help
    (fun () -> Gauge { g_cell = Atomic.make 0.0 })
    (function Gauge g -> Some g | _ -> None)

let set_gauge g v = Atomic.set g.g_cell v

let rec add_gauge g v =
  let cur = Atomic.get g.g_cell in
  if not (Atomic.compare_and_set g.g_cell cur (cur +. v)) then add_gauge g v

let gauge_value g = Atomic.get g.g_cell

(* -- histograms -- *)

let default_buckets = [| 1e-4; 5e-4; 1e-3; 5e-3; 0.025; 0.1; 0.5; 2.5; 10.0; 30.0 |]

(* Bucket bounds for request-latency histograms.  The generic defaults
   start at 100 us, which collapses every sub-15 us fast-path hit into
   one bucket; these go down to 1 us.  CLARA_LATENCY_BUCKETS overrides
   with a comma-separated list of strictly increasing seconds; a
   malformed list falls back to the built-in bounds (telemetry config
   must never take the server down). *)
let default_latency_buckets =
  [| 1e-6; 2e-6; 5e-6; 1e-5; 2.5e-5; 1e-4; 5e-4; 1e-3; 5e-3; 0.025; 0.1; 0.5; 2.5; 10.0 |]

let parse_buckets s =
  match
    String.split_on_char ',' s
    |> List.filter_map (fun tok ->
           let tok = String.trim tok in
           if tok = "" then None else Some (float_of_string tok))
  with
  | exception Failure _ -> None
  | [] -> None
  | bounds ->
      let a = Array.of_list bounds in
      let ok = ref (Float.is_finite a.(0)) in
      for i = 1 to Array.length a - 1 do
        if not (Float.is_finite a.(i) && a.(i) > a.(i - 1)) then ok := false
      done;
      if !ok then Some a else None

let latency_buckets () =
  match Sys.getenv_opt "CLARA_LATENCY_BUCKETS" with
  | None | Some "" -> default_latency_buckets
  | Some s -> ( match parse_buckets s with Some a -> a | None -> default_latency_buckets)

let histogram ?(help = "") ?(labels = []) ?(buckets = default_buckets) base =
  let k = Array.length buckets in
  if k = 0 then invalid_arg "Obs.Metrics.histogram: need at least one bucket";
  for i = 1 to k - 1 do
    if not (buckets.(i) > buckets.(i - 1)) then
      invalid_arg "Obs.Metrics.histogram: bucket bounds must be strictly increasing"
  done;
  register base labels help
    (fun () ->
      Histogram
        { bounds = Array.copy buckets;
          counts = Array.init (k + 1) (fun _ -> Atomic.make 0);
          h_lock = Mutex.create ();
          h_sum = 0.0 })
    (function Histogram h -> Some h | _ -> None)

let observe h v =
  let k = Array.length h.bounds in
  let i = ref 0 in
  while !i < k && v > h.bounds.(!i) do
    incr i
  done;
  Atomic.incr h.counts.(!i);
  Mutex.lock h.h_lock;
  h.h_sum <- h.h_sum +. v;
  Mutex.unlock h.h_lock

let histogram_count h = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts

let histogram_sum h =
  Mutex.lock h.h_lock;
  let s = h.h_sum in
  Mutex.unlock h.h_lock;
  s

let time h f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f

(* -- export -- *)

let collect () =
  Mutex.lock reg_lock;
  let ms = Hashtbl.fold (fun _ m acc -> m :: acc) registry [] in
  Mutex.unlock reg_lock;
  List.sort (fun a b -> compare (a.base, a.labels) (b.base, b.labels)) ms

let fmt_float f = Printf.sprintf "%.12g" f

(* cumulative per-bucket counts plus the grand total, read once *)
let hist_cumulative h =
  let raw = Array.map Atomic.get h.counts in
  let cum = Array.make (Array.length raw) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      acc := !acc + c;
      cum.(i) <- !acc)
    raw;
  (cum, !acc)

let bucket_labels labels le = labels @ [ ("le", le) ]

(* -- snapshots --

   Scrapes used to read and format in one pass, holding metric locks
   interleaved with formatting while the HTTP accept loop (or the socket
   server's reply assembly) waited.  A snapshot copies every value out
   under the short per-metric reads only; rendering is then pure string
   work over immutable data — a slow scrape can hold a snapshot for as
   long as it likes without stalling admission. *)

type sampled =
  | S_scalar of float
  | S_hist of { sh_bounds : float array; sh_cum : int array; sh_total : int; sh_sum : float }

type sample = {
  s_base : string;
  s_labels : (string * string) list;
  s_help : string;
  s_kind : string;
  s_value : sampled;
}

type snapshot = sample list

let snapshot () =
  List.map
    (fun m ->
      let s_value =
        match m.value with
        | Counter c -> S_scalar (counter_value c)
        | Gauge g -> S_scalar (gauge_value g)
        | Histogram h ->
          let cum, total = hist_cumulative h in
          S_hist { sh_bounds = h.bounds; sh_cum = cum; sh_total = total; sh_sum = histogram_sum h }
      in
      { s_base = m.base; s_labels = m.labels; s_help = m.help; s_kind = kind_name m.value; s_value })
    (collect ())

let render_snapshot (snap : snapshot) =
  let b = Buffer.create 1024 in
  let last_family = ref "" in
  List.iter
    (fun s ->
      if s.s_base <> !last_family then begin
        last_family := s.s_base;
        if s.s_help <> "" then
          Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" s.s_base s.s_help);
        Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" s.s_base s.s_kind)
      end;
      match s.s_value with
      | S_scalar v ->
        Buffer.add_string b
          (Printf.sprintf "%s%s %s\n" s.s_base (label_string s.s_labels) (fmt_float v))
      | S_hist h ->
        Array.iteri
          (fun i bound ->
            Buffer.add_string b
              (Printf.sprintf "%s_bucket%s %d\n" s.s_base
                 (label_string (bucket_labels s.s_labels (fmt_float bound)))
                 h.sh_cum.(i)))
          h.sh_bounds;
        Buffer.add_string b
          (Printf.sprintf "%s_bucket%s %d\n" s.s_base
             (label_string (bucket_labels s.s_labels "+Inf"))
             h.sh_total);
        Buffer.add_string b
          (Printf.sprintf "%s_sum%s %s\n" s.s_base (label_string s.s_labels) (fmt_float h.sh_sum));
        Buffer.add_string b
          (Printf.sprintf "%s_count%s %d\n" s.s_base (label_string s.s_labels) h.sh_total))
    snap;
  Buffer.contents b

let exposition () = render_snapshot (snapshot ())

let json_labels labels =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%S:%S" k v) labels)
  ^ "}"

let to_json_string () =
  let b = Buffer.create 1024 in
  let first = ref true in
  let item s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"metrics\":[";
  List.iter
    (fun m ->
      match m.value with
      | Counter c ->
        item
          (Printf.sprintf "{\"name\":%S,\"kind\":\"counter\",\"labels\":%s,\"value\":%s}" m.base
             (json_labels m.labels)
             (fmt_float (counter_value c)))
      | Gauge g ->
        item
          (Printf.sprintf "{\"name\":%S,\"kind\":\"gauge\",\"labels\":%s,\"value\":%s}" m.base
             (json_labels m.labels)
             (fmt_float (gauge_value g)))
      | Histogram h ->
        let cum, total = hist_cumulative h in
        let buckets =
          String.concat ","
            (Array.to_list
               (Array.mapi
                  (fun i bound ->
                    Printf.sprintf "{\"le\":%s,\"count\":%d}" (fmt_float bound) cum.(i))
                  h.bounds)
            @ [ Printf.sprintf "{\"le\":\"+Inf\",\"count\":%d}" total ])
        in
        item
          (Printf.sprintf
             "{\"name\":%S,\"kind\":\"histogram\",\"labels\":%s,\"count\":%d,\"sum\":%s,\"buckets\":[%s]}"
             m.base (json_labels m.labels) total
             (fmt_float (histogram_sum h))
             buckets))
    (collect ());
  Buffer.add_string b "]}";
  Buffer.contents b

let write_file path =
  let oc = open_out path in
  output_string oc (exposition ());
  close_out oc

let reset () =
  List.iter
    (fun m ->
      match m.value with
      | Counter c -> Atomic.set c.c_cell 0
      | Gauge g -> Atomic.set g.g_cell 0.0
      | Histogram h ->
        Mutex.lock h.h_lock;
        Array.iter (fun c -> Atomic.set c 0) h.counts;
        h.h_sum <- 0.0;
        Mutex.unlock h.h_lock)
    (collect ())
