(** Sampling continuous profiler over {!Span}'s live span stacks.

    A ticker domain wakes at a configured rate ([CLARA_PROF_HZ], default
    99 Hz) and samples what every domain is doing {e right now}: the
    stack of open span names, innermost to root.  Because [Domain.DLS]
    is readable only from its own domain, each domain publishes its
    current name stack into a shared single-writer cell whenever the
    profiler is on; the ticker snapshots those cells with one atomic
    load apiece.  Samples accumulate as {e folded stacks} — the
    semicolon-joined root-first paths ("serve.batch;pipeline.analyze")
    that flamegraph.pl and speedscope consume directly.

    Allocation is attributed per stack too.  [Gc.Memprof] is attempted
    first; OCaml 5.1's multicore runtime refuses it ([Gc.Memprof.start]
    raises), in which case the profiler falls back to exact per-span
    minor-word deltas: self-allocation (total minus children) is binned
    to the full stack path when each span closes.  {!memprof_active}
    reports which source is live.

    Off by default.  When off, instrumented code ({!Span.with_}) pays one
    atomic load — the same discipline as span recording, enforced by the
    [bench/main.exe obs] and [flight] gates.  Sample counts and wall
    pacing are measurement noise: tests must assert on structure (which
    paths appear), never on counts.

    Counters and tables survive {!stop}; {!reset} clears them. *)

(** Is the profiler running?  One atomic load. *)
val enabled : unit -> bool

(** Alias for {!enabled} (reads better at call sites managing the
    lifecycle). *)
val running : unit -> bool

(** Spawn the ticker domain at [hz] samples per second (default: the
    [CLARA_PROF_HZ] environment variable, else 99.0).  Idempotent while
    running.  @raise Invalid_argument when [hz <= 0]. *)
val start : ?hz:float -> unit -> unit

(** Stop and join the ticker; accumulated tables are kept. Idempotent. *)
val stop : unit -> unit

(** The configured sampling rate, 0.0 when stopped. *)
val hz : unit -> float

(** Is sampled [Gc.Memprof] attribution live (vs the exact minor-word
    fallback)?  False on OCaml 5.1's multicore runtime. *)
val memprof_active : unit -> bool

(** Drop every accumulated bucket and counter. *)
val reset : unit -> unit

(** {2 Span hooks (called by {!Span.with_}; not for application code)} *)

(** Push [name] onto this domain's published stack; returns [true] so the
    caller can pair the pop unconditionally even if the profiler stops
    mid-span. *)
val enter : string -> bool

(** Pop this domain's published stack, attributing the closing frame's
    self-allocation. *)
val exit_ : unit -> unit

(** {2 Export} *)

type stack = { path : string; samples : int; alloc_w : float }

(** Accumulated buckets, hottest first (samples, then alloc, then path —
    a reproducible order for equal counts). *)
val stacks : unit -> stack list

(** Collapsed flamegraph text: one ["path count\n"] line per sampled
    stack (paths with zero CPU samples are omitted). *)
val folded : unit -> string

(** Same shape weighted by attributed minor-heap words instead of CPU
    samples. *)
val folded_alloc : unit -> string

(** One JSON document: enablement, rate, attribution source, tick/sample
    totals, and every bucket. *)
val to_json_string : unit -> string
