(** Runtime/GC statistics sampled into {!Metrics} gauges.

    {!sample} reads [Gc.quick_stat] (cheap: no heap walk, no major slice)
    and updates the [clara_runtime_*] gauges — allocation totals, GC
    collection counts, heap size, uptime, and the domain counts; pool
    utilization gauges are published by [Util.Pool] itself and appear in
    the same exposition.

    Pull-style exporters (the [metrics] server command, [GET /metrics])
    call {!sample} before rendering, so gauges are fresh per scrape.
    {!start} additionally spawns a background domain re-sampling on a
    fixed period, for push-style consumers watching a metrics file.
    Both are idempotent and safe from any domain. *)

(** Update every [clara_runtime_*] gauge from [Gc.quick_stat]. *)
val sample : unit -> unit

(** Spawn the periodic sampler (default period 1s); no-op when already
    running.  Clamped to >= 50ms. *)
val start : ?period_s:float -> unit -> unit

(** Stop and join the sampler; no-op when not running. *)
val stop : unit -> unit

val running : unit -> bool
