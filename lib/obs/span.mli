(** Nestable timed spans with a domain-safe in-memory ring buffer.

    Spans are compiled in everywhere but recorded only while {!enabled}
    returns true, so instrumented code pays one atomic load when tracing
    is off.  Recording is allocation-light (one record per completed span)
    and the resulting structure — span names, parent links, sibling order —
    is deterministic for a deterministic program: ids are assigned in start
    order and nesting follows the dynamic call tree of each domain, never
    wall-clock comparisons.  Wall-clock fields ([start_us], [dur_us]) and
    allocation counts are measurement noise and must not be asserted on.

    The buffer holds the most recent {!capacity} completed spans; older
    events are overwritten (and counted by {!dropped}).  Export with
    {!to_chrome_json} / {!write_chrome} and open the file in
    [chrome://tracing] or [https://ui.perfetto.dev]. *)

(** One completed span.  [parent = -1] marks a root (no enclosing span on
    its domain).  [id]s are unique per process and increase in span-start
    order.  [trace] is the request trace id in effect when the span opened
    ([""] when none — see {!with_trace}).  [alloc_w] is the minor-heap
    words allocated by this domain while the span was open. *)
type event = {
  id : int;
  parent : int;
  name : string;
  cat : string;
  trace : string;
  domain : int;
  depth : int;
  start_us : float;
  dur_us : float;
  alloc_w : float;
}

(** Recording toggle.  Initialised from the [CLARA_TRACE] environment
    variable ("", "0", "false" and "no" are off; anything else is on);
    defaults to off. *)
val enabled : unit -> bool

val set_enabled : bool -> unit

(** Ring capacity in events ([CLARA_TRACE_BUF], default 65536). *)
val capacity : int

(** [with_ ?cat name f] runs [f ()] inside a span.  The span is recorded
    when [f] returns {i or raises}; the exception is re-raised.  While
    {!Prof.enabled}, the enter/exit also maintains this domain's
    published stack for the sampling profiler (one extra atomic load
    when it is off). *)
val with_ : ?cat:string -> string -> (unit -> 'a) -> 'a

(** [with_trace id f] runs [f ()] with [id] as the current domain's trace
    id: every span recorded by this domain inside [f] (and every {!Log}
    line) carries it.  Trace ids are domain-local — code that fans work
    out to other domains must call [with_trace] again inside each task
    closure.  Restores the previous trace id on return or exception.
    Always active (independent of {!enabled}). *)
val with_trace : string -> (unit -> 'a) -> 'a

(** The current domain's trace id ([""] when none). *)
val current_trace : unit -> string

(** Id of the innermost span currently open on this domain, or [-1] when
    none (spans only open while {!enabled}). *)
val current_id : unit -> int

(** Drop all buffered events (the id counter keeps advancing). *)
val reset : unit -> unit

(** Events overwritten since the last {!reset}. *)
val dropped : unit -> int

(** Snapshot of the buffered events, sorted by [id] (= start order). *)
val events : unit -> event list

(** Span tree: children are ordered by start ([id]). *)
type tree = { span : event; children : tree list }

(** Rebuild the forest from the buffer via exact parent links, roots in
    start order.  [domain] restricts to one domain's spans; [trace] to
    spans carrying one trace id (a span whose parent is filtered out
    becomes a root, so a request's subtree stands alone). *)
val forest : ?domain:int -> ?trace:string -> unit -> tree list

(** Preorder [(name, depth)] listing of a tree, for structural
    assertions that ignore wall-clock values. *)
val flatten : tree -> (string * int) list

(** Buffered events whose recorded parent is no longer in the buffer
    (only possible after ring wrap-around). *)
val orphans : unit -> event list

(** Chrome [trace_event] JSON ("X" complete events, [tid] = domain id,
    timestamps rebased to the earliest buffered span). *)
val to_chrome_json : unit -> string

val write_chrome : string -> unit
