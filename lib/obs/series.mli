(** Bounded numeric series for training telemetry (learning curves).

    A series is one {e run} of a named quantity — e.g. the per-epoch mean
    loss of one [Lstm.fit] call.  Runs live in a process-wide registry:
    {!create} opens a fresh run under its name (run numbers count up per
    name), so repeated fits — including concurrent ones on pool domains —
    never interleave their points.  Each run is a bounded ring keeping the
    most recent [capacity] points; the registry keeps the most recent
    {!max_runs} runs per name.  Recording is a mutex-guarded O(1) slot
    write, cheap enough to leave always on (like {!Metrics}, unlike
    {!Span}).

    Export everything with {!to_json_string} / {!write_file}:

    {v
    {"series":[{"name":"lstm.fit","run":1,"dropped":0,
                "points":[{"step":1,"value":214.8},...]},...]}
    v}

    Points within a run keep their recording order, so for the step-per-
    round recording done by the fits, step indices are strictly
    increasing within each run. *)

type t

(** Most recent runs kept per name; older runs are discarded. *)
val max_runs : int

(** Open a new run under [name].  [capacity] bounds its point count
    (default 4096; values below 1 are clamped to 1). *)
val create : ?capacity:int -> string -> t

val name : t -> string

(** 1-based run number within this series' name. *)
val run : t -> int

(** Append one point; evicts the oldest point when full. *)
val record : t -> step:int -> float -> unit

(** Buffered points in recording order. *)
val points : t -> (int * float) list

(** Points evicted from this run so far. *)
val dropped : t -> int

(** All registered run names, sorted, with duplicates. *)
val names : unit -> string list

(** One-line JSON of every buffered run, sorted by (name, run).
    Non-finite values render as [null]. *)
val to_json_string : unit -> string

val write_file : string -> unit

(** Drop every run (testing). *)
val reset : unit -> unit
