(** Named counters, gauges and fixed-bucket histograms with Prometheus-style
    text exposition and a JSON dump.

    Metrics live in one process-wide registry and are always on (updates
    are an atomic add or a single short critical section — cheap enough
    that, unlike spans, they need no runtime toggle).  Creation is
    idempotent: asking for an existing (name, labels) pair returns the
    registered instrument, so call sites can create at module init or on
    the hot path without bookkeeping.

    Counters are monotone (negative increments are rejected) and store
    micro-units internally, so fractional values such as seconds accumulate
    atomically without a lock. *)

type counter
type gauge
type histogram

(** @raise Invalid_argument if the (name, labels) pair is already
    registered as a different metric kind. *)
val counter : ?help:string -> ?labels:(string * string) list -> string -> counter

val inc : counter -> unit

(** @raise Invalid_argument on negative increments (counters are monotone). *)
val add : counter -> int -> unit

(** Add a fractional amount (e.g. seconds); micro-unit resolution. *)
val addf : counter -> float -> unit

val counter_value : counter -> float

val gauge : ?help:string -> ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** [buckets] are the inclusive upper bounds, strictly increasing; an
    implicit +Inf bucket is appended.  Default buckets suit latencies in
    seconds: 100us ... 30s. *)
val histogram :
  ?help:string -> ?labels:(string * string) list -> ?buckets:float array -> string -> histogram

(** Bucket bounds for request-latency histograms: finer than the
    defaults at the low end (down to 1 us) so sub-15 us fast-path hits
    resolve instead of collapsing into one bucket.  Overridable via
    [CLARA_LATENCY_BUCKETS], a comma-separated strictly increasing
    list of seconds; malformed values fall back to the built-ins. *)
val latency_buckets : unit -> float array

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** Run [f ()], observe its wall-clock duration in seconds, return its
    result (also on exception). *)
val time : histogram -> (unit -> 'a) -> 'a

(** A point-in-time copy of every registered value, taken under the short
    per-metric reads only.  Rendering a snapshot is pure string work over
    immutable data, so a slow scrape (or a scrape serialized behind an
    accept loop) never holds registry or histogram locks. *)
type snapshot

val snapshot : unit -> snapshot
val render_snapshot : snapshot -> string

(** Prometheus text exposition: [# HELP] / [# TYPE] per family, families
    and label sets in sorted order, histograms with cumulative
    [_bucket{le=...}] lines plus [_sum] and [_count].  Equivalent to
    [render_snapshot (snapshot ())]. *)
val exposition : unit -> string

(** One-line JSON dump of every registered metric. *)
val to_json_string : unit -> string

val write_file : string -> unit

(** Zero every registered value (instruments stay registered).  Testing
    only: counters are meant to be monotone over a process lifetime. *)
val reset : unit -> unit
