(** Mergeable constant-memory streaming quantile sketch.

    DDSketch-style log-bucketed histogram with a relative-error
    guarantee: for any quantile [q], the reported value is within a
    relative [alpha] of the true value (for magnitudes inside
    [[min_mag, max_mag]]).  Unlike the collapsing DDSketch variant the
    bucket index range is fixed at creation, so {!merge} is an
    element-wise integer add: exactly associative and commutative,
    which makes sketch contents bit-identical regardless of how
    samples were partitioned across shards or domains.  Handles
    signed values (separate positive/negative stores plus a zero
    bucket), so signed relative prediction errors can be sketched
    directly.  All operations are thread-safe. *)

type t

val create : ?alpha:float -> ?min_mag:float -> ?max_mag:float -> unit -> t
(** [create ()] makes an empty sketch.  [alpha] (default 0.01) is the
    relative-error bound; [min_mag] (default 1e-6) is the magnitude
    below which values count as zero; [max_mag] (default 1e9) clamps
    the largest tracked magnitude.  Raises [Invalid_argument] unless
    [0 < alpha < 1] and [0 < min_mag < max_mag]. *)

val alpha : t -> float
(** Relative-error bound this sketch was created with. *)

val add : t -> float -> unit
(** Record one sample.  Non-finite values are ignored. *)

val count : t -> int
(** Number of samples recorded. *)

val sum : t -> float
(** Exact running sum of recorded samples. *)

val min_value : t -> float
(** Exact minimum recorded sample ([infinity] when empty). *)

val max_value : t -> float
(** Exact maximum recorded sample ([neg_infinity] when empty). *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in [[0, 1]]: a value within relative
    [alpha] of the true [q]-quantile of the recorded samples.  [nan]
    when the sketch is empty.  Raises [Invalid_argument] on [q]
    outside [[0, 1]]. *)

val merge : t -> t -> t
(** [merge a b] is a fresh sketch holding the union of both sample
    streams.  Exactly associative and commutative on bucket counts.
    Raises [Invalid_argument] if the sketches were created with
    different [alpha]/[min_mag]/[max_mag]. *)

val reset : t -> unit
(** Drop all recorded samples, keeping the geometry. *)

val to_json_string : ?name:string -> t -> string
(** One-line JSON object: [alpha], [count], [zero], [sum], [min],
    [max] and the p50/p90/p99/p999 quantiles. *)

val to_prometheus : ?labels:(string * string) list -> name:string -> t -> string
(** Prometheus text-format summary: one [quantile]-labelled sample
    line per exported quantile plus [_sum] and [_count]. *)
