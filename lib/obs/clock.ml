(** Wall-clock for instrumentation timing. *)

let now_s = Unix.gettimeofday
