(** Wall-clock seconds since the epoch, for instrumentation timing. *)
val now_s : unit -> float
