(** Domain-safe structured JSONL logger (see log.mli). *)

type level = Debug | Info | Warn | Error

type value = Str of string | Num of float | Int of int | Bool of bool

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3
let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn" | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let threshold =
  Atomic.make
    (match Option.bind (Sys.getenv_opt "CLARA_LOG_LEVEL") level_of_string with
    | Some l -> level_rank l
    | None -> level_rank Info)

let set_level l = Atomic.set threshold (level_rank l)

let level () =
  match Atomic.get threshold with 0 -> Debug | 1 -> Info | 2 -> Warn | _ -> Error

let enabled l = level_rank l >= Atomic.get threshold

(* -- sinks --

   The live sink is one immutable record behind an Atomic; [emit] holds the
   sink's own mutex only around the write, so lines from racing domains
   never interleave.  A swap exchanges the record and closes the old file
   handle afterwards; a writer that loaded the old record finishes its line
   first because the exchange happens-before the close only via this
   thread, and out_channel writes after close raise — which emit
   swallows (losing at most the lines racing the swap, never crashing). *)

type sink = Stderr | File of string | Custom of (string -> unit) | Off

type impl = { emit : string -> unit; close : unit -> unit }

let make_impl = function
  | Off -> { emit = ignore; close = ignore }
  | Custom f ->
    let m = Mutex.create () in
    { emit =
        (fun line ->
          Mutex.lock m;
          (try f line with _ -> ());
          Mutex.unlock m);
      close = ignore }
  | Stderr ->
    let m = Mutex.create () in
    { emit =
        (fun line ->
          Mutex.lock m;
          (try
             output_string stderr line;
             output_char stderr '\n';
             flush stderr
           with Sys_error _ -> ());
          Mutex.unlock m);
      close = ignore }
  | File path ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    let m = Mutex.create () in
    { emit =
        (fun line ->
          Mutex.lock m;
          (try
             output_string oc line;
             output_char oc '\n';
             flush oc
           with Sys_error _ -> ());
          Mutex.unlock m);
      close = (fun () -> try close_out oc with Sys_error _ -> ()) }

let sink_of_env () =
  match Sys.getenv_opt "CLARA_LOG" with
  | None | Some "" | Some "stderr" | Some "-" -> Stderr
  | Some ("off" | "none" | "0") -> Off
  | Some path -> File path

let current = Atomic.make (make_impl (sink_of_env ()))

let set_sink s =
  let old = Atomic.exchange current (make_impl s) in
  old.close ()

(* -- rendering -- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let add_value b = function
  | Str s ->
    Buffer.add_char b '"';
    Buffer.add_string b (json_escape s);
    Buffer.add_char b '"'
  | Num f ->
    if Float.is_finite f then Buffer.add_string b (Printf.sprintf "%.12g" f)
    else Buffer.add_string b "null"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Bool v -> Buffer.add_string b (if v then "true" else "false")

let timestamp () =
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  let ms = int_of_float ((t -. Float.of_int (int_of_float t)) *. 1000.0) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
    (max 0 (min 999 ms))

let log lvl ?(fields = []) msg =
  if enabled lvl then begin
    let b = Buffer.create 160 in
    Buffer.add_string b "{\"ts\":\"";
    Buffer.add_string b (timestamp ());
    Buffer.add_string b "\",\"level\":\"";
    Buffer.add_string b (level_name lvl);
    Buffer.add_string b "\",\"msg\":\"";
    Buffer.add_string b (json_escape msg);
    Buffer.add_char b '"';
    (let trace = Span.current_trace () in
     if trace <> "" then begin
       Buffer.add_string b ",\"trace\":\"";
       Buffer.add_string b (json_escape trace);
       Buffer.add_char b '"'
     end);
    (let span = Span.current_id () in
     if span >= 0 then begin
       Buffer.add_string b ",\"span\":";
       Buffer.add_string b (string_of_int span)
     end);
    List.iter
      (fun (k, v) ->
        Buffer.add_string b ",\"";
        Buffer.add_string b (json_escape k);
        Buffer.add_string b "\":";
        add_value b v)
      fields;
    Buffer.add_char b '}';
    (Atomic.get current).emit (Buffer.contents b)
  end

let debug ?fields msg = log Debug ?fields msg
let info ?fields msg = log Info ?fields msg
let warn ?fields msg = log Warn ?fields msg
let error ?fields msg = log Error ?fields msg
