(** Declarative SLOs with multi-window burn-rate alerts (see slo.mli). *)

type kind = Latency of float | Availability

(* One alert window: [buckets] time buckets of [width] seconds each,
   reset lazily when a bucket's epoch goes stale (standard ring-of-
   counters rolling window — O(1) record, O(buckets) read). *)
type window = {
  w_name : string;
  span_s : float;
  threshold : float;
  width : float;
  epochs : int array;
  good : int array;
  bad : int array;
}

type t = {
  name : string;
  objective : float;
  kind : kind;
  windows : window list;
  lock : Mutex.t;
}

let buckets_per_window = 60

let default_windows = [ ("fast", 300.0, 14.4); ("slow", 3600.0, 6.0) ]

let make_window (w_name, span_s, threshold) =
  if span_s <= 0.0 then invalid_arg "Obs.Slo: window span must be positive";
  { w_name; span_s; threshold;
    width = span_s /. float_of_int buckets_per_window;
    epochs = Array.make buckets_per_window (-1);
    good = Array.make buckets_per_window 0;
    bad = Array.make buckets_per_window 0 }

let create ?(windows = default_windows) ~name ~objective kind =
  if not (objective > 0.0 && objective < 1.0) then
    invalid_arg "Obs.Slo.create: objective must be in (0, 1)";
  if windows = [] then invalid_arg "Obs.Slo.create: need at least one window";
  { name; objective; kind; windows = List.map make_window windows; lock = Mutex.create () }

let name t = t.name
let objective t = t.objective
let kind t = t.kind

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch w now =
  let epoch = int_of_float (Float.floor (now /. w.width)) in
  let slot = ((epoch mod buckets_per_window) + buckets_per_window) mod buckets_per_window in
  if w.epochs.(slot) <> epoch then begin
    w.epochs.(slot) <- epoch;
    w.good.(slot) <- 0;
    w.bad.(slot) <- 0
  end;
  slot

let record ?now t ~good =
  let now = match now with Some n -> n | None -> Clock.now_s () in
  with_lock t @@ fun () ->
  List.iter
    (fun w ->
      let slot = touch w now in
      if good then w.good.(slot) <- w.good.(slot) + 1
      else w.bad.(slot) <- w.bad.(slot) + 1)
    t.windows

let record_latency ?now t dt_s =
  match t.kind with
  | Latency threshold -> record ?now t ~good:(dt_s <= threshold)
  | Availability -> invalid_arg "Obs.Slo.record_latency: availability SLO"

(* Sum a window's buckets that are still inside [now - span, now]. *)
let window_totals w now =
  let epoch_now = int_of_float (Float.floor (now /. w.width)) in
  let lo = epoch_now - buckets_per_window + 1 in
  let good = ref 0 and bad = ref 0 in
  for slot = 0 to buckets_per_window - 1 do
    let e = w.epochs.(slot) in
    if e >= lo && e <= epoch_now then begin
      good := !good + w.good.(slot);
      bad := !bad + w.bad.(slot)
    end
  done;
  (!good, !bad)

let burn_of t good bad =
  let total = good + bad in
  if total = 0 then 0.0
  else
    let bad_ratio = float_of_int bad /. float_of_int total in
    bad_ratio /. (1.0 -. t.objective)

let burn_rates ?now t =
  let now = match now with Some n -> n | None -> Clock.now_s () in
  with_lock t @@ fun () ->
  List.map
    (fun w ->
      let good, bad = window_totals w now in
      (w.w_name, burn_of t good bad))
    t.windows

let firing ?now t =
  let now = match now with Some n -> n | None -> Clock.now_s () in
  with_lock t @@ fun () ->
  List.for_all
    (fun w ->
      let good, bad = window_totals w now in
      burn_of t good bad > w.threshold)
    t.windows

let fmt_float f = if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let to_json_string ?now t =
  let now = match now with Some n -> n | None -> Clock.now_s () in
  with_lock t @@ fun () ->
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"name\":%S,\"objective\":%s,\"kind\":%s" t.name
       (fmt_float t.objective)
       (match t.kind with
       | Latency thr -> Printf.sprintf "{\"latency_s\":%s}" (fmt_float thr)
       | Availability -> "\"availability\""));
  Buffer.add_string b ",\"windows\":[";
  List.iteri
    (fun i w ->
      if i > 0 then Buffer.add_char b ',';
      let good, bad = window_totals w now in
      Buffer.add_string b
        (Printf.sprintf
           "{\"window\":%S,\"span_s\":%s,\"good\":%d,\"bad\":%d,\"burn_rate\":%s,\"threshold\":%s,\"over\":%b}"
           w.w_name (fmt_float w.span_s) good bad
           (fmt_float (burn_of t good bad))
           (fmt_float w.threshold)
           (burn_of t good bad > w.threshold)))
    t.windows;
  Buffer.add_string b "]";
  let all_over =
    List.for_all
      (fun w ->
        let good, bad = window_totals w now in
        burn_of t good bad > w.threshold)
      t.windows
  in
  Buffer.add_string b (Printf.sprintf ",\"firing\":%b}" all_over);
  Buffer.contents b
