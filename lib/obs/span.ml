(** Nestable timed spans over a domain-safe ring buffer (see span.mli). *)

type event = {
  id : int;
  parent : int;
  name : string;
  cat : string;
  trace : string;
  domain : int;
  depth : int;
  start_us : float;
  dur_us : float;
  alloc_w : float;
}

let truthy = function "" | "0" | "false" | "no" -> false | _ -> true

let enabled_flag =
  Atomic.make (match Sys.getenv_opt "CLARA_TRACE" with Some v -> truthy v | None -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

let capacity =
  match Sys.getenv_opt "CLARA_TRACE_BUF" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with Some n when n >= 16 -> n | _ -> 65536)
  | None -> 65536

(* -- the ring --

   One mutex guards the ring; it is held only for the O(1) slot write, so
   worker domains recording concurrently contend for nanoseconds.  Ids come
   from a lock-free counter at span start, which makes id order = start
   order even though events are pushed at span end. *)

let dummy =
  { id = -1; parent = -1; name = ""; cat = ""; trace = ""; domain = 0; depth = 0;
    start_us = 0.0; dur_us = 0.0; alloc_w = 0.0 }

let buf = Array.make capacity dummy
let buf_lock = Mutex.create ()
let written = ref 0 (* events pushed since last reset *)
let next_id = Atomic.make 0

let record ev =
  Mutex.lock buf_lock;
  buf.(!written mod capacity) <- ev;
  incr written;
  Mutex.unlock buf_lock

let reset () =
  Mutex.lock buf_lock;
  written := 0;
  Array.fill buf 0 capacity dummy;
  Mutex.unlock buf_lock

let dropped () =
  Mutex.lock buf_lock;
  let d = max 0 (!written - capacity) in
  Mutex.unlock buf_lock;
  d

let events () =
  Mutex.lock buf_lock;
  let n = min !written capacity in
  let first = !written - n in
  let out = Array.init n (fun i -> buf.((first + i) mod capacity)) in
  Mutex.unlock buf_lock;
  Array.sort (fun a b -> compare a.id b.id) out;
  Array.to_list out

(* -- recording -- *)

(* (id, depth) per open span, innermost first, per domain *)
let open_spans : (int * int) list Domain.DLS.key = Domain.DLS.new_key (fun () -> [])

(* -- trace correlation --

   A trace id names the logical request a span belongs to.  It lives in
   domain-local storage, so code fanning work out to other domains must
   re-establish it inside the task closure (the server does exactly that);
   within one domain it is inherited by every nested span. *)

let current_trace_key : string Domain.DLS.key = Domain.DLS.new_key (fun () -> "")

let current_trace () = Domain.DLS.get current_trace_key

let with_trace trace f =
  let old = Domain.DLS.get current_trace_key in
  Domain.DLS.set current_trace_key trace;
  Fun.protect ~finally:(fun () -> Domain.DLS.set current_trace_key old) f

let current_id () =
  match Domain.DLS.get open_spans with [] -> -1 | (id, _) :: _ -> id

let now_us () = Unix.gettimeofday () *. 1e6
let alloc_words () = Gc.minor_words ()

(* The profiler piggybacks on span boundaries: when it is running, each
   enter/exit also maintains this domain's published name stack so the
   ticker domain can sample it (Prof owns that cell — DLS here is not
   readable cross-domain).  [pushed] pairs the pop with the push even if
   the profiler stops mid-span.  With both tracing and profiling off the
   hook costs two atomic loads. *)
let with_ ?(cat = "clara") name f =
  let span_on = Atomic.get enabled_flag in
  let prof_on = Prof.enabled () in
  if not (span_on || prof_on) then f ()
  else begin
    let pushed = prof_on && Prof.enter name in
    if not span_on then
      Fun.protect ~finally:(fun () -> if pushed then Prof.exit_ ()) f
    else begin
      let id = Atomic.fetch_and_add next_id 1 in
      let stack = Domain.DLS.get open_spans in
      let parent, depth = match stack with [] -> (-1, 0) | (p, d) :: _ -> (p, d + 1) in
      Domain.DLS.set open_spans ((id, depth) :: stack);
      let a0 = alloc_words () in
      let t0 = now_us () in
      Fun.protect
        ~finally:(fun () ->
          let dur_us = now_us () -. t0 in
          let alloc_w = alloc_words () -. a0 in
          (match Domain.DLS.get open_spans with
          | _ :: rest -> Domain.DLS.set open_spans rest
          | [] -> ());
          record
            { id; parent; name; cat; trace = Domain.DLS.get current_trace_key;
              domain = (Domain.self () :> int); depth;
              start_us = t0; dur_us; alloc_w };
          if pushed then Prof.exit_ ())
        f
    end
  end

(* -- tree reconstruction -- *)

type tree = { span : event; children : tree list }

module Ints = Set.Make (Int)

let known_ids evs =
  List.fold_left (fun s (e : event) -> Ints.add e.id s) Ints.empty evs

let forest ?domain ?trace () =
  let evs = events () in
  let evs =
    match domain with None -> evs | Some d -> List.filter (fun e -> e.domain = d) evs
  in
  let evs =
    match trace with None -> evs | Some t -> List.filter (fun e -> e.trace = t) evs
  in
  let ids = known_ids evs in
  let by_parent = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let key = if e.parent >= 0 && Ints.mem e.parent ids then e.parent else -1 in
      Hashtbl.replace by_parent key (e :: Option.value (Hashtbl.find_opt by_parent key) ~default:[]))
    (List.rev evs) (* reversed so each bucket ends up in ascending id order *)
  ;
  let rec build (e : event) =
    let kids = Option.value (Hashtbl.find_opt by_parent e.id) ~default:[] in
    { span = e; children = List.map build kids }
  in
  (* roots: true roots plus orphans-by-eviction, in start order *)
  List.map build (Option.value (Hashtbl.find_opt by_parent (-1)) ~default:[])

let rec flatten_into acc depth t =
  let acc = (t.span.name, depth) :: acc in
  List.fold_left (fun acc c -> flatten_into acc (depth + 1) c) acc t.children

(** Preorder (name, depth) walk for structural assertions. *)
let flatten t = List.rev (flatten_into [] 0 t)

let orphans () =
  let evs = events () in
  let ids = known_ids evs in
  List.filter (fun e -> e.parent >= 0 && not (Ints.mem e.parent ids)) evs

(* -- Chrome trace export -- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json () =
  let evs = events () in
  let t0 = List.fold_left (fun acc e -> Float.min acc e.start_us) Float.infinity evs in
  let t0 = if t0 = Float.infinity then 0.0 else t0 in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"id\":%d,\"parent\":%d,\"depth\":%d,\"alloc_words\":%.0f,\"trace\":\"%s\"}}"
           (json_escape e.name) (json_escape e.cat) (e.start_us -. t0) e.dur_us e.domain e.id
           e.parent e.depth e.alloc_w (json_escape e.trace)))
    evs;
  Buffer.add_string b
    (Printf.sprintf "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped\":%d}}" (dropped ()));
  Buffer.contents b

let write_chrome path =
  let oc = open_out path in
  output_string oc (to_chrome_json ());
  output_char oc '\n';
  close_out oc
