(** Deterministic, seedable fault injection.

    Production code threads named {e fault points} through its failure
    paths — [Persist.Wire] reads and writes, [Serve.Jsonl] parsing,
    [Util.Pool] task bodies, the insight server's socket I/O — and the
    adversarial test layer (plus [CLARA_FAULT] in the environment) arms
    them.  A disarmed point costs one atomic load, so the hooks stay
    compiled into release builds.

    Configuration is [point:prob:seed], comma-separated for several
    points, e.g.

    {v
    CLARA_FAULT=persist.read:1.0:42,serve.write:0.05:7
    v}

    Decisions are pure functions of [(seed, draw index)] (splitmix64
    finalizer), so a fixed seed yields the same injection sequence on
    every run.  When the caller supplies the draw key [k] explicitly
    (e.g. a pool chunk index), the decision is independent of call order
    too — identical under [CLARA_JOBS=1] and [=4].

    Registered points (the convention, not an enforced list):
    - [persist.read]  — {!Persist.Wire.read_file} returns [Io_error]
    - [persist.write] — {!Persist.Wire.write_file} tears its temp file
      and raises {!Injected}, simulating a writer killed mid-write
    - [jsonl.parse]   — {!Serve.Jsonl.of_string} returns [Error]
    - [pool.task]     — {!Util.Pool} raises {!Injected} in a task body
    - [serve.accept] / [serve.read] / [serve.write] — the server raises
      [Unix.Unix_error] ([EMFILE] / [ECONNRESET] / [EPIPE]) around the
      corresponding socket call *)

(** Raised by armed {!guard} calls (and by injection sites that simulate
    a crash rather than an error return). *)
exception Injected of string

(** Parse a [CLARA_FAULT]-style spec into [(point, prob, seed)] triples.
    The seed is optional ([point:prob] seeds with 1); probabilities must
    lie in [0, 1]. *)
val parse : string -> ((string * float * int) list, string) result

(** Arm [point]: each draw fires with probability [prob], deterministic
    in [seed].  Re-arming a point replaces its config and resets its
    counters.
    @raise Invalid_argument unless [0 <= prob <= 1]. *)
val set : point:string -> prob:float -> seed:int -> unit

val remove : string -> unit

(** Disarm every point (including ones armed from the environment). *)
val clear : unit -> unit

(** Armed points as [(point, prob, seed)], sorted by name. *)
val active : unit -> (string * float * int) list

(** Should this draw inject a fault?  Disarmed points answer [false] in
    one atomic load.  Without [k] the draw index is a per-point counter
    (deterministic sequence, order-dependent assignment); with [k] the
    decision depends only on [(seed, k)]. *)
val fire : ?k:int -> string -> bool

(** Is [point] armed?  Unlike {!fire} this consumes no draw, so code can
    route around an armed point (e.g. the serving fast path handing armed
    parse faults to the full parser) without perturbing the deterministic
    draw sequence. *)
val armed : string -> bool

(** {!fire}, raising [Injected point] on [true]. *)
val guard : ?k:int -> string -> unit

(** Number of injections this point has performed since it was armed. *)
val fired : string -> int
