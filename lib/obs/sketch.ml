(** Mergeable constant-memory streaming quantile sketch (see sketch.mli). *)

(* DDSketch-style log-bucketed histogram over a *fixed* index range.
   Values are mapped to buckets by ceil(ln |v| / ln gamma) with
   gamma = (1 + alpha) / (1 - alpha); the representative value of bucket
   [i] is the bucket midpoint 2*gamma^i / (gamma + 1), which is within a
   relative [alpha] of every value the bucket covers.  Unlike the
   collapsing DDSketch variant, the bucket range here is fixed at
   creation (magnitudes are clamped into [min_mag, max_mag]), so a merge
   is an element-wise integer add — exactly associative and commutative,
   which the determinism tests rely on.  Signed values keep separate
   positive and negative stores plus a zero bucket. *)

type t = {
  alpha : float;
  gamma : float;
  log_gamma : float;
  min_mag : float;
  max_mag : float;
  idx_lo : int; (* bucket index of min_mag *)
  pos : int array;
  neg : int array;
  mutable zero : int;
  mutable k_count : int;
  mutable k_sum : float;
  mutable k_min : float;
  mutable k_max : float;
  lock : Mutex.t;
}

let create ?(alpha = 0.01) ?(min_mag = 1e-6) ?(max_mag = 1e9) () =
  if not (alpha > 0.0 && alpha < 1.0) then
    invalid_arg "Obs.Sketch.create: alpha must be in (0, 1)";
  if not (min_mag > 0.0 && max_mag > min_mag) then
    invalid_arg "Obs.Sketch.create: need 0 < min_mag < max_mag";
  let gamma = (1.0 +. alpha) /. (1.0 -. alpha) in
  let log_gamma = log gamma in
  let idx_lo = int_of_float (Float.floor (log min_mag /. log_gamma)) in
  let idx_hi = int_of_float (Float.ceil (log max_mag /. log_gamma)) in
  let n = idx_hi - idx_lo + 1 in
  { alpha; gamma; log_gamma; min_mag; max_mag; idx_lo;
    pos = Array.make n 0; neg = Array.make n 0;
    zero = 0; k_count = 0; k_sum = 0.0; k_min = infinity; k_max = neg_infinity;
    lock = Mutex.create () }

let alpha t = t.alpha

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Bucket index of a magnitude, clamped into the fixed range. *)
let index_of t m =
  let m = Float.min t.max_mag m in
  let i = int_of_float (Float.ceil (log m /. t.log_gamma)) in
  let n = Array.length t.pos in
  max 0 (min (n - 1) (i - t.idx_lo))

(* Midpoint representative of bucket [slot]: exact inverse of
   {!index_of} up to the alpha bound. *)
let rep_of t slot =
  2.0 *. exp (float_of_int (slot + t.idx_lo) *. t.log_gamma) /. (t.gamma +. 1.0)

let add t v =
  if Float.is_finite v then
    with_lock t @@ fun () ->
    let m = Float.abs v in
    if m < t.min_mag then t.zero <- t.zero + 1
    else begin
      let slot = index_of t m in
      if v > 0.0 then t.pos.(slot) <- t.pos.(slot) + 1
      else t.neg.(slot) <- t.neg.(slot) + 1
    end;
    t.k_count <- t.k_count + 1;
    t.k_sum <- t.k_sum +. v;
    if v < t.k_min then t.k_min <- v;
    if v > t.k_max then t.k_max <- v

let count t = with_lock t (fun () -> t.k_count)
let sum t = with_lock t (fun () -> t.k_sum)
let min_value t = with_lock t (fun () -> t.k_min)
let max_value t = with_lock t (fun () -> t.k_max)

let same_geometry a b =
  a.alpha = b.alpha && a.min_mag = b.min_mag && a.max_mag = b.max_mag
  && Array.length a.pos = Array.length b.pos

let merge a b =
  if not (same_geometry a b) then
    invalid_arg "Obs.Sketch.merge: sketches have different geometry";
  (* copy both under their own locks, then combine the immutable copies *)
  let snap t =
    with_lock t (fun () ->
        (Array.copy t.pos, Array.copy t.neg, t.zero, t.k_count, t.k_sum, t.k_min, t.k_max))
  in
  let pa, na, za, ca, sa, mina, maxa = snap a in
  let pb, nb, zb, cb, sb, minb, maxb = snap b in
  let out = create ~alpha:a.alpha ~min_mag:a.min_mag ~max_mag:a.max_mag () in
  Array.iteri (fun i v -> out.pos.(i) <- v + pb.(i)) pa;
  Array.iteri (fun i v -> out.neg.(i) <- v + nb.(i)) na;
  out.zero <- za + zb;
  out.k_count <- ca + cb;
  out.k_sum <- sa +. sb;
  out.k_min <- Float.min mina minb;
  out.k_max <- Float.max maxa maxb;
  out

(* Quantile by cumulative walk in value order: negatives from the most
   negative bucket (highest slot) down, then zeros, then positives from
   the smallest slot up.  Rank is the DDSketch convention
   ceil(q * count), clamped to [1, count]. *)
let quantile t q =
  if not (q >= 0.0 && q <= 1.0) then invalid_arg "Obs.Sketch.quantile: q must be in [0, 1]";
  with_lock t @@ fun () ->
  if t.k_count = 0 then nan
  else begin
    let rank = max 1 (min t.k_count (int_of_float (Float.ceil (q *. float_of_int t.k_count)))) in
    let n = Array.length t.pos in
    let acc = ref 0 in
    let result = ref nan in
    (try
       for slot = n - 1 downto 0 do
         if t.neg.(slot) > 0 then begin
           acc := !acc + t.neg.(slot);
           if !acc >= rank then begin
             result := -.rep_of t slot;
             raise Exit
           end
         end
       done;
       if t.zero > 0 then begin
         acc := !acc + t.zero;
         if !acc >= rank then begin
           result := 0.0;
           raise Exit
         end
       end;
       for slot = 0 to n - 1 do
         if t.pos.(slot) > 0 then begin
           acc := !acc + t.pos.(slot);
           if !acc >= rank then begin
             result := rep_of t slot;
             raise Exit
           end
         end
       done
     with Exit -> ());
    !result
  end

let reset t =
  with_lock t @@ fun () ->
  Array.fill t.pos 0 (Array.length t.pos) 0;
  Array.fill t.neg 0 (Array.length t.neg) 0;
  t.zero <- 0;
  t.k_count <- 0;
  t.k_sum <- 0.0;
  t.k_min <- infinity;
  t.k_max <- neg_infinity

(* -- export -- *)

let fmt_float f = if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let export_quantiles = [ (0.5, "p50"); (0.9, "p90"); (0.99, "p99"); (0.999, "p999") ]

let to_json_string ?(name = "") t =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  if name <> "" then Buffer.add_string b (Printf.sprintf "\"name\":%S," name);
  Buffer.add_string b
    (Printf.sprintf "\"alpha\":%s,\"count\":%d,\"zero\":%d,\"sum\":%s,\"min\":%s,\"max\":%s"
       (fmt_float t.alpha) (count t)
       (with_lock t (fun () -> t.zero))
       (fmt_float (sum t))
       (fmt_float (min_value t))
       (fmt_float (max_value t)));
  List.iter
    (fun (q, label) ->
      Buffer.add_string b (Printf.sprintf ",\"%s\":%s" label (fmt_float (quantile t q))))
    export_quantiles;
  Buffer.add_char b '}';
  Buffer.contents b

let label_string labels =
  match labels with
  | [] -> ""
  | l -> "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) l) ^ "}"

let to_prometheus ?(labels = []) ~name t =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "# TYPE %s summary\n" name);
  List.iter
    (fun (q, _) ->
      Buffer.add_string b
        (Printf.sprintf "%s%s %s\n" name
           (label_string (labels @ [ ("quantile", fmt_float q) ]))
           (fmt_float (quantile t q))))
    export_quantiles;
  Buffer.add_string b
    (Printf.sprintf "%s_sum%s %s\n" name (label_string labels) (fmt_float (sum t)));
  Buffer.add_string b (Printf.sprintf "%s_count%s %d\n" name (label_string labels) (count t));
  Buffer.contents b
