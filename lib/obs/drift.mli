(** Windowed drift detection over a scalar error series.

    Two complementary detectors watch every observed stream:

    - {b Page-Hinkley} ("ph"): cumulative deviation from the running
      mean, two-sided.  Fires when the gap between the cumulative sum
      and its historical extremum exceeds [ph_lambda] — sensitive to
      sustained mean shifts, robust to isolated outliers.
    - {b two-window quantile distance} ("qdist"): compares the
      quantiles (p10..p90) of the older and newer halves of a sliding
      [2*window] ring.  Fires when the mean absolute quantile gap,
      relative to the reference window's magnitude, exceeds
      [q_threshold] — catches distribution-shape changes (e.g.
      variance blow-ups) that leave the mean untouched.

    Detection is a pure function of the observation sequence — no
    clocks, no randomness — so streams fed in the same order fire at
    the same sample index regardless of [CLARA_JOBS].  A firing is
    latched until {!reset}: it emits one [drift] event into {!Log} and
    raises the [clara_drift_active{detector,nf}] gauge.  All
    operations are thread-safe. *)

type config = {
  ph_delta : float;  (** PH drift tolerance subtracted per sample (default 0.005) *)
  ph_lambda : float;  (** PH firing threshold (default 0.5) *)
  window : int;  (** half-width of the two-window ring (default 32) *)
  q_threshold : float;  (** relative quantile-distance threshold (default 0.25) *)
  min_samples : int;  (** no detector fires before this many samples (default 16) *)
}

val default_config : config

type t

val create : ?config:config -> name:string -> unit -> t
(** [create ~name ()] makes a quiet detector.  [name] labels log
    events and the gauge (typically the NF name).  Raises
    [Invalid_argument] if [config.window < 2]. *)

val observe : t -> float -> unit
(** Feed one sample.  Non-finite values are ignored.  May latch the
    detector active (side effects: one log event, gauge set to 1). *)

val active : t -> bool
(** Has any detector fired since the last {!reset}? *)

val detector : t -> string option
(** Which detector fired first ("ph" or "qdist"), if any. *)

val fired_at : t -> int
(** 1-based sample index at which the detector fired, or [-1]. *)

val samples : t -> int
(** Samples observed since the last {!reset}. *)

val name : t -> string

val reset : t -> unit
(** Unlatch and forget all state; sets the gauge back to 0. *)

val to_json_string : t -> string
(** One-line JSON: name, samples, mean, active, detector, fired_at,
    stat. *)
