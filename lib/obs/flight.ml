(** Always-on postmortem flight recorder (see flight.mli). *)

type record = {
  seq : int;
  ts_s : float;
  trace : string;
  path : string;
  shard : int;
  latency_us : float;
  outcome : string;
  request : string;
  reply : string;
  truncated : bool;
}

let dummy =
  { seq = -1; ts_s = 0.0; trace = ""; path = ""; shard = -1; latency_us = 0.0; outcome = "";
    request = ""; reply = ""; truncated = false }

(* One ring per shard: a mutex held only for the O(1) slot write, so
   recording on the serving path costs a clip check, one allocation and
   nanoseconds of lock hold. *)
type ring = { r_lock : Mutex.t; r_buf : record array; mutable r_written : int }

type t = {
  per_shard : int;  (* slots per ring; 0 = recording disabled *)
  max_bytes : int;  (* request/reply bytes kept per record before clipping *)
  rings : ring array;
  seq : int Atomic.t;
  dir : string option;  (* where triggered dumps land; None = count only *)
  min_dump_interval_s : float;
  dump_lock : Mutex.t;
  mutable last_dump_s : float;
  mutable dump_seq : int;
  trig_lock : Mutex.t;
  trig_counts : (string, int) Hashtbl.t;
}

let m_records =
  Metrics.counter ~help:"Flight-recorder records written" "clara_flight_records_total"

(* Fixed trigger label set so the exposition stays bounded. *)
let m_trigger =
  let mk t =
    ( t,
      Metrics.counter ~help:"Flight-recorder dump triggers" ~labels:[ ("trigger", t) ]
        "clara_flight_triggers_total" )
  in
  let known =
    List.map mk [ "sigquit"; "slow_request"; "deadline"; "fault"; "exception"; "manual" ]
  in
  let other =
    Metrics.counter ~help:"Flight-recorder dump triggers" ~labels:[ ("trigger", "other") ]
      "clara_flight_triggers_total"
  in
  fun t -> match List.assoc_opt t known with Some c -> c | None -> other

let m_dumps = Metrics.counter ~help:"Flight-recorder dumps written" "clara_flight_dumps_total"

let default_capacity () =
  match Option.bind (Sys.getenv_opt "CLARA_FLIGHT") int_of_string_opt with
  | Some n when n >= 0 -> n
  | Some _ | None -> 64

let default_max_bytes () =
  match Option.bind (Sys.getenv_opt "CLARA_FLIGHT_MAX_BYTES") int_of_string_opt with
  | Some n when n >= 64 -> n
  | Some _ | None -> 65536

let create ?(shards = 1) ?capacity ?max_bytes ?dir ?(min_dump_interval_s = 30.0) () =
  if shards < 1 then invalid_arg "Flight.create: shards must be >= 1";
  let per_shard = match capacity with Some c -> max 0 c | None -> default_capacity () in
  let max_bytes = match max_bytes with Some b -> max 64 b | None -> default_max_bytes () in
  let dir = match dir with Some _ as d -> d | None -> Sys.getenv_opt "CLARA_FLIGHT_DIR" in
  { per_shard; max_bytes;
    rings =
      Array.init shards (fun _ ->
          { r_lock = Mutex.create ();
            r_buf = Array.make (max 1 per_shard) dummy;
            r_written = 0 });
    seq = Atomic.make 0; dir; min_dump_interval_s; dump_lock = Mutex.create ();
    last_dump_s = neg_infinity; dump_seq = 0; trig_lock = Mutex.create ();
    trig_counts = Hashtbl.create 8 }

let enabled t = t.per_shard > 0
let capacity t = t.per_shard * Array.length t.rings
let recorded t = Atomic.get t.seq

let clip t s = if String.length s > t.max_bytes then (String.sub s 0 t.max_bytes, true) else (s, false)

let record t ~shard ~trace ~path ~latency_us ~outcome ~request ~reply =
  if t.per_shard > 0 then begin
    let seq = Atomic.fetch_and_add t.seq 1 in
    let request, c1 = clip t request in
    let reply, c2 = clip t reply in
    let r =
      { seq; ts_s = Unix.gettimeofday (); trace; path; shard; latency_us; outcome; request;
        reply; truncated = c1 || c2 }
    in
    let n = Array.length t.rings in
    (* unkeyed records (shard < 0) spread round-robin by arrival *)
    let ring = t.rings.(if shard >= 0 then shard mod n else seq mod n) in
    Mutex.lock ring.r_lock;
    ring.r_buf.(ring.r_written mod t.per_shard) <- r;
    ring.r_written <- ring.r_written + 1;
    Mutex.unlock ring.r_lock;
    Metrics.inc m_records
  end

let snapshot t =
  let per_ring =
    Array.map
      (fun ring ->
        Mutex.lock ring.r_lock;
        let n = min ring.r_written t.per_shard in
        let first = ring.r_written - n in
        let out = Array.init n (fun i -> ring.r_buf.((first + i) mod t.per_shard)) in
        Mutex.unlock ring.r_lock;
        out)
      t.rings
  in
  let all = Array.concat (Array.to_list per_ring) in
  Array.sort (fun (a : record) b -> compare a.seq b.seq) all;
  Array.to_list all

(* -- JSON -- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let record_to_json (r : record) =
  Printf.sprintf
    "{\"seq\":%d,\"ts\":%.6f,\"trace\":\"%s\",\"path\":\"%s\",\"shard\":%d,\"latency_us\":%.1f,\"outcome\":\"%s\",\"truncated\":%b,\"request\":\"%s\",\"reply\":\"%s\"}"
    r.seq r.ts_s (json_escape r.trace) (json_escape r.path) r.shard r.latency_us
    (json_escape r.outcome) r.truncated (json_escape r.request) (json_escape r.reply)

let triggered t =
  Mutex.lock t.trig_lock;
  let out = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.trig_counts [] in
  Mutex.unlock t.trig_lock;
  List.sort compare out

let to_json_string t =
  let b = Buffer.create 1024 in
  Printf.bprintf b "{\"enabled\":%b,\"capacity\":%d,\"shards\":%d,\"recorded\":%d,\"triggers\":{"
    (enabled t) (capacity t) (Array.length t.rings) (recorded t);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":%d" (json_escape k) v)
    (triggered t);
  Buffer.add_string b "},\"records\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (record_to_json r))
    (snapshot t);
  Buffer.add_string b "]}";
  Buffer.contents b

(* -- dumps -- *)

let dump_jsonl t ~trigger oc =
  let records = snapshot t in
  Printf.fprintf oc
    "{\"schema\":\"clara-flight-dump/1\",\"trigger\":\"%s\",\"ts\":%.6f,\"pid\":%d,\"capacity\":%d,\"recorded\":%d,\"records\":%d}\n"
    (json_escape trigger) (Unix.gettimeofday ()) (Unix.getpid ()) (capacity t) (recorded t)
    (List.length records);
  List.iter (fun r -> output_string oc (record_to_json r); output_char oc '\n') records

let dump_to_file t ~trigger path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> dump_jsonl t ~trigger oc);
  Metrics.inc m_dumps

let fresh_dump_path t ~trigger dir =
  Mutex.lock t.dump_lock;
  t.dump_seq <- t.dump_seq + 1;
  let n = t.dump_seq in
  Mutex.unlock t.dump_lock;
  Filename.concat dir (Printf.sprintf "clara-flight-%d-%d-%s.jsonl" (Unix.getpid ()) n trigger)

let note t trigger =
  Mutex.lock t.trig_lock;
  Hashtbl.replace t.trig_counts trigger
    (1 + Option.value (Hashtbl.find_opt t.trig_counts trigger) ~default:0);
  Mutex.unlock t.trig_lock;
  Metrics.inc (m_trigger trigger)

let dump_now t ~trigger =
  note t trigger;
  if not (enabled t) then None
  else begin
    let dir = match t.dir with Some d -> d | None -> Filename.get_temp_dir_name () in
    let path = fresh_dump_path t ~trigger dir in
    match dump_to_file t ~trigger path with
    | () ->
      Mutex.lock t.dump_lock;
      t.last_dump_s <- Unix.gettimeofday ();
      Mutex.unlock t.dump_lock;
      Some path
    | exception Sys_error _ -> None
  end

let trigger t name =
  note t name;
  match t.dir with
  | None -> None  (* no dump directory configured: counted, not written *)
  | Some dir ->
    if not (enabled t) then None
    else begin
      let now = Unix.gettimeofday () in
      Mutex.lock t.dump_lock;
      let due = now -. t.last_dump_s >= t.min_dump_interval_s in
      if due then t.last_dump_s <- now;
      Mutex.unlock t.dump_lock;
      if not due then None
      else
        let path = fresh_dump_path t ~trigger:name dir in
        match dump_to_file t ~trigger:name path with
        | () -> Some path
        | exception Sys_error _ -> None
    end
