(** Windowed drift detection over error series (see drift.mli). *)

type config = {
  ph_delta : float;
  ph_lambda : float;
  window : int;
  q_threshold : float;
  min_samples : int;
}

let default_config =
  { ph_delta = 0.005; ph_lambda = 0.5; window = 32; q_threshold = 0.25; min_samples = 16 }

type t = {
  config : config;
  name : string;
  (* Page-Hinkley state, two-sided *)
  mutable n : int;
  mutable mean : float;
  mutable m_inc : float; (* cumulative deviation for upward shifts *)
  mutable m_inc_min : float;
  mutable m_dec : float; (* cumulative deviation for downward shifts *)
  mutable m_dec_max : float;
  (* two-window ring: last 2*window samples in arrival order *)
  ring : float array;
  mutable ring_n : int; (* total samples ever written to the ring *)
  (* firing state, latched until reset *)
  mutable fired : string option; (* "ph" | "qdist" *)
  mutable fired_at : int;
  mutable fired_stat : float;
  lock : Mutex.t;
}

let create ?(config = default_config) ~name () =
  if config.window < 2 then invalid_arg "Obs.Drift.create: window must be >= 2";
  { config; name;
    n = 0; mean = 0.0; m_inc = 0.0; m_inc_min = 0.0; m_dec = 0.0; m_dec_max = 0.0;
    ring = Array.make (2 * config.window) 0.0; ring_n = 0;
    fired = None; fired_at = -1; fired_stat = 0.0;
    lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let gauge_for t detector =
  Metrics.gauge ~help:"1 while a drift detector is latched active"
    ~labels:[ ("detector", detector); ("nf", t.name) ]
    "clara_drift_active"

let fire t detector stat =
  t.fired <- Some detector;
  t.fired_at <- t.n;
  t.fired_stat <- stat;
  Metrics.set_gauge (gauge_for t detector) 1.0;
  Log.warn
    ~fields:
      [ ("event", Log.Str "drift"); ("detector", Log.Str detector);
        ("name", Log.Str t.name); ("stat", Log.Num stat); ("sample", Log.Int t.n) ]
    "drift.detected"

(* Rank-based quantile of a sorted window: ceil(q*n) clamped to [1,n]. *)
let quantile_sorted sorted q =
  let n = Array.length sorted in
  let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
  sorted.(rank - 1)

let qdist_quantiles = [| 0.1; 0.25; 0.5; 0.75; 0.9 |]

(* Distance between the older-half and newer-half windows: mean absolute
   quantile gap, relative to the reference window's largest magnitude. *)
let qdist_stat t =
  let w = t.config.window in
  if t.ring_n < 2 * w then None
  else begin
    (* reconstruct arrival order: oldest sample lives at ring_n mod 2w *)
    let len = 2 * w in
    let start = t.ring_n mod len in
    let ordered = Array.init len (fun i -> t.ring.((start + i) mod len)) in
    let older = Array.sub ordered 0 w in
    let newer = Array.sub ordered w w in
    Array.sort compare older;
    Array.sort compare newer;
    let scale =
      Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 older
    in
    let scale = Float.max scale 1e-9 in
    let acc = ref 0.0 in
    Array.iter
      (fun q ->
        acc := !acc +. Float.abs (quantile_sorted newer q -. quantile_sorted older q))
      qdist_quantiles;
    Some (!acc /. (float_of_int (Array.length qdist_quantiles) *. scale))
  end

let observe t x =
  if Float.is_finite x then
    with_lock t @@ fun () ->
    t.n <- t.n + 1;
    t.mean <- t.mean +. ((x -. t.mean) /. float_of_int t.n);
    (* Page-Hinkley, two-sided, using the running mean *)
    t.m_inc <- t.m_inc +. (x -. t.mean -. t.config.ph_delta);
    if t.m_inc < t.m_inc_min then t.m_inc_min <- t.m_inc;
    t.m_dec <- t.m_dec +. (x -. t.mean +. t.config.ph_delta);
    if t.m_dec > t.m_dec_max then t.m_dec_max <- t.m_dec;
    (* ring append *)
    t.ring.(t.ring_n mod Array.length t.ring) <- x;
    t.ring_n <- t.ring_n + 1;
    if t.fired = None && t.n >= t.config.min_samples then begin
      let ph_up = t.m_inc -. t.m_inc_min in
      let ph_down = t.m_dec_max -. t.m_dec in
      let ph = Float.max ph_up ph_down in
      if ph > t.config.ph_lambda then fire t "ph" ph
      else
        match qdist_stat t with
        | Some d when d > t.config.q_threshold -> fire t "qdist" d
        | _ -> ()
    end

let active t = with_lock t (fun () -> t.fired <> None)
let detector t = with_lock t (fun () -> t.fired)
let fired_at t = with_lock t (fun () -> t.fired_at)
let samples t = with_lock t (fun () -> t.n)
let name t = t.name

let reset t =
  with_lock t @@ fun () ->
  (match t.fired with
  | Some d -> Metrics.set_gauge (gauge_for t d) 0.0
  | None -> ());
  t.n <- 0;
  t.mean <- 0.0;
  t.m_inc <- 0.0;
  t.m_inc_min <- 0.0;
  t.m_dec <- 0.0;
  t.m_dec_max <- 0.0;
  t.ring_n <- 0;
  t.fired <- None;
  t.fired_at <- -1;
  t.fired_stat <- 0.0

let fmt_float f = if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let to_json_string t =
  with_lock t @@ fun () ->
  Printf.sprintf
    "{\"name\":%S,\"samples\":%d,\"mean\":%s,\"active\":%b,\"detector\":%s,\"fired_at\":%d,\"stat\":%s}"
    t.name t.n (fmt_float t.mean)
    (t.fired <> None)
    (match t.fired with Some d -> Printf.sprintf "%S" d | None -> "null")
    t.fired_at (fmt_float t.fired_stat)
