(** Declarative service-level objectives with multi-window burn-rate
    alerts.

    An SLO is an objective ratio (e.g. 0.999 of requests good) plus a
    set of alert windows in the SRE fast/slow-burn style: the default
    pair is a 5-minute window firing at burn rate 14.4 and a 1-hour
    window firing at burn rate 6.  Burn rate is
    [bad_ratio / (1 - objective)] — 1.0 means the error budget is
    consumed exactly at the sustainable pace.  The alert {!firing}
    only when {e all} windows are over their thresholds, which keeps
    short blips from paging while catching sustained burns fast.

    Each window is a ring of 60 time buckets reset lazily by epoch, so
    [record] is O(windows) and reads are O(windows * 60) with no
    allocation on the record path.  All entry points take an optional
    [?now] (seconds, any monotone origin) so tests can drive time
    deterministically; the default is wall clock.  Thread-safe. *)

type kind =
  | Latency of float  (** good iff latency <= this many seconds *)
  | Availability  (** good iff the request succeeded *)

type t

val create : ?windows:(string * float * float) list -> name:string -> objective:float -> kind -> t
(** [create ~name ~objective kind] with [windows] as
    [(name, span_s, burn_threshold)] triples (default: fast 300 s @
    14.4, slow 3600 s @ 6).  Raises [Invalid_argument] unless
    [0 < objective < 1], windows is non-empty, and spans are
    positive. *)

val name : t -> string
val objective : t -> float
val kind : t -> kind

val record : ?now:float -> t -> good:bool -> unit
(** Count one request outcome into every window. *)

val record_latency : ?now:float -> t -> float -> unit
(** [record_latency t dt_s] records good/bad against the [Latency]
    threshold.  Raises [Invalid_argument] on an [Availability] SLO. *)

val burn_rates : ?now:float -> t -> (string * float) list
(** Per-window burn rate, in window declaration order.  An empty
    window burns at 0. *)

val firing : ?now:float -> t -> bool
(** True iff every window's burn rate exceeds its threshold. *)

val to_json_string : ?now:float -> t -> string
(** One-line JSON: objective, kind, per-window good/bad counts and
    burn rates, and the overall firing flag.  [now] is used for
    bucket expiry but never printed. *)
