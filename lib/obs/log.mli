(** Domain-safe, leveled, structured JSONL logging.

    Every call emits one self-contained JSON object on one line:

    {v
    {"ts":"2026-08-05T12:00:00.123Z","level":"info","msg":"serve.start",
     "trace":"abc","span":12,"socket":"/tmp/clara.sock","jobs":4}
    v}

    [ts], [level] and [msg] are always present.  [trace] and [span] are
    added automatically when the calling domain has a current
    {!Span.with_trace} id or an open span, correlating log lines with the
    trace ring buffer.  Everything else comes from the caller's [fields].

    The sink defaults to stderr; [CLARA_LOG] overrides it ("stderr"/"-"
    keep the default, "off"/"none"/"0" silence logging, anything else is
    an append-mode file path).  [CLARA_LOG_LEVEL] sets the threshold
    (debug | info | warn | error; default info).  {!set_sink} swaps the
    sink atomically — writers racing with the swap complete on the sink
    they loaded, then the old file handle is closed.

    Emission below the threshold costs one atomic load and no allocation,
    so call sites need no gating. *)

type level = Debug | Info | Warn | Error

(** Field values; [Num nan]/[Num infinity] render as JSON [null]. *)
type value = Str of string | Num of float | Int of int | Bool of bool

type sink =
  | Stderr  (** one flushed line per event *)
  | File of string  (** append-mode, created 0o644, flushed per line *)
  | Custom of (string -> unit)  (** receives each line without the newline *)
  | Off

val level_of_string : string -> level option
val level_name : level -> string

(** Threshold: events strictly below it are dropped. *)
val set_level : level -> unit

val level : unit -> level

(** Would an event at this level be emitted? *)
val enabled : level -> bool

(** Swap the sink; the previous sink's file handle (if any) is closed. *)
val set_sink : sink -> unit

(** [log lvl ~fields msg] emits one JSONL event.  Caller fields may not
    override the reserved keys ([ts]/[level]/[msg]/[trace]/[span] win by
    coming first; duplicate keys are technically invalid JSON, so pick
    other names). *)
val log : level -> ?fields:(string * value) list -> string -> unit

val debug : ?fields:(string * value) list -> string -> unit
val info : ?fields:(string * value) list -> string -> unit
val warn : ?fields:(string * value) list -> string -> unit
val error : ?fields:(string * value) list -> string -> unit
