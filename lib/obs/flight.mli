(** Always-on black-box flight recorder for the serving path.

    Fixed-size per-shard rings of postmortem request records: the raw
    request line, the raw reply bytes, which route answered it
    (fast/slow), the flow-cache shard, wall latency, trace id and a
    coarse outcome class.  Recording is zero-copy over the strings the
    server already built — a clip check, one record allocation and an
    O(1) slot write under a per-ring mutex — so it stays inside the fast
    path's bench envelope (see [bench/main.exe flight]).

    On a {e trigger} (SIGQUIT, a slow request, a deadline_exceeded reply,
    an armed-fault hit, an uncaught server exception, or an explicit
    request) the rings dump as JSONL: one header object, then one object
    per record, oldest first.  Every dump is a repro case —
    [clara replay] re-issues it against a bundle and byte-diffs the
    replies.  Triggered dumps are rate-limited and only written when a
    dump directory is configured ([dir] / [CLARA_FLIGHT_DIR]); otherwise
    triggers are counted but nothing touches the filesystem.
    {!dump_now} (operator-initiated) always writes, falling back to the
    temp directory.

    Record order ([seq]) is arrival order at the recording call sites;
    for a server driven deterministically it is identical under
    [CLARA_JOBS=1] and [=4].  Timestamps and latencies are measurement
    noise. *)

type record = {
  seq : int;  (* process-wide arrival order *)
  ts_s : float;  (* wall clock at record time *)
  trace : string;  (* request trace id *)
  path : string;  (* "fast" | "slow" *)
  shard : int;  (* flow-cache shard, -1 when the request had no key *)
  latency_us : float;
  outcome : string;  (* "ok" | "error" | "overloaded" | "deadline" | "fault" *)
  request : string;  (* raw request line (clipped to [max_bytes]) *)
  reply : string;  (* raw reply bytes (clipped to [max_bytes]) *)
  truncated : bool;  (* request or reply was clipped: not replayable *)
}

type t

(** [create ~shards ~capacity ()] sizes one ring of [capacity] records
    per shard.  [capacity] defaults to [CLARA_FLIGHT] (else 64); 0
    disables recording entirely.  [max_bytes] clips stored request/reply
    bytes ([CLARA_FLIGHT_MAX_BYTES], else 65536).  [dir] is where
    triggered dumps land ([CLARA_FLIGHT_DIR] when absent; no directory
    means triggers only count).  [min_dump_interval_s] rate-limits
    triggered dumps (default 30s).
    @raise Invalid_argument when [shards < 1]. *)
val create :
  ?shards:int ->
  ?capacity:int ->
  ?max_bytes:int ->
  ?dir:string ->
  ?min_dump_interval_s:float ->
  unit ->
  t

(** Is recording on (per-shard capacity > 0)? *)
val enabled : t -> bool

(** Total slots across all rings. *)
val capacity : t -> int

(** Records written since creation (>= what the rings still hold). *)
val recorded : t -> int

(** Append one record ([shard < 0] spreads round-robin).  No-op when
    disabled. *)
val record :
  t ->
  shard:int ->
  trace:string ->
  path:string ->
  latency_us:float ->
  outcome:string ->
  request:string ->
  reply:string ->
  unit

(** Everything the rings currently hold, in [seq] (arrival) order. *)
val snapshot : t -> record list

(** One JSON document: config, trigger counts, and the full snapshot. *)
val to_json_string : t -> string

(** One record as a single-line JSON object (the dump line format). *)
val record_to_json : record -> string

(** Write a dump — header line, then one line per record — to [oc]. *)
val dump_jsonl : t -> trigger:string -> out_channel -> unit

(** Write a dump to an explicit path (truncates).
    @raise Sys_error when the path cannot be opened. *)
val dump_to_file : t -> trigger:string -> string -> unit

(** Count a trigger and, when a dump directory is configured, recording
    is enabled and the rate limit allows, write a dump; returns its path
    when one was written. *)
val trigger : t -> string -> string option

(** Count a trigger and dump unconditionally (no rate limit; falls back
    to the temp directory when no dump directory is configured).  [None]
    only when recording is disabled or the write failed. *)
val dump_now : t -> trigger:string -> string option

(** Trigger counts seen so far, sorted by trigger name. *)
val triggered : t -> (string * int) list
