(** GC/runtime gauges sampled from [Gc.quick_stat] (see runtime.mli). *)

let g name help = Metrics.gauge ~help name

let g_minor_words = g "clara_runtime_gc_minor_words" "Words allocated on the minor heap"
let g_promoted_words = g "clara_runtime_gc_promoted_words" "Words promoted minor -> major"
let g_major_words = g "clara_runtime_gc_major_words" "Words allocated on the major heap"
let g_minor_gcs = g "clara_runtime_gc_minor_collections" "Minor collections"
let g_major_gcs = g "clara_runtime_gc_major_collections" "Major collection cycles"
let g_compactions = g "clara_runtime_gc_compactions" "Heap compactions"
let g_heap_words = g "clara_runtime_gc_heap_words" "Major heap size in words"
let g_top_heap_words = g "clara_runtime_gc_top_heap_words" "Largest major heap size in words"
let g_uptime = g "clara_runtime_uptime_seconds" "Seconds since process start"

let g_recommended_domains =
  g "clara_runtime_recommended_domains" "Domain.recommended_domain_count"

let started_at = Unix.gettimeofday ()

let sample () =
  let s = Gc.quick_stat () in
  Metrics.set_gauge g_minor_words s.Gc.minor_words;
  Metrics.set_gauge g_promoted_words s.Gc.promoted_words;
  Metrics.set_gauge g_major_words s.Gc.major_words;
  Metrics.set_gauge g_minor_gcs (float_of_int s.Gc.minor_collections);
  Metrics.set_gauge g_major_gcs (float_of_int s.Gc.major_collections);
  Metrics.set_gauge g_compactions (float_of_int s.Gc.compactions);
  Metrics.set_gauge g_heap_words (float_of_int s.Gc.heap_words);
  Metrics.set_gauge g_top_heap_words (float_of_int s.Gc.top_heap_words);
  Metrics.set_gauge g_uptime (Unix.gettimeofday () -. started_at);
  Metrics.set_gauge g_recommended_domains (float_of_int (Domain.recommended_domain_count ()))

(* -- background sampler --

   One spare domain sleeping in short slices so [stop] joins promptly.
   Guarded by a mutex so concurrent start/stop calls cannot double-spawn
   or double-join. *)

let sampler : unit Domain.t option ref = ref None
let sampler_lock = Mutex.create ()
let stop_flag = Atomic.make false

let running () =
  Mutex.lock sampler_lock;
  let r = !sampler <> None in
  Mutex.unlock sampler_lock;
  r

let start ?(period_s = 1.0) () =
  let period_s = Float.max 0.05 period_s in
  Mutex.lock sampler_lock;
  (if !sampler = None then begin
     Atomic.set stop_flag false;
     sampler :=
       Some
         (Domain.spawn (fun () ->
              while not (Atomic.get stop_flag) do
                sample ();
                (* sleep in <=50ms slices so stop () returns quickly *)
                let deadline = Unix.gettimeofday () +. period_s in
                while (not (Atomic.get stop_flag)) && Unix.gettimeofday () < deadline do
                  Unix.sleepf 0.05
                done
              done))
   end);
  Mutex.unlock sampler_lock

let stop () =
  Mutex.lock sampler_lock;
  let d = !sampler in
  sampler := None;
  Atomic.set stop_flag true;
  Mutex.unlock sampler_lock;
  Option.iter Domain.join d

let () = at_exit stop
