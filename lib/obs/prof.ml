(** Sampling continuous profiler over the span stack (see prof.mli). *)

(* -- enablement --

   Same discipline as [Span.enabled_flag]: every hot-path hook is guarded
   by one atomic load, so instrumented code pays a single [Atomic.get]
   while the profiler is off.  The flag flips only inside [start]/[stop]
   under [ticker_lock]. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let env_hz () =
  match Sys.getenv_opt "CLARA_PROF_HZ" with
  | Some s -> (
    match float_of_string_opt (String.trim s) with Some h when h > 0.0 -> Some h | _ -> None)
  | None -> None

(* -- per-domain published stacks --

   [Domain.DLS] is readable only from its own domain, so the ticker cannot
   walk [Span]'s DLS parent stacks directly.  Instead each domain that
   opens a span while the profiler is on publishes its current span-name
   stack — an immutable list, innermost first — into a shared cell the
   ticker reads with one [Atomic.get].  The cell is single-writer (only
   its owning domain swaps the list), so the ticker always observes a
   consistent snapshot.  Cells register once per domain under [reg_lock]
   and stay registered after the domain dies (their stacks are empty by
   then: spans close before a domain exits). *)

type frame = { f_name : string; f_alloc0 : float; mutable f_child_w : float }

type cell = {
  mutable c_frames : frame list; (* owner-domain only: alloc bookkeeping *)
  c_names : string list Atomic.t; (* published for the ticker *)
}

let reg_lock = Mutex.create ()
let cells : cell list ref = ref []

let cell_key : cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let c = { c_frames = []; c_names = Atomic.make [] } in
      Mutex.lock reg_lock;
      cells := c :: !cells;
      Mutex.unlock reg_lock;
      c)

(* -- folded-stack tables --

   Keys are semicolon-joined root-first paths ("serve.batch;analyze"),
   the collapsed format flamegraph.pl and speedscope read.  [samples]
   counts ticker observations of the exact stack; [alloc_w] accumulates
   minor-heap words attributed to the path's self time. *)

type bucket = { mutable samples : int; mutable alloc_w : float }

let tbl_lock = Mutex.create ()
let buckets : (string, bucket) Hashtbl.t = Hashtbl.create 64
let ticks = Atomic.make 0
let samples_total = Atomic.make 0

let bucket_of path =
  match Hashtbl.find_opt buckets path with
  | Some b -> b
  | None ->
    let b = { samples = 0; alloc_w = 0.0 } in
    Hashtbl.add buckets path b;
    b

(* innermost-first name list -> root-first collapsed key *)
let fold_path names = String.concat ";" (List.rev names)

let add_alloc names w =
  if w > 0.0 && names <> [] then begin
    Mutex.lock tbl_lock;
    let b = bucket_of (fold_path names) in
    b.alloc_w <- b.alloc_w +. w;
    Mutex.unlock tbl_lock
  end

(* -- allocation attribution --

   OCaml 5.1's multicore runtime does not implement [Gc.Memprof]
   ([Gc.Memprof.start] raises [Failure "not implemented in multicore"]),
   so [start] attempts the sampled tracker once and, when the runtime
   refuses, falls back to exact per-span minor-word deltas: each frame
   notes [Gc.minor_words] at entry, children report their totals to the
   parent, and the difference — the frame's self-allocation — is binned
   at pop to the full stack path.  [memprof_active] reports which source
   is feeding [alloc_w] so readers know sampled words from exact ones. *)

let memprof_on = Atomic.make false
let memprof_active () = Atomic.get memprof_on

let try_start_memprof () =
  match
    Gc.Memprof.start ~sampling_rate:1e-4 ~callstack_size:0
      { Gc.Memprof.null_tracker with
        alloc_minor =
          (fun (a : Gc.Memprof.allocation) ->
            let c = Domain.DLS.get cell_key in
            add_alloc (Atomic.get c.c_names) (float_of_int a.size);
            None)
      }
  with
  | _t -> Atomic.set memprof_on true
  | exception _ -> Atomic.set memprof_on false

let stop_memprof () =
  if Atomic.get memprof_on then begin
    (try Gc.Memprof.stop () with _ -> ());
    Atomic.set memprof_on false
  end

(* -- span hooks (called from Span.with_ when [enabled]) -- *)

let enter name =
  let c = Domain.DLS.get cell_key in
  c.c_frames <- { f_name = name; f_alloc0 = Gc.minor_words (); f_child_w = 0.0 } :: c.c_frames;
  Atomic.set c.c_names (name :: Atomic.get c.c_names);
  true

let exit_ () =
  let c = Domain.DLS.get cell_key in
  match c.c_frames with
  | [] -> ()
  | f :: rest ->
    let names = Atomic.get c.c_names in
    let total = Gc.minor_words () -. f.f_alloc0 in
    (match rest with parent :: _ -> parent.f_child_w <- parent.f_child_w +. total | [] -> ());
    c.c_frames <- rest;
    (match names with _ :: ns -> Atomic.set c.c_names ns | [] -> ());
    if not (Atomic.get memprof_on) then
      add_alloc names (Float.max 0.0 (total -. f.f_child_w))

(* -- the ticker domain -- *)

let ticker_lock = Mutex.create ()
let ticker : unit Domain.t option ref = ref None
let current_hz = ref 0.0
let stop_flag = Atomic.make false

let hz () =
  Mutex.lock ticker_lock;
  let h = !current_hz in
  Mutex.unlock ticker_lock;
  h

let tick () =
  Atomic.incr ticks;
  Mutex.lock reg_lock;
  let cs = !cells in
  Mutex.unlock reg_lock;
  List.iter
    (fun c ->
      match Atomic.get c.c_names with
      | [] -> ()
      | names ->
        Atomic.incr samples_total;
        Mutex.lock tbl_lock;
        let b = bucket_of (fold_path names) in
        b.samples <- b.samples + 1;
        Mutex.unlock tbl_lock)
    cs

let running () = Atomic.get enabled_flag

let start ?hz () =
  let hz =
    match hz with
    | Some h -> h
    | None -> ( match env_hz () with Some h -> h | None -> 99.0)
  in
  if hz <= 0.0 then invalid_arg "Prof.start: hz must be positive";
  Mutex.lock ticker_lock;
  if !ticker <> None then Mutex.unlock ticker_lock
  else begin
    current_hz := hz;
    Atomic.set stop_flag false;
    try_start_memprof ();
    Atomic.set enabled_flag true;
    let d =
      Domain.spawn (fun () ->
          let period = 1.0 /. hz in
          while not (Atomic.get stop_flag) do
            (try Unix.sleepf period with Unix.Unix_error (Unix.EINTR, _, _) -> ());
            if not (Atomic.get stop_flag) then tick ()
          done)
    in
    ticker := Some d;
    Mutex.unlock ticker_lock
  end

let stop () =
  Mutex.lock ticker_lock;
  let d = !ticker in
  ticker := None;
  current_hz := 0.0;
  Mutex.unlock ticker_lock;
  match d with
  | None -> ()
  | Some d ->
    Atomic.set enabled_flag false;
    stop_memprof ();
    Atomic.set stop_flag true;
    Domain.join d

let reset () =
  Mutex.lock tbl_lock;
  Hashtbl.reset buckets;
  Mutex.unlock tbl_lock;
  Atomic.set ticks 0;
  Atomic.set samples_total 0

(* -- export -- *)

type stack = { path : string; samples : int; alloc_w : float }

let stacks () =
  Mutex.lock tbl_lock;
  let out =
    Hashtbl.fold
      (fun path (b : bucket) acc -> { path; samples = b.samples; alloc_w = b.alloc_w } :: acc)
      buckets []
  in
  Mutex.unlock tbl_lock;
  (* hottest first; path breaks ties so the order is reproducible *)
  List.sort
    (fun a b ->
      match compare b.samples a.samples with
      | 0 -> ( match compare b.alloc_w a.alloc_w with 0 -> compare a.path b.path | c -> c)
      | c -> c)
    out

let folded () =
  let b = Buffer.create 256 in
  List.iter
    (fun s -> if s.samples > 0 then Printf.bprintf b "%s %d\n" s.path s.samples)
    (stacks ());
  Buffer.contents b

let folded_alloc () =
  let b = Buffer.create 256 in
  List.iter
    (fun s -> if s.alloc_w > 0.0 then Printf.bprintf b "%s %.0f\n" s.path s.alloc_w)
    (stacks ());
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json_string () =
  let b = Buffer.create 512 in
  Printf.bprintf b "{\"enabled\":%b,\"hz\":%g,\"memprof\":%b,\"ticks\":%d,\"samples\":%d,\"stacks\":["
    (enabled ()) (hz ()) (memprof_active ()) (Atomic.get ticks) (Atomic.get samples_total);
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"stack\":\"%s\",\"samples\":%d,\"alloc_w\":%.0f}" (json_escape s.path)
        s.samples s.alloc_w)
    (stacks ());
  Buffer.add_string b "]}";
  Buffer.contents b
