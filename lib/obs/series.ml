(** Bounded training-telemetry series (see series.mli). *)

type t = {
  s_name : string;
  s_run : int;
  cap : int;
  lock : Mutex.t;
  steps : int array;
  values : float array;
  mutable count : int; (* points recorded since the run opened *)
}

let max_runs = 64

(* name -> runs, newest first *)
let registry : (string, t list) Hashtbl.t = Hashtbl.create 16
let reg_lock = Mutex.create ()

let rec take n = function [] -> [] | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let create ?(capacity = 4096) name =
  let cap = max 1 capacity in
  Mutex.lock reg_lock;
  let runs = Option.value (Hashtbl.find_opt registry name) ~default:[] in
  let s_run = match runs with [] -> 1 | s :: _ -> s.s_run + 1 in
  let s =
    { s_name = name; s_run; cap; lock = Mutex.create ();
      steps = Array.make cap 0; values = Array.make cap 0.0; count = 0 }
  in
  Hashtbl.replace registry name (s :: take (max_runs - 1) runs);
  Mutex.unlock reg_lock;
  s

let name s = s.s_name
let run s = s.s_run

let record s ~step v =
  Mutex.lock s.lock;
  s.steps.(s.count mod s.cap) <- step;
  s.values.(s.count mod s.cap) <- v;
  s.count <- s.count + 1;
  Mutex.unlock s.lock

let points s =
  Mutex.lock s.lock;
  let n = min s.count s.cap in
  let first = s.count - n in
  let out = List.init n (fun i -> (s.steps.((first + i) mod s.cap), s.values.((first + i) mod s.cap))) in
  Mutex.unlock s.lock;
  out

let dropped s =
  Mutex.lock s.lock;
  let d = max 0 (s.count - s.cap) in
  Mutex.unlock s.lock;
  d

let snapshot () =
  Mutex.lock reg_lock;
  let all = Hashtbl.fold (fun _ runs acc -> runs @ acc) registry [] in
  Mutex.unlock reg_lock;
  List.sort (fun a b -> compare (a.s_name, a.s_run) (b.s_name, b.s_run)) all

let names () = List.map (fun s -> s.s_name) (snapshot ())

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json_string () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"series\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"run\":%d,\"dropped\":%d,\"points\":["
           (json_escape s.s_name) s.s_run (dropped s));
      List.iteri
        (fun j (step, v) ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (if Float.is_finite v then Printf.sprintf "{\"step\":%d,\"value\":%.12g}" step v
             else Printf.sprintf "{\"step\":%d,\"value\":null}" step))
        (points s);
      Buffer.add_string b "]}")
    (snapshot ());
  Buffer.add_string b "]}";
  Buffer.contents b

let write_file path =
  let oc = open_out path in
  output_string oc (to_json_string ());
  output_char oc '\n';
  close_out oc

let reset () =
  Mutex.lock reg_lock;
  Hashtbl.reset registry;
  Mutex.unlock reg_lock
