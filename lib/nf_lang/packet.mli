(** Mutable packet model for host-side NF execution — the runtime object
    the interpreter mutates, standing in for Click's
    [Packet]/[WritablePacket].  Header fields are masked unsigned
    integers; the payload is a byte buffer. *)

type t = {
  mutable eth_type : int;
  mutable ip_src : int;
  mutable ip_dst : int;
  mutable ip_proto : int;
  mutable ip_ttl : int;
  mutable ip_len : int;
  mutable ip_hl : int;
  mutable ip_tos : int;
  mutable ip_id : int;
  mutable ip_csum : int;
  mutable tcp_sport : int;
  mutable tcp_dport : int;
  mutable tcp_seq : int;
  mutable tcp_ack : int;
  mutable tcp_off : int;
  mutable tcp_flags : int;
  mutable tcp_win : int;
  mutable tcp_csum : int;
  mutable udp_sport : int;
  mutable udp_dport : int;
  mutable udp_len : int;
  mutable udp_csum : int;
  mutable payload : Bytes.t;
}

val tcp_proto : int
val udp_proto : int
val default_payload_len : int

(** A well-formed TCP/IPv4 packet with a zeroed payload. *)
val create : ?payload_len:int -> unit -> t

(** Total on-wire length in bytes (ethernet header + ip total length). *)
val length : t -> int

val payload_len : t -> int

(** [mask width v] truncates [v] to [width] bits. *)
val mask : int -> int -> int

val get_field : t -> Ast.header_field -> int

(** Width-masked field store. *)
val set_field : t -> Ast.header_field -> int -> unit

(** Out-of-range payload reads return 0; writes are dropped. *)
val get_payload_byte : t -> int -> int

val set_payload_byte : t -> int -> int -> unit

(** Deep copy with a fresh payload buffer, so one generated trace can be
    replayed against several (mutating) interpreter runs. *)
val copy : t -> t

(** The canonical 5-tuple (src ip, dst ip, proto, sport, dport), using the
    UDP ports for UDP packets. *)
val flow_key : t -> int * int * int * int * int

(** Deterministic RFC-1071-style header checksum. *)
val ip_checksum : t -> int
