(** Mutable packet model for host-side NF execution.

    Header fields are stored as masked unsigned integers; the payload is a
    byte array.  This is the runtime object the {!Interp} host interpreter
    mutates, standing in for Click's [Packet]/[WritablePacket]. *)

open Ast

type t = {
  mutable eth_type : int;
  mutable ip_src : int;
  mutable ip_dst : int;
  mutable ip_proto : int;
  mutable ip_ttl : int;
  mutable ip_len : int;
  mutable ip_hl : int;
  mutable ip_tos : int;
  mutable ip_id : int;
  mutable ip_csum : int;
  mutable tcp_sport : int;
  mutable tcp_dport : int;
  mutable tcp_seq : int;
  mutable tcp_ack : int;
  mutable tcp_off : int;
  mutable tcp_flags : int;
  mutable tcp_win : int;
  mutable tcp_csum : int;
  mutable udp_sport : int;
  mutable udp_dport : int;
  mutable udp_len : int;
  mutable udp_csum : int;
  mutable payload : Bytes.t;
}

let tcp_proto = 6
let udp_proto = 17

let default_payload_len = 26

let create ?(payload_len = default_payload_len) () =
  {
    eth_type = 0x0800;
    ip_src = 0x0a000001;
    ip_dst = 0x0a000002;
    ip_proto = tcp_proto;
    ip_ttl = 64;
    ip_len = 40 + payload_len;
    ip_hl = 5;
    ip_tos = 0;
    ip_id = 0;
    ip_csum = 0;
    tcp_sport = 1234;
    tcp_dport = 80;
    tcp_seq = 0;
    tcp_ack = 0;
    tcp_off = 5;
    tcp_flags = 0x10;
    tcp_win = 65535;
    tcp_csum = 0;
    udp_sport = 1234;
    udp_dport = 53;
    udp_len = 8 + payload_len;
    udp_csum = 0;
    payload = Bytes.make payload_len '\000';
  }

(** Total on-wire length in bytes (ethernet header + ip total length). *)
let length p = 14 + p.ip_len

let payload_len p = Bytes.length p.payload

let mask width v = v land ((1 lsl width) - 1)

let get_field p f =
  match f with
  | Eth_type -> p.eth_type
  | Ip_src -> p.ip_src
  | Ip_dst -> p.ip_dst
  | Ip_proto -> p.ip_proto
  | Ip_ttl -> p.ip_ttl
  | Ip_len -> p.ip_len
  | Ip_hl -> p.ip_hl
  | Ip_tos -> p.ip_tos
  | Ip_id -> p.ip_id
  | Ip_csum -> p.ip_csum
  | Tcp_sport -> p.tcp_sport
  | Tcp_dport -> p.tcp_dport
  | Tcp_seq -> p.tcp_seq
  | Tcp_ack -> p.tcp_ack
  | Tcp_off -> p.tcp_off
  | Tcp_flags -> p.tcp_flags
  | Tcp_win -> p.tcp_win
  | Tcp_csum -> p.tcp_csum
  | Udp_sport -> p.udp_sport
  | Udp_dport -> p.udp_dport
  | Udp_len -> p.udp_len
  | Udp_csum -> p.udp_csum

let set_field p f v =
  let v = mask (field_width f) v in
  match f with
  | Eth_type -> p.eth_type <- v
  | Ip_src -> p.ip_src <- v
  | Ip_dst -> p.ip_dst <- v
  | Ip_proto -> p.ip_proto <- v
  | Ip_ttl -> p.ip_ttl <- v
  | Ip_len -> p.ip_len <- v
  | Ip_hl -> p.ip_hl <- v
  | Ip_tos -> p.ip_tos <- v
  | Ip_id -> p.ip_id <- v
  | Ip_csum -> p.ip_csum <- v
  | Tcp_sport -> p.tcp_sport <- v
  | Tcp_dport -> p.tcp_dport <- v
  | Tcp_seq -> p.tcp_seq <- v
  | Tcp_ack -> p.tcp_ack <- v
  | Tcp_off -> p.tcp_off <- v
  | Tcp_flags -> p.tcp_flags <- v
  | Tcp_win -> p.tcp_win <- v
  | Tcp_csum -> p.tcp_csum <- v
  | Udp_sport -> p.udp_sport <- v
  | Udp_dport -> p.udp_dport <- v
  | Udp_len -> p.udp_len <- v
  | Udp_csum -> p.udp_csum <- v

let get_payload_byte p off =
  if off < 0 || off >= Bytes.length p.payload then 0
  else Char.code (Bytes.get p.payload off)

let set_payload_byte p off v =
  if off >= 0 && off < Bytes.length p.payload then
    Bytes.set p.payload off (Char.chr (v land 0xff))

(** Deep copy with a fresh payload buffer.  Interpreters mutate packets in
    place, so replaying one generated trace against several NFs needs a
    fresh copy per run. *)
let copy p = { p with payload = Bytes.copy p.payload }

(** The canonical 5-tuple identifying the packet's flow. *)
let flow_key p =
  let l4 =
    if p.ip_proto = udp_proto then (p.udp_sport, p.udp_dport) else (p.tcp_sport, p.tcp_dport)
  in
  (p.ip_src, p.ip_dst, p.ip_proto, fst l4, snd l4)

(** RFC-1071 style internet checksum over header fields; a deterministic
    stand-in for real IP header checksumming. *)
let ip_checksum p =
  let words =
    [ p.ip_src lsr 16; p.ip_src land 0xffff; p.ip_dst lsr 16; p.ip_dst land 0xffff;
      (p.ip_ttl lsl 8) lor p.ip_proto; p.ip_len; p.ip_id; (p.ip_hl lsl 8) lor p.ip_tos ]
  in
  let sum = List.fold_left ( + ) 0 words in
  let folded = (sum land 0xffff) + (sum lsr 16) in
  lnot folded land 0xffff
