(** Bounded least-recently-used cache for memoized insight reports.

    String-keyed, O(1) lookup; eviction scans for the oldest stamp, which
    is fine at report-cache capacities (tens to hundreds).  Not
    thread-safe: the server touches it only from the request-planning and
    reply phases, which run on one domain — analysis work fans out to the
    pool in between. *)

type 'a t

(** [capacity = 0] is a legal degenerate cache: every {!find} misses and
    {!add} is a no-op (caching disabled, statistics still counted).
    @raise Invalid_argument when [capacity < 0]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** Refreshes the entry's recency; counts a hit or a miss. *)
val find : 'a t -> string -> 'a option

(** Peek without touching recency or statistics. *)
val peek : 'a t -> string -> 'a option

(** Insert (or overwrite), evicting the least-recently-used entry when
    over capacity. *)
val add : 'a t -> string -> 'a -> unit

val hits : 'a t -> int
val misses : 'a t -> int
