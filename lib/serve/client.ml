(** Retrying insight-service client (see client.mli). *)

type t = {
  socket_path : string;
  timeout_s : float;
  retries : int;
  backoff_base_s : float;
  backoff_cap_s : float;
  seed : int;
  mutable fd : Unix.file_descr option;
  mutable residue : string;  (* bytes read past the last reply's newline *)
  mutable next_id : int;
  mutable draw : int;  (* jitter-sequence position *)
  mutable attempts : int;
  mutable retries_used : int;
}

type error =
  | Overloaded of string
  | Timeout
  | Io of string
  | Bad_reply of string

let error_to_string = function
  | Overloaded msg -> "overloaded: " ^ msg
  | Timeout -> "timed out awaiting reply"
  | Io msg -> "I/O error: " ^ msg
  | Bad_reply msg -> "unparseable reply: " ^ msg

let create ?(timeout_s = 5.0) ?(retries = 4) ?(backoff_base_s = 0.05) ?(backoff_cap_s = 1.0)
    ?(seed = 1) ~socket_path () =
  if timeout_s <= 0.0 then invalid_arg "Client.create: timeout_s must be > 0";
  if retries < 0 then invalid_arg "Client.create: retries must be >= 0";
  { socket_path; timeout_s; retries; backoff_base_s; backoff_cap_s; seed; fd = None;
    residue = ""; next_id = 1; draw = 0; attempts = 0; retries_used = 0 }

let attempts t = t.attempts
let retries_used t = t.retries_used

let close t =
  (match t.fd with Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ()) | None -> ());
  t.fd <- None;
  t.residue <- ""

(* splitmix64 finalizer, as in [Obs.Fault]: jitter draw [i] is a pure
   function of (seed, i), so a fixed seed replays the backoff schedule. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let unit_float ~seed k =
  let bits =
    mix64 (Int64.add (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L) (Int64.of_int k))
  in
  Int64.to_float (Int64.shift_right_logical bits 11) *. (1.0 /. 9007199254740992.0)

let backoff_sleep t ~attempt =
  let jitter =
    let k = t.draw in
    t.draw <- k + 1;
    0.5 +. (0.5 *. unit_float ~seed:t.seed k)
  in
  let base = t.backoff_base_s *. (2.0 ** float_of_int attempt) in
  Unix.sleepf (Float.min t.backoff_cap_s base *. jitter)

let connect t =
  match t.fd with
  | Some fd -> fd
  | None ->
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    t.fd <- Some fd;
    t.residue <- "";
    fd

let really_write fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

(* One attempt's outcome, before retry classification. *)
type attempt = Reply of string | A_timeout | A_io of string

(* Read up to the next newline, honouring the per-attempt deadline via
   [select].  EOF before a newline means the server hung up on us
   (e.g. the connection-limit shed closes right after its reply — that
   reply still arrives whole first). *)
let read_reply t fd =
  let deadline = Unix.gettimeofday () +. t.timeout_s in
  let buf = Buffer.create 512 in
  Buffer.add_string buf t.residue;
  t.residue <- "";
  let chunk = Bytes.create 4096 in
  let rec loop () =
    match String.index_opt (Buffer.contents buf) '\n' with
    | Some i ->
      let data = Buffer.contents buf in
      t.residue <- String.sub data (i + 1) (String.length data - i - 1);
      Reply (String.sub data 0 i)
    | None -> (
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then A_timeout
      else
        match Unix.select [ fd ] [] [] remaining with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | [], _, _ -> A_timeout
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> A_io "server closed the connection"
          | n ->
            Buffer.add_subbytes buf chunk 0 n;
            loop ()
          | exception Unix.Unix_error (err, fn, _) ->
            A_io (Printf.sprintf "%s: %s" fn (Unix.error_message err))))
  in
  loop ()

let attempt_once t line =
  t.attempts <- t.attempts + 1;
  match connect t with
  | exception Unix.Unix_error (err, fn, _) ->
    A_io (Printf.sprintf "%s: %s" fn (Unix.error_message err))
  | fd -> (
    match really_write fd (line ^ "\n") with
    | () -> read_reply t fd
    | exception Unix.Unix_error (err, fn, _) ->
      A_io (Printf.sprintf "%s: %s" fn (Unix.error_message err)))

(* Replies flagged ["overloaded":true] (admission/connection shedding)
   or ["unavailable":true] (a router's worker died mid-request; the next
   attempt re-hashes to a live one) are the server saying "retry later" —
   both feed the same backoff loop. *)
let overloaded_msg reply =
  let flagged name fallback =
    match Jsonl.member name reply with
    | Some (Jsonl.Bool true) ->
      Some (Option.value (Jsonl.str_member "error" reply) ~default:fallback)
    | _ -> None
  in
  match flagged "overloaded" "overloaded" with
  | Some _ as m -> m
  | None -> flagged "unavailable" "unavailable"

let request t fields =
  let fields =
    if List.mem_assoc "id" fields then fields
    else begin
      (* One id per logical request, reused verbatim on every retry. *)
      let id = t.next_id in
      t.next_id <- id + 1;
      ("id", Jsonl.Num (float_of_int id)) :: fields
    end
  in
  let line = Jsonl.to_string (Jsonl.Obj fields) in
  let rec go attempt last_err =
    if attempt > t.retries then Error last_err
    else begin
      if attempt > 0 then begin
        t.retries_used <- t.retries_used + 1;
        close t;
        (* reconnect fresh: the failed socket may be half-dead *)
        backoff_sleep t ~attempt:(attempt - 1)
      end;
      match attempt_once t line with
      | A_timeout -> go (attempt + 1) Timeout
      | A_io msg -> go (attempt + 1) (Io msg)
      | Reply raw -> (
        match Jsonl.of_string raw with
        | Error msg -> Error (Bad_reply msg)
        | Ok reply -> (
          match overloaded_msg reply with
          | Some msg -> go (attempt + 1) (Overloaded msg)
          | None -> Ok reply))
    end
  in
  go 0 (Io "no attempt made")
