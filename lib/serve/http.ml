(** Hand-rolled HTTP/1.1 telemetry endpoint (see http.mli). *)

type t = {
  listener : Unix.file_descr;
  h_port : int;
  stop_flag : bool Atomic.t;
  quality : (unit -> string) option;  (* renders the /quality document *)
  health : (unit -> string) option;  (* renders the /healthz document *)
  flight : (unit -> string) option;  (* renders the /flight.json document *)
  start_s : float;  (* creation time, for the default /healthz uptime *)
}

let m_requests path =
  Obs.Metrics.counter ~help:"HTTP telemetry requests" ~labels:[ ("path", path) ]
    "clara_http_requests_total"

(* Fixed label set so the exposition stays bounded whatever clients probe. *)
let m_healthz = m_requests "/healthz"
let m_metrics = m_requests "/metrics"
let m_trace = m_requests "/trace.json"
let m_quality = m_requests "/quality"
let m_flight = m_requests "/flight.json"
let m_profile = m_requests "/profile.folded"
let m_other = m_requests "other"

let create ?(backlog = 16) ?quality ?health ?flight ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
     Unix.listen fd backlog
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let h_port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> port
  in
  { listener = fd; h_port; stop_flag = Atomic.make false; quality; health; flight;
    start_s = Unix.gettimeofday () }

let port t = t.h_port
let stop t = Atomic.set t.stop_flag true

(* -- request/response plumbing -- *)

let response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let text = "text/plain; charset=utf-8"

(* Prometheus text exposition format 0.0.4 (what scrapers negotiate for). *)
let prom = "text/plain; version=0.0.4; charset=utf-8"

let handle t ~meth ~path =
  match (meth, path) with
  | "GET", "/quality" -> (
    match t.quality with
    | Some render ->
      Obs.Metrics.inc m_quality;
      response ~status:"200 OK" ~content_type:"application/json" (render ())
    | None ->
      Obs.Metrics.inc m_other;
      response ~status:"404 Not Found" ~content_type:text "no quality source\n")
  | "GET", "/healthz" ->
    Obs.Metrics.inc m_healthz;
    let body =
      match t.health with
      | Some render -> render ()
      | None ->
        (* Allocation-light and lock-free: three scalars, one sprintf. *)
        Printf.sprintf "{\"ok\":true,\"uptime_s\":%.1f,\"pid\":%d}\n"
          (Unix.gettimeofday () -. t.start_s) (Unix.getpid ())
    in
    response ~status:"200 OK" ~content_type:"application/json" body
  | "GET", "/metrics" ->
    Obs.Metrics.inc m_metrics;
    Obs.Runtime.sample ();
    (* Snapshot under the registry locks, render the text outside them:
       instrument updates (and other scrapers) never wait on string
       formatting for a slow reader. *)
    let snap = Obs.Metrics.snapshot () in
    response ~status:"200 OK" ~content_type:prom (Obs.Metrics.render_snapshot snap)
  | "GET", "/trace.json" ->
    Obs.Metrics.inc m_trace;
    response ~status:"200 OK" ~content_type:"application/json" (Obs.Span.to_chrome_json ())
  | "GET", "/flight.json" -> (
    match t.flight with
    | Some render ->
      Obs.Metrics.inc m_flight;
      response ~status:"200 OK" ~content_type:"application/json" (render ())
    | None ->
      Obs.Metrics.inc m_other;
      response ~status:"404 Not Found" ~content_type:text "no flight recorder\n")
  | "GET", "/profile.folded" ->
    (* Collapsed flamegraph text straight from the global profiler: empty
       until [Obs.Prof.start] has sampled something, which is itself a
       useful signal. *)
    Obs.Metrics.inc m_profile;
    response ~status:"200 OK" ~content_type:text (Obs.Prof.folded ())
  | "GET", _ ->
    Obs.Metrics.inc m_other;
    response ~status:"404 Not Found" ~content_type:text "not found\n"
  | _ ->
    Obs.Metrics.inc m_other;
    response ~status:"405 Method Not Allowed" ~content_type:text "method not allowed\n"

(* Read until the blank line ending the request head; 8 KiB cap and a read
   timeout keep a stalled client from wedging the loop. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    if Buffer.length buf > 8192 then None
    else
      let has_terminator =
        let s = Buffer.contents buf in
        let rec scan i =
          if i + 3 >= String.length s then false
          else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n' then
            true
          else scan (i + 1)
        in
        scan 0
      in
      if has_terminator then Some (Buffer.contents buf)
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
  in
  loop ()

let really_write fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

let serve_connection t fd =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 2.0;
  (* A reader that stops consuming must not wedge the accept loop. *)
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO 2.0;
  match read_head fd with
  | None -> ()
  | Some head ->
    let request_line =
      match String.index_opt head '\r' with
      | Some i -> String.sub head 0 i
      | None -> head
    in
    let reply =
      match String.split_on_char ' ' request_line with
      | meth :: target :: _ ->
        (* strip any query string; the endpoints take no parameters *)
        let path =
          match String.index_opt target '?' with
          | Some i -> String.sub target 0 i
          | None -> target
        in
        Obs.Log.debug ~fields:[ ("method", Obs.Log.Str meth); ("path", Obs.Log.Str path) ] "http.request";
        handle t ~meth ~path
      | _ ->
        Obs.Metrics.inc m_other;
        response ~status:"400 Bad Request" ~content_type:text "bad request\n"
    in
    really_write fd reply

let run t =
  Obs.Log.info ~fields:[ ("port", Obs.Log.Int t.h_port) ] "http.start";
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.listener ] [] [] 0.25 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.listener with
      | fd, _ ->
        (try serve_connection t fd
         with Unix.Unix_error (err, fn, _) ->
           Obs.Log.warn
             ~fields:[ ("error", Obs.Log.Str (Unix.error_message err)); ("fn", Obs.Log.Str fn) ]
             "http.client_error");
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error (err, fn, _) ->
        Obs.Log.warn
          ~fields:[ ("error", Obs.Log.Str (Unix.error_message err)); ("fn", Obs.Log.Str fn) ]
          "http.accept_error")
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  (try Unix.close t.listener with Unix.Unix_error _ -> ());
  Obs.Log.info ~fields:[ ("port", Obs.Log.Int t.h_port) ] "http.stop"
