(** Deterministic replay of flight-recorder dumps (see replay.mli). *)

type header = { h_trigger : string; h_pid : int; h_declared : int }

type divergence = { d_seq : int; d_request : string; d_expected : string; d_got : string }

type result = {
  total : int;
  compared : int;
  matched : int;
  diverged : divergence list;
  skipped_env : int;
  skipped_volatile : int;
  skipped_truncated : int;
}

(* -- dump parsing -- *)

let record_of_json j : (Obs.Flight.record, string) Stdlib.result =
  let str k = Option.value (Jsonl.str_member k j) ~default:"" in
  let num k = Option.value (Jsonl.num_member k j) ~default:0.0 in
  match (Jsonl.str_member "request" j, Jsonl.str_member "reply" j) with
  | Some request, Some reply ->
    Ok
      { Obs.Flight.seq = int_of_float (num "seq"); ts_s = num "ts"; trace = str "trace";
        path = str "path"; shard = int_of_float (Option.value (Jsonl.num_member "shard" j) ~default:(-1.0));
        latency_us = num "latency_us"; outcome = str "outcome"; request; reply;
        truncated = (match Jsonl.member "truncated" j with Some (Jsonl.Bool b) -> b | _ -> false) }
  | _ -> Error "record line missing \"request\"/\"reply\""

let load path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             let l = String.trim (input_line ic) in
             if l <> "" then lines := l :: !lines
           done
         with End_of_file -> ());
        match List.rev !lines with
        | [] -> Error "empty dump file"
        | header_line :: record_lines -> (
          match Jsonl.of_string header_line with
          | Error msg -> Error ("unparseable dump header: " ^ msg)
          | Ok hj -> (
            match Jsonl.str_member "schema" hj with
            | Some "clara-flight-dump/1" -> (
              let header =
                { h_trigger = Option.value (Jsonl.str_member "trigger" hj) ~default:"";
                  h_pid =
                    int_of_float (Option.value (Jsonl.num_member "pid" hj) ~default:0.0);
                  h_declared =
                    int_of_float (Option.value (Jsonl.num_member "records" hj) ~default:0.0)
                }
              in
              let rec parse acc i = function
                | [] -> Ok (header, List.rev acc)
                | l :: rest -> (
                  match Jsonl.of_string l with
                  | Error msg -> Error (Printf.sprintf "record %d: %s" i msg)
                  | Ok j -> (
                    match record_of_json j with
                    | Ok r -> parse (r :: acc) (i + 1) rest
                    | Error msg -> Error (Printf.sprintf "record %d: %s" i msg)))
              in
              parse [] 1 record_lines)
            | Some other -> Error (Printf.sprintf "unknown dump schema %S" other)
            | None -> Error "dump header has no \"schema\"")))

(* -- reply normalization --

   The volatile spans are exactly the splice points [Fastpath.Entry]
   parameterizes (id, trace, cached, path): a replayed miss may answer a
   recorded fast hit, and trace counters restart per process, so those
   fields are masked to ["*"] on both sides before the byte-diff.
   Everything else — field order, escaping, report bytes — must match. *)

let find_sub pat s =
  let n = String.length s and m = String.length pat in
  let rec go i = if i + m > n then None else if String.sub s i m = pat then Some i else go (i + 1) in
  go 0

(* ["key":"value"] with an escape-aware scan for the closing quote *)
let mask_str_value key s =
  let pat = "\"" ^ key ^ "\":\"" in
  match find_sub pat s with
  | None -> s
  | Some i ->
    let vstart = i + String.length pat in
    let n = String.length s in
    let rec backslashes k = if k >= 0 && s.[k] = '\\' then backslashes (k - 1) else k in
    let rec fin j =
      if j >= n then n
      else if s.[j] = '"' && (j - 1 - backslashes (j - 1)) mod 2 = 0 then j
      else fin (j + 1)
    in
    let vend = fin vstart in
    String.sub s 0 vstart ^ "*" ^ String.sub s (min vend n) (n - min vend n)

(* ["key":token] up to the next [,]/[}] (booleans) *)
let mask_token_value key s =
  let pat = "\"" ^ key ^ "\":" in
  match find_sub pat s with
  | None -> s
  | Some i ->
    let vstart = i + String.length pat in
    let n = String.length s in
    let rec fin j = if j >= n || s.[j] = ',' || s.[j] = '}' then j else fin (j + 1) in
    let vend = fin vstart in
    String.sub s 0 vstart ^ "*" ^ String.sub s vend (n - vend)

(* [{"id":X,] prefix: every reply renders the id first *)
let mask_id s =
  let pfx = "{\"id\":" in
  let np = String.length pfx in
  if String.length s < np || String.sub s 0 np <> pfx then s
  else
    match find_sub ",\"ok\":" s with
    | None -> s
    | Some i -> pfx ^ "*" ^ String.sub s i (String.length s - i)

let normalize reply =
  mask_token_value "cached"
    (mask_str_value "path" (mask_str_value "trace_id" (mask_id reply)))

(* -- request classification --

   Stateful commands answer from live counters (stats, metrics, quality,
   trace, flight, profile) or mutate the server (shutdown): their replies
   are legitimately different on replay and are skipped, not diffed. *)

let volatile_cmds = [ "stats"; "metrics"; "quality"; "trace"; "flight"; "profile"; "shutdown" ]

let volatile_request line =
  match Jsonl.of_string line with
  | Error _ -> false (* malformed lines get deterministic error replies *)
  | Ok req -> (
    let cmd =
      match Jsonl.str_member "cmd" req with Some _ as c -> c | None -> Jsonl.str_member "op" req
    in
    match cmd with Some c -> List.mem c volatile_cmds | None -> false)

let environmental_outcome = function
  | "overloaded" | "deadline" | "fault" -> true
  | _ -> false

(* -- replay -- *)

let server_for ?(shards = 8) ?(cache_capacity = 64) models =
  (* No deadline, no shedding surprises, no shadow sampling, no nested
     recording: the replay server must answer every replayable line
     deterministically from the bundle alone. *)
  Server.create ~cache_capacity ~shards ~slow_threshold_s:infinity ~deadline_ms:0.0
    ~max_pending:4096 ~shadow_rate:0.0 ~flight_capacity:0 models

let replay ~server records =
  let records =
    List.sort (fun (a : Obs.Flight.record) b -> compare a.Obs.Flight.seq b.Obs.Flight.seq) records
  in
  List.fold_left
    (fun acc (r : Obs.Flight.record) ->
      let acc = { acc with total = acc.total + 1 } in
      if r.Obs.Flight.truncated then { acc with skipped_truncated = acc.skipped_truncated + 1 }
      else if environmental_outcome r.Obs.Flight.outcome then
        { acc with skipped_env = acc.skipped_env + 1 }
      else if volatile_request r.Obs.Flight.request then
        { acc with skipped_volatile = acc.skipped_volatile + 1 }
      else begin
        let got = Server.handle_request server r.Obs.Flight.request in
        let acc = { acc with compared = acc.compared + 1 } in
        if normalize got = normalize r.Obs.Flight.reply then
          { acc with matched = acc.matched + 1 }
        else
          { acc with
            diverged =
              acc.diverged
              @ [ { d_seq = r.Obs.Flight.seq; d_request = r.Obs.Flight.request;
                    d_expected = r.Obs.Flight.reply; d_got = got } ]
          }
      end)
    { total = 0; compared = 0; matched = 0; diverged = []; skipped_env = 0;
      skipped_volatile = 0; skipped_truncated = 0 }
    records

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json_string r =
  let b = Buffer.create 512 in
  Printf.bprintf b
    "{\"total\":%d,\"compared\":%d,\"matched\":%d,\"diverged\":%d,\"skipped_env\":%d,\"skipped_volatile\":%d,\"skipped_truncated\":%d,\"divergences\":["
    r.total r.compared r.matched (List.length r.diverged) r.skipped_env r.skipped_volatile
    r.skipped_truncated;
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "{\"seq\":%d,\"request\":\"%s\",\"expected\":\"%s\",\"got\":\"%s\"}"
        d.d_seq (json_escape d.d_request) (json_escape d.d_expected) (json_escape d.d_got))
    r.diverged;
  Buffer.add_string b "]}";
  Buffer.contents b
