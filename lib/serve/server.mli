(** The Clara insight service: a long-running analysis daemon speaking
    line-delimited JSON over a Unix domain socket.

    Each request is one JSON object on one line; each gets exactly one
    JSON reply line.  Requests:

    {v
    {"id":1,"cmd":"analyze","nf":"cmsketch","workload":"mixed"}
    {"id":2,"cmd":"analyze","p4lite":{...},"workload":"small"}
    {"id":3,"cmd":"list"}       corpus NF names
    {"id":4,"cmd":"stats"}      served / cache counters
    {"id":5,"cmd":"ping"}
    {"id":6,"cmd":"metrics"}    Prometheus-style exposition (Obs.Metrics)
    {"id":7,"cmd":"trace","trace_id":"abc"}   one request's span subtree
    {"id":8,"cmd":"quality"}    prediction-quality telemetry (JSON string)
    {"id":9,"cmd":"flight"}     flight-recorder snapshot (JSON string);
                                optional "dump":"PATH" also writes a JSONL
                                dump server-side
    {"id":10,"cmd":"profile"}   continuous-profiler state ("profile": JSON
                                string, "folded": collapsed flamegraph text)
    {"id":11,"cmd":"shutdown"}  reply, then stop accepting
    {"id":12,"cmd":"health"}    liveness doc: version, draining, pid,
                                served/shed counters
    {"id":13,"cmd":"reload","bundle":"DIR"}   hot-swap the serving models
                                for the bundle in DIR (see below)
    v}

    ["op"] is accepted as an alias for ["cmd"].

    Replies carry ["ok":true] plus command-specific fields (for [analyze]:
    ["nf"], ["workload"], ["cached"], ["path"], ["report"]), or
    ["ok":false] with ["error"] — and, for unknown NFs, ["valid"] listing
    corpus names.  Error replies echo the request ["id"] whenever one is
    recoverable, even from lines that fail to parse as JSON.

    {b Fast path / slow path.}  The service is split DOCA-style: the
    {e slow path} parses the request, runs the full analysis pipeline on
    a per-shard serving lane (compiled predictors: flattened tree
    ensembles, LSTM inference into preallocated scratch) and installs a
    flow entry — pre-serialized reply bytes — into a sharded, mutex-per-
    shard flow cache ({!Fastpath.Shards}).  The {e fast path} answers a
    repeat [analyze] query without building any intermediate JSON: the
    raw line is scanned in place ({!Fastpath.Scan}), the flow cache is
    probed, and the entry's bytes are spliced with the request's own
    id/trace tokens.  Replies state which route answered them in
    ["path"] ([{"path":"fast"}] only for the zero-parse route; a cache
    hit that went through the full parser reports ["slow"] with
    ["cached":true]).  Fast- and slow-path replies for the same request
    are byte-identical apart from exactly those two fields.

    {b Request tracing.}  Every request line carries a trace id — the
    client's ["trace_id"] field, or a generated ["t-N"] — echoed in its
    reply as ["trace_id"].  While span recording is on ([CLARA_TRACE=1]
    or [Obs.Span.set_enabled true]; e.g. [clara serve --trace-requests]),
    the id is attached to every span the request triggers, across pool
    domains, and [{"cmd":"trace","trace_id":"abc"}] answers with that
    request's span subtree ([spans]: nested [name]/[cat]/[dur_us]/
    [children] objects).  The subtree's structure is identical for any
    [CLARA_JOBS] value.  Batches slower than the slow-request threshold
    log one [serve.slow_request] line per request through {!Obs.Log}.

    Reports are memoized per (NF, workload) in the bounded sharded flow
    cache; the distinct misses of a batch of lines are analyzed
    concurrently over [Util.Pool] (so a pipelined client, or several
    clients arriving in the same event-loop round, fan out across
    domains), each on the serving lane of its key's shard.

    {b Deadlines.}  An [analyze] request may carry ["deadline_ms"]: its
    time budget, measured from batch arrival.  The budget is checked
    between pipeline stages (before fan-out, inside the task, at reply
    assembly); when it runs out the reply is ["ok":false] with
    ["deadline_exceeded":true] — the server answers rather than hangs.
    [deadline_ms] on {!create} (or [CLARA_DEADLINE_MS]) sets the default
    budget for requests that do not name one; a request's own field wins,
    and a value [<= 0] means unlimited.

    {b Backpressure.}  At most [max_pending] request lines are admitted
    per batch; the rest are shed immediately with ["ok":false],
    ["overloaded":true] — a machine-readable "retry later" (see
    {!Client}, which backs off and retries exactly these).  At most
    [max_clients] connections are held; a connection beyond that is sent
    one overloaded reply and closed.

    {b Graceful drain.}  SIGTERM (or {!request_drain}) makes {!run} stop
    accepting, answer buffered requests for a short grace window, log
    final counters ([serve.stop]), and return.  Clients that vanish
    mid-conversation (EPIPE/ECONNRESET) are counted and logged at info
    level ([serve.client_disconnected]) — they are the client's
    lifecycle, not a server error.

    {b Fault injection.}  With {!Obs.Fault} points armed ([CLARA_FAULT]),
    [serve.accept]/[serve.read]/[serve.write] raise the corresponding
    [Unix_error]s inside the loop, [jsonl.parse] fails parses, and
    [pool.task] aborts analyses — all surfaced as typed error replies,
    never crashes.

    {b Hot reload.}  [{"cmd":"reload","bundle":DIR}] swaps the serving
    models for the bundle in [DIR] without dropping a request: load
    (through {!Persist.Bundle.load_salvage}), version derivation
    ({!Persist.Bundle.version}) and the models/lanes/flow-cache swap all
    happen in the serial planning path, so every request line — in this
    batch or any other — is answered entirely by one version.  An
    optional ["expect"] member is the negotiation handshake: when it
    differs from the loaded bundle's version the reload is rejected.
    Any failure keeps the old models serving and replies typed
    ([ok:false], naming the version still in service); the flow cache
    restarts empty on success.  [{"cmd":"health"}] reports the active
    [version], [draining] and [pid] — what a fronting router aggregates
    into its [/healthz] fan-in.

    {b Quality telemetry.}  With a positive shadow rate ([shadow_rate]
    on {!create}, or [CLARA_SHADOW_RATE]), a deterministic sample of
    analyze answers is re-checked against the cheap simulator ground
    truth off the reply path, building per-NF error sketches, drift
    detectors and SLO burn rates (see {!Quality}).  The
    [{"cmd":"quality"}] request returns the full state as a JSON
    string — the same document [GET /quality] serves over
    {!Http}.

    {b Flight recorder.}  Unless disabled ([flight_capacity 0]), every
    reply line leaves a postmortem record in per-shard rings
    ({!Obs.Flight}): raw request and reply bytes, fast/slow route, shard,
    latency, trace id and outcome class.  Dumps are written as JSONL on
    SIGQUIT, and — rate-limited, when a dump directory is configured
    ([flight_dir] / [CLARA_FLIGHT_DIR]) — on slow requests,
    deadline-exceeded replies, armed-fault hits and uncaught service
    exceptions.  [{"cmd":"flight"}] snapshots the rings on demand;
    [clara replay] turns any dump into a deterministic repro case (see
    {!Replay}). *)

type t

(** Wrap warm-started (or freshly trained) models.  [cache_capacity]
    bounds the flow cache's total entry budget (default 64; 0 disables
    caching); [shards] is the flow-cache shard count — and serving-lane
    count — (default 8, must be [>= 1]; per-shard bounds round up, see
    {!Fastpath.Shards.create}).  [slow_threshold_s] sets the slow-request
    log threshold in seconds (default: [CLARA_SLOW_MS] in milliseconds,
    else 1s).  [deadline_ms] is the default per-request budget (default:
    [CLARA_DEADLINE_MS], else unlimited; [<= 0] forces unlimited).
    [max_pending] bounds request lines admitted per batch (default 256);
    [max_clients] bounds held connections (default 64); both must be
    [>= 1].  [shadow_rate] is the shadow-evaluation sampling rate in
    [[0, 1]] (default: [CLARA_SHADOW_RATE], else 0 = disabled) and
    [shadow_seed] perturbs the sampling hash (default:
    [CLARA_SHADOW_SEED]).  [flight_capacity] sizes the flight recorder's
    per-shard rings (default: [CLARA_FLIGHT], else 64; 0 disables
    recording) and [flight_dir] is where triggered dumps land (default:
    [CLARA_FLIGHT_DIR], else triggers only count).  [version] is the
    initial bundle-version token reported by [health] (default
    ["trained"]; pass {!Persist.Bundle.version} of the loaded manifest
    when warm-starting). *)
val create :
  ?cache_capacity:int ->
  ?shards:int ->
  ?slow_threshold_s:float ->
  ?deadline_ms:float ->
  ?max_pending:int ->
  ?max_clients:int ->
  ?shadow_rate:float ->
  ?shadow_seed:int ->
  ?flight_capacity:int ->
  ?flight_dir:string ->
  ?version:string ->
  Clara.Pipeline.models ->
  t

(** The bundle-version token currently serving (updated by a successful
    [reload]). *)
val version : t -> string

val corpus_names : unit -> string list

(** The CLI's default traffic profile (the mixed-protocol spec shared by
    [clara analyze] and the service). *)
val mixed_spec : Workload.spec

(** Resolve a workload name ([mixed]/[large]/[small]); [Error] lists the
    valid names. *)
val workload_named : string -> (Workload.spec, string) result

(** One request line in, one reply line out (no trailing newline).
    Never raises: protocol problems become ["ok":false] replies. *)
val handle_request : t -> string -> string

(** Handle a batch of request lines: cache misses are deduplicated and
    analyzed in parallel, then replies come back in request order. *)
val process_batch : t -> string list -> string list

(** Counters for [stats] and the bench harness. *)
val served : t -> int

(** Requests (and connections) answered with an overloaded reply. *)
val shed : t -> int

val cache_hits : t -> int
val cache_misses : t -> int

(** The server's quality-telemetry state (sketches, drift, SLOs). *)
val quality : t -> Quality.t

(** Evaluate pending shadow tasks now (also runs automatically after
    event-loop rounds and {!handle_request} when telemetry is on). *)
val drain_quality : t -> unit

(** Drain, then render the quality document ({!Quality.to_json_string}):
    what the [quality] socket command and [GET /quality] return. *)
val quality_json : ?now:float -> t -> string

(** Ask {!run} to drain and return (what the SIGTERM handler calls).
    Safe from a signal handler or another domain. *)
val request_drain : t -> unit

(** Has a drain been requested (and not yet completed)?  What the
    [/healthz] document reports as ["draining"]. *)
val draining : t -> bool

(** Flow-cache shard count (= serving-lane and flight-ring count). *)
val shard_count : t -> int

(** The server's flight recorder (always present; disabled when
    [flight_capacity] was 0). *)
val flight : t -> Obs.Flight.t

(** The flight snapshot document: what the [flight] socket command and
    [GET /flight.json] return. *)
val flight_json : t -> string

(** Serve one already-connected stream (e.g. a socketpair end) until the
    peer half-closes — the in-process test harness.  A disconnecting peer
    (EPIPE/ECONNRESET) ends the conversation quietly instead of raising. *)
val serve_until_eof : t -> Unix.file_descr -> unit

(** Bind [socket_path] (unlinking any stale socket), accept clients, and
    serve until a [shutdown] request arrives or a drain is requested
    (SIGTERM / {!request_drain}).  Single-threaded event loop
    ({!Fastpath.Evloop}: level-triggered rounds, per-connection state
    machines, batched reads, coalesced writes); analysis parallelism
    comes from {!process_batch}.  Logs its effective config
    ([serve.start]) and accept/read/write errors through {!Obs.Log}
    rather than dying or swallowing them. *)
val run : t -> socket_path:string -> unit
