(** Minimal one-line JSON (see jsonl.mli). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* -- printing -- *)

let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_num b f =
  if Float.is_nan f || Float.abs f = Float.infinity then
    Buffer.add_string b "null" (* JSON has no NaN/inf *)
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string b (Printf.sprintf "%.0f" f)
  else Buffer.add_string b (Printf.sprintf "%.17g" f)

let to_string v =
  let b = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Num f -> add_num b f
    | Str s ->
      Buffer.add_char b '"';
      add_escaped b s;
      Buffer.add_char b '"'
    | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          go v)
        l;
      Buffer.add_char b ']'
    | Obj l ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          add_escaped b k;
          Buffer.add_string b "\":";
          go v)
        l;
      Buffer.add_char b '}'
  in
  go v;
  Buffer.contents b

(* -- parsing -- *)

exception Parse of string

let utf8_encode b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let of_string s =
  if Obs.Fault.fire "jsonl.parse" then Error "injected fault: jsonl.parse"
  else
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      try int_of_string ("0x" ^ String.sub s !pos 4) with Failure _ -> fail "bad \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        if !pos >= n then fail "unterminated escape";
        let c = s.[!pos] in
        incr pos;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          let code = hex4 () in
          let code =
            (* combine a surrogate pair when one follows *)
            if code >= 0xD800 && code <= 0xDBFF && !pos + 1 < n && s.[!pos] = '\\'
               && s.[!pos + 1] = 'u' then begin
              pos := !pos + 2;
              let low = hex4 () in
              if low >= 0xDC00 && low <= 0xDFFF then
                0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
              else fail "unpaired surrogate"
            end
            else code
          in
          utf8_encode b code
        | _ -> fail "unknown escape");
        go ()
      | c ->
        Buffer.add_char b c;
        incr pos;
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None ->
      pos := start;
      fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            fields (kv :: acc)
          | Some '}' ->
            incr pos;
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg

let member key = function Obj l -> List.assoc_opt key l | _ -> None

(* -- best-effort member salvage from malformed text --

   Error replies must echo the request id even when the request line does
   not parse, or pipelined clients lose correlation.  Scan the raw text for
   the quoted key at object depth 1 (tracking strings so a key inside a
   value cannot match), then parse the scalar that follows the ':'. *)

let salvage_member key s =
  let n = String.length s in
  let klen = String.length key in
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  (* [i] points just after an opening quote; result points past the closing
     quote (or [n] when the string never terminates) *)
  let rec skip_string i =
    if i >= n then n
    else
      match s.[i] with '\\' -> skip_string (i + 2) | '"' -> i + 1 | _ -> skip_string (i + 1)
  in
  let parse_scalar i =
    let i = ref i in
    while !i < n && is_ws s.[!i] do
      incr i
    done;
    if !i >= n then None
    else
      match s.[!i] with
      | '"' ->
        let stop = skip_string (!i + 1) in
        if stop <= n && stop > !i + 1 && s.[stop - 1] = '"' then
          match of_string (String.sub s !i (stop - !i)) with Ok v -> Some v | Error _ -> None
        else None
      | 't' | 'f' | 'n' ->
        let take w v =
          if !i + String.length w <= n && String.sub s !i (String.length w) = w then Some v
          else None
        in
        (match s.[!i] with
        | 't' -> take "true" (Bool true)
        | 'f' -> take "false" (Bool false)
        | _ -> take "null" Null)
      | '0' .. '9' | '-' | '+' | '.' ->
        let stop = ref !i in
        while
          !stop < n
          && match s.[!stop] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
        do
          incr stop
        done;
        Option.map (fun f -> Num f) (float_of_string_opt (String.sub s !i (!stop - !i)))
      | _ -> None
  in
  let found = ref None in
  let depth = ref 0 in
  let i = ref 0 in
  while !found = None && !i < n do
    match s.[!i] with
    | '"' ->
      let start = !i + 1 in
      let stop = skip_string start in
      (if !depth = 1 && stop <= n && stop > start && s.[stop - 1] = '"'
          && stop - 1 - start = klen
          && String.sub s start klen = key then begin
         let j = ref stop in
         while !j < n && is_ws s.[!j] do
           incr j
         done;
         if !j < n && s.[!j] = ':' then found := parse_scalar (!j + 1)
       end);
      i := stop
    | '{' | '[' ->
      incr depth;
      incr i
    | '}' | ']' ->
      decr depth;
      incr i
    | _ -> incr i
  done;
  !found

let str_member key v = match member key v with Some (Str s) -> Some s | _ -> None
let num_member key v = match member key v with Some (Num f) -> Some f | _ -> None
