(** Deterministic replay of flight-recorder dumps.

    A flight dump (see {!Obs.Flight}) is a self-contained repro case: the
    raw request lines the server answered and the raw reply bytes it sent.
    [clara replay DUMP --model BUNDLE] loads the dump, re-issues every
    replayable request against a freshly-created server over the bundle,
    and byte-diffs each reply against the recorded one.

    {b Equivalence rules.}  Replies are compared after masking exactly the
    volatile spans {!Fastpath.Entry} splices per request:

    - the [{"id":N,] prefix (a replayed request keeps its recorded id, but
      masking it makes the diff robust to salvage-path echoes);
    - the ["trace_id"] string value (trace counters restart per process);
    - the ["cached"] boolean (a recorded fast hit replays as a first-time
      miss);
    - the ["path"] string value (fast vs slow route, same reason).

    Everything else — field order, report bytes, error text — must match
    byte-for-byte.

    {b Skips.}  Three record classes are excluded from comparison but
    still counted: records whose stored bytes were clipped
    ([skipped_truncated] — not replayable), records whose outcome was
    environmental ([overloaded]/[deadline]/[fault]: [skipped_env] — the
    reply described the original process's load or armed faults, not the
    request), and requests whose command answers from live state
    ([stats], [metrics], [quality], [trace], [flight], [profile],
    [shutdown]: [skipped_volatile]). *)

(** Parsed dump header. *)
type header = {
  h_trigger : string;  (** what caused the dump *)
  h_pid : int;  (** recording process *)
  h_declared : int;  (** record count the header declared *)
}

type divergence = {
  d_seq : int;
  d_request : string;
  d_expected : string;  (** recorded reply (raw, unmasked) *)
  d_got : string;  (** replayed reply (raw, unmasked) *)
}

type result = {
  total : int;
  compared : int;
  matched : int;
  diverged : divergence list;
  skipped_env : int;
  skipped_volatile : int;
  skipped_truncated : int;
}

(** Parse a [clara-flight-dump/1] JSONL file.  [Error] on IO failure, a
    missing/unknown schema, or any unparseable line. *)
val load : string -> (header * Obs.Flight.record list, string) Stdlib.result

(** Mask the volatile reply spans (id prefix, ["trace_id"], ["cached"],
    ["path"]) to ["*"].  Exposed for tests. *)
val normalize : string -> string

(** Does this request line name a command whose reply depends on live
    server state (and so cannot be byte-compared)? *)
val volatile_request : string -> bool

(** A server configured for determinism: no default deadline, no shadow
    sampling, no nested flight recording, an effectively-infinite slow
    threshold, and room for every line of a dump in one batch. *)
val server_for : ?shards:int -> ?cache_capacity:int -> Clara.Pipeline.models -> Server.t

(** Re-issue the records (in [seq] order) one at a time through
    {!Server.handle_request} and byte-diff modulo {!normalize}. *)
val replay : server:Server.t -> Obs.Flight.record list -> result

(** The result as one JSON line (divergences carry raw expected/got). *)
val to_json_string : result -> string
