(** Minimal hand-rolled HTTP/1.1 telemetry exporter.

    Serves read-only endpoints over loopback TCP:

    - [GET /healthz]    -> small liveness JSON.  With a [health] renderer
                           wired at {!create} it is the server's document
                           (uptime, bundle version, shard count, pid,
                           draining flag); otherwise a built-in
                           [{"ok":true,"uptime_s":..,"pid":..}].  Either
                           way it is allocation-light and takes no
                           registry lock — safe to probe at any rate
    - [GET /metrics]    -> Prometheus text exposition ({!Obs.Metrics},
                           after an {!Obs.Runtime.sample}) — byte-for-byte
                           the same renderer as the socket [metrics] command
    - [GET /trace.json] -> Chrome-trace JSON of the span ring buffer
    - [GET /quality]    -> prediction-quality JSON (error sketches, drift,
                           SLO burn rates) when a [quality] renderer was
                           wired at {!create}; 404 otherwise — byte-for-byte
                           what the socket [quality] command embeds
    - [GET /flight.json]   -> flight-recorder snapshot when a [flight]
                           renderer was wired ({!Server.flight_json});
                           404 otherwise
    - [GET /profile.folded] -> the continuous profiler's collapsed
                           flamegraph text ({!Obs.Prof.folded}; pipe it
                           into [flamegraph.pl]).  Empty until sampling
                           has started

    Same discipline as {!Server.run}: a single-threaded select loop, one
    short-lived connection per request ([Connection: close]), no analysis
    work — so a scrape can never contend with the pool fan-out.  Unknown
    paths get 404, non-GET methods 405, garbage 400.  Zero dependencies:
    the parser reads one request head (request line + headers, 8 KiB cap)
    and ignores the rest. *)

type t

(** Bind [127.0.0.1:port] ([port = 0] picks an ephemeral port — read it
    back with {!port}).  [backlog] defaults to 16.  [quality] renders
    the [/quality] document on demand (typically
    [fun () -> Server.quality_json server]); without it the path 404s.
    [health] overrides the built-in [/healthz] JSON; [flight] renders
    [/flight.json] (typically [fun () -> Server.flight_json server]),
    without it that path 404s.
    @raise Unix.Unix_error when binding fails (e.g. port in use). *)
val create :
  ?backlog:int ->
  ?quality:(unit -> string) ->
  ?health:(unit -> string) ->
  ?flight:(unit -> string) ->
  port:int ->
  unit ->
  t

(** The bound TCP port. *)
val port : t -> int

(** Accept-and-respond loop; returns after {!stop} (checked between
    selects, <= 0.25s latency).  Closes the listener on exit. *)
val run : t -> unit

(** Ask a running {!run} loop to exit.  Idempotent, any domain. *)
val stop : t -> unit
