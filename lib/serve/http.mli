(** Minimal hand-rolled HTTP/1.1 telemetry exporter.

    Serves three read-only endpoints over loopback TCP:

    - [GET /healthz]    -> [200 "ok"] while the server is accepting
    - [GET /metrics]    -> Prometheus text exposition ({!Obs.Metrics},
                           after an {!Obs.Runtime.sample}) — byte-for-byte
                           the same renderer as the socket [metrics] command
    - [GET /trace.json] -> Chrome-trace JSON of the span ring buffer
    - [GET /quality]    -> prediction-quality JSON (error sketches, drift,
                           SLO burn rates) when a [quality] renderer was
                           wired at {!create}; 404 otherwise — byte-for-byte
                           what the socket [quality] command embeds

    Same discipline as {!Server.run}: a single-threaded select loop, one
    short-lived connection per request ([Connection: close]), no analysis
    work — so a scrape can never contend with the pool fan-out.  Unknown
    paths get 404, non-GET methods 405, garbage 400.  Zero dependencies:
    the parser reads one request head (request line + headers, 8 KiB cap)
    and ignores the rest. *)

type t

(** Bind [127.0.0.1:port] ([port = 0] picks an ephemeral port — read it
    back with {!port}).  [backlog] defaults to 16.  [quality] renders
    the [/quality] document on demand (typically
    [fun () -> Server.quality_json server]); without it the path 404s.
    @raise Unix.Unix_error when binding fails (e.g. port in use). *)
val create : ?backlog:int -> ?quality:(unit -> string) -> port:int -> unit -> t

(** The bound TCP port. *)
val port : t -> int

(** Accept-and-respond loop; returns after {!stop} (checked between
    selects, <= 0.25s latency).  Closes the listener on exit. *)
val run : t -> unit

(** Ask a running {!run} loop to exit.  Idempotent, any domain. *)
val stop : t -> unit
