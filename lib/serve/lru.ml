(** Bounded LRU cache (see lru.mli). *)

type 'a entry = { value : 'a; mutable stamp : int }

type 'a t = {
  cap : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: capacity must be >= 0";
  { cap = capacity;
    table = Hashtbl.create (max 1 (2 * capacity));
    tick = 0; hit_count = 0; miss_count = 0 }

let capacity t = t.cap
let length t = Hashtbl.length t.table
let hits t = t.hit_count
let misses t = t.miss_count

let next_stamp t =
  t.tick <- t.tick + 1;
  t.tick

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    e.stamp <- next_stamp t;
    t.hit_count <- t.hit_count + 1;
    Some e.value
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

let peek t key = Option.map (fun e -> e.value) (Hashtbl.find_opt t.table key)

let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      t.table None
  in
  match victim with Some (key, _) -> Hashtbl.remove t.table key | None -> ()

let add t key value =
  if t.cap > 0 then begin
    Hashtbl.replace t.table key { value; stamp = next_stamp t };
    while Hashtbl.length t.table > t.cap do
      evict_oldest t
    done
  end
