(** Prediction-quality telemetry: deterministic sampled shadow
    evaluation, error sketches, drift detection and SLO burn rates.

    The serving layer answers from learned models; this module measures
    whether those answers are still right.  For a {!should_shadow}
    fraction of analyze traffic — selected by hashing the request id and
    flow key, so the choice is identical under any [CLARA_JOBS] — the
    server {!offer}s the model's raw predictions here, and {!drain}
    re-derives the cheap simulator ground truth off the reply path,
    recording signed relative errors into per-shard {!Obs.Sketch}s
    (merged only at scrape: the hot path never takes a cross-shard
    lock) and feeding per-NF {!Obs.Drift} detectors.  Fast-path hit
    latencies and request outcomes land in the same structure, covering
    the latency/availability {!Obs.Slo}s.

    Offers happen during the serial planning/assembly phases of a batch
    and [drain] evaluates them in queue order, so the full shadow state
    (selection, errors, drift firings) is bit-identical for the same
    request sequence regardless of the pool size.  Ground truths are
    cached unperturbed per NF; {!Nicsim.Perturb} scales apply at
    evaluation time, so a mid-stream profile shift is visible to the
    very next evaluated sample. *)

type t

val create : ?rate:float -> ?seed:int -> shards:int -> unit -> t
(** [create ~shards ()] with [rate] defaulting to [CLARA_SHADOW_RATE]
    (else 0.0) and [seed] to [CLARA_SHADOW_SEED] (else a fixed
    constant).  Raises [Invalid_argument] unless [0 <= rate <= 1] and
    [shards >= 1]. *)

val rate : t -> float

val enabled : t -> bool
(** [rate t > 0].  When false every record entry point is a no-op at
    the call site — the disabled server pays one float compare. *)

val should_shadow : t -> id:string -> key:string -> bool
(** Deterministic per-request sampling decision: FNV-1a 64 over
    [id ^ "|" ^ key], seed folded in, one splitmix64 draw against
    [rate]. *)

val offer :
  t -> shard:int -> nf:string -> pred_compute:float -> pred_memory:float -> unit
(** Enqueue one selected request's predictions for shadow evaluation.
    Cheap (one queue push); the ground-truth work happens in
    {!drain}. *)

val record_fast_latency : t -> shard:int -> nf:string -> float -> unit
(** Record one fast-path hit latency (seconds) into the shard's
    [fast_latency_us] sketch. *)

val record_request_latency : t -> float -> unit
(** Count one request's wall latency against the latency SLO. *)

val record_reply : t -> ok:bool -> unit
(** Count one reply outcome against the availability SLO. *)

val drain : t -> unit
(** Evaluate every pending shadow task: derive ground truth (cached
    per NF, {!Nicsim.Perturb} scales applied at use time), record
    relative errors, feed drift detectors.  Each NF feeds two
    detectors: compute error into ["nf"], memory error into
    ["nf/memory"] — the memory prediction is a direct count that
    tracks the simulator exactly, so a profile shift steps it by a
    known amount even when the learned compute model fits poorly.
    Serialized; call off the reply path. *)

val pending : t -> int
val sampled : t -> int
val evaluated : t -> int

val eval_errors : t -> int
(** Offers whose ground truth could not be derived (e.g. inline p4lite
    programs not in the corpus). *)

val drift_active : t -> string -> bool
val drift_fired_at : t -> string -> int
val drift_samples : t -> string -> int

val to_json_string : ?now:float -> t -> string
(** Drain, then render the full quality state: header counters, then
    [shadow] (error sketches per metric/NF, shard-merged, sorted),
    [latency] (fast-path latency sketches), [drift] (per-NF detector
    state) and [slo] sections.  [now] drives SLO bucket expiry only
    and is never printed. *)
