(** Minimal JSON for the line-delimited insight-server protocol.

    Self-contained (the container carries no JSON library): a value type,
    a recursive-descent parser and a printer whose output never contains a
    raw newline — every value prints on one line, so values frame cleanly
    as [value ^ "\n"] on the wire. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** One-line rendering; control characters in strings are escaped. *)
val to_string : t -> string

(** Parse a complete JSON document (trailing whitespace allowed).  Never
    raises: every malformed input (and every armed [jsonl.parse]
    {!Obs.Fault} draw) is an [Error]. *)
val of_string : string -> (t, string) result

(** Object field lookup ([None] on non-objects and missing keys). *)
val member : string -> t -> t option

(** [member] narrowed to a string / a float. *)
val str_member : string -> t -> string option

val num_member : string -> t -> float option

(** Best-effort scalar-member extraction from possibly-{b malformed} text:
    finds the quoted [key] at object depth 1 (never inside a string value)
    and parses the scalar after the ':'.  Used to echo the request [id] in
    error replies when the request line itself does not parse; [None] when
    the key or a parseable scalar value cannot be found. *)
val salvage_member : string -> string -> t option
