(** Clara insight service (see server.mli). *)

(* One serving lane per flow-cache shard: a compiled pipeline (LSTM bound
   to preallocated scratch, scale-out GBDT flattened to node arrays)
   guarded by its own mutex.  Slow-path analyses for keys in shard [i]
   run on lane [i], so concurrent pool tasks on different shards never
   share inference scratch. *)
type lane = { l_lock : Mutex.t; l_compiled : Clara.Pipeline.compiled }

(* [models]/[flows]/[lanes] are mutable for hot reload: the swap happens
   inside the serial planning path, so every request line is answered
   entirely by one bundle version — never a torn mix. *)
type t = {
  mutable models : Clara.Pipeline.models;
  mutable flows : Fastpath.Entry.t Fastpath.Shards.t;  (* installed flow entries *)
  mutable lanes : lane array;
  mutable version : string;  (* bundle version token (Persist.Bundle.version) *)
  quality : Quality.t;  (* shadow evaluation, error sketches, drift, SLOs *)
  slow_s : float;
  deadline_s : float option;  (* default per-request budget; None = unlimited *)
  max_pending : int;  (* request lines admitted per batch before shedding *)
  max_clients : int;  (* accepted connections before connection-level shedding *)
  fast_buf : Buffer.t;  (* fast-path render scratch (process_batch is single-caller) *)
  flight : Obs.Flight.t;  (* always-on postmortem rings (capacity 0 disables) *)
  mutable served_count : int;
  mutable shed_count : int;
  mutable stop_requested : bool;
  mutable drain_requested : bool;
  mutable flight_dump_requested : bool;  (* set by the SIGQUIT handler *)
}

(* Default slow-request threshold: CLARA_SLOW_MS, else 1s. *)
let default_slow_s () =
  match Option.bind (Sys.getenv_opt "CLARA_SLOW_MS") float_of_string_opt with
  | Some ms when ms > 0.0 -> ms /. 1000.0
  | Some _ | None -> 1.0

(* Default request deadline: CLARA_DEADLINE_MS, else none. *)
let default_deadline_s () =
  match Option.bind (Sys.getenv_opt "CLARA_DEADLINE_MS") float_of_string_opt with
  | Some ms when ms > 0.0 -> Some (ms /. 1000.0)
  | Some _ | None -> None

let create ?(cache_capacity = 64) ?(shards = 8) ?slow_threshold_s ?deadline_ms
    ?(max_pending = 256) ?(max_clients = 64) ?shadow_rate ?shadow_seed ?flight_capacity
    ?flight_dir ?(version = "trained") models =
  if max_pending < 1 then invalid_arg "Server.create: max_pending must be >= 1";
  if max_clients < 1 then invalid_arg "Server.create: max_clients must be >= 1";
  if shards < 1 then invalid_arg "Server.create: shards must be >= 1";
  let slow_s = match slow_threshold_s with Some s -> s | None -> default_slow_s () in
  let deadline_s =
    match deadline_ms with
    | Some ms when ms > 0.0 -> Some (ms /. 1000.0)
    | Some _ -> None (* an explicit 0 disables any environment default *)
    | None -> default_deadline_s ()
  in
  { models;
    flows = Fastpath.Shards.create ~shards ~capacity:cache_capacity ();
    lanes =
      Array.init shards (fun _ ->
          { l_lock = Mutex.create (); l_compiled = Clara.Pipeline.compile models });
    version;
    quality = Quality.create ?rate:shadow_rate ?seed:shadow_seed ~shards ();
    slow_s; deadline_s; max_pending; max_clients; fast_buf = Buffer.create 1024;
    flight = Obs.Flight.create ~shards ?capacity:flight_capacity ?dir:flight_dir ();
    served_count = 0; shed_count = 0; stop_requested = false; drain_requested = false;
    flight_dump_requested = false }

let served t = t.served_count
let shed t = t.shed_count
let version t = t.version
let cache_hits t = Fastpath.Shards.hits t.flows
let cache_misses t = Fastpath.Shards.misses t.flows
let request_drain t = t.drain_requested <- true
let draining t = t.drain_requested
let shard_count t = Fastpath.Shards.shard_count t.flows
let flight t = t.flight
let flight_json t = Obs.Flight.to_json_string t.flight
let quality t = t.quality
let drain_quality t = Quality.drain t.quality
let quality_json ?now t = Quality.to_json_string ?now t.quality

(* Inline p4lite programs are not in the corpus, so shadow evaluation
   cannot re-derive their ground truth; skip offering them. *)
let shadowable_key key =
  String.length key < 7 || String.sub key 0 7 <> "p4lite:"

(* The id token as rendered in the reply ("null" for an absent id):
   the shadow-sampling hash input, identical on both serving paths. *)
let id_token = function Jsonl.Null -> "null" | id -> Jsonl.to_string id

(* Offer one selected analyze answer for shadow evaluation. *)
let maybe_shadow t ~id ~key entry =
  if Quality.enabled t.quality && shadowable_key key
     && Quality.should_shadow t.quality ~id ~key
  then
    Quality.offer t.quality
      ~shard:(Fastpath.Shards.shard_of_key t.flows key)
      ~nf:(Fastpath.Entry.nf entry)
      ~pred_compute:(Fastpath.Entry.pred_compute entry)
      ~pred_memory:(Fastpath.Entry.pred_memory entry)

let corpus_names () = List.map (fun e -> e.Nf_lang.Ast.name) (Nf_lang.Corpus.all ())

(* -- service metrics -- *)

let m_requests = Obs.Metrics.counter ~help:"Request lines handled" "clara_serve_requests_total"
let m_errors = Obs.Metrics.counter ~help:"Error replies sent" "clara_serve_errors_total"
let m_cache_hits = Obs.Metrics.counter ~help:"Report-cache hits" "clara_serve_cache_hits_total"

let m_cache_misses =
  Obs.Metrics.counter ~help:"Report-cache misses" "clara_serve_cache_misses_total"

let m_in_flight =
  Obs.Metrics.gauge ~help:"Request lines currently being processed" "clara_serve_in_flight"

let m_latency =
  Obs.Metrics.histogram ~help:"Per-request wall latency in seconds"
    ~buckets:(Obs.Metrics.latency_buckets ()) "clara_serve_request_seconds"

let m_shed =
  Obs.Metrics.counter ~help:"Requests shed with an overloaded reply" "clara_serve_shed_total"

let m_deadline =
  Obs.Metrics.counter ~help:"Requests answered with deadline_exceeded"
    "clara_serve_deadline_total"

let m_disconnects =
  Obs.Metrics.counter ~help:"Clients that vanished mid-conversation (EPIPE/ECONNRESET)"
    "clara_serve_client_disconnects_total"

(* -- workloads -- *)

let mixed_spec =
  { Workload.default with Workload.proto = Workload.Mixed; Workload.n_packets = 800 }

let workload_named = function
  | "mixed" -> Ok mixed_spec
  | "large" -> Ok { Workload.large_flows with Workload.n_packets = 800 }
  | "small" -> Ok { Workload.small_flows with Workload.n_packets = 800 }
  | other -> Error (Printf.sprintf "unknown workload %S (one of: mixed, large, small)" other)

(* -- inline P4lite programs -- *)

exception Bad_program of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_program m)) fmt

let all_fields =
  Nf_lang.Ast.
    [ Eth_type; Ip_src; Ip_dst; Ip_proto; Ip_ttl; Ip_len; Ip_hl; Ip_tos; Ip_id; Ip_csum;
      Tcp_sport; Tcp_dport; Tcp_seq; Tcp_ack; Tcp_off; Tcp_flags; Tcp_win; Tcp_csum;
      Udp_sport; Udp_dport; Udp_len; Udp_csum ]

let field_of_name s = List.find_opt (fun f -> Nf_lang.Ast.field_name f = s) all_fields

(* Actions are compact strings: "drop" | "noop" | "dec_ttl" | "forward:PORT"
   | "set:FIELD" | "count:NAME". *)
let action_of_string s =
  match s with
  | "drop" -> Nf_lang.P4lite.Drop_packet
  | "noop" -> Nf_lang.P4lite.No_op
  | "dec_ttl" -> Nf_lang.P4lite.Decrement_ttl
  | _ -> (
    match String.index_opt s ':' with
    | None -> bad "unknown action %S" s
    | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "forward" -> (
        match int_of_string_opt arg with
        | Some port -> Nf_lang.P4lite.Forward port
        | None -> bad "forward wants a port number, got %S" arg)
      | "set" -> (
        match field_of_name arg with
        | Some f -> Nf_lang.P4lite.Set_field f
        | None -> bad "unknown header field %S" arg)
      | "count" -> Nf_lang.P4lite.Count arg
      | _ -> bad "unknown action %S" s))

let string_list_member what key j =
  match Jsonl.member key j with
  | Some (Jsonl.Arr items) ->
    List.map (function Jsonl.Str s -> s | _ -> bad "%s: %S wants strings" what key) items
  | Some _ -> bad "%s: %S must be an array" what key
  | None -> bad "%s: missing %S" what key

let table_of_json j =
  let name =
    match Jsonl.str_member "name" j with Some s -> s | None -> bad "table: missing \"name\""
  in
  let keys =
    List.map
      (fun s ->
        match field_of_name s with
        | Some f -> f
        | None -> bad "table %s: unknown key field %S" name s)
      (string_list_member ("table " ^ name) "keys" j)
  in
  let actions = List.map action_of_string (string_list_member ("table " ^ name) "actions" j) in
  let default_action =
    match Jsonl.str_member "default" j with
    | Some s -> action_of_string s
    | None -> Nf_lang.P4lite.No_op
  in
  let size =
    match Jsonl.num_member "size" j with Some f -> int_of_float f | None -> 64
  in
  if keys = [] then bad "table %s: needs at least one key" name;
  if size < 1 then bad "table %s: size must be >= 1" name;
  { Nf_lang.P4lite.t_name = name; keys; actions; default_action; size }

let program_of_json j =
  let p_name = Option.value (Jsonl.str_member "name" j) ~default:"p4lite" in
  let pipeline =
    match Jsonl.member "tables" j with
    | Some (Jsonl.Arr tables) -> List.map table_of_json tables
    | Some _ -> bad "\"tables\" must be an array"
    | None -> bad "p4lite program: missing \"tables\""
  in
  if pipeline = [] then bad "p4lite program: empty pipeline";
  { Nf_lang.P4lite.p_name; pipeline }

(* -- request trace ids --

   Every request line gets a trace id: the client's ["trace_id"] when it
   sent one, else a generated ["t-N"].  The id is echoed in the reply,
   carried (via [Obs.Span.with_trace]) into every span the request
   triggers — re-established inside pool-task closures, since DLS does
   not cross domains — and stamped on slow-request log lines, so
   [{"cmd":"trace","trace_id":...}] can pull one request's span subtree
   out of the ring buffer. *)

let trace_counter = Atomic.make 0

let fresh_trace () = Printf.sprintf "t-%d" (1 + Atomic.fetch_and_add trace_counter 1)

(* -- replies -- *)

let ok_reply ~trace id fields =
  Jsonl.to_string
    (Jsonl.Obj
       (("id", id) :: ("ok", Jsonl.Bool true) :: ("trace_id", Jsonl.Str trace) :: fields))

(* [overloaded]/[deadline] mark the two machine-actionable error classes:
   a client should retry an overloaded reply after backing off (the
   condition is the server's), and should NOT retry a deadline reply (the
   budget was the request's own). *)
let err_reply ?valid ?(overloaded = false) ?(deadline = false) ~trace id msg =
  Obs.Metrics.inc m_errors;
  if overloaded then Obs.Metrics.inc m_shed;
  if deadline then Obs.Metrics.inc m_deadline;
  let fields =
    [ ("id", id); ("ok", Jsonl.Bool false); ("trace_id", Jsonl.Str trace);
      ("error", Jsonl.Str msg) ]
  in
  let fields = if overloaded then fields @ [ ("overloaded", Jsonl.Bool true) ] else fields in
  let fields =
    if deadline then fields @ [ ("deadline_exceeded", Jsonl.Bool true) ] else fields
  in
  let fields =
    match valid with
    | None -> fields
    | Some names -> fields @ [ ("valid", Jsonl.Arr (List.map (fun s -> Jsonl.Str s) names)) ]
  in
  Jsonl.to_string (Jsonl.Obj fields)

(* Analyze replies render through the flow entry's pre-serialized bytes on
   every route.  The slow path goes through [Entry.render] with the id
   printed by [Jsonl.to_string]; the fast path splices the raw id token
   from the request line.  Both produce the same field order (id, ok,
   trace_id, nf, workload, cached, path, report) with identical escaping,
   so the two replies for one request differ in exactly the
   [cached]/[path] values. *)
let analyze_reply ~trace id ~cached ~path entry =
  Fastpath.Entry.render entry
    ~id:(match id with Jsonl.Null -> "" | id -> Jsonl.to_string id)
    ~trace ~cached ~path

(* -- request planning -- *)

(* A parsed request line: answered by the fast path, already answerable,
   a cache hit, or an analysis to fan out.  [Fast] keeps the shard/trace
   the scanner already had in hand so the flight recorder never re-scans
   a fast-path reply (both fields are empty-ish when recording is off). *)
type plan =
  | Fast of { reply : string; shard : int; trace : string }
  | Ready of string
  | Hit of { id : Jsonl.t; trace : string; key : string; entry : Fastpath.Entry.t }
  | Miss of {
      id : Jsonl.t;
      trace : string;
      key : string;
      elt : Nf_lang.Ast.element;
      spec : Workload.spec;
      nf_label : string;
      wname : string;
      deadline : float option;  (* absolute Clock seconds; None = no budget *)
    }

let plan_trace = function
  | Fast _ | Ready _ -> None
  | Hit { trace; _ } | Miss { trace; _ } -> Some trace

(* Per-request budget: the request's own ["deadline_ms"] wins (0 or
   negative disables), else the server default.  Stored as an absolute
   time so every later stage compares against the same clock. *)
let deadline_of t ~now req =
  let budget_s =
    match Jsonl.num_member "deadline_ms" req with
    | Some ms when ms > 0.0 -> Some (ms /. 1000.0)
    | Some _ -> None
    | None -> t.deadline_s
  in
  Option.map (fun s -> now +. s) budget_s

let expired deadline = match deadline with Some d -> Obs.Clock.now_s () > d | None -> false

let deadline_reply ~trace id =
  err_reply ~deadline:true ~trace id "deadline exceeded before the analysis finished"

let plan_analyze t ~now ~trace id req =
  let deadline = deadline_of t ~now req in
  let wname = Option.value (Jsonl.str_member "workload" req) ~default:"mixed" in
  match workload_named wname with
  | Error msg -> Ready (err_reply ~trace id msg)
  | Ok spec -> (
    let target =
      match (Jsonl.str_member "nf" req, Jsonl.member "p4lite" req) with
      | Some name, _ -> (
        match Nf_lang.Corpus.find name with
        | elt -> Ok (elt, name, name ^ "|" ^ wname)
        | exception Failure _ ->
          Error
            (err_reply ~valid:(corpus_names ()) ~trace id (Printf.sprintf "unknown NF %S" name)))
      | None, Some pj -> (
        match program_of_json pj with
        | prog ->
          let elt = Nf_lang.P4lite.compile prog in
          let key =
            Printf.sprintf "p4lite:%08lx|%s"
              (Persist.Wire.crc32 (Nf_lang.Pp.to_string elt))
              wname
          in
          Ok (elt, elt.Nf_lang.Ast.name, key)
        | exception Bad_program msg -> Error (err_reply ~trace id ("bad p4lite program: " ^ msg)))
      | None, None -> Error (err_reply ~trace id "analyze wants \"nf\" or \"p4lite\"")
    in
    match target with
    | Error reply -> Ready reply
    | Ok (elt, nf_label, key) -> (
      match Fastpath.Shards.find t.flows key with
      | Some entry ->
        Obs.Metrics.inc m_cache_hits;
        Hit { id; trace; key; entry }
      | None ->
        Obs.Metrics.inc m_cache_misses;
        Miss { id; trace; key; elt; spec; nf_label; wname; deadline }))

(* The [trace] command: one request's span subtree, rebuilt from the ring
   buffer by trace-id filter.  Structure only — names, categories, order —
   plus wall-clock durations for eyeballing; empty when tracing is off or
   the ring has already evicted the request. *)

let rec tree_json (node : Obs.Span.tree) =
  Jsonl.Obj
    [ ("name", Jsonl.Str node.Obs.Span.span.Obs.Span.name);
      ("cat", Jsonl.Str node.Obs.Span.span.Obs.Span.cat);
      ("dur_us", Jsonl.Num node.Obs.Span.span.Obs.Span.dur_us);
      ("children", Jsonl.Arr (List.map tree_json node.Obs.Span.children)) ]

let trace_reply ~trace id req =
  match Jsonl.str_member "trace_id" req with
  | None -> err_reply ~trace id "trace wants \"trace_id\""
  | Some wanted ->
    ok_reply ~trace id
      [ ("queried", Jsonl.Str wanted);
        ("tracing", Jsonl.Bool (Obs.Span.enabled ()));
        ("spans", Jsonl.Arr (List.map tree_json (Obs.Span.forest ~trace:wanted ()))) ]

(* -- the fast path --

   A repeat [analyze] query never builds a JSON tree: the raw line is
   scanned in place (strict subset of the JSONL grammar — anything the
   scanner rejects falls through to the full parser below), the flow
   table is probed, and on a hit the pre-rendered reply bytes are spliced
   together with the request's own id/trace tokens.  Guards keep the two
   routes byte-compatible:

   - an armed [jsonl.parse] fault forces the slow path, so fault-draw
     sequences are identical whether or not the cache is warm;
   - the id must be a canonical scalar (round-trips through parse/print
     unchanged) so splicing it verbatim matches [Jsonl.to_string];
   - the workload name must be one the server knows, the NF must be a
     plain string, and [p4lite] requests always take the slow path;
   - a probe miss counts nothing — the slow path's [Shards.find] counts
     the miss — so each line still counts exactly one lookup outcome.

   Cache hits never consulted the deadline before the split and still do
   not: a hit is answered from memory well inside any budget. *)
let fast_track t ~now line =
  if Obs.Fault.armed "jsonl.parse" then None
  else
    let cmd =
      match Fastpath.Scan.member line "cmd" with
      | Some _ as c -> c
      | None -> Fastpath.Scan.member line "op"
    in
    match cmd with
    | Some cspan when Fastpath.Scan.span_is line cspan "\"analyze\"" -> (
      match Fastpath.Scan.member line "p4lite" with
      | Some _ -> None
      | None -> (
        match
          Option.bind (Fastpath.Scan.member line "nf") (Fastpath.Scan.string_contents line)
        with
        | None -> None
        | Some (nf_off, nf_len) -> (
          let wname =
            match Fastpath.Scan.member line "workload" with
            | None -> Some "mixed"
            | Some wspan -> (
              match Fastpath.Scan.string_contents line wspan with
              | None -> None
              | Some (w_off, w_len) -> (
                match String.sub line w_off w_len with
                | ("mixed" | "large" | "small") as w -> Some w
                | _ -> None))
          in
          match wname with
          | None -> None
          | Some wname -> (
            let id_span =
              match Fastpath.Scan.member line "id" with
              | None -> Some (0, 0) (* absent: render null *)
              | Some span ->
                if Fastpath.Scan.canonical_scalar line span then Some span else None
            in
            match id_span with
            | None -> None
            | Some (id_off, id_len) -> (
              let trace_span =
                match Fastpath.Scan.member line "trace_id" with
                | None -> Some `Fresh
                | Some span -> (
                  match Fastpath.Scan.string_contents line span with
                  | Some (o, l) -> Some (`Span (o, l))
                  | None -> None)
              in
              match trace_span with
              | None -> None
              | Some tr -> (
                let key = String.sub line nf_off nf_len ^ "|" ^ wname in
                match Fastpath.Shards.probe t.flows key with
                | None -> None
                | Some entry ->
                  t.served_count <- t.served_count + 1;
                  Obs.Metrics.inc m_requests;
                  Obs.Metrics.inc m_cache_hits;
                  let b = t.fast_buf in
                  Buffer.clear b;
                  (* The flight recorder's shard/trace come from what the
                     scanner already holds; when recording is off neither
                     costs anything beyond one atomic-backed check. *)
                  let fl = Obs.Flight.enabled t.flight in
                  let ftrace =
                    match tr with
                    | `Span (t_off, t_len) ->
                      Fastpath.Entry.render_into b entry ~id_src:line ~id_off ~id_len
                        ~trace_src:line ~trace_off:t_off ~trace_len:t_len ~cached:true
                        ~path:"fast";
                      if fl then String.sub line t_off t_len else ""
                    | `Fresh ->
                      let trace = fresh_trace () in
                      Fastpath.Entry.render_into b entry ~id_src:line ~id_off ~id_len
                        ~trace_src:trace ~trace_off:0 ~trace_len:(String.length trace)
                        ~cached:true ~path:"fast";
                      trace
                  in
                  (* Quality telemetry costs one float compare when
                     disabled, keeping the rate-0 fast path inside its
                     bench envelope. *)
                  if Quality.enabled t.quality then begin
                    Quality.record_fast_latency t.quality
                      ~shard:(Fastpath.Shards.shard_of_key t.flows key)
                      ~nf:(Fastpath.Entry.nf entry)
                      (Obs.Clock.now_s () -. now);
                    let id =
                      if id_len = 0 then "null" else String.sub line id_off id_len
                    in
                    maybe_shadow t ~id ~key entry
                  end;
                  Some
                    (Fast
                       { reply = Buffer.contents b;
                         shard =
                           (if fl then Fastpath.Shards.shard_of_key t.flows key else -1);
                         trace = ftrace })))))))
    | Some _ | None -> None

(* -- hot reload --

   [{"cmd":"reload","bundle":DIR}] swaps the serving models for the
   bundle in DIR without dropping a request: the load (salvaging torn
   optional components), the version computation and the swap all run in
   the serial planning path, so any request line — in this batch or any
   other — is answered entirely by one version.  A failed load, or a
   version differing from the caller's optional ["expect"] token (the
   negotiation handshake: the caller peeked the bundle's manifest first),
   changes nothing: the old models keep serving and the reply says so.
   The flow cache restarts empty on success — its entries are renders of
   the previous version. *)

let m_reloads =
  Obs.Metrics.counter ~help:"Successful hot reloads" "clara_serve_reloads_total"

let m_reload_failures =
  Obs.Metrics.counter ~help:"Rejected hot reloads (old models kept serving)"
    "clara_serve_reload_failures_total"

let reload_reply t ~trace id req =
  match Jsonl.str_member "bundle" req with
  | None -> err_reply ~trace id "reload wants \"bundle\" (a model-bundle directory)"
  | Some dir -> (
    match Persist.Bundle.load_salvage ~dir with
    | Error e ->
      Obs.Metrics.inc m_reload_failures;
      Obs.Log.warn
        ~fields:
          [ ("bundle", Obs.Log.Str dir);
            ("error", Obs.Log.Str (Persist.Wire.error_to_string e));
            ("version", Obs.Log.Str t.version) ]
        "serve.reload_failed";
      err_reply ~trace id
        (Printf.sprintf "reload failed, still serving version %s: %s" t.version
           (Persist.Wire.error_to_string e))
    | Ok (b, dropped) -> (
      let next = Persist.Bundle.version b.Persist.Bundle.manifest in
      match Jsonl.str_member "expect" req with
      | Some want when want <> next ->
        Obs.Metrics.inc m_reload_failures;
        err_reply ~trace id
          (Printf.sprintf
             "reload version mismatch: bundle %s is version %s, caller expected %s (still \
              serving %s)"
             dir next want t.version)
      | Some _ | None ->
        let shards = Fastpath.Shards.shard_count t.flows in
        let capacity = Fastpath.Shards.capacity t.flows in
        let models = b.Persist.Bundle.models in
        t.models <- models;
        t.lanes <-
          Array.init shards (fun _ ->
              { l_lock = Mutex.create (); l_compiled = Clara.Pipeline.compile models });
        t.flows <- Fastpath.Shards.create ~shards ~capacity ();
        let previous = t.version in
        t.version <- next;
        Obs.Metrics.inc m_reloads;
        Obs.Log.info
          ~fields:
            [ ("bundle", Obs.Log.Str dir);
              ("version", Obs.Log.Str next);
              ("previous", Obs.Log.Str previous);
              ("dropped_components", Obs.Log.Int (List.length dropped)) ]
          "serve.reloaded";
        ok_reply ~trace id
          [ ("reloaded", Jsonl.Bool true);
            ("version", Jsonl.Str next);
            ("previous", Jsonl.Str previous);
            ("dropped", Jsonl.Num (float_of_int (List.length dropped))) ]))

let plan_line_slow t ~now line =
  t.served_count <- t.served_count + 1;
  Obs.Metrics.inc m_requests;
  match Jsonl.of_string line with
  | Error msg ->
    (* Even an unparseable line gets its id (and trace id) echoed back when
       one can be salvaged, so pipelined clients keep request/reply
       correlation. *)
    let id = Option.value (Jsonl.salvage_member "id" line) ~default:Jsonl.Null in
    let trace =
      match Jsonl.salvage_member "trace_id" line with
      | Some (Jsonl.Str s) -> s
      | Some _ | None -> fresh_trace ()
    in
    Ready (err_reply ~trace id ("malformed JSON: " ^ msg))
  | Ok req -> (
    let id = Option.value (Jsonl.member "id" req) ~default:Jsonl.Null in
    let trace =
      match Jsonl.str_member "trace_id" req with Some s -> s | None -> fresh_trace ()
    in
    Obs.Span.with_trace trace @@ fun () ->
    (* "op" is accepted as an alias for "cmd". *)
    let cmd =
      match Jsonl.str_member "cmd" req with
      | Some _ as c -> c
      | None -> Jsonl.str_member "op" req
    in
    match cmd with
    | Some "ping" -> Ready (ok_reply ~trace id [ ("pong", Jsonl.Bool true) ])
    | Some "list" ->
      Ready
        (ok_reply ~trace id
           [ ("nfs", Jsonl.Arr (List.map (fun s -> Jsonl.Str s) (corpus_names ()))) ])
    | Some "stats" ->
      Ready
        (ok_reply ~trace id
           [ ("served", Jsonl.Num (float_of_int t.served_count));
             ("cache_hits", Jsonl.Num (float_of_int (Fastpath.Shards.hits t.flows)));
             ("cache_misses", Jsonl.Num (float_of_int (Fastpath.Shards.misses t.flows)));
             ("cache_length", Jsonl.Num (float_of_int (Fastpath.Shards.length t.flows)));
             ("cache_capacity", Jsonl.Num (float_of_int (Fastpath.Shards.capacity t.flows)));
             ("cache_shards", Jsonl.Num (float_of_int (Fastpath.Shards.shard_count t.flows)));
             ("cache_installs", Jsonl.Num (float_of_int (Fastpath.Shards.installs t.flows)));
             ("cache_evictions", Jsonl.Num (float_of_int (Fastpath.Shards.evictions t.flows))) ])
    | Some "metrics" ->
      (* Snapshot under the registry locks, render outside them: a slow
         reader never holds the instruments hostage. *)
      Obs.Runtime.sample ();
      let snap = Obs.Metrics.snapshot () in
      Ready (ok_reply ~trace id [ ("metrics", Jsonl.Str (Obs.Metrics.render_snapshot snap)) ])
    | Some "health" ->
      (* One line of liveness for a fronting router: enough to decide
         membership (draining), attribute replies (version) and manage
         the process (pid) without scraping /metrics. *)
      Ready
        (ok_reply ~trace id
           [ ("version", Jsonl.Str t.version);
             ("draining", Jsonl.Bool t.drain_requested);
             ("pid", Jsonl.Num (float_of_int (Unix.getpid ())));
             ("served", Jsonl.Num (float_of_int t.served_count));
             ("shed", Jsonl.Num (float_of_int t.shed_count)) ])
    | Some "reload" -> Ready (reload_reply t ~trace id req)
    | Some "trace" -> Ready (trace_reply ~trace id req)
    | Some "quality" ->
      (* Drain first so everything offered by earlier lines is visible
         in the same deterministic order it was enqueued. *)
      Ready (ok_reply ~trace id [ ("quality", Jsonl.Str (quality_json t)) ])
    | Some "flight" ->
      (* On-demand snapshot; an optional "dump" member also writes the
         rings as a JSONL dump to that path on the server side. *)
      let dumped =
        match Jsonl.str_member "dump" req with
        | None -> []
        | Some path -> (
          match Obs.Flight.dump_to_file t.flight ~trigger:"manual" path with
          | () -> [ ("dumped", Jsonl.Str path) ]
          | exception Sys_error msg -> [ ("dump_error", Jsonl.Str msg) ])
      in
      Ready
        (ok_reply ~trace id
           (("flight", Jsonl.Str (Obs.Flight.to_json_string t.flight)) :: dumped))
    | Some "profile" ->
      Ready
        (ok_reply ~trace id
           [ ("profile", Jsonl.Str (Obs.Prof.to_json_string ()));
             ("folded", Jsonl.Str (Obs.Prof.folded ())) ])
    | Some "shutdown" ->
      t.stop_requested <- true;
      Ready (ok_reply ~trace id [ ("stopping", Jsonl.Bool true) ])
    | Some "analyze" -> plan_analyze t ~now ~trace id req
    | Some other -> Ready (err_reply ~trace id (Printf.sprintf "unknown cmd %S" other))
    | None -> Ready (err_reply ~trace id "missing \"cmd\""))

let plan_line t ~now line =
  match fast_track t ~now line with
  | Some plan -> plan
  | None -> plan_line_slow t ~now line

(* What one deduplicated analysis job produced.  A report carries the
   raw predictions alongside the rendered text so the flow entry (and
   shadow evaluation through it) sees them without re-parsing. *)
type job_outcome =
  | Report of { text : string; pc : float; pm : float }
  | Failed of string
  | Timed_out

(* Load shedding: a line past the [max_pending] admission bound is
   answered immediately with an explicit retryable [overloaded] error
   (id and trace id still salvaged from the raw text) instead of queuing
   unbounded work behind the pool. *)
let shed_reply t line =
  t.served_count <- t.served_count + 1;
  t.shed_count <- t.shed_count + 1;
  Obs.Metrics.inc m_requests;
  let id = Option.value (Jsonl.salvage_member "id" line) ~default:Jsonl.Null in
  let trace =
    match Jsonl.salvage_member "trace_id" line with
    | Some (Jsonl.Str s) -> s
    | Some _ | None -> fresh_trace ()
  in
  err_reply ~overloaded:true ~trace id
    (Printf.sprintf "overloaded: server admits %d request lines per batch" t.max_pending)

let reply_ok reply =
  let pat = "\"ok\":" in
  let n = String.length reply and pn = String.length pat in
  let rec find i =
    if i + pn > n then false
    else if String.sub reply i pn = pat then i + pn < n && reply.[i + pn] = 't'
    else find (i + 1)
  in
  find 0

let split_at n l =
  let rec go n acc = function
    | rest when n = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (n - 1) (x :: acc) rest
  in
  go n [] l

(* -- flight recording --

   Every reply line leaves one postmortem record behind (when the rings
   are enabled).  Fast-path hits carry their shard/trace out of the
   scanner, so only the cold routes pay the substring scans below.  The
   outcome class is read off the rendered bytes — the same bytes the
   client got — so the record can never disagree with the reply. *)

let find_sub pat s =
  let n = String.length s and m = String.length pat in
  let rec go i = if i + m > n then None else if String.sub s i m = pat then Some i else go (i + 1) in
  go 0

let contains_sub pat s = find_sub pat s <> None

(* "deadline" and "overloaded" are the machine-actionable flags the reply
   itself carries; "fault" marks errors produced by an injected fault (an
   environmental outcome replay cannot and should not reproduce). *)
let classify_reply reply =
  if reply_ok reply then "ok"
  else if contains_sub "\"deadline_exceeded\":true" reply then "deadline"
  else if contains_sub "\"overloaded\":true" reply then "overloaded"
  else if contains_sub "injected fault" reply || contains_sub "Fault.Injected" reply then "fault"
  else "error"

(* The trace id as rendered in the reply (every reply carries one; reports
   embed quotes only in escaped form, so the first match is the field). *)
let trace_of_reply reply =
  let pat = "\"trace_id\":\"" in
  match find_sub pat reply with
  | None -> ""
  | Some i ->
    let vstart = i + String.length pat in
    let n = String.length reply in
    let rec fin j =
      if j >= n then n else if reply.[j] = '"' && reply.[j - 1] <> '\\' then j else fin (j + 1)
    in
    let vend = fin vstart in
    String.sub reply vstart (vend - vstart)

let record_flight t ~now0 ~lines ~plans ~replies =
  if Obs.Flight.enabled t.flight then begin
    let latency_us = (Obs.Clock.now_s () -. now0) *. 1e6 in
    let rec go lines plans replies =
      match (lines, plans, replies) with
      | line :: ls, plan :: ps, reply :: rs ->
        (match plan with
        | Fast { shard; trace; _ } ->
          Obs.Flight.record t.flight ~shard ~trace ~path:"fast" ~latency_us ~outcome:"ok"
            ~request:line ~reply
        | Hit { key; trace; _ } ->
          Obs.Flight.record t.flight ~shard:(Fastpath.Shards.shard_of_key t.flows key)
            ~trace ~path:"slow" ~latency_us ~outcome:"ok" ~request:line ~reply
        | Miss { key; trace; _ } ->
          let outcome = classify_reply reply in
          if outcome = "deadline" then ignore (Obs.Flight.trigger t.flight "deadline")
          else if outcome = "fault" then ignore (Obs.Flight.trigger t.flight "fault");
          Obs.Flight.record t.flight ~shard:(Fastpath.Shards.shard_of_key t.flows key)
            ~trace ~path:"slow" ~latency_us ~outcome ~request:line ~reply
        | Ready _ ->
          let outcome = classify_reply reply in
          if outcome = "deadline" then ignore (Obs.Flight.trigger t.flight "deadline")
          else if outcome = "fault" then ignore (Obs.Flight.trigger t.flight "fault");
          Obs.Flight.record t.flight ~shard:(-1) ~trace:(trace_of_reply reply) ~path:"slow"
            ~latency_us ~outcome ~request:line ~reply);
        go ls ps rs
      | _ -> ()
    in
    go lines plans replies
  end

let process_batch t lines =
  Obs.Span.with_ ~cat:"serve" "serve.batch" @@ fun () ->
  let now0 = Obs.Clock.now_s () in
  let admitted, overflow = split_at t.max_pending lines in
  let shed_replies = List.map (shed_reply t) overflow in
  let n_lines = List.length admitted in
  Obs.Metrics.add_gauge m_in_flight (float_of_int n_lines);
  let batch_traces = ref [] in
  let admitted_replies =
    Fun.protect ~finally:(fun () ->
        (* Replies for a batch are produced together, so each line's wall
           latency is the batch's elapsed time. *)
        let dt = Obs.Clock.now_s () -. now0 in
        for _ = 1 to n_lines do
          Obs.Metrics.observe m_latency dt;
          if Quality.enabled t.quality then Quality.record_request_latency t.quality dt
        done;
        Obs.Metrics.add_gauge m_in_flight (-.float_of_int n_lines);
        if dt > t.slow_s then begin
          List.iter
            (fun trace ->
              Obs.Log.warn
                ~fields:
                  [ ("trace_id", Obs.Log.Str trace);
                    ("latency_s", Obs.Log.Num dt);
                    ("threshold_s", Obs.Log.Num t.slow_s);
                    ("batch_lines", Obs.Log.Int n_lines) ]
                "serve.slow_request")
            !batch_traces;
          ignore (Obs.Flight.trigger t.flight "slow_request")
        end)
    @@ fun () ->
    let plans = List.map (plan_line t ~now:now0) admitted in
    batch_traces := List.filter_map plan_trace plans;
    (* Deduplicate this batch's cache misses, keeping first-seen order (and
       the first-seen request's trace id), then analyze the distinct jobs
       concurrently.  The trace id is re-installed inside each task closure:
       it lives in domain-local storage, so spans recorded on a worker
       domain would otherwise lose their request attribution.  Deadlines
       are enforced between the pipeline stages: a miss whose budget ran
       out during planning never becomes a job, a job checks its budget
       again before computing, and the reply assembly below re-checks so
       a report that arrived too late still answers [deadline_exceeded]
       (the report is cached for the next asker all the same). *)
    let jobs =
      List.fold_left
        (fun acc plan ->
          match plan with
          | Miss m when (not (expired m.deadline)) && not (List.mem_assoc m.key acc) ->
            (m.key, (m.elt, m.spec, m.trace, m.deadline, m.nf_label, m.wname)) :: acc
          | _ -> acc)
        [] plans
      |> List.rev
    in
    let results =
      (* An armed [pool.task] fault aborts the whole fan-out; degrade it
         to per-job failures so every requester still gets a typed reply.
         Each job runs on the lane of its key's shard: the compiled
         pipeline's inference scratch is not shareable, and the lane
         mutex serializes only same-shard jobs. *)
      match
        Util.Pool.parallel_map_list
          (fun (key, (elt, spec, trace, deadline, _, _)) ->
            Obs.Span.with_trace trace @@ fun () ->
            let outcome =
              if expired deadline then Timed_out
              else
                try
                  let lane = t.lanes.(Fastpath.Shards.shard_of_key t.flows key) in
                  Mutex.lock lane.l_lock;
                  Fun.protect
                    ~finally:(fun () -> Mutex.unlock lane.l_lock)
                    (fun () ->
                      let ins = Clara.Pipeline.analyze_compiled lane.l_compiled elt spec in
                      Report
                        { text = Clara.Insights.render ins;
                          pc = ins.Clara.Insights.predicted_compute;
                          pm = ins.Clara.Insights.predicted_memory })
                with e -> Failed (Printexc.to_string e)
            in
            (key, outcome))
          jobs
      with
      | results -> results
      | exception e ->
        let msg = Printexc.to_string e in
        List.map (fun (key, _) -> (key, Failed msg)) jobs
    in
    (* Fresh reports become flow entries: reply bytes pre-serialized once,
       installed into the key's shard for every later fast-path probe.
       The entry also answers this batch's own requesters (even with
       caching disabled, where [install] drops it). *)
    let entries =
      List.filter_map
        (function
          | key, Report { text; pc; pm } ->
            let _, _, _, _, nf_label, wname = List.assoc key jobs in
            let entry =
              Fastpath.Entry.make ~pred_compute:pc ~pred_memory:pm ~nf:nf_label
                ~workload:wname ~report:text ()
            in
            Fastpath.Shards.install t.flows key entry;
            Some (key, entry)
          | _, (Failed _ | Timed_out) -> None)
        results
    in
    (* Reply assembly is serial and in plan order, so shadow offers made
       here land in the pending queue deterministically. *)
    let assembled =
      List.map
        (function
          | Fast { reply; _ } -> reply
          | Ready reply -> reply
        | Hit { id; trace; key; entry } ->
          if Quality.enabled t.quality then maybe_shadow t ~id:(id_token id) ~key entry;
          analyze_reply ~trace id ~cached:true ~path:"slow" entry
          | Miss { id; trace; key; deadline; _ } -> (
            match List.assoc_opt key results with
            | Some (Report _) ->
              if expired deadline then deadline_reply ~trace id
              else begin
                let entry = List.assoc key entries in
                if Quality.enabled t.quality then maybe_shadow t ~id:(id_token id) ~key entry;
                analyze_reply ~trace id ~cached:false ~path:"slow" entry
              end
            | Some (Failed msg) -> err_reply ~trace id ("analysis failed: " ^ msg)
            | Some Timed_out | None -> deadline_reply ~trace id))
        plans
    in
    record_flight t ~now0 ~lines:admitted ~plans ~replies:assembled;
    assembled
  in
  (* Shed lines leave postmortem records too: an overload burst is exactly
     the moment the black box exists for. *)
  if Obs.Flight.enabled t.flight && overflow <> [] then begin
    let latency_us = (Obs.Clock.now_s () -. now0) *. 1e6 in
    List.iter2
      (fun line reply ->
        Obs.Flight.record t.flight ~shard:(-1) ~trace:(trace_of_reply reply) ~path:"slow"
          ~latency_us ~outcome:"overloaded" ~request:line ~reply)
      overflow shed_replies
  end;
  let replies = admitted_replies @ shed_replies in
  (* SLO accounting: every reply line counts availability by its own
     ["ok"] flag.  The first raw "ok": in the rendered bytes is the
     flag itself: the only content before it is the id, whose string
     form is escaped, so a quote-containing id cannot fake a match. *)
  if Quality.enabled t.quality then
    List.iter (fun reply -> Quality.record_reply t.quality ~ok:(reply_ok reply)) replies;
  replies

let handle_request t line =
  match process_batch t [ line ] with
  | [ reply ] ->
    if Quality.enabled t.quality then drain_quality t;
    reply
  | _ -> assert false

(* -- I/O -- *)

(* A peer that vanished mid-conversation is the client's lifecycle, not a
   server fault: count it, log it at info, move on.  Anything else on a
   client socket still warns. *)
let is_disconnect = function Unix.EPIPE | Unix.ECONNRESET -> true | _ -> false

let log_client_disconnect ~fn err =
  Obs.Metrics.inc m_disconnects;
  Obs.Log.info
    ~fields:[ ("error", Obs.Log.Str (Unix.error_message err)); ("fn", Obs.Log.Str fn) ]
    "serve.client_disconnected"

let really_write fd s =
  if Obs.Fault.fire "serve.write" then
    raise (Unix.Unix_error (Unix.EPIPE, "write", "injected fault: serve.write"));
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

(* Split off the complete lines accumulated in [buf], keeping any trailing
   partial line buffered. *)
let take_lines buf =
  let data = Buffer.contents buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_substring buf data (last + 1) (String.length data - last - 1);
    String.split_on_char '\n' (String.sub data 0 last)
    |> List.filter (fun l -> String.trim l <> "")

let reply_all t fd lines =
  if lines <> [] then
    List.iter (fun reply -> really_write fd (reply ^ "\n")) (process_batch t lines)

let serve_until_eof t fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n = 0 then begin
      (* peer half-closed: flush any unterminated final line *)
      let rest = String.trim (Buffer.contents buf) in
      if rest <> "" then reply_all t fd [ rest ]
    end
    else begin
      Buffer.add_subbytes buf chunk 0 n;
      reply_all t fd (take_lines buf);
      loop ()
    end
  in
  try loop ()
  with Unix.Unix_error (err, fn, _) when is_disconnect err -> log_client_disconnect ~fn err

let run t ~socket_path =
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* SIGTERM requests a graceful drain: stop accepting, answer what is
     already buffered, log the final counters, exit [run].  The previous
     handler is restored on the way out so tests can run several servers
     in one process. *)
  let old_sigterm =
    if Sys.os_type = "Unix" then
      try Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> request_drain t)))
      with Invalid_argument _ | Sys_error _ -> None
    else None
  in
  (* SIGQUIT is the classic black-box trigger: dump the flight rings on
     the next loop turn (EINTR wakes the select) and keep serving. *)
  let old_sigquit =
    if Sys.os_type = "Unix" then
      try
        Some
          (Sys.signal Sys.sigquit (Sys.Signal_handle (fun _ -> t.flight_dump_requested <- true)))
      with Invalid_argument _ | Sys_error _ -> None
    else None
  in
  Fun.protect ~finally:(fun () ->
      (match old_sigterm with
      | Some h -> ( try Sys.set_signal Sys.sigterm h with Invalid_argument _ | Sys_error _ -> ())
      | None -> ());
      match old_sigquit with
      | Some h -> ( try Sys.set_signal Sys.sigquit h with Invalid_argument _ | Sys_error _ -> ())
      | None -> ())
  @@ fun () ->
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 16;
  Obs.Log.info
    ~fields:
      [ ("socket", Obs.Log.Str socket_path);
        ("jobs", Obs.Log.Int (Util.Pool.size ()));
        ("cache_capacity", Obs.Log.Int (Fastpath.Shards.capacity t.flows));
        ("cache_shards", Obs.Log.Int (Fastpath.Shards.shard_count t.flows));
        ("slow_threshold_s", Obs.Log.Num t.slow_s);
        ( "deadline_ms",
          match t.deadline_s with
          | Some s -> Obs.Log.Num (s *. 1000.0)
          | None -> Obs.Log.Str "none" );
        ("max_pending", Obs.Log.Int t.max_pending);
        ("max_clients", Obs.Log.Int t.max_clients);
        ("shadow_rate", Obs.Log.Num (Quality.rate t.quality));
        ("tracing", Obs.Log.Bool (Obs.Span.enabled ())) ]
    "serve.start";
  let log_unix_error ~ctx err fn =
    Obs.Log.warn
      ~fields:[ ("error", Obs.Log.Str (Unix.error_message err)); ("fn", Obs.Log.Str fn) ]
      ctx
  in
  (* An error or disconnect while a serve-side fault point is armed is an
     armed-fault hit: ask the black box for a (rate-limited) dump. *)
  let maybe_fault_trigger () =
    if
      Obs.Fault.armed "serve.read" || Obs.Fault.armed "serve.write"
      || Obs.Fault.armed "serve.accept"
    then ignore (Obs.Flight.trigger t.flight "fault")
  in
  let callbacks =
    { Fastpath.Evloop.on_reject =
        (fun fd ->
          (* Connection-level shedding: tell the client it is the load,
             not the request, then hang up. *)
          t.shed_count <- t.shed_count + 1;
          let reply =
            err_reply ~overloaded:true ~trace:(fresh_trace ()) Jsonl.Null
              (Printf.sprintf "overloaded: server at its %d-connection limit" t.max_clients)
          in
          (try really_write fd (reply ^ "\n") with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ()));
      on_disconnect =
        (fun ~fn err ->
          maybe_fault_trigger ();
          log_client_disconnect ~fn err);
      on_error =
        (fun ~ctx ~fn err ->
          maybe_fault_trigger ();
          log_unix_error ~ctx err fn)
    }
  in
  let loop = Fastpath.Evloop.create ~listener ~max_clients:t.max_clients callbacks in
  (* Answer every complete line of a round as one batch, so independent
     clients share the pool fan-out (and the admission bound applies
     across them); replies are distributed back per connection and
     coalesced into one flush. *)
  let service_round batches =
    let all_lines = List.concat_map snd batches in
    if all_lines <> [] then begin
      let replies = ref (process_batch t all_lines) in
      List.iter
        (fun (conn, lines) ->
          List.iter
            (fun _ ->
              match !replies with
              | reply :: rest ->
                replies := rest;
                Fastpath.Evloop.send conn reply
              | [] -> ())
            lines)
        batches;
      Fastpath.Evloop.flush loop;
      (* Shadow evaluation runs strictly after the replies left: ground
         truth is cheap but not free, and the client should not wait
         on it. *)
      if Quality.enabled t.quality then drain_quality t
    end
  in
  (* An exception escaping a service round is a server bug: dump the
     black box (its last records are the requests in flight) before the
     crash propagates. *)
  let service batches =
    try service_round batches
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      (match Obs.Flight.dump_now t.flight ~trigger:"exception" with
      | Some path ->
        Obs.Log.warn
          ~fields:
            [ ("error", Obs.Log.Str (Printexc.to_string e)); ("dump", Obs.Log.Str path) ]
          "serve.exception"
      | None ->
        Obs.Log.warn
          ~fields:[ ("error", Obs.Log.Str (Printexc.to_string e)) ]
          "serve.exception");
      Printexc.raise_with_backtrace e bt
  in
  let flush_flight_dump () =
    if t.flight_dump_requested then begin
      t.flight_dump_requested <- false;
      match Obs.Flight.dump_now t.flight ~trigger:"sigquit" with
      | Some path -> Obs.Log.info ~fields:[ ("dump", Obs.Log.Str path) ] "serve.flight_dump"
      | None -> ()
    end
  in
  while not (t.stop_requested || t.drain_requested) do
    flush_flight_dump ();
    match Fastpath.Evloop.poll loop ~timeout_s:1.0 with
    (* EINTR: a signal (e.g. SIGTERM / SIGQUIT) interrupted the wait;
       re-check the flags it may have set. *)
    | `Eintr -> ()
    | `Round batches -> service batches
  done;
  flush_flight_dump ();
  (* Graceful drain: the listener goes first, so new connections fail fast
     while buffered requests still get real answers.  In-flight clients
     get a short grace window; an idle 50ms round means nothing more is
     coming and the drain completes early. *)
  if t.drain_requested && not t.stop_requested then begin
    Obs.Log.info
      ~fields:[ ("clients", Obs.Log.Int (Fastpath.Evloop.clients loop)) ]
      "serve.drain";
    Fastpath.Evloop.stop_accepting loop;
    (try Unix.close listener with Unix.Unix_error _ -> ());
    (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
    let drain_until = Obs.Clock.now_s () +. 0.5 in
    let quiescent = ref false in
    while
      (not !quiescent)
      && (not t.stop_requested)
      && Fastpath.Evloop.clients loop > 0
      && Obs.Clock.now_s () < drain_until
    do
      match Fastpath.Evloop.poll loop ~timeout_s:0.05 with
      | `Eintr -> ()
      | `Round [] ->
        if not (Fastpath.Evloop.has_pending loop) then quiescent := true
      | `Round batches -> service batches
    done
  end;
  Fastpath.Evloop.close_all loop;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  Obs.Log.info
    ~fields:
      [ ("served", Obs.Log.Int t.served_count);
        ("shed", Obs.Log.Int t.shed_count);
        ("drained", Obs.Log.Bool t.drain_requested);
        ("cache_hits", Obs.Log.Int (Fastpath.Shards.hits t.flows));
        ("cache_misses", Obs.Log.Int (Fastpath.Shards.misses t.flows)) ]
    "serve.stop"
