(** Clara insight service (see server.mli). *)

type t = {
  models : Clara.Pipeline.models;
  cache : string Lru.t;
  slow_s : float;
  mutable served_count : int;
  mutable stop_requested : bool;
}

(* Default slow-request threshold: CLARA_SLOW_MS, else 1s. *)
let default_slow_s () =
  match Option.bind (Sys.getenv_opt "CLARA_SLOW_MS") float_of_string_opt with
  | Some ms when ms > 0.0 -> ms /. 1000.0
  | Some _ | None -> 1.0

let create ?(cache_capacity = 64) ?slow_threshold_s models =
  let slow_s = match slow_threshold_s with Some s -> s | None -> default_slow_s () in
  { models; cache = Lru.create ~capacity:cache_capacity; slow_s;
    served_count = 0; stop_requested = false }

let served t = t.served_count
let cache_hits t = Lru.hits t.cache
let cache_misses t = Lru.misses t.cache

let corpus_names () = List.map (fun e -> e.Nf_lang.Ast.name) (Nf_lang.Corpus.all ())

(* -- service metrics -- *)

let m_requests = Obs.Metrics.counter ~help:"Request lines handled" "clara_serve_requests_total"
let m_errors = Obs.Metrics.counter ~help:"Error replies sent" "clara_serve_errors_total"
let m_cache_hits = Obs.Metrics.counter ~help:"Report-cache hits" "clara_serve_cache_hits_total"

let m_cache_misses =
  Obs.Metrics.counter ~help:"Report-cache misses" "clara_serve_cache_misses_total"

let m_in_flight =
  Obs.Metrics.gauge ~help:"Request lines currently being processed" "clara_serve_in_flight"

let m_latency =
  Obs.Metrics.histogram ~help:"Per-request wall latency in seconds" "clara_serve_request_seconds"

(* -- workloads -- *)

let mixed_spec =
  { Workload.default with Workload.proto = Workload.Mixed; Workload.n_packets = 800 }

let workload_named = function
  | "mixed" -> Ok mixed_spec
  | "large" -> Ok { Workload.large_flows with Workload.n_packets = 800 }
  | "small" -> Ok { Workload.small_flows with Workload.n_packets = 800 }
  | other -> Error (Printf.sprintf "unknown workload %S (one of: mixed, large, small)" other)

(* -- inline P4lite programs -- *)

exception Bad_program of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_program m)) fmt

let all_fields =
  Nf_lang.Ast.
    [ Eth_type; Ip_src; Ip_dst; Ip_proto; Ip_ttl; Ip_len; Ip_hl; Ip_tos; Ip_id; Ip_csum;
      Tcp_sport; Tcp_dport; Tcp_seq; Tcp_ack; Tcp_off; Tcp_flags; Tcp_win; Tcp_csum;
      Udp_sport; Udp_dport; Udp_len; Udp_csum ]

let field_of_name s = List.find_opt (fun f -> Nf_lang.Ast.field_name f = s) all_fields

(* Actions are compact strings: "drop" | "noop" | "dec_ttl" | "forward:PORT"
   | "set:FIELD" | "count:NAME". *)
let action_of_string s =
  match s with
  | "drop" -> Nf_lang.P4lite.Drop_packet
  | "noop" -> Nf_lang.P4lite.No_op
  | "dec_ttl" -> Nf_lang.P4lite.Decrement_ttl
  | _ -> (
    match String.index_opt s ':' with
    | None -> bad "unknown action %S" s
    | Some i -> (
      let kind = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match kind with
      | "forward" -> (
        match int_of_string_opt arg with
        | Some port -> Nf_lang.P4lite.Forward port
        | None -> bad "forward wants a port number, got %S" arg)
      | "set" -> (
        match field_of_name arg with
        | Some f -> Nf_lang.P4lite.Set_field f
        | None -> bad "unknown header field %S" arg)
      | "count" -> Nf_lang.P4lite.Count arg
      | _ -> bad "unknown action %S" s))

let string_list_member what key j =
  match Jsonl.member key j with
  | Some (Jsonl.Arr items) ->
    List.map (function Jsonl.Str s -> s | _ -> bad "%s: %S wants strings" what key) items
  | Some _ -> bad "%s: %S must be an array" what key
  | None -> bad "%s: missing %S" what key

let table_of_json j =
  let name =
    match Jsonl.str_member "name" j with Some s -> s | None -> bad "table: missing \"name\""
  in
  let keys =
    List.map
      (fun s ->
        match field_of_name s with
        | Some f -> f
        | None -> bad "table %s: unknown key field %S" name s)
      (string_list_member ("table " ^ name) "keys" j)
  in
  let actions = List.map action_of_string (string_list_member ("table " ^ name) "actions" j) in
  let default_action =
    match Jsonl.str_member "default" j with
    | Some s -> action_of_string s
    | None -> Nf_lang.P4lite.No_op
  in
  let size =
    match Jsonl.num_member "size" j with Some f -> int_of_float f | None -> 64
  in
  if keys = [] then bad "table %s: needs at least one key" name;
  if size < 1 then bad "table %s: size must be >= 1" name;
  { Nf_lang.P4lite.t_name = name; keys; actions; default_action; size }

let program_of_json j =
  let p_name = Option.value (Jsonl.str_member "name" j) ~default:"p4lite" in
  let pipeline =
    match Jsonl.member "tables" j with
    | Some (Jsonl.Arr tables) -> List.map table_of_json tables
    | Some _ -> bad "\"tables\" must be an array"
    | None -> bad "p4lite program: missing \"tables\""
  in
  if pipeline = [] then bad "p4lite program: empty pipeline";
  { Nf_lang.P4lite.p_name; pipeline }

(* -- request trace ids --

   Every request line gets a trace id: the client's ["trace_id"] when it
   sent one, else a generated ["t-N"].  The id is echoed in the reply,
   carried (via [Obs.Span.with_trace]) into every span the request
   triggers — re-established inside pool-task closures, since DLS does
   not cross domains — and stamped on slow-request log lines, so
   [{"cmd":"trace","trace_id":...}] can pull one request's span subtree
   out of the ring buffer. *)

let trace_counter = Atomic.make 0

let fresh_trace () = Printf.sprintf "t-%d" (1 + Atomic.fetch_and_add trace_counter 1)

(* -- replies -- *)

let ok_reply ~trace id fields =
  Jsonl.to_string
    (Jsonl.Obj
       (("id", id) :: ("ok", Jsonl.Bool true) :: ("trace_id", Jsonl.Str trace) :: fields))

let err_reply ?valid ~trace id msg =
  Obs.Metrics.inc m_errors;
  let fields =
    [ ("id", id); ("ok", Jsonl.Bool false); ("trace_id", Jsonl.Str trace);
      ("error", Jsonl.Str msg) ]
  in
  let fields =
    match valid with
    | None -> fields
    | Some names -> fields @ [ ("valid", Jsonl.Arr (List.map (fun s -> Jsonl.Str s) names)) ]
  in
  Jsonl.to_string (Jsonl.Obj fields)

let analyze_reply ~trace id ~nf ~wname ~cached report =
  ok_reply ~trace id
    [ ("nf", Jsonl.Str nf);
      ("workload", Jsonl.Str wname);
      ("cached", Jsonl.Bool cached);
      ("report", Jsonl.Str report) ]

(* -- request planning -- *)

(* A parsed request line: already answerable, a cache hit, or an analysis
   to fan out. *)
type plan =
  | Ready of string
  | Hit of { id : Jsonl.t; trace : string; nf_label : string; wname : string; report : string }
  | Miss of {
      id : Jsonl.t;
      trace : string;
      key : string;
      elt : Nf_lang.Ast.element;
      spec : Workload.spec;
      nf_label : string;
      wname : string;
    }

let plan_trace = function
  | Ready _ -> None
  | Hit { trace; _ } | Miss { trace; _ } -> Some trace

let plan_analyze t ~trace id req =
  let wname = Option.value (Jsonl.str_member "workload" req) ~default:"mixed" in
  match workload_named wname with
  | Error msg -> Ready (err_reply ~trace id msg)
  | Ok spec -> (
    let target =
      match (Jsonl.str_member "nf" req, Jsonl.member "p4lite" req) with
      | Some name, _ -> (
        match Nf_lang.Corpus.find name with
        | elt -> Ok (elt, name, name ^ "|" ^ wname)
        | exception Failure _ ->
          Error
            (err_reply ~valid:(corpus_names ()) ~trace id (Printf.sprintf "unknown NF %S" name)))
      | None, Some pj -> (
        match program_of_json pj with
        | prog ->
          let elt = Nf_lang.P4lite.compile prog in
          let key =
            Printf.sprintf "p4lite:%08lx|%s"
              (Persist.Wire.crc32 (Nf_lang.Pp.to_string elt))
              wname
          in
          Ok (elt, elt.Nf_lang.Ast.name, key)
        | exception Bad_program msg -> Error (err_reply ~trace id ("bad p4lite program: " ^ msg)))
      | None, None -> Error (err_reply ~trace id "analyze wants \"nf\" or \"p4lite\"")
    in
    match target with
    | Error reply -> Ready reply
    | Ok (elt, nf_label, key) -> (
      match Lru.find t.cache key with
      | Some report ->
        Obs.Metrics.inc m_cache_hits;
        Hit { id; trace; nf_label; wname; report }
      | None ->
        Obs.Metrics.inc m_cache_misses;
        Miss { id; trace; key; elt; spec; nf_label; wname }))

(* The [trace] command: one request's span subtree, rebuilt from the ring
   buffer by trace-id filter.  Structure only — names, categories, order —
   plus wall-clock durations for eyeballing; empty when tracing is off or
   the ring has already evicted the request. *)

let rec tree_json (node : Obs.Span.tree) =
  Jsonl.Obj
    [ ("name", Jsonl.Str node.Obs.Span.span.Obs.Span.name);
      ("cat", Jsonl.Str node.Obs.Span.span.Obs.Span.cat);
      ("dur_us", Jsonl.Num node.Obs.Span.span.Obs.Span.dur_us);
      ("children", Jsonl.Arr (List.map tree_json node.Obs.Span.children)) ]

let trace_reply ~trace id req =
  match Jsonl.str_member "trace_id" req with
  | None -> err_reply ~trace id "trace wants \"trace_id\""
  | Some wanted ->
    ok_reply ~trace id
      [ ("queried", Jsonl.Str wanted);
        ("tracing", Jsonl.Bool (Obs.Span.enabled ()));
        ("spans", Jsonl.Arr (List.map tree_json (Obs.Span.forest ~trace:wanted ()))) ]

let plan_line t line =
  t.served_count <- t.served_count + 1;
  Obs.Metrics.inc m_requests;
  match Jsonl.of_string line with
  | Error msg ->
    (* Even an unparseable line gets its id (and trace id) echoed back when
       one can be salvaged, so pipelined clients keep request/reply
       correlation. *)
    let id = Option.value (Jsonl.salvage_member "id" line) ~default:Jsonl.Null in
    let trace =
      match Jsonl.salvage_member "trace_id" line with
      | Some (Jsonl.Str s) -> s
      | Some _ | None -> fresh_trace ()
    in
    Ready (err_reply ~trace id ("malformed JSON: " ^ msg))
  | Ok req -> (
    let id = Option.value (Jsonl.member "id" req) ~default:Jsonl.Null in
    let trace =
      match Jsonl.str_member "trace_id" req with Some s -> s | None -> fresh_trace ()
    in
    Obs.Span.with_trace trace @@ fun () ->
    (* "op" is accepted as an alias for "cmd". *)
    let cmd =
      match Jsonl.str_member "cmd" req with
      | Some _ as c -> c
      | None -> Jsonl.str_member "op" req
    in
    match cmd with
    | Some "ping" -> Ready (ok_reply ~trace id [ ("pong", Jsonl.Bool true) ])
    | Some "list" ->
      Ready
        (ok_reply ~trace id
           [ ("nfs", Jsonl.Arr (List.map (fun s -> Jsonl.Str s) (corpus_names ()))) ])
    | Some "stats" ->
      Ready
        (ok_reply ~trace id
           [ ("served", Jsonl.Num (float_of_int t.served_count));
             ("cache_hits", Jsonl.Num (float_of_int (Lru.hits t.cache)));
             ("cache_misses", Jsonl.Num (float_of_int (Lru.misses t.cache)));
             ("cache_length", Jsonl.Num (float_of_int (Lru.length t.cache)));
             ("cache_capacity", Jsonl.Num (float_of_int (Lru.capacity t.cache))) ])
    | Some "metrics" ->
      Obs.Runtime.sample ();
      Ready (ok_reply ~trace id [ ("metrics", Jsonl.Str (Obs.Metrics.exposition ())) ])
    | Some "trace" -> Ready (trace_reply ~trace id req)
    | Some "shutdown" ->
      t.stop_requested <- true;
      Ready (ok_reply ~trace id [ ("stopping", Jsonl.Bool true) ])
    | Some "analyze" -> plan_analyze t ~trace id req
    | Some other -> Ready (err_reply ~trace id (Printf.sprintf "unknown cmd %S" other))
    | None -> Ready (err_reply ~trace id "missing \"cmd\""))

let process_batch t lines =
  Obs.Span.with_ ~cat:"serve" "serve.batch" @@ fun () ->
  let n_lines = List.length lines in
  Obs.Metrics.add_gauge m_in_flight (float_of_int n_lines);
  let t0 = Obs.Clock.now_s () in
  let batch_traces = ref [] in
  Fun.protect ~finally:(fun () ->
      (* Replies for a batch are produced together, so each line's wall
         latency is the batch's elapsed time. *)
      let dt = Obs.Clock.now_s () -. t0 in
      for _ = 1 to n_lines do
        Obs.Metrics.observe m_latency dt
      done;
      Obs.Metrics.add_gauge m_in_flight (-.float_of_int n_lines);
      if dt > t.slow_s then
        List.iter
          (fun trace ->
            Obs.Log.warn
              ~fields:
                [ ("trace_id", Obs.Log.Str trace);
                  ("latency_s", Obs.Log.Num dt);
                  ("threshold_s", Obs.Log.Num t.slow_s);
                  ("batch_lines", Obs.Log.Int n_lines) ]
              "serve.slow_request")
          !batch_traces)
  @@ fun () ->
  let plans = List.map (plan_line t) lines in
  batch_traces := List.filter_map plan_trace plans;
  (* Deduplicate this batch's cache misses, keeping first-seen order (and
     the first-seen request's trace id), then analyze the distinct jobs
     concurrently.  The trace id is re-installed inside each task closure:
     it lives in domain-local storage, so spans recorded on a worker
     domain would otherwise lose their request attribution. *)
  let jobs =
    List.fold_left
      (fun acc plan ->
        match plan with
        | Miss m when not (List.mem_assoc m.key acc) -> (m.key, (m.elt, m.spec, m.trace)) :: acc
        | _ -> acc)
      [] plans
    |> List.rev
  in
  let results =
    Util.Pool.parallel_map_list
      (fun (key, (elt, spec, trace)) ->
        Obs.Span.with_trace trace @@ fun () ->
        let outcome =
          try Ok (Clara.Pipeline.report t.models elt spec)
          with e -> Error (Printexc.to_string e)
        in
        (key, outcome))
      jobs
  in
  List.iter (function key, Ok report -> Lru.add t.cache key report | _, Error _ -> ()) results;
  List.map
    (function
      | Ready reply -> reply
      | Hit { id; trace; nf_label; wname; report } ->
        analyze_reply ~trace id ~nf:nf_label ~wname ~cached:true report
      | Miss { id; trace; key; nf_label; wname; _ } -> (
        match List.assoc key results with
        | Ok report -> analyze_reply ~trace id ~nf:nf_label ~wname ~cached:false report
        | Error msg -> err_reply ~trace id ("analysis failed: " ^ msg)))
    plans

let handle_request t line =
  match process_batch t [ line ] with
  | [ reply ] -> reply
  | _ -> assert false

(* -- I/O -- *)

let really_write fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

(* Split off the complete lines accumulated in [buf], keeping any trailing
   partial line buffered. *)
let take_lines buf =
  let data = Buffer.contents buf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some last ->
    Buffer.clear buf;
    Buffer.add_substring buf data (last + 1) (String.length data - last - 1);
    String.split_on_char '\n' (String.sub data 0 last)
    |> List.filter (fun l -> String.trim l <> "")

let reply_all t fd lines =
  if lines <> [] then
    List.iter (fun reply -> really_write fd (reply ^ "\n")) (process_batch t lines)

let serve_until_eof t fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec loop () =
    let n = Unix.read fd chunk 0 (Bytes.length chunk) in
    if n = 0 then begin
      (* peer half-closed: flush any unterminated final line *)
      let rest = String.trim (Buffer.contents buf) in
      if rest <> "" then reply_all t fd [ rest ]
    end
    else begin
      Buffer.add_subbytes buf chunk 0 n;
      reply_all t fd (take_lines buf);
      loop ()
    end
  in
  loop ()

let run t ~socket_path =
  (if Sys.os_type = "Unix" then
     try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listener (Unix.ADDR_UNIX socket_path);
  Unix.listen listener 16;
  Obs.Log.info
    ~fields:
      [ ("socket", Obs.Log.Str socket_path);
        ("jobs", Obs.Log.Int (Util.Pool.size ()));
        ("cache_capacity", Obs.Log.Int (Lru.capacity t.cache));
        ("slow_threshold_s", Obs.Log.Num t.slow_s);
        ("tracing", Obs.Log.Bool (Obs.Span.enabled ())) ]
    "serve.start";
  let clients : (Unix.file_descr, Buffer.t) Hashtbl.t = Hashtbl.create 8 in
  let log_unix_error ~ctx err fn =
    Obs.Log.warn
      ~fields:[ ("error", Obs.Log.Str (Unix.error_message err)); ("fn", Obs.Log.Str fn) ]
      ctx
  in
  let drop fd =
    Hashtbl.remove clients fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let chunk = Bytes.create 4096 in
  while not t.stop_requested do
    let fds = listener :: Hashtbl.fold (fun fd _ acc -> fd :: acc) clients [] in
    let readable, _, _ = Unix.select fds [] [] 1.0 in
    if List.mem listener readable then begin
      match Unix.accept listener with
      | fd, _ -> Hashtbl.replace clients fd (Buffer.create 1024)
      | exception Unix.Unix_error (err, fn, _) -> log_unix_error ~ctx:"serve.accept_error" err fn
    end;
    (* Collect every complete line that arrived this round, then answer them
       as one batch so independent clients share the pool fan-out. *)
    let pending = ref [] in
    List.iter
      (fun fd ->
        if fd <> listener then
          match Hashtbl.find_opt clients fd with
          | None -> ()
          | Some buf -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
              let rest = String.trim (Buffer.contents buf) in
              if rest <> "" then pending := (fd, [ rest ]) :: !pending;
              drop fd
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              let lines = take_lines buf in
              if lines <> [] then pending := (fd, lines) :: !pending
            | exception Unix.Unix_error (err, fn, _) ->
              log_unix_error ~ctx:"serve.read_error" err fn;
              drop fd))
      readable;
    let pending = List.rev !pending in
    let all_lines = List.concat_map snd pending in
    if all_lines <> [] then begin
      let replies = ref (process_batch t all_lines) in
      List.iter
        (fun (fd, lines) ->
          List.iter
            (fun _ ->
              match !replies with
              | reply :: rest ->
                replies := rest;
                (try really_write fd (reply ^ "\n")
                 with Unix.Unix_error (err, fn, _) ->
                   log_unix_error ~ctx:"serve.write_error" err fn;
                   drop fd)
              | [] -> ())
            lines)
        pending
    end
  done;
  Hashtbl.iter (fun fd _ -> try Unix.close fd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  Obs.Log.info
    ~fields:
      [ ("served", Obs.Log.Int t.served_count);
        ("cache_hits", Obs.Log.Int (Lru.hits t.cache));
        ("cache_misses", Obs.Log.Int (Lru.misses t.cache)) ]
    "serve.stop"
