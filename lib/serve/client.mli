(** A crash-safe client for the Clara insight service.

    Wraps one Unix-domain-socket connection to {!Server.run} with the
    retry discipline the protocol calls for:

    - {b Per-attempt timeouts.}  Each round trip gets [timeout_s]; a
      server that neither answers nor hangs up within it counts as a
      transient failure.
    - {b Retries with jittered exponential backoff.}  Transient failures
      — connect errors, timeouts, mid-conversation disconnects, and
      explicit ["overloaded":true] or ["unavailable":true] replies (the
      latter from a router whose hashed worker died mid-request; the
      retry re-hashes to a live one) — are retried up to [retries]
      times, sleeping [backoff_base_s * 2^attempt] (capped at
      [backoff_cap_s]) scaled by a jitter factor in [0.5, 1).  The jitter
      sequence is a pure function of [seed], so a fixed seed replays the
      exact schedule.
    - {b Idempotent request ids.}  Every logical request gets one ["id"]
      (caller-supplied or generated) that is {e reused verbatim} across
      its retry attempts, so a server or log-reader can deduplicate
      re-sent work.

    Replies that are neither transient nor overloaded — including
    ["deadline_exceeded":true], whose budget was the request's own — are
    returned to the caller as parsed JSON without retrying. *)

type t

type error =
  | Overloaded of string
      (** retries exhausted while the server shed load (or a router kept
          answering [unavailable]) *)
  | Timeout  (** no reply within [timeout_s], retries exhausted *)
  | Io of string  (** connect/read/write failures, retries exhausted *)
  | Bad_reply of string  (** the server's reply line did not parse *)

val error_to_string : error -> string

(** [create ~socket_path ()] — connection is opened lazily on the first
    request and re-opened after any transient failure.  Defaults:
    [timeout_s] 5.0, [retries] 4, [backoff_base_s] 0.05, [backoff_cap_s]
    1.0, [seed] 1. *)
val create :
  ?timeout_s:float ->
  ?retries:int ->
  ?backoff_base_s:float ->
  ?backoff_cap_s:float ->
  ?seed:int ->
  socket_path:string ->
  unit ->
  t

(** Send one request object (given as its fields) and await its reply.
    An ["id"] field is added when the caller did not supply one, and the
    same id is sent on every retry of this request.  [Ok] is any parsed,
    non-overloaded reply — inspect its ["ok"] member for server-side
    errors such as [deadline_exceeded]. *)
val request : t -> (string * Jsonl.t) list -> (Jsonl.t, error) result

(** Round trips attempted / retries (attempts beyond each request's
    first) — the bench's retry-rate counters. *)
val attempts : t -> int

val retries_used : t -> int

(** Close the connection (idempotent; a later {!request} reconnects). *)
val close : t -> unit
