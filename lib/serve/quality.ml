(** Prediction-quality telemetry: shadow evaluation state (see quality.mli). *)

(* Per-shard sketch slots mirror the flow-cache sharding: the fast path
   records into its own shard's slot under that slot's lock only, and a
   scrape merges the shards (Sketch.merge is exactly associative, so the
   merged result is independent of how traffic was sharded). *)
type slot = {
  s_lock : Mutex.t;
  s_sketches : (string * string, Obs.Sketch.t) Hashtbl.t; (* (metric, nf) *)
}

type task = { t_nf : string; t_pred_compute : float; t_pred_memory : float; t_shard : int }

type t = {
  q_rate : float;
  q_seed : int;
  slots : slot array;
  (* Shadow tasks queue here during planning/assembly (both serial, so
     the queue order is the request order) and are evaluated by [drain]
     off the reply path. *)
  pending : task Queue.t;
  pending_lock : Mutex.t;
  drain_lock : Mutex.t;
  (* Unperturbed ground truth per NF; Perturb scales apply at use time,
     so flipping a perturbation mid-stream takes effect immediately. *)
  truths : (string, (float * float) option) Hashtbl.t;
  truth_lock : Mutex.t;
  drifts : (string, Obs.Drift.t) Hashtbl.t;
  drift_lock : Mutex.t;
  slo_latency : Obs.Slo.t;
  slo_avail : Obs.Slo.t;
  sampled : int Atomic.t;
  evaluated : int Atomic.t;
  eval_errors : int Atomic.t;
}

let default_rate () =
  match Option.bind (Sys.getenv_opt "CLARA_SHADOW_RATE") float_of_string_opt with
  | Some r when r >= 0.0 && r <= 1.0 -> r
  | Some _ | None -> 0.0

let default_seed () =
  match Option.bind (Sys.getenv_opt "CLARA_SHADOW_SEED") int_of_string_opt with
  | Some s -> s
  | None -> 0x5eed

let create ?rate ?seed ~shards () =
  if shards < 1 then invalid_arg "Quality.create: shards must be >= 1";
  let rate = match rate with Some r -> r | None -> default_rate () in
  if not (Float.is_finite rate && rate >= 0.0 && rate <= 1.0) then
    invalid_arg "Quality.create: rate must be in [0, 1]";
  { q_rate = rate;
    q_seed = (match seed with Some s -> s | None -> default_seed ());
    slots =
      Array.init shards (fun _ ->
          { s_lock = Mutex.create (); s_sketches = Hashtbl.create 8 });
    pending = Queue.create ();
    pending_lock = Mutex.create ();
    drain_lock = Mutex.create ();
    truths = Hashtbl.create 8;
    truth_lock = Mutex.create ();
    drifts = Hashtbl.create 8;
    drift_lock = Mutex.create ();
    slo_latency =
      Obs.Slo.create ~name:"clara_serve_latency" ~objective:0.99 (Obs.Slo.Latency 0.1);
    slo_avail = Obs.Slo.create ~name:"clara_serve_availability" ~objective:0.999 Obs.Slo.Availability;
    sampled = Atomic.make 0;
    evaluated = Atomic.make 0;
    eval_errors = Atomic.make 0 }

let rate t = t.q_rate
let enabled t = t.q_rate > 0.0

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* -- deterministic sampling --

   Selection hashes the request's id token and flow key through FNV-1a 64
   (the Shards hash), folds in the seed, and feeds one splitmix64 draw.
   The decision depends only on request content, never on arrival order or
   which domain plans the line, so CLARA_JOBS=1 and =4 shadow the same
   requests. *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let should_shadow t ~id ~key =
  if t.q_rate <= 0.0 then false
  else if t.q_rate >= 1.0 then true
  else
    let h = Int64.to_int (fnv1a64 (id ^ "|" ^ key)) lxor t.q_seed in
    Util.Rng.float (Util.Rng.create h) < t.q_rate

(* -- recording -- *)

let new_sketch () = Obs.Sketch.create ()

let sketch_for t shard key =
  let slot = t.slots.(shard mod Array.length t.slots) in
  with_lock slot.s_lock @@ fun () ->
  match Hashtbl.find_opt slot.s_sketches key with
  | Some s -> s
  | None ->
      let s = new_sketch () in
      Hashtbl.add slot.s_sketches key s;
      s

let offer t ~shard ~nf ~pred_compute ~pred_memory =
  Atomic.incr t.sampled;
  with_lock t.pending_lock @@ fun () ->
  Queue.add
    { t_nf = nf; t_pred_compute = pred_compute; t_pred_memory = pred_memory; t_shard = shard }
    t.pending

let record_fast_latency t ~shard ~nf dt_s =
  Obs.Sketch.add (sketch_for t shard ("fast_latency_us", nf)) (dt_s *. 1e6)

let record_request_latency t dt_s = Obs.Slo.record_latency t.slo_latency dt_s
let record_reply t ~ok = Obs.Slo.record t.slo_avail ~good:ok

(* -- shadow evaluation -- *)

let truth_for t nf =
  with_lock t.truth_lock @@ fun () ->
  match Hashtbl.find_opt t.truths nf with
  | Some v -> v
  | None ->
      let v =
        match Nf_lang.Corpus.find nf with
        | elt ->
            let blocks = Clara.Predictor.ground_truth elt in
            let c = List.fold_left (fun acc (_, c, _) -> acc +. c) 0.0 blocks in
            let m = List.fold_left (fun acc (_, _, m) -> acc +. m) 0.0 blocks in
            Some (c, m)
        | exception Failure _ -> None
      in
      Hashtbl.add t.truths nf v;
      v

let drift_for t nf =
  with_lock t.drift_lock @@ fun () ->
  match Hashtbl.find_opt t.drifts nf with
  | Some d -> d
  | None ->
      let d = Obs.Drift.create ~name:nf () in
      Hashtbl.add t.drifts nf d;
      d

let rel_err pred truth = (pred -. truth) /. Float.max (Float.abs truth) 1e-9

let eval_task t task =
  match truth_for t task.t_nf with
  | None -> Atomic.incr t.eval_errors
  | Some (tc, tm) ->
      let tc = tc *. Nicsim.Perturb.compute_scale () in
      let tm = tm *. Nicsim.Perturb.memory_scale () in
      let ec = rel_err task.t_pred_compute tc in
      let em = rel_err task.t_pred_memory tm in
      Obs.Sketch.add (sketch_for t task.t_shard ("compute_rel_err", task.t_nf)) ec;
      Obs.Sketch.add (sketch_for t task.t_shard ("memory_rel_err", task.t_nf)) em;
      (* Separate detectors per error stream: the memory prediction is
         a direct count, so its error is a near-exact constant and any
         profile shift shows up as a clean step regardless of how well
         the learned compute model happens to fit. *)
      Obs.Drift.observe (drift_for t task.t_nf) ec;
      Obs.Drift.observe (drift_for t (task.t_nf ^ "/memory")) em;
      Atomic.incr t.evaluated

let drain t =
  with_lock t.drain_lock @@ fun () ->
  let rec loop () =
    let task = with_lock t.pending_lock (fun () -> Queue.take_opt t.pending) in
    match task with
    | None -> ()
    | Some task ->
        eval_task t task;
        loop ()
  in
  loop ()

let pending t = with_lock t.pending_lock (fun () -> Queue.length t.pending)
let sampled t = Atomic.get t.sampled
let evaluated t = Atomic.get t.evaluated
let eval_errors t = Atomic.get t.eval_errors

let drift_active t nf =
  with_lock t.drift_lock (fun () -> Hashtbl.find_opt t.drifts nf)
  |> Option.fold ~none:false ~some:Obs.Drift.active

let drift_fired_at t nf =
  with_lock t.drift_lock (fun () -> Hashtbl.find_opt t.drifts nf)
  |> Option.fold ~none:(-1) ~some:Obs.Drift.fired_at

let drift_samples t nf =
  with_lock t.drift_lock (fun () -> Hashtbl.find_opt t.drifts nf)
  |> Option.fold ~none:0 ~some:Obs.Drift.samples

(* -- scrape -- *)

let latency_metric = "fast_latency_us"

(* Merge each (metric, nf) series across shards in shard-index order;
   merge associativity makes the result independent of sharding. *)
let merged_sketches t =
  let keys = Hashtbl.create 16 in
  Array.iter
    (fun slot ->
      with_lock slot.s_lock (fun () ->
          Hashtbl.iter (fun k _ -> Hashtbl.replace keys k ()) slot.s_sketches))
    t.slots;
  Hashtbl.fold (fun k () acc -> k :: acc) keys []
  |> List.sort compare
  |> List.map (fun key ->
         let merged =
           Array.fold_left
             (fun acc slot ->
               match with_lock slot.s_lock (fun () -> Hashtbl.find_opt slot.s_sketches key) with
               | None -> acc
               | Some s -> Obs.Sketch.merge acc s)
             (new_sketch ()) t.slots
         in
         (key, merged))

let fmt_float f = if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

let to_json_string ?now t =
  drain t;
  let sketches = merged_sketches t in
  let section pred =
    sketches
    |> List.filter (fun ((metric, _), _) -> pred metric)
    |> List.map (fun ((metric, nf), s) ->
           Printf.sprintf "{\"metric\":%S,\"nf\":%S,\"sketch\":%s}" metric nf
             (Obs.Sketch.to_json_string s))
    |> String.concat ","
  in
  let drift_json =
    with_lock t.drift_lock (fun () ->
        Hashtbl.fold (fun _ d acc -> d :: acc) t.drifts [])
    |> List.sort (fun a b -> compare (Obs.Drift.name a) (Obs.Drift.name b))
    |> List.map Obs.Drift.to_json_string
    |> String.concat ","
  in
  let slo_json =
    String.concat ","
      [ Obs.Slo.to_json_string ?now t.slo_latency; Obs.Slo.to_json_string ?now t.slo_avail ]
  in
  Printf.sprintf
    "{\"enabled\":%b,\"rate\":%s,\"sampled\":%d,\"evaluated\":%d,\"eval_errors\":%d,\"shadow\":[%s],\"latency\":[%s],\"drift\":[%s],\"slo\":[%s]}"
    (enabled t) (fmt_float t.q_rate) (sampled t) (evaluated t) (eval_errors t)
    (section (fun m -> m <> latency_metric))
    (section (fun m -> m = latency_metric))
    drift_json slo_json
