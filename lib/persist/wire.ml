(** Binary artifact framing: magic + version + component tag + CRC-32 over
    the payload.  See wire.mli for the layout.  All multi-byte integers are
    little-endian; floats travel as their IEEE-754 bit patterns, so values
    (including NaN payloads) round-trip bit-exactly. *)

type error =
  | Io_error of string
  | Truncated of { what : string; need : int; have : int }
  | Bad_magic of string
  | Bad_version of int
  | Wrong_component of { expected : string; got : string }
  | Crc_mismatch of { expected : int32; got : int32 }
  | Malformed of string

exception Error of error

let error_to_string = function
  | Io_error msg -> "I/O error: " ^ msg
  | Truncated { what; need; have } ->
    Printf.sprintf "truncated artifact: %s needs %d bytes, only %d present" what need have
  | Bad_magic got -> Printf.sprintf "bad magic %S (not a Clara artifact)" got
  | Bad_version v -> Printf.sprintf "unsupported artifact format version %d" v
  | Wrong_component { expected; got } ->
    Printf.sprintf "wrong component: expected %S, artifact holds %S" expected got
  | Crc_mismatch { expected; got } ->
    Printf.sprintf "payload checksum mismatch: stored %08lx, computed %08lx" expected got
  | Malformed msg -> "malformed payload: " ^ msg

(* -- CRC-32 (IEEE 802.3, reflected) -- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 ?(crc = 0l) s =
  let table = Lazy.force crc_table in
  let c = ref (Int32.lognot crc) in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl) in
      c := Int32.logxor (Int32.shift_right_logical !c 8) table.(idx))
    s;
  Int32.lognot !c

(* -- writer -- *)

type writer = Buffer.t

let writer () = Buffer.create 4096
let contents w = Buffer.contents w
let u8 w n = Buffer.add_char w (Char.chr (n land 0xff))
let i64 w n = Buffer.add_int64_le w (Int64.of_int n)
let f64 w x = Buffer.add_int64_le w (Int64.bits_of_float x)

let str w s =
  i64 w (String.length s);
  Buffer.add_string w s

let farr w a =
  i64 w (Array.length a);
  Array.iter (f64 w) a

let fmat w m =
  i64 w (Array.length m);
  Array.iter (farr w) m

let iarr w a =
  i64 w (Array.length a);
  Array.iter (i64 w) a

let list_ w put l =
  i64 w (List.length l);
  List.iter (put w) l

(* -- reader -- *)

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let need r n what =
  if r.pos + n > String.length r.data then
    raise (Error (Malformed (Printf.sprintf "%s overruns payload at offset %d" what r.pos)))

let r_u8 r =
  need r 1 "u8";
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_i64 r =
  need r 8 "i64";
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_f64 r =
  need r 8 "f64";
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_len r what =
  let n = r_i64 r in
  if n < 0 then raise (Error (Malformed (Printf.sprintf "negative %s length %d" what n)));
  n

let r_str r =
  let n = r_len r "string" in
  need r n "string body";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

(* [Array.init]/[List.init] make no evaluation-order promise, so stateful
   reads fill explicitly, index order. *)
let r_farr r =
  let n = r_len r "float array" in
  need r (8 * n) "float array body";
  let a = Array.make n 0.0 in
  for i = 0 to n - 1 do
    a.(i) <- r_f64 r
  done;
  a

let r_fmat r =
  let n = r_len r "matrix" in
  let m = Array.make n [||] in
  for i = 0 to n - 1 do
    m.(i) <- r_farr r
  done;
  m

let r_iarr r =
  let n = r_len r "int array" in
  need r (8 * n) "int array body";
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- r_i64 r
  done;
  a

let r_list r get =
  let n = r_len r "list" in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (get r :: acc) in
  go n []

let r_end r =
  if r.pos <> String.length r.data then
    raise
      (Error
         (Malformed
            (Printf.sprintf "%d trailing payload bytes after decode" (String.length r.data - r.pos))))

(* -- framing -- *)

let magic = "CLARAOBJ"
let format_version = 1

let frame ~component payload =
  let b = Buffer.create (String.length payload + 64) in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr (format_version land 0xff));
  Buffer.add_char b (Char.chr ((format_version lsr 8) land 0xff));
  if String.length component > 255 then invalid_arg "Wire.frame: component tag too long";
  Buffer.add_char b (Char.chr (String.length component));
  Buffer.add_string b component;
  Buffer.add_int64_le b (Int64.of_int (String.length payload));
  let crc = crc32 payload in
  Buffer.add_char b (Char.chr (Int32.to_int (Int32.logand crc 0xffl)));
  Buffer.add_char b (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc 8) 0xffl)));
  Buffer.add_char b (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc 16) 0xffl)));
  Buffer.add_char b (Char.chr (Int32.to_int (Int32.logand (Int32.shift_right_logical crc 24) 0xffl)));
  Buffer.add_string b payload;
  Buffer.contents b

let unframe ~component s =
  let have = String.length s in
  (* the [Error] exception above shadows [result]'s constructor *)
  let fail e = Result.Error e in
  if have < String.length magic then fail (Truncated { what = "magic"; need = String.length magic; have })
  else if String.sub s 0 (String.length magic) <> magic then
    fail (Bad_magic (String.sub s 0 (min have (String.length magic))))
  else if have < 10 then fail (Truncated { what = "format version"; need = 10; have })
  else begin
    let version = Char.code s.[8] lor (Char.code s.[9] lsl 8) in
    if version <> format_version then fail (Bad_version version)
    else if have < 11 then fail (Truncated { what = "component tag length"; need = 11; have })
    else begin
      let clen = Char.code s.[10] in
      if have < 11 + clen then fail (Truncated { what = "component tag"; need = 11 + clen; have })
      else begin
        let got = String.sub s 11 clen in
        if got <> component then fail (Wrong_component { expected = component; got })
        else begin
          let off = 11 + clen in
          if have < off + 12 then
            fail (Truncated { what = "payload length and checksum"; need = off + 12; have })
          else begin
            let plen = Int64.to_int (String.get_int64_le s off) in
            let stored_crc =
              Int32.logor
                (Int32.of_int
                   (Char.code s.[off + 8]
                   lor (Char.code s.[off + 9] lsl 8)
                   lor (Char.code s.[off + 10] lsl 16)))
                (Int32.shift_left (Int32.of_int (Char.code s.[off + 11])) 24)
            in
            if plen < 0 then fail (Malformed (Printf.sprintf "negative payload length %d" plen))
            else if have < off + 12 + plen then
              fail (Truncated { what = "payload"; need = off + 12 + plen; have })
            else if have > off + 12 + plen then
              fail (Malformed (Printf.sprintf "%d trailing bytes after payload" (have - off - 12 - plen)))
            else begin
              let payload = String.sub s (off + 12) plen in
              let crc = crc32 payload in
              if crc <> stored_crc then fail (Crc_mismatch { expected = stored_crc; got = crc })
              else Ok payload
            end
          end
        end
      end
    end
  end

(* -- files -- *)

let m_bytes_written =
  Obs.Metrics.counter ~help:"Artifact bytes written by Persist.Wire" "clara_persist_bytes_written_total"

let m_bytes_read =
  Obs.Metrics.counter ~help:"Artifact bytes read by Persist.Wire" "clara_persist_bytes_read_total"

(* Writes are atomic: the bytes land in a sibling temp file which is
   renamed over the target, so a writer killed mid-write leaves the old
   artifact untouched (readers see either the complete old file or the
   complete new one, never a torn mix).  An armed [persist.write] fault
   simulates exactly that crash: half the bytes reach the temp file, the
   rename never happens, and the writer dies with [Injected]. *)
let tmp_suffix = ".tmp"

let write_file path data =
  Obs.Metrics.add m_bytes_written (String.length data);
  let tmp = path ^ tmp_suffix in
  if Obs.Fault.fire "persist.write" then begin
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (String.sub data 0 (String.length data / 2)));
    raise (Obs.Fault.Injected "persist.write")
  end;
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc data);
  Sys.rename tmp path

let read_file path =
  if Obs.Fault.fire "persist.read" then
    Result.Error (Io_error ("injected fault: persist.read of " ^ path))
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | data ->
      Obs.Metrics.add m_bytes_read (String.length data);
      Ok data
    | exception Sys_error msg -> Result.Error (Io_error msg)

let save ~component path payload = write_file path (frame ~component payload)

let load ~component path =
  match read_file path with Ok s -> unframe ~component s | Error _ as e -> e
