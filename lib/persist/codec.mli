(** Binary codecs for every trained Clara component.

    Each component has a symmetric [encode_x : x -> string] (a complete
    {!Wire} frame, ready to hit disk) and
    [decode_x : string -> (x, Wire.error) result].  Encodings are
    canonical — hash tables serialize in index order, parameter matrices
    in the fixed {!Mlkit.Lstm.params} order — so [encode (decode (encode x))]
    is byte-identical to [encode x], which the serial/parallel
    bundle-equivalence tests rely on.  Optimizer state (gradients, Adam
    moments) is deliberately not persisted: a loaded model predicts
    bit-identically but restarts training cold. *)

(** {1 Component tags} *)

val vocab_tag : string
val lstm_tag : string
val tree_tag : string
val forest_tag : string
val gbdt_tag : string
val svm_tag : string
val ranker_tag : string
val kmeans_tag : string
val predictor_tag : string
val algo_tag : string
val scaleout_tag : string
val colocation_tag : string

(** {1 Raw (un-framed) payload codecs}

    Exposed so composite codecs — and the bundle — can nest components
    inside one payload. *)

val put_vocab : Wire.writer -> Clara.Vocab.t -> unit
val get_vocab : Wire.reader -> Clara.Vocab.t
val put_lstm : Wire.writer -> Mlkit.Lstm.t -> unit
val get_lstm : Wire.reader -> Mlkit.Lstm.t
val put_gbdt : Wire.writer -> Mlkit.Tree.gbdt -> unit
val get_gbdt : Wire.reader -> Mlkit.Tree.gbdt
val put_svm : Wire.writer -> Mlkit.Simple.svm -> unit
val get_svm : Wire.reader -> Mlkit.Simple.svm

(** {1 Framed codecs} *)

val encode_vocab : Clara.Vocab.t -> string
val decode_vocab : string -> (Clara.Vocab.t, Wire.error) result
val encode_lstm : Mlkit.Lstm.t -> string
val decode_lstm : string -> (Mlkit.Lstm.t, Wire.error) result
val encode_tree : Mlkit.Tree.t -> string
val decode_tree : string -> (Mlkit.Tree.t, Wire.error) result
val encode_forest : Mlkit.Tree.forest -> string
val decode_forest : string -> (Mlkit.Tree.forest, Wire.error) result
val encode_gbdt : Mlkit.Tree.gbdt -> string
val decode_gbdt : string -> (Mlkit.Tree.gbdt, Wire.error) result
val encode_svm : Mlkit.Simple.svm -> string
val decode_svm : string -> (Mlkit.Simple.svm, Wire.error) result
val encode_ranker : Mlkit.Rank.t -> string
val decode_ranker : string -> (Mlkit.Rank.t, Wire.error) result
val encode_kmeans : Mlkit.Simple.kmeans -> string
val decode_kmeans : string -> (Mlkit.Simple.kmeans, Wire.error) result

(** The full instruction predictor: vocabulary + LSTM. *)
val encode_predictor : Clara.Predictor.t -> string

val decode_predictor : string -> (Clara.Predictor.t, Wire.error) result

(** The per-class algorithm-identification SVMs with their mined grams. *)
val encode_algo : Clara.Algo_id.t -> string

val decode_algo : string -> (Clara.Algo_id.t, Wire.error) result

(** The scale-out GBDT cost model. *)
val encode_scaleout : Clara.Scaleout.t -> string

val decode_scaleout : string -> (Clara.Scaleout.t, Wire.error) result

(** The LambdaMART colocation ranker with its training objective. *)
val encode_colocation : Clara.Colocation.t -> string

val decode_colocation : string -> (Clara.Colocation.t, Wire.error) result
