(** Trained-pipeline artifact directories (see bundle.mli). *)

type manifest = {
  seed : int;
  epochs : int;
  corpus_hash : string;
  built_at : string;
}

type t = { manifest : manifest; models : Clara.Pipeline.models }

let manifest_tag = "manifest"
let manifest_file = "MANIFEST.clara"
let predictor_file = "predictor.clara"
let algo_file = "algo.clara"
let scaleout_file = "scaleout.clara"
let colocation_file = "colocation.clara"

let corpus_hash () =
  let buf = Buffer.create 65536 in
  List.iter (fun e -> Buffer.add_string buf (Nf_lang.Pp.to_string e)) (Nf_lang.Corpus.all ());
  Printf.sprintf "%08lx" (Wire.crc32 (Buffer.contents buf))

let put_manifest w m =
  Wire.i64 w m.seed;
  Wire.i64 w m.epochs;
  Wire.str w m.corpus_hash;
  Wire.str w m.built_at

let get_manifest r =
  let seed = Wire.r_i64 r in
  let epochs = Wire.r_i64 r in
  let corpus_hash = Wire.r_str r in
  let built_at = Wire.r_str r in
  { seed; epochs; corpus_hash; built_at }

let encode_manifest m =
  let w = Wire.writer () in
  put_manifest w m;
  Wire.frame ~component:manifest_tag (Wire.contents w)

let decode_manifest s =
  match Wire.unframe ~component:manifest_tag s with
  | Error _ as e -> e
  | Ok payload -> (
    try
      let r = Wire.reader payload in
      let m = get_manifest r in
      Wire.r_end r;
      Ok m
    with Wire.Error e -> Error e)

(* A bundle's version is the CRC of its canonical manifest frame: any
   provenance change (seed, epochs, corpus, build time) yields a new
   version, and two processes loading the same directory always agree. *)
let version m = Printf.sprintf "%08lx" (Wire.crc32 (encode_manifest m))

let peek_manifest ~dir =
  match Wire.read_file (Filename.concat dir manifest_file) with
  | Error _ as e -> e
  | Ok data -> decode_manifest data

let peek_version ~dir =
  match peek_manifest ~dir with Ok m -> Ok (version m) | Error _ as e -> e

let encode manifest (models : Clara.Pipeline.models) =
  [ (manifest_file, encode_manifest manifest);
    (predictor_file, Codec.encode_predictor models.Clara.Pipeline.predictor);
    (algo_file, Codec.encode_algo models.Clara.Pipeline.algo) ]
  @ (match models.Clara.Pipeline.scaleout with
    | Some s -> [ (scaleout_file, Codec.encode_scaleout s) ]
    | None -> [])
  @
  match models.Clara.Pipeline.colocation with
  | Some c -> [ (colocation_file, Codec.encode_colocation c) ]
  | None -> []

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ()
  end

let m_load_seconds =
  Obs.Metrics.histogram ~help:"Model-bundle load latency in seconds" "clara_persist_load_seconds"

(* The manifest is written last: each component file is individually
   atomic (temp + rename in [Wire.write_file]), so a save that dies part
   way leaves either the old manifest (bundle reads as the old version)
   or no manifest (reads as no bundle) — never a manifest pointing at
   half-written components. *)
let save ~dir manifest models =
  Obs.Span.with_ ~cat:"persist" "bundle.save" @@ fun () ->
  mkdir_p dir;
  let files = encode manifest models in
  let manifest_entry, components = List.partition (fun (f, _) -> f = manifest_file) files in
  List.iter
    (fun (file, data) -> Wire.write_file (Filename.concat dir file) data)
    (components @ manifest_entry)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let load_file dir file decode =
  let* data = Wire.read_file (Filename.concat dir file) in
  decode data

let load_optional dir file decode =
  if Sys.file_exists (Filename.concat dir file) then
    match load_file dir file decode with Ok v -> Ok (Some v) | Error _ as e -> e
  else Ok None

let load ~dir =
  Obs.Span.with_ ~cat:"persist" "bundle.load" @@ fun () ->
  Obs.Metrics.time m_load_seconds @@ fun () ->
  let* manifest = load_file dir manifest_file decode_manifest in
  let* predictor = load_file dir predictor_file Codec.decode_predictor in
  let* algo = load_file dir algo_file Codec.decode_algo in
  let* scaleout = load_optional dir scaleout_file Codec.decode_scaleout in
  let* colocation = load_optional dir colocation_file Codec.decode_colocation in
  Ok { manifest; models = { Clara.Pipeline.predictor; algo; scaleout; colocation } }

(* Salvage: a torn write must degrade, not crash.  The manifest and the
   required components (predictor, algo) decide whether the bundle is
   usable at all; a corrupt *optional* component is dropped — the loaded
   pipeline simply lacks that model, exactly as if it had never been
   trained — and reported so the caller can log it. *)
let salvage_optional dir file decode dropped =
  if not (Sys.file_exists (Filename.concat dir file)) then None
  else
    match load_file dir file decode with
    | Ok v -> Some v
    | Error e ->
      dropped := (file, e) :: !dropped;
      None

let load_salvage ~dir =
  Obs.Span.with_ ~cat:"persist" "bundle.load_salvage" @@ fun () ->
  Obs.Metrics.time m_load_seconds @@ fun () ->
  let* manifest = load_file dir manifest_file decode_manifest in
  let* predictor = load_file dir predictor_file Codec.decode_predictor in
  let* algo = load_file dir algo_file Codec.decode_algo in
  let dropped = ref [] in
  let scaleout = salvage_optional dir scaleout_file Codec.decode_scaleout dropped in
  let colocation = salvage_optional dir colocation_file Codec.decode_colocation dropped in
  Ok
    ( { manifest; models = { Clara.Pipeline.predictor; algo; scaleout; colocation } },
      List.rev !dropped )
