(** Binary artifact framing for persisted Clara models.

    Every artifact is a single self-describing frame:

    {v
    offset  size  field
    0       8     magic "CLARAOBJ"
    8       2     format version, u16 LE (currently 1)
    10      1     component-tag length L
    11      L     component tag, e.g. "predictor"
    11+L    8     payload length N, i64 LE
    19+L    4     CRC-32 (IEEE) of the payload, u32 LE
    23+L    N     payload
    v}

    Readers validate in order: length (truncation), magic, version,
    component tag, payload CRC — and report the first failure as a typed
    {!error}, never an exception escaping to the caller of [unframe]. *)

(** Everything that can go wrong reading an artifact. *)
type error =
  | Io_error of string  (** file missing / unreadable *)
  | Truncated of { what : string; need : int; have : int }
      (** fewer bytes than the named field requires *)
  | Bad_magic of string  (** leading bytes are not the Clara magic *)
  | Bad_version of int  (** format version this build does not speak *)
  | Wrong_component of { expected : string; got : string }
      (** artifact holds a different component than requested *)
  | Crc_mismatch of { expected : int32; got : int32 }
      (** payload bytes do not hash to the stored checksum *)
  | Malformed of string  (** payload structure invalid after CRC passed *)

(** Raised by {!reader} primitives on payload overrun / bad tags; caught
    and converted to a [result] by every codec entry point. *)
exception Error of error

val error_to_string : error -> string

(** CRC-32 (IEEE 802.3 polynomial) of a string; [crc] seeds chained
    updates. *)
val crc32 : ?crc:int32 -> string -> int32

(** {1 Primitive writer} *)

type writer

val writer : unit -> writer
val contents : writer -> string
val u8 : writer -> int -> unit
val i64 : writer -> int -> unit
val f64 : writer -> float -> unit
val str : writer -> string -> unit
val farr : writer -> float array -> unit
val fmat : writer -> float array array -> unit
val iarr : writer -> int array -> unit
val list_ : writer -> (writer -> 'a -> unit) -> 'a list -> unit

(** {1 Primitive reader} *)

type reader

val reader : string -> reader
val r_u8 : reader -> int
val r_i64 : reader -> int
val r_f64 : reader -> float
val r_str : reader -> string
val r_farr : reader -> float array
val r_fmat : reader -> float array array
val r_iarr : reader -> int array
val r_list : reader -> (reader -> 'a) -> 'a list

(** Fail with {!Malformed} unless the payload was fully consumed. *)
val r_end : reader -> unit

(** {1 Framing} *)

val format_version : int

(** Wrap a payload in the framed format under a component tag. *)
val frame : component:string -> string -> string

(** Validate and strip the frame, returning the payload. *)
val unframe : component:string -> string -> (string, error) result

(** {1 Files} *)

(** Atomic: bytes are written to [path ^ ".tmp"] and renamed over [path],
    so a crashed writer leaves any previous artifact intact.  An armed
    [persist.write] {!Obs.Fault} point simulates the crash (torn temp
    file, no rename, raises [Obs.Fault.Injected]). *)
val write_file : string -> string -> unit

(** [Io_error] on missing/unreadable files and on armed [persist.read]
    {!Obs.Fault} draws. *)
val read_file : string -> (string, error) result

(** [save ~component path payload] / [load ~component path]: framed file
    round trip. *)
val save : component:string -> string -> string -> unit

val load : component:string -> string -> (string, error) result
