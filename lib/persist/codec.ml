(** Binary codecs for trained Clara components (see codec.mli).

    Layout conventions: records serialize field-by-field in declaration
    order; variants as a u8 tag followed by their arguments; lists with a
    leading count.  Weight matrices persist alone — gradient and Adam
    state are reconstructed as zeros by {!Mlkit.Nn.param_of_weights}. *)

let vocab_tag = "vocab"
let lstm_tag = "lstm"
let tree_tag = "tree"
let forest_tag = "forest"
let gbdt_tag = "gbdt"
let svm_tag = "svm"
let ranker_tag = "ranker"
let kmeans_tag = "kmeans"
let predictor_tag = "predictor"
let algo_tag = "algo-id"
let scaleout_tag = "scaleout"
let colocation_tag = "colocation"

let bad_tag what n =
  raise (Wire.Error (Wire.Malformed (Printf.sprintf "bad %s tag %d" what n)))

let encode ~component put v =
  let w = Wire.writer () in
  put w v;
  Wire.frame ~component (Wire.contents w)

let decode ~component get s =
  match Wire.unframe ~component s with
  | Error _ as e -> e
  | Ok payload -> (
    try
      let r = Wire.reader payload in
      let v = get r in
      Wire.r_end r;
      Ok v
    with Wire.Error e -> Error e)

(* -- vocabulary: entries in index order, so the encoding is canonical
   regardless of hash-table iteration order -- *)

let put_vocab w (v : Clara.Vocab.t) =
  Wire.u8 w (if v.Clara.Vocab.frozen then 1 else 0);
  let entries = Hashtbl.fold (fun word idx acc -> (idx, word) :: acc) v.Clara.Vocab.table [] in
  Wire.list_ w
    (fun w (idx, word) ->
      Wire.i64 w idx;
      Wire.str w word)
    (List.sort compare entries)

let get_vocab r =
  let frozen = Wire.r_u8 r = 1 in
  let entries =
    Wire.r_list r (fun r ->
        let idx = Wire.r_i64 r in
        let word = Wire.r_str r in
        (idx, word))
  in
  let table = Hashtbl.create (max 16 (List.length entries)) in
  List.iter (fun (idx, word) -> Hashtbl.replace table word idx) entries;
  { Clara.Vocab.table; frozen }

(* -- neural parameters: weights only -- *)

let put_param w (p : Mlkit.Nn.param) = Wire.fmat w (Mlkit.Nn.weights_of_param p)
let get_param r = Mlkit.Nn.param_of_weights (Wire.r_fmat r)

let put_lstm w (m : Mlkit.Lstm.t) =
  Wire.i64 w m.Mlkit.Lstm.vocab;
  Wire.i64 w m.Mlkit.Lstm.hidden;
  Wire.i64 w m.Mlkit.Lstm.fc_dim;
  Wire.i64 w m.Mlkit.Lstm.out_dim;
  Wire.f64 w m.Mlkit.Lstm.y_scale;
  (* fixed parameter order: Lstm.params = wi wf wo wg ui uf uo ug bi bf bo
     bg fc1 fc2 *)
  List.iter (put_param w) (Mlkit.Lstm.params m)

let get_lstm r =
  let vocab = Wire.r_i64 r in
  let hidden = Wire.r_i64 r in
  let fc_dim = Wire.r_i64 r in
  let out_dim = Wire.r_i64 r in
  let y_scale = Wire.r_f64 r in
  let p () = get_param r in
  let wi = p () in
  let wf = p () in
  let wo = p () in
  let wg = p () in
  let ui = p () in
  let uf = p () in
  let uo = p () in
  let ug = p () in
  let bi = p () in
  let bf = p () in
  let bo = p () in
  let bg = p () in
  let fc1 = p () in
  let fc2 = p () in
  { Mlkit.Lstm.vocab; hidden; wi; wf; wo; wg; ui; uf; uo; ug; bi; bf; bo; bg; fc1; fc2;
    fc_dim; out_dim; y_scale }

(* -- trees, forests, boosting -- *)

let rec put_node w = function
  | Mlkit.Tree.Leaf v ->
    Wire.u8 w 0;
    Wire.f64 w v
  | Mlkit.Tree.Split { feature; threshold; left; right } ->
    Wire.u8 w 1;
    Wire.i64 w feature;
    Wire.f64 w threshold;
    put_node w left;
    put_node w right

let rec get_node r =
  match Wire.r_u8 r with
  | 0 -> Mlkit.Tree.Leaf (Wire.r_f64 r)
  | 1 ->
    let feature = Wire.r_i64 r in
    let threshold = Wire.r_f64 r in
    let left = get_node r in
    let right = get_node r in
    Mlkit.Tree.Split { feature; threshold; left; right }
  | n -> bad_tag "tree node" n

let put_tree w (t : Mlkit.Tree.t) = put_node w t.Mlkit.Tree.root
let get_tree r = { Mlkit.Tree.root = get_node r }

let put_forest w (f : Mlkit.Tree.forest) = Wire.list_ w put_tree f.Mlkit.Tree.trees
let get_forest r = { Mlkit.Tree.trees = Wire.r_list r get_tree }

let put_gbdt w (g : Mlkit.Tree.gbdt) =
  Wire.f64 w g.Mlkit.Tree.init;
  Wire.f64 w g.Mlkit.Tree.shrinkage;
  Wire.list_ w put_tree g.Mlkit.Tree.stages

let get_gbdt r =
  let init = Wire.r_f64 r in
  let shrinkage = Wire.r_f64 r in
  let stages = Wire.r_list r get_tree in
  { Mlkit.Tree.init; shrinkage; stages }

(* -- classical learners -- *)

let put_svm w (s : Mlkit.Simple.svm) =
  Wire.farr w s.Mlkit.Simple.w;
  Wire.f64 w s.Mlkit.Simple.b;
  Wire.farr w s.Mlkit.Simple.mu;
  Wire.farr w s.Mlkit.Simple.sd

let get_svm r =
  let w = Wire.r_farr r in
  let b = Wire.r_f64 r in
  let mu = Wire.r_farr r in
  let sd = Wire.r_farr r in
  { Mlkit.Simple.w; b; mu; sd }

let put_kmeans w (k : Mlkit.Simple.kmeans) = Wire.fmat w k.Mlkit.Simple.centroids
let get_kmeans r = { Mlkit.Simple.centroids = Wire.r_fmat r }

let put_ranker w (t : Mlkit.Rank.t) = put_gbdt w t.Mlkit.Rank.model
let get_ranker r = { Mlkit.Rank.model = get_gbdt r }

(* -- Clara pipeline components -- *)

let put_predictor w (p : Clara.Predictor.t) =
  put_vocab w p.Clara.Predictor.vocab;
  put_lstm w p.Clara.Predictor.lstm

let get_predictor r =
  let vocab = get_vocab r in
  let lstm = get_lstm r in
  { Clara.Predictor.vocab; lstm }

let label_tag = function
  | Clara.Algo_corpus.Crc -> 0
  | Clara.Algo_corpus.Lpm -> 1
  | Clara.Algo_corpus.Checksum -> 2
  | Clara.Algo_corpus.Other -> 3

let label_of_tag = function
  | 0 -> Clara.Algo_corpus.Crc
  | 1 -> Clara.Algo_corpus.Lpm
  | 2 -> Clara.Algo_corpus.Checksum
  | 3 -> Clara.Algo_corpus.Other
  | n -> bad_tag "algorithm label" n

let mode_tag = function `Both -> 0 | `Manual_only -> 1 | `Spe_only -> 2

let mode_of_tag = function
  | 0 -> `Both
  | 1 -> `Manual_only
  | 2 -> `Spe_only
  | n -> bad_tag "feature mode" n

let put_algo_model w (m : Clara.Algo_id.model) =
  Wire.u8 w (label_tag m.Clara.Algo_id.label);
  Wire.list_ w
    (fun w (key, n) ->
      Wire.str w key;
      Wire.i64 w n)
    m.Clara.Algo_id.grams;
  put_svm w m.Clara.Algo_id.svm

let get_algo_model r =
  let label = label_of_tag (Wire.r_u8 r) in
  let grams =
    Wire.r_list r (fun r ->
        let key = Wire.r_str r in
        let n = Wire.r_i64 r in
        (key, n))
  in
  let svm = get_svm r in
  { Clara.Algo_id.label; grams; svm }

let put_algo w (t : Clara.Algo_id.t) =
  Wire.u8 w (mode_tag t.Clara.Algo_id.mode);
  Wire.list_ w put_algo_model t.Clara.Algo_id.models

let get_algo r =
  let mode = mode_of_tag (Wire.r_u8 r) in
  let models = Wire.r_list r get_algo_model in
  { Clara.Algo_id.models; mode }

let put_scaleout w (s : Clara.Scaleout.t) = put_gbdt w s.Clara.Scaleout.gbdt
let get_scaleout r = { Clara.Scaleout.gbdt = get_gbdt r }

let objective_tag = function
  | Clara.Colocation.Total_throughput -> 0
  | Clara.Colocation.Avg_throughput -> 1
  | Clara.Colocation.Total_latency -> 2
  | Clara.Colocation.Avg_latency -> 3

let objective_of_tag = function
  | 0 -> Clara.Colocation.Total_throughput
  | 1 -> Clara.Colocation.Avg_throughput
  | 2 -> Clara.Colocation.Total_latency
  | 3 -> Clara.Colocation.Avg_latency
  | n -> bad_tag "colocation objective" n

let put_colocation w (c : Clara.Colocation.t) =
  Wire.u8 w (objective_tag c.Clara.Colocation.objective);
  put_ranker w c.Clara.Colocation.ranker

let get_colocation r =
  let objective = objective_of_tag (Wire.r_u8 r) in
  let ranker = get_ranker r in
  { Clara.Colocation.objective; ranker }

(* -- framed entry points -- *)

let encode_vocab v = encode ~component:vocab_tag put_vocab v
let decode_vocab s = decode ~component:vocab_tag get_vocab s
let encode_lstm v = encode ~component:lstm_tag put_lstm v
let decode_lstm s = decode ~component:lstm_tag get_lstm s
let encode_tree v = encode ~component:tree_tag put_tree v
let decode_tree s = decode ~component:tree_tag get_tree s
let encode_forest v = encode ~component:forest_tag put_forest v
let decode_forest s = decode ~component:forest_tag get_forest s
let encode_gbdt v = encode ~component:gbdt_tag put_gbdt v
let decode_gbdt s = decode ~component:gbdt_tag get_gbdt s
let encode_svm v = encode ~component:svm_tag put_svm v
let decode_svm s = decode ~component:svm_tag get_svm s
let encode_ranker v = encode ~component:ranker_tag put_ranker v
let decode_ranker s = decode ~component:ranker_tag get_ranker s
let encode_kmeans v = encode ~component:kmeans_tag put_kmeans v
let decode_kmeans s = decode ~component:kmeans_tag get_kmeans s
let encode_predictor v = encode ~component:predictor_tag put_predictor v
let decode_predictor s = decode ~component:predictor_tag get_predictor s
let encode_algo v = encode ~component:algo_tag put_algo v
let decode_algo s = decode ~component:algo_tag get_algo s
let encode_scaleout v = encode ~component:scaleout_tag put_scaleout v
let decode_scaleout s = decode ~component:scaleout_tag get_scaleout s
let encode_colocation v = encode ~component:colocation_tag put_colocation v
let decode_colocation s = decode ~component:colocation_tag get_colocation s
