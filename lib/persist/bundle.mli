(** A complete trained Clara pipeline as an artifact directory.

    Layout (one {!Wire}-framed file per component):

    {v
    DIR/
      MANIFEST.clara      provenance: seed, epochs, corpus hash, timestamp
      predictor.clara     vocabulary + LSTM (§3.2)
      algo.clara          per-class algorithm-ID SVMs (§4.1)
      scaleout.clara      scale-out GBDT (§4.2), present iff trained
      colocation.clara    LambdaMART colocation ranker (§4.5), iff trained
    v}

    Optional components are encoded by file presence.  [save]/[load] go
    through {!encode}/[decode], so a bundle written under any [CLARA_JOBS]
    is byte-identical to a serial one (deterministic training plus
    canonical codecs). *)

(** Provenance recorded next to the models.  [built_at] is supplied by the
    caller (keeps encoding a pure function of its inputs). *)
type manifest = {
  seed : int;  (** dataset-synthesis seed *)
  epochs : int;  (** LSTM training epochs *)
  corpus_hash : string;  (** {!corpus_hash} at training time *)
  built_at : string;  (** caller-provided timestamp, e.g. ISO-8601 *)
}

type t = { manifest : manifest; models : Clara.Pipeline.models }

(** CRC-32 over the rendered NF corpus — detects analyzing against a
    corpus that drifted since training. *)
val corpus_hash : unit -> string

val encode_manifest : manifest -> string
val decode_manifest : string -> (manifest, Wire.error) result

(** The bundle's version token: CRC-32 of the canonical manifest frame.
    Pure, so every process that can read the manifest derives the same
    token — what the serving layer's hot-reload negotiation compares. *)
val version : manifest -> string

(** Read and decode only [DIR/MANIFEST.clara] — the cheap probe a router
    uses to learn a bundle's identity before asking workers to load it.
    A mid-publish kill leaves either the old manifest or none (the
    manifest is written last, atomically), so this never observes a torn
    version. *)
val peek_manifest : dir:string -> (manifest, Wire.error) result

(** [peek_manifest] composed with {!version}. *)
val peek_version : dir:string -> (string, Wire.error) result

(** The bundle as [(filename, framed bytes)] pairs, exactly what {!save}
    writes — exposed for the serial/parallel byte-equivalence tests. *)
val encode : manifest -> Clara.Pipeline.models -> (string * string) list

(** Write the bundle, creating [dir] (and parents) as needed.  Each file
    is written atomically (see {!Wire.write_file}) and the manifest goes
    last, so a save killed part way leaves either the complete old bundle
    or a manifest-less directory — never a torn one. *)
val save : dir:string -> manifest -> Clara.Pipeline.models -> unit

(** Load a bundle; the first broken component reports its typed error. *)
val load : dir:string -> (t, Wire.error) result

(** Like {!load}, but corrupt {e optional} components (scale-out,
    colocation) are dropped instead of failing the load; the second
    result lists the dropped [(file, error)] pairs for logging.  Still
    [Error] when the manifest or a required component is broken — the
    caller falls back to a cold start rather than crashing. *)
val load_salvage : dir:string -> (t * (string * Wire.error) list, Wire.error) result
