(** Level-triggered poll loop with per-connection state machines — the
    serving layer's replacement for its inline select-per-round loop.

    The abstraction is epoll-style even though the backend is
    [Unix.select] (portable, and the fd counts here are bounded by
    [max_clients]): each {!poll} is one level-triggered round that
    flushes writable connections, accepts at most one new client, batches
    every complete request line that arrived, and returns the batches for
    the caller to answer via {!send} (coalesced into one write per
    connection per round).

    Connection lifecycle: [Reading] (contributing lines to rounds) →
    [Closing] (peer half-closed with a final unterminated line or
    undrained replies; only flushes) → [Dead] (closed, detached).

    Fault points: [serve.accept], [serve.read] and [serve.write] fire
    inside the corresponding syscall wrappers, surfacing as the matching
    [Unix_error]s ([EMFILE]/[ECONNRESET]/[EPIPE]) routed through the
    callbacks — identical to the pre-event-loop server's behavior.
    Disconnecting peers (EPIPE/ECONNRESET) go to [on_disconnect]; other
    I/O errors to [on_error] with a log-context string; a connection
    beyond [max_clients] is handed to [on_reject] (which owns the fd). *)

type conn

type callbacks = {
  on_reject : Unix.file_descr -> unit;
  on_disconnect : fn:string -> Unix.error -> unit;
  on_error : ctx:string -> fn:string -> Unix.error -> unit;
}

type t

val create : listener:Unix.file_descr -> max_clients:int -> callbacks -> t

val clients : t -> int

(** Stop accepting (drain phase); existing connections keep being served. *)
val stop_accepting : t -> unit

(** One round: flush, accept, read.  Returns the complete request lines
    per connection, in connection-accept order, or [`Eintr] if the wait
    was interrupted by a signal. *)
val poll : t -> timeout_s:float -> [ `Eintr | `Round of (conn * string list) list ]

(** Queue one reply line (newline appended) on the connection's write
    buffer; actually written on the next flush. *)
val send : conn -> string -> unit

(** Attempt a write on every connection with queued output. *)
val flush : t -> unit

(** Any connection still holding unwritten replies? *)
val has_pending : t -> bool

val close_all : t -> unit
