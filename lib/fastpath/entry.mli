(** Flow entries: the pre-serialized reply bytes the slow path installs
    and the fast path writes straight to the socket.

    An entry escapes and renders the invariant parts of an [analyze]
    reply once at install time — the NF name, workload name and the full
    report — leaving only the per-request fields (id, trace id, the
    cached flag and the serving path) to splice at reply time.  Rendering
    matches {!Serve.Jsonl.to_string}'s field formatting byte-for-byte, so
    a fast-path reply equals the slow-path reply for the same request
    modulo exactly the [cached]/[path] values. *)

type t

(** [pred_compute]/[pred_memory] carry the model's raw predictions so
    fast-path hits can still feed shadow evaluation without re-parsing
    the rendered report (default 0.0 when the installer has none). *)
val make :
  ?pred_compute:float -> ?pred_memory:float ->
  nf:string -> workload:string -> report:string -> unit -> t

val nf : t -> string
val workload : t -> string
val report : t -> string
val pred_compute : t -> float
val pred_memory : t -> float

(** Splice a reply into [b] with the id token and trace-id contents taken
    as raw substrings ([id_len = 0] renders a [null] id; the trace span
    must not need escaping — the scanner only accepts such traces). *)
val render_into :
  Buffer.t ->
  t ->
  id_src:string -> id_off:int -> id_len:int ->
  trace_src:string -> trace_off:int -> trace_len:int ->
  cached:bool -> path:string ->
  unit

(** Allocating convenience used by the slow path: [id] is the rendered
    JSON id token ([""] for null); [trace] is escaped as needed. *)
val render : t -> id:string -> trace:string -> cached:bool -> path:string -> string
