(** Level-triggered event loop (see evloop.mli). *)

(* Per-connection state machine:

     Reading --(EOF with buffered partial line)--> Closing --(write
     buffer drained)--> Dead

   [Reading] connections contribute complete lines to each round's batch;
   [Closing] connections only drain their pending replies (the peer
   half-closed after a final unterminated line); [Dead] is closed and
   detached.  Writes are coalesced: every reply of a round is appended to
   the connection's write buffer and drained in as few [write] calls as
   the kernel allows when the round flushes. *)

type conn = {
  fd : Unix.file_descr;
  rbuf : Buffer.t;
  wbuf : Buffer.t;  (** replies not yet handed to [write] *)
  mutable wpend : string;  (** in-flight flush remainder *)
  mutable woff : int;
  mutable closing : bool;
  mutable dead : bool;
}

type callbacks = {
  on_reject : Unix.file_descr -> unit;
  on_disconnect : fn:string -> Unix.error -> unit;
  on_error : ctx:string -> fn:string -> Unix.error -> unit;
}

type t = {
  listener : Unix.file_descr;
  max_clients : int;
  cb : callbacks;
  mutable conns : conn list;  (** accept order, newest last *)
  mutable n_conns : int;
  mutable accepting : bool;
  chunk : Bytes.t;
}

let create ~listener ~max_clients cb =
  { listener; max_clients; cb; conns = []; n_conns = 0; accepting = true; chunk = Bytes.create 65536 }

let clients t = t.n_conns
let stop_accepting t = t.accepting <- false

let drop t c =
  if not c.dead then begin
    c.dead <- true;
    t.conns <- List.filter (fun c' -> c' != c) t.conns;
    t.n_conns <- t.n_conns - 1;
    (try Unix.close c.fd with Unix.Unix_error _ -> ())
  end

let close_all t = List.iter (fun c -> drop t c) t.conns

let send c reply =
  Buffer.add_string c.wbuf reply;
  Buffer.add_char c.wbuf '\n'

let pending c = c.woff < String.length c.wpend || Buffer.length c.wbuf > 0

let has_pending t = List.exists pending t.conns

(* Drain the connection's whole write queue in one go: a round's replies
   are coalesced into as few [write] calls as the kernel allows, and the
   fds stay blocking so no reply is ever stranded in user space at
   shutdown (matching the pre-event-loop server, which wrote replies
   synchronously).  EPIPE/ECONNRESET (and the armed serve.write fault)
   are the peer's lifecycle: count, log at info via the callback, drop. *)
let flush_conn t c =
  if (not c.dead) && pending c then begin
    try
      if Obs.Fault.fire "serve.write" then
        raise (Unix.Unix_error (Unix.EPIPE, "write", "injected fault: serve.write"));
      let continue = ref true in
      while !continue do
        if c.woff >= String.length c.wpend then
          if Buffer.length c.wbuf > 0 then begin
            c.wpend <- Buffer.contents c.wbuf;
            c.woff <- 0;
            Buffer.clear c.wbuf
          end
          else continue := false
        else
          match Unix.write_substring c.fd c.wpend c.woff (String.length c.wpend - c.woff) with
          | n -> c.woff <- c.woff + n
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      if c.closing then drop t c
    with
    | Unix.Unix_error (((Unix.EPIPE | Unix.ECONNRESET) as err), _, _) ->
      t.cb.on_disconnect ~fn:"write" err;
      drop t c
    | Unix.Unix_error (err, _, _) ->
      t.cb.on_error ~ctx:"serve.write_error" ~fn:"write" err;
      drop t c
  end

let flush t = List.iter (fun c -> flush_conn t c) t.conns

(* Split [rbuf] at its last newline: complete lines (blank-filtered) are
   delivered, the partial tail stays buffered. *)
let take_lines c =
  let data = Buffer.contents c.rbuf in
  match String.rindex_opt data '\n' with
  | None -> []
  | Some i ->
    Buffer.clear c.rbuf;
    Buffer.add_substring c.rbuf data (i + 1) (String.length data - i - 1);
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' (String.sub data 0 i))

let accept_one t =
  try
    if Obs.Fault.fire "serve.accept" then
      raise (Unix.Unix_error (Unix.EMFILE, "accept", "injected fault: serve.accept"));
    let fd, _ = Unix.accept t.listener in
    if t.n_conns >= t.max_clients then t.cb.on_reject fd
    else begin
      let c =
        { fd; rbuf = Buffer.create 256; wbuf = Buffer.create 256; wpend = ""; woff = 0;
          closing = false; dead = false }
      in
      t.conns <- t.conns @ [ c ];
      t.n_conns <- t.n_conns + 1
    end
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | Unix.Unix_error (err, _, _) -> t.cb.on_error ~ctx:"serve.accept_error" ~fn:"accept" err

let read_conn t c acc =
  try
    if Obs.Fault.fire "serve.read" then
      raise (Unix.Unix_error (Unix.ECONNRESET, "read", "injected fault: serve.read"));
    let n = Unix.read c.fd t.chunk 0 (Bytes.length t.chunk) in
    if n = 0 then begin
      (* EOF: answer a final unterminated line before closing *)
      let rest = String.trim (Buffer.contents c.rbuf) in
      Buffer.clear c.rbuf;
      if rest <> "" then begin
        c.closing <- true;
        (c, [ rest ]) :: acc
      end
      else begin
        if pending c then c.closing <- true else drop t c;
        acc
      end
    end
    else begin
      Buffer.add_subbytes c.rbuf t.chunk 0 n;
      match take_lines c with [] -> acc | lines -> (c, lines) :: acc
    end
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> acc
  | Unix.Unix_error (((Unix.ECONNRESET | Unix.EPIPE) as err), _, _) ->
    t.cb.on_disconnect ~fn:"read" err;
    drop t c;
    acc
  | Unix.Unix_error (err, _, _) ->
    t.cb.on_error ~ctx:"serve.read_error" ~fn:"read" err;
    drop t c;
    acc

let poll t ~timeout_s =
  let rfds =
    let conn_fds = List.filter_map (fun c -> if c.dead || c.closing then None else Some c.fd) t.conns in
    if t.accepting then t.listener :: conn_fds else conn_fds
  in
  let wfds = List.filter_map (fun c -> if (not c.dead) && pending c then Some c.fd else None) t.conns in
  match Unix.select rfds wfds [] timeout_s with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Eintr
  | readable, writable, _ ->
    List.iter
      (fun c -> if (not c.dead) && List.memq c.fd writable then flush_conn t c)
      t.conns;
    if t.accepting && List.memq t.listener readable then accept_one t;
    let batches =
      List.fold_left
        (fun acc c ->
          if (not c.dead) && (not c.closing) && List.memq c.fd readable then read_conn t c acc
          else acc)
        [] t.conns
    in
    `Round (List.rev batches)
