(** Non-allocating scanner over a raw request line — the fast path's
    replacement for building an intermediate JSON tree.

    The scanner recognizes a {e strict subset} of the server's JSONL
    grammar: exactly one flat object whose keys and string values contain
    no escape sequences or control characters, and whose numbers have a
    conservative shape [float_of_string] always accepts.  Every line the
    scanner accepts, {!Serve.Jsonl.of_string} parses to the same members;
    every line outside the subset (nested values such as [p4lite]
    programs, escaped strings, malformed text) is reported as such and
    the caller falls back to the full parser.  Spans are [(offset, len)]
    pairs into the original line, so extracting a member allocates
    nothing beyond the pair. *)

(** Is the line inside the scanner's subset? *)
val simple_object : string -> bool

(** Raw-value span of the first depth-1 member named [key]; [None] when
    the member is absent {e or} the line is outside the subset. *)
val member : string -> string -> (int * int) option

(** Do the raw bytes of the span equal [lit] (e.g. ["\"analyze\""])? *)
val span_is : string -> int * int -> string -> bool

(** Contents span of a quoted string span (drops the quotes). *)
val string_contents : string -> int * int -> (int * int) option

(** Would the raw token survive a parse/print round-trip byte-for-byte
    ([Jsonl.to_string (Jsonl.of_string raw)] = [raw])?  True for simple
    strings, [true]/[false]/[null], and plain integers of at most 15
    digits without leading zeros.  The fast path only splices such tokens
    verbatim into replies, so its ids render exactly as the slow path
    would render them. *)
val canonical_scalar : string -> int * int -> bool
