(** Non-allocating request-line scanner (see scan.mli). *)

(* The fast path must never accept a line the full parser would reject,
   or reject-to-slow-path differently than [Jsonl.of_string] would — the
   two routes answer byte-identically only if they agree on what a
   request means.  So the scanner recognizes a *strict subset* of the
   JSONL grammar: one flat object whose keys and string values contain no
   escapes and whose numbers use a conservative charwise shape that
   [float_of_string] always accepts.  Anything else — nested [p4lite]
   programs, escaped strings, exotic numbers, malformed text — answers
   [false] / [None] and the caller takes the slow path. *)

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'
let is_digit c = c >= '0' && c <= '9'

let skip_ws s n i =
  let i = ref i in
  while !i < n && is_ws s.[!i] do
    incr i
  done;
  !i

(* [i] just after the opening quote of a *simple* string: no backslash,
   no control chars.  Returns the index of the closing quote, or -1. *)
let simple_string_end s n i =
  let i = ref i in
  let bad = ref false in
  while (not !bad) && !i < n && s.[!i] <> '"' do
    if s.[!i] = '\\' || Char.code s.[!i] < 0x20 then bad := true else incr i
  done;
  if !bad || !i >= n then -1 else !i

(* strict number: -?digits(.digits)?([eE][+-]?digits)? — a subset of what
   [float_of_string] accepts.  Returns the index past the number, or -1. *)
let number_end s n i =
  let i = ref i in
  if !i < n && s.[!i] = '-' then incr i;
  let d0 = !i in
  while !i < n && is_digit s.[!i] do
    incr i
  done;
  if !i = d0 then -1
  else begin
    (if !i < n && s.[!i] = '.' then begin
       incr i;
       let d1 = !i in
       while !i < n && is_digit s.[!i] do
         incr i
       done;
       if !i = d1 then i := -1
     end);
    if !i >= 0 && !i < n && (s.[!i] = 'e' || s.[!i] = 'E') then begin
      incr i;
      if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i;
      let d2 = !i in
      while !i < n && is_digit s.[!i] do
        incr i
      done;
      if !i = d2 then i := -1
    end;
    !i
  end

let literal_end s n i word =
  let l = String.length word in
  if i + l <= n && String.sub s i l = word then i + l else -1

(* Span of one simple value starting at [i]; -1 if not simple. *)
let value_end s n i =
  if i >= n then -1
  else
    match s.[i] with
    | '"' ->
      let stop = simple_string_end s n (i + 1) in
      if stop < 0 then -1 else stop + 1
    | 't' -> literal_end s n i "true"
    | 'f' -> literal_end s n i "false"
    | 'n' -> literal_end s n i "null"
    | '-' | '0' .. '9' -> number_end s n i
    | _ -> -1

(* Walk the flat-object grammar; [f key_off key_len val_off val_len] per
   member.  Returns true iff the whole line matches the subset. *)
let walk s f =
  let n = String.length s in
  let i = skip_ws s n 0 in
  if i >= n || s.[i] <> '{' then false
  else begin
    let i = ref (skip_ws s n (i + 1)) in
    let ok = ref true in
    if !i < n && s.[!i] = '}' then incr i
    else begin
      let continue = ref true in
      while !ok && !continue do
        (* key *)
        if !i >= n || s.[!i] <> '"' then ok := false
        else begin
          let koff = !i + 1 in
          let kend = simple_string_end s n koff in
          if kend < 0 then ok := false
          else begin
            i := skip_ws s n (kend + 1);
            if !i >= n || s.[!i] <> ':' then ok := false
            else begin
              i := skip_ws s n (!i + 1);
              let voff = !i in
              let vend = value_end s n voff in
              if vend < 0 then ok := false
              else begin
                f koff (kend - koff) voff (vend - voff);
                i := skip_ws s n vend;
                if !i < n && s.[!i] = ',' then i := skip_ws s n (!i + 1)
                else if !i < n && s.[!i] = '}' then begin
                  incr i;
                  continue := false
                end
                else ok := false
              end
            end
          end
        end
      done
    end;
    !ok && skip_ws s n !i = n
  end

let simple_object s = walk s (fun _ _ _ _ -> ())

let key_matches s off len key = len = String.length key && String.sub s off len = key

let member s key =
  let found = ref None in
  let ok =
    walk s (fun koff klen voff vlen ->
        if !found = None && key_matches s koff klen key then found := Some (voff, vlen))
  in
  if ok then !found else None

let span_is s (off, len) lit =
  len = String.length lit && String.sub s off len = lit

let string_contents s (off, len) =
  if len >= 2 && s.[off] = '"' && s.[off + len - 1] = '"' then Some (off + 1, len - 2) else None

(* Would [Jsonl.to_string (parse span)] reproduce the raw bytes?  Simple
   strings and the literals round-trip by construction; numbers only when
   they are plain integers short enough that float -> "%.0f" is exact. *)
let canonical_scalar s (off, len) =
  if len = 0 then false
  else
    match s.[off] with
    | '"' -> s.[off + len - 1] = '"' && len >= 2
    | 't' -> span_is s (off, len) "true"
    | 'f' -> span_is s (off, len) "false"
    | 'n' -> span_is s (off, len) "null"
    | '-' | '0' .. '9' ->
      let doff = if s.[off] = '-' then off + 1 else off in
      let dlen = len - (doff - off) in
      dlen > 0 && dlen <= 15
      && (s.[doff] <> '0' || dlen = 1)
      &&
      let all = ref true in
      for k = doff to off + len - 1 do
        if not (is_digit s.[k]) then all := false
      done;
      !all
    | _ -> false
