(** Pre-rendered flow-entry replies (see entry.mli). *)

(* Same escaping as [Serve.Jsonl.add_escaped]; the byte-equality tests
   between fast-path and slow-path replies pin the two together. *)
let add_escaped b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

type t = {
  nf : string;
  workload : string;
  report : string;
  mid : string;  (** pre-escaped [,"nf":...,"workload":...] segment *)
  report_json : string;  (** pre-escaped report, quotes included *)
  pred_compute : float;
  pred_memory : float;
}

let make ?(pred_compute = 0.0) ?(pred_memory = 0.0) ~nf ~workload ~report () =
  let b = Buffer.create (String.length nf + String.length workload + 32) in
  Buffer.add_string b ",\"nf\":\"";
  add_escaped b nf;
  Buffer.add_string b "\",\"workload\":\"";
  add_escaped b workload;
  Buffer.add_char b '"';
  let mid = Buffer.contents b in
  let rb = Buffer.create (String.length report + 16) in
  Buffer.add_char rb '"';
  add_escaped rb report;
  Buffer.add_char rb '"';
  { nf; workload; report; mid; report_json = Buffer.contents rb; pred_compute; pred_memory }

let nf t = t.nf
let workload t = t.workload
let report t = t.report
let pred_compute t = t.pred_compute
let pred_memory t = t.pred_memory

let render_tail b t ~cached ~path =
  Buffer.add_string b t.mid;
  Buffer.add_string b (if cached then ",\"cached\":true,\"path\":\"" else ",\"cached\":false,\"path\":\"");
  Buffer.add_string b path;
  Buffer.add_string b "\",\"report\":";
  Buffer.add_string b t.report_json;
  Buffer.add_char b '}'

let render_into b t ~id_src ~id_off ~id_len ~trace_src ~trace_off ~trace_len ~cached ~path =
  Buffer.add_string b "{\"id\":";
  if id_len = 0 then Buffer.add_string b "null"
  else Buffer.add_substring b id_src id_off id_len;
  Buffer.add_string b ",\"ok\":true,\"trace_id\":\"";
  Buffer.add_substring b trace_src trace_off trace_len;
  Buffer.add_char b '"';
  render_tail b t ~cached ~path

let render t ~id ~trace ~cached ~path =
  let b = Buffer.create (String.length t.report_json + String.length t.mid + 96) in
  Buffer.add_string b "{\"id\":";
  Buffer.add_string b (if id = "" then "null" else id);
  Buffer.add_string b ",\"ok\":true,\"trace_id\":\"";
  add_escaped b trace;
  Buffer.add_char b '"';
  render_tail b t ~cached ~path;
  Buffer.contents b
