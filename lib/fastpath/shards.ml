(** Sharded flow table (see shards.mli). *)

(* One shard is the stamp-LRU idiom of [Serve.Lru], guarded by its own
   mutex: [find] promotes by bumping a per-shard logical clock, eviction
   drops the minimum stamp.  Keys are spread by FNV-1a over the key
   string — a pure function of the bytes, so shard assignment never
   depends on CLARA_JOBS, domain count or insertion order. *)

type 'a entry = { value : 'a; mutable stamp : int }

type 'a shard = {
  lock : Mutex.t;
  table : (string, 'a entry) Hashtbl.t;
  cap : int;
  mutable tick : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_installs : int;
  mutable s_evictions : int;
  occupancy : Obs.Metrics.gauge;
}

type 'a t = { shards : 'a shard array }

let m_hits =
  Obs.Metrics.counter ~help:"Flow-table lookups answered from an installed entry"
    "clara_fastpath_hits_total"

let m_misses =
  Obs.Metrics.counter ~help:"Flow-table lookups that fell through to the slow path"
    "clara_fastpath_misses_total"

let m_installs =
  Obs.Metrics.counter ~help:"Flow entries installed by the slow path" "clara_slowpath_installs_total"

let m_evictions =
  Obs.Metrics.counter ~help:"Flow entries evicted under capacity pressure"
    "clara_fastpath_evictions_total"

let occupancy_gauge i =
  Obs.Metrics.gauge ~help:"Installed flow entries per shard"
    ~labels:[ ("shard", string_of_int i) ]
    "clara_fastpath_shard_occupancy"

let create ?(shards = 8) ~capacity () =
  if shards < 1 then invalid_arg "Fastpath.Shards.create: shards must be >= 1";
  if capacity < 0 then invalid_arg "Fastpath.Shards.create: capacity must be >= 0";
  (* the total is split across shards, rounding the per-shard bound up so
     a small capacity still caches (total may round up to [shards]) *)
  let per_shard = if capacity = 0 then 0 else max 1 ((capacity + shards - 1) / shards) in
  { shards =
      Array.init shards (fun i ->
          { lock = Mutex.create ();
            table = Hashtbl.create (max 8 per_shard);
            cap = per_shard;
            tick = 0;
            s_hits = 0;
            s_misses = 0;
            s_installs = 0;
            s_evictions = 0;
            occupancy = occupancy_gauge i }) }

let shard_count t = Array.length t.shards
let capacity t = Array.fold_left (fun acc s -> acc + s.cap) 0 t.shards

(* FNV-1a, 64-bit, over the key bytes. *)
let hash_key key =
  let h = ref (-3750763034362895579L) (* 0xCBF29CE484222325 *) in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    key;
  Int64.to_int !h land max_int

let shard_of_key t key = hash_key key mod Array.length t.shards

let with_shard s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let lookup s key ~count_miss =
  match Hashtbl.find_opt s.table key with
  | Some e ->
    s.tick <- s.tick + 1;
    e.stamp <- s.tick;
    s.s_hits <- s.s_hits + 1;
    Obs.Metrics.inc m_hits;
    Some e.value
  | None ->
    if count_miss then begin
      s.s_misses <- s.s_misses + 1;
      Obs.Metrics.inc m_misses
    end;
    None

let find t key =
  let s = t.shards.(shard_of_key t key) in
  with_shard s (fun () -> lookup s key ~count_miss:true)

let probe t key =
  let s = t.shards.(shard_of_key t key) in
  with_shard s (fun () -> lookup s key ~count_miss:false)

let evict_oldest s =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, stamp) when stamp <= e.stamp -> acc
        | _ -> Some (key, e.stamp))
      s.table None
  in
  match victim with
  | Some (key, _) ->
    Hashtbl.remove s.table key;
    s.s_evictions <- s.s_evictions + 1;
    Obs.Metrics.inc m_evictions
  | None -> ()

let install t key value =
  let s = t.shards.(shard_of_key t key) in
  if s.cap > 0 then
    with_shard s (fun () ->
        s.tick <- s.tick + 1;
        (match Hashtbl.find_opt s.table key with
        | Some _ -> Hashtbl.replace s.table key { value; stamp = s.tick }
        | None ->
          Hashtbl.add s.table key { value; stamp = s.tick };
          s.s_installs <- s.s_installs + 1;
          Obs.Metrics.inc m_installs);
        while Hashtbl.length s.table > s.cap do
          evict_oldest s
        done;
        Obs.Metrics.set_gauge s.occupancy (float_of_int (Hashtbl.length s.table)))

let fold_shards t f = Array.fold_left (fun acc s -> acc + with_shard s (fun () -> f s)) 0 t.shards
let length t = fold_shards t (fun s -> Hashtbl.length s.table)
let shard_length t i = with_shard t.shards.(i) (fun () -> Hashtbl.length t.shards.(i).table)
let hits t = fold_shards t (fun s -> s.s_hits)
let misses t = fold_shards t (fun s -> s.s_misses)
let installs t = fold_shards t (fun s -> s.s_installs)
let evictions t = fold_shards t (fun s -> s.s_evictions)
