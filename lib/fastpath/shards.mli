(** Sharded, mutex-per-shard flow table — the serving layer's replacement
    for a single global LRU.

    Keys spread over [N] shards by FNV-1a over the key string: shard
    assignment is a pure function of the bytes, identical for any
    [CLARA_JOBS] value, domain count or insertion order.  Each shard is
    an independent stamp-LRU (find promotes, install evicts the
    least-recently-used entry of {e that shard} once it exceeds its
    per-shard bound) behind its own mutex, so lookups on different shards
    never contend.

    The table registers {!Obs.Metrics} instruments once per process:
    [clara_fastpath_hits_total] / [clara_fastpath_misses_total] (lookup
    outcomes), [clara_slowpath_installs_total] (entries installed by the
    slow path), [clara_fastpath_evictions_total], and per-shard occupancy
    gauges [clara_fastpath_shard_occupancy{shard="i"}]. *)

type 'a t

(** [create ~shards ~capacity ()] — [capacity] is the total entry budget,
    split evenly across [shards] (rounded up to at least one entry per
    shard, so the effective total may round up to [shards]); [capacity 0]
    disables caching entirely (every shard degenerate: finds miss,
    installs are dropped).
    @raise Invalid_argument if [shards < 1] or [capacity < 0]. *)
val create : ?shards:int -> capacity:int -> unit -> 'a t

val shard_count : _ t -> int

(** Sum of per-shard bounds (0 when caching is disabled). *)
val capacity : _ t -> int

(** The shard [key] lives in — stable across processes and job counts. *)
val shard_of_key : _ t -> string -> int

(** Lookup counted as a hit or a miss (the slow path's view). *)
val find : 'a t -> string -> 'a option

(** Lookup counting only hits — the fast path probes with this and lets
    the slow path count the miss when it falls through, so each request
    line counts at most one lookup outcome. *)
val probe : 'a t -> string -> 'a option

(** Insert (or refresh) an entry, evicting within the key's shard while
    it is over its bound.  No-op when caching is disabled. *)
val install : 'a t -> string -> 'a -> unit

val length : _ t -> int
val shard_length : _ t -> int -> int
val hits : _ t -> int
val misses : _ t -> int
val installs : _ t -> int
val evictions : _ t -> int
