(** Lowering of NF elements to the LLVM-like IR (§3.1 program preparation).

    The translation mimics `clang -O0` on a Click element body:

    - named locals become stack slots accessed through stateless
      loads/stores (the NIC compiler later register-allocates them away);
    - sub-32-bit header/global reads are widened with [zext], narrow stores
      with [trunc], matching C integer promotion;
    - framework header accessors ([ip_header] etc.) are materialized as one
      API call per protocol per handler invocation;
    - data-structure operations become framework API calls
      ([map_find.<name>], ...), which Clara later replaces by reverse-ported
      implementations (§3.3);
    - subroutines are inlined (§3.1);
    - each IR block records the source statement id that leads it, so the
      host interpreter's per-statement profile yields per-block execution
      counts.  Loop header blocks use [src_sid = -(sid + 1)], resolved
      against the interpreter's condition-evaluation counters; the entry
      block uses [src_sid = 0] (executed once per packet). *)

open Nf_lang
open Nf_ir

(** The builder operations lowering needs.  Lowering is a functor over
    this signature so the retained pre-optimization builder
    ({!Nf_ir.Builder_reference}) can drive the identical translation —
    the baseline `bench/main.exe parallel` times the flat builder
    against. *)
module type BUILDER = sig
  type t

  val create : string -> t
  val emit_value : t -> op:Ir.op -> args:Ir.operand list -> ty:Ir.typ -> annot:Ir.annot -> int
  val emit_void : t -> op:Ir.op -> args:Ir.operand list -> ty:Ir.typ -> annot:Ir.annot -> unit
  val start_block : t -> sid:int -> Ir.block
  val current_bid : t -> int
  val terminated : t -> bool
  val br : t -> int -> unit
  val ret : t -> unit
  val block : t -> int -> Ir.block
  val prev_block : t -> Ir.block option
  val block_terminated : Ir.block -> bool
  val append_terminator : Ir.block -> Ir.instr -> unit
  val finish : t -> Ir.func
end

module Make (B : BUILDER) = struct

type env = {
  b : B.t;
  elt : Ast.element;
  mutable protos_loaded : Ast.proto list;  (** header accessors already called *)
  mutable inline_stack : string list;  (** subroutine cycle detection *)
}

let proto_api = function
  | Ast.Eth -> "eth_header"
  | Ast.Ip -> "ip_header"
  | Ast.Tcp -> "tcp_header"
  | Ast.Udp -> "udp_header"

(** Ensure the framework accessor for [proto] has been invoked; Click code
    conventionally fetches each header pointer once per handler. *)
let ensure_proto env proto =
  if not (List.mem proto env.protos_loaded) then begin
    env.protos_loaded <- proto :: env.protos_loaded;
    let name = proto_api proto in
    ignore
      (B.emit_value env.b ~op:(Ir.Call name) ~args:[ Ir.Payload ] ~ty:Ir.Ptr
         ~annot:(Ir.Api name))
  end

let global_width env name =
  match Ast.find_state env.elt name with
  | Some (Ast.Scalar { width; _ }) -> width
  | Some (Ast.Array { width; _ }) -> width
  | Some (Ast.Map _ | Ast.Vector _) | None -> 32

(** Widen a register holding a value of [width] bits to i32, as C promotes
    narrow integers in expressions. *)
let promote env reg width =
  if width >= 32 then reg
  else
    B.emit_value env.b ~op:Ir.Zext
      ~args:[ Ir.Reg reg ]
      ~ty:(Ir.typ_of_width width)
      ~annot:Ir.Compute

let demote env reg width =
  if width >= 32 then reg
  else
    B.emit_value env.b ~op:Ir.Trunc
      ~args:[ Ir.Reg reg ]
      ~ty:(Ir.typ_of_width width)
      ~annot:Ir.Compute

let binop_ir = function
  | Ast.Add -> Ir.Add
  | Ast.Sub -> Ir.Sub
  | Ast.Mul -> Ir.Mul
  | Ast.BAnd -> Ir.And
  | Ast.BOr -> Ir.Or
  | Ast.BXor -> Ir.Xor
  | Ast.Shl -> Ir.Shl
  | Ast.Shr -> Ir.Lshr

let cmp_ir = function
  | Ast.Eq -> Ir.Ceq
  | Ast.Ne -> Ir.Cne
  | Ast.Lt -> Ir.Clt
  | Ast.Le -> Ir.Cle
  | Ast.Gt -> Ir.Cgt
  | Ast.Ge -> Ir.Cge

(** Lower an expression; the result is always a register holding an i32
    (booleans are materialized as 0/1 via zext). *)
let rec lower_expr env (e : Ast.expr) : int =
  let b = env.b in
  match e with
  | Ast.Int n ->
    (* clang -O0 materializes constants only at use sites; we emit an 'or 0'
       style move so the value lives in a register uniformly. *)
    B.emit_value b ~op:Ir.Or ~args:[ Ir.Imm n; Ir.Imm 0 ] ~ty:Ir.I32 ~annot:Ir.Compute
  | Ast.Local v ->
    B.emit_value b ~op:Ir.Load ~args:[ Ir.Slot v ] ~ty:Ir.I32 ~annot:Ir.Mem_stateless
  | Ast.Global v ->
    let w = global_width env v in
    let r = B.emit_value b ~op:Ir.Load ~args:[ Ir.Global v ] ~ty:(Ir.typ_of_width w) ~annot:(Ir.Mem_stateful v) in
    promote env r w
  | Ast.Hdr f ->
    ensure_proto env (Ast.field_proto f);
    let w = Ast.field_width f in
    let r =
      B.emit_value b ~op:Ir.Load ~args:[ Ir.Hdr (Ast.field_name f) ] ~ty:(Ir.typ_of_width w)
        ~annot:Ir.Mem_packet
    in
    promote env r w
  | Ast.Payload_byte off ->
    let off_r = lower_expr env off in
    let addr =
      B.emit_value b ~op:Ir.Gep ~args:[ Ir.Payload; Ir.Reg off_r ] ~ty:Ir.Ptr ~annot:Ir.Compute
    in
    let r = B.emit_value b ~op:Ir.Load ~args:[ Ir.Reg addr ] ~ty:Ir.I8 ~annot:Ir.Mem_packet in
    promote env r 8
  | Ast.Packet_len ->
    B.emit_value b ~op:(Ir.Call "packet_len") ~args:[ Ir.Payload ] ~ty:Ir.I32
      ~annot:(Ir.Api "packet_len")
  | Ast.Bin (op, x, y) ->
    let xr = lower_expr env x in
    let yr = lower_arg env y in
    B.emit_value b ~op:(binop_ir op) ~args:[ Ir.Reg xr; yr ] ~ty:Ir.I32 ~annot:Ir.Compute
  | Ast.Cmp (op, x, y) ->
    let r = lower_cond env (Ast.Cmp (op, x, y)) in
    B.emit_value b ~op:Ir.Zext ~args:[ Ir.Reg r ] ~ty:Ir.I1 ~annot:Ir.Compute
  | Ast.Not x ->
    let xr = lower_expr env x in
    let z =
      B.emit_value b ~op:(Ir.Icmp Ir.Ceq) ~args:[ Ir.Reg xr; Ir.Imm 0 ] ~ty:Ir.I32
        ~annot:Ir.Compute
    in
    B.emit_value b ~op:Ir.Zext ~args:[ Ir.Reg z ] ~ty:Ir.I1 ~annot:Ir.Compute
  | Ast.And_also (x, y) ->
    (* lowered non-short-circuit at -O0 style: both sides evaluated, 'and' of
       truth values *)
    let xr = lower_expr env (Ast.Cmp (Ast.Ne, x, Ast.Int 0)) in
    let yr = lower_expr env (Ast.Cmp (Ast.Ne, y, Ast.Int 0)) in
    B.emit_value b ~op:Ir.And ~args:[ Ir.Reg xr; Ir.Reg yr ] ~ty:Ir.I32 ~annot:Ir.Compute
  | Ast.Or_else (x, y) ->
    let xr = lower_expr env (Ast.Cmp (Ast.Ne, x, Ast.Int 0)) in
    let yr = lower_expr env (Ast.Cmp (Ast.Ne, y, Ast.Int 0)) in
    B.emit_value b ~op:Ir.Or ~args:[ Ir.Reg xr; Ir.Reg yr ] ~ty:Ir.I32 ~annot:Ir.Compute
  | Ast.Arr_get (name, idx) ->
    let idx_r = lower_expr env idx in
    let w = global_width env name in
    let addr =
      B.emit_value b ~op:Ir.Gep ~args:[ Ir.Global name; Ir.Reg idx_r ] ~ty:Ir.Ptr
        ~annot:Ir.Compute
    in
    let r =
      B.emit_value b ~op:Ir.Load ~args:[ Ir.Reg addr ] ~ty:(Ir.typ_of_width w)
        ~annot:(Ir.Mem_stateful name)
    in
    promote env r w
  | Ast.Vec_len name ->
    B.emit_value b ~op:(Ir.Call ("vec_len." ^ name)) ~args:[ Ir.Global name ] ~ty:Ir.I32
      ~annot:(Ir.Api "vec_len")
  | Ast.Api_expr (name, args) ->
    let arg_rs = List.map (fun a -> Ir.Reg (lower_expr env a)) args in
    B.emit_value b ~op:(Ir.Call name) ~args:arg_rs ~ty:Ir.I32 ~annot:(Ir.Api name)

(** Lower an operand position: small literals stay immediates (as in LLVM
    textual IR, e.g. [add i32 %x, 4]). *)
and lower_arg env (e : Ast.expr) : Ir.operand =
  match e with Ast.Int n -> Ir.Imm n | _ -> Ir.Reg (lower_expr env e)

(** Lower a boolean condition to an i1 register. *)
and lower_cond env (e : Ast.expr) : int =
  let b = env.b in
  match e with
  | Ast.Cmp (op, x, y) ->
    let xr = lower_expr env x in
    let yr = lower_arg env y in
    B.emit_value b ~op:(Ir.Icmp (cmp_ir op)) ~args:[ Ir.Reg xr; yr ] ~ty:Ir.I32
      ~annot:Ir.Compute
  | Ast.Not x ->
    let xr = lower_expr env x in
    B.emit_value b ~op:(Ir.Icmp Ir.Ceq) ~args:[ Ir.Reg xr; Ir.Imm 0 ] ~ty:Ir.I32
      ~annot:Ir.Compute
  | Ast.And_also _ | Ast.Or_else _ | Ast.Int _ | Ast.Local _ | Ast.Global _ | Ast.Hdr _
  | Ast.Payload_byte _ | Ast.Packet_len | Ast.Bin _ | Ast.Arr_get _ | Ast.Vec_len _
  | Ast.Api_expr _ ->
    let r = lower_expr env e in
    B.emit_value b ~op:(Ir.Icmp Ir.Cne) ~args:[ Ir.Reg r; Ir.Imm 0 ] ~ty:Ir.I32
      ~annot:Ir.Compute

let store_local env v reg =
  B.emit_void env.b ~op:Ir.Store ~args:[ Ir.Reg reg; Ir.Slot v ] ~ty:Ir.I32
    ~annot:Ir.Mem_stateless

let data_call env ~name ~args ~ret =
  let annot_name =
    (* map_find.tbl -> map_find for API classification *)
    match String.index_opt name '.' with Some i -> String.sub name 0 i | None -> name
  in
  if ret then
    Some (B.emit_value env.b ~op:(Ir.Call name) ~args ~ty:Ir.I32 ~annot:(Ir.Api annot_name))
  else begin
    B.emit_void env.b ~op:(Ir.Call name) ~args ~ty:Ir.I32 ~annot:(Ir.Api annot_name);
    None
  end

(** Lower a statement list.  [next_sid] is the sid of the statement that
    will execute after this list completes, used to attribute join blocks. *)
let rec lower_stmts env (stmts : Ast.stmt list) ~(next_sid : int) =
  match stmts with
  | [] -> ()
  | s :: rest ->
    let following = match rest with r :: _ -> r.Ast.sid | [] -> next_sid in
    lower_stmt env s ~next_sid:following;
    lower_stmts env rest ~next_sid

and lower_stmt env (s : Ast.stmt) ~(next_sid : int) =
  let b = env.b in
  match s.node with
  | Ast.Let (v, e) ->
    let r = lower_expr env e in
    store_local env v r
  | Ast.Set_global (v, e) ->
    let r = lower_expr env e in
    let w = global_width env v in
    let r = demote env r w in
    B.emit_void b ~op:Ir.Store ~args:[ Ir.Reg r; Ir.Global v ] ~ty:(Ir.typ_of_width w)
      ~annot:(Ir.Mem_stateful v)
  | Ast.Set_hdr (f, e) ->
    ensure_proto env (Ast.field_proto f);
    let r = lower_expr env e in
    let w = Ast.field_width f in
    let r = demote env r w in
    B.emit_void b ~op:Ir.Store ~args:[ Ir.Reg r; Ir.Hdr (Ast.field_name f) ]
      ~ty:(Ir.typ_of_width w) ~annot:Ir.Mem_packet
  | Ast.Set_payload (off, v) ->
    let off_r = lower_expr env off in
    let addr =
      B.emit_value b ~op:Ir.Gep ~args:[ Ir.Payload; Ir.Reg off_r ] ~ty:Ir.Ptr ~annot:Ir.Compute
    in
    let vr = lower_expr env v in
    let vr = demote env vr 8 in
    B.emit_void b ~op:Ir.Store ~args:[ Ir.Reg vr; Ir.Reg addr ] ~ty:Ir.I8 ~annot:Ir.Mem_packet
  | Ast.Arr_set (name, idx, v) ->
    let idx_r = lower_expr env idx in
    let addr =
      B.emit_value b ~op:Ir.Gep ~args:[ Ir.Global name; Ir.Reg idx_r ] ~ty:Ir.Ptr
        ~annot:Ir.Compute
    in
    let w = global_width env name in
    let vr = lower_expr env v in
    let vr = demote env vr w in
    B.emit_void b ~op:Ir.Store ~args:[ Ir.Reg vr; Ir.Reg addr ] ~ty:(Ir.typ_of_width w)
      ~annot:(Ir.Mem_stateful name)
  | Ast.Map_find (map, key, dst) ->
    let args = Ir.Global map :: List.map (fun k -> Ir.Reg (lower_expr env k)) key in
    (match data_call env ~name:("map_find." ^ map) ~args ~ret:true with
    | Some r -> store_local env dst r
    | None -> assert false)
  | Ast.Map_read (map, field, dst) ->
    (match
       data_call env ~name:("map_read." ^ map ^ "." ^ field) ~args:[ Ir.Global map ] ~ret:true
     with
    | Some r -> store_local env dst r
    | None -> assert false)
  | Ast.Map_write (map, field, e) ->
    let r = lower_expr env e in
    ignore
      (data_call env ~name:("map_write." ^ map ^ "." ^ field)
         ~args:[ Ir.Global map; Ir.Reg r ] ~ret:false)
  | Ast.Map_insert (map, key, vals) ->
    let args =
      Ir.Global map :: List.map (fun e -> Ir.Reg (lower_expr env e)) (key @ vals)
    in
    ignore (data_call env ~name:("map_insert." ^ map) ~args ~ret:false)
  | Ast.Map_erase map ->
    ignore (data_call env ~name:("map_erase." ^ map) ~args:[ Ir.Global map ] ~ret:false)
  | Ast.Vec_append (name, e) ->
    let r = lower_expr env e in
    ignore
      (data_call env ~name:("vec_append." ^ name) ~args:[ Ir.Global name; Ir.Reg r ]
         ~ret:false)
  | Ast.Vec_get (name, idx, dst) ->
    let ir = lower_expr env idx in
    (match
       data_call env ~name:("vec_get." ^ name) ~args:[ Ir.Global name; Ir.Reg ir ] ~ret:true
     with
    | Some r -> store_local env dst r
    | None -> assert false)
  | Ast.Vec_set (name, idx, e) ->
    let ir = lower_expr env idx in
    let vr = lower_expr env e in
    ignore
      (data_call env ~name:("vec_set." ^ name)
         ~args:[ Ir.Global name; Ir.Reg ir; Ir.Reg vr ]
         ~ret:false)
  | Ast.If (c, then_s, else_s) ->
    let cond = lower_cond env c in
    let cond_bid = B.current_bid b in
    let then_sid = match then_s with t :: _ -> t.Ast.sid | [] -> next_sid in
    let then_b = B.start_block b ~sid:then_sid in
    lower_stmts env then_s ~next_sid;
    let then_end = B.current_bid b in
    let then_terminated = B.terminated b in
    let else_info =
      match else_s with
      | [] -> None
      | e :: _ ->
        let else_b = B.start_block b ~sid:e.Ast.sid in
        lower_stmts env else_s ~next_sid;
        Some (else_b.Ir.bid, B.current_bid b, B.terminated b)
    in
    let join = B.start_block b ~sid:next_sid in
    (* Patch branches now that all block ids are known. *)
    let patch_br src_bid target =
      let blk = B.block b src_bid in
      if not (B.block_terminated blk) then
        B.append_terminator blk
          { Ir.res = None; op = Ir.Br target; args = []; ty = Ir.I32; annot = Ir.Control }
    in
    (match else_info with
    | None ->
      B.append_terminator (B.block b cond_bid)
        { Ir.res = None;
          op = Ir.Cond_br (then_b.Ir.bid, join.Ir.bid);
          args = [ Ir.Reg cond ];
          ty = Ir.I1;
          annot = Ir.Control };
      if not then_terminated then patch_br then_end join.Ir.bid
    | Some (else_bid, else_end, else_terminated) ->
      B.append_terminator (B.block b cond_bid)
        { Ir.res = None;
          op = Ir.Cond_br (then_b.Ir.bid, else_bid);
          args = [ Ir.Reg cond ];
          ty = Ir.I1;
          annot = Ir.Control };
      if not then_terminated then patch_br then_end join.Ir.bid;
      if not else_terminated then patch_br else_end join.Ir.bid)
  | Ast.While (c, body) ->
    (* loop header carries the condition; encoded as -(sid+1) so the cost
       model resolves its execution count from cond_counts *)
    let header = B.start_block b ~sid:(-(s.sid + 1)) in
    (* fall into the header from the preceding block *)
    patch_prev_br env header.Ir.bid;
    let cond = lower_cond env c in
    let header_end = B.current_bid b in
    let body_sid = match body with x :: _ -> x.Ast.sid | [] -> s.sid in
    let body_b = B.start_block b ~sid:body_sid in
    lower_stmts env body ~next_sid:(-(s.sid + 1));
    B.br b header.Ir.bid;
    let exit = B.start_block b ~sid:next_sid in
    let blk = B.block b header_end in
    if not (B.block_terminated blk) then
      B.append_terminator blk
        { Ir.res = None;
          op = Ir.Cond_br (body_b.Ir.bid, exit.Ir.bid);
          args = [ Ir.Reg cond ];
          ty = Ir.I1;
          annot = Ir.Control }
  | Ast.For (v, lo, hi, body) ->
    (* for (v = lo; v < hi; v++) body — lowered as init + while *)
    let lo_r = lower_expr env lo in
    store_local env v lo_r;
    let hi_r = lower_expr env hi in
    store_local env ("__hi." ^ v) hi_r;
    let header = B.start_block b ~sid:(-(s.sid + 1)) in
    patch_prev_br env header.Ir.bid;
    let cur =
      B.emit_value b ~op:Ir.Load ~args:[ Ir.Slot v ] ~ty:Ir.I32 ~annot:Ir.Mem_stateless
    in
    let bound =
      B.emit_value b ~op:Ir.Load ~args:[ Ir.Slot ("__hi." ^ v) ] ~ty:Ir.I32
        ~annot:Ir.Mem_stateless
    in
    let cond =
      B.emit_value b ~op:(Ir.Icmp Ir.Clt) ~args:[ Ir.Reg cur; Ir.Reg bound ] ~ty:Ir.I32
        ~annot:Ir.Compute
    in
    let header_end = B.current_bid b in
    let body_sid = match body with x :: _ -> x.Ast.sid | [] -> s.sid in
    let body_b = B.start_block b ~sid:body_sid in
    lower_stmts env body ~next_sid:(-(s.sid + 1));
    (* increment *)
    let cur2 =
      B.emit_value b ~op:Ir.Load ~args:[ Ir.Slot v ] ~ty:Ir.I32 ~annot:Ir.Mem_stateless
    in
    let inc =
      B.emit_value b ~op:Ir.Add ~args:[ Ir.Reg cur2; Ir.Imm 1 ] ~ty:Ir.I32 ~annot:Ir.Compute
    in
    store_local env v inc;
    B.br b header.Ir.bid;
    let exit = B.start_block b ~sid:next_sid in
    let blk = B.block b header_end in
    if not (B.block_terminated blk) then
      B.append_terminator blk
        { Ir.res = None;
          op = Ir.Cond_br (body_b.Ir.bid, exit.Ir.bid);
          args = [ Ir.Reg cond ];
          ty = Ir.I1;
          annot = Ir.Control }
  | Ast.Api_stmt (name, args) ->
    let arg_rs = List.map (fun a -> Ir.Reg (lower_expr env a)) args in
    B.emit_void b ~op:(Ir.Call name) ~args:arg_rs ~ty:Ir.I32 ~annot:(Ir.Api name)
  | Ast.Emit port ->
    B.emit_void b ~op:(Ir.Call "send") ~args:[ Ir.Imm port ] ~ty:Ir.I32 ~annot:(Ir.Api "send");
    B.ret b
  | Ast.Drop ->
    B.emit_void b ~op:(Ir.Call "kill") ~args:[] ~ty:Ir.I32 ~annot:(Ir.Api "kill");
    B.ret b
  | Ast.Call_sub name ->
    if List.mem name env.inline_stack then
      failwith (Printf.sprintf "Lower: recursive subroutine %s in %s" name env.elt.name);
    (match List.assoc_opt name env.elt.subs with
    | Some body ->
      env.inline_stack <- name :: env.inline_stack;
      lower_stmts env body ~next_sid;
      env.inline_stack <- List.tl env.inline_stack
    | None -> failwith (Printf.sprintf "Lower: unknown subroutine %s in %s" name env.elt.name))
  | Ast.Return -> B.ret b

(** If the previous block does not yet branch anywhere, fall through into
    [target].  Used when opening loop headers. *)
and patch_prev_br env target =
  match B.prev_block env.b with
  | Some prev ->
    if not (B.block_terminated prev) then
      B.append_terminator prev
        { Ir.res = None; op = Ir.Br target; args = []; ty = Ir.I32; annot = Ir.Control }
  | None -> ()

(** Lower a full element into one IR function (handler with subroutines
    inlined). *)
let lower_element (elt : Ast.element) : Ir.func =
  let b = B.create elt.name in
  let env = { b; elt; protos_loaded = []; inline_stack = [] } in
  lower_stmts env elt.handler ~next_sid:(-1);
  B.finish b

(** The set of framework API calls appearing in a function — the paper's
    GETAPI step feeding reverse porting. *)
let api_set (f : Ir.func) =
  Ir.fold_instrs
    (fun acc (i : Ir.instr) ->
      match (i.Ir.op, i.Ir.annot) with
      | Ir.Call name, Ir.Api _ -> name :: acc
      | _ -> acc)
    [] f
  |> List.sort_uniq compare

end

include Make (Builder)

(** Lowering through the retained pre-optimization builder: the same
    translation, paying the quadratic block appends the flat builder
    removed.  Produces bit-identical IR. *)
module Reference = Make (Builder_reference)
