(** Lowering of NF elements to the LLVM-like IR (§3.1 program preparation),
    mimicking `clang -O0`: named locals become stack slots, narrow reads
    widen through [zext], framework header accessors materialize once per
    protocol per handler, data-structure operations become framework API
    calls, subroutines are inlined, and every IR block records the source
    statement that leads it (so interpreter profiles yield per-block
    execution counts). *)

(** Lower a full element into one IR function.
    @raise Failure on recursive or unknown subroutines. *)
val lower_element : Nf_lang.Ast.element -> Nf_ir.Ir.func

(** The set of framework API calls appearing in a lowered function —
    the paper's GETAPI step feeding reverse porting. *)
val api_set : Nf_ir.Ir.func -> string list

(** The same translation driven through the retained pre-optimization
    builder ({!Nf_ir.Builder_reference}): bit-identical IR, quadratic
    block appends.  The baseline `bench/main.exe parallel` times
    {!lower_element} against. *)
module Reference : sig
  val lower_element : Nf_lang.Ast.element -> Nf_ir.Ir.func
end
