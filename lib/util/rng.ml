(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that every
    experiment is reproducible from a single integer seed.  The generator is
    splitmix64: a small, fast, well-tested mixing function whose streams can
    be forked with [split] without correlation between parent and child. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(** Advance the state and return the next mixed 64-bit value. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Fork an independent generator; the parent stream is advanced once. *)
let split t =
  let seed = next_int64 t in
  { state = Int64.mul seed 0xDA942042E4DD58B5L }

(** Uniform integer in [\[0, bound)].  [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the Int64 -> int conversion never wraps negative *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

(** Fill [dst.(pos .. pos+len-1)] with the exact byte sequence that [len]
    successive [int t 256] calls would produce (one state advance per
    byte).  The mix runs on a local state cell so the hot loop touches the
    record field once at entry and once at exit; for the non-negative
    62-bit [v] the [mod 256] of {!int} is [land 255]. *)
let fill_bytes t dst pos len =
  if pos < 0 || len < 0 || pos + len > Bytes.length dst then
    invalid_arg "Rng.fill_bytes: range out of bounds";
  let s = ref t.state in
  for i = pos to pos + len - 1 do
    let st = Int64.add !s golden_gamma in
    s := st;
    let z = Int64.mul (Int64.logxor st (Int64.shift_right_logical st 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let v = Int64.to_int (Int64.shift_right_logical z 2) in
    Bytes.unsafe_set dst i (Char.unsafe_chr (v land 255))
  done;
  t.state <- !s

(** Uniform float in [\[0, 1)]. *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

(** Uniform float in [\[lo, hi)]. *)
let float_range t lo hi = lo +. ((hi -. lo) *. float t)

(** Standard normal via Box-Muller. *)
let gaussian t =
  let u1 = max 1e-12 (float t) in
  let u2 = float t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(** Bernoulli trial with probability [p]. *)
let bernoulli t p = float t < p

(** Pick a uniformly random element of a non-empty list. *)
let choose t items =
  match items with
  | [] -> invalid_arg "Rng.choose: empty list"
  | _ -> List.nth items (int t (List.length items))

(** Pick an index according to non-negative [weights]; at least one weight
    must be strictly positive. *)
let weighted_index t weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  if total <= 0.0 then invalid_arg "Rng.weighted_index: no positive weight";
  let target = float t *. total in
  let rec scan i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0

(** Precomputed cumulative-weight table for repeated weighted draws.
    [cum.(i)] is built by the same left-to-right [acc +. w] accumulation
    as the linear scan in {!weighted_index}, and the lookup uses the same
    [target < cum] predicate, so a draw through the table consumes one
    state advance and returns the exact index the scan would — it is a
    drop-in O(log n) replacement, bit-for-bit. *)
type cdf = { cum : float array }

let cdf_of_weights weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Rng.cdf_of_weights: empty weights";
  let cum = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. weights.(i);
    cum.(i) <- !acc
  done;
  if cum.(n - 1) <= 0.0 then invalid_arg "Rng.weighted_index: no positive weight";
  { cum }

let weighted_index_cdf t { cum } =
  let n = Array.length cum in
  let target = float t *. cum.(n - 1) in
  (* first index in [0, n-2] with target < cum.(i); default n-1 — the same
     answer as the linear scan, found by bisection *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if target < cum.(mid) then hi := mid else lo := mid + 1
  done;
  !lo

(** Pick an element from weighted (weight, value) choices. *)
let weighted_choose t choices =
  let weights = Array.of_list (List.map fst choices) in
  let values = Array.of_list (List.map snd choices) in
  values.(weighted_index t weights)

(** In-place Fisher-Yates shuffle. *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(** Sample [k] distinct indices from [\[0, n)]. *)
let sample_without_replacement t n k =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let arr = Array.init n (fun i -> i) in
  shuffle t arr;
  Array.sub arr 0 k
