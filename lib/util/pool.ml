(** Fixed-size domain pool with deterministic data-parallel combinators.

    OCaml 5 Domains back every hot loop in the repository — cross-validation
    folds, GBDT split search, LSTM batch gradients, dataset synthesis, the
    experiment fan-out.  Two design rules keep the results trustworthy:

    - {b Determinism.}  Work is split into chunks whose boundaries depend
      only on the problem size (never on the worker count), reductions
      combine chunk results in index order, and the serial fallback executes
      the very same chunked algorithm.  A computation therefore produces
      bit-identical floats whether [CLARA_JOBS] is 1, 4, or 64.
    - {b One pool.}  Workers are spawned once, on first use, and parked on a
      condition variable between calls; a parallel region costs two lock
      round-trips, not [num_domains] domain spawns.

    Concurrency scheme: callers enqueue closures under [lock], wake the
    workers, then join the queue themselves (the caller is worker zero).
    Completion is tracked per call with an atomic countdown, so concurrent
    parallel regions from different domains can share the pool.  A task that
    itself enters the pool runs its region serially — nested parallelism
    changes nothing semantically and the flat schedule keeps the pool
    deadlock-free. *)

let default_chunk n = max 1 ((n + 63) / 64)

(* Regions whose estimated total work is below this many microseconds run
   serially: splitting them across domains costs more in wake-ups and
   cache traffic than the parallelism recovers.  The serial path executes
   the identical chunked algorithm, so the cutoff is purely a scheduling
   decision and never changes results. *)
let serial_cutoff_us = 1000.0

(* -- pool metrics (always on; see lib/obs) -- *)

let m_regions = Obs.Metrics.counter ~help:"Parallel regions entered" "clara_pool_regions_total"
let m_tasks = Obs.Metrics.counter ~help:"Pool tasks (chunks) executed" "clara_pool_tasks_total"

let m_serial_regions =
  Obs.Metrics.counter
    ~help:"Regions taken on the serial path (width 1, single task, or below the cost cutoff)"
    "clara_pool_serial_regions_total"

let m_wakeups =
  Obs.Metrics.counter ~help:"Times a parked worker woke from its condition variable"
    "clara_pool_worker_wakeups_total"

let m_wake_tasks =
  Obs.Metrics.counter ~help:"Tasks executed by woken workers (divide by wakeups for tasks/wake)"
    "clara_pool_wake_tasks_total"

let m_chunk_items =
  Obs.Metrics.histogram ~help:"Items per chunk submitted to parallel regions"
    ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 256.0; 1024.0; 4096.0 |]
    "clara_pool_chunk_items"

let m_queue =
  Obs.Metrics.gauge ~help:"Tasks enqueued by the most recent parallel region" "clara_pool_queue_depth"

let m_size = Obs.Metrics.gauge ~help:"Effective job count (Pool.size)" "clara_pool_size"

let m_util =
  Obs.Metrics.gauge ~help:"Busy fraction of the last parallel region (busy / wall * jobs)"
    "clara_pool_utilization"

let busy_counter d =
  Obs.Metrics.counter ~help:"Seconds spent executing pool tasks"
    ~labels:[ ("domain", string_of_int d) ]
    "clara_pool_busy_seconds_total"

let idle_counter d =
  Obs.Metrics.counter ~help:"Seconds workers spent parked waiting for work"
    ~labels:[ ("domain", string_of_int d) ]
    "clara_pool_idle_seconds_total"

(* -- job-count policy -- *)

let env_jobs () =
  match Sys.getenv_opt "CLARA_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> Some n
     | _ -> None)
  | None -> None

(* 0 = not yet resolved; resolved lazily so tests can override first *)
let jobs_setting = Atomic.make 0

let jobs () =
  let j = Atomic.get jobs_setting in
  if j > 0 then j
  else begin
    let j =
      match env_jobs () with Some n -> n | None -> Domain.recommended_domain_count ()
    in
    Atomic.set jobs_setting j;
    j
  end

let set_jobs n =
  if n < 1 then invalid_arg "Pool.set_jobs: need >= 1 job";
  Atomic.set jobs_setting n

(* Running more domains than cores never helps a compute-bound region and
   actively hurts (the domains share one core and the major GC makes them
   rendezvous), so the effective width is clamped to the machine.  Tests
   that want real multi-domain schedules on small machines opt out with
   CLARA_OVERSUBSCRIBE=1; results are identical either way. *)
let oversubscribe =
  lazy (match Sys.getenv_opt "CLARA_OVERSUBSCRIBE" with Some "1" -> true | _ -> false)

let cores = lazy (Domain.recommended_domain_count ())

let width () =
  let j = jobs () in
  if Lazy.force oversubscribe then j else min j (Lazy.force cores)

(* -- the worker pool -- *)

let lock = Mutex.create ()
let work_available = Condition.create ()
let queue : (unit -> unit) Queue.t = Queue.create ()
let quitting = ref false
let workers : unit Domain.t list ref = ref []
let n_workers = ref 0

(* true while this domain is executing a pool task: nested regions go serial *)
let inside_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(** Effective parallelism of a region started here and now: 1 inside a
    pool task (nested regions run serially), else the core-clamped
    [width ()]. *)
let size () = if Domain.DLS.get inside_task then 1 else width ()

let worker_loop () =
  let rec next () =
    (* called with [lock] held *)
    if !quitting then None
    else
      match Queue.take_opt queue with
      | Some t -> Some t
      | None ->
        let t0 = Obs.Clock.now_s () in
        Condition.wait work_available lock;
        Obs.Metrics.addf (idle_counter (Domain.self () :> int)) (Obs.Clock.now_s () -. t0);
        Obs.Metrics.inc m_wakeups;
        next ()
  in
  let rec loop () =
    Mutex.lock lock;
    let t = next () in
    Mutex.unlock lock;
    match t with
    | None -> ()
    | Some t ->
      t ();
      Obs.Metrics.inc m_wake_tasks;
      loop ()
  in
  loop ()

(* Grow the pool to [target] parked workers (never shrinks: determinism is
   independent of the worker count, so extra workers are harmless). *)
let ensure_workers target =
  if !n_workers < target then begin
    Mutex.lock lock;
    while !n_workers < target do
      incr n_workers;
      workers := Domain.spawn worker_loop :: !workers
    done;
    Mutex.unlock lock
  end

let shutdown () =
  let ws =
    Mutex.lock lock;
    quitting := true;
    Condition.broadcast work_available;
    let ws = !workers in
    workers := [];
    n_workers := 0;
    Mutex.unlock lock;
    ws
  in
  List.iter Domain.join ws;
  quitting := false

let () = at_exit shutdown

(** Run every task, re-raising the lowest-indexed exception once all have
    finished.  The caller participates instead of blocking.
    [serial_hint] forces the serial path (used by the cost model for
    regions too small to be worth waking workers); it is a pure
    scheduling decision, so results are unchanged. *)
let run_tasks ?(serial_hint = false) (tasks : (unit -> unit) array) =
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    Obs.Metrics.inc m_regions;
    Obs.Metrics.add m_tasks n;
    Obs.Metrics.set_gauge m_size (float_of_int (size ()));
    let serial () =
      Obs.Metrics.inc m_serial_regions;
      Array.iteri
        (fun i t ->
          let saved = Domain.DLS.get inside_task in
          Domain.DLS.set inside_task true;
          Fun.protect
            ~finally:(fun () -> Domain.DLS.set inside_task saved)
            (fun () ->
              Obs.Fault.guard ~k:i "pool.task";
              t ()))
        tasks
    in
    if serial_hint || size () <= 1 || n = 1 then serial ()
    else begin
      ensure_workers (width () - 1);
      let region_t0 = Obs.Clock.now_s () in
      let busy_us = Atomic.make 0 in
      let remaining = Atomic.make n in
      let failure : exn option array = Array.make n None in
      let done_lock = Mutex.create () in
      let all_done = Condition.create () in
      (* Fault injection is keyed by chunk index, and the lowest-indexed
         failure is the one re-raised below, so an armed [pool.task] point
         surfaces the same exception whether the chunks ran serially or
         across domains. *)
      let wrap i t () =
        Domain.DLS.set inside_task true;
        let t0 = Obs.Clock.now_s () in
        (try
           Obs.Fault.guard ~k:i "pool.task";
           t ()
         with e -> failure.(i) <- Some e);
        let dt = Obs.Clock.now_s () -. t0 in
        Obs.Metrics.addf (busy_counter (Domain.self () :> int)) dt;
        ignore (Atomic.fetch_and_add busy_us (int_of_float (dt *. 1e6)));
        Domain.DLS.set inside_task false;
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_lock;
          Condition.broadcast all_done;
          Mutex.unlock done_lock
        end
      in
      Obs.Metrics.set_gauge m_queue (float_of_int n);
      Mutex.lock lock;
      Array.iteri (fun i t -> Queue.add (wrap i t) queue) tasks;
      Condition.broadcast work_available;
      Mutex.unlock lock;
      (* help drain the queue; when it runs dry, wait for the stragglers *)
      let rec help () =
        if Atomic.get remaining > 0 then begin
          Mutex.lock lock;
          let t = Queue.take_opt queue in
          Mutex.unlock lock;
          match t with
          | Some t ->
            t ();
            help ()
          | None ->
            Mutex.lock done_lock;
            while Atomic.get remaining > 0 do
              Condition.wait all_done done_lock
            done;
            Mutex.unlock done_lock
        end
      in
      help ();
      let wall = Obs.Clock.now_s () -. region_t0 in
      let busy = float_of_int (Atomic.get busy_us) /. 1e6 in
      Obs.Metrics.set_gauge m_util
        (Float.min 1.0 (busy /. Float.max 1e-9 (wall *. float_of_int (width ()))));
      Obs.Metrics.set_gauge m_queue 0.0;
      Array.iter (function Some e -> raise e | None -> ()) failure
    end
  end

(* -- deterministic chunked combinators -- *)

(** Chunk [[0, n)] into jobs-independent ranges and run [body lo hi] (hi
    exclusive) for each.  Chunk size is [chunk] when given, else
    [max min_chunk (ceil (n / 64))] — both depend only on the problem
    size, never on the job count, so chunk boundaries (and with them
    reduction order and fault-injection keys) are schedule-independent. *)
let chunked_ranges ?chunk ?(min_chunk = 1) n =
  let size =
    match chunk with Some c -> max 1 c | None -> max (max 1 min_chunk) (default_chunk n)
  in
  let n_chunks = (n + size - 1) / size in
  Array.init n_chunks (fun c -> (c * size, min n ((c + 1) * size)))

(* [cost] is the caller's estimate of microseconds per item; a region whose
   total estimated work is under [serial_cutoff_us] is scheduled serially. *)
let too_small_for_parallelism ?cost n =
  match cost with
  | Some c -> float_of_int n *. c < serial_cutoff_us
  | None -> false

let observe_chunks ranges =
  Array.iter (fun (lo, hi) -> Obs.Metrics.observe m_chunk_items (float_of_int (hi - lo))) ranges

let parallel_for ?chunk ?min_chunk ?cost lo hi body =
  let n = hi - lo in
  if n > 0 then begin
    let ranges = chunked_ranges ?chunk ?min_chunk n in
    observe_chunks ranges;
    run_tasks
      ~serial_hint:(too_small_for_parallelism ?cost n)
      (Array.map
         (fun (clo, chi) ->
           fun () ->
             for i = lo + clo to lo + chi - 1 do
               body i
             done)
         ranges)
  end

let parallel_init ?chunk ?min_chunk ?cost n f =
  if n = 0 then [||]
  else begin
    (* Seed the result array with the first element so no Option boxing is
       needed; [f 0] runs on the caller — marked as a task so nested
       regions stay serial — and indices [1, n) fan out.  Chunk boundaries
       over [1, n) still depend only on [n]. *)
    let v0 =
      let saved = Domain.DLS.get inside_task in
      Domain.DLS.set inside_task true;
      Fun.protect ~finally:(fun () -> Domain.DLS.set inside_task saved) (fun () -> f 0)
    in
    let out = Array.make n v0 in
    parallel_for ?chunk ?min_chunk ?cost 1 n (fun i -> out.(i) <- f i);
    out
  end

let parallel_map ?chunk ?min_chunk ?cost f arr =
  parallel_init ?chunk ?min_chunk ?cost (Array.length arr) (fun i -> f arr.(i))

let parallel_mapi ?chunk ?min_chunk ?cost f arr =
  parallel_init ?chunk ?min_chunk ?cost (Array.length arr) (fun i -> f i arr.(i))

let parallel_map_list ?chunk ?min_chunk ?cost f l =
  Array.to_list (parallel_map ?chunk ?min_chunk ?cost f (Array.of_list l))

let parallel_concat_map_list ?chunk ?min_chunk ?cost f l =
  List.concat (parallel_map_list ?chunk ?min_chunk ?cost f l)

(** Ordered reduction of [f 0 ... f (n-1)]: each chunk folds left-to-right,
    chunk results combine left-to-right, so the float-combination order is
    fixed by [n] (and [chunk]) alone.  [n] must be >= 1. *)
let parallel_reduce ?chunk ?min_chunk ?cost ~combine f n =
  if n < 1 then invalid_arg "Pool.parallel_reduce: need n >= 1";
  let ranges = chunked_ranges ?chunk ?min_chunk n in
  let serial_hint = too_small_for_parallelism ?cost n in
  let partials =
    parallel_map ~chunk:1 ?cost:(if serial_hint then Some 0.0 else None)
      (fun (lo, hi) ->
        let acc = ref (f lo) in
        for i = lo + 1 to hi - 1 do
          acc := combine !acc (f i)
        done;
        !acc)
      ranges
  in
  let acc = ref partials.(0) in
  for c = 1 to Array.length partials - 1 do
    acc := combine !acc partials.(c)
  done;
  !acc
