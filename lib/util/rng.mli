(** Deterministic, splittable pseudo-random number generator (splitmix64).
    All randomness in the repository flows through this module so every
    experiment is reproducible from a single integer seed. *)

type t

val create : int -> t

(** Advance and return the next mixed 64-bit value. *)
val next_int64 : t -> int64

(** Fork an independent generator; the parent stream advances once. *)
val split : t -> t

(** Uniform integer in [0, bound).
    @raise Invalid_argument unless bound > 0. *)
val int : t -> int -> int

(** Fill [dst.(pos .. pos+len-1)] with the exact bytes [len] successive
    [int t 256] calls would yield, advancing the state identically, but
    without a per-byte boxed-int64 round trip through the record.
    @raise Invalid_argument when the range is out of bounds. *)
val fill_bytes : t -> Bytes.t -> int -> int -> unit

(** Uniform float in [0, 1). *)
val float : t -> float

val float_range : t -> float -> float -> float

(** Standard normal via Box-Muller. *)
val gaussian : t -> float

val bool : t -> bool

(** Bernoulli trial with probability [p]. *)
val bernoulli : t -> float -> bool

(** Uniform element of a non-empty list. *)
val choose : t -> 'a list -> 'a

(** Index sampled proportionally to non-negative [weights].
    @raise Invalid_argument when no weight is positive. *)
val weighted_index : t -> float array -> int

(** Precomputed cumulative table for repeated weighted draws.  Sampling
    through it advances the generator once and returns exactly the index
    {!weighted_index} would for the same weights and state (same
    accumulation order, same comparison), in O(log n) instead of O(n). *)
type cdf

(** @raise Invalid_argument when [weights] is empty or no weight is
    positive. *)
val cdf_of_weights : float array -> cdf

val weighted_index_cdf : t -> cdf -> int

(** Value sampled from weighted (weight, value) choices. *)
val weighted_choose : t -> (float * 'a) list -> 'a

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [k] distinct indices from [0, n). *)
val sample_without_replacement : t -> int -> int -> int array
