(** Fixed-size domain pool with deterministic data-parallel combinators.

    Workers ([jobs () - 1] of them) are spawned once on first use and
    reused by every parallel region.  Chunk boundaries depend only on the
    problem size and reductions combine chunk results in index order, so
    every combinator returns bit-identical results for any job count —
    [CLARA_JOBS=1] (or [set_jobs 1]) degrades gracefully to the same
    chunked algorithm executed serially.  Nested regions (a task that
    itself calls into the pool) run serially and are deadlock-free.
    Exceptions raised by tasks are re-raised in the caller once the region
    completes (lowest task index wins). *)

(** Effective parallelism: the [CLARA_JOBS] environment variable if set and
    >= 1, else [Domain.recommended_domain_count ()], else a {!set_jobs}
    override. *)
val jobs : unit -> int

(** Effective parallelism of a region started by the calling domain right
    now: 1 from inside a pool task (nested regions run serially), else
    {!jobs}.  Callers wanting "how wide will my fan-out actually run?"
    should use this instead of re-reading [CLARA_JOBS]. *)
val size : unit -> int

(** Override the job count (e.g. for serial/parallel equivalence tests).
    Takes effect for subsequent regions; already-spawned workers are kept
    parked, which never changes results.
    @raise Invalid_argument unless n >= 1. *)
val set_jobs : int -> unit

(** Run all tasks to completion (caller participates), then re-raise the
    lowest-indexed task exception, if any. *)
val run_tasks : (unit -> unit) array -> unit

(** Jobs-independent chunking of [[0, n)] as (lo, hi-exclusive) ranges;
    [chunk] defaults to [ceil (n / 64)]. *)
val chunked_ranges : ?chunk:int -> int -> (int * int) array

(** [parallel_for lo hi body] runs [body i] for [lo <= i < hi]. *)
val parallel_for : ?chunk:int -> int -> int -> (int -> unit) -> unit

(** [Array.init], chunk-parallel. *)
val parallel_init : ?chunk:int -> int -> (int -> 'a) -> 'a array

(** [Array.map], chunk-parallel, order-preserving. *)
val parallel_map : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array

val parallel_mapi : ?chunk:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [List.map], chunk-parallel, order-preserving. *)
val parallel_map_list : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list

(** [List.concat_map], chunk-parallel, order-preserving. *)
val parallel_concat_map_list : ?chunk:int -> ('a -> 'b list) -> 'a list -> 'b list

(** Ordered reduction of [f 0 ... f (n-1)]: chunks fold left-to-right and
    combine left-to-right, so the combination order is fixed by [n] and
    [chunk] alone (not by the job count).
    @raise Invalid_argument unless n >= 1. *)
val parallel_reduce : ?chunk:int -> combine:('a -> 'a -> 'a) -> (int -> 'a) -> int -> 'a

(** Stop and join the workers (registered [at_exit]; safe to call twice —
    the pool respawns on next use). *)
val shutdown : unit -> unit
