(** Fixed-size domain pool with deterministic data-parallel combinators.

    Workers ([jobs () - 1] of them) are spawned once on first use and
    reused by every parallel region.  Chunk boundaries depend only on the
    problem size and reductions combine chunk results in index order, so
    every combinator returns bit-identical results for any job count —
    [CLARA_JOBS=1] (or [set_jobs 1]) degrades gracefully to the same
    chunked algorithm executed serially.  Nested regions (a task that
    itself calls into the pool) run serially and are deadlock-free.
    Exceptions raised by tasks are re-raised in the caller once the region
    completes (lowest task index wins). *)

(** Configured parallelism: the [CLARA_JOBS] environment variable if set
    and >= 1, else [Domain.recommended_domain_count ()], else a
    {!set_jobs} override. *)
val jobs : unit -> int

(** {!jobs} clamped to [Domain.recommended_domain_count ()]: running more
    domains than cores only adds contention, so regions are scheduled at
    this width.  Set [CLARA_OVERSUBSCRIBE=1] to honour the configured job
    count anyway (the equivalence suites do, to exercise real
    multi-domain schedules on small machines).  Results never depend on
    the width. *)
val width : unit -> int

(** Effective parallelism of a region started by the calling domain right
    now: 1 from inside a pool task (nested regions run serially), else
    {!width}.  Callers wanting "how wide will my fan-out actually run?"
    should use this instead of re-reading [CLARA_JOBS]. *)
val size : unit -> int

(** Override the job count (e.g. for serial/parallel equivalence tests).
    Takes effect for subsequent regions; already-spawned workers are kept
    parked, which never changes results.
    @raise Invalid_argument unless n >= 1. *)
val set_jobs : int -> unit

(** Run all tasks to completion (caller participates), then re-raise the
    lowest-indexed task exception, if any.  [serial_hint] forces the
    serial path — a scheduling decision only, results are identical. *)
val run_tasks : ?serial_hint:bool -> (unit -> unit) array -> unit

(** True when [n] items at an estimated [cost] microseconds each fall
    under the serial cutoff (currently 1 ms of total work), i.e. when a
    region with that cost hint will be scheduled serially.  Without
    [cost] the answer is always false.  Exposed for tests and for callers
    tuning cost hints. *)
val too_small_for_parallelism : ?cost:float -> int -> bool

(** Jobs-independent chunking of [[0, n)] as (lo, hi-exclusive) ranges.
    Chunk size is [chunk] when given, else [max min_chunk (ceil (n / 64))];
    either way it depends only on the problem size, never the job count. *)
val chunked_ranges : ?chunk:int -> ?min_chunk:int -> int -> (int * int) array

(** Every combinator below takes the same three scheduling knobs, none of
    which can change results:
    - [chunk]: exact items per task.
    - [min_chunk]: lower bound on the default chunk size, for bodies so
      cheap that per-task overhead would dominate.
    - [cost]: estimated microseconds per item; when [n * cost] falls under
      the internal cutoff (currently 1 ms) the region runs serially —
      waking workers for sub-millisecond work is a net loss. *)

(** [parallel_for lo hi body] runs [body i] for [lo <= i < hi]. *)
val parallel_for : ?chunk:int -> ?min_chunk:int -> ?cost:float -> int -> int -> (int -> unit) -> unit

(** [Array.init], chunk-parallel.  The result array is allocated once and
    written by index (element 0 is computed on the caller and seeds the
    array; no intermediate boxing). *)
val parallel_init : ?chunk:int -> ?min_chunk:int -> ?cost:float -> int -> (int -> 'a) -> 'a array

(** [Array.map], chunk-parallel, order-preserving. *)
val parallel_map : ?chunk:int -> ?min_chunk:int -> ?cost:float -> ('a -> 'b) -> 'a array -> 'b array

val parallel_mapi :
  ?chunk:int -> ?min_chunk:int -> ?cost:float -> (int -> 'a -> 'b) -> 'a array -> 'b array

(** [List.map], chunk-parallel, order-preserving. *)
val parallel_map_list :
  ?chunk:int -> ?min_chunk:int -> ?cost:float -> ('a -> 'b) -> 'a list -> 'b list

(** [List.concat_map], chunk-parallel, order-preserving. *)
val parallel_concat_map_list :
  ?chunk:int -> ?min_chunk:int -> ?cost:float -> ('a -> 'b list) -> 'a list -> 'b list

(** Ordered reduction of [f 0 ... f (n-1)]: chunks fold left-to-right and
    combine left-to-right, so the combination order is fixed by [n] and
    [chunk] alone (not by the job count).
    @raise Invalid_argument unless n >= 1. *)
val parallel_reduce :
  ?chunk:int -> ?min_chunk:int -> ?cost:float -> combine:('a -> 'a -> 'a) -> (int -> 'a) -> int -> 'a

(** Stop and join the workers (registered [at_exit]; safe to call twice —
    the pool respawns on next use). *)
val shutdown : unit -> unit
