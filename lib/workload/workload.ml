(** Traffic workload specification and generation (trafgen substitute).

    A workload specification captures what the paper's analyses condition
    on: packet sizes, the number of concurrent flows, and the IP address /
    flow-size distribution (§5.1 "A workload specification includes packet
    sizes, the number of flows, and the IP address distribution"). *)

type flow_dist =
  | Uniform  (** flows equally likely *)
  | Zipf of float  (** skewed popularity with the given exponent *)

type proto = Tcp | Udp | Mixed

type spec = {
  name : string;
  n_packets : int;
  n_flows : int;
  flow_dist : flow_dist;
  payload_len : int;  (** bytes of L4 payload *)
  proto : proto;
  seed : int;
}

let default =
  {
    name = "default";
    n_packets = 2000;
    n_flows = 64;
    flow_dist = Uniform;
    payload_len = 26;
    proto = Tcp;
    seed = 42;
  }

(** Few fat flows: high temporal locality, NIC caches hit (§5.4). *)
let large_flows =
  { default with name = "large-flows"; n_flows = 16; flow_dist = Zipf 1.2; proto = Mixed }

(** Many mice flows: poor locality, frequent EMEM cache misses. *)
let small_flows =
  { default with name = "small-flows"; n_flows = 262144; flow_dist = Uniform; proto = Mixed }

let with_packets n spec = { spec with n_packets = n }
let with_payload len spec = { spec with payload_len = len }

type flow = {
  src_ip : int;
  dst_ip : int;
  f_proto : int;
  sport : int;
  dport : int;
  mutable next_seq : int;
}

(* Zipf weight vectors are O(n_flows) to build and requested repeatedly
   with the same (n, s) — by generation and by the NIC memory model's
   locality figure — so they are memoized.  Memoized arrays are shared
   read-only. *)
let zipf_memo : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let zipf_lock = Mutex.create ()

let zipf_weights n s =
  Mutex.lock zipf_lock;
  let w =
    match Hashtbl.find_opt zipf_memo (n, s) with
    | Some w -> w
    | None ->
      let w = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
      Hashtbl.add zipf_memo (n, s) w;
      w
  in
  Mutex.unlock zipf_lock;
  w

(** Generate the packet sequence for a spec.  Deterministic in [spec.seed].
    The first packet of each flow carries TCP SYN, later ones ACK, matching
    the paper's observation that SYNs trigger flow-state setup.

    Generation is two-phase so it can use the domain pool without losing
    reproducibility: a serial pass makes every draw that threads shared
    state (flow choice, ip_id, per-flow sequence numbers, SYN detection)
    and forks one child rng per packet; packet construction and payload
    fill then fan out in parallel, each packet reading only its own rng.
    The packet list is a pure function of [spec] for any [CLARA_JOBS].

    [sampler] picks the flow-draw implementation: [`Cdf] (the default)
    binary-searches a prefix-sum table, [`Scan] is the retained O(n_flows)
    linear scan.  The two share the same partial sums, comparison
    predicate and single rng draw per packet, so they select identical
    flows — the choice is pure speed (a 256k-flow spec costs 18 table
    probes instead of a 256k-element scan per packet). *)
let generate_with ~sampler (spec : spec) : Nf_lang.Packet.t list =
  let rng = Util.Rng.create spec.seed in
  let mk_flow i =
    let proto =
      match spec.proto with
      | Tcp -> Nf_lang.Packet.tcp_proto
      | Udp -> Nf_lang.Packet.udp_proto
      | Mixed ->
        if Util.Rng.bool rng then Nf_lang.Packet.tcp_proto else Nf_lang.Packet.udp_proto
    in
    {
      src_ip = 0x0a000000 lor Util.Rng.int rng 0xffff lor ((i land 0xff) lsl 16);
      dst_ip = 0xc0a80000 lor Util.Rng.int rng 0xffff;
      f_proto = proto;
      sport = 1024 + Util.Rng.int rng 60000;
      dport = (match Util.Rng.int rng 4 with 0 -> 80 | 1 -> 443 | 2 -> 53 | _ -> 8080);
      next_seq = Util.Rng.int rng 1_000_000;
    }
  in
  let flows = Array.init (max 1 spec.n_flows) mk_flow in
  let weights =
    match spec.flow_dist with
    | Uniform -> Array.make (Array.length flows) 1.0
    | Zipf s -> zipf_weights (Array.length flows) s
  in
  let draw_flow =
    match sampler with
    | `Scan -> fun rng -> Util.Rng.weighted_index rng weights
    | `Cdf ->
      let cdf = Util.Rng.cdf_of_weights weights in
      fun rng -> Util.Rng.weighted_index_cdf rng cdf
  in
  let seen = Hashtbl.create (Array.length flows) in
  let plans = Array.make (max 0 spec.n_packets) None in
  for k = 0 to spec.n_packets - 1 do
    let fi = draw_flow rng in
    let flow = flows.(fi) in
    let first = not (Hashtbl.mem seen fi) in
    if first then Hashtbl.replace seen fi ();
    let ip_id = Util.Rng.int rng 0x10000 in
    let seq = flow.next_seq in
    flow.next_seq <- (flow.next_seq + spec.payload_len) land 0xffffffff;
    plans.(k) <- Some (flow, first, ip_id, seq, Util.Rng.split rng)
  done;
  Array.to_list
    (Util.Pool.parallel_map ~cost:0.5
       (fun plan ->
         let flow, first, ip_id, seq, prng =
           match plan with Some p -> p | None -> assert false
         in
         let p = Nf_lang.Packet.create ~payload_len:spec.payload_len () in
         p.Nf_lang.Packet.ip_src <- flow.src_ip;
         p.Nf_lang.Packet.ip_dst <- flow.dst_ip;
         p.Nf_lang.Packet.ip_proto <- flow.f_proto;
         p.Nf_lang.Packet.ip_id <- ip_id;
         p.Nf_lang.Packet.tcp_sport <- flow.sport;
         p.Nf_lang.Packet.tcp_dport <- flow.dport;
         p.Nf_lang.Packet.udp_sport <- flow.sport;
         p.Nf_lang.Packet.udp_dport <- flow.dport;
         p.Nf_lang.Packet.tcp_seq <- seq;
         p.Nf_lang.Packet.tcp_flags <- (if first then 0x02 (* SYN *) else 0x10 (* ACK *));
         (* bulk payload fill: same byte stream as per-byte [Rng.int prng
            256] calls, minus their boxing *)
         Util.Rng.fill_bytes prng p.Nf_lang.Packet.payload 0 spec.payload_len;
         p)
       plans)

let generate spec = generate_with ~sampler:`Cdf spec

(** The retained pre-optimization generator, pinned verbatim from the seed
    revision (like {!Mlkit.Naive}): O(n_flows) linear-scan flow draws,
    per-byte payload fill, uncached Zipf weights.  It produces the
    identical packet list for every spec (the equivalence suite asserts
    it) and is what `bench/main.exe parallel` times {!generate} against. *)
let generate_reference (spec : spec) : Nf_lang.Packet.t list =
  let zipf_weights n s = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
  let rng = Util.Rng.create spec.seed in
  let mk_flow i =
    let proto =
      match spec.proto with
      | Tcp -> Nf_lang.Packet.tcp_proto
      | Udp -> Nf_lang.Packet.udp_proto
      | Mixed ->
        if Util.Rng.bool rng then Nf_lang.Packet.tcp_proto else Nf_lang.Packet.udp_proto
    in
    {
      src_ip = 0x0a000000 lor Util.Rng.int rng 0xffff lor ((i land 0xff) lsl 16);
      dst_ip = 0xc0a80000 lor Util.Rng.int rng 0xffff;
      f_proto = proto;
      sport = 1024 + Util.Rng.int rng 60000;
      dport = (match Util.Rng.int rng 4 with 0 -> 80 | 1 -> 443 | 2 -> 53 | _ -> 8080);
      next_seq = Util.Rng.int rng 1_000_000;
    }
  in
  let flows = Array.init (max 1 spec.n_flows) mk_flow in
  let weights =
    match spec.flow_dist with
    | Uniform -> Array.make (Array.length flows) 1.0
    | Zipf s -> zipf_weights (Array.length flows) s
  in
  let seen = Hashtbl.create (Array.length flows) in
  let plans = Array.make (max 0 spec.n_packets) None in
  for k = 0 to spec.n_packets - 1 do
    let fi = Util.Rng.weighted_index rng weights in
    let flow = flows.(fi) in
    let first = not (Hashtbl.mem seen fi) in
    if first then Hashtbl.replace seen fi ();
    let ip_id = Util.Rng.int rng 0x10000 in
    let seq = flow.next_seq in
    flow.next_seq <- (flow.next_seq + spec.payload_len) land 0xffffffff;
    plans.(k) <- Some (flow, first, ip_id, seq, Util.Rng.split rng)
  done;
  Array.to_list
    (Util.Pool.parallel_map
       (fun plan ->
         let flow, first, ip_id, seq, prng =
           match plan with Some p -> p | None -> assert false
         in
         let p = Nf_lang.Packet.create ~payload_len:spec.payload_len () in
         p.Nf_lang.Packet.ip_src <- flow.src_ip;
         p.Nf_lang.Packet.ip_dst <- flow.dst_ip;
         p.Nf_lang.Packet.ip_proto <- flow.f_proto;
         p.Nf_lang.Packet.ip_id <- ip_id;
         p.Nf_lang.Packet.tcp_sport <- flow.sport;
         p.Nf_lang.Packet.tcp_dport <- flow.dport;
         p.Nf_lang.Packet.udp_sport <- flow.sport;
         p.Nf_lang.Packet.udp_dport <- flow.dport;
         p.Nf_lang.Packet.tcp_seq <- seq;
         p.Nf_lang.Packet.tcp_flags <- (if first then 0x02 (* SYN *) else 0x10 (* ACK *));
         for i = 0 to spec.payload_len - 1 do
           Nf_lang.Packet.set_payload_byte p i (Util.Rng.int prng 256)
         done;
         p)
       plans)

(** Fraction of packets that hit a cache holding the [cache_flows] hottest
    flows — an analytic locality figure used by the NIC memory model. *)
let cache_hit_ratio spec ~cache_flows =
  if spec.n_flows <= cache_flows then 1.0
  else
    match spec.flow_dist with
    | Uniform -> float_of_int cache_flows /. float_of_int spec.n_flows
    | Zipf s ->
      let w = zipf_weights spec.n_flows s in
      let total = Array.fold_left ( +. ) 0.0 w in
      let hot = ref 0.0 in
      for i = 0 to cache_flows - 1 do
        hot := !hot +. w.(i)
      done;
      !hot /. total

(** Pcap-style trace serialization (sub-module re-export). *)
module Trace = Trace
