(** Cross-platform instruction prediction (§3.2, Figures 3, 6, 8).

    The LSTM+FC model is trained on synthesized NF programs: each basic
    block's compacted-vocabulary token sequence is paired with the number
    of compute instructions the (opaque) NIC compiler emits for it.
    Memory accesses are not learned: stateful IR loads/stores are counted
    directly (the paper measures this simple count at 96.4-100% accuracy).

    Baselines for Figure 8 are trained on the same data: a DNN and AutoML
    on bag-of-words block features, and a 1-D CNN on the token sequence. *)

open Nf_lang
open Nf_ir

type example = { tokens : int array; nic_compute : float; nic_mem : float; ir_mem : float }

type dataset = { vocab : Vocab.t; examples : example array }

(** Compile-and-label one element into per-block examples. *)
let examples_of_element vocab (elt : Ast.element) =
  let prep = Prepare.prepare vocab elt in
  let compiled = Nicsim.Nfcc.compile prep.Prepare.ir in
  Array.to_list
    (Array.map
       (fun (cb : Nicsim.Nfcc.compiled_block) ->
         let info = List.nth prep.Prepare.blocks cb.Nicsim.Nfcc.bid in
         {
           tokens = info.Prepare.tokens;
           nic_compute = float_of_int (Nicsim.Isa.count_compute cb.Nicsim.Nfcc.instrs);
           nic_mem =
             float_of_int
               (Nicsim.Isa.count_mem cb.Nicsim.Nfcc.instrs
               + Nicsim.Isa.count_local_mem cb.Nicsim.Nfcc.instrs);
           ir_mem = float_of_int info.Prepare.ir_mem_stateful;
         })
       compiled.Nicsim.Nfcc.cblocks)

(* Per-program intermediate of the parallel synthesis pass: abstract word
   sequences (not yet interned) plus the compiler's per-block labels. *)
type raw_program = {
  block_words : string array array;  (** per IR block, in block order *)
  block_ir_mem : int array;
  labels : (int * float * float) array;  (** compiled (bid, compute, mem) *)
}

let raw_of_element (elt : Ast.element) =
  let ir = Obs.Span.with_ ~cat:"pipeline" "lower" (fun () -> Nf_frontend.Lower.lower_element elt) in
  let compiled = Obs.Span.with_ ~cat:"pipeline" "nfcc.compile" (fun () -> Nicsim.Nfcc.compile ir) in
  (* one walk per IR block derives the word sequence and the stateful-mem
     count together; one walk per compiled block derives both labels
     (compute = not mem, so a single partition suffices) *)
  let nb = Array.length ir.Ir.blocks in
  let block_words = Array.make nb [||] in
  let block_ir_mem = Array.make nb 0 in
  Array.iteri
    (fun i (b : Ir.block) ->
      let mem = ref 0 in
      let words =
        List.map
          (fun (ins : Ir.instr) ->
            (match ins.Ir.annot with Ir.Mem_stateful _ -> incr mem | _ -> ());
            Vocab.word ins)
          b.Ir.instrs
      in
      block_words.(i) <- Array.of_list words;
      block_ir_mem.(i) <- !mem)
    ir.Ir.blocks;
  {
    block_words;
    block_ir_mem;
    labels =
      Array.map
        (fun (cb : Nicsim.Nfcc.compiled_block) ->
          let compute = ref 0 and mem = ref 0 in
          List.iter
            (fun (i : Nicsim.Isa.instr) ->
              if Nicsim.Isa.is_mem i || Nicsim.Isa.is_local_mem i then incr mem
              else incr compute)
            cb.Nicsim.Nfcc.instrs;
          (cb.Nicsim.Nfcc.bid, float_of_int !compute, float_of_int !mem))
        compiled.Nicsim.Nfcc.cblocks;
  }

(** Build the training corpus from synthesized programs (§3.2 data
    synthesis) — [n] programs generated from the Click-corpus statistics.

    Generation, lowering and NFCC compilation of each program fan out on
    the domain pool; vocabulary interning stays serial, walking programs
    and blocks in order, so token ids — and hence the whole dataset — are
    bit-identical to a serial build for any [CLARA_JOBS]. *)
let synthesize_dataset ?(n = 120) ?(seed = 501) () =
  Obs.Span.with_ ~cat:"pipeline" "dataset.synthesize" @@ fun () ->
  let vocab = Vocab.create () in
  let programs =
    Obs.Span.with_ ~cat:"pipeline" "synth.generate" (fun () -> Synth.Generator.batch ~seed n)
  in
  (* ~70 us per program: small batches fall back to the serial path
     instead of paying fan-out overhead (the jobs=2 regression this
     replaced was 0.53x on exactly this kernel) *)
  let raws = Util.Pool.parallel_map_list ~chunk:1 ~cost:70.0 raw_of_element programs in
  let examples =
    Obs.Span.with_ ~cat:"pipeline" "vocab.intern" @@ fun () ->
    (* fill a preallocated array instead of concat_map + filter + of_list:
       the upper bound is the total compiled-block count *)
    let total = List.fold_left (fun acc r -> acc + Array.length r.labels) 0 raws in
    let buf =
      Array.make total { tokens = [||]; nic_compute = 0.0; nic_mem = 0.0; ir_mem = 0.0 }
    in
    let filled = ref 0 in
    List.iter
      (fun raw ->
        let tokens = Array.map (Array.map (Vocab.index vocab)) raw.block_words in
        Array.iter
          (fun (bid, nic_compute, nic_mem) ->
            let tk = tokens.(bid) in
            if Array.length tk > 0 then begin
              buf.(!filled) <-
                { tokens = tk; nic_compute; nic_mem; ir_mem = float_of_int raw.block_ir_mem.(bid) };
              incr filled
            end)
          raw.labels)
      raws;
    Array.sub buf 0 !filled
  in
  { vocab; examples }

(** The retained pre-optimization synthesis pipeline: serial generation
    with the corpus statistics recomputed per call, lowering through the
    quadratic builder ({!Nf_frontend.Lower.Reference}), the reference
    NFCC compiler and [String.concat]-based word interning, in the seed's
    [examples_of_element] shape ([List.nth] included).  Produces a
    dataset bit-identical to {!synthesize_dataset}; the baseline
    `bench/main.exe parallel` times the fast path against. *)
let synthesize_dataset_reference ?(n = 120) ?(seed = 501) () =
  let vocab = Vocab.create () in
  let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
  let programs =
    List.init n (fun k ->
        Synth.Generator.generate ~stats ~seed:(seed + (k * 7919)) (Printf.sprintf "syn_%d" k))
  in
  let examples_of elt =
    let prep = Prepare.prepare_reference vocab elt in
    let compiled = Nicsim.Nfcc.compile_reference prep.Prepare.ir in
    Array.to_list
      (Array.map
         (fun (cb : Nicsim.Nfcc.compiled_block) ->
           let info = List.nth prep.Prepare.blocks cb.Nicsim.Nfcc.bid in
           {
             tokens = info.Prepare.tokens;
             nic_compute = float_of_int (Nicsim.Isa.count_compute cb.Nicsim.Nfcc.instrs);
             nic_mem =
               float_of_int
                 (Nicsim.Isa.count_mem cb.Nicsim.Nfcc.instrs
                 + Nicsim.Isa.count_local_mem cb.Nicsim.Nfcc.instrs);
             ir_mem = float_of_int info.Prepare.ir_mem_stateful;
           })
         compiled.Nicsim.Nfcc.cblocks)
  in
  let examples =
    List.concat_map examples_of programs
    |> List.filter (fun e -> Array.length e.tokens > 0)
  in
  { vocab; examples = Array.of_list examples }

type t = {
  vocab : Vocab.t;
  lstm : Mlkit.Lstm.t;
}

(** Train Clara's LSTM+FC on a dataset.  [batch] examples are accumulated
    per Adam step with gradients computed concurrently on the domain pool;
    the fit is deterministic for any [CLARA_JOBS] value. *)
let train ?(epochs = 10) ?(hidden = 32) ?(batch = 8) (ds : dataset) =
  Obs.Span.with_ ~cat:"pipeline" "predictor.fit" @@ fun () ->
  Vocab.freeze ds.vocab;
  let lstm = Mlkit.Lstm.create ~hidden ~vocab:(Vocab.size ds.vocab) 211 in
  let data = Array.map (fun e -> (e.tokens, [| e.nic_compute |])) ds.examples in
  let series = Obs.Series.create ~capacity:(max 16 epochs) "predictor.fit" in
  Mlkit.Lstm.fit ~epochs ~batch
    ~progress:(fun ~epoch ~loss -> Obs.Series.record series ~step:epoch loss)
    lstm data;
  { vocab = ds.vocab; lstm }

(** Predicted compute-instruction count for one block. *)
let predict_block t tokens = max 0.0 (Mlkit.Lstm.predict t.lstm tokens).(0)

(** Per-block predictions for a whole unported element. *)
let predict_element t (elt : Ast.element) =
  Obs.Span.with_ ~cat:"pipeline" "predict" @@ fun () ->
  let prep = Prepare.prepare t.vocab elt in
  List.map
    (fun (b : Prepare.block_info) ->
      (b.Prepare.bid, predict_block t b.Prepare.tokens, float_of_int b.Prepare.ir_mem_stateful))
    prep.Prepare.blocks

(* -- compiled inference --

   A compiled predictor shares the trained weights but owns a
   preallocated {!Mlkit.Lstm.scratch}, so repeated serving queries run
   the LSTM allocation-free.  Predictions are bit-identical to
   {!predict_element} and the span shape is unchanged — the trace of a
   compiled analysis must be indistinguishable from a direct one.  A
   compiled predictor is not thread-safe (the scratch is shared state):
   the serving layer keeps one per flow-cache shard, under the shard's
   lock. *)

type compiled = { c_base : t; c_scratch : Mlkit.Lstm.scratch }

let compile t = { c_base = t; c_scratch = Mlkit.Lstm.scratch t.lstm }

let predict_block_compiled c tokens =
  max 0.0 (Mlkit.Lstm.predict_into c.c_base.lstm c.c_scratch tokens).(0)

let predict_element_compiled c (elt : Ast.element) =
  Obs.Span.with_ ~cat:"pipeline" "predict" @@ fun () ->
  let prep = Prepare.prepare c.c_base.vocab elt in
  List.map
    (fun (b : Prepare.block_info) ->
      (b.Prepare.bid, predict_block_compiled c b.Prepare.tokens, float_of_int b.Prepare.ir_mem_stateful))
    prep.Prepare.blocks

(** Ground-truth per-block NIC compute counts for accuracy evaluation. *)
let ground_truth (elt : Ast.element) =
  let ir = Nf_frontend.Lower.lower_element elt in
  let compiled = Nicsim.Nfcc.compile ir in
  Array.to_list
    (Array.map
       (fun (cb : Nicsim.Nfcc.compiled_block) ->
         ( cb.Nicsim.Nfcc.bid,
           float_of_int (Nicsim.Isa.count_compute cb.Nicsim.Nfcc.instrs),
           float_of_int
             (Nicsim.Isa.count_mem cb.Nicsim.Nfcc.instrs
             + Nicsim.Isa.count_local_mem cb.Nicsim.Nfcc.instrs) ))
       compiled.Nicsim.Nfcc.cblocks)

(** Per-block WMAPE of the compute prediction on an element. *)
let wmape_on_element t elt =
  let preds = predict_element t elt in
  let truth = ground_truth elt in
  let p = Array.of_list (List.map (fun (_, c, _) -> c) preds) in
  let g = Array.of_list (List.map (fun (_, c, _) -> c) truth) in
  Mlkit.Metrics.wmape p g

(** Memory-count accuracy: how close the direct IR stateful-load/store
    count is to the NIC memory-op count (paper: 96.4-100%). *)
let memory_accuracy elt =
  let vocab = Vocab.create () in
  let prep = Prepare.prepare vocab elt in
  let ir_mem = float_of_int (Ir.count_stateful_mem prep.Prepare.ir) in
  let compiled = Nicsim.Nfcc.compile prep.Prepare.ir in
  let nic_mem = float_of_int (Nicsim.Nfcc.count_mem compiled) in
  if nic_mem = 0.0 then 1.0 else 1.0 -. (abs_float (ir_mem -. nic_mem) /. nic_mem)

(* -- Figure 8 baselines -- *)

(** Bag-of-words features for dense-model baselines: histogram of token
    counts plus the block length. *)
let bow_features vocab_size tokens =
  let h = Array.make (vocab_size + 1) 0.0 in
  Array.iter (fun tok -> h.(tok) <- h.(tok) +. 1.0) tokens;
  h.(vocab_size) <- float_of_int (Array.length tokens);
  h

type baseline = Dnn of Mlkit.Nn.mlp | Cnn1d of Mlkit.Cnn.t | Automl of Mlkit.Automl.fitted

let train_dnn (ds : dataset) =
  let v = Vocab.size ds.vocab in
  let xs = Array.map (fun e -> bow_features v e.tokens) ds.examples in
  let ys = Array.map (fun e -> [| e.nic_compute |]) ds.examples in
  let net = Mlkit.Nn.mlp_create (Util.Rng.create 71) ~in_dim:(v + 1) ~hidden:[ 32; 16 ] ~out_dim:1 in
  Mlkit.Nn.mlp_fit_regression ~epochs:25 net xs ys;
  Dnn net

let train_cnn (ds : dataset) =
  let cnn = Mlkit.Cnn.create ~vocab:(Vocab.size ds.vocab) 73 in
  Mlkit.Cnn.fit ~epochs:10 cnn (Array.map (fun e -> (e.tokens, [| e.nic_compute |])) ds.examples);
  Cnn1d cnn

let train_automl (ds : dataset) =
  let v = Vocab.size ds.vocab in
  let xs = Array.map (fun e -> bow_features v e.tokens) ds.examples in
  let ys = Array.map (fun e -> e.nic_compute) ds.examples in
  Automl (Mlkit.Automl.search_regression xs ys)

let baseline_predict vocab b tokens =
  match b with
  | Dnn net -> max 0.0 (Mlkit.Nn.mlp_predict net (bow_features (Vocab.size vocab) tokens)).(0)
  | Cnn1d cnn -> max 0.0 (Mlkit.Cnn.predict cnn tokens).(0)
  | Automl f -> max 0.0 (Mlkit.Automl.predict f (bow_features (Vocab.size vocab) tokens))

let baseline_wmape_on_element vocab b elt =
  let prep = Prepare.prepare vocab elt in
  let truth = ground_truth elt in
  let preds =
    List.map (fun (bi : Prepare.block_info) -> baseline_predict vocab b bi.Prepare.tokens) prep.Prepare.blocks
  in
  let g = Array.of_list (List.map (fun (_, c, _) -> c) truth) in
  Mlkit.Metrics.wmape (Array.of_list preds) g
