(** Algorithm identification for accelerator offloading (§4.1, Figures 7,
    9, 10a).

    Features come from Sequential Pattern Extraction: frequent contiguous
    opcode n-grams mined from positive examples with high support (appear
    in most positives) and high confidence (rarely in negatives), plus the
    paper's manually-engineered features (bitwise-op density for CRC,
    bounded pointer-chasing for LPM).  A linear SVM is trained per
    accelerator class; inference labels each component of an NF and
    suggests a rewrite when a class matches. *)

open Nf_lang
open Nf_ir

(* -- component extraction: whole handler + each outermost loop -- *)

let rec outermost_loops (stmts : Ast.stmt list) : Ast.stmt list =
  List.concat_map
    (fun (s : Ast.stmt) ->
      match s.Ast.node with
      | Ast.For (_, _, _, _) | Ast.While (_, _) -> [ s ]
      | Ast.If (_, t, f) -> outermost_loops t @ outermost_loops f
      | Ast.Let _ | Ast.Set_global _ | Ast.Set_hdr _ | Ast.Set_payload _ | Ast.Arr_set _
      | Ast.Map_find _ | Ast.Map_read _ | Ast.Map_write _ | Ast.Map_insert _ | Ast.Map_erase _
      | Ast.Vec_append _ | Ast.Vec_get _ | Ast.Vec_set _ | Ast.Api_stmt _ | Ast.Emit _
      | Ast.Drop | Ast.Call_sub _ | Ast.Return ->
        [])
    stmts

(** Analyzable components of an element: loop nests are where accelerator
    algorithms live; the whole handler is included as a fallback. *)
let components (elt : Ast.element) : (string * Ast.element) list =
  let body = elt.Ast.handler @ List.concat_map snd elt.Ast.subs in
  let loops = outermost_loops body in
  let loop_elts =
    List.mapi
      (fun k loop ->
        ( Printf.sprintf "%s/loop%d" elt.Ast.name k,
          { elt with Ast.name = Printf.sprintf "%s_loop%d" elt.Ast.name k; Ast.handler = [ loop ] } ))
      loops
  in
  ((elt.Ast.name ^ "/all", elt) :: loop_elts)

(* -- opcode sequence and n-gram mining -- *)

let opcode_seq (elt : Ast.element) : int array =
  let ir = Nf_frontend.Lower.lower_element elt in
  let seq = ref [] in
  Array.iter
    (fun b -> List.iter (fun (i : Ir.instr) -> seq := Ir.opcode_index i :: !seq) b.Ir.instrs)
    ir.Ir.blocks;
  Array.of_list (List.rev !seq)

let gram_key gram = String.concat "," (List.map string_of_int gram)

let grams_of_seq seq n =
  let len = Array.length seq in
  let out = Hashtbl.create 64 in
  for start = 0 to len - n do
    let g = List.init n (fun k -> seq.(start + k)) in
    let key = gram_key g in
    Hashtbl.replace out key (1 + Option.value ~default:0 (Hashtbl.find_opt out key))
  done;
  out

(** Mine discriminative n-grams for one class: high support among positive
    sequences, low presence among negatives. *)
let mine_grams ?(ns = [ 2; 3; 4 ]) ?(top = 12) ~positives ~negatives () =
  let contains seq key n = Hashtbl.mem (grams_of_seq seq n) key in
  let candidate_keys =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun seq -> Hashtbl.fold (fun k _ acc -> (k, n) :: acc) (grams_of_seq seq n) [])
          positives)
      ns
    |> List.sort_uniq compare
  in
  let n_pos = float_of_int (max 1 (List.length positives)) in
  let n_neg = float_of_int (max 1 (List.length negatives)) in
  let scored =
    List.filter_map
      (fun (key, n) ->
        let support =
          float_of_int (List.length (List.filter (fun s -> contains s key n) positives)) /. n_pos
        in
        let neg_rate =
          float_of_int (List.length (List.filter (fun s -> contains s key n) negatives)) /. n_neg
        in
        let confidence = support /. max 1e-9 (support +. neg_rate) in
        if support >= 0.5 && confidence >= 0.7 then Some ((key, n), support *. confidence)
        else None)
      candidate_keys
  in
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) scored in
  let rec take k = function [] -> [] | x :: rest -> if k = 0 then [] else fst x :: take (k - 1) rest in
  take top sorted

(* -- manual features (§4.1: "we also augment this with manually extracted
   features") -- *)

let manual_features (elt : Ast.element) =
  let seq = opcode_seq elt in
  let len = float_of_int (max 1 (Array.length seq)) in
  let density pred = float_of_int (Array.length (Array.of_list (List.filter pred (Array.to_list seq)))) /. len in
  let is i j = Stdlib.( = ) i j in
  (* and/xor only: Or is polluted by the frontend's constant
     materialization idiom *)
  let bitops = density (fun o -> is o 3 || is o 5) in
  let shifts = density (fun o -> is o 6 || is o 7) in
  let loads = density (fun o -> is o 12) in
  let adds = density (fun o -> is o 0) in
  let cmps = density (fun o -> is o 8) in
  (* pointer chasing: inside a bounded loop, a variable that is loaded from
     an array is (possibly across iterations) used as an array index — the
     node-to-child walk of a trie (§4.1's manual LPM feature) *)
  let rec mentions defined (e : Ast.expr) =
    match e with
    | Ast.Local x -> List.mem x defined
    | Ast.Bin (_, a, b) | Ast.Cmp (_, a, b) | Ast.And_also (a, b) | Ast.Or_else (a, b) ->
      mentions defined a || mentions defined b
    | Ast.Not a | Ast.Payload_byte a | Ast.Arr_get (_, a) -> mentions defined a
    | Ast.Api_expr (_, args) -> List.exists (mentions defined) args
    | Ast.Int _ | Ast.Global _ | Ast.Hdr _ | Ast.Packet_len | Ast.Vec_len _ -> false
  in
  let rec body_stmts (stmts : Ast.stmt list) =
    List.concat_map
      (fun (s : Ast.stmt) ->
        match s.Ast.node with
        | Ast.If (_, t, f) -> (s :: body_stmts t) @ body_stmts f
        | Ast.For (_, _, _, b) | Ast.While (_, b) -> s :: body_stmts b
        | _ -> [ s ])
      stmts
  in
  let loop_body_chases body =
    let flat = body_stmts body in
    (* loop-carried: any variable defined by a direct array load *)
    let arr_defined =
      List.filter_map
        (fun (s : Ast.stmt) ->
          match s.Ast.node with Ast.Let (v, Ast.Arr_get (_, _)) -> Some v | _ -> None)
        flat
    in
    arr_defined <> []
    && List.exists
         (fun (s : Ast.stmt) ->
           match s.Ast.node with
           | Ast.Let (_, Ast.Arr_get (_, idx)) -> mentions arr_defined idx
           | _ -> false)
         flat
  in
  let rec loop_chase (stmts : Ast.stmt list) =
    List.exists
      (fun (s : Ast.stmt) ->
        match s.Ast.node with
        | Ast.For (_, _, _, body) | Ast.While (_, body) ->
          loop_body_chases body || loop_chase body
        | Ast.If (_, t, f) -> loop_chase t || loop_chase f
        | _ -> false)
      stmts
  in
  let pointer_chase = if loop_chase (elt.Ast.handler @ List.concat_map snd elt.Ast.subs) then 1.0 else 0.0 in
  let rec max_loop_depth (stmts : Ast.stmt list) =
    List.fold_left
      (fun acc (s : Ast.stmt) ->
        match s.Ast.node with
        | Ast.For (_, _, _, body) | Ast.While (_, body) -> max acc (1 + max_loop_depth body)
        | Ast.If (_, t, f) -> max acc (max (max_loop_depth t) (max_loop_depth f))
        | _ -> acc)
      0 stmts
  in
  let depth = float_of_int (max_loop_depth (elt.Ast.handler @ List.concat_map snd elt.Ast.subs)) in
  [| bitops; shifts; loads; adds; cmps; pointer_chase; depth /. 4.0 |]

(* -- the classifier -- *)

type model = {
  label : Algo_corpus.label;
  grams : (string * int) list;  (** selected (gram key, n) features *)
  svm : Mlkit.Simple.svm;
}

(** Which feature families to use — `Both is Clara; the other two exist
    for the feature-ablation experiment. *)
type feature_mode = [ `Both | `Spe_only | `Manual_only ]

type t = { models : model list; mode : feature_mode }

let feature_vector ?(mode : feature_mode = `Both) grams (elt : Ast.element) =
  let seq = opcode_seq elt in
  let len = float_of_int (max 1 (Array.length seq)) in
  let gram_feats =
    List.map
      (fun (key, n) ->
        float_of_int (Option.value ~default:0 (Hashtbl.find_opt (grams_of_seq seq n) key)) /. len *. 10.0)
      grams
  in
  match mode with
  | `Both -> Array.append (Array.of_list gram_feats) (manual_features elt)
  | `Spe_only -> Array.of_list gram_feats
  | `Manual_only -> manual_features elt

(** Train one-vs-rest SVMs for every accelerator class on the labeled
    corpus of {!Algo_corpus}. *)
let train ?(mode : feature_mode = `Both) ?(corpus : (Ast.element * Algo_corpus.label) list option) () =
  Obs.Span.with_ ~cat:"pipeline" "algo.fit" @@ fun () ->
  let corpus = match corpus with Some c -> c | None -> Algo_corpus.labeled () in
  (* inference classifies loop components, so training must see them too:
     every element contributes its components under the element's label *)
  let corpus =
    List.concat_map
      (fun (elt, label) -> List.map (fun (_, comp) -> (comp, label)) (components elt))
      corpus
  in
  let classes = [ Algo_corpus.Crc; Algo_corpus.Lpm; Algo_corpus.Checksum ] in
  let models =
    List.map
      (fun cls ->
        let positives =
          List.filter_map (fun (e, l) -> if l = cls then Some (opcode_seq e) else None) corpus
        in
        let negatives =
          List.filter_map (fun (e, l) -> if l <> cls then Some (opcode_seq e) else None) corpus
        in
        let grams = mine_grams ~positives ~negatives () in
        let xs = Array.of_list (List.map (fun (e, _) -> feature_vector ~mode grams e) corpus) in
        let ys =
          Array.of_list (List.map (fun (_, l) -> if l = cls then 1.0 else 0.0) corpus)
        in
        { label = cls; grams; svm = Mlkit.Simple.svm_fit ~epochs:60 xs ys })
      classes
  in
  { models; mode }

(** Classify one element (or component): the accelerator whose SVM fires
    with the highest margin, or [Other]. *)
let classify t (elt : Ast.element) : Algo_corpus.label =
  let best = ref (Algo_corpus.Other, 0.0) in
  List.iter
    (fun m ->
      let score = Mlkit.Simple.svm_score m.svm (feature_vector ~mode:t.mode m.grams elt) in
      if score > 0.0 && score > snd !best then best := (m.label, score))
    t.models;
  fst !best

(** Scan a full NF: label every component and report detected accelerator
    opportunities as (component name, label). *)
let detect t (elt : Ast.element) =
  Obs.Span.with_ ~cat:"pipeline" "algo.detect" @@ fun () ->
  List.filter_map
    (fun (name, comp) ->
      match classify t comp with Algo_corpus.Other -> None | l -> Some (name, l))
    (components elt)

(** Feature vector against a given class model — used by the PCA analysis
    of Figure 10a. *)
let class_features t cls elt =
  match List.find_opt (fun m -> m.label = cls) t.models with
  | Some m -> feature_vector ~mode:t.mode m.grams elt
  | None -> manual_features elt
