(** Program preparation (§3.1): transform a legacy NF into the uniform IR,
    extract its CFG and API set, and slice it into analyzable code blocks.
    This is the entry step of Figure 3's PREDICTOFFLOADINGPERF. *)

open Nf_lang
open Nf_ir

type block_info = {
  bid : int;
  src_sid : int;
  tokens : int array;  (** compacted-vocabulary word indices *)
  ir_compute : int;
  ir_mem_stateful : int;
  ir_mem_stateless : int;
  api_calls : string list;  (** concrete call names in this block *)
}

type t = {
  elt : Ast.element;
  ir : Ir.func;
  blocks : block_info list;
  api_set : string list;  (** all framework calls, for reverse porting *)
  loc : int;
}

let block_api_calls (b : Ir.block) =
  List.filter_map
    (fun (i : Ir.instr) ->
      match (i.Ir.op, i.Ir.annot) with Ir.Call n, Ir.Api _ -> Some n | _ -> None)
    b.Ir.instrs

let count_annot b p =
  List.fold_left (fun acc (i : Ir.instr) -> if p i.Ir.annot then acc + 1 else acc) 0 b.Ir.instrs

(** Prepare an element: lower, build the CFG, encode each block against the
    given vocabulary. *)
let prepare (vocab : Vocab.t) (elt : Ast.element) : t =
  Obs.Span.with_ ~cat:"pipeline" "prepare" @@ fun () ->
  let ir = Obs.Span.with_ ~cat:"pipeline" "lower" (fun () -> Nf_frontend.Lower.lower_element elt) in
  let blocks =
    Obs.Span.with_ ~cat:"pipeline" "vocab.encode" @@ fun () ->
    Array.to_list
      (Array.map
         (fun b ->
           {
             bid = b.Ir.bid;
             src_sid = b.Ir.src_sid;
             tokens = Vocab.encode_block vocab b;
             ir_compute = count_annot b (function Ir.Compute -> true | _ -> false);
             ir_mem_stateful = count_annot b (function Ir.Mem_stateful _ -> true | _ -> false);
             ir_mem_stateless = count_annot b (function Ir.Mem_stateless -> true | _ -> false);
             api_calls = block_api_calls b;
           })
         ir.Ir.blocks)
  in
  { elt; ir; blocks; api_set = Nf_frontend.Lower.api_set ir; loc = Pp.loc elt }

(** {!prepare} through the retained pre-optimization components: the
    quadratic builder ({!Nf_frontend.Lower.Reference}) and
    [String.concat]-based word derivation.  Identical output; the
    baseline `bench/main.exe parallel` runs on this. *)
let prepare_reference (vocab : Vocab.t) (elt : Ast.element) : t =
  let ir = Nf_frontend.Lower.Reference.lower_element elt in
  let blocks =
    Array.to_list
      (Array.map
         (fun b ->
           {
             bid = b.Ir.bid;
             src_sid = b.Ir.src_sid;
             tokens = Vocab.encode_block_with ~word:Vocab.word_reference vocab b;
             ir_compute = count_annot b (function Ir.Compute -> true | _ -> false);
             ir_mem_stateful = count_annot b (function Ir.Mem_stateful _ -> true | _ -> false);
             ir_mem_stateless = count_annot b (function Ir.Mem_stateless -> true | _ -> false);
             api_calls = block_api_calls b;
           })
         ir.Ir.blocks)
  in
  { elt; ir; blocks; api_set = Nf_frontend.Lower.api_set ir; loc = Pp.loc elt }

(** Direct memory-access count for the whole element: stateful loads/stores
    at the IR level, which the paper shows map ~1:1 to NIC memory ops. *)
let memory_estimate t = Ir.count_stateful_mem t.ir
