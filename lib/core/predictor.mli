(** Cross-platform instruction prediction (§3.2, Figures 3, 6, 8).

    An LSTM + fully-connected head is trained on synthesized NF programs:
    each block's compacted token sequence is paired with the number of
    compute instructions the opaque NIC compiler emits for it.  Stateful
    memory accesses are not learned — they are counted directly from the
    IR.  The DNN / 1-D CNN / AutoML baselines of Figure 8 train on the
    same data. *)

(** One training example: a block's tokens and its compilation outcome. *)
type example = {
  tokens : int array;
  nic_compute : float;  (** NIC compute instructions (prediction target) *)
  nic_mem : float;  (** NIC memory operations (for accuracy reporting) *)
  ir_mem : float;  (** direct IR stateful-access count *)
}

type dataset = { vocab : Vocab.t; examples : example array }

(** Compile-and-label one element into per-block examples. *)
val examples_of_element : Vocab.t -> Nf_lang.Ast.element -> example list

(** Build the training corpus from [n] synthesized programs (§3.2 data
    synthesis). *)
val synthesize_dataset : ?n:int -> ?seed:int -> unit -> dataset

(** The retained pre-optimization synthesis pipeline (serial, corpus
    statistics recomputed per call, reference NFCC compiler).  Produces a
    dataset bit-identical to {!synthesize_dataset}; the baseline
    `bench/main.exe parallel` times the fast path against. *)
val synthesize_dataset_reference : ?n:int -> ?seed:int -> unit -> dataset

(** A trained predictor: the frozen vocabulary plus the LSTM+FC model. *)
type t = { vocab : Vocab.t; lstm : Mlkit.Lstm.t }

(** Train Clara's LSTM+FC; freezes the dataset's vocabulary.  [batch]
    examples are accumulated per Adam step, their gradients computed
    concurrently on {!Util.Pool} (deterministic for any job count). *)
val train : ?epochs:int -> ?hidden:int -> ?batch:int -> dataset -> t

(** Predicted compute-instruction count for one token sequence. *)
val predict_block : t -> int array -> float

(** Per-block [(bid, predicted compute, direct memory count)] for a whole
    unported element. *)
val predict_element : t -> Nf_lang.Ast.element -> (int * float * float) list

(** A predictor compiled for serving: shares the trained weights, owns a
    preallocated LSTM scratch so repeat queries are allocation-free.
    Predictions and span shape are identical to {!predict_element}.  Not
    thread-safe — keep one per serving shard under that shard's lock. *)
type compiled

val compile : t -> compiled
val predict_block_compiled : compiled -> int array -> float
val predict_element_compiled : compiled -> Nf_lang.Ast.element -> (int * float * float) list

(** Ground truth [(bid, NIC compute, NIC memory)] from the NIC compiler —
    what the paper obtains by actually porting and compiling with NFCC. *)
val ground_truth : Nf_lang.Ast.element -> (int * float * float) list

(** Per-block weighted mean absolute percentage error of the compute
    prediction on one element (the Figure 8 metric). *)
val wmape_on_element : t -> Nf_lang.Ast.element -> float

(** Accuracy of direct memory counting against the NIC compiler's memory
    operations (paper: 96.4-100%). *)
val memory_accuracy : Nf_lang.Ast.element -> float

(** Bag-of-words features (token histogram + length) for the dense
    baselines. *)
val bow_features : int -> int array -> float array

(** Figure 8 baselines, trained on the same dataset. *)
type baseline =
  | Dnn of Mlkit.Nn.mlp
  | Cnn1d of Mlkit.Cnn.t
  | Automl of Mlkit.Automl.fitted

val train_dnn : dataset -> baseline
val train_cnn : dataset -> baseline
val train_automl : dataset -> baseline

(** Baseline prediction for one block. *)
val baseline_predict : Vocab.t -> baseline -> int array -> float

(** Per-block WMAPE of a baseline on one element. *)
val baseline_wmape_on_element : Vocab.t -> baseline -> Nf_lang.Ast.element -> float
