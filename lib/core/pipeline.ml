(** End-to-end Clara pipeline (Figures 2 and 3).

    [train] builds the learned components once (instruction predictor,
    algorithm classifiers, scale-out cost model); [analyze] then produces
    an insight bundle for any unported NF and workload without touching
    the (simulated) hardware. *)

open Nf_lang

type models = {
  predictor : Predictor.t;
  algo : Algo_id.t;
  scaleout : Scaleout.t option;
  colocation : Colocation.t option;
}

(** Demand pool for colocation-ranker training: synthesized NFs ported
    under a mixed workload (the methodology of §5.7). *)
let colocation_demands ~quick () =
  let spec =
    { Workload.default with
      Workload.proto = Workload.Mixed;
      Workload.n_packets = (if quick then 150 else 300);
      Workload.n_flows = 2048 }
  in
  let programs = Synth.Generator.batch ~seed:4242 (if quick then 12 else 40) in
  Array.of_list
    (List.filter_map
       (fun elt ->
         match Nicsim.Nic.port elt spec with
         | ported -> Some ported.Nicsim.Nic.demand
         | exception _ -> None)
       programs)

(** Train Clara's models.  [quick] shrinks training sets for fast tests;
    scale-out training is the most expensive part and can be skipped.
    [with_colocation] additionally trains the §4.5 colocation ranker so the
    bundle covers every insight (off by default: only persisted bundles and
    colocation queries need it). *)
let train ?(quick = false) ?(with_scaleout = true) ?(with_colocation = false) () =
  Obs.Span.with_ ~cat:"pipeline" "pipeline.train" @@ fun () ->
  let ds = Predictor.synthesize_dataset ~n:(if quick then 30 else 120) () in
  let predictor = Predictor.train ~epochs:(if quick then 4 else 10) ds in
  let algo = Algo_id.train ~corpus:(Algo_corpus.labeled ~negatives:(if quick then 20 else 60) ()) () in
  let scaleout =
    if with_scaleout then
      Some (Scaleout.train ~samples:(Scaleout.training_samples ~n_programs:(if quick then 10 else 40) ()) ())
    else None
  in
  let colocation =
    if with_colocation then
      let demands = colocation_demands ~quick () in
      Some (Colocation.train ~groups:(Colocation.make_groups ~n_groups:(if quick then 10 else 30) Colocation.Total_throughput demands) demands)
    else None
  in
  { predictor; algo; scaleout; colocation }

(* The analyze body, parameterized over the two learned-inference entry
   points that have compiled (allocation-free) twins.  Both instantiations
   run the same float operations in the same order and open the same
   spans, so insights — and recorded traces — are identical between the
   direct and compiled paths. *)
let analyze_with ~(predict_element : Ast.element -> (int * float * float) list)
    ~(suggest : Nicsim.Perf.demand -> int option) (m : models) (elt : Ast.element)
    (spec : Workload.spec) : Insights.t =
  Obs.Span.with_ ~cat:"pipeline" "pipeline.analyze" @@ fun () ->
  let prep = Prepare.prepare m.predictor.Predictor.vocab elt in
  (* performance parameters: LSTM for compute, direct count for memory *)
  let per_block = predict_element elt in
  let predicted_compute = List.fold_left (fun acc (_, c, _) -> acc +. c) 0.0 per_block in
  let predicted_memory = float_of_int (Prepare.memory_estimate prep) in
  (* porting-strategy insights *)
  let accel =
    List.map
      (fun (component, algorithm) -> { Insights.component; algorithm })
      (Algo_id.detect m.algo elt)
  in
  let ported = Obs.Span.with_ ~cat:"pipeline" "nic.port" (fun () -> Nicsim.Nic.port elt spec) in
  let suggested_cores = suggest ported.Nicsim.Nic.demand in
  let placement =
    if elt.Ast.state = [] then []
    else Obs.Span.with_ ~cat:"pipeline" "placement.solve" (fun () -> Placement.solve elt ported)
  in
  let packs =
    Obs.Span.with_ ~cat:"pipeline" "coalesce.suggest" (fun () ->
        Coalesce.suggest elt ported.Nicsim.Nic.profile)
  in
  {
    Insights.nf_name = elt.Ast.name;
    workload = spec.Workload.name;
    predicted_compute;
    predicted_memory;
    api_calls = prep.Prepare.api_set;
    accel;
    suggested_cores;
    placement;
    packs;
  }

(** Analyze an unported NF under a workload specification and produce the
    full insight bundle. *)
let analyze (m : models) (elt : Ast.element) (spec : Workload.spec) : Insights.t =
  analyze_with
    ~predict_element:(fun e -> Predictor.predict_element m.predictor e)
    ~suggest:(fun d -> Option.map (fun s -> Scaleout.suggest s d) m.scaleout)
    m elt spec

(** Analyze and render the textual report. *)
let report m elt spec = Insights.render (analyze m elt spec)

(* -- compiled serving bundle --

   The models plus their allocation-free inference twins: the LSTM
   predictor with preallocated scratch, the scale-out GBDT flattened to
   node arrays.  [analyze_compiled] produces insights bit-identical to
   [analyze] with the same span tree.  Not thread-safe (the predictor
   scratch is shared): the serving layer keeps one compiled bundle per
   flow-cache shard, used under that shard's lock. *)

type compiled = {
  c_models : models;
  c_predictor : Predictor.compiled;
  c_scaleout : Scaleout.compiled option;
}

let compile (m : models) =
  {
    c_models = m;
    c_predictor = Predictor.compile m.predictor;
    c_scaleout = Option.map Scaleout.compile m.scaleout;
  }

let analyze_compiled (c : compiled) (elt : Ast.element) (spec : Workload.spec) : Insights.t =
  analyze_with
    ~predict_element:(fun e -> Predictor.predict_element_compiled c.c_predictor e)
    ~suggest:(fun d -> Option.map (fun s -> Scaleout.suggest_compiled s d) c.c_scaleout)
    c.c_models elt spec

let report_compiled c elt spec = Insights.render (analyze_compiled c elt spec)
