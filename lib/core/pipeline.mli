(** End-to-end Clara pipeline (Figures 2 and 3): train the learned
    components once, then analyze any unported NF without touching the
    (simulated) hardware. *)

(** The trained model bundle. *)
type models = {
  predictor : Predictor.t;  (** instruction prediction (§3.2) *)
  algo : Algo_id.t;  (** accelerator-algorithm classifiers (§4.1) *)
  scaleout : Scaleout.t option;  (** core-count cost model (§4.2), optional *)
  colocation : Colocation.t option;  (** colocation ranker (§4.5), optional *)
}

(** Train Clara.  [quick] shrinks training sets (seconds instead of
    minutes); [with_scaleout:false] skips the most expensive training
    phase; [with_colocation:true] additionally trains the colocation
    ranker (needed when the bundle is persisted for serving). *)
val train : ?quick:bool -> ?with_scaleout:bool -> ?with_colocation:bool -> unit -> models

(** Produce the full insight bundle for an unported NF under a workload:
    performance parameters, accelerator opportunities, scale-out factor,
    state placement and variable packs. *)
val analyze : models -> Nf_lang.Ast.element -> Workload.spec -> Insights.t

(** [analyze] rendered as the textual report. *)
val report : models -> Nf_lang.Ast.element -> Workload.spec -> string

(** The bundle compiled for serving: the LSTM predictor bound to a
    preallocated scratch and the scale-out GBDT flattened to node arrays,
    so repeat analyses are allocation-free in the learned-inference
    stages.  [analyze_compiled] is bit-identical to {!analyze}, with the
    same span tree.  Not thread-safe — the serving layer keeps one per
    flow-cache shard under that shard's lock. *)
type compiled

val compile : models -> compiled
val analyze_compiled : compiled -> Nf_lang.Ast.element -> Workload.spec -> Insights.t
val report_compiled : compiled -> Nf_lang.Ast.element -> Workload.spec -> string
