(** NF colocation analysis via pairwise ranking (§4.5, Figure 14).

    Clara trains a LambdaMART ranker over groups of candidate NF pairs.
    Features follow the paper: per-NF arithmetic intensity, per-NF compute
    counts, and the ratio of intensities (interference stems from memory
    subsystem contention).  Relevance is negated degradation under one of
    four objectives: total/average x throughput/latency loss. *)

type objective = Total_throughput | Avg_throughput | Total_latency | Avg_latency

let objective_name = function
  | Total_throughput -> "Th.Tot."
  | Avg_throughput -> "Th.Avg."
  | Total_latency -> "Lat.Tot."
  | Avg_latency -> "Lat.Avg."

let all_objectives = [ Total_throughput; Avg_throughput; Total_latency; Avg_latency ]

(** Pair features: arithmetic intensities, compute counts, memory volumes,
    and the intensity ratio (§4.5's feature list). *)
let pair_features (d1 : Nicsim.Perf.demand) (d2 : Nicsim.Perf.demand) =
  let ai1 = Nicsim.Perf.arithmetic_intensity d1 in
  let ai2 = Nicsim.Perf.arithmetic_intensity d2 in
  let mem d = Nicsim.Perf.total_mem_accesses d in
  [| ai1 /. 10.0; ai2 /. 10.0;
     (min ai1 ai2 /. max 1.0 (max ai1 ai2));
     d1.Nicsim.Perf.compute /. 100.0; d2.Nicsim.Perf.compute /. 100.0;
     mem d1; mem d2;
     d1.Nicsim.Perf.levels.(4); d2.Nicsim.Perf.levels.(4);
     0.5 *. (d1.Nicsim.Perf.emem_hit +. d2.Nicsim.Perf.emem_hit) |]

(** Measured degradation of a pair under an objective (ground truth). *)
let degradation objective (r : Nicsim.Colocate.result) =
  match objective with
  | Total_throughput -> Nicsim.Colocate.total_throughput_loss r
  | Avg_throughput -> Nicsim.Colocate.avg_throughput_loss r
  | Total_latency -> Nicsim.Colocate.total_latency_loss r
  | Avg_latency -> Nicsim.Colocate.avg_latency_loss r

(** Build ranking groups from a pool of demands: each group draws
    [group_size] random pairs; relevance = -degradation. *)
let make_groups ?(n_groups = 30) ?(group_size = 6) ?(seed = 1601) objective
    (demands : Nicsim.Perf.demand array) =
  Obs.Span.with_ ~cat:"pipeline" "colocation.groups" @@ fun () ->
  let rng = Util.Rng.create seed in
  let n = Array.length demands in
  List.init n_groups (fun _ ->
      let pairs =
        Array.init group_size (fun _ ->
            let a = Util.Rng.int rng n in
            let b = (a + 1 + Util.Rng.int rng (n - 1)) mod n in
            (a, b))
      in
      let features = Array.map (fun (a, b) -> pair_features demands.(a) demands.(b)) pairs in
      let relevance =
        Array.map
          (fun (a, b) ->
            let r = Nicsim.Colocate.colocate demands.(a) demands.(b) in
            -.degradation objective r)
          pairs
      in
      { Mlkit.Rank.features; relevance })

type t = { objective : objective; ranker : Mlkit.Rank.t }

let train ?(groups : Mlkit.Rank.group list option) ?(objective = Total_throughput)
    (demands : Nicsim.Perf.demand array) =
  Obs.Span.with_ ~cat:"pipeline" "colocation.fit" @@ fun () ->
  let groups = match groups with Some g -> g | None -> make_groups objective demands in
  { objective; ranker = Mlkit.Rank.fit groups }

(** Rank candidate pairs of demands best-first; returns indices into the
    candidate list. *)
let rank t (candidates : (Nicsim.Perf.demand * Nicsim.Perf.demand) list) =
  let features = Array.of_list (List.map (fun (a, b) -> pair_features a b) candidates) in
  Array.to_list (Mlkit.Rank.rank t.ranker features)

(** Top-k accuracy over labeled test groups. *)
let topk_accuracy t groups k =
  let hits = List.filter (fun g -> Mlkit.Rank.topk_hit t.ranker g k) groups in
  float_of_int (List.length hits) /. float_of_int (max 1 (List.length groups))
