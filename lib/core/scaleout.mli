(** Multicore scale-out factor analysis (§4.2, Figure 11).

    TVM-style separation of 'algorithm' from 'schedule': a training phase
    deploys synthesized programs across workloads on the (simulated) NIC,
    records the optimal core counts, and fits a GBDT cost model over
    program/workload features; inference then suggests core counts for
    unseen NFs without hardware sweeps. *)

(** Feature vector of an NF under a workload: compute cycles, per-level
    memory accesses, arithmetic intensity, EMEM hit ratio, payload size,
    engine ops, plus knee proxies derived from nominal latencies. *)
val features : Nicsim.Perf.demand -> float array

(** One training point. *)
type sample = { x : float array; optimal : float }

(** Deploy-and-benchmark: [n_programs] synthesized NFs under each spec
    (default: large flows, small flows, 200B payloads), labeled with the
    simulator's knee. *)
val training_samples :
  ?n_programs:int -> ?seed:int -> ?specs:Workload.spec list -> unit -> sample list

(** The pre-optimization sampling path (serial, regenerates every trace per
    (program, spec) pair with the linear-scan sampler).  Produces identical
    samples; the baseline `bench/main.exe parallel` times against. *)
val training_samples_reference :
  ?n_programs:int -> ?seed:int -> ?specs:Workload.spec list -> unit -> sample list

type t = { gbdt : Mlkit.Tree.gbdt }

(** Fit the GBDT cost model. *)
val train : ?samples:sample list -> unit -> t

(** Suggested core count, clamped to the NIC's range. *)
val suggest : ?nic:Nicsim.Multicore.nic -> t -> Nicsim.Perf.demand -> int

(** Convenience wrapper: port the element under [spec] first. *)
val suggest_for :
  ?nic:Nicsim.Multicore.nic -> t -> Nf_lang.Ast.element -> Workload.spec -> int

(** The cost model flattened to {!Mlkit.Tree.Flat} node arrays for the
    serving fast path; suggestions are identical to {!suggest}. *)
type compiled

val compile : t -> compiled
val suggest_compiled : ?nic:Nicsim.Multicore.nic -> compiled -> Nicsim.Perf.demand -> int

(** Figure 11a baselines trained on the same samples. *)
type baseline =
  | B_knn of Mlkit.Simple.knn
  | B_dnn of Mlkit.Nn.mlp
  | B_automl of Mlkit.Automl.fitted

val train_baseline : [< `Automl | `Dnn | `Knn ] -> sample list -> baseline
val baseline_predict : baseline -> float array -> float
