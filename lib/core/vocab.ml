(** Vocabulary compaction and one-hot encoding of IR instructions (§3.2).

    An instruction word abstracts away concrete operands: registers become
    VAR, literals collapse to three magnitude classes, stack slots to SLOT,
    globals to GLOBAL — with the paper's exception that *well-defined
    header field names stay concrete* (they carry strong signal for the
    NIC compiler's ld_field selection).  This reduces the vocabulary to a
    few hundred distinct words, small enough for one-hot encoding. *)

open Nf_ir

let operand_word = function
  | Ir.Reg _ -> "VAR"
  | Ir.Imm n ->
    let a = abs n in
    if a < 256 then "INT_S" else if a < 65536 then "INT_M" else "INT_L"
  | Ir.Global _ -> "GLOBAL"
  | Ir.Slot _ -> "SLOT"
  | Ir.Hdr field -> "HDR:" ^ field  (* concrete, per the paper's exception *)
  | Ir.Payload -> "PAYLOAD"

let call_word name =
  (* strip the structure-specific suffix: map_find.tbl -> map_find *)
  match String.index_opt name '.' with Some i -> String.sub name 0 i | None -> name

(** The abstract word of an instruction, e.g.
    ["add i32 VAR INT_S"] or ["load i16 HDR:ip_len"].  Built in one pass
    over a per-domain scratch buffer — word derivation runs once per
    instruction per synthesized program, so the [String.concat] chain of
    intermediate lists it replaces was measurable in the dataset
    pipeline. *)
let word_buf = Domain.DLS.new_key (fun () -> Buffer.create 64)

let word (i : Ir.instr) =
  let buf = Domain.DLS.get word_buf in
  Buffer.clear buf;
  (match i.Ir.op with
  | Ir.Call name ->
    Buffer.add_string buf "call ";
    Buffer.add_string buf (call_word name)
  | Ir.Br _ -> Buffer.add_string buf "br"
  | Ir.Cond_br (_, _) -> Buffer.add_string buf "condbr"
  | Ir.Add | Ir.Sub | Ir.Mul | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Lshr | Ir.Icmp _
  | Ir.Zext | Ir.Trunc | Ir.Select | Ir.Load | Ir.Store | Ir.Gep | Ir.Ret ->
    Buffer.add_string buf (Ir.opcode_str i.Ir.op));
  Buffer.add_char buf ' ';
  Buffer.add_string buf (Ir.typ_str i.Ir.ty);
  List.iter
    (fun a ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf (operand_word a))
    i.Ir.args;
  Buffer.contents buf

(** The retained pre-optimization {!word}: identical strings through
    intermediate lists and [String.concat].  The baseline
    `bench/main.exe parallel` interns with this. *)
let word_reference (i : Ir.instr) =
  let opcode =
    match i.Ir.op with
    | Ir.Call name -> "call " ^ call_word name
    | Ir.Br _ -> "br"
    | Ir.Cond_br (_, _) -> "condbr"
    | Ir.Add | Ir.Sub | Ir.Mul | Ir.And | Ir.Or | Ir.Xor | Ir.Shl | Ir.Lshr | Ir.Icmp _
    | Ir.Zext | Ir.Trunc | Ir.Select | Ir.Load | Ir.Store | Ir.Gep | Ir.Ret ->
      Ir.opcode_str i.Ir.op
  in
  let args = List.map operand_word i.Ir.args in
  String.concat " " ((opcode :: [ Ir.typ_str i.Ir.ty ]) @ args)

(** The *unabstracted* word of an instruction — concrete register numbers
    and literal values included.  Used only by the vocabulary-compaction
    ablation (§6 reports that LSTM without compaction performs much
    worse): the vocabulary explodes and most words are singletons. *)
let word_concrete (i : Ir.instr) = Ir.instr_str i

(** A vocabulary maps words to dense one-hot indices.  It is grown on the
    training set and frozen for inference ([index] maps unseen words to a
    shared UNK slot 0). *)
type t = { table : (string, int) Hashtbl.t; mutable frozen : bool }

let create () =
  let table = Hashtbl.create 512 in
  Hashtbl.replace table "<unk>" 0;
  { table; frozen = false }

let index t w =
  match Hashtbl.find_opt t.table w with
  | Some i -> i
  | None ->
    if t.frozen then 0
    else begin
      let i = Hashtbl.length t.table in
      Hashtbl.replace t.table w i;
      i
    end

let freeze t = t.frozen <- true
let size t = Hashtbl.length t.table

(** Token sequence of a basic block under a custom word function. *)
let encode_block_with ~word t (b : Ir.block) =
  Array.of_list (List.map (fun i -> index t (word i)) b.Ir.instrs)

(** Token sequence of a basic block (compacted vocabulary). *)
let encode_block t b = encode_block_with ~word t b

(** Token sequences of all blocks of a function, paired with block ids. *)
let encode_func t (f : Ir.func) =
  Array.to_list (Array.map (fun b -> (b.Ir.bid, encode_block t b)) f.Ir.blocks)
