(** Multicore scale-out factor analysis (§4.2, Figure 11).

    TVM-style: 'algorithm' (the NF) is separated from 'schedule' (the core
    count); a training phase deploys synthesized programs on the NIC
    across workloads, observes the optimal core counts, and fits a GBDT
    cost model over program/workload features.  Inference predicts the
    best core count for an unseen NF without sweeping the hardware. *)

open Nf_lang

(** Feature vector of an NF under a workload, from its demand profile:
    compute cycles, per-level memory accesses, arithmetic intensity, EMEM
    cache hit ratio, and the wire-relevant packet size. *)
let features (d : Nicsim.Perf.demand) =
  (* unloaded service-time proxy: Clara knows nominal level latencies from
     its own one-off calibration measurements, but not the bandwidths *)
  let s0 =
    List.fold_left
      (fun acc level ->
        let idx = Nicsim.Mem.level_index level in
        acc
        +. d.Nicsim.Perf.levels.(idx)
           *. Nicsim.Multicore.level_base_latency ~emem_hit:d.Nicsim.Perf.emem_hit level)
      d.Nicsim.Perf.compute Nicsim.Mem.all_levels
  in
  let mem_total = Nicsim.Perf.total_mem_accesses d in
  let bottleneck =
    List.fold_left (fun acc level ->
        let idx = Nicsim.Mem.level_index level in
        if level = Nicsim.Mem.LMEM then acc else max acc d.Nicsim.Perf.levels.(idx))
      1e-3 Nicsim.Mem.all_levels
  in
  [| d.Nicsim.Perf.compute /. 100.0;
     d.Nicsim.Perf.levels.(0) /. 10.0;
     d.Nicsim.Perf.levels.(1);
     d.Nicsim.Perf.levels.(2);
     d.Nicsim.Perf.levels.(3);
     d.Nicsim.Perf.levels.(4);
     Nicsim.Perf.arithmetic_intensity d /. 10.0;
     d.Nicsim.Perf.emem_hit;
     float_of_int d.Nicsim.Perf.payload_bytes /. 100.0;
     List.fold_left (fun acc (_, n) -> acc +. n) 0.0 d.Nicsim.Perf.accel_ops;
     s0 /. 1000.0;
     mem_total /. 10.0;
     (* knee proxies: saturation core count scales with S0 / M_bottleneck
        and with wire_rate * S0 *)
     s0 /. (100.0 *. max 1e-3 bottleneck);
     s0 /. (20.0 *. float_of_int (d.Nicsim.Perf.wire_bytes + 20)) |]

type sample = { x : float array; optimal : float }

let default_specs () =
  [ { Workload.large_flows with Workload.n_packets = 400 };
    { Workload.small_flows with Workload.n_packets = 400 };
    { Workload.default with Workload.n_packets = 400; Workload.payload_len = 200 } ]

(** Build training samples: synthesized NFs x workload specs, labeled with
    the simulator's optimal core count (the paper's automated pipeline of
    deploy-and-benchmark).

    The trace of each spec is generated once and replayed against every
    program as fresh packet copies — workload generation is a pure
    function of the spec, so benchmarking [n_programs] programs does not
    need [n_programs] re-generations of the same (expensive, 256k-flow)
    trace.  Samples are identical to the regenerate-per-pair path
    ({!training_samples_reference}). *)
let training_samples ?(n_programs = 40) ?(seed = 1301) ?(specs : Workload.spec list option) () =
  Obs.Span.with_ ~cat:"pipeline" "scaleout.samples" @@ fun () ->
  let specs = match specs with Some s -> s | None -> default_specs () in
  let programs = Synth.Generator.batch ~seed n_programs in
  let traces = List.map (fun spec -> (spec, Workload.generate spec)) specs in
  (* each program x spec deploy-and-benchmark is independent: fan the
     programs out on the domain pool, keeping sample order *)
  Util.Pool.parallel_concat_map_list ~chunk:1 ~cost:10_000.0
    (fun elt ->
      List.filter_map
        (fun (spec, trace) ->
          match
            Nicsim.Nic.port ~packets:(List.map Nf_lang.Packet.copy trace) elt spec
          with
          | ported ->
            let d = ported.Nicsim.Nic.demand in
            Some { x = features d; optimal = float_of_int (Nicsim.Multicore.optimal_cores d) }
          | exception _ -> None)
        traces)
    programs

(** The pre-optimization sampling path, retained as the baseline
    `bench/main.exe parallel` times {!training_samples} against: fully
    serial, regenerating every workload trace per (program, spec) pair
    with the linear-scan flow sampler.  Produces identical samples. *)
let training_samples_reference ?(n_programs = 40) ?(seed = 1301)
    ?(specs : Workload.spec list option) () =
  let specs = match specs with Some s -> s | None -> default_specs () in
  let programs = Synth.Generator.batch ~seed n_programs in
  List.concat_map
    (fun elt ->
      List.filter_map
        (fun spec ->
          match Nicsim.Nic.port ~packets:(Workload.generate_reference spec) elt spec with
          | ported ->
            let d = ported.Nicsim.Nic.demand in
            Some { x = features d; optimal = float_of_int (Nicsim.Multicore.optimal_cores d) }
          | exception _ -> None)
        specs)
    programs

type t = { gbdt : Mlkit.Tree.gbdt }

let train ?(samples : sample list option) () =
  Obs.Span.with_ ~cat:"pipeline" "scaleout.fit" @@ fun () ->
  let samples = match samples with Some s -> s | None -> training_samples () in
  let xs = Array.of_list (List.map (fun s -> s.x) samples) in
  let ys = Array.of_list (List.map (fun s -> s.optimal) samples) in
  { gbdt =
      Mlkit.Tree.gbdt_fit ~n_stages:200 ~shrinkage:0.06
        ~config:{ Mlkit.Tree.default_grow with Mlkit.Tree.max_depth = 4; Mlkit.Tree.min_leaf = 2 }
        xs ys }

(** Suggested core count for an NF/workload, clamped to the NIC. *)
let suggest ?(nic = Nicsim.Multicore.default_nic) t (d : Nicsim.Perf.demand) =
  Obs.Span.with_ ~cat:"pipeline" "scaleout.suggest" @@ fun () ->
  let raw = Mlkit.Tree.gbdt_predict t.gbdt (features d) in
  max 1 (min nic.Nicsim.Multicore.n_cores (int_of_float (Float.round raw)))

(** Convenience: suggestion for an element under a workload spec. *)
let suggest_for ?(nic = Nicsim.Multicore.default_nic) t (elt : Ast.element) spec =
  let ported = Nicsim.Nic.port elt spec in
  suggest ~nic t ported.Nicsim.Nic.demand

(* -- compiled inference --

   The GBDT flattened to {!Mlkit.Tree.Flat} node arrays: same suggestions
   ([Flat.gbdt_eval] is bit-identical to [gbdt_predict]), no boxed-tree
   pointer chasing on the serving fast path. *)

type compiled = { flat : Mlkit.Tree.Flat.gbdt_flat }

let compile t = { flat = Mlkit.Tree.Flat.of_gbdt t.gbdt }

let suggest_compiled ?(nic = Nicsim.Multicore.default_nic) c (d : Nicsim.Perf.demand) =
  Obs.Span.with_ ~cat:"pipeline" "scaleout.suggest" @@ fun () ->
  let raw = Mlkit.Tree.Flat.gbdt_eval c.flat (features d) in
  max 1 (min nic.Nicsim.Multicore.n_cores (int_of_float (Float.round raw)))

(* -- Figure 11a baselines -- *)

type baseline = B_knn of Mlkit.Simple.knn | B_dnn of Mlkit.Nn.mlp | B_automl of Mlkit.Automl.fitted

let train_baseline kind (samples : sample list) =
  let xs = Array.of_list (List.map (fun s -> s.x) samples) in
  let ys = Array.of_list (List.map (fun s -> s.optimal) samples) in
  match kind with
  | `Knn -> B_knn (Mlkit.Simple.knn_fit ~k:5 xs ys)
  | `Dnn ->
    let net =
      Mlkit.Nn.mlp_create (Util.Rng.create 77) ~in_dim:(Array.length xs.(0)) ~hidden:[ 24; 12 ]
        ~out_dim:1
    in
    (* scale targets for conditioning; predictions are unscaled below *)
    Mlkit.Nn.mlp_fit_regression ~epochs:60 net xs (Array.map (fun y -> [| y /. 10.0 |]) ys);
    B_dnn net
  | `Automl -> B_automl (Mlkit.Automl.search_regression xs ys)

let baseline_predict b x =
  match b with
  | B_knn m -> Mlkit.Simple.knn_predict m x
  | B_dnn net -> 10.0 *. (Mlkit.Nn.mlp_predict net x).(0)
  | B_automl f -> Mlkit.Automl.predict f x
