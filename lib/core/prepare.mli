(** Program preparation (§3.1): transform a legacy NF into the uniform IR,
    extract its CFG and API set, and slice it into analyzable code blocks —
    the entry step of Figure 3's PREDICTOFFLOADINGPERF. *)

(** One basic block of the prepared program. *)
type block_info = {
  bid : int;  (** block id in the lowered CFG *)
  src_sid : int;  (** source-statement attribution (see {!Nf_frontend.Lower}) *)
  tokens : int array;  (** compacted-vocabulary word indices *)
  ir_compute : int;  (** IR compute instructions in the block *)
  ir_mem_stateful : int;  (** stateful loads/stores (the paper's "memory") *)
  ir_mem_stateless : int;  (** stack-slot traffic, later register-allocated *)
  api_calls : string list;  (** concrete framework calls in this block *)
}

(** A prepared element. *)
type t = {
  elt : Nf_lang.Ast.element;
  ir : Nf_ir.Ir.func;
  blocks : block_info list;
  api_set : string list;  (** all framework calls — GETAPI, feeds reverse porting *)
  loc : int;  (** source lines of the unported element *)
}

(** Framework calls appearing in one block. *)
val block_api_calls : Nf_ir.Ir.block -> string list

(** Count a block's instructions whose annotation satisfies the predicate. *)
val count_annot : Nf_ir.Ir.block -> (Nf_ir.Ir.annot -> bool) -> int

(** Lower an element, build the CFG and encode every block against
    [vocab]. *)
val prepare : Vocab.t -> Nf_lang.Ast.element -> t

(** {!prepare} through the retained pre-optimization builder and word
    derivation: identical output, the baseline `bench/main.exe parallel`
    runs on. *)
val prepare_reference : Vocab.t -> Nf_lang.Ast.element -> t

(** Direct memory-access estimate: stateful IR loads/stores, which map
    ~1:1 to NIC memory operations (96.4-100% in the paper, §3.2). *)
val memory_estimate : t -> int
