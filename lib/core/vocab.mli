(** Vocabulary compaction and one-hot encoding of IR instructions (§3.2).

    Natural-language models need a bounded vocabulary, but instruction
    operands are unbounded.  Clara abstracts operands into kind classes —
    registers to [VAR], literals to three magnitude classes, stack slots to
    [SLOT], globals to [GLOBAL] — with the paper's exception that
    well-defined header-field names stay concrete.  The result is a few
    hundred distinct words, small enough for basic one-hot encoding. *)

(** The abstract word of one operand ([VAR], [INT_S], [HDR:ip_len], ...). *)
val operand_word : Nf_ir.Ir.operand -> string

(** Strip the structure-specific suffix of a framework call
    ([map_find.tbl] -> [map_find]). *)
val call_word : string -> string

(** The compacted word of an instruction, e.g. ["add i32 VAR INT_S"]. *)
val word : Nf_ir.Ir.instr -> string

(** The retained pre-optimization {!word} (intermediate lists +
    [String.concat]): identical strings, the baseline
    `bench/main.exe parallel` interns with. *)
val word_reference : Nf_ir.Ir.instr -> string

(** The unabstracted word (concrete registers/literals); used only by the
    vocabulary-compaction ablation, where it degrades accuracy exactly as
    the paper's §6 reports. *)
val word_concrete : Nf_ir.Ir.instr -> string

(** A vocabulary maps words to dense one-hot indices.  It grows on the
    training set and is then {!freeze}d for inference; unseen words map to
    the shared UNK index 0. *)
type t = { table : (string, int) Hashtbl.t; mutable frozen : bool }

(** Fresh vocabulary containing only the UNK word. *)
val create : unit -> t

(** Index of [word], allocating a new index unless the vocabulary is
    frozen (then UNK). *)
val index : t -> string -> int

(** Stop allocating: inference mode. *)
val freeze : t -> unit

(** Number of distinct words (including UNK). *)
val size : t -> int

(** Token sequence of a basic block under a custom word function. *)
val encode_block_with :
  word:(Nf_ir.Ir.instr -> string) -> t -> Nf_ir.Ir.block -> int array

(** Token sequence of a basic block under the compacted vocabulary. *)
val encode_block : t -> Nf_ir.Ir.block -> int array

(** Token sequences for every block of a function, paired with block ids. *)
val encode_func : t -> Nf_ir.Ir.func -> (int * int array) list
