(** LSTM + fully-connected regression head (§3.2, Figure 6).

    Consumes sequences of one-hot word indices (the compacted instruction
    vocabulary) and regresses a scalar target (the NIC instruction count of
    a block).  One-hot inputs reduce the input product to a column lookup,
    keeping pure-OCaml training fast.  Trained with full BPTT and Adam,
    with global gradient clipping. *)

type t = {
  vocab : int;
  hidden : int;
  wi : Nn.param; wf : Nn.param; wo : Nn.param; wg : Nn.param;  (** input weights, h x V *)
  ui : Nn.param; uf : Nn.param; uo : Nn.param; ug : Nn.param;  (** recurrent, h x h *)
  bi : Nn.param; bf : Nn.param; bo : Nn.param; bg : Nn.param;  (** biases, h x 1 *)
  fc1 : Nn.param;  (** hidden -> fc_dim, ReLU *)
  fc2 : Nn.param;  (** fc_dim -> out *)
  fc_dim : int;
  out_dim : int;
  mutable y_scale : float;  (** target scaling fitted during training *)
}

(** All trainable parameters (for the optimizer). *)
val params : t -> Nn.param list

(** Fresh Xavier-initialized model; [seed] fixes the initialization. *)
val create : ?hidden:int -> ?fc_dim:int -> ?out_dim:int -> vocab:int -> int -> t

(** Predict the (unscaled) target(s) for a token sequence; zeros for the
    empty sequence. *)
val predict : t -> int array -> float array

(** Preallocated inference working set (recurrence workspace + head
    buffers) for {!predict_into}.  Not thread-safe: guard each scratch
    with the caller's own lock (the serving layer keeps one per
    flow-cache shard). *)
type scratch

(** Fresh scratch sized for [t] (sequence buffers grow on demand). *)
val scratch : t -> scratch

(** [predict_into t sc seq] is bit-identical to [predict t seq] but
    allocation-free after warm-up: results land in (and alias) buffers
    owned by [sc], valid until the next call on the same scratch. *)
val predict_into : t -> scratch -> int array -> float array

(** Full BPTT for one (sequence, scaled target) example: accumulates
    gradients into {!params} and returns the squared error.  Exposed for
    the finite-difference gradient checks. *)
val backward : t -> int array -> float array -> float

(** Fit on (sequence, target) pairs; targets are scaled internally by
    their mean magnitude.  [progress] is invoked after each epoch with
    the mean squared training error.

    [batch = 1] (default) is plain per-example Adam.  [batch > 1]
    accumulates the minibatch's per-example gradients — computed
    concurrently on {!Util.Pool}, merged in example order — before a
    single Adam step; the result is bit-identical for any job count. *)
val fit :
  ?epochs:int ->
  ?lr:float ->
  ?seed:int ->
  ?batch:int ->
  ?progress:(epoch:int -> loss:float -> unit) ->
  t ->
  (int array * float array) array ->
  unit
