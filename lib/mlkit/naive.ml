(** Retained naive reference implementations for the flat-buffer compute
    core.

    These are the pre-flat row-of-rows kernels, kept for two jobs:

    - the equivalence suite proves the flat {!La.Flat} / {!Nn} / {!Lstm} /
      {!Tree} rewrites bit-identical to them, and
    - `bench/main.exe parallel` times the optimized kernels against them,
      so the reported speedups measure real algorithmic + layout wins,
      not a self-comparison.

    Everything here is deliberately serial and allocation-happy — that is
    the point of a baseline.  The only intentional divergence from the
    original seed code is the tree split search: ties in a feature column
    are ordered by (value, original index) — a total order shared with
    the flat implementation — where the seed's unstable sort left tie
    order unspecified. *)

(* -- dense matrix product, textbook triple loop -- *)

let matmul a b =
  let n = Array.length a in
  let kdim = if n = 0 then 0 else Array.length a.(0) in
  let m = if Array.length b = 0 then 0 else Array.length b.(0) in
  Array.init n (fun i ->
      let row = a.(i) in
      Array.init m (fun j ->
          let acc = ref 0.0 in
          for k = 0 to kdim - 1 do
            acc := !acc +. (row.(k) *. b.(k).(j))
          done;
          !acc))

(* -- boxed parameters (the old Nn.param) -- *)

type bparam = {
  w : float array array;
  g : float array array;
  m : float array array;
  v : float array array;
}

let bparam rng rows cols =
  { w = La.randn_mat rng rows cols; g = La.mat rows cols; m = La.mat rows cols; v = La.mat rows cols }

let zero_bparam rows cols =
  { w = La.mat rows cols; g = La.mat rows cols; m = La.mat rows cols; v = La.mat rows cols }

let zero_grad p = Array.iter (fun row -> Array.fill row 0 (Array.length row) 0.0) p.g

type adam = { lr : float; beta1 : float; beta2 : float; eps : float; mutable t : int }

let adam ?(lr = 0.01) () = { lr; beta1 = 0.9; beta2 = 0.999; eps = 1e-8; t = 0 }

let adam_step opt params =
  opt.t <- opt.t + 1;
  let bc1 = 1.0 -. (opt.beta1 ** float_of_int opt.t) in
  let bc2 = 1.0 -. (opt.beta2 ** float_of_int opt.t) in
  List.iter
    (fun p ->
      for i = 0 to Array.length p.w - 1 do
        for j = 0 to Array.length p.w.(i) - 1 do
          let g = p.g.(i).(j) in
          p.m.(i).(j) <- (opt.beta1 *. p.m.(i).(j)) +. ((1.0 -. opt.beta1) *. g);
          p.v.(i).(j) <- (opt.beta2 *. p.v.(i).(j)) +. ((1.0 -. opt.beta2) *. g *. g);
          let mh = p.m.(i).(j) /. bc1 and vh = p.v.(i).(j) /. bc2 in
          p.w.(i).(j) <- p.w.(i).(j) -. (opt.lr *. mh /. (sqrt vh +. opt.eps))
        done
      done)
    params

let clip_gradients params limit =
  let total =
    List.fold_left
      (fun acc p ->
        Array.fold_left
          (fun acc row -> Array.fold_left (fun acc g -> acc +. (g *. g)) acc row)
          acc p.g)
      0.0 params
  in
  let norm = sqrt total in
  if norm > limit then begin
    let s = limit /. norm in
    List.iter
      (fun p -> Array.iter (fun row -> Array.iteri (fun j g -> row.(j) <- s *. g) row) p.g)
      params
  end

let affine p x =
  let rows = Array.length p.w in
  Array.init rows (fun i ->
      let row = p.w.(i) in
      let n = Array.length x in
      let acc = ref row.(n) in
      for j = 0 to n - 1 do
        acc := !acc +. (row.(j) *. x.(j))
      done;
      !acc)

(* -- the old per-step-allocating LSTM -- *)

type lstm = {
  vocab : int;
  hidden : int;
  wi : bparam; wf : bparam; wo : bparam; wg : bparam;
  ui : bparam; uf : bparam; uo : bparam; ug : bparam;
  bi : bparam; bf : bparam; bo : bparam; bg : bparam;
  fc1 : bparam;
  fc2 : bparam;
  fc_dim : int;
  out_dim : int;
  mutable y_scale : float;
}

let lstm_params t =
  [ t.wi; t.wf; t.wo; t.wg; t.ui; t.uf; t.uo; t.ug; t.bi; t.bf; t.bo; t.bg; t.fc1; t.fc2 ]

let lstm_create ?(hidden = 32) ?(fc_dim = 16) ?(out_dim = 1) ~vocab seed =
  let rng = Util.Rng.create seed in
  let p r c = bparam rng r c in
  {
    vocab; hidden;
    wi = p hidden vocab; wf = p hidden vocab; wo = p hidden vocab; wg = p hidden vocab;
    ui = p hidden hidden; uf = p hidden hidden; uo = p hidden hidden; ug = p hidden hidden;
    bi = zero_bparam hidden 1; bf = zero_bparam hidden 1; bo = zero_bparam hidden 1;
    bg = zero_bparam hidden 1;
    fc1 = p fc_dim (hidden + 1);
    fc2 = p out_dim (fc_dim + 1);
    fc_dim; out_dim;
    y_scale = 1.0;
  }

type step_cache = {
  tok : int;
  i_g : float array; f_g : float array; o_g : float array; g_g : float array;
  c : float array; h : float array; c_prev : float array; h_prev : float array;
  tanh_c : float array;
}

let gate t w u b h_prev tok squash =
  let h = t.hidden in
  let z = Array.make h 0.0 in
  La.add_column_into z w.w tok;
  La.mat_vec_add_into z u.w h_prev;
  for k = 0 to h - 1 do
    z.(k) <- squash (z.(k) +. b.w.(k).(0))
  done;
  z

let lstm_forward t (seq : int array) =
  let h0 = La.vec t.hidden and c0 = La.vec t.hidden in
  let caches = ref [] in
  let h_prev = ref h0 and c_prev = ref c0 in
  Array.iter
    (fun tok ->
      let i_g = gate t t.wi t.ui t.bi !h_prev tok La.sigmoid in
      let f_g = gate t t.wf t.uf t.bf !h_prev tok La.sigmoid in
      let o_g = gate t t.wo t.uo t.bo !h_prev tok La.sigmoid in
      let g_g = gate t t.wg t.ug t.bg !h_prev tok tanh in
      let c = Array.init t.hidden (fun k -> (f_g.(k) *. !c_prev.(k)) +. (i_g.(k) *. g_g.(k))) in
      let tanh_c = Array.map tanh c in
      let h = Array.init t.hidden (fun k -> o_g.(k) *. tanh_c.(k)) in
      caches :=
        { tok; i_g; f_g; o_g; g_g; c; h; c_prev = !c_prev; h_prev = !h_prev; tanh_c }
        :: !caches;
      h_prev := h;
      c_prev := c)
    seq;
  (!caches (* reverse chronological *), !h_prev)

let head_forward t h_final =
  let z1 = affine t.fc1 h_final in
  let a1 = Array.map La.relu z1 in
  let out = affine t.fc2 a1 in
  (z1, a1, out)

let lstm_predict t seq =
  if Array.length seq = 0 then Array.make t.out_dim 0.0
  else
    let _, h_final = lstm_forward t seq in
    let _, _, out = head_forward t h_final in
    Array.map (fun o -> o *. t.y_scale) out

let lstm_backward t seq target_scaled =
  let caches, h_final = lstm_forward t seq in
  let z1, a1, out = head_forward t h_final in
  let dout = Array.mapi (fun j o -> 2.0 *. (o -. target_scaled.(j))) out in
  let err = Array.fold_left (fun acc d -> acc +. (d *. d /. 4.0)) 0.0 dout in
  let acc_affine p x dz =
    let n = Array.length x in
    Array.iteri
      (fun r d ->
        let row = p.g.(r) in
        for j = 0 to n - 1 do
          row.(j) <- row.(j) +. (d *. x.(j))
        done;
        row.(n) <- row.(n) +. d)
      dz
  in
  let back_affine p dz xlen =
    let dx = La.vec xlen in
    Array.iteri
      (fun r d ->
        let row = p.w.(r) in
        for j = 0 to xlen - 1 do
          dx.(j) <- dx.(j) +. (row.(j) *. d)
        done)
      dz;
    dx
  in
  acc_affine t.fc2 a1 dout;
  let da1 = back_affine t.fc2 dout t.fc_dim in
  let dz1 = Array.mapi (fun j v -> if z1.(j) > 0.0 then v else 0.0) da1 in
  acc_affine t.fc1 h_final dz1;
  let dh = ref (back_affine t.fc1 dz1 t.hidden) in
  let dc = ref (La.vec t.hidden) in
  List.iter
    (fun sc ->
      let do_g = Array.init t.hidden (fun k -> !dh.(k) *. sc.tanh_c.(k) *. La.dsigmoid sc.o_g.(k)) in
      let dc_total =
        Array.init t.hidden (fun k ->
            !dc.(k) +. (!dh.(k) *. sc.o_g.(k) *. La.dtanh sc.tanh_c.(k)))
      in
      let di = Array.init t.hidden (fun k -> dc_total.(k) *. sc.g_g.(k) *. La.dsigmoid sc.i_g.(k)) in
      let df = Array.init t.hidden (fun k -> dc_total.(k) *. sc.c_prev.(k) *. La.dsigmoid sc.f_g.(k)) in
      let dg = Array.init t.hidden (fun k -> dc_total.(k) *. sc.i_g.(k) *. La.dtanh sc.g_g.(k)) in
      let acc_gate w u b dz =
        for k = 0 to t.hidden - 1 do
          w.g.(k).(sc.tok) <- w.g.(k).(sc.tok) +. dz.(k);
          b.g.(k).(0) <- b.g.(k).(0) +. dz.(k)
        done;
        La.outer_add_into u.g dz sc.h_prev
      in
      acc_gate t.wi t.ui t.bi di;
      acc_gate t.wf t.uf t.bf df;
      acc_gate t.wo t.uo t.bo do_g;
      acc_gate t.wg t.ug t.bg dg;
      let dh_prev = La.vec t.hidden in
      La.axpy 1.0 (La.mat_t_vec t.ui.w di) dh_prev;
      La.axpy 1.0 (La.mat_t_vec t.uf.w df) dh_prev;
      La.axpy 1.0 (La.mat_t_vec t.uo.w do_g) dh_prev;
      La.axpy 1.0 (La.mat_t_vec t.ug.w dg) dh_prev;
      dh := dh_prev;
      dc := Array.init t.hidden (fun k -> dc_total.(k) *. sc.f_g.(k)))
    caches;
  err

let shadow_bparam (p : bparam) =
  { p with g = Array.map (fun row -> Array.make (Array.length row) 0.0) p.g }

let shadow_lstm t =
  {
    t with
    wi = shadow_bparam t.wi; wf = shadow_bparam t.wf;
    wo = shadow_bparam t.wo; wg = shadow_bparam t.wg;
    ui = shadow_bparam t.ui; uf = shadow_bparam t.uf;
    uo = shadow_bparam t.uo; ug = shadow_bparam t.ug;
    bi = shadow_bparam t.bi; bf = shadow_bparam t.bf;
    bo = shadow_bparam t.bo; bg = shadow_bparam t.bg;
    fc1 = shadow_bparam t.fc1; fc2 = shadow_bparam t.fc2;
  }

let add_grads ~into sh =
  List.iter2
    (fun (p : bparam) (sp : bparam) ->
      Array.iteri
        (fun r row ->
          let dst = p.g.(r) in
          Array.iteri (fun c g -> dst.(c) <- dst.(c) +. g) row)
        sp.g)
    (lstm_params into) (lstm_params sh)

(** The old fit loop; the minibatch path computes shadow gradients with a
    plain serial loop (the pool version merged them in example order, so
    the result is the same). *)
let lstm_fit ?(epochs = 12) ?(lr = 0.008) ?(seed = 11) ?(batch = 1) t data =
  let n = Array.length data in
  if n = 0 then ()
  else begin
    let mean_target =
      Array.fold_left (fun acc (_, y) -> acc +. abs_float y.(0)) 0.0 data /. float_of_int n
    in
    t.y_scale <- max 1.0 mean_target;
    let opt = adam ~lr () in
    let rng = Util.Rng.create seed in
    let idx = Array.init n (fun i -> i) in
    let example_step k =
      let seq, y = data.(k) in
      if Array.length seq = 0 then ()
      else begin
        List.iter zero_grad (lstm_params t);
        let y_scaled = Array.map (fun v -> v /. t.y_scale) y in
        ignore (lstm_backward t seq y_scaled);
        clip_gradients (lstm_params t) 5.0;
        adam_step opt (lstm_params t)
      end
    in
    let minibatch_step b0 bsz =
      let contributions =
        Array.init bsz (fun j ->
            let seq, y = data.(idx.(b0 + j)) in
            if Array.length seq = 0 then None
            else begin
              let sh = shadow_lstm t in
              let y_scaled = Array.map (fun v -> v /. t.y_scale) y in
              ignore (lstm_backward sh seq y_scaled);
              Some sh
            end)
      in
      List.iter zero_grad (lstm_params t);
      let contributed = ref false in
      Array.iter
        (function
          | None -> ()
          | Some sh ->
            contributed := true;
            add_grads ~into:t sh)
        contributions;
      if !contributed then begin
        clip_gradients (lstm_params t) 5.0;
        adam_step opt (lstm_params t)
      end
    in
    for _epoch = 1 to epochs do
      Util.Rng.shuffle rng idx;
      if batch <= 1 then Array.iter example_step idx
      else begin
        let b0 = ref 0 in
        while !b0 < n do
          let bsz = min batch (n - !b0) in
          minibatch_step !b0 bsz;
          b0 := !b0 + bsz
        done
      end
    done
  end

(* -- the old per-node-sorting tree grower -- *)

let mean_of idx ys =
  let n = Array.length idx in
  if n = 0 then 0.0
  else Array.fold_left (fun acc i -> acc +. ys.(i)) 0.0 idx /. float_of_int n

(** Grow a regression tree by sorting every feature at every node —
    O(features * n log n) per node, fully serial.  Ties order by
    (value, original index), the shared canonical order. *)
let grow ?(config = Tree.default_grow) xs ys =
  let dim = if Array.length xs = 0 then 0 else Array.length xs.(0) in
  let rng = Util.Rng.create config.Tree.seed in
  let rec build idx depth =
    let n = Array.length idx in
    if n <= config.Tree.min_leaf || depth >= config.Tree.max_depth then
      Tree.Leaf (mean_of idx ys)
    else begin
      let features =
        match config.Tree.feature_subset with
        | None -> Array.init dim (fun f -> f)
        | Some k -> Util.Rng.sample_without_replacement rng dim (min k dim)
      in
      let total_y = Array.fold_left (fun acc i -> acc +. ys.(i)) 0.0 idx in
      let total_y2 = Array.fold_left (fun acc i -> acc +. (ys.(i) *. ys.(i))) 0.0 idx in
      let base = total_y2 -. (total_y *. total_y /. float_of_int n) in
      let feature_best f =
        let best = ref None in
        let sorted = Array.copy idx in
        Array.sort
          (fun a b ->
            let va = xs.(a).(f) and vb = xs.(b).(f) in
            if va < vb then -1 else if va > vb then 1 else Stdlib.compare a b)
          sorted;
        let left_y = ref 0.0 and left_y2 = ref 0.0 in
        for k = 0 to n - 2 do
          let i = sorted.(k) in
          left_y := !left_y +. ys.(i);
          left_y2 := !left_y2 +. (ys.(i) *. ys.(i));
          let nl = k + 1 and nr = n - k - 1 in
          if
            nl >= config.Tree.min_leaf && nr >= config.Tree.min_leaf
            && xs.(sorted.(k)).(f) < xs.(sorted.(k + 1)).(f)
          then begin
            let ry = total_y -. !left_y and ry2 = total_y2 -. !left_y2 in
            let sse_l = !left_y2 -. (!left_y *. !left_y /. float_of_int nl) in
            let sse_r = ry2 -. (ry *. ry /. float_of_int nr) in
            let gain = base -. sse_l -. sse_r in
            let thr = 0.5 *. (xs.(sorted.(k)).(f) +. xs.(sorted.(k + 1)).(f)) in
            match !best with
            | Some (g, _, _, _) when g >= gain -> ()
            | _ -> best := Some (gain, f, thr, k + 1)
          end
        done;
        !best
      in
      let better a b =
        match (a, b) with
        | Some (ga, _, _, _), Some (gb, _, _, _) -> if gb > ga then b else a
        | Some _, None -> a
        | None, _ -> b
      in
      let n_features = Array.length features in
      let best =
        if n_features = 0 then None
        else begin
          let acc = ref (feature_best features.(0)) in
          for fi = 1 to n_features - 1 do
            acc := better !acc (feature_best features.(fi))
          done;
          !acc
        end
      in
      match best with
      | Some (gain, f, thr, _) when gain > 1e-12 ->
        let left = Array.of_list (List.filter (fun i -> xs.(i).(f) <= thr) (Array.to_list idx)) in
        let right = Array.of_list (List.filter (fun i -> xs.(i).(f) > thr) (Array.to_list idx)) in
        Tree.Split
          { feature = f; threshold = thr; left = build left (depth + 1); right = build right (depth + 1) }
      | Some _ | None -> Tree.Leaf (mean_of idx ys)
    end
  in
  { Tree.root = build (Array.init (Array.length xs) (fun i -> i)) 0 }

(** The old boosting loop over {!grow}; returns a regular {!Tree.gbdt}. *)
let gbdt_fit ?(n_stages = 60) ?(shrinkage = 0.15)
    ?(config = { Tree.default_grow with Tree.max_depth = 3 }) xs ys =
  let n = Array.length ys in
  let init = if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
  let preds = Array.make n init in
  let stages = ref [] in
  for stage = 1 to n_stages do
    let residuals = Array.init n (fun i -> ys.(i) -. preds.(i)) in
    let tree = grow ~config:{ config with Tree.seed = config.Tree.seed + stage } xs residuals in
    Array.iteri (fun i x -> preds.(i) <- preds.(i) +. (shrinkage *. Tree.predict tree x)) xs;
    stages := tree :: !stages
  done;
  { Tree.init; Tree.shrinkage; Tree.stages = List.rev !stages }
