(** Small dense linear-algebra kernels: vectors are [float array], matrices
    row-major [float array array] — sized for hidden dims of tens and
    feature dims of hundreds. *)

val vec : int -> float array
val mat : int -> int -> float array array
val copy_mat : float array array -> float array array

(** Xavier-style random initialization. *)
val randn_mat : Util.Rng.t -> int -> int -> float array array

val dot : float array -> float array -> float
val mat_vec : float array array -> float array -> float array

(** Accumulate m*x into dst. *)
val mat_vec_add_into : float array -> float array array -> float array -> unit

(** Accumulate column [j] of [m] into [dst] — one-hot multiplication, the
    fast path for one-hot-encoded words. *)
val add_column_into : float array -> float array array -> int -> unit

(** y <- y + alpha * x. *)
val axpy : float -> float array -> float array -> unit

val scale_vec : float -> float array -> float array
val add_vec : float array -> float array -> float array
val sub_vec : float array -> float array -> float array
val hadamard : float array -> float array -> float array
val l2_norm : float array -> float
val euclidean : float array -> float array -> float

(** g <- g + a * b^T (backprop outer product). *)
val outer_add_into : float array array -> float array -> float array -> unit

(** m^T * a (gradient wrt a linear layer's input). *)
val mat_t_vec : float array array -> float array -> float array

val sigmoid : float -> float

(** Derivative given the *output* value. *)
val dsigmoid : float -> float

val dtanh : float -> float
val relu : float -> float
val mean_vec : float array array -> float array

(** Column-wise standardization; near-constant columns get unit scale so
    unseen values cannot explode at inference.  Returns (transformed,
    mean, std). *)
val standardize : float array array -> float array array * float array * float array

val apply_standardize : float array -> float array -> float array -> float array

(** Flat row-major matrices for the hot training loops.  Every kernel
    preserves the floating-point evaluation order of its naive
    counterpart, so results are bit-identical to the row-of-rows code it
    replaces (checked against {!Naive} by the equivalence suite). *)
module Flat : sig
  type mat = { a : float array; rows : int; cols : int }

  val create : int -> int -> mat
  val copy : mat -> mat
  val fill : mat -> float -> unit
  val get : mat -> int -> int -> float
  val set : mat -> int -> int -> float -> unit

  (** Xavier-style init; same draw order as {!randn_mat}. *)
  val randn : Util.Rng.t -> int -> int -> mat

  val of_rows : float array array -> mat
  val to_rows : mat -> float array array

  (** dst <- dst + m * x. *)
  val gemv_add : float array -> mat -> float array -> unit

  (** dst <- dst + m^T * y. *)
  val gemv_t_add : float array -> mat -> float array -> unit

  (** dst <- dst + column j of m (one-hot fast path). *)
  val add_col_into : float array -> mat -> int -> unit

  (** g <- g + a * b^T. *)
  val outer_add : mat -> float array -> float array -> unit

  (** c <- a * b, cache-blocked over a packed transpose of b; each cell
      sums k ascending so the result matches the textbook triple loop
      bit-for-bit.
      @raise Invalid_argument on dimension mismatch. *)
  val gemm : a:mat -> b:mat -> mat -> unit
end
