(** Neural-network building blocks: Adam-optimized dense parameters and a
    multi-layer perceptron (the "DNN" baseline of Figures 8/9/11). *)

(** A dense parameter matrix with its gradient and Adam moments, all in
    flat row-major buffers.  The optimizer walks elements in row-major
    order — the same order the old row-of-rows representation used, so
    training trajectories are unchanged bit-for-bit. *)
type param = {
  w : La.Flat.mat;
  g : La.Flat.mat;
  m : La.Flat.mat;
  v : La.Flat.mat;
}

(** Xavier-initialized parameter. *)
val param : Util.Rng.t -> int -> int -> param

val zero_param : int -> int -> param

(** Wrap an existing weight matrix (given as rows) as a parameter with
    zeroed gradient and Adam state — the constructor model-persistence
    codecs rebuild from. *)
val param_of_weights : float array array -> param

(** The weights back as rows (for the wire codecs; the on-disk format
    predates the flat representation and stays row-oriented). *)
val weights_of_param : param -> float array array

val rows : param -> int
val cols : param -> int

val zero_grad : param -> unit

type adam = { lr : float; beta1 : float; beta2 : float; eps : float; mutable t : int }

val adam : ?lr:float -> unit -> adam

(** One Adam step after gradients have been accumulated. *)
val adam_step : adam -> param list -> unit

(** Clip the global gradient norm across parameters to [limit]. *)
val clip_gradients : param list -> float -> unit

(** {1 Multi-layer perceptron} *)

(** Layers are (out x (in+1)) with the bias in the last column; hidden
    activations are ReLU, the output layer is linear.  Inputs are
    standardized at fit time. *)
type mlp = {
  layers : param list;
  mutable mu : float array;
  mutable sd : float array;
  out_dim : int;
}

val mlp_create : Util.Rng.t -> in_dim:int -> hidden:int list -> out_dim:int -> mlp

(** Affine layer application (bias in the last column). *)
val affine : param -> float array -> float array

(** Forward pass returning per-layer (input, pre-activation) caches and
    the linear output. *)
val mlp_forward : mlp -> float array -> (float array * float array) list * float array

val mlp_predict : mlp -> float array -> float array

(** Backprop a gradient at the linear output, accumulating parameter
    gradients. *)
val mlp_backward : mlp -> (float array * float array) list -> float array -> unit

(** MSE regression training (SGD over shuffled samples, Adam, clipping). *)
val mlp_fit_regression :
  ?epochs:int -> ?lr:float -> ?seed:int -> mlp -> float array array -> float array array -> unit

(** Logistic-loss binary training; labels in {0,1}; out_dim must be 1. *)
val mlp_fit_binary :
  ?epochs:int -> ?lr:float -> ?seed:int -> mlp -> float array array -> float array -> unit

(** Positive-class probability. *)
val mlp_predict_binary : mlp -> float array -> float
