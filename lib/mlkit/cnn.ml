(** 1-D convolutional network over token sequences (the "CNN" baseline of
    Figure 8, in the style of sentence-classification CNNs).

    Architecture: one-hot tokens -> conv1d (window w, f filters, ReLU) ->
    global max-pool -> FC head.  Backprop routes gradients through the
    max-pool winners only. *)

type t = {
  vocab : int;
  window : int;
  filters : int;
  conv : Nn.param;  (** filters x (window * vocab + 1); one-hot keeps this sparse *)
  fc : Nn.param;  (** out x (filters + 1) *)
  mutable y_scale : float;
}

let create ?(window = 3) ?(filters = 24) ?(out_dim = 1) ~vocab seed =
  let rng = Util.Rng.create seed in
  {
    vocab;
    window;
    filters;
    conv = Nn.param rng filters ((window * vocab) + 1);
    fc = Nn.param rng out_dim (filters + 1);
    y_scale = 1.0;
  }

let params t = [ t.conv; t.fc ]

(** Convolution activation of filter [f] at position [pos] (tokens are
    one-hot: pick one weight per window slot). *)
let conv_at t (seq : int array) f pos =
  let w = t.conv.Nn.w.La.Flat.a in
  let base = f * t.conv.Nn.w.La.Flat.cols in
  let acc = ref w.(base + (t.window * t.vocab)) in
  for k = 0 to t.window - 1 do
    if pos + k < Array.length seq then acc := !acc +. w.(base + (k * t.vocab) + seq.(pos + k))
  done;
  !acc

(** Forward pass: per-filter max-pooled ReLU activations and the argmax
    positions (needed for backprop). *)
let forward t seq =
  let positions = max 1 (Array.length seq - t.window + 1) in
  let pooled = Array.make t.filters 0.0 in
  let arg = Array.make t.filters 0 in
  for f = 0 to t.filters - 1 do
    let best = ref neg_infinity and bi = ref 0 in
    for pos = 0 to positions - 1 do
      let z = conv_at t seq f pos in
      if z > !best then begin
        best := z;
        bi := pos
      end
    done;
    pooled.(f) <- La.relu !best;
    arg.(f) <- !bi
  done;
  (pooled, arg)

let predict t seq =
  if Array.length seq = 0 then Array.make (Nn.rows t.fc) 0.0
  else begin
    let pooled, _ = forward t seq in
    Array.map (fun o -> o *. t.y_scale) (Nn.affine t.fc pooled)
  end

let backward t seq target_scaled =
  let pooled, arg = forward t seq in
  let out = Nn.affine t.fc pooled in
  let dout = Array.mapi (fun j o -> 2.0 *. (o -. target_scaled.(j))) out in
  let err = Array.fold_left (fun acc d -> acc +. (d *. d /. 4.0)) 0.0 dout in
  (* FC grads *)
  let fcg = t.fc.Nn.g.La.Flat.a and fccols = t.fc.Nn.g.La.Flat.cols in
  Array.iteri
    (fun r d ->
      let base = r * fccols in
      for j = 0 to t.filters - 1 do
        fcg.(base + j) <- fcg.(base + j) +. (d *. pooled.(j))
      done;
      fcg.(base + t.filters) <- fcg.(base + t.filters) +. d)
    dout;
  (* pooled grads *)
  let dpool = La.vec t.filters in
  let fcw = t.fc.Nn.w.La.Flat.a in
  Array.iteri
    (fun r d ->
      let base = r * fccols in
      for j = 0 to t.filters - 1 do
        dpool.(j) <- dpool.(j) +. (fcw.(base + j) *. d)
      done)
    dout;
  (* through ReLU max-pool into the winning window only *)
  let cg = t.conv.Nn.g.La.Flat.a and ccols = t.conv.Nn.g.La.Flat.cols in
  for f = 0 to t.filters - 1 do
    if pooled.(f) > 0.0 then begin
      let pos = arg.(f) in
      let base = f * ccols in
      for k = 0 to t.window - 1 do
        if pos + k < Array.length seq then begin
          let o = base + (k * t.vocab) + seq.(pos + k) in
          cg.(o) <- cg.(o) +. dpool.(f)
        end
      done;
      cg.(base + (t.window * t.vocab)) <- cg.(base + (t.window * t.vocab)) +. dpool.(f)
    end
  done;
  err

let fit ?(epochs = 15) ?(lr = 0.01) ?(seed = 19) t data =
  let n = Array.length data in
  if n = 0 then ()
  else begin
    let mean_target =
      Array.fold_left (fun acc (_, y) -> acc +. abs_float y.(0)) 0.0 data /. float_of_int n
    in
    t.y_scale <- max 1.0 mean_target;
    let opt = Nn.adam ~lr () in
    let rng = Util.Rng.create seed in
    let idx = Array.init n (fun i -> i) in
    for _ = 1 to epochs do
      Util.Rng.shuffle rng idx;
      Array.iter
        (fun k ->
          let seq, y = data.(k) in
          if Array.length seq > 0 then begin
            List.iter Nn.zero_grad (params t);
            let y_scaled = Array.map (fun v -> v /. t.y_scale) y in
            ignore (backward t seq y_scaled);
            Nn.clip_gradients (params t) 5.0;
            Nn.adam_step opt (params t)
          end)
        idx
    done
  end
