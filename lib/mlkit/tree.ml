(** CART decision trees, random forests and gradient-boosted trees (the
    DT/GBDT baselines and Clara's scale-out regressor, §4.2). *)

type node =
  | Leaf of float
  | Split of { feature : int; threshold : float; left : node; right : node }

type t = { root : node }

let rec predict_node node x =
  match node with
  | Leaf v -> v
  | Split { feature; threshold; left; right } ->
    if x.(feature) <= threshold then predict_node left x else predict_node right x

let predict t x = predict_node t.root x

let mean_of idx ys =
  let n = Array.length idx in
  if n = 0 then 0.0
  else Array.fold_left (fun acc i -> acc +. ys.(i)) 0.0 idx /. float_of_int n

type grow_config = { max_depth : int; min_leaf : int; max_cuts : int; feature_subset : int option; seed : int }

let default_grow = { max_depth = 5; min_leaf = 3; max_cuts = 16; feature_subset = None; seed = 3 }

(** Grow a regression tree on flat column-major feature buffers.

    The rows are transposed once into one [float array] per-feature
    column, each column's index order is sorted once at the root (by
    (value, original index) — the canonical total order shared with
    {!Naive.grow}), and every split partitions the per-feature orders
    with a stable sweep.  A node therefore costs O(features * n) — no
    per-node sorting, no polymorphic compare, no row pointer chasing —
    against the reference's O(features * n log n), while scanning cut
    candidates in exactly the reference's order, so the grown tree is
    bit-identical to the naive grower. *)
let grow ?(config = default_grow) xs ys =
  let n = Array.length xs in
  let dim = if n = 0 then 0 else Array.length xs.(0) in
  let rng = Util.Rng.create config.seed in
  (* column-major copy: feature f of row i at cols.(f*n + i) *)
  let cols = Array.make (max 1 (dim * n)) 0.0 in
  for i = 0 to n - 1 do
    let xi = xs.(i) in
    for f = 0 to dim - 1 do
      cols.((f * n) + i) <- xi.(f)
    done
  done;
  (* root candidate order, one segment of n indices per feature *)
  let root_order = Array.make (max 1 (dim * n)) 0 in
  for f = 0 to dim - 1 do
    let cbase = f * n in
    let seg = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let va = cols.(cbase + a) and vb = cols.(cbase + b) in
        if va < vb then -1 else if va > vb then 1 else Stdlib.compare a b)
      seg;
    Array.blit seg 0 root_order cbase n
  done;
  (* scratch for split partitioning, indexed by original row *)
  let side = Array.make (max 1 n) false in
  (* [idx] is the node's rows in ascending original order (the order the
     reference accumulates node totals and leaf means in); [order] holds
     [dim] segments of the same rows, each in its feature's sorted order. *)
  let rec build (idx : int array) (order : int array) depth =
    let m = Array.length idx in
    if m <= config.min_leaf || depth >= config.max_depth then Leaf (mean_of idx ys)
    else begin
      let features =
        match config.feature_subset with
        | None -> Array.init dim (fun f -> f)
        | Some k -> Util.Rng.sample_without_replacement rng dim (min k dim)
      in
      (* best split minimizes left SSE + right SSE, tracked via sums:
         sse = sum(y^2) - (sum y)^2 / n *)
      let total_y = Array.fold_left (fun acc i -> acc +. ys.(i)) 0.0 idx in
      let total_y2 = Array.fold_left (fun acc i -> acc +. (ys.(i) *. ys.(i))) 0.0 idx in
      let base = total_y2 -. (total_y *. total_y /. float_of_int m) in
      (* Per-feature scans are independent: fan them out on the domain pool
         and keep the serial tie-breaking (earliest feature in [features]
         order, then earliest cut) via a left-biased ordered reduction, so
         the grown tree is bit-identical to a serial scan. *)
      let feature_best f =
        let best = ref None in
        let obase = f * m in
        let cbase = f * n in
        let left_y = ref 0.0 and left_y2 = ref 0.0 in
        for k = 0 to m - 2 do
          let i = order.(obase + k) in
          left_y := !left_y +. ys.(i);
          left_y2 := !left_y2 +. (ys.(i) *. ys.(i));
          let nl = k + 1 and nr = m - k - 1 in
          (* a valid cut needs distinct adjacent values and min_leaf sizes *)
          let vk = cols.(cbase + i) in
          let vk1 = cols.(cbase + order.(obase + k + 1)) in
          if nl >= config.min_leaf && nr >= config.min_leaf && vk < vk1 then begin
            let ry = total_y -. !left_y and ry2 = total_y2 -. !left_y2 in
            let sse_l = !left_y2 -. (!left_y *. !left_y /. float_of_int nl) in
            let sse_r = ry2 -. (ry *. ry /. float_of_int nr) in
            let gain = base -. sse_l -. sse_r in
            let thr = 0.5 *. (vk +. vk1) in
            match !best with
            | Some (g, _, _, _) when g >= gain -> ()
            | _ -> best := Some (gain, f, thr, k + 1)
          end
        done;
        !best
      in
      let better a b =
        match (a, b) with
        | Some (ga, _, _, _), Some (gb, _, _, _) -> if gb > ga then b else a
        | Some _, None -> a
        | None, _ -> b
      in
      let n_features = Array.length features in
      let best =
        if n_features = 0 then None
        else if m * n_features < 4096 then begin
          (* node too small to amortize a parallel region; the pool's serial
             path computes the same left-biased ordered reduction *)
          let acc = ref (feature_best features.(0)) in
          for fi = 1 to n_features - 1 do
            acc := better !acc (feature_best features.(fi))
          done;
          !acc
        end
        else
          Util.Pool.parallel_reduce ~chunk:1 ~cost:(0.01 *. float_of_int m) ~combine:better
            (fun fi -> feature_best features.(fi))
            n_features
      in
      match best with
      | Some (gain, f, thr, _) when gain > 1e-12 ->
        let cfbase = f * n in
        let ml = ref 0 in
        Array.iter
          (fun i ->
            let l = cols.(cfbase + i) <= thr in
            side.(i) <- l;
            if l then incr ml)
          idx;
        let ml = !ml and mr = m - !ml in
        let lidx = Array.make (max 1 ml) 0 and ridx = Array.make (max 1 mr) 0 in
        let li = ref 0 and ri = ref 0 in
        Array.iter
          (fun i ->
            if side.(i) then begin lidx.(!li) <- i; incr li end
            else begin ridx.(!ri) <- i; incr ri end)
          idx;
        let lidx = Array.sub lidx 0 ml and ridx = Array.sub ridx 0 mr in
        (* stable partition of every feature's order segment: a subsequence
           of a (value, index)-sorted sequence is still sorted, so children
           need no re-sorting *)
        let lorder = Array.make (max 1 (dim * ml)) 0 in
        let rorder = Array.make (max 1 (dim * mr)) 0 in
        for f' = 0 to dim - 1 do
          let obase = f' * m in
          let lbase = f' * ml and rbase = f' * mr in
          let li = ref 0 and ri = ref 0 in
          for k = 0 to m - 1 do
            let i = order.(obase + k) in
            if side.(i) then begin
              lorder.(lbase + !li) <- i;
              incr li
            end
            else begin
              rorder.(rbase + !ri) <- i;
              incr ri
            end
          done
        done;
        Split
          {
            feature = f;
            threshold = thr;
            left = build lidx lorder (depth + 1);
            right = build ridx rorder (depth + 1);
          }
      | Some _ | None -> Leaf (mean_of idx ys)
    end
  in
  { root = build (Array.init n (fun i -> i)) root_order 0 }

(* -- Random forest (regression; classify by thresholding the mean) -- *)

type forest = { trees : t list }

let forest_fit ?(n_trees = 20) ?(config = default_grow) ?(seed = 5) xs ys =
  let n = Array.length xs in
  let rng = Util.Rng.create seed in
  (* draw every bootstrap serially (one shared rng stream), then grow the
     independent trees on the pool — same trees as a fully serial fit *)
  let bootstraps = List.init n_trees (fun _ -> Array.init n (fun _ -> Util.Rng.int rng n)) in
  let trees =
    Util.Pool.parallel_map_list ~chunk:1
      (fun (k, idx) ->
        let bx = Array.map (fun i -> xs.(i)) idx in
        let by = Array.map (fun i -> ys.(i)) idx in
        let dim = if n = 0 then 1 else Array.length xs.(0) in
        let sub = max 1 (dim * 2 / 3) in
        grow ~config:{ config with feature_subset = Some sub; seed = seed + (k * 131) } bx by)
      (List.mapi (fun k idx -> (k, idx)) bootstraps)
  in
  { trees }

let forest_predict f x =
  let n = List.length f.trees in
  List.fold_left (fun acc t -> acc +. predict t x) 0.0 f.trees /. float_of_int (max 1 n)

(* -- Gradient boosting -- *)

type gbdt = { init : float; shrinkage : float; stages : t list }

(** Least-squares gradient boosting: each stage fits the residuals. *)
let gbdt_fit ?(n_stages = 60) ?(shrinkage = 0.15) ?(config = { default_grow with max_depth = 3 }) xs ys =
  Obs.Span.with_ ~cat:"mlkit" "gbdt.fit" @@ fun () ->
  let n = Array.length ys in
  let init = if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
  let preds = Array.make n init in
  let stages = ref [] in
  let series = Obs.Series.create ~capacity:(max 16 n_stages) "gbdt.fit" in
  for stage = 1 to n_stages do
    let residuals = Array.init n (fun i -> ys.(i) -. preds.(i)) in
    let tree = grow ~config:{ config with seed = config.seed + stage } xs residuals in
    Array.iteri (fun i x -> preds.(i) <- preds.(i) +. (shrinkage *. predict tree x)) xs;
    stages := tree :: !stages;
    let mse =
      if n = 0 then 0.0
      else begin
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          let r = ys.(i) -. preds.(i) in
          acc := !acc +. (r *. r)
        done;
        !acc /. float_of_int n
      end
    in
    Obs.Series.record series ~step:stage mse
  done;
  { init; shrinkage; stages = List.rev !stages }

let gbdt_predict g x =
  List.fold_left (fun acc t -> acc +. (g.shrinkage *. predict t x)) g.init g.stages

(** Binary classification via boosting on the logistic gradient; labels in
    {0,1}; prediction is a probability. *)
let gbdt_fit_binary ?(n_stages = 60) ?(shrinkage = 0.2) ?(config = { default_grow with max_depth = 3 }) xs ys =
  Obs.Span.with_ ~cat:"mlkit" "gbdt.fit_binary" @@ fun () ->
  let n = Array.length ys in
  let scores = Array.make n 0.0 in
  let stages = ref [] in
  let series = Obs.Series.create ~capacity:(max 16 n_stages) "gbdt.fit_binary" in
  for stage = 1 to n_stages do
    let grad = Array.init n (fun i -> ys.(i) -. La.sigmoid scores.(i)) in
    let tree = grow ~config:{ config with seed = config.seed + stage } xs grad in
    Array.iteri (fun i x -> scores.(i) <- scores.(i) +. (shrinkage *. predict tree x)) xs;
    stages := tree :: !stages;
    let logloss =
      if n = 0 then 0.0
      else begin
        let acc = ref 0.0 in
        for i = 0 to n - 1 do
          let p = Float.min (1.0 -. 1e-12) (Float.max 1e-12 (La.sigmoid scores.(i))) in
          acc := !acc -. ((ys.(i) *. log p) +. ((1.0 -. ys.(i)) *. log (1.0 -. p)))
        done;
        !acc /. float_of_int n
      end
    in
    Obs.Series.record series ~step:stage logloss
  done;
  { init = 0.0; shrinkage; stages = List.rev !stages }

let gbdt_predict_binary g x = La.sigmoid (gbdt_predict g x -. g.init +. g.init)

(* -- Flattened ensembles --

   Pointer-chasing over boxed [node] trees costs a cache miss per level;
   the serving fast path wants ensembles it can install once and evaluate
   allocation-free.  [Flat] lowers a tree to {!La.Flat}-style parallel
   arrays — per node a feature index (or [-1] for a leaf), a threshold
   (reused as the leaf value) and child indices — in preorder, so a root
   to leaf walk is a few array reads.  Every comparison and accumulation
   keeps the exact order of {!predict} / {!forest_predict} /
   {!gbdt_predict}, so evaluation is bit-identical to the boxed path (the
   equivalence tests check this). *)

module Flat = struct
  type tree = {
    feat : int array;  (** >= 0: split feature; -1: leaf *)
    thr : float array;  (** threshold, or the leaf value *)
    left : int array;
    right : int array;
  }

  let of_tree (t : t) =
    let rec count = function Leaf _ -> 1 | Split s -> 1 + count s.left + count s.right in
    let n = count t.root in
    let feat = Array.make n (-1) and thr = Array.make n 0.0 in
    let left = Array.make n 0 and right = Array.make n 0 in
    let next = ref 0 in
    let rec emit node =
      let i = !next in
      incr next;
      (match node with
      | Leaf v -> thr.(i) <- v
      | Split s ->
        feat.(i) <- s.feature;
        thr.(i) <- s.threshold;
        left.(i) <- emit s.left;
        right.(i) <- emit s.right);
      i
    in
    ignore (emit t.root);
    { feat; thr; left; right }

  (* same decision as [predict_node]: x.(feature) <= threshold goes left *)
  let eval ft x =
    let i = ref 0 in
    let f = ref ft.feat.(0) in
    while !f >= 0 do
      i := (if x.(!f) <= ft.thr.(!i) then ft.left.(!i) else ft.right.(!i));
      f := ft.feat.(!i)
    done;
    ft.thr.(!i)

  type gbdt_flat = { g_init : float; g_shrinkage : float; g_stages : tree array }

  let of_gbdt (g : gbdt) =
    { g_init = g.init;
      g_shrinkage = g.shrinkage;
      g_stages = Array.of_list (List.map of_tree g.stages) }

  let gbdt_eval g x =
    let acc = ref g.g_init in
    for k = 0 to Array.length g.g_stages - 1 do
      acc := !acc +. (g.g_shrinkage *. eval g.g_stages.(k) x)
    done;
    !acc

  type forest_flat = { f_trees : tree array; f_n : float }

  let of_forest (f : forest) =
    { f_trees = Array.of_list (List.map of_tree f.trees);
      f_n = float_of_int (max 1 (List.length f.trees)) }

  let forest_eval f x =
    let acc = ref 0.0 in
    for k = 0 to Array.length f.f_trees - 1 do
      acc := !acc +. eval f.f_trees.(k) x
    done;
    !acc /. f.f_n
end
