(** CART decision trees, random forests and gradient boosting — the
    DT/GBDT baselines and Clara's scale-out regressor (§4.2) and the base
    learner of the LambdaMART ranker (§4.5). *)

type node =
  | Leaf of float
  | Split of { feature : int; threshold : float; left : node; right : node }

type t = { root : node }

val predict : t -> float array -> float

type grow_config = {
  max_depth : int;
  min_leaf : int;
  max_cuts : int;  (** retained for compatibility; splits scan all cuts *)
  feature_subset : int option;  (** random subset per node (forests) *)
  seed : int;
}

val default_grow : grow_config

(** Grow a least-squares regression tree; split search sorts each feature
    once per node and scans cut positions with prefix sums. *)
val grow : ?config:grow_config -> float array array -> float array -> t

(** {1 Random forest} *)

type forest = { trees : t list }

(** Bootstrap-aggregated trees with per-node feature subsetting. *)
val forest_fit :
  ?n_trees:int -> ?config:grow_config -> ?seed:int -> float array array -> float array -> forest

val forest_predict : forest -> float array -> float

(** {1 Gradient boosting} *)

type gbdt = { init : float; shrinkage : float; stages : t list }

(** Least-squares boosting: each stage fits the residuals. *)
val gbdt_fit :
  ?n_stages:int -> ?shrinkage:float -> ?config:grow_config -> float array array -> float array -> gbdt

val gbdt_predict : gbdt -> float array -> float

(** Binary classification by boosting the logistic gradient; labels in
    {0,1}. *)
val gbdt_fit_binary :
  ?n_stages:int -> ?shrinkage:float -> ?config:grow_config -> float array array -> float array -> gbdt

(** Positive-class probability. *)
val gbdt_predict_binary : gbdt -> float array -> float

(** {1 Flattened ensembles}

    Trees lowered to {!La.Flat}-style parallel node arrays for
    allocation-free, cache-friendly evaluation on the serving fast path.
    Evaluation is bit-identical to {!predict} / {!forest_predict} /
    {!gbdt_predict} on the boxed representation. *)

module Flat : sig
  type tree = {
    feat : int array;  (** >= 0: split feature; -1: leaf *)
    thr : float array;  (** threshold, or the leaf value *)
    left : int array;
    right : int array;
  }

  val of_tree : t -> tree
  val eval : tree -> float array -> float

  type gbdt_flat = { g_init : float; g_shrinkage : float; g_stages : tree array }

  val of_gbdt : gbdt -> gbdt_flat
  val gbdt_eval : gbdt_flat -> float array -> float

  type forest_flat = { f_trees : tree array; f_n : float }

  val of_forest : forest -> forest_flat
  val forest_eval : forest_flat -> float array -> float
end
