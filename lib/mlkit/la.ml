(** Small dense linear-algebra kernels for the ML toolkit.

    Vectors are [float array], matrices are row-major [float array array].
    Everything is allocation-explicit and good enough for the model sizes
    Clara needs (hidden dims of tens, feature dims of hundreds). *)

let vec n = Array.make n 0.0

let mat rows cols = Array.init rows (fun _ -> Array.make cols 0.0)

let copy_mat m = Array.map Array.copy m

(** Xavier-style random initialization. *)
let randn_mat rng rows cols =
  let scale = sqrt (2.0 /. float_of_int (rows + cols)) in
  Array.init rows (fun _ -> Array.init cols (fun _ -> scale *. Util.Rng.gaussian rng))

let dot a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

(** [mat_vec m x] = m * x. *)
let mat_vec m x =
  Array.map (fun row -> dot row x) m

(** [mat_vec_add_into dst m x] accumulates m*x into dst. *)
let mat_vec_add_into dst m x =
  Array.iteri (fun i row -> dst.(i) <- dst.(i) +. dot row x) m

(** Accumulate column [j] of [m] into [dst] — multiplication by a one-hot
    vector, the fast path for one-hot-encoded instruction words. *)
let add_column_into dst m j =
  for i = 0 to Array.length m - 1 do
    dst.(i) <- dst.(i) +. m.(i).(j)
  done

let axpy alpha x y =
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (alpha *. x.(i))
  done

let scale_vec alpha x = Array.map (fun v -> alpha *. v) x

let add_vec a b = Array.init (Array.length a) (fun i -> a.(i) +. b.(i))
let sub_vec a b = Array.init (Array.length a) (fun i -> a.(i) -. b.(i))

let hadamard a b = Array.init (Array.length a) (fun i -> a.(i) *. b.(i))

let l2_norm x = sqrt (dot x x)

let euclidean a b =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    let d = a.(i) -. b.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

(** Outer-product accumulation: g += a * b^T, used by backprop. *)
let outer_add_into g a b =
  for i = 0 to Array.length a - 1 do
    let gi = g.(i) in
    let ai = a.(i) in
    for j = 0 to Array.length b - 1 do
      gi.(j) <- gi.(j) +. (ai *. b.(j))
    done
  done

(** g^T * a: gradient wrt the input of a linear layer. *)
let mat_t_vec m a =
  let cols = if Array.length m = 0 then 0 else Array.length m.(0) in
  let out = vec cols in
  for i = 0 to Array.length m - 1 do
    let row = m.(i) in
    let ai = a.(i) in
    for j = 0 to cols - 1 do
      out.(j) <- out.(j) +. (row.(j) *. ai)
    done
  done;
  out

let sigmoid x = 1.0 /. (1.0 +. exp (-.x))
let dsigmoid y = y *. (1.0 -. y)  (* derivative given the output *)
let dtanh y = 1.0 -. (y *. y)

let relu x = if x > 0.0 then x else 0.0

let mean_vec xs =
  let n = Array.length xs in
  let dim = Array.length xs.(0) in
  let m = vec dim in
  Array.iter (fun x -> axpy (1.0 /. float_of_int n) x m) xs;
  m

(** Standardize features column-wise; returns (transformed, mean, std). *)
let standardize xs =
  let n = Array.length xs in
  if n = 0 then ([||], [||], [||])
  else begin
    let dim = Array.length xs.(0) in
    let mu = mean_vec xs in
    let sd = vec dim in
    Array.iter (fun x -> Array.iteri (fun j v -> sd.(j) <- sd.(j) +. ((v -. mu.(j)) ** 2.0)) x) xs;
    (* near-constant features get unit scale: dividing by a vanishing sd
       would explode unseen values at inference time *)
    let sd =
      Array.map
        (fun s ->
          let v = sqrt (s /. float_of_int n) in
          if v < 1e-6 then 1.0 else v)
        sd
    in
    let out = Array.map (fun x -> Array.mapi (fun j v -> (v -. mu.(j)) /. sd.(j)) x) xs in
    (out, mu, sd)
  end

let apply_standardize x mu sd = Array.mapi (fun j v -> (v -. mu.(j)) /. sd.(j)) x

(** Flat-buffer matrices for the hot training loops.

    One contiguous [float array] in row-major order replaces the boxed
    row-of-rows representation: no per-row bounds metadata, no pointer
    chasing, and a whole matrix streams through cache linearly.  Every
    kernel keeps the exact floating-point evaluation order of its naive
    counterpart above (same accumulation direction, same start values),
    so swapping representations is bit-invisible — the equivalence suite
    checks this against the retained {!Naive} reference. *)
module Flat = struct
  type mat = { a : float array; rows : int; cols : int }

  let create rows cols = { a = Array.make (rows * cols) 0.0; rows; cols }

  let copy m = { m with a = Array.copy m.a }

  let fill m v = Array.fill m.a 0 (Array.length m.a) v

  let get m i j = m.a.((i * m.cols) + j)
  let set m i j v = m.a.((i * m.cols) + j) <- v

  (** Xavier-style random initialization; draws in row-major order, the
      same stream order as {!randn_mat}. *)
  let randn rng rows cols =
    let scale = sqrt (2.0 /. float_of_int (rows + cols)) in
    let m = create rows cols in
    for k = 0 to (rows * cols) - 1 do
      m.a.(k) <- scale *. Util.Rng.gaussian rng
    done;
    m

  let of_rows rows_m =
    let rows = Array.length rows_m in
    let cols = if rows = 0 then 0 else Array.length rows_m.(0) in
    let m = create rows cols in
    for i = 0 to rows - 1 do
      Array.blit rows_m.(i) 0 m.a (i * cols) cols
    done;
    m

  let to_rows m = Array.init m.rows (fun i -> Array.sub m.a (i * m.cols) m.cols)

  (** dst <- dst + m * x (each row dotted left-to-right, like
      {!mat_vec_add_into}). *)
  let gemv_add dst m x =
    let cols = m.cols in
    if Array.length x < cols || Array.length dst < m.rows then
      invalid_arg "La.Flat.gemv_add: dimension mismatch";
    let ma = m.a in
    for i = 0 to m.rows - 1 do
      let base = i * cols in
      let acc = ref 0.0 in
      for j = 0 to cols - 1 do
        acc := !acc +. (Array.unsafe_get ma (base + j) *. Array.unsafe_get x j)
      done;
      dst.(i) <- dst.(i) +. !acc
    done

  (** dst <- dst + m^T * y, accumulating rows in ascending order like
      {!mat_t_vec}. *)
  let gemv_t_add dst m y =
    let cols = m.cols in
    if Array.length y < m.rows || Array.length dst < cols then
      invalid_arg "La.Flat.gemv_t_add: dimension mismatch";
    let ma = m.a in
    for i = 0 to m.rows - 1 do
      let base = i * cols in
      let yi = Array.unsafe_get y i in
      for j = 0 to cols - 1 do
        Array.unsafe_set dst j (Array.unsafe_get dst j +. (Array.unsafe_get ma (base + j) *. yi))
      done
    done

  (** dst <- dst + column j of m (one-hot fast path, like
      {!add_column_into}). *)
  let add_col_into dst m j =
    let cols = m.cols in
    if j < 0 || j >= cols || Array.length dst < m.rows then
      invalid_arg "La.Flat.add_col_into: dimension mismatch";
    let ma = m.a in
    for i = 0 to m.rows - 1 do
      Array.unsafe_set dst i (Array.unsafe_get dst i +. Array.unsafe_get ma ((i * cols) + j))
    done

  (** g <- g + a * b^T (backprop outer product, like {!outer_add_into}). *)
  let outer_add g av bv =
    let cols = g.cols in
    if Array.length av < g.rows || Array.length bv < cols then
      invalid_arg "La.Flat.outer_add: dimension mismatch";
    let ga = g.a in
    for i = 0 to g.rows - 1 do
      let base = i * cols in
      let ai = Array.unsafe_get av i in
      for j = 0 to cols - 1 do
        Array.unsafe_set ga (base + j) (Array.unsafe_get ga (base + j) +. (ai *. Array.unsafe_get bv j))
      done
    done

  (** c <- a * b, blocked for cache.  b is packed transposed once so the
      k-loop streams two contiguous rows; the per-cell sum still runs k
      ascending, so every c[i,j] is bit-identical to the textbook triple
      loop.  Tiles only reorder independent cells. *)
  let gemm ~a ~b c =
    if a.cols <> b.rows || c.rows <> a.rows || c.cols <> b.cols then
      invalid_arg "La.Flat.gemm: dimension mismatch";
    let kdim = a.cols and n = b.cols in
    let bt = Array.make (kdim * n) 0.0 in
    for k = 0 to kdim - 1 do
      let base = k * n in
      for j = 0 to n - 1 do
        bt.((j * kdim) + k) <- b.a.(base + j)
      done
    done;
    let aa = a.a in
    let tile = 48 in
    let jt = ref 0 in
    while !jt < n do
      let jhi = min n (!jt + tile) in
      for i = 0 to a.rows - 1 do
        let abase = i * kdim in
        let cbase = i * n in
        (* two output cells per pass share each a[i,k] load; the two sums
           stay independent and k-ascending, so cells are bit-identical to
           the one-cell loop *)
        let j = ref !jt in
        while !j + 1 < jhi do
          let bbase0 = !j * kdim and bbase1 = (!j + 1) * kdim in
          let acc0 = ref 0.0 and acc1 = ref 0.0 in
          for k = 0 to kdim - 1 do
            let av = Array.unsafe_get aa (abase + k) in
            acc0 := !acc0 +. (av *. Array.unsafe_get bt (bbase0 + k));
            acc1 := !acc1 +. (av *. Array.unsafe_get bt (bbase1 + k))
          done;
          c.a.(cbase + !j) <- !acc0;
          c.a.(cbase + !j + 1) <- !acc1;
          j := !j + 2
        done;
        if !j < jhi then begin
          let bbase = !j * kdim in
          let acc = ref 0.0 in
          for k = 0 to kdim - 1 do
            acc := !acc +. (Array.unsafe_get aa (abase + k) *. Array.unsafe_get bt (bbase + k))
          done;
          c.a.(cbase + !j) <- !acc
        end
      done;
      jt := jhi
    done
end
