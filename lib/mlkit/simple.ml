(** Classical learners: kNN, linear SVM (Pegasos), K-means, and PCA. *)

(* -- k-nearest neighbours -- *)

type knn = { k : int; xs : float array array; ys : float array; mu : float array; sd : float array }

let knn_fit ?(k = 5) xs ys =
  let xs', mu, sd = La.standardize xs in
  { k; xs = xs'; ys; mu; sd }

let knn_neighbors m x =
  let x = La.apply_standardize x m.mu m.sd in
  let dists = Array.mapi (fun i xi -> (La.euclidean x xi, m.ys.(i))) m.xs in
  Array.sort (fun (a, _) (b, _) -> compare a b) dists;
  Array.sub dists 0 (min m.k (Array.length dists))

(** Regression: mean of the k nearest targets. *)
let knn_predict m x =
  let nbrs = knn_neighbors m x in
  let n = Array.length nbrs in
  if n = 0 then 0.0 else Array.fold_left (fun acc (_, y) -> acc +. y) 0.0 nbrs /. float_of_int n

(** Classification: majority vote over {0,1} labels. *)
let knn_predict_binary m x =
  let nbrs = knn_neighbors m x in
  let pos = Array.fold_left (fun acc (_, y) -> if y > 0.5 then acc + 1 else acc) 0 nbrs in
  if 2 * pos > Array.length nbrs then 1.0 else 0.0

(* -- linear SVM via the Pegasos subgradient method -- *)

type svm = { w : float array; b : float; mu : float array; sd : float array }

(** Labels in {0,1}; internally mapped to {-1,+1}.  Classes are balanced by
    sampling each class with equal probability, which matters for the
    few-positives/many-negatives accelerator corpora. *)
let svm_fit ?(lambda = 1e-3) ?(epochs = 60) ?(seed = 13) xs ys =
  Obs.Span.with_ ~cat:"mlkit" "svm.fit" @@ fun () ->
  let xs', mu, sd = La.standardize xs in
  (* the bias rides along as a constant feature, regularized with w *)
  let xs' = Array.map (fun x -> Array.append x [| 1.0 |]) xs' in
  let n = Array.length xs' in
  let dim = if n = 0 then 1 else Array.length xs'.(0) in
  let w = La.vec dim in
  let b = ref 0.0 in
  let rng = Util.Rng.create seed in
  let pos = ref [] and neg = ref [] in
  Array.iteri (fun i y -> if y > 0.5 then pos := i :: !pos else neg := i :: !neg) ys;
  let pos = Array.of_list !pos and neg = Array.of_list !neg in
  let sample () =
    if Array.length pos = 0 then neg.(Util.Rng.int rng (Array.length neg))
    else if Array.length neg = 0 then pos.(Util.Rng.int rng (Array.length pos))
    else if Util.Rng.bool rng then pos.(Util.Rng.int rng (Array.length pos))
    else neg.(Util.Rng.int rng (Array.length neg))
  in
  let t = ref 0 in
  let series = Obs.Series.create ~capacity:(max 16 epochs) "svm.fit" in
  for epoch = 1 to epochs do
    for _ = 1 to max 1 n do
      incr t;
      let i = sample () in
      let y = if ys.(i) > 0.5 then 1.0 else -1.0 in
      let eta = 1.0 /. (lambda *. float_of_int !t) in
      let margin = y *. (La.dot w xs'.(i) +. !b) in
      (* shrink then (if violating) push along the example *)
      let shrink = 1.0 -. (eta *. lambda) in
      Array.iteri (fun j v -> w.(j) <- shrink *. v) w;
      if margin < 1.0 then La.axpy (eta *. y) xs'.(i) w
    done;
    (* Pegasos objective over the full set: lambda/2 ||w||^2 + mean hinge *)
    let hinge = ref 0.0 in
    for i = 0 to n - 1 do
      let y = if ys.(i) > 0.5 then 1.0 else -1.0 in
      hinge := !hinge +. Float.max 0.0 (1.0 -. (y *. (La.dot w xs'.(i) +. !b)))
    done;
    let objective =
      (0.5 *. lambda *. La.dot w w) +. (!hinge /. float_of_int (max 1 n))
    in
    Obs.Series.record series ~step:epoch objective
  done;
  { w; b = !b; mu; sd }

let svm_score m x =
  let x = La.apply_standardize x m.mu m.sd in
  La.dot m.w (Array.append x [| 1.0 |]) +. m.b

let svm_predict_binary m x = if svm_score m x >= 0.0 then 1.0 else 0.0

(* -- K-means -- *)

type kmeans = { centroids : float array array }

(** Lloyd's algorithm with k-means++-style seeding. *)
let kmeans_fit ?(iters = 50) ?(seed = 17) ~k xs =
  Obs.Span.with_ ~cat:"mlkit" "kmeans.fit" @@ fun () ->
  let n = Array.length xs in
  if n = 0 then { centroids = [||] }
  else begin
    let k = min k n in
    let rng = Util.Rng.create seed in
    let centroids = Array.make k xs.(Util.Rng.int rng n) in
    for c = 1 to k - 1 do
      (* pick the next seed proportional to squared distance *)
      let d2 =
        Array.map
          (fun x ->
            let best = ref infinity in
            for j = 0 to c - 1 do
              best := min !best (La.euclidean x centroids.(j) ** 2.0)
            done;
            !best +. 1e-12)
          xs
      in
      centroids.(c) <- xs.(Util.Rng.weighted_index rng d2)
    done;
    let centroids = Array.map Array.copy centroids in
    let assign = Array.make n 0 in
    let series = Obs.Series.create ~capacity:(max 16 iters) "kmeans.fit" in
    for iter = 1 to iters do
      let inertia = ref 0.0 in
      Array.iteri
        (fun i x ->
          let best = ref 0 and bd = ref infinity in
          Array.iteri
            (fun c cen ->
              let d = La.euclidean x cen in
              if d < !bd then begin
                bd := d;
                best := c
              end)
            centroids;
          inertia := !inertia +. (!bd *. !bd);
          assign.(i) <- !best)
        xs;
      Obs.Series.record series ~step:iter !inertia;
      Array.iteri
        (fun c cen ->
          let members = ref [] in
          Array.iteri (fun i a -> if a = c then members := xs.(i) :: !members) assign;
          match !members with
          | [] -> ()
          | ms ->
            let dim = Array.length cen in
            let fresh = La.vec dim in
            List.iter (fun m -> La.axpy (1.0 /. float_of_int (List.length ms)) m fresh) ms;
            Array.blit fresh 0 cen 0 dim)
        centroids
    done;
    { centroids }
  end

let kmeans_assign m x =
  let best = ref 0 and bd = ref infinity in
  Array.iteri
    (fun c cen ->
      let d = La.euclidean x cen in
      if d < !bd then begin
        bd := d;
        best := c
      end)
    m.centroids;
  !best

(** Cluster members as index lists. *)
let kmeans_clusters m xs =
  let groups = Array.make (Array.length m.centroids) [] in
  Array.iteri (fun i x -> let c = kmeans_assign m x in groups.(c) <- i :: groups.(c)) xs;
  Array.map List.rev groups

(* -- PCA via power iteration with deflation -- *)

type pca = { components : float array array; mean : float array }

let pca_fit ?(n_components = 2) ?(iters = 100) ?(seed = 23) xs =
  let n = Array.length xs in
  if n = 0 then { components = [||]; mean = [||] }
  else begin
    let dim = Array.length xs.(0) in
    let mean = La.mean_vec xs in
    let centered = Array.map (fun x -> La.sub_vec x mean) xs in
    let rng = Util.Rng.create seed in
    let data = Array.map Array.copy centered in
    let components =
      Array.init (min n_components dim) (fun _ ->
          let v = Array.init dim (fun _ -> Util.Rng.gaussian rng) in
          let v = ref (La.scale_vec (1.0 /. max 1e-12 (La.l2_norm v)) v) in
          for _ = 1 to iters do
            (* v <- X^T X v, normalized *)
            let xv = Array.map (fun row -> La.dot row !v) data in
            let next = La.vec dim in
            Array.iteri (fun i row -> La.axpy xv.(i) row next) data;
            let norm = max 1e-12 (La.l2_norm next) in
            v := La.scale_vec (1.0 /. norm) next
          done;
          (* deflate *)
          Array.iteri
            (fun i row ->
              let proj = La.dot row !v in
              La.axpy (-.proj) !v row |> fun () -> data.(i) <- row)
            data;
          !v)
    in
    { components; mean }
  end

let pca_transform p x =
  let c = La.sub_vec x p.mean in
  Array.map (fun comp -> La.dot comp c) p.components
