(** LSTM + fully-connected regression head (§3.2, Figure 6).

    The model consumes a sequence of one-hot instruction-word indices (the
    compacted vocabulary) and regresses the number of SmartNIC instructions
    the block compiles to.  Input one-hot encoding means the input weight
    product reduces to a column lookup, so training is fast even in pure
    OCaml.  Trained with truncated-free full BPTT and Adam. *)

type t = {
  vocab : int;
  hidden : int;
  (* gate weights: [w_*] input (h x V), [u_*] recurrent (h x h), [b_*] bias (h x 1) *)
  wi : Nn.param; wf : Nn.param; wo : Nn.param; wg : Nn.param;
  ui : Nn.param; uf : Nn.param; uo : Nn.param; ug : Nn.param;
  bi : Nn.param; bf : Nn.param; bo : Nn.param; bg : Nn.param;
  (* FC head: hidden -> fc_dim (ReLU) -> out *)
  fc1 : Nn.param;
  fc2 : Nn.param;
  fc_dim : int;
  out_dim : int;
  mutable y_scale : float;  (** targets are divided by this during training *)
}

let params t =
  [ t.wi; t.wf; t.wo; t.wg; t.ui; t.uf; t.uo; t.ug; t.bi; t.bf; t.bo; t.bg; t.fc1; t.fc2 ]

let create ?(hidden = 32) ?(fc_dim = 16) ?(out_dim = 1) ~vocab seed =
  let rng = Util.Rng.create seed in
  let p r c = Nn.param rng r c in
  {
    vocab; hidden;
    wi = p hidden vocab; wf = p hidden vocab; wo = p hidden vocab; wg = p hidden vocab;
    ui = p hidden hidden; uf = p hidden hidden; uo = p hidden hidden; ug = p hidden hidden;
    bi = Nn.zero_param hidden 1; bf = Nn.zero_param hidden 1; bo = Nn.zero_param hidden 1;
    bg = Nn.zero_param hidden 1;
    fc1 = p fc_dim (hidden + 1);
    fc2 = p out_dim (fc_dim + 1);
    fc_dim; out_dim;
    y_scale = 1.0;
  }

type step_cache = {
  tok : int;
  i_g : float array; f_g : float array; o_g : float array; g_g : float array;
  c : float array; h : float array; c_prev : float array; h_prev : float array;
  tanh_c : float array;
}

let gate t w u b h_prev tok squash =
  let h = t.hidden in
  let z = Array.make h 0.0 in
  La.add_column_into z w.Nn.w tok;
  La.mat_vec_add_into z u.Nn.w h_prev;
  for k = 0 to h - 1 do
    z.(k) <- squash (z.(k) +. b.Nn.w.(k).(0))
  done;
  z

(** Run the recurrence over a token sequence; returns the caches and the
    final hidden state. *)
let forward t (seq : int array) =
  let h0 = La.vec t.hidden and c0 = La.vec t.hidden in
  let caches = ref [] in
  let h_prev = ref h0 and c_prev = ref c0 in
  Array.iter
    (fun tok ->
      let i_g = gate t t.wi t.ui t.bi !h_prev tok La.sigmoid in
      let f_g = gate t t.wf t.uf t.bf !h_prev tok La.sigmoid in
      let o_g = gate t t.wo t.uo t.bo !h_prev tok La.sigmoid in
      let g_g = gate t t.wg t.ug t.bg !h_prev tok tanh in
      let c = Array.init t.hidden (fun k -> (f_g.(k) *. !c_prev.(k)) +. (i_g.(k) *. g_g.(k))) in
      let tanh_c = Array.map tanh c in
      let h = Array.init t.hidden (fun k -> o_g.(k) *. tanh_c.(k)) in
      caches :=
        { tok; i_g; f_g; o_g; g_g; c; h; c_prev = !c_prev; h_prev = !h_prev; tanh_c }
        :: !caches;
      h_prev := h;
      c_prev := c)
    seq;
  (!caches (* reverse chronological *), !h_prev)

let head_forward t h_final =
  let z1 = Nn.affine t.fc1 h_final in
  let a1 = Array.map La.relu z1 in
  let out = Nn.affine t.fc2 a1 in
  (z1, a1, out)

(** Predict the (unscaled) regression target(s) for a token sequence. *)
let predict t seq =
  if Array.length seq = 0 then Array.make t.out_dim 0.0
  else
    let _, h_final = forward t seq in
    let _, _, out = head_forward t h_final in
    Array.map (fun o -> o *. t.y_scale) out

(** Full BPTT for one (sequence, target) example; accumulates gradients and
    returns the squared error (in scaled space). *)
let backward t seq target_scaled =
  let caches, h_final = forward t seq in
  let z1, a1, out = head_forward t h_final in
  let dout = Array.mapi (fun j o -> 2.0 *. (o -. target_scaled.(j))) out in
  let err = Array.fold_left (fun acc d -> acc +. (d *. d /. 4.0)) 0.0 dout in
  (* head gradients *)
  let acc_affine p x dz =
    let n = Array.length x in
    Array.iteri
      (fun r d ->
        let row = p.Nn.g.(r) in
        for j = 0 to n - 1 do
          row.(j) <- row.(j) +. (d *. x.(j))
        done;
        row.(n) <- row.(n) +. d)
      dz
  in
  let back_affine p dz xlen =
    let dx = La.vec xlen in
    Array.iteri
      (fun r d ->
        let row = p.Nn.w.(r) in
        for j = 0 to xlen - 1 do
          dx.(j) <- dx.(j) +. (row.(j) *. d)
        done)
      dz;
    dx
  in
  acc_affine t.fc2 a1 dout;
  let da1 = back_affine t.fc2 dout t.fc_dim in
  let dz1 = Array.mapi (fun j v -> if z1.(j) > 0.0 then v else 0.0) da1 in
  acc_affine t.fc1 h_final dz1;
  let dh = ref (back_affine t.fc1 dz1 t.hidden) in
  let dc = ref (La.vec t.hidden) in
  (* walk caches from the last step backwards *)
  List.iter
    (fun sc ->
      let do_g = Array.init t.hidden (fun k -> !dh.(k) *. sc.tanh_c.(k) *. La.dsigmoid sc.o_g.(k)) in
      let dc_total =
        Array.init t.hidden (fun k ->
            !dc.(k) +. (!dh.(k) *. sc.o_g.(k) *. La.dtanh sc.tanh_c.(k)))
      in
      let di = Array.init t.hidden (fun k -> dc_total.(k) *. sc.g_g.(k) *. La.dsigmoid sc.i_g.(k)) in
      let df = Array.init t.hidden (fun k -> dc_total.(k) *. sc.c_prev.(k) *. La.dsigmoid sc.f_g.(k)) in
      let dg = Array.init t.hidden (fun k -> dc_total.(k) *. sc.i_g.(k) *. La.dtanh sc.g_g.(k)) in
      (* parameter grads: input columns, recurrent matrices, biases *)
      let acc_gate w u b dz =
        for k = 0 to t.hidden - 1 do
          w.Nn.g.(k).(sc.tok) <- w.Nn.g.(k).(sc.tok) +. dz.(k);
          b.Nn.g.(k).(0) <- b.Nn.g.(k).(0) +. dz.(k)
        done;
        La.outer_add_into u.Nn.g dz sc.h_prev
      in
      acc_gate t.wi t.ui t.bi di;
      acc_gate t.wf t.uf t.bf df;
      acc_gate t.wo t.uo t.bo do_g;
      acc_gate t.wg t.ug t.bg dg;
      (* propagate to previous h and c through the recurrent matrices *)
      let dh_prev = La.vec t.hidden in
      La.axpy 1.0 (La.mat_t_vec t.ui.Nn.w di) dh_prev;
      La.axpy 1.0 (La.mat_t_vec t.uf.Nn.w df) dh_prev;
      La.axpy 1.0 (La.mat_t_vec t.uo.Nn.w do_g) dh_prev;
      La.axpy 1.0 (La.mat_t_vec t.ug.Nn.w dg) dh_prev;
      dh := dh_prev;
      dc := Array.init t.hidden (fun k -> dc_total.(k) *. sc.f_g.(k)))
    caches;
  err

(* A shadow shares the weights and Adam moments but owns a private zeroed
   gradient buffer, so concurrent [backward] calls never race. *)
let shadow_param (p : Nn.param) =
  { p with Nn.g = Array.map (fun row -> Array.make (Array.length row) 0.0) p.Nn.g }

let shadow_model t =
  {
    t with
    wi = shadow_param t.wi; wf = shadow_param t.wf;
    wo = shadow_param t.wo; wg = shadow_param t.wg;
    ui = shadow_param t.ui; uf = shadow_param t.uf;
    uo = shadow_param t.uo; ug = shadow_param t.ug;
    bi = shadow_param t.bi; bf = shadow_param t.bf;
    bo = shadow_param t.bo; bg = shadow_param t.bg;
    fc1 = shadow_param t.fc1; fc2 = shadow_param t.fc2;
  }

let add_grads ~into sh =
  List.iter2
    (fun (p : Nn.param) (sp : Nn.param) ->
      Array.iteri
        (fun r row ->
          let dst = p.Nn.g.(r) in
          Array.iteri (fun c g -> dst.(c) <- dst.(c) +. g) row)
        sp.Nn.g)
    (params into) (params sh)

(** Fit on (sequence, target) pairs.  Targets are scaled internally by
    their mean magnitude for conditioning.

    [batch = 1] (the default) is plain per-example Adam.  [batch > 1]
    accumulates per-example gradients over each minibatch — computed
    concurrently on the domain pool, each example writing into a private
    shadow gradient — and merges them in example order before the single
    Adam step, so the trained weights are bit-identical for any
    [CLARA_JOBS] value. *)
let fit ?(epochs = 12) ?(lr = 0.008) ?(seed = 11) ?(batch = 1)
    ?(progress = fun ~epoch:_ ~loss:_ -> ()) t data =
  let n = Array.length data in
  if n = 0 then ()
  else begin
    let mean_target =
      Array.fold_left (fun acc (_, y) -> acc +. abs_float y.(0)) 0.0 data /. float_of_int n
    in
    t.y_scale <- max 1.0 mean_target;
    let series = Obs.Series.create ~capacity:(max 16 epochs) "lstm.fit" in
    let opt = Nn.adam ~lr () in
    let rng = Util.Rng.create seed in
    let idx = Array.init n (fun i -> i) in
    let example_step k =
      let seq, y = data.(k) in
      if Array.length seq = 0 then 0.0
      else begin
        List.iter Nn.zero_grad (params t);
        let y_scaled = Array.map (fun v -> v /. t.y_scale) y in
        let err = backward t seq y_scaled in
        Nn.clip_gradients (params t) 5.0;
        Nn.adam_step opt (params t);
        err
      end
    in
    let minibatch_step b0 bsz =
      let contributions =
        Util.Pool.parallel_init ~chunk:1 bsz (fun j ->
            let seq, y = data.(idx.(b0 + j)) in
            if Array.length seq = 0 then None
            else begin
              let sh = shadow_model t in
              let y_scaled = Array.map (fun v -> v /. t.y_scale) y in
              let err = backward sh seq y_scaled in
              Some (sh, err)
            end)
      in
      List.iter Nn.zero_grad (params t);
      let err = ref 0.0 and contributed = ref false in
      Array.iter
        (function
          | None -> ()
          | Some (sh, e) ->
            contributed := true;
            err := !err +. e;
            add_grads ~into:t sh)
        contributions;
      if !contributed then begin
        Nn.clip_gradients (params t) 5.0;
        Nn.adam_step opt (params t)
      end;
      !err
    in
    for epoch = 1 to epochs do
      Obs.Span.with_ ~cat:"mlkit" "lstm.epoch" (fun () ->
          Util.Rng.shuffle rng idx;
          let total = ref 0.0 in
          if batch <= 1 then Array.iter (fun k -> total := !total +. example_step k) idx
          else begin
            let b0 = ref 0 in
            while !b0 < n do
              let bsz = min batch (n - !b0) in
              total := !total +. minibatch_step !b0 bsz;
              b0 := !b0 + bsz
            done
          end;
          let loss = !total /. float_of_int n in
          Obs.Series.record series ~step:epoch loss;
          progress ~epoch ~loss)
    done
  end
