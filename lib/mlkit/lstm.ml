(** LSTM + fully-connected regression head (§3.2, Figure 6).

    The model consumes a sequence of one-hot instruction-word indices (the
    compacted vocabulary) and regresses the number of SmartNIC instructions
    the block compiles to.  Input one-hot encoding means the input weight
    product reduces to a column lookup, so training is fast even in pure
    OCaml.  Trained with truncated-free full BPTT and Adam.

    Weights are flat row-major buffers ({!La.Flat}) and the recurrence
    runs over per-domain preallocated scratch: the forward pass writes
    gate activations into T x hidden sequence buffers instead of
    allocating seven arrays per step, and backprop reuses a fixed set of
    hidden-sized scratch vectors.  Every accumulation keeps the exact
    order of the original per-step code (column lookup, then the
    recurrent dot product, then the bias; backprop temp-then-axpy
    structure preserved), so training is bit-identical to the retained
    {!Naive} reference — the equivalence suite checks this. *)

type t = {
  vocab : int;
  hidden : int;
  (* gate weights: [w_*] input (h x V), [u_*] recurrent (h x h), [b_*] bias (h x 1) *)
  wi : Nn.param; wf : Nn.param; wo : Nn.param; wg : Nn.param;
  ui : Nn.param; uf : Nn.param; uo : Nn.param; ug : Nn.param;
  bi : Nn.param; bf : Nn.param; bo : Nn.param; bg : Nn.param;
  (* FC head: hidden -> fc_dim (ReLU) -> out *)
  fc1 : Nn.param;
  fc2 : Nn.param;
  fc_dim : int;
  out_dim : int;
  mutable y_scale : float;  (** targets are divided by this during training *)
}

let params t =
  [ t.wi; t.wf; t.wo; t.wg; t.ui; t.uf; t.uo; t.ug; t.bi; t.bf; t.bo; t.bg; t.fc1; t.fc2 ]

let create ?(hidden = 32) ?(fc_dim = 16) ?(out_dim = 1) ~vocab seed =
  let rng = Util.Rng.create seed in
  let p r c = Nn.param rng r c in
  {
    vocab; hidden;
    wi = p hidden vocab; wf = p hidden vocab; wo = p hidden vocab; wg = p hidden vocab;
    ui = p hidden hidden; uf = p hidden hidden; uo = p hidden hidden; ug = p hidden hidden;
    bi = Nn.zero_param hidden 1; bf = Nn.zero_param hidden 1; bo = Nn.zero_param hidden 1;
    bg = Nn.zero_param hidden 1;
    fc1 = p fc_dim (hidden + 1);
    fc2 = p out_dim (fc_dim + 1);
    fc_dim; out_dim;
    y_scale = 1.0;
  }

(* -- per-domain scratch --

   One workspace per (domain, hidden size): sequence-length buffers for
   the forward caches (grown on demand, never shrunk) and fixed
   hidden-sized vectors for backprop.  A domain runs one backward at a
   time — nested pool regions are serial — so reuse is race-free. *)

type ws = {
  mutable cap : int;  (* steps the sequence buffers can hold *)
  mutable i_g : float array; mutable f_g : float array;
  mutable o_g : float array; mutable g_g : float array;
  mutable cs : float array; mutable tanh_cs : float array; mutable hs : float array;
  zero : float array;  (* h zeros: the t=0 previous state; never written *)
  hfin : float array;
  dh : float array; dc : float array;
  d_o : float array; dct : float array;
  di : float array; df : float array; dg : float array;
  dtmp : float array; dh_prev : float array;
}

let ws_key : (int, ws) Hashtbl.t Domain.DLS.key = Domain.DLS.new_key (fun () -> Hashtbl.create 4)

let fresh_ws hidden =
  let v () = Array.make hidden 0.0 in
  {
    cap = 0; i_g = [||]; f_g = [||]; o_g = [||]; g_g = [||];
    cs = [||]; tanh_cs = [||]; hs = [||];
    zero = v (); hfin = v ();
    dh = v (); dc = v (); d_o = v (); dct = v ();
    di = v (); df = v (); dg = v (); dtmp = v (); dh_prev = v ();
  }

let ensure_ws ws hidden steps =
  if ws.cap < steps then begin
    let cap = max steps (max 64 (2 * ws.cap)) in
    let buf () = Array.make (cap * hidden) 0.0 in
    ws.cap <- cap;
    ws.i_g <- buf (); ws.f_g <- buf (); ws.o_g <- buf (); ws.g_g <- buf ();
    ws.cs <- buf (); ws.tanh_cs <- buf (); ws.hs <- buf ()
  end

let get_ws hidden steps =
  let tbl = Domain.DLS.get ws_key in
  let ws =
    match Hashtbl.find_opt tbl hidden with
    | Some ws -> ws
    | None ->
      let ws = fresh_ws hidden in
      Hashtbl.add tbl hidden ws;
      ws
  in
  ensure_ws ws hidden steps;
  ws

(* z[k] = squash ((w column tok) + (u . h_prev) + b[k]); the three
   additions happen in exactly that order, like the original add_column /
   mat_vec_add / bias code.  All four gates are computed in one pass so
   each h_prev element is loaded once per j instead of once per gate; the
   gates only read h_prev, so interleaving them preserves every per-gate
   accumulation order.  The sigmoid/tanh squashes are inlined (same
   formulas as {!La.sigmoid} / [tanh]) to avoid a closure call per cell. *)
let gates_into t ws base hprev hoff tok =
  let h = t.hidden in
  let wcols = t.wi.Nn.w.La.Flat.cols in
  let wia = t.wi.Nn.w.La.Flat.a and wfa = t.wf.Nn.w.La.Flat.a in
  let woa = t.wo.Nn.w.La.Flat.a and wga = t.wg.Nn.w.La.Flat.a in
  let uia = t.ui.Nn.w.La.Flat.a and ufa = t.uf.Nn.w.La.Flat.a in
  let uoa = t.uo.Nn.w.La.Flat.a and uga = t.ug.Nn.w.La.Flat.a in
  let bia = t.bi.Nn.w.La.Flat.a and bfa = t.bf.Nn.w.La.Flat.a in
  let boa = t.bo.Nn.w.La.Flat.a and bga = t.bg.Nn.w.La.Flat.a in
  (* one guard hoists every bound of the h x h inner loops, which then run
     unchecked — this loop pair is the forward pass's entire cost *)
  if
    tok < 0 || tok >= wcols || hoff + h > Array.length hprev
    || base + h > Array.length ws.i_g || base + h > Array.length ws.f_g
    || base + h > Array.length ws.o_g || base + h > Array.length ws.g_g
    || h > Array.length bia || h > Array.length bfa || h > Array.length boa
    || h > Array.length bga || (h * h) > Array.length uia || (h * h) > Array.length ufa
    || (h * h) > Array.length uoa || (h * h) > Array.length uga
    || ((h - 1) * wcols) + tok >= Array.length wia
    || ((h - 1) * wcols) + tok >= Array.length wfa
    || ((h - 1) * wcols) + tok >= Array.length woa
    || ((h - 1) * wcols) + tok >= Array.length wga
  then invalid_arg "Lstm.gates_into: out of bounds";
  for k = 0 to h - 1 do
    let wo = (k * wcols) + tok in
    let zi = 0.0 +. Array.unsafe_get wia wo and zf = 0.0 +. Array.unsafe_get wfa wo in
    let zo = 0.0 +. Array.unsafe_get woa wo and zg = 0.0 +. Array.unsafe_get wga wo in
    let ubase = k * h in
    let ai = ref 0.0 and af = ref 0.0 and ao = ref 0.0 and ag = ref 0.0 in
    for j = 0 to h - 1 do
      let hv = Array.unsafe_get hprev (hoff + j) in
      ai := !ai +. (Array.unsafe_get uia (ubase + j) *. hv);
      af := !af +. (Array.unsafe_get ufa (ubase + j) *. hv);
      ao := !ao +. (Array.unsafe_get uoa (ubase + j) *. hv);
      ag := !ag +. (Array.unsafe_get uga (ubase + j) *. hv)
    done;
    let b = base + k in
    Array.unsafe_set ws.i_g b (1.0 /. (1.0 +. exp (-.(zi +. !ai +. Array.unsafe_get bia k))));
    Array.unsafe_set ws.f_g b (1.0 /. (1.0 +. exp (-.(zf +. !af +. Array.unsafe_get bfa k))));
    Array.unsafe_set ws.o_g b (1.0 /. (1.0 +. exp (-.(zo +. !ao +. Array.unsafe_get boa k))));
    Array.unsafe_set ws.g_g b (tanh (zg +. !ag +. Array.unsafe_get bga k))
  done

(** Run the recurrence into the workspace buffers; returns the workspace
    (step [s] lives at offset [s * hidden]) with [hfin] holding the final
    hidden state. *)
let forward_ws t ws (seq : int array) =
  let h = t.hidden in
  let steps = Array.length seq in
  if steps * h > Array.length ws.hs then invalid_arg "Lstm.forward: workspace too small";
  for s = 0 to steps - 1 do
    let tok = seq.(s) in
    let base = s * h in
    let hprev, hoff = if s = 0 then (ws.zero, 0) else (ws.hs, (s - 1) * h) in
    let cprev, coff = if s = 0 then (ws.zero, 0) else (ws.cs, (s - 1) * h) in
    gates_into t ws base hprev hoff tok;
    for k = 0 to h - 1 do
      let b = base + k in
      let c =
        (Array.unsafe_get ws.f_g b *. Array.unsafe_get cprev (coff + k))
        +. (Array.unsafe_get ws.i_g b *. Array.unsafe_get ws.g_g b)
      in
      Array.unsafe_set ws.cs b c;
      let tc = tanh c in
      Array.unsafe_set ws.tanh_cs b tc;
      Array.unsafe_set ws.hs b (Array.unsafe_get ws.o_g b *. tc)
    done
  done;
  if steps = 0 then Array.fill ws.hfin 0 h 0.0
  else Array.blit ws.hs ((steps - 1) * h) ws.hfin 0 h;
  ws

let forward t (seq : int array) =
  let ws = get_ws t.hidden (Array.length seq) in
  forward_ws t ws seq

let head_forward t h_final =
  let z1 = Nn.affine t.fc1 h_final in
  let a1 = Array.map La.relu z1 in
  let out = Nn.affine t.fc2 a1 in
  (z1, a1, out)

(** Predict the (unscaled) regression target(s) for a token sequence. *)
let predict t seq =
  if Array.length seq = 0 then Array.make t.out_dim 0.0
  else
    let ws = forward t seq in
    let _, _, out = head_forward t ws.hfin in
    Array.map (fun o -> o *. t.y_scale) out

(* -- explicit scratch: the serving fast path's allocation-free predict --

   [predict] leans on per-domain DLS scratch but still allocates in the
   head ([Nn.affine] x 2, two [Array.map]s).  A [scratch] owns the whole
   working set — recurrence workspace plus head buffers — so a caller
   that guards it with its own lock (e.g. one per flow-cache shard) can
   evaluate without allocating or touching DLS.  [affine_into] repeats
   {!Nn.affine}'s accumulation order exactly (bias first, then ascending
   [j]), so [predict_into] is bit-identical to [predict]. *)

type scratch = {
  s_ws : ws;
  s_z1 : float array;
  s_a1 : float array;
  s_out : float array;
  s_y : float array;
}

let scratch t =
  {
    s_ws = fresh_ws t.hidden;
    s_z1 = Array.make t.fc_dim 0.0;
    s_a1 = Array.make t.fc_dim 0.0;
    s_out = Array.make t.out_dim 0.0;
    s_y = Array.make t.out_dim 0.0;
  }

let affine_into (p : Nn.param) x (dst : float array) =
  let w = p.Nn.w.La.Flat.a and cols = p.Nn.w.La.Flat.cols in
  let n = Array.length x in
  if Array.length dst < p.Nn.w.La.Flat.rows then invalid_arg "Lstm.affine_into: dst too small";
  for i = 0 to p.Nn.w.La.Flat.rows - 1 do
    let base = i * cols in
    let acc = ref w.(base + n) in
    for j = 0 to n - 1 do
      acc := !acc +. (w.(base + j) *. x.(j))
    done;
    dst.(i) <- !acc
  done

let predict_into t sc seq =
  if Array.length seq = 0 then begin
    Array.fill sc.s_y 0 t.out_dim 0.0;
    sc.s_y
  end
  else begin
    ensure_ws sc.s_ws t.hidden (Array.length seq);
    ignore (forward_ws t sc.s_ws seq);
    affine_into t.fc1 sc.s_ws.hfin sc.s_z1;
    for j = 0 to t.fc_dim - 1 do
      sc.s_a1.(j) <- La.relu sc.s_z1.(j)
    done;
    affine_into t.fc2 sc.s_a1 sc.s_out;
    for j = 0 to t.out_dim - 1 do
      sc.s_y.(j) <- sc.s_out.(j) *. t.y_scale
    done;
    sc.s_y
  end

let acc_affine (p : Nn.param) x dz =
  let n = Array.length x in
  let g = p.Nn.g.La.Flat.a and cols = p.Nn.g.La.Flat.cols in
  Array.iteri
    (fun r d ->
      let base = r * cols in
      for j = 0 to n - 1 do
        g.(base + j) <- g.(base + j) +. (d *. x.(j))
      done;
      g.(base + n) <- g.(base + n) +. d)
    dz

(* accumulate W^T dz into [dst] (caller zero-fills, matching the fresh
   La.vec of the original) *)
let back_affine_into dst (p : Nn.param) dz xlen =
  let w = p.Nn.w.La.Flat.a and cols = p.Nn.w.La.Flat.cols in
  Array.iteri
    (fun r d ->
      let base = r * cols in
      for j = 0 to xlen - 1 do
        dst.(j) <- dst.(j) +. (w.(base + j) *. d)
      done)
    dz

(** Full BPTT for one (sequence, target) example; accumulates gradients and
    returns the squared error (in scaled space). *)
let backward t seq target_scaled =
  let h = t.hidden in
  let ws = forward t seq in
  let steps = Array.length seq in
  let z1, a1, out = head_forward t ws.hfin in
  let dout = Array.mapi (fun j o -> 2.0 *. (o -. target_scaled.(j))) out in
  let err = Array.fold_left (fun acc d -> acc +. (d *. d /. 4.0)) 0.0 dout in
  (* head gradients *)
  acc_affine t.fc2 a1 dout;
  let da1 = La.vec t.fc_dim in
  back_affine_into da1 t.fc2 dout t.fc_dim;
  let dz1 = Array.mapi (fun j v -> if z1.(j) > 0.0 then v else 0.0) da1 in
  acc_affine t.fc1 ws.hfin dz1;
  Array.fill ws.dh 0 h 0.0;
  back_affine_into ws.dh t.fc1 dz1 h;
  Array.fill ws.dc 0 h 0.0;
  (* walk the cached steps from the last backwards *)
  for s = steps - 1 downto 0 do
    let base = s * h in
    let tok = seq.(s) in
    let hprev, hoff = if s = 0 then (ws.zero, 0) else (ws.hs, (s - 1) * h) in
    let cprev, coff = if s = 0 then (ws.zero, 0) else (ws.cs, (s - 1) * h) in
    for k = 0 to h - 1 do
      let b = base + k in
      let dhk = Array.unsafe_get ws.dh k in
      let og = Array.unsafe_get ws.o_g b and ig = Array.unsafe_get ws.i_g b in
      let gg = Array.unsafe_get ws.g_g b and tc = Array.unsafe_get ws.tanh_cs b in
      Array.unsafe_set ws.d_o k (dhk *. tc *. La.dsigmoid og);
      let dct = Array.unsafe_get ws.dc k +. (dhk *. og *. La.dtanh tc) in
      Array.unsafe_set ws.dct k dct;
      Array.unsafe_set ws.di k (dct *. gg *. La.dsigmoid ig);
      Array.unsafe_set ws.df k
        (dct *. Array.unsafe_get cprev (coff + k) *. La.dsigmoid (Array.unsafe_get ws.f_g b));
      Array.unsafe_set ws.dg k (dct *. ig *. La.dtanh gg)
    done;
    (* parameter grads: input columns and biases per gate, then the four
       recurrent matrices fused in one pass sharing each h_prev load.  The
       four gates write disjoint buffers, so regrouping the writes leaves
       every individual accumulation order — and hence every value —
       unchanged. *)
    let acc_gate_wb (w : Nn.param) (b : Nn.param) (dz : float array) =
      let wg = w.Nn.g.La.Flat.a and wcols = w.Nn.g.La.Flat.cols in
      let bg = b.Nn.g.La.Flat.a in
      if tok < 0 || ((h - 1) * wcols) + tok >= Array.length wg || h > Array.length bg then
        invalid_arg "Lstm.acc_gate_wb: out of bounds";
      for k = 0 to h - 1 do
        let o = (k * wcols) + tok in
        let dzk = Array.unsafe_get dz k in
        Array.unsafe_set wg o (Array.unsafe_get wg o +. dzk);
        Array.unsafe_set bg k (Array.unsafe_get bg k +. dzk)
      done
    in
    acc_gate_wb t.wi t.bi ws.di;
    acc_gate_wb t.wf t.bf ws.df;
    acc_gate_wb t.wo t.bo ws.d_o;
    acc_gate_wb t.wg t.bg ws.dg;
    let uig = t.ui.Nn.g.La.Flat.a and ufg = t.uf.Nn.g.La.Flat.a in
    let uog = t.uo.Nn.g.La.Flat.a and ugg = t.ug.Nn.g.La.Flat.a in
    if
      (h * h) > Array.length uig || (h * h) > Array.length ufg || (h * h) > Array.length uog
      || (h * h) > Array.length ugg || hoff + h > Array.length hprev
    then invalid_arg "Lstm.backward: out of bounds";
    for k = 0 to h - 1 do
      let ubase = k * h in
      let zi = Array.unsafe_get ws.di k and zf = Array.unsafe_get ws.df k in
      let zo = Array.unsafe_get ws.d_o k and zg = Array.unsafe_get ws.dg k in
      for j = 0 to h - 1 do
        let o = ubase + j in
        let hv = Array.unsafe_get hprev (hoff + j) in
        Array.unsafe_set uig o (Array.unsafe_get uig o +. (zi *. hv));
        Array.unsafe_set ufg o (Array.unsafe_get ufg o +. (zf *. hv));
        Array.unsafe_set uog o (Array.unsafe_get uog o +. (zo *. hv));
        Array.unsafe_set ugg o (Array.unsafe_get ugg o +. (zg *. hv))
      done
    done;
    (* propagate to previous h and c through the recurrent matrices; each
       gate goes through a zeroed temp then an axpy, like the original
       mat_t_vec / axpy pair, to keep the additions bit-identical *)
    Array.fill ws.dh_prev 0 h 0.0;
    let through (u : Nn.param) (dz : float array) =
      Array.fill ws.dtmp 0 h 0.0;
      let ua = u.Nn.w.La.Flat.a in
      let dtmp = ws.dtmp in
      if (h * h) > Array.length ua || h > Array.length dtmp then
        invalid_arg "Lstm.through: out of bounds";
      for r = 0 to h - 1 do
        let ubase = r * h in
        let ar = dz.(r) in
        for j = 0 to h - 1 do
          Array.unsafe_set dtmp j (Array.unsafe_get dtmp j +. (Array.unsafe_get ua (ubase + j) *. ar))
        done
      done;
      let dhp = ws.dh_prev in
      for j = 0 to h - 1 do
        Array.unsafe_set dhp j (Array.unsafe_get dhp j +. (1.0 *. Array.unsafe_get dtmp j))
      done
    in
    through t.ui ws.di;
    through t.uf ws.df;
    through t.uo ws.d_o;
    through t.ug ws.dg;
    Array.blit ws.dh_prev 0 ws.dh 0 h;
    for k = 0 to h - 1 do
      Array.unsafe_set ws.dc k (Array.unsafe_get ws.dct k *. Array.unsafe_get ws.f_g (base + k))
    done
  done;
  err

(* A shadow shares the weights and Adam moments but owns a private zeroed
   gradient buffer, so concurrent [backward] calls never race. *)
let shadow_param (p : Nn.param) = { p with Nn.g = La.Flat.create (Nn.rows p) (Nn.cols p) }

let shadow_model t =
  {
    t with
    wi = shadow_param t.wi; wf = shadow_param t.wf;
    wo = shadow_param t.wo; wg = shadow_param t.wg;
    ui = shadow_param t.ui; uf = shadow_param t.uf;
    uo = shadow_param t.uo; ug = shadow_param t.ug;
    bi = shadow_param t.bi; bf = shadow_param t.bf;
    bo = shadow_param t.bo; bg = shadow_param t.bg;
    fc1 = shadow_param t.fc1; fc2 = shadow_param t.fc2;
  }

let add_grads ~into sh =
  List.iter2
    (fun (p : Nn.param) (sp : Nn.param) ->
      let dst = p.Nn.g.La.Flat.a and src = sp.Nn.g.La.Flat.a in
      if Array.length src <> Array.length dst then invalid_arg "Lstm.add_grads: shape mismatch";
      for k = 0 to Array.length dst - 1 do
        Array.unsafe_set dst k (Array.unsafe_get dst k +. Array.unsafe_get src k)
      done)
    (params into) (params sh)

(** Fit on (sequence, target) pairs.  Targets are scaled internally by
    their mean magnitude for conditioning.

    [batch = 1] (the default) is plain per-example Adam.  [batch > 1]
    accumulates per-example gradients over each minibatch — computed
    concurrently on the domain pool, each example writing into a private
    shadow gradient — and merges them in example order before the single
    Adam step, so the trained weights are bit-identical for any
    [CLARA_JOBS] value. *)
let fit ?(epochs = 12) ?(lr = 0.008) ?(seed = 11) ?(batch = 1)
    ?(progress = fun ~epoch:_ ~loss:_ -> ()) t data =
  let n = Array.length data in
  if n = 0 then ()
  else begin
    let mean_target =
      Array.fold_left (fun acc (_, y) -> acc +. abs_float y.(0)) 0.0 data /. float_of_int n
    in
    t.y_scale <- max 1.0 mean_target;
    let series = Obs.Series.create ~capacity:(max 16 epochs) "lstm.fit" in
    let opt = Nn.adam ~lr () in
    let rng = Util.Rng.create seed in
    let idx = Array.init n (fun i -> i) in
    let example_step k =
      let seq, y = data.(k) in
      if Array.length seq = 0 then 0.0
      else begin
        List.iter Nn.zero_grad (params t);
        let y_scaled = Array.map (fun v -> v /. t.y_scale) y in
        let err = backward t seq y_scaled in
        Nn.clip_gradients (params t) 5.0;
        Nn.adam_step opt (params t);
        err
      end
    in
    let minibatch_step b0 bsz =
      let contributions =
        Util.Pool.parallel_init ~chunk:1 ~cost:300.0 bsz (fun j ->
            let seq, y = data.(idx.(b0 + j)) in
            if Array.length seq = 0 then None
            else begin
              let sh = shadow_model t in
              let y_scaled = Array.map (fun v -> v /. t.y_scale) y in
              let err = backward sh seq y_scaled in
              Some (sh, err)
            end)
      in
      List.iter Nn.zero_grad (params t);
      let err = ref 0.0 and contributed = ref false in
      Array.iter
        (function
          | None -> ()
          | Some (sh, e) ->
            contributed := true;
            err := !err +. e;
            add_grads ~into:t sh)
        contributions;
      if !contributed then begin
        Nn.clip_gradients (params t) 5.0;
        Nn.adam_step opt (params t)
      end;
      !err
    in
    for epoch = 1 to epochs do
      Obs.Span.with_ ~cat:"mlkit" "lstm.epoch" (fun () ->
          Util.Rng.shuffle rng idx;
          let total = ref 0.0 in
          if batch <= 1 then Array.iter (fun k -> total := !total +. example_step k) idx
          else begin
            let b0 = ref 0 in
            while !b0 < n do
              let bsz = min batch (n - !b0) in
              total := !total +. minibatch_step !b0 bsz;
              b0 := !b0 + bsz
            done
          end;
          let loss = !total /. float_of_int n in
          Obs.Series.record series ~step:epoch loss;
          progress ~epoch ~loss)
    done
  end
