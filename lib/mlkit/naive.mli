(** Retained naive reference implementations (the pre-flat row-of-rows
    kernels).  The equivalence suite proves the flat compute core
    bit-identical to these, and `bench/main.exe parallel` times the
    optimized kernels against them so reported speedups are real
    algorithmic + layout wins. *)

(** Textbook triple-loop matrix product (k ascending — the order
    {!La.Flat.gemm} must reproduce). *)
val matmul : float array array -> float array array -> float array array

(** {1 Boxed-parameter LSTM (the old {!Lstm})} *)

type lstm

val lstm_create : ?hidden:int -> ?fc_dim:int -> ?out_dim:int -> vocab:int -> int -> lstm
val lstm_predict : lstm -> int array -> float array

(** Fit on (sequence, target) pairs; [batch > 1] accumulates minibatch
    gradients serially in example order — the same merge order the pool
    version uses, so results match any job count. *)
val lstm_fit :
  ?epochs:int -> ?lr:float -> ?seed:int -> ?batch:int -> lstm -> (int array * float array) array -> unit

(** {1 Per-node-sorting tree grower (the old {!Tree.grow})} *)

(** Serial split search that re-sorts every feature at every node; ties
    order by (value, original index), the canonical order shared with the
    flat grower. *)
val grow : ?config:Tree.grow_config -> float array array -> float array -> Tree.t

(** The old boosting loop over {!grow}. *)
val gbdt_fit :
  ?n_stages:int -> ?shrinkage:float -> ?config:Tree.grow_config -> float array array -> float array -> Tree.gbdt
