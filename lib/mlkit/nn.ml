(** Neural-network building blocks: Adam-optimized dense parameters and a
    multi-layer perceptron (the "DNN" baseline of Figures 8/9/11).

    Parameters live in flat row-major buffers ({!La.Flat}); the optimizer
    and backprop loops walk them in the same row-major element order the
    old row-of-rows code used, so training trajectories are bit-identical
    to the naive representation. *)

(** A dense parameter matrix with its gradient and Adam moments. *)
type param = {
  w : La.Flat.mat;
  g : La.Flat.mat;
  m : La.Flat.mat;
  v : La.Flat.mat;
}

let param rng rows cols =
  {
    w = La.Flat.randn rng rows cols;
    g = La.Flat.create rows cols;
    m = La.Flat.create rows cols;
    v = La.Flat.create rows cols;
  }

let zero_param rows cols =
  {
    w = La.Flat.create rows cols;
    g = La.Flat.create rows cols;
    m = La.Flat.create rows cols;
    v = La.Flat.create rows cols;
  }

let param_of_weights rows_m =
  let w = La.Flat.of_rows rows_m in
  let rows = w.La.Flat.rows and cols = w.La.Flat.cols in
  { w; g = La.Flat.create rows cols; m = La.Flat.create rows cols; v = La.Flat.create rows cols }

let weights_of_param p = La.Flat.to_rows p.w

let rows p = p.w.La.Flat.rows
let cols p = p.w.La.Flat.cols

let zero_grad p = La.Flat.fill p.g 0.0

type adam = { lr : float; beta1 : float; beta2 : float; eps : float; mutable t : int }

let adam ?(lr = 0.01) () = { lr; beta1 = 0.9; beta2 = 0.999; eps = 1e-8; t = 0 }

(** One Adam step over a set of parameters; call after accumulating grads. *)
let adam_step opt params =
  opt.t <- opt.t + 1;
  let bc1 = 1.0 -. (opt.beta1 ** float_of_int opt.t) in
  let bc2 = 1.0 -. (opt.beta2 ** float_of_int opt.t) in
  List.iter
    (fun p ->
      let w = p.w.La.Flat.a and g = p.g.La.Flat.a in
      let m = p.m.La.Flat.a and v = p.v.La.Flat.a in
      let len = Array.length w in
      if Array.length g <> len || Array.length m <> len || Array.length v <> len then
        invalid_arg "Nn.adam_step: shape mismatch";
      for k = 0 to len - 1 do
        let gk = Array.unsafe_get g k in
        let mk = (opt.beta1 *. Array.unsafe_get m k) +. ((1.0 -. opt.beta1) *. gk) in
        Array.unsafe_set m k mk;
        let vk = (opt.beta2 *. Array.unsafe_get v k) +. ((1.0 -. opt.beta2) *. gk *. gk) in
        Array.unsafe_set v k vk;
        let mh = mk /. bc1 and vh = vk /. bc2 in
        Array.unsafe_set w k (Array.unsafe_get w k -. (opt.lr *. mh /. (sqrt vh +. opt.eps)))
      done)
    params

(** Clip the global gradient norm across parameters to [limit]. *)
let clip_gradients params limit =
  let total =
    List.fold_left
      (fun acc p -> Array.fold_left (fun acc g -> acc +. (g *. g)) acc p.g.La.Flat.a)
      0.0 params
  in
  let norm = sqrt total in
  if norm > limit then begin
    let s = limit /. norm in
    List.iter
      (fun p ->
        let g = p.g.La.Flat.a in
        for k = 0 to Array.length g - 1 do
          g.(k) <- s *. g.(k)
        done)
      params
  end

(* -- Multi-layer perceptron -- *)

type mlp = {
  layers : param list;  (** each (out x (in+1)): last column is the bias *)
  mutable mu : float array;
  mutable sd : float array;
  out_dim : int;
}

let mlp_create rng ~in_dim ~hidden ~out_dim =
  let dims = (in_dim :: hidden) @ [ out_dim ] in
  let rec pairs = function a :: (b :: _ as rest) -> (a, b) :: pairs rest | [ _ ] | [] -> [] in
  {
    layers = List.map (fun (i, o) -> param rng o (i + 1)) (pairs dims);
    mu = [||];
    sd = [||];
    out_dim;
  }

let affine p x =
  let w = p.w.La.Flat.a and cols = p.w.La.Flat.cols in
  let n = Array.length x in
  Array.init p.w.La.Flat.rows (fun i ->
      let base = i * cols in
      let acc = ref w.(base + n) in
      for j = 0 to n - 1 do
        acc := !acc +. (w.(base + j) *. x.(j))
      done;
      !acc)

(** Forward pass returning per-layer inputs (for backprop) and the output.
    Hidden activations are ReLU; the output layer is linear. *)
let mlp_forward net x =
  let rec go inputs x = function
    | [] -> (List.rev inputs, x)
    | [ last ] ->
      let z = affine last x in
      (List.rev ((x, z) :: inputs), z)
    | p :: rest ->
      let z = affine p x in
      let a = Array.map La.relu z in
      go ((x, z) :: inputs) a rest
  in
  go [] x net.layers

let mlp_predict net x =
  let x = if Array.length net.mu = 0 then x else La.apply_standardize x net.mu net.sd in
  snd (mlp_forward net x)

(** Backprop [dout] (gradient at the linear output) through the net,
    accumulating parameter gradients. *)
let mlp_backward net caches dout =
  let rec go (rev_caches : (float array * float array) list) (layers_rev : param list) dout =
    match (rev_caches, layers_rev) with
    | [], [] -> ()
    | (x, _z) :: crest, p :: lrest ->
      (* dout arrives already masked for this layer; accumulate grads, then
         mask by the previous layer's pre-activation before recursing *)
      let n = Array.length x in
      let g = p.g.La.Flat.a and w = p.w.La.Flat.a and cols = p.w.La.Flat.cols in
      Array.iteri
        (fun i d ->
          let base = i * cols in
          for j = 0 to n - 1 do
            g.(base + j) <- g.(base + j) +. (d *. x.(j))
          done;
          g.(base + n) <- g.(base + n) +. d)
        dout;
      let dx = La.vec n in
      Array.iteri
        (fun i d ->
          let base = i * cols in
          for j = 0 to n - 1 do
            dx.(j) <- dx.(j) +. (w.(base + j) *. d)
          done)
        dout;
      (match crest with
      | (_, zprev) :: _ ->
        let masked = Array.mapi (fun j v -> if zprev.(j) > 0.0 then v else 0.0) dx in
        go crest lrest masked
      | [] -> ())
    | _, _ -> ()
  in
  go (List.rev caches) (List.rev net.layers) dout

(** Train on (x, y) regression pairs with MSE loss. *)
let mlp_fit_regression ?(epochs = 60) ?(lr = 0.01) ?(seed = 7) net xs ys =
  let xs, mu, sd = La.standardize xs in
  net.mu <- mu;
  net.sd <- sd;
  let opt = adam ~lr () in
  let rng = Util.Rng.create seed in
  let idx = Array.init (Array.length xs) (fun i -> i) in
  for _ = 1 to epochs do
    Util.Rng.shuffle rng idx;
    Array.iter
      (fun k ->
        List.iter zero_grad net.layers;
        let caches, out = mlp_forward net xs.(k) in
        let dout = Array.mapi (fun j o -> 2.0 *. (o -. ys.(k).(j))) out in
        mlp_backward net caches dout;
        clip_gradients net.layers 5.0;
        adam_step opt net.layers)
      idx
  done

(** Train a binary classifier with logistic loss; labels in {0,1}; the net
    must have out_dim = 1. *)
let mlp_fit_binary ?(epochs = 60) ?(lr = 0.01) ?(seed = 7) net xs ys =
  let xs, mu, sd = La.standardize xs in
  net.mu <- mu;
  net.sd <- sd;
  let opt = adam ~lr () in
  let rng = Util.Rng.create seed in
  let idx = Array.init (Array.length xs) (fun i -> i) in
  for _ = 1 to epochs do
    Util.Rng.shuffle rng idx;
    Array.iter
      (fun k ->
        List.iter zero_grad net.layers;
        let caches, out = mlp_forward net xs.(k) in
        let p = La.sigmoid out.(0) in
        let dout = [| p -. ys.(k) |] in
        mlp_backward net caches dout;
        clip_gradients net.layers 5.0;
        adam_step opt net.layers)
      idx
  done

let mlp_predict_binary net x = La.sigmoid (mlp_predict net x).(0)
