(** K-fold cross-validation utilities.

    Used to pick hyperparameters and to report variance-aware accuracy for
    the smaller training sets in this reproduction (the paper reports
    train-converged accuracies; CV guards our smaller corpora against
    overfitting artefacts). *)

(** Deterministic K-fold index split: returns [(train, test)] index arrays
    for each fold.  Fold membership and within-fold order are a direct
    function of the shuffled position ([pos mod k]), never of an
    accumulation direction, so chunked parallel iteration over folds sees
    exactly the order a serial loop would. *)
let kfold ?(seed = 47) ~k n =
  if k < 2 || k > n then invalid_arg "Crossval.kfold: need 2 <= k <= n";
  let rng = Util.Rng.create seed in
  let idx = Array.init n (fun i -> i) in
  Util.Rng.shuffle rng idx;
  let in_fold fold pos = pos mod k = fold in
  let positions p = Array.of_seq (Seq.filter p (Seq.init n Fun.id)) in
  List.init k (fun fold ->
      ( Array.map (fun pos -> idx.(pos)) (positions (fun pos -> not (in_fold fold pos))),
        Array.map (fun pos -> idx.(pos)) (positions (in_fold fold)) ))

(** Fit/score every fold independently on the domain pool; fold scores come
    back in fold order, so the reported mean/stddev are identical to a
    serial run. *)
let fold_scores ~score folds =
  Array.of_list (Util.Pool.parallel_map_list ~chunk:1 score folds)

(** Mean and standard deviation of a per-fold metric for a regression
    model family.  [fit xs ys] trains, [predict model x] infers, and the
    score of each fold is the MAE on its held-out part. *)
let cv_regression ?(seed = 47) ~k ~fit ~predict xs ys =
  let n = Array.length xs in
  let arr =
    fold_scores
      ~score:(fun (train_idx, test_idx) ->
        let tx = Array.map (fun i -> xs.(i)) train_idx in
        let ty = Array.map (fun i -> ys.(i)) train_idx in
        let model = fit tx ty in
        let preds = Array.map (fun i -> predict model xs.(i)) test_idx in
        let truth = Array.map (fun i -> ys.(i)) test_idx in
        Metrics.mae preds truth)
      (kfold ~seed ~k n)
  in
  (Util.Stats.mean arr, Util.Stats.stddev arr)

(** Same for binary classification; the fold score is accuracy. *)
let cv_classification ?(seed = 47) ~k ~fit ~predict xs ys =
  let n = Array.length xs in
  let arr =
    fold_scores
      ~score:(fun (train_idx, test_idx) ->
        let tx = Array.map (fun i -> xs.(i)) train_idx in
        let ty = Array.map (fun i -> ys.(i)) train_idx in
        let model = fit tx ty in
        let preds = Array.map (fun i -> predict model xs.(i)) test_idx in
        let truth = Array.map (fun i -> ys.(i)) test_idx in
        Metrics.accuracy preds truth)
      (kfold ~seed ~k n)
  in
  (Util.Stats.mean arr, Util.Stats.stddev arr)

(** Pick the argmin-mean-MAE candidate from a labeled list of regression
    model families under K-fold CV. *)
let select_regression ?(seed = 47) ?(k = 5) candidates xs ys =
  let scored =
    List.map
      (fun (name, fit, predict) ->
        let mean, _ = cv_regression ~seed ~k ~fit ~predict xs ys in
        (name, mean))
      candidates
  in
  List.fold_left
    (fun (bn, bs) (name, score) -> if score < bs then (name, score) else (bn, bs))
    ("", infinity) scored
