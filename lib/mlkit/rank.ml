(** LambdaMART-style pairwise ranking (§4.5).

    Gradient-boosted trees trained on pairwise lambda gradients within
    query groups, as in XGBoost's rank:pairwise objective.  A group is a
    set of candidate colocation pairs; relevance is (negated) performance
    degradation, so the best pair ranks first. *)

type group = { features : float array array; relevance : float array }

type t = { model : Tree.gbdt }

(** Lambda gradients for one group given the current scores: for every
    ordered pair (i better than j), push score_i up and score_j down with
    the logistic pairwise weight. *)
let lambdas (g : group) scores =
  let n = Array.length g.features in
  let lam = Array.make n 0.0 in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if g.relevance.(a) > g.relevance.(b) +. 1e-12 then begin
        let rho = La.sigmoid (-.(scores.(a) -. scores.(b))) in
        lam.(a) <- lam.(a) +. rho;
        lam.(b) <- lam.(b) -. rho
      end
    done
  done;
  lam

let fit ?(n_stages = 50) ?(shrinkage = 0.15) ?(max_depth = 3) (groups : group list) =
  Obs.Span.with_ ~cat:"mlkit" "rank.fit" @@ fun () ->
  let all_features = Array.concat (List.map (fun g -> g.features) groups) in
  let n = Array.length all_features in
  let scores = Array.make n 0.0 in
  let offsets =
    let acc = ref 0 in
    List.map
      (fun g ->
        let o = !acc in
        acc := !acc + Array.length g.features;
        o)
      groups
  in
  let stages = ref [] in
  let series = Obs.Series.create ~capacity:(max 16 n_stages) "rank.fit" in
  for stage = 1 to n_stages do
    let grad = Array.make n 0.0 in
    List.iteri
      (fun gi g ->
        let off = List.nth offsets gi in
        let local = Array.sub scores off (Array.length g.features) in
        let lam = lambdas g local in
        Array.iteri (fun i l -> grad.(off + i) <- l) lam)
      groups;
    (* mean |lambda|: pairwise ranking violation mass, ~0 when sorted *)
    let lam_mass = Array.fold_left (fun acc l -> acc +. abs_float l) 0.0 grad in
    Obs.Series.record series ~step:stage (lam_mass /. float_of_int (max 1 n));
    let tree =
      Tree.grow
        ~config:{ Tree.default_grow with Tree.max_depth; Tree.seed = 29 + stage }
        all_features grad
    in
    Array.iteri (fun i x -> scores.(i) <- scores.(i) +. (shrinkage *. Tree.predict tree x)) all_features;
    stages := tree :: !stages
  done;
  { model = { Tree.init = 0.0; shrinkage; stages = List.rev !stages } }

let score t x = Tree.gbdt_predict t.model x

(** Rank candidate feature vectors best-first. *)
let rank t features =
  let scored = Array.mapi (fun i x -> (i, score t x)) features in
  Array.sort (fun (_, a) (_, b) -> compare b a) scored;
  Array.map fst scored

(** Top-k accuracy of the ranker on a labeled group: is the truly best
    candidate among the predicted top k? *)
let topk_hit t (g : group) k =
  let order = rank t g.features in
  let truly_best = Util.Stats.argmax g.relevance in
  let k = min k (Array.length order) in
  let rec scan i = if i >= k then false else if order.(i) = truly_best then true else scan (i + 1) in
  scan 0
