(** The retained pre-optimization IR builder: blocks store instructions in
    execution order, so [emit] is a quadratic list append, the terminator
    checks pay a full [List.rev], and [block] scans the block list.

    Kept verbatim (like {!Mlkit.Naive} and [Nfcc.compile_reference]) as
    the representation {!Lower.Reference} lowers through — the baseline
    `bench/main.exe parallel` times the flat builder against.  Produces
    IR bit-identical to {!Builder}. *)

type t = {
  fname : string;
  mutable blocks : Ir.block list;  (** reverse creation order *)
  mutable current : Ir.block;
  mutable next_reg : int;
  mutable next_bid : int;
}

let create fname =
  let entry = { Ir.bid = 0; src_sid = 0; instrs = []; succs = [] } in
  { fname; blocks = [ entry ]; current = entry; next_reg = 1; next_bid = 1 }

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let emit t ?res ~op ~args ~ty ~annot () =
  let instr = { Ir.res; op; args; ty; annot } in
  t.current.instrs <- t.current.instrs @ [ instr ];
  res

let emit_value t ~op ~args ~ty ~annot =
  let r = fresh_reg t in
  ignore (emit t ~res:r ~op ~args ~ty ~annot ());
  r

let emit_void t ~op ~args ~ty ~annot = ignore (emit t ~op ~args ~ty ~annot ())

let start_block t ~sid =
  let b = { Ir.bid = t.next_bid; src_sid = sid; instrs = []; succs = [] } in
  t.next_bid <- t.next_bid + 1;
  t.blocks <- b :: t.blocks;
  t.current <- b;
  b

let current_bid t = t.current.Ir.bid

let block t bid = List.find (fun (b : Ir.block) -> b.Ir.bid = bid) t.blocks

let prev_block t = match t.blocks with _current :: prev :: _ -> Some prev | _ -> None

let block_terminated (b : Ir.block) =
  match List.rev b.Ir.instrs with i :: _ -> Ir.is_terminator i | [] -> false

let append_terminator (b : Ir.block) instr = b.Ir.instrs <- b.Ir.instrs @ [ instr ]

let terminated t = block_terminated t.current

let br t target =
  if not (terminated t) then
    emit_void t ~op:(Ir.Br target) ~args:[] ~ty:Ir.I32 ~annot:Ir.Control

let ret t = if not (terminated t) then emit_void t ~op:Ir.Ret ~args:[] ~ty:Ir.I32 ~annot:Ir.Control

let finish t =
  ret t;
  let blocks = List.sort (fun a b -> compare a.Ir.bid b.Ir.bid) (List.rev t.blocks) in
  let arr = Array.of_list blocks in
  Array.iter
    (fun b ->
      (match List.rev b.Ir.instrs with
      | i :: _ when Ir.is_terminator i -> ()
      | _ ->
        b.Ir.instrs <-
          b.Ir.instrs
          @ [ { Ir.res = None; op = Ir.Ret; args = []; ty = Ir.I32; annot = Ir.Control } ]);
      let succs =
        List.concat_map
          (fun i ->
            match i.Ir.op with
            | Ir.Br target -> [ target ]
            | Ir.Cond_br (a, b) -> [ a; b ]
            | _ -> [])
          b.Ir.instrs
      in
      b.Ir.succs <- List.sort_uniq compare succs)
    arr;
  { Ir.fname = t.fname; blocks = arr }
