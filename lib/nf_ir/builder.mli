(** Imperative IR construction helper used by the frontend: maintains a
    current block, fresh register numbering, and block creation with
    source-statement attribution.

    Blocks under construction store instructions in reverse execution
    order ([emit] is a constant-time prepend); [finish] restores execution
    order.  The type is abstract so mid-build access goes through
    {!block} / {!block_terminated} / {!append_terminator}, which respect
    that invariant. *)

type t

(** Fresh builder; the entry block carries [src_sid = 0] (once per
    packet). *)
val create : string -> t

val fresh_reg : t -> int

(** Append an instruction; returns [res] back for chaining. *)
val emit :
  t ->
  ?res:int ->
  op:Ir.op ->
  args:Ir.operand list ->
  ty:Ir.typ ->
  annot:Ir.annot ->
  unit ->
  int option

(** Emit with a fresh result register; returns the register. *)
val emit_value : t -> op:Ir.op -> args:Ir.operand list -> ty:Ir.typ -> annot:Ir.annot -> int

val emit_void : t -> op:Ir.op -> args:Ir.operand list -> ty:Ir.typ -> annot:Ir.annot -> unit

(** Open a new block attributed to source statement [sid] and make it
    current (not yet linked). *)
val start_block : t -> sid:int -> Ir.block

val current_bid : t -> int

(** The under-construction block with id [bid]; raises [Not_found] if no
    such block was started. *)
val block : t -> int -> Ir.block

(** The block created just before the current one (used to patch
    fall-through edges when opening loop headers). *)
val prev_block : t -> Ir.block option

(** Does an under-construction block already end in a terminator? *)
val block_terminated : Ir.block -> bool

(** Append an instruction (typically a terminator) to an
    under-construction block in execution order. *)
val append_terminator : Ir.block -> Ir.instr -> unit

(** Does the current block already end in a terminator? *)
val terminated : t -> bool

(** Terminators; each is a no-op when the block is already terminated. *)
val br : t -> int -> unit

(** [cond_br t cond ~then_ ~else_] branches on the condition operand. *)
val cond_br : t -> Ir.operand -> then_:int -> else_:int -> unit

val ret : t -> unit

(** Seal the function: order blocks by id, terminate stragglers with
    [Ret], restore execution order, and populate successor lists. *)
val finish : t -> Ir.func
