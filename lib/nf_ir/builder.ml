(** Imperative IR construction helper used by the frontend.

    Maintains a current block, fresh register numbering, and block creation
    with source-statement attribution.  Terminators are added explicitly;
    [finish] seals the function and derives successor edges.

    While a function is under construction every block stores its
    instructions in {e reverse} execution order, so [emit] is a constant
    prepend and the terminator checks are head inspections instead of the
    quadratic append / [List.rev] the naive representation forces.
    [finish] restores execution order once per block.  Mid-build access
    therefore goes through {!block} / {!block_terminated} /
    {!append_terminator}, which keep the invariant hidden from callers. *)

type t = {
  fname : string;
  mutable blocks : Ir.block list;  (** reverse creation order *)
  mutable current : Ir.block;
  mutable next_reg : int;
  mutable next_bid : int;
  by_bid : (int, Ir.block) Hashtbl.t;
}

let create fname =
  (* entry block executes once per packet: src_sid = 0 by convention *)
  let entry = { Ir.bid = 0; src_sid = 0; instrs = []; succs = [] } in
  let by_bid = Hashtbl.create 16 in
  Hashtbl.replace by_bid 0 entry;
  { fname; blocks = [ entry ]; current = entry; next_reg = 1; next_bid = 1; by_bid }

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

(** Append an instruction to the current block and return its result reg. *)
let emit t ?res ~op ~args ~ty ~annot () =
  let instr = { Ir.res; op; args; ty; annot } in
  t.current.instrs <- instr :: t.current.instrs;
  res

let emit_value t ~op ~args ~ty ~annot =
  let r = fresh_reg t in
  ignore (emit t ~res:r ~op ~args ~ty ~annot ());
  r

let emit_void t ~op ~args ~ty ~annot = ignore (emit t ~op ~args ~ty ~annot ())

(** Open a new block attributed to source statement [sid] and make it
    current.  Does not link it; use terminators for that. *)
let start_block t ~sid =
  let b = { Ir.bid = t.next_bid; src_sid = sid; instrs = []; succs = [] } in
  t.next_bid <- t.next_bid + 1;
  t.blocks <- b :: t.blocks;
  t.current <- b;
  Hashtbl.replace t.by_bid b.Ir.bid b;
  b

let current_bid t = t.current.Ir.bid

(** The block with id [bid]; it must exist. *)
let block t bid = Hashtbl.find t.by_bid bid

(** The block created just before the current one, if any. *)
let prev_block t = match t.blocks with _current :: prev :: _ -> Some prev | _ -> None

(** Does an under-construction block already end in a terminator? *)
let block_terminated (b : Ir.block) =
  match b.Ir.instrs with i :: _ -> Ir.is_terminator i | [] -> false

(** Append [instr] to an under-construction block in execution order. *)
let append_terminator (b : Ir.block) instr = b.Ir.instrs <- instr :: b.Ir.instrs

(** True when the current block already ends in a terminator. *)
let terminated t = block_terminated t.current

let br t target =
  if not (terminated t) then
    emit_void t ~op:(Ir.Br target) ~args:[] ~ty:Ir.I32 ~annot:Ir.Control

let cond_br t cond ~then_:tb ~else_:eb =
  if not (terminated t) then
    emit_void t ~op:(Ir.Cond_br (tb, eb)) ~args:[ cond ] ~ty:Ir.I1 ~annot:Ir.Control

let ret t = if not (terminated t) then emit_void t ~op:Ir.Ret ~args:[] ~ty:Ir.I32 ~annot:Ir.Control

(** Seal the function: order blocks by id, ensure every block is terminated
    (falling through to [Ret]), restore execution order and populate
    successor lists. *)
let finish t =
  (* Terminate the final current block. *)
  ret t;
  let blocks = List.sort (fun a b -> compare a.Ir.bid b.Ir.bid) t.blocks in
  let arr = Array.of_list blocks in
  Array.iter
    (fun b ->
      (* A block left unterminated (e.g. an empty join block) falls through
         to a Ret for safety. *)
      if not (block_terminated b) then
        append_terminator b
          { Ir.res = None; op = Ir.Ret; args = []; ty = Ir.I32; annot = Ir.Control };
      b.Ir.instrs <- List.rev b.Ir.instrs;
      let succs =
        List.concat_map
          (fun i ->
            match i.Ir.op with
            | Ir.Br target -> [ target ]
            | Ir.Cond_br (a, b) -> [ a; b ]
            | _ -> [])
          b.Ir.instrs
      in
      b.Ir.succs <- List.sort_uniq compare succs)
    arr;
  { Ir.fname = t.fname; blocks = arr }
