(** Soak test: hammer a live insight server with mixed valid, malformed,
    oversized, and bursty traffic while fault injection is armed, then
    assert the health invariants that a short functional test can't see:

    - zero leaked file descriptors once the server has drained;
    - serve counters are monotone for the whole run;
    - the drain itself is clean (run returns, socket file removed).

    Duration comes from [CLARA_SOAK_S] (default 2s, so `dune runtest`
    stays quick); the [@runtest-soak] alias runs the same binary for
    ~10s.  [serve.read] is armed via [CLARA_FAULT] in the dune rule —
    the env path — and [jsonl.parse] is armed programmatically once the
    models have trained and the report cache is warm (arming earlier
    would fault the warm-up instead of the server).

    A second phase soaks the scale-out topology: a router fronting three
    worker processes takes the same traffic mix while a chaos domain
    SIGKILLs and rolling-restarts the workers, and asserts the same
    invariants on the router process (zero leaked fds, monotone
    [clara_router_*] counters, clean drain) plus: clients keep
    succeeding across kill windows (the retry re-hashes), and every
    shed/failure reply stays typed.  Workers are spawned by re-exec —
    hence the {!Router.Spawn.worker_main_if_requested} hook below. *)

let () = Router.Spawn.worker_main_if_requested ()

let soak_s =
  match Sys.getenv_opt "CLARA_SOAK_S" with
  | Some s -> ( match float_of_string_opt s with Some v when v > 0.0 -> v | _ -> 2.0)
  | None -> 2.0

let n_clients = 4

let fd_count () = Array.length (Sys.readdir "/proc/self/fd")

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("soak: FAIL: " ^ msg); exit 1) fmt

(* -- raw-socket helpers (for traffic Client can't produce: malformed
   lines, oversized lines, pipelined bursts) -- *)

let connect_with_retry path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go attempts =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when attempts > 0 ->
      Unix.sleepf 0.05;
      go (attempts - 1)
  in
  go 100

let really_write fd s =
  let n = String.length s in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write_substring fd s !sent (n - !sent)
  done

(* Read complete lines until [n] arrive, the deadline passes, or the
   peer hangs up — whichever first.  A faulted server may reset the
   connection mid-burst; partial results are the point of a soak. *)
let read_lines fd ~n ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 8192 in
  let complete () =
    match String.split_on_char '\n' (Buffer.contents buf) with
    | [] -> []
    | parts -> List.filteri (fun i _ -> i < List.length parts - 1) parts
  in
  let rec loop () =
    if List.length (complete ()) >= n then ()
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then ()
      else
        match Unix.select [ fd ] [] [] remaining with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | [], _, _ -> ()
        | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> ()
          | k ->
            Buffer.add_subbytes buf chunk 0 k;
            loop ()
          | exception Unix.Unix_error _ -> ())
  in
  loop ();
  let lines = complete () in
  if List.length lines > n then List.filteri (fun i _ -> i < n) lines else lines

(* One throwaway connection: send [line], collect up to [expect] reply
   lines.  Any I/O trouble just yields the lines gathered so far. *)
let raw_round path ~expect line =
  match connect_with_retry path with
  | exception _ -> []
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        match really_write fd line with
        | () -> read_lines fd ~n:expect ~timeout_s:2.0
        | exception Unix.Unix_error _ -> [])

(* -- per-client traffic loop -- *)

type tally = {
  mutable sent : int;  (* logical requests issued (a burst counts once) *)
  mutable ok : int;  (* replies that parsed (including typed errors) *)
  mutable client_errors : int;  (* Client gave up after its retries *)
  mutable raw_lines : int;  (* reply lines collected on raw connections *)
  mutable overloaded : int;  (* shed replies observed in bursts *)
}

let is_overloaded line =
  match Serve.Jsonl.of_string line with
  | Ok v -> Serve.Jsonl.member "overloaded" v = Some (Serve.Jsonl.Bool true)
  | Error _ -> false

let oversized_line =
  Printf.sprintf {|{"id":1,"cmd":"analyze","nf":"%s","workload":"mixed"}|}
    (String.make 65536 'x')
  ^ "\n"

let burst_line =
  String.concat "" (List.init 100 (fun i -> Printf.sprintf {|{"id":%d,"cmd":"ping"}|} i ^ "\n"))

let client_loop path seed until =
  let t = { sent = 0; ok = 0; client_errors = 0; raw_lines = 0; overloaded = 0 } in
  let client =
    Serve.Client.create ~timeout_s:2.0 ~retries:2 ~backoff_base_s:0.01 ~backoff_cap_s:0.1 ~seed
      ~socket_path:path ()
  in
  let via_client fields =
    t.sent <- t.sent + 1;
    match Serve.Client.request client fields with
    | Ok _ -> t.ok <- t.ok + 1
    | Error _ ->
      t.client_errors <- t.client_errors + 1;
      Serve.Client.close client
  in
  let via_raw ~expect line =
    t.sent <- t.sent + 1;
    let replies = raw_round path ~expect line in
    t.raw_lines <- t.raw_lines + List.length replies;
    t.overloaded <- t.overloaded + List.length (List.filter is_overloaded replies)
  in
  let i = ref 0 in
  while Unix.gettimeofday () < until do
    (match !i mod 8 with
    | 0 ->
      via_client
        [ ("cmd", Serve.Jsonl.Str "analyze"); ("nf", Serve.Jsonl.Str "tcpack");
          ("workload", Serve.Jsonl.Str "mixed") ]
    | 1 -> via_client [ ("cmd", Serve.Jsonl.Str "ping") ]
    | 2 ->
      via_client
        [ ("cmd", Serve.Jsonl.Str "analyze"); ("nf", Serve.Jsonl.Str "udpipencap");
          ("workload", Serve.Jsonl.Str "small") ]
    | 3 ->
      (* unknown NF: a valid request whose reply is a typed error *)
      via_client [ ("cmd", Serve.Jsonl.Str "analyze"); ("nf", Serve.Jsonl.Str "no-such-nf") ]
    | 4 -> via_raw ~expect:1 "{\"id\":3,\"cmd\":\n"
    | 5 -> via_raw ~expect:1 oversized_line
    | 6 -> via_raw ~expect:100 burst_line
    | _ -> via_client [ ("cmd", Serve.Jsonl.Str "stats") ]);
    incr i
  done;
  Serve.Client.close client;
  t

(* -- monotone-counter sampling (main domain, while clients hammer) -- *)

let watched_counters () =
  List.map
    (fun (name, labels) -> (name, Obs.Metrics.counter ~labels name))
    [ ("clara_serve_requests_total", []); ("clara_serve_errors_total", []);
      ("clara_serve_shed_total", []); ("clara_serve_client_disconnects_total", []);
      ("clara_fault_injected_total", [ ("point", "serve.read") ]) ]

let single_server_soak models =
  let fd_before = fd_count () in
  let server =
    Serve.Server.create ~cache_capacity:16 ~slow_threshold_s:30.0 ~max_pending:64
      ~max_clients:32 models
  in
  (* Pre-warm the two analyze keys the soak traffic uses: a cold cache
     on a loaded 1-core box can hold the select loop in analysis for
     longer than the client timeout, turning the soak into a retry
     convoy.  The soak's job is the I/O and shedding paths, not
     analysis latency — pool-fault behaviour is test_robust's beat. *)
  ignore
    (Serve.Server.process_batch server
       [ {|{"cmd":"analyze","nf":"tcpack","workload":"mixed"}|};
         {|{"cmd":"analyze","nf":"udpipencap","workload":"small"}|} ]);
  (* env-armed points (CLARA_FAULT, set by the dune rule) only touch the
     server loop; jsonl.parse would have faulted the warm-up, so arm it
     only now *)
  Obs.Fault.set ~point:"jsonl.parse" ~prob:0.01 ~seed:5;
  let path = Filename.temp_file "clara_soak" ".sock" in
  Sys.remove path;
  let srv = Domain.spawn (fun () -> Serve.Server.run server ~socket_path:path) in
  let until = Unix.gettimeofday () +. soak_s in
  let clients =
    List.init n_clients (fun i -> Domain.spawn (fun () -> client_loop path (100 + i) until))
  in
  (* sample the watched counters for the whole soak; each must never
     decrease (the fault/disconnect/shed paths share them across domains) *)
  let watched = watched_counters () in
  let prev = Array.make (List.length watched) 0.0 in
  let samples = ref 0 in
  while Unix.gettimeofday () < until do
    List.iteri
      (fun idx (name, c) ->
        let v = Obs.Metrics.counter_value c in
        if v < prev.(idx) then fail "counter %s went backwards: %g -> %g" name prev.(idx) v;
        prev.(idx) <- v)
      watched;
    incr samples;
    Unix.sleepf 0.05
  done;
  let tallies = List.map Domain.join clients in
  (* graceful drain: the SIGTERM path minus the signal *)
  Serve.Server.request_drain server;
  Domain.join srv;
  if Sys.file_exists path then fail "socket file survived the drain";
  (* the drained server holds nothing open; neither do the clients *)
  let fd_after = fd_count () in
  if fd_after <> fd_before then
    fail "leaked %d file descriptor(s): %d before, %d after" (fd_after - fd_before) fd_before
      fd_after;
  let total f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
  let sent = total (fun t -> t.sent)
  and ok = total (fun t -> t.ok)
  and client_errors = total (fun t -> t.client_errors)
  and raw_lines = total (fun t -> t.raw_lines)
  and overloaded = total (fun t -> t.overloaded) in
  if sent = 0 then fail "no traffic was generated";
  if ok = 0 then fail "no client request ever succeeded";
  if raw_lines = 0 then
    fail "raw connections never got a reply line (sent=%d ok=%d client_errors=%d)" sent ok
      client_errors;
  if Serve.Server.served server = 0 then fail "server served nothing";
  if !samples = 0 then fail "counter sampler never ran";
  Printf.printf
    "soak: OK  %.1fs  %d clients  sent=%d ok=%d client_errors=%d raw_lines=%d overloaded=%d \
     served=%d shed=%d injected(serve.read)=%d samples=%d fds=%d\n"
    soak_s n_clients sent ok client_errors raw_lines overloaded
    (Serve.Server.served server) (Serve.Server.shed server)
    (Obs.Fault.fired "serve.read") !samples fd_after

(* -- phase 2: topology soak — router + 3 workers + chaos -- *)

let n_workers = 3

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let watched_router_counters () =
  List.map
    (fun name -> (name, Obs.Metrics.counter name))
    [ "clara_router_requests_total"; "clara_router_forwarded_total";
      "clara_router_quota_shed_total"; "clara_router_unavailable_total";
      "clara_router_failovers_total" ]

(* Kill (hard or soft, alternating) one worker at a time, reap it, and
   respawn it on the same name and socket — a rolling restart under
   fire.  The router's prober re-admits each respawn; placement is
   deterministic, so its keys come straight back. *)
let chaos_loop fleet ~bundle ~until =
  let kills = ref 0 in
  let i = ref 0 in
  while Unix.gettimeofday () < until do
    Unix.sleepf 0.25;
    if Unix.gettimeofday () < until then begin
      let k = !i mod Array.length fleet in
      let sp = fleet.(k) in
      if !i mod 2 = 0 then Router.Spawn.kill sp else Router.Spawn.terminate sp;
      Router.Spawn.wait sp;
      incr kills;
      let sp' =
        Router.Spawn.spawn ~name:sp.Router.Spawn.sp_name
          ~socket_path:sp.Router.Spawn.sp_socket ~bundle ()
      in
      ignore (Router.Spawn.wait_ready ~timeout_s:5.0 sp');
      fleet.(k) <- sp';
      incr i
    end
  done;
  !kills

let topology_soak models =
  (* the bundle every worker (and every chaos respawn) serves *)
  let bundle = Filename.temp_file "clara_soak_bundle" ".d" in
  Sys.remove bundle;
  let manifest =
    { Persist.Bundle.seed = 501; epochs = 1;
      corpus_hash = Persist.Bundle.corpus_hash ();
      built_at = "1970-01-01T00:00:00Z" }
  in
  Persist.Bundle.save ~dir:bundle manifest models;
  Fun.protect ~finally:(fun () -> rm_rf bundle) @@ fun () ->
  let fd_before = fd_count () in
  let sockets =
    List.init n_workers (fun k ->
        Printf.sprintf "%s/clara_soak_%d_w%d.sock" (Filename.get_temp_dir_name ())
          (Unix.getpid ()) k)
  in
  let fleet =
    Array.of_list
      (List.mapi
         (fun k socket_path ->
           Router.Spawn.spawn ~name:(Printf.sprintf "w%d" k) ~socket_path ~bundle ())
         sockets)
  in
  Array.iter
    (fun sp ->
      if not (Router.Spawn.wait_ready sp) then
        fail "topology: worker %s never came up" sp.Router.Spawn.sp_name)
    fleet;
  let front =
    Router.Front.create ~vnodes:32 ~health_period_s:0.2 ~forward_timeout_s:2.0
      ~max_clients:32 ~active_bundle:bundle
      ~workers:
        (Array.to_list
           (Array.map (fun sp -> (sp.Router.Spawn.sp_name, sp.Router.Spawn.sp_socket)) fleet))
      ()
  in
  let path = Filename.temp_file "clara_soak_router" ".sock" in
  Sys.remove path;
  let rtr = Domain.spawn (fun () -> Router.Front.run front ~socket_path:path) in
  let until = Unix.gettimeofday () +. soak_s in
  let clients =
    List.init n_clients (fun i -> Domain.spawn (fun () -> client_loop path (200 + i) until))
  in
  let chaos = Domain.spawn (fun () -> chaos_loop fleet ~bundle ~until) in
  (* monotone sampling on the router's own counters, while the chaos
     domain keeps killing the processes behind them *)
  let watched = watched_router_counters () in
  let prev = Array.make (List.length watched) 0.0 in
  let samples = ref 0 in
  while Unix.gettimeofday () < until do
    List.iteri
      (fun idx (name, c) ->
        let v = Obs.Metrics.counter_value c in
        if v < prev.(idx) then
          fail "topology: counter %s went backwards: %g -> %g" name prev.(idx) v;
        prev.(idx) <- v)
      watched;
    incr samples;
    Unix.sleepf 0.05
  done;
  let tallies = List.map Domain.join clients in
  let kills = Domain.join chaos in
  (* graceful drain of the router (workers still up underneath) *)
  Router.Front.request_drain front;
  Domain.join rtr;
  if Sys.file_exists path then fail "topology: router socket survived the drain";
  Array.iter Router.Spawn.terminate fleet;
  Array.iter Router.Spawn.wait fleet;
  List.iter (fun s -> try Sys.remove s with Sys_error _ -> ()) sockets;
  let fd_after = fd_count () in
  if fd_after <> fd_before then
    fail "topology: leaked %d file descriptor(s): %d before, %d after" (fd_after - fd_before)
      fd_before fd_after;
  let total f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
  let sent = total (fun t -> t.sent)
  and ok = total (fun t -> t.ok)
  and client_errors = total (fun t -> t.client_errors)
  and raw_lines = total (fun t -> t.raw_lines)
  and overloaded = total (fun t -> t.overloaded) in
  if sent = 0 then fail "topology: no traffic was generated";
  if ok = 0 then fail "topology: no client request ever succeeded through the chaos";
  if Router.Front.served front = 0 then fail "topology: router served nothing";
  if Router.Front.forwarded front = 0 then fail "topology: router forwarded nothing";
  if soak_s >= 5.0 && kills = 0 then fail "topology: chaos never killed a worker";
  if !samples = 0 then fail "topology: counter sampler never ran";
  Printf.printf
    "soak: topology OK  %.1fs  %d clients  %d workers  kills=%d  sent=%d ok=%d \
     client_errors=%d raw_lines=%d overloaded=%d  router: served=%d forwarded=%d shed=%d \
     unavailable=%d failovers=%d  samples=%d fds=%d\n"
    soak_s n_clients n_workers kills sent ok client_errors raw_lines overloaded
    (Router.Front.served front) (Router.Front.forwarded front) (Router.Front.shed front)
    (Router.Front.unavailable front) (Router.Front.failovers front) !samples fd_after

let () =
  (* a soak under fault injection would otherwise print thousands of
     warn/info lines; the assertions below are the signal *)
  Obs.Log.set_sink Obs.Log.Off;
  (* warm the domain machinery before the fd baseline *)
  Domain.join (Domain.spawn (fun () -> ()));
  let models =
    let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
    let predictor = Clara.Predictor.train ~epochs:1 ds in
    let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
    { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None }
  in
  single_server_soak models;
  topology_soak models
