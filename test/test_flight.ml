(** Tests for the forensics stack: the continuous profiler (span-stack
    sampling, exact allocation attribution, folded-stack export), the
    flight recorder (per-shard rings, eviction, clipping, trigger
    policy, dump format), the server integration (postmortem records for
    fast/slow/error/deadline/shed replies, the [flight]/[profile] socket
    commands), and deterministic replay: a dump of a soak-style
    mixed-traffic run must reproduce byte-identical replies modulo the
    declared volatile fields, under CLARA_JOBS=1 and =4 alike, and a
    tampered reply must be caught. *)

let () = Obs.Log.set_sink Obs.Log.Off

let models =
  lazy
    (let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
     let predictor = Clara.Predictor.train ~epochs:1 ds in
     let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
     { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None })

let contains sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* -- Obs.Prof: span hooks and allocation attribution -- *)

(* Minor-heap churn the exact-allocation fallback can see: small conses
   stay in the minor heap (large arrays would go straight to the major
   heap and bypass [Gc.minor_words]). *)
let churn n =
  let acc = ref [] in
  for i = 1 to n do
    acc := (i, i) :: !acc
  done;
  ignore (Sys.opaque_identity !acc)

let test_prof_hooks_and_alloc () =
  Obs.Prof.reset ();
  ignore (Obs.Prof.enter "pf.outer");
  churn 1000;
  ignore (Obs.Prof.enter "pf.inner");
  churn 2000;
  Obs.Prof.exit_ ();
  churn 500;
  Obs.Prof.exit_ ();
  let stacks = Obs.Prof.stacks () in
  let find path = List.find_opt (fun (s : Obs.Prof.stack) -> s.Obs.Prof.path = path) stacks in
  (match find "pf.outer;pf.inner" with
  | Some s ->
    if s.Obs.Prof.alloc_w <= 0.0 then
      Alcotest.failf "inner frame attributed no allocation (%.0f words)" s.Obs.Prof.alloc_w
  | None -> Alcotest.fail "pf.outer;pf.inner stack missing");
  (match find "pf.outer" with
  | Some s ->
    (* self-allocation only: the inner frame's words must not double-count *)
    if s.Obs.Prof.alloc_w <= 0.0 then Alcotest.fail "outer frame attributed no self-allocation";
    if s.Obs.Prof.alloc_w > 100_000.0 then
      Alcotest.failf "outer self-allocation implausibly large: %.0f words" s.Obs.Prof.alloc_w
  | None -> Alcotest.fail "pf.outer stack missing");
  let folded = Obs.Prof.folded_alloc () in
  Alcotest.(check bool) "folded_alloc lists the nested path" true
    (contains "pf.outer;pf.inner " folded);
  Obs.Prof.reset ();
  Alcotest.(check string) "reset clears the tables" "" (Obs.Prof.folded_alloc ())

let test_prof_ticker_samples () =
  Obs.Prof.reset ();
  Alcotest.(check bool) "profiler starts disabled" false (Obs.Prof.enabled ());
  Obs.Prof.start ~hz:250.0 ();
  Alcotest.(check bool) "start flips enabled" true (Obs.Prof.enabled ());
  Fun.protect ~finally:Obs.Prof.stop (fun () ->
      (* spin inside a span long enough for the 250 Hz ticker to land at
         least once, even on a single-core box *)
      Obs.Span.with_ "pf.spin" (fun () ->
          let t0 = Unix.gettimeofday () in
          let acc = ref 0.0 in
          while Unix.gettimeofday () -. t0 < 0.25 do
            for i = 1 to 1000 do
              acc := !acc +. float_of_int i
            done
          done;
          ignore (Sys.opaque_identity !acc)));
  Alcotest.(check bool) "stop flips enabled" false (Obs.Prof.enabled ());
  let folded = Obs.Prof.folded () in
  Alcotest.(check bool) "ticker sampled the spinning span" true (contains "pf.spin " folded);
  (* the JSON document parses and reports what happened *)
  (match Serve.Jsonl.of_string (Obs.Prof.to_json_string ()) with
  | Error msg -> Alcotest.failf "profile json unparseable: %s" msg
  | Ok j ->
    (match Serve.Jsonl.num_member "samples" j with
    | Some n when n >= 1.0 -> ()
    | _ -> Alcotest.fail "profile json reports no samples");
    (match Serve.Jsonl.member "stacks" j with
    | Some (Serve.Jsonl.Arr (_ :: _)) -> ()
    | _ -> Alcotest.fail "profile json has no stacks"));
  Obs.Prof.reset ()

(* -- Obs.Flight: rings, eviction, clipping, triggers, dumps -- *)

let mk_record fl i =
  Obs.Flight.record fl ~shard:(i mod 2) ~trace:(Printf.sprintf "t-%d" i) ~path:"fast"
    ~latency_us:1.0 ~outcome:"ok"
    ~request:(Printf.sprintf "req-%d" i)
    ~reply:(Printf.sprintf "rep-%d" i)

let test_flight_rings () =
  let fl = Obs.Flight.create ~shards:2 ~capacity:3 ~max_bytes:64 () in
  Alcotest.(check bool) "enabled" true (Obs.Flight.enabled fl);
  Alcotest.(check int) "capacity is per-shard x shards" 6 (Obs.Flight.capacity fl);
  for i = 0 to 9 do
    mk_record fl i
  done;
  Alcotest.(check int) "recorded counts every write" 10 (Obs.Flight.recorded fl);
  let snap = Obs.Flight.snapshot fl in
  Alcotest.(check int) "rings hold the newest 3 per shard" 6 (List.length snap);
  let seqs = List.map (fun (r : Obs.Flight.record) -> r.Obs.Flight.seq) snap in
  Alcotest.(check (list int)) "snapshot is seq-ordered, oldest evicted" [ 4; 5; 6; 7; 8; 9 ]
    seqs;
  (* clipping marks the record non-replayable *)
  Obs.Flight.record fl ~shard:0 ~trace:"t" ~path:"slow" ~latency_us:1.0 ~outcome:"ok"
    ~request:(String.make 200 'x') ~reply:"r";
  let last =
    List.nth (Obs.Flight.snapshot fl) (List.length (Obs.Flight.snapshot fl) - 1)
  in
  Alcotest.(check bool) "oversized request marks truncated" true last.Obs.Flight.truncated;
  Alcotest.(check int) "stored bytes are clipped" 64 (String.length last.Obs.Flight.request)

let test_flight_disabled () =
  let fl = Obs.Flight.create ~shards:2 ~capacity:0 () in
  Alcotest.(check bool) "capacity 0 disables" false (Obs.Flight.enabled fl);
  mk_record fl 0;
  Alcotest.(check int) "disabled recorder stores nothing" 0
    (List.length (Obs.Flight.snapshot fl));
  Alcotest.(check (option string)) "dump_now declines when disabled" None
    (Obs.Flight.dump_now fl ~trigger:"manual")

let temp_dir prefix =
  let d = Filename.temp_file prefix "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let test_flight_trigger_policy () =
  (* no dump directory: triggers count but write nothing *)
  let fl = Obs.Flight.create ~shards:1 ~capacity:4 () in
  mk_record fl 0;
  Alcotest.(check (option string)) "no dir: trigger counts only" None
    (Obs.Flight.trigger fl "slow_request");
  ignore (Obs.Flight.trigger fl "slow_request");
  Alcotest.(check (list (pair string int))) "trigger counts accumulate"
    [ ("slow_request", 2) ] (Obs.Flight.triggered fl);
  (* with a directory: first trigger dumps, the second is rate-limited *)
  let dir = temp_dir "clara_flight_test" in
  let fl = Obs.Flight.create ~shards:1 ~capacity:4 ~dir ~min_dump_interval_s:3600.0 () in
  mk_record fl 0;
  (match Obs.Flight.trigger fl "deadline" with
  | Some path -> Alcotest.(check bool) "dump file exists" true (Sys.file_exists path)
  | None -> Alcotest.fail "first trigger should dump");
  Alcotest.(check (option string)) "second trigger is rate-limited" None
    (Obs.Flight.trigger fl "deadline");
  (* dump_now ignores the rate limit *)
  match Obs.Flight.dump_now fl ~trigger:"manual" with
  | None -> Alcotest.fail "dump_now should always write"
  | Some path ->
    Alcotest.(check bool) "dump_now file exists" true (Sys.file_exists path);
    (* the dump parses back: header then records *)
    (match Serve.Replay.load path with
    | Error msg -> Alcotest.failf "dump unparseable: %s" msg
    | Ok (h, records) ->
      Alcotest.(check string) "header trigger" "manual" h.Serve.Replay.h_trigger;
      Alcotest.(check int) "header pid" (Unix.getpid ()) h.Serve.Replay.h_pid;
      Alcotest.(check int) "declared = parsed" h.Serve.Replay.h_declared (List.length records);
      Alcotest.(check int) "one record" 1 (List.length records))

(* -- Replay.normalize -- *)

let test_normalize () =
  let fast =
    {|{"id":7,"ok":true,"trace_id":"t-12","nf":"x","cached":true,"path":"fast","report":"r"}|}
  in
  let miss =
    {|{"id":"q","ok":true,"trace_id":"b","nf":"x","cached":false,"path":"slow","report":"r"}|}
  in
  Alcotest.(check string) "volatile fields mask to the same bytes"
    (Serve.Replay.normalize fast) (Serve.Replay.normalize miss);
  let other = {|{"id":7,"ok":true,"trace_id":"t-12","nf":"y","cached":true,"path":"fast"}|} in
  Alcotest.(check bool) "payload differences survive masking" false
    (Serve.Replay.normalize fast = Serve.Replay.normalize other);
  (* escaped quotes inside the trace value do not derail the scan *)
  let tricky = {|{"id":1,"ok":true,"trace_id":"a\"b","cached":false,"path":"slow","k":"v"}|} in
  Alcotest.(check bool) "escape-aware trace mask keeps the tail" true
    (contains {|"k":"v"|} (Serve.Replay.normalize tricky));
  Alcotest.(check bool) "stats is volatile" true
    (Serve.Replay.volatile_request {|{"cmd":"stats"}|});
  Alcotest.(check bool) "op alias is honoured" true
    (Serve.Replay.volatile_request {|{"op":"metrics"}|});
  Alcotest.(check bool) "analyze is not volatile" false
    (Serve.Replay.volatile_request {|{"cmd":"analyze","nf":"tcpack"}|})

(* -- server integration: postmortem records + replay round trip -- *)

(* Soak-style mixed traffic: warm repeats (fast path), cold misses, a
   parse error, an unknown command, an unknown NF, a ping, a volatile
   stats probe and a doomed deadline — every reply class the recorder
   classifies. *)
let mixed_traffic =
  [ {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"a1"}|};
    {|{"id":2,"cmd":"analyze","nf":"udpipencap","workload":"small","trace_id":"a2"}|};
    {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"a1"}|};
    {|{"id":3,"cmd":"ping"}|};
    {|this is not json|};
    {|{"id":4,"cmd":"frobnicate"}|};
    {|{"id":5,"cmd":"analyze","nf":"nosuchnf","trace_id":"a5"}|};
    {|{"id":6,"cmd":"stats"}|};
    {|{"id":7,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"a1"}|};
    {|{"id":8,"cmd":"analyze","nf":"anonipaddr","workload":"large","deadline_ms":0.000001,"trace_id":"a8"}|}
  ]

let drive server = List.iter (fun l -> ignore (Serve.Server.handle_request server l)) mixed_traffic

let test_server_records_and_replays () =
  let server =
    Serve.Server.create ~cache_capacity:16 ~shards:4 ~flight_capacity:16 (Lazy.force models)
  in
  drive server;
  let fl = Serve.Server.flight server in
  let snap = Obs.Flight.snapshot fl in
  Alcotest.(check int) "every line left a record" (List.length mixed_traffic)
    (List.length snap);
  let outcomes = List.map (fun (r : Obs.Flight.record) -> r.Obs.Flight.outcome) snap in
  let paths = List.map (fun (r : Obs.Flight.record) -> r.Obs.Flight.path) snap in
  Alcotest.(check (list string)) "outcome classes in arrival order"
    [ "ok"; "ok"; "ok"; "ok"; "error"; "error"; "error"; "ok"; "ok"; "deadline" ] outcomes;
  (* lines 3 and 9 are byte-identical repeats of line 1: the fast path *)
  Alcotest.(check (list string)) "fast/slow route per record"
    [ "slow"; "slow"; "fast"; "slow"; "slow"; "slow"; "slow"; "slow"; "fast"; "slow" ] paths;
  Alcotest.(check bool) "deadline overrun counted as a trigger" true
    (List.mem_assoc "deadline" (Obs.Flight.triggered fl));
  (* seq is arrival order regardless of ambient CLARA_JOBS *)
  let seqs = List.map (fun (r : Obs.Flight.record) -> r.Obs.Flight.seq) snap in
  Alcotest.(check (list int)) "seq is dense arrival order"
    (List.init (List.length snap) Fun.id) seqs;
  (* dump -> load -> replay against a fresh server over the same bundle *)
  let dir = temp_dir "clara_flight_replay" in
  let path = Filename.concat dir "dump.jsonl" in
  Obs.Flight.dump_to_file fl ~trigger:"manual" path;
  match Serve.Replay.load path with
  | Error msg -> Alcotest.failf "cannot load dump: %s" msg
  | Ok (_, records) ->
    Alcotest.(check int) "dump holds the full snapshot" (List.length mixed_traffic)
      (List.length records);
    let replay_server = Serve.Replay.server_for ~shards:4 (Lazy.force models) in
    let r = Serve.Replay.replay ~server:replay_server records in
    Alcotest.(check int) "total" (List.length mixed_traffic) r.Serve.Replay.total;
    Alcotest.(check int) "stats was skipped as volatile" 1 r.Serve.Replay.skipped_volatile;
    Alcotest.(check int) "the deadline record was skipped as environmental" 1
      r.Serve.Replay.skipped_env;
    Alcotest.(check int) "nothing was truncated" 0 r.Serve.Replay.skipped_truncated;
    Alcotest.(check int) "everything else was compared" 8 r.Serve.Replay.compared;
    (match r.Serve.Replay.diverged with
    | [] -> ()
    | d :: _ ->
      Alcotest.failf "replay diverged at seq %d:\n  expected %s\n  got      %s"
        d.Serve.Replay.d_seq d.Serve.Replay.d_expected d.Serve.Replay.d_got);
    Alcotest.(check int) "matched = compared" r.Serve.Replay.compared r.Serve.Replay.matched;
    (* a tampered reply must be caught *)
    let tampered =
      List.map
        (fun (rec_ : Obs.Flight.record) ->
          if rec_.Obs.Flight.seq = 0 then
            { rec_ with Obs.Flight.reply = rec_.Obs.Flight.reply ^ " " }
          else rec_)
        records
    in
    let replay_server2 = Serve.Replay.server_for ~shards:4 (Lazy.force models) in
    let r2 = Serve.Replay.replay ~server:replay_server2 tampered in
    Alcotest.(check int) "tampered reply diverges" 1 (List.length r2.Serve.Replay.diverged);
    (* and the result document parses *)
    match Serve.Jsonl.of_string (Serve.Replay.to_json_string r2) with
    | Ok j ->
      Alcotest.(check (option (float 0.0))) "divergence count in json" (Some 1.0)
        (Serve.Jsonl.num_member "diverged" j)
    | Error msg -> Alcotest.failf "replay json unparseable: %s" msg

let test_shed_records () =
  let server =
    Serve.Server.create ~cache_capacity:16 ~max_pending:2 ~flight_capacity:16
      (Lazy.force models)
  in
  let lines = List.init 5 (fun i -> Printf.sprintf {|{"id":%d,"cmd":"ping"}|} i) in
  ignore (Serve.Server.process_batch server lines);
  let snap = Obs.Flight.snapshot (Serve.Server.flight server) in
  let shed =
    List.filter (fun (r : Obs.Flight.record) -> r.Obs.Flight.outcome = "overloaded") snap
  in
  Alcotest.(check int) "shed lines leave overloaded records" 3 (List.length shed);
  Alcotest.(check int) "admitted lines recorded too" 5 (List.length snap)

let test_flight_socket_command () =
  let server =
    Serve.Server.create ~cache_capacity:16 ~flight_capacity:8 (Lazy.force models)
  in
  ignore (Serve.Server.handle_request server {|{"id":1,"cmd":"ping"}|});
  let reply = Serve.Server.handle_request server {|{"id":2,"cmd":"flight"}|} in
  (match Serve.Jsonl.of_string reply with
  | Error msg -> Alcotest.failf "flight reply unparseable: %s" msg
  | Ok j -> (
    match Serve.Jsonl.str_member "flight" j with
    | None -> Alcotest.fail "flight reply misses the snapshot member"
    | Some doc -> (
      match Serve.Jsonl.of_string doc with
      | Error msg -> Alcotest.failf "flight document unparseable: %s" msg
      | Ok fj ->
        Alcotest.(check (option (float 0.0))) "document counts the ping" (Some 1.0)
          (Serve.Jsonl.num_member "recorded" fj))));
  (* the dump member writes a server-side file *)
  let dir = temp_dir "clara_flight_cmd" in
  let path = Filename.concat dir "cmd-dump.jsonl" in
  let reply =
    Serve.Server.handle_request server
      (Printf.sprintf {|{"id":3,"cmd":"flight","dump":"%s"}|} path)
  in
  (match Serve.Jsonl.of_string reply with
  | Ok j ->
    Alcotest.(check (option string)) "dumped path echoed" (Some path)
      (Serve.Jsonl.str_member "dumped" j)
  | Error msg -> Alcotest.failf "flight dump reply unparseable: %s" msg);
  Alcotest.(check bool) "server-side dump exists" true (Sys.file_exists path);
  (* profile command answers even with the profiler off *)
  let reply = Serve.Server.handle_request server {|{"id":4,"cmd":"profile"}|} in
  match Serve.Jsonl.of_string reply with
  | Error msg -> Alcotest.failf "profile reply unparseable: %s" msg
  | Ok j ->
    (match Serve.Jsonl.str_member "profile" j with
    | Some _ -> ()
    | None -> Alcotest.fail "profile reply misses the profile member");
    (match Serve.Jsonl.str_member "folded" j with
    | Some _ -> ()
    | None -> Alcotest.fail "profile reply misses the folded member")

let test_flight_json_accessor () =
  let server =
    Serve.Server.create ~cache_capacity:16 ~flight_capacity:8 (Lazy.force models)
  in
  ignore (Serve.Server.handle_request server {|{"id":1,"cmd":"ping"}|});
  match Serve.Jsonl.of_string (Serve.Server.flight_json server) with
  | Error msg -> Alcotest.failf "flight_json unparseable: %s" msg
  | Ok j -> (
    Alcotest.(check (option string)) "enabled" (Some "true")
      (Option.map Serve.Jsonl.to_string (Serve.Jsonl.member "enabled" j));
    match Serve.Jsonl.member "records" j with
    | Some (Serve.Jsonl.Arr (_ :: _)) -> ()
    | _ -> Alcotest.fail "flight_json has no records")

let () =
  Alcotest.run "flight"
    [ ( "prof",
        [ Alcotest.test_case "span hooks attribute allocation" `Quick test_prof_hooks_and_alloc;
          Alcotest.test_case "ticker samples a live span" `Slow test_prof_ticker_samples ] );
      ( "flight",
        [ Alcotest.test_case "rings evict oldest, clip oversized" `Quick test_flight_rings;
          Alcotest.test_case "capacity 0 disables recording" `Quick test_flight_disabled;
          Alcotest.test_case "trigger policy: count, rate-limit, dump" `Quick
            test_flight_trigger_policy ] );
      ( "replay",
        [ Alcotest.test_case "normalize masks exactly the volatile fields" `Quick
            test_normalize;
          Alcotest.test_case "mixed traffic records, dumps and replays clean" `Slow
            test_server_records_and_replays;
          Alcotest.test_case "shed lines leave overloaded records" `Slow test_shed_records ] );
      ( "server",
        [ Alcotest.test_case "flight/profile socket commands" `Slow test_flight_socket_command;
          Alcotest.test_case "flight_json renders the rings" `Slow test_flight_json_accessor ]
      ) ]
