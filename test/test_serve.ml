(** Tests for the insight service: the hand-rolled JSON, the LRU report
    cache, the request handler (valid / unknown-NF / malformed / inline
    p4lite), batched pipelining over a socketpair, and a real 8-client
    burst against the socket server with a 4-domain pool. *)

let with_jobs n f =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Util.Pool.set_jobs saved) f

(* -- Jsonl -- *)

let test_json_roundtrip () =
  List.iter
    (fun src ->
      match Serve.Jsonl.of_string src with
      | Error msg -> Alcotest.failf "%S failed to parse: %s" src msg
      | Ok v ->
        let printed = Serve.Jsonl.to_string v in
        Alcotest.(check bool)
          (Printf.sprintf "%S survives print+reparse" src)
          true
          (Serve.Jsonl.of_string printed = Ok v);
        Alcotest.(check bool)
          (Printf.sprintf "%S prints on one line" src)
          false (String.contains printed '\n'))
    [ "null"; "true"; "[1,2.5,\"x\"]"; "{\"a\":[{\"b\":null}],\"c\":-3}";
      "{\"s\":\"tab\\tnl\\nq\\\"\"}"; "{}"; "[]"; "[1e-3,123456789012]" ];
  (match Serve.Jsonl.of_string "\"\\u0041\\u00e9\"" with
  | Ok (Serve.Jsonl.Str s) -> Alcotest.(check string) "unicode escapes decode" "A\xc3\xa9" s
  | _ -> Alcotest.fail "unicode escape parse");
  List.iter
    (fun bad ->
      match Serve.Jsonl.of_string bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" bad)
    [ ""; "{"; "[1,]"; "{\"a\"}"; "tru"; "\"unterminated"; "1 2" ]

(* -- Lru -- *)

let test_lru_semantics () =
  let c = Serve.Lru.create ~capacity:2 in
  Serve.Lru.add c "a" 1;
  Serve.Lru.add c "b" 2;
  Alcotest.(check (option int)) "hit a" (Some 1) (Serve.Lru.find c "a");
  Serve.Lru.add c "c" 3;
  (* "b" was least recently used (the find refreshed "a") *)
  Alcotest.(check (option int)) "b evicted" None (Serve.Lru.peek c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Serve.Lru.peek c "a");
  Alcotest.(check (option int)) "c present" (Some 3) (Serve.Lru.peek c "c");
  Alcotest.(check int) "bounded" 2 (Serve.Lru.length c);
  (* peek must not perturb statistics; find must count them *)
  let h0, m0 = (Serve.Lru.hits c, Serve.Lru.misses c) in
  ignore (Serve.Lru.peek c "a");
  ignore (Serve.Lru.peek c "nope");
  Alcotest.(check (pair int int)) "peek is invisible" (h0, m0)
    (Serve.Lru.hits c, Serve.Lru.misses c);
  ignore (Serve.Lru.find c "nope");
  Alcotest.(check int) "find counts misses" (m0 + 1) (Serve.Lru.misses c)

let test_lru_boundaries () =
  (* capacity 0: a legal degenerate cache — never stores, still counts *)
  let z = Serve.Lru.create ~capacity:0 in
  Serve.Lru.add z "a" 1;
  Alcotest.(check int) "capacity-0 stores nothing" 0 (Serve.Lru.length z);
  Alcotest.(check (option int)) "capacity-0 always misses" None (Serve.Lru.find z "a");
  Alcotest.(check int) "capacity-0 still counts misses" 1 (Serve.Lru.misses z);
  Alcotest.(check int) "capacity-0 never hits" 0 (Serve.Lru.hits z);
  (match Serve.Lru.create ~capacity:(-1) with
  | _ -> Alcotest.fail "negative capacity must be rejected"
  | exception Invalid_argument _ -> ());
  (* capacity 1: every insert evicts the previous entry *)
  let one = Serve.Lru.create ~capacity:1 in
  Serve.Lru.add one "a" 1;
  Serve.Lru.add one "b" 2;
  Alcotest.(check (option int)) "capacity-1 evicts the old entry" None (Serve.Lru.peek one "a");
  Alcotest.(check (option int)) "capacity-1 keeps the new entry" (Some 2)
    (Serve.Lru.peek one "b");
  Alcotest.(check int) "capacity-1 stays bounded" 1 (Serve.Lru.length one)

let test_lru_reinsert_promotes () =
  let c = Serve.Lru.create ~capacity:2 in
  Serve.Lru.add c "a" 1;
  Serve.Lru.add c "b" 2;
  (* re-inserting "a" must refresh its recency (and overwrite its value),
     making "b" the eviction victim *)
  Serve.Lru.add c "a" 10;
  Serve.Lru.add c "c" 3;
  Alcotest.(check (option int)) "re-insert overwrote the value" (Some 10)
    (Serve.Lru.peek c "a");
  Alcotest.(check (option int)) "re-insert promoted: b evicted" None (Serve.Lru.peek c "b");
  Alcotest.(check (option int)) "new entry present" (Some 3) (Serve.Lru.peek c "c");
  Alcotest.(check int) "still bounded" 2 (Serve.Lru.length c)

let test_lru_eviction_order_after_hit () =
  let c = Serve.Lru.create ~capacity:2 in
  Serve.Lru.add c "a" 1;
  Serve.Lru.add c "b" 2;
  ignore (Serve.Lru.find c "a");
  (* the hit made "b" least recently used *)
  Serve.Lru.add c "c" 3;
  Alcotest.(check (option int)) "hit entry survives" (Some 1) (Serve.Lru.peek c "a");
  Alcotest.(check (option int)) "unhit entry evicted" None (Serve.Lru.peek c "b");
  Alcotest.(check (option int)) "new entry present" (Some 3) (Serve.Lru.peek c "c")

(* -- salvage_member: scalar extraction from malformed request lines -- *)

let test_salvage_member () =
  let salv key src = Serve.Jsonl.salvage_member key src in
  Alcotest.(check bool) "numeric id from a truncated line" true
    (salv "id" {|{"id":7,"cmd":"analyze"|} = Some (Serve.Jsonl.Num 7.0));
  Alcotest.(check bool) "string id from a truncated line" true
    (salv "id" {|{"id":"req-9","cmd":|} = Some (Serve.Jsonl.Str "req-9"));
  (* escaped quotes inside string values must not fool the scanner *)
  Alcotest.(check bool) "escaped quotes inside a value" true
    (salv "id" {|{"x":"a\"id\":7","id":3|} = Some (Serve.Jsonl.Num 3.0));
  Alcotest.(check bool) "key inside a string value is not salvaged" true
    (salv "id" {|{"x":"\"id\":9","cmd":|} = None);
  (* keys are matched at object depth 1 only *)
  Alcotest.(check bool) "key inside a nested object is not salvaged" true
    (salv "id" {|{"a":{"id":5},"cmd":|} = None);
  Alcotest.(check bool) "top-level key wins over a nested decoy" true
    (salv "id" {|{"a":{"id":5},"id":8|} = Some (Serve.Jsonl.Num 8.0));
  (* the same machinery salvages trace ids *)
  Alcotest.(check bool) "string trace_id salvaged" true
    (salv "trace_id" {|{"trace_id":"abc","cmd":"analyze"|} = Some (Serve.Jsonl.Str "abc"));
  Alcotest.(check bool) "bool and null scalars parse" true
    (salv "flag" {|{"flag":true,"cmd":|} = Some (Serve.Jsonl.Bool true)
    && salv "flag" {|{"flag":null,"cmd":|} = Some Serve.Jsonl.Null);
  Alcotest.(check bool) "absent key yields nothing" true (salv "id" {|{"cmd":"analyze"|} = None)

(* -- request handling (in-process, tiny models) -- *)

let models =
  lazy
    (let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
     let predictor = Clara.Predictor.train ~epochs:1 ds in
     let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
     { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None })

let fresh_server () = Serve.Server.create ~cache_capacity:8 (Lazy.force models)

let parse_reply line =
  match Serve.Jsonl.of_string line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparseable reply %S: %s" line msg

let is_ok reply = Serve.Jsonl.member "ok" reply = Some (Serve.Jsonl.Bool true)

let test_handle_valid_and_cached () =
  let s = fresh_server () in
  let q = {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed"}|} in
  let r1 = parse_reply (Serve.Server.handle_request s q) in
  Alcotest.(check bool) "first reply ok" true (is_ok r1);
  Alcotest.(check (option string)) "nf echoed" (Some "tcpack") (Serve.Jsonl.str_member "nf" r1);
  Alcotest.(check bool) "first is uncached" true
    (Serve.Jsonl.member "cached" r1 = Some (Serve.Jsonl.Bool false));
  Alcotest.(check (option string)) "first is answered by the slow path" (Some "slow")
    (Serve.Jsonl.str_member "path" r1);
  let r2 = parse_reply (Serve.Server.handle_request s q) in
  Alcotest.(check bool) "second is cached" true
    (Serve.Jsonl.member "cached" r2 = Some (Serve.Jsonl.Bool true));
  Alcotest.(check (option string)) "second is answered by the fast path" (Some "fast")
    (Serve.Jsonl.str_member "path" r2);
  Alcotest.(check (option string)) "cached report identical"
    (Serve.Jsonl.str_member "report" r1)
    (Serve.Jsonl.str_member "report" r2);
  Alcotest.(check int) "one hit" 1 (Serve.Server.cache_hits s);
  Alcotest.(check int) "one miss" 1 (Serve.Server.cache_misses s)

let test_handle_errors () =
  let s = fresh_server () in
  let unknown =
    parse_reply (Serve.Server.handle_request s {|{"id":2,"cmd":"analyze","nf":"bogus"}|})
  in
  Alcotest.(check bool) "unknown NF rejected" false (is_ok unknown);
  (match Serve.Jsonl.member "valid" unknown with
  | Some (Serve.Jsonl.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "unknown-NF reply lists valid names");
  let malformed = parse_reply (Serve.Server.handle_request s "{not json") in
  Alcotest.(check bool) "malformed rejected" false (is_ok malformed);
  (match Serve.Jsonl.str_member "error" malformed with
  | Some _ -> ()
  | None -> Alcotest.fail "malformed reply carries an error");
  let badw =
    parse_reply
      (Serve.Server.handle_request s {|{"cmd":"analyze","nf":"tcpack","workload":"bogus"}|})
  in
  Alcotest.(check bool) "unknown workload rejected" false (is_ok badw);
  let nocmd = parse_reply (Serve.Server.handle_request s {|{"id":3}|}) in
  Alcotest.(check bool) "missing cmd rejected" false (is_ok nocmd);
  Alcotest.(check int) "every line counted" 4 (Serve.Server.served s)

(* Error replies must echo the request id — including for lines that do
   not parse as JSON at all (the id is salvaged from the raw text), or a
   pipelined client can no longer match replies to requests. *)
let test_id_echo_on_errors () =
  let s = fresh_server () in
  let id_of r = Serve.Jsonl.member "id" r in
  let unknown = parse_reply (Serve.Server.handle_request s {|{"id":41,"cmd":"frobnicate"}|}) in
  Alcotest.(check bool) "unknown cmd rejected" false (is_ok unknown);
  Alcotest.(check bool) "unknown cmd echoes id" true
    (id_of unknown = Some (Serve.Jsonl.Num 41.0));
  let malformed = parse_reply (Serve.Server.handle_request s {|{"id":7,"cmd":"analyze"|}) in
  Alcotest.(check bool) "malformed rejected" false (is_ok malformed);
  Alcotest.(check bool) "malformed line still echoes numeric id" true
    (id_of malformed = Some (Serve.Jsonl.Num 7.0));
  let str_id = parse_reply (Serve.Server.handle_request s {|{"id":"req-9","cmd":"analyze"|}) in
  Alcotest.(check bool) "malformed line still echoes string id" true
    (id_of str_id = Some (Serve.Jsonl.Str "req-9"));
  (* an "id" inside a string value must not be mistaken for the field *)
  let decoy = parse_reply (Serve.Server.handle_request s {|{"x":"\"id\":9","cmd":|}) in
  Alcotest.(check bool) "decoy id inside a string is not salvaged" true
    (id_of decoy = Some Serve.Jsonl.Null)

let test_op_alias_and_metrics () =
  let s = fresh_server () in
  let pong = parse_reply (Serve.Server.handle_request s {|{"id":5,"op":"ping"}|}) in
  Alcotest.(check bool) "op works as a cmd alias" true (is_ok pong);
  let r = parse_reply (Serve.Server.handle_request s {|{"id":6,"op":"metrics"}|}) in
  Alcotest.(check bool) "metrics reply ok" true (is_ok r);
  match Serve.Jsonl.str_member "metrics" r with
  | None -> Alcotest.fail "metrics reply carries an exposition"
  | Some text ->
    let contains sub =
      let n = String.length text and m = String.length sub in
      let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "exposition has TYPE lines" true (contains "# TYPE");
    Alcotest.(check bool) "exposition reports request counter" true
      (contains "clara_serve_requests_total")

let test_handle_p4lite () =
  let s = fresh_server () in
  let q =
    {|{"id":4,"cmd":"analyze","p4lite":{"name":"tinyacl","tables":[{"name":"acl","keys":["ip_src"],"actions":["drop","forward:1"],"default":"forward:0","size":16}]}}|}
  in
  let r = parse_reply (Serve.Server.handle_request s q) in
  Alcotest.(check bool) "inline program analyzed" true (is_ok r);
  Alcotest.(check (option string)) "labelled by program name" (Some "tinyacl")
    (Serve.Jsonl.str_member "nf" r);
  let r2 = parse_reply (Serve.Server.handle_request s q) in
  Alcotest.(check bool) "same program hits the cache" true
    (Serve.Jsonl.member "cached" r2 = Some (Serve.Jsonl.Bool true));
  (* inline programs always parse fully: a hit, but on the slow path *)
  Alcotest.(check (option string)) "p4lite hits stay on the slow path" (Some "slow")
    (Serve.Jsonl.str_member "path" r2);
  let badfield =
    parse_reply
      (Serve.Server.handle_request s
         {|{"cmd":"analyze","p4lite":{"tables":[{"name":"t","keys":["no_such_field"],"actions":["drop"]}]}}|})
  in
  Alcotest.(check bool) "bad field rejected" false (is_ok badfield)

(* -- batched pipelining over a socketpair (single process, no real
   socket file) -- *)

let test_batch_over_socketpair () =
  with_jobs 4 (fun () ->
      let s = fresh_server () in
      let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let requests =
        String.concat ""
          (List.map
             (fun (id, nf) ->
               Printf.sprintf {|{"id":%d,"cmd":"analyze","nf":"%s","workload":"mixed"}|} id nf
               ^ "\n")
             [ (1, "tcpack"); (2, "udpipencap"); (3, "tcpack"); (4, "anonipaddr") ])
      in
      let n = Unix.write_substring client_fd requests 0 (String.length requests) in
      Alcotest.(check int) "whole batch written" (String.length requests) n;
      Unix.shutdown client_fd Unix.SHUTDOWN_SEND;
      Serve.Server.serve_until_eof s server_fd;
      Unix.close server_fd;
      let ic = Unix.in_channel_of_descr client_fd in
      let replies = List.init 4 (fun _ -> input_line ic) |> List.map parse_reply in
      close_in ic;
      List.iteri
        (fun i r ->
          Alcotest.(check bool) (Printf.sprintf "reply %d ok" (i + 1)) true (is_ok r);
          Alcotest.(check (option (float 0.0)))
            (Printf.sprintf "reply %d keeps its id" (i + 1))
            (Some (float_of_int (i + 1)))
            (Serve.Jsonl.num_member "id" r))
        replies;
      (* requests 1 and 3 share a key: one analysis, identical reports *)
      let report i = Serve.Jsonl.str_member "report" (List.nth replies i) in
      Alcotest.(check (option string)) "duplicate keys share one report" (report 0) (report 2))

(* -- 8 concurrent clients against the real socket server -- *)

let connect_with_retry path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go attempts =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when attempts > 0 ->
      Unix.sleepf 0.05;
      go (attempts - 1)
  in
  go 100

let client_round path request =
  let fd = connect_with_retry path in
  let out = Unix.out_channel_of_descr fd in
  output_string out (request ^ "\n");
  flush out;
  let line = input_line (Unix.in_channel_of_descr fd) in
  Unix.close fd;
  line

let test_concurrent_burst () =
  with_jobs 4 (fun () ->
      let s = fresh_server () in
      let path = Filename.temp_file "clara_serve_test" ".sock" in
      Sys.remove path;
      let nfs = [| "tcpack"; "udpipencap" |] in
      let clients =
        List.init 8 (fun i ->
            Domain.spawn (fun () ->
                let nf = nfs.(i mod 2) in
                let req =
                  Printf.sprintf {|{"id":%d,"cmd":"analyze","nf":"%s","workload":"mixed"}|} i nf
                in
                (nf, client_round path req)))
      in
      (* joins the burst from a helper domain, then asks the (main-domain)
         server to stop *)
      let closer =
        Domain.spawn (fun () ->
            let replies = List.map Domain.join clients in
            let bye = client_round path {|{"id":99,"cmd":"shutdown"}|} in
            (replies, bye))
      in
      Serve.Server.run s ~socket_path:path;
      let replies, bye = Domain.join closer in
      Alcotest.(check bool) "shutdown acknowledged" true (is_ok (parse_reply bye));
      Alcotest.(check int) "8 replies" 8 (List.length replies);
      let report_of line = Serve.Jsonl.str_member "report" (parse_reply line) in
      List.iter
        (fun (nf, line) ->
          let r = parse_reply line in
          Alcotest.(check bool) ("burst reply ok for " ^ nf) true (is_ok r);
          Alcotest.(check (option string)) ("burst reply names " ^ nf) (Some nf)
            (Serve.Jsonl.str_member "nf" r))
        replies;
      (* every client asking for the same NF got the identical report *)
      Array.iter
        (fun nf ->
          match List.filter (fun (n, _) -> n = nf) replies with
          | (_, first) :: rest ->
            List.iter
              (fun (_, line) ->
                Alcotest.(check (option string))
                  ("consistent report for " ^ nf)
                  (report_of first) (report_of line))
              rest
          | [] -> Alcotest.fail "burst covered both NFs")
        nfs;
      Alcotest.(check bool) "socket removed on shutdown" false (Sys.file_exists path);
      Alcotest.(check int) "served all 9 requests" 9 (Serve.Server.served s))

let () =
  Alcotest.run "serve"
    [ ( "jsonl",
        [ Alcotest.test_case "print/parse round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "salvage_member on malformed lines" `Quick test_salvage_member ] );
      ( "lru",
        [ Alcotest.test_case "eviction and stats" `Quick test_lru_semantics;
          Alcotest.test_case "capacity 0 and 1 boundaries" `Quick test_lru_boundaries;
          Alcotest.test_case "re-insert promotes" `Quick test_lru_reinsert_promotes;
          Alcotest.test_case "eviction order after a hit" `Quick test_lru_eviction_order_after_hit ] );
      ( "server",
        [ Alcotest.test_case "valid query and cache hit" `Quick test_handle_valid_and_cached;
          Alcotest.test_case "error replies" `Quick test_handle_errors;
          Alcotest.test_case "id echo on errors" `Quick test_id_echo_on_errors;
          Alcotest.test_case "op alias and metrics" `Quick test_op_alias_and_metrics;
          Alcotest.test_case "inline p4lite program" `Quick test_handle_p4lite;
          Alcotest.test_case "pipelined batch over socketpair" `Quick test_batch_over_socketpair;
          Alcotest.test_case "8-client concurrent burst" `Slow test_concurrent_burst ] ) ]
