(** Tests for the IR substrate and the frontend lowering: CFG construction,
    instruction classification, sid attribution (the bridge between the
    host profile and compiled blocks), inlining and reverse-ported API
    implementations. *)

open Nf_lang
open Nf_ir

let lower name stmts =
  Nf_frontend.Lower.lower_element
    (let open Build in
     element name stmts)

(* -- Builder -- *)

let test_builder_basics () =
  let b = Builder.create "f" in
  let r1 = Builder.emit_value b ~op:Ir.Add ~args:[ Ir.Imm 1; Ir.Imm 2 ] ~ty:Ir.I32 ~annot:Ir.Compute in
  let r2 = Builder.emit_value b ~op:Ir.Add ~args:[ Ir.Reg r1; Ir.Imm 3 ] ~ty:Ir.I32 ~annot:Ir.Compute in
  Alcotest.(check bool) "fresh registers" true (r2 > r1);
  let f = Builder.finish b in
  Alcotest.(check int) "one block" 1 (Array.length f.Ir.blocks);
  let last = List.nth f.Ir.blocks.(0).Ir.instrs (List.length f.Ir.blocks.(0).Ir.instrs - 1) in
  Alcotest.(check bool) "terminated with ret" true (Ir.is_terminator last)

let test_builder_succs () =
  let b = Builder.create "g" in
  let cond = Builder.emit_value b ~op:(Ir.Icmp Ir.Ceq) ~args:[ Ir.Imm 1; Ir.Imm 1 ] ~ty:Ir.I32 ~annot:Ir.Compute in
  let then_b = Builder.start_block b ~sid:1 in
  let exit_b = Builder.start_block b ~sid:2 in
  (* terminate entry *)
  let f =
    let entry_blk = Builder.block b 0 in
    Builder.append_terminator entry_blk
      { Ir.res = None; op = Ir.Cond_br (then_b.Ir.bid, exit_b.Ir.bid); args = [ Ir.Reg cond ]; ty = Ir.I1; annot = Ir.Control };
    Builder.finish b
  in
  Alcotest.(check (list int)) "entry successors" [ then_b.Ir.bid; exit_b.Ir.bid ]
    f.Ir.blocks.(0).Ir.succs

(* -- Lowering: structure -- *)

let test_lower_entry_sid_zero () =
  let f = lower "t" Build.[ let_ "x" (i 1); emit 0 ] in
  Alcotest.(check int) "entry block sid" 0 f.Ir.blocks.(0).Ir.src_sid

let test_lower_classification () =
  let f =
    lower "cls"
      Build.[ let_ "x" (hdr Ast.Ip_src); set_g "total" (l "x" + i 1); emit 0 ]
  in
  Alcotest.(check bool) "has compute" true (Ir.count_compute f > 0);
  Alcotest.(check bool) "has stateless mem (locals)" true (Ir.count_stateless_mem f > 0);
  Alcotest.(check int) "one stateful store" 1 (Ir.count_stateful_mem f);
  Alcotest.(check bool) "ip_header API emitted" true
    (List.mem "ip_header" (Nf_frontend.Lower.api_set f))

let test_lower_header_accessor_once () =
  let f =
    lower "hdr2" Build.[ let_ "a" (hdr Ast.Ip_src); let_ "b" (hdr Ast.Ip_dst); emit 0 ]
  in
  let calls =
    Ir.fold_instrs
      (fun acc i -> match i.Ir.op with Ir.Call "ip_header" -> acc + 1 | _ -> acc)
      0 f
  in
  Alcotest.(check int) "ip_header called once" 1 calls

let test_lower_zext_for_narrow_fields () =
  let f = lower "narrow" Build.[ let_ "t" (hdr Ast.Ip_ttl); emit 0 ] in
  let has_zext = Ir.count_if (fun i -> i.Ir.op = Ir.Zext) f > 0 in
  Alcotest.(check bool) "8-bit load widened" true has_zext

let test_lower_if_blocks () =
  let f =
    lower "branchy"
      Build.[ if_ (hdr Ast.Ip_ttl > i 1) [ set_hdr Ast.Ip_ttl (i 5) ] [ drop ]; emit 0 ]
  in
  Alcotest.(check bool) "several blocks" true (Array.length f.Ir.blocks >= 4);
  (* all successor ids must be valid blocks *)
  Array.iter
    (fun blk ->
      List.iter
        (fun s -> Alcotest.(check bool) "succ valid" true (s >= 0 && s < Array.length f.Ir.blocks))
        blk.Ir.succs)
    f.Ir.blocks

let test_lower_loop_header_sid () =
  let elt =
    let open Build in
    element "loopy" ~state:[ array "t" 8 ] [ for_ "j" (i 0) (i 3) [ arr_set "t" (l "j") (i 1) ]; emit 0 ]
  in
  let for_sid = (List.hd elt.Ast.handler).Ast.sid in
  let f = Nf_frontend.Lower.lower_element elt in
  let header_sids =
    Array.to_list f.Ir.blocks |> List.filter_map (fun b -> if b.Ir.src_sid < -1 then Some b.Ir.src_sid else None)
  in
  Alcotest.(check (list int)) "loop header encodes For sid" [ -(for_sid + 1) ] header_sids

let test_lower_inlines_subroutines () =
  let elt =
    let open Build in
    element "inl" ~state:[ scalar "c" ]
      ~subs:[ ("bump", [ set_g "c" (g "c" + i 1) ]) ]
      [ call "bump"; call "bump"; emit 0 ]
  in
  let f = Nf_frontend.Lower.lower_element elt in
  (* inlined twice: two stateful loads + two stores *)
  Alcotest.(check int) "inlined stateful ops" 4 (Ir.count_stateful_mem f)

let test_lower_recursive_sub_fails () =
  let elt =
    let open Build in
    element "rec" ~subs:[ ("a", [ call "a" ]) ] [ call "a" ]
  in
  Alcotest.check_raises "recursion detected" (Failure "Lower: recursive subroutine a in rec")
    (fun () -> ignore (Nf_frontend.Lower.lower_element elt))

(* integration: block execution counts derived from the interpreter profile
   must sum consistently with the packet count for the entry block *)
let test_block_exec_counts_consistent () =
  let elt = Corpus.find "firewall" in
  let f = Nf_frontend.Lower.lower_element elt in
  let compiled = Nicsim.Nfcc.compile f in
  let interp = Interp.create ~mode:State.Nic elt in
  let spec = { Workload.default with Workload.n_packets = 120; Workload.proto = Workload.Mixed } in
  let profile = Interp.run interp (Workload.generate spec) in
  Array.iter
    (fun cb ->
      let n = Nicsim.Perf.block_exec profile cb in
      Alcotest.(check bool) "nonnegative count" true (n >= 0))
    compiled.Nicsim.Nfcc.cblocks;
  Alcotest.(check int) "entry block = packets" 120
    (Nicsim.Perf.block_exec profile compiled.Nicsim.Nfcc.cblocks.(0))

(* -- pretty printing -- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  scan 0

let test_ir_printing () =
  let f = lower "pp" Build.[ let_ "x" (hdr Ast.Ip_src); emit 0 ] in
  let s = Ir.func_str f in
  Alcotest.(check bool) "mentions define" true
    (String.length s > 10 && String.sub s 0 6 = "define");
  Alcotest.(check bool) "mentions load" true (contains s "load")

(* -- api_ir -- *)

let test_api_impls_cover_element () =
  let elt = Corpus.find "Mazu-NAT" in
  let f = Nf_frontend.Lower.lower_element elt in
  let impls = Nf_frontend.Api_ir.impls_for_element elt f in
  Alcotest.(check bool) "several impls" true (List.length impls >= 8);
  List.iter
    (fun (call, impl) ->
      Alcotest.(check bool) (call ^ " fixed nonempty") true
        (Ir.count_total impl.Nf_frontend.Api_ir.fixed > 0))
    impls

let test_api_impl_map_targets () =
  let elt = Corpus.find "Mazu-NAT" in
  let f = Nf_frontend.Lower.lower_element elt in
  let impls = Nf_frontend.Api_ir.impls_for_element elt f in
  let find_impl = List.assoc "map_find.int_map" impls in
  Alcotest.(check (option string)) "targets its map" (Some "int_map")
    find_impl.Nf_frontend.Api_ir.target;
  (match find_impl.Nf_frontend.Api_ir.units with
  | Nf_frontend.Api_ir.Map_probes m -> Alcotest.(check string) "probe units" "int_map" m
  | _ -> Alcotest.fail "map_find should be probe-scaled")

let test_api_impl_unknown_call () =
  let elt = Corpus.find "anonipaddr" in
  Alcotest.check_raises "unknown api" (Failure "Api_ir.impl_for: unknown API call bogus.xyz")
    (fun () -> ignore (Nf_frontend.Api_ir.impl_for elt "bogus.xyz"))

(* -- opcode histogram -- *)

let test_opcode_histogram () =
  let f = lower "h" Build.[ let_ "x" (hdr Ast.Ip_src lxor i 3); emit 0 ] in
  let h = Ir.opcode_histogram [ f ] in
  Alcotest.(check int) "cardinality" Ir.opcode_cardinality (Array.length h);
  Alcotest.(check bool) "xor counted" true (h.(5) > 0.0)

(* qcheck: every synthesized program lowers into a well-formed CFG *)
let prop_lowering_well_formed =
  QCheck.Test.make ~name:"synthesized programs lower to valid CFGs" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let stats = Synth.Ast_stats.of_corpus (Corpus.table2 ()) in
      let elt = Synth.Generator.generate ~stats ~seed (Printf.sprintf "qc_%d" seed) in
      let f = Nf_frontend.Lower.lower_element elt in
      Array.for_all
        (fun blk ->
          (match List.rev blk.Ir.instrs with
          | last :: _ -> Ir.is_terminator last
          | [] -> false)
          && List.for_all (fun s -> s >= 0 && s < Array.length f.Ir.blocks) blk.Ir.succs)
        f.Ir.blocks)

let () =
  Alcotest.run "nf_ir+frontend"
    [ ( "builder",
        [ Alcotest.test_case "basics" `Quick test_builder_basics;
          Alcotest.test_case "successors" `Quick test_builder_succs ] );
      ( "lowering",
        [ Alcotest.test_case "entry sid" `Quick test_lower_entry_sid_zero;
          Alcotest.test_case "classification" `Quick test_lower_classification;
          Alcotest.test_case "header accessor once" `Quick test_lower_header_accessor_once;
          Alcotest.test_case "zext for narrow fields" `Quick test_lower_zext_for_narrow_fields;
          Alcotest.test_case "if produces blocks" `Quick test_lower_if_blocks;
          Alcotest.test_case "loop header sid" `Quick test_lower_loop_header_sid;
          Alcotest.test_case "inlines subroutines" `Quick test_lower_inlines_subroutines;
          Alcotest.test_case "recursive sub fails" `Quick test_lower_recursive_sub_fails;
          Alcotest.test_case "block exec counts" `Quick test_block_exec_counts_consistent ] );
      ( "printing+histogram",
        [ Alcotest.test_case "ir printing" `Quick test_ir_printing;
          Alcotest.test_case "opcode histogram" `Quick test_opcode_histogram ] );
      ( "api_ir",
        [ Alcotest.test_case "impls cover element" `Quick test_api_impls_cover_element;
          Alcotest.test_case "map targets" `Quick test_api_impl_map_targets;
          Alcotest.test_case "unknown call" `Quick test_api_impl_unknown_call ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_lowering_well_formed ]) ]
