(** Tests for the fast-path subsystem: the sharded flow table (stable
    shard assignment, per-shard LRU eviction, the capacity-0 degenerate),
    the non-allocating request scanner, pre-rendered flow entries, the
    flattened predictors (bit-identical to their boxed references), and
    the served fast/slow split itself — byte-equal replies, path-field
    correctness, and robustness (faults, shedding, deadlines) on the
    fast path.  The dune rules run this executable under both
    [CLARA_JOBS=1] and [CLARA_JOBS=4]: every assertion, including the
    independent FNV re-implementation pinning shard assignment, must
    hold in both ambient modes. *)

let with_fault ~point ~prob f =
  Obs.Fault.set ~point ~prob ~seed:1;
  Fun.protect ~finally:(fun () -> Obs.Fault.remove point) f

(* -- Shards -- *)

(* An independent FNV-1a/64 so a silent change of the hash (which would
   re-shuffle every deployed cache) fails loudly. *)
let fnv1a64 key =
  let h = ref (-3750763034362895579L) (* 0xCBF29CE484222325 *) in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 1099511628211L)
    key;
  Int64.to_int !h land max_int

let some_keys =
  List.init 64 (fun i -> Printf.sprintf "nf%d|mixed" i)
  @ [ "tcpack|mixed"; "tcpack|large"; "udpipencap|small"; "p4lite:00c0ffee|mixed"; "" ]

let test_shard_assignment_stable () =
  let t : int Fastpath.Shards.t = Fastpath.Shards.create ~shards:8 ~capacity:64 () in
  let t' : int Fastpath.Shards.t = Fastpath.Shards.create ~shards:8 ~capacity:8 () in
  List.iter
    (fun key ->
      let s = Fastpath.Shards.shard_of_key t key in
      Alcotest.(check int)
        (Printf.sprintf "FNV-1a pins shard of %S" key)
        (fnv1a64 key mod 8) s;
      Alcotest.(check int)
        (Printf.sprintf "assignment of %S is capacity-independent" key)
        s
        (Fastpath.Shards.shard_of_key t' key);
      Alcotest.(check bool) "in range" true (s >= 0 && s < 8))
    some_keys;
  (* installs and lookups must not perturb assignment *)
  List.iteri (fun i key -> Fastpath.Shards.install t key i) some_keys;
  List.iter
    (fun key ->
      Alcotest.(check int) "assignment survives traffic"
        (fnv1a64 key mod 8)
        (Fastpath.Shards.shard_of_key t key))
    some_keys;
  (* 69 keys over 8 shards: the spread must actually use several shards *)
  let used =
    List.sort_uniq compare (List.map (Fastpath.Shards.shard_of_key t) some_keys)
  in
  Alcotest.(check bool) "keys spread over shards" true (List.length used >= 4)

let test_per_shard_eviction () =
  let t : int Fastpath.Shards.t = Fastpath.Shards.create ~shards:4 ~capacity:8 () in
  Alcotest.(check int) "per-shard bound of 2, totalling 8" 8 (Fastpath.Shards.capacity t);
  (* collect >= 4 keys of one shard; pressure must evict there and only
     there *)
  let shard, keys =
    let by_shard = Array.make 4 [] in
    List.iter
      (fun key ->
        let s = Fastpath.Shards.shard_of_key t key in
        by_shard.(s) <- key :: by_shard.(s))
      (List.init 64 (fun i -> Printf.sprintf "k%d" i));
    let rec pick i = if List.length by_shard.(i) >= 4 then (i, by_shard.(i)) else pick (i + 1) in
    pick 0
  in
  List.iteri (fun i key -> Fastpath.Shards.install t key i) keys;
  Alcotest.(check int) "pressured shard stays at its bound" 2
    (Fastpath.Shards.shard_length t shard);
  Alcotest.(check int) "whole table holds just that shard" 2 (Fastpath.Shards.length t);
  Alcotest.(check int) "evictions counted" (List.length keys - 2) (Fastpath.Shards.evictions t);
  List.iteri
    (fun i _ -> if i <> shard then
        Alcotest.(check int) "other shards untouched" 0 (Fastpath.Shards.shard_length t i))
    [ (); (); (); () ];
  (* LRU within the shard: a find promotes, the unpromoted entry goes *)
  let t : string Fastpath.Shards.t = Fastpath.Shards.create ~shards:1 ~capacity:2 () in
  Fastpath.Shards.install t "a" "A";
  Fastpath.Shards.install t "b" "B";
  Alcotest.(check (option string)) "promote a" (Some "A") (Fastpath.Shards.find t "a");
  Fastpath.Shards.install t "c" "C";
  Alcotest.(check (option string)) "b was evicted" None (Fastpath.Shards.probe t "b");
  Alcotest.(check (option string)) "a survived its promotion" (Some "A")
    (Fastpath.Shards.probe t "a");
  (* re-install refreshes recency and value *)
  Fastpath.Shards.install t "a" "A2";
  Fastpath.Shards.install t "d" "D";
  Alcotest.(check (option string)) "refreshed entry survives" (Some "A2")
    (Fastpath.Shards.probe t "a");
  Alcotest.(check (option string)) "stale entry evicted" None (Fastpath.Shards.probe t "c")

let test_degenerate_and_counters () =
  let t : int Fastpath.Shards.t = Fastpath.Shards.create ~shards:4 ~capacity:0 () in
  Alcotest.(check int) "capacity 0 disables every shard" 0 (Fastpath.Shards.capacity t);
  Fastpath.Shards.install t "a" 1;
  Alcotest.(check int) "installs are dropped" 0 (Fastpath.Shards.length t);
  Alcotest.(check (option int)) "finds miss" None (Fastpath.Shards.find t "a");
  Alcotest.(check int) "the miss is counted" 1 (Fastpath.Shards.misses t);
  Alcotest.(check int) "no installs counted" 0 (Fastpath.Shards.installs t);
  (* probe counts only hits: a probe miss must not inflate the miss
     counter (the slow path's find counts it) *)
  Alcotest.(check (option int)) "probe misses silently" None (Fastpath.Shards.probe t "a");
  Alcotest.(check int) "probe miss uncounted" 1 (Fastpath.Shards.misses t);
  (match Fastpath.Shards.create ~shards:0 ~capacity:8 () with
  | (_ : int Fastpath.Shards.t) -> Alcotest.fail "shards=0 must be rejected"
  | exception Invalid_argument _ -> ());
  (match Fastpath.Shards.create ~shards:4 ~capacity:(-1) () with
  | (_ : int Fastpath.Shards.t) -> Alcotest.fail "negative capacity must be rejected"
  | exception Invalid_argument _ -> ());
  (* tiny capacities round the per-shard bound up to one entry *)
  let t : int Fastpath.Shards.t = Fastpath.Shards.create ~shards:8 ~capacity:3 () in
  Alcotest.(check int) "per-shard bound rounds up" 8 (Fastpath.Shards.capacity t)

(* -- Scan -- *)

let span_str line = function
  | Some (off, len) -> Some (String.sub line off len)
  | None -> None

let test_scanner_members () =
  let line = {|{"id":7,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"t-9"}|} in
  Alcotest.(check bool) "inside the subset" true (Fastpath.Scan.simple_object line);
  Alcotest.(check (option string)) "cmd span" (Some {|"analyze"|})
    (span_str line (Fastpath.Scan.member line "cmd"));
  Alcotest.(check (option string)) "numeric id span" (Some "7")
    (span_str line (Fastpath.Scan.member line "id"));
  Alcotest.(check bool) "span_is matches raw bytes" true
    (Fastpath.Scan.span_is line (Option.get (Fastpath.Scan.member line "cmd")) {|"analyze"|});
  (match
     Option.bind (Fastpath.Scan.member line "nf") (Fastpath.Scan.string_contents line)
   with
  | Some (off, len) -> Alcotest.(check string) "string_contents drops quotes" "tcpack" (String.sub line off len)
  | None -> Alcotest.fail "nf should scan");
  Alcotest.(check (option string)) "absent member" None
    (span_str line (Fastpath.Scan.member line "p4lite"));
  (* first match wins, as in Jsonl.member (assoc) *)
  let dup = {|{"a":1,"a":2}|} in
  Alcotest.(check (option string)) "first duplicate wins" (Some "1")
    (span_str dup (Fastpath.Scan.member dup "a"))

let test_scanner_rejects_outside_subset () =
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "%S outside subset" line) false
        (Fastpath.Scan.simple_object line);
      Alcotest.(check (option string)) (Printf.sprintf "%S yields no members" line) None
        (span_str line (Fastpath.Scan.member line "cmd")))
    [ {|{"cmd":"analyze","p4lite":{"tables":[]}}|} (* nested object *);
      {|{"cmd":"analyze","x":[1,2]}|} (* nested array *);
      {|{"cmd":"ana\"lyze"}|} (* escape in a string *);
      {|{"cmd":"analyze"} trailing|} (* trailing garbage *);
      {|{"cmd":"analyze",}|} (* trailing comma *);
      {|{"cmd" "analyze"}|} (* missing colon *);
      {|["cmd","analyze"]|} (* not an object *);
      "{" (* truncated *) ]

let test_canonical_scalar () =
  let canon tok =
    let line = Printf.sprintf {|{"id":%s}|} tok in
    match Fastpath.Scan.member line "id" with
    | Some span -> Fastpath.Scan.canonical_scalar line span
    | None -> false
  in
  List.iter
    (fun tok -> Alcotest.(check bool) (tok ^ " is canonical") true (canon tok))
    [ "7"; "-42"; "0"; {|"req-9"|}; {|""|}; "true"; "false"; "null"; "999999999999999" ];
  List.iter
    (fun tok -> Alcotest.(check bool) (tok ^ " is not canonical") false (canon tok))
    [ "1.5" (* prints as 1.5 but rounds through float *); "007" (* leading zeros *);
      "1e3" (* scientific *); {|"a\"b"|} (* escape *); "1000000000000000" (* 16 digits *) ]

(* -- Entry: pre-rendered bytes match Jsonl rendering -- *)

let test_entry_matches_jsonl () =
  let nf = "tcpack" and workload = "mixed" in
  let report = "line1\nline\t\"two\"\\three" in
  let entry = Fastpath.Entry.make ~nf ~workload ~report () in
  let expect ~id ~trace ~cached =
    Serve.Jsonl.to_string
      (Serve.Jsonl.Obj
         [ ("id", id); ("ok", Serve.Jsonl.Bool true); ("trace_id", Serve.Jsonl.Str trace);
           ("nf", Serve.Jsonl.Str nf); ("workload", Serve.Jsonl.Str workload);
           ("cached", Serve.Jsonl.Bool cached); ("path", Serve.Jsonl.Str "slow");
           ("report", Serve.Jsonl.Str report) ])
  in
  Alcotest.(check string) "render matches Jsonl (numeric id)"
    (expect ~id:(Serve.Jsonl.Num 7.0) ~trace:"t-1" ~cached:false)
    (Fastpath.Entry.render entry ~id:"7" ~trace:"t-1" ~cached:false ~path:"slow");
  Alcotest.(check string) "render matches Jsonl (null id)"
    (expect ~id:Serve.Jsonl.Null ~trace:"t-2" ~cached:true)
    (Fastpath.Entry.render entry ~id:"" ~trace:"t-2" ~cached:true ~path:"slow");
  let line = {|{"id":"req-9","trace_id":"abc"}|} in
  let id_off, id_len = Option.get (Fastpath.Scan.member line "id") in
  let trace_off, trace_len =
    Option.get
      (Option.bind (Fastpath.Scan.member line "trace_id") (Fastpath.Scan.string_contents line))
  in
  let b = Buffer.create 64 in
  Fastpath.Entry.render_into b entry ~id_src:line ~id_off ~id_len ~trace_src:line ~trace_off
    ~trace_len ~cached:true ~path:"slow";
  Alcotest.(check string) "render_into splices raw tokens"
    (expect ~id:(Serve.Jsonl.Str "req-9") ~trace:"abc" ~cached:true)
    (Buffer.contents b)

(* -- flattened predictors: bit-identical to the boxed references -- *)

let synth_xy n =
  let xs =
    Array.init n (fun i ->
        [| float_of_int (i mod 7); float_of_int (i mod 5) *. 0.5; float_of_int (i mod 3) |])
  in
  let ys = Array.map (fun x -> (2.0 *. x.(0)) -. (1.5 *. x.(1)) +. (x.(2) *. x.(2))) xs in
  (xs, ys)

let test_flat_tree_ensembles () =
  let xs, ys = synth_xy 80 in
  let probes = Array.init 200 (fun i -> [| float_of_int (i mod 11); float_of_int (i mod 6) *. 0.25; float_of_int (i mod 4) |]) in
  let tree = Mlkit.Tree.grow xs ys in
  let ft = Mlkit.Tree.Flat.of_tree tree in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "flat tree bit-identical" true
        (Float.equal (Mlkit.Tree.predict tree x) (Mlkit.Tree.Flat.eval ft x)))
    probes;
  let gbdt = Mlkit.Tree.gbdt_fit ~n_stages:12 xs ys in
  let fg = Mlkit.Tree.Flat.of_gbdt gbdt in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "flat gbdt bit-identical" true
        (Float.equal (Mlkit.Tree.gbdt_predict gbdt x) (Mlkit.Tree.Flat.gbdt_eval fg x)))
    probes;
  let forest = Mlkit.Tree.forest_fit ~n_trees:7 xs ys in
  let ff = Mlkit.Tree.Flat.of_forest forest in
  Array.iter
    (fun x ->
      Alcotest.(check bool) "flat forest bit-identical" true
        (Float.equal (Mlkit.Tree.forest_predict forest x) (Mlkit.Tree.Flat.forest_eval ff x)))
    probes

let models =
  lazy
    (let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
     let predictor = Clara.Predictor.train ~epochs:1 ds in
     let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
     { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None })

let test_compiled_pipeline_identical () =
  let m = Lazy.force models in
  let compiled = Clara.Pipeline.compile m in
  let spec = Serve.Server.mixed_spec in
  List.iter
    (fun name ->
      let elt = Nf_lang.Corpus.find name in
      Alcotest.(check string)
        (name ^ ": compiled report byte-identical")
        (Clara.Pipeline.report m elt spec)
        (Clara.Pipeline.report_compiled compiled elt spec);
      (* scratch reuse: a second evaluation must not be polluted by the
         first *)
      Alcotest.(check string)
        (name ^ ": compiled report stable on reuse")
        (Clara.Pipeline.report m elt spec)
        (Clara.Pipeline.report_compiled compiled elt spec))
    [ "tcpack"; "udpipencap"; "anonipaddr" ];
  let elt = Nf_lang.Corpus.find "tcpack" in
  let direct = Clara.Predictor.predict_element m.Clara.Pipeline.predictor elt in
  let pc = Clara.Predictor.compile m.Clara.Pipeline.predictor in
  Alcotest.(check bool) "compiled per-block predictions bit-identical" true
    (List.for_all2
       (fun (b1, p1, m1) (b2, p2, m2) -> b1 = b2 && Float.equal p1 p2 && Float.equal m1 m2)
       direct
       (Clara.Predictor.predict_element_compiled pc elt))

(* -- the served fast/slow split -- *)

let mk_server ?(cache_capacity = 8) ?max_pending () =
  Serve.Server.create ~cache_capacity ?max_pending (Lazy.force models)

let parse_reply line =
  match Serve.Jsonl.of_string line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparseable reply %S: %s" line msg

let is_ok reply = Serve.Jsonl.member "ok" reply = Some (Serve.Jsonl.Bool true)
let path_of line = Serve.Jsonl.str_member "path" (parse_reply line)

(* Replace the single occurrence of [sub] in [s] with [by]. *)
let subst s sub by =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  match go 0 with
  | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)
  | None -> Alcotest.failf "%S does not contain %S" s sub

let fast_marker = {|"cached":true,"path":"fast"|}
let hit_marker = {|"cached":true,"path":"slow"|}
let fresh_marker = {|"cached":false,"path":"slow"|}

let test_fast_slow_byte_equality () =
  let s = mk_server () in
  let line = {|{"id":7,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"tt"}|} in
  let fresh = Serve.Server.handle_request s line in
  Alcotest.(check (option string)) "install is slow" (Some "slow") (path_of fresh);
  let fast = Serve.Server.handle_request s line in
  Alcotest.(check (option string)) "repeat is fast" (Some "fast") (path_of fast);
  (* the same request with a member outside the scanner subset takes the
     slow path — but still hits the cache *)
  let slow_hit =
    Serve.Server.handle_request s
      {|{"id":7,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"tt","x":"a\\b"}|}
  in
  Alcotest.(check (option string)) "escaped member forces slow" (Some "slow") (path_of slow_hit);
  Alcotest.(check bool) "slow hit is cached" true
    (Serve.Jsonl.member "cached" (parse_reply slow_hit) = Some (Serve.Jsonl.Bool true));
  (* byte equality modulo exactly the cached/path markers *)
  Alcotest.(check string) "fast reply == slow cache hit (modulo path)"
    slow_hit
    (subst fast fast_marker hit_marker);
  Alcotest.(check string) "fast reply == fresh reply (modulo cached+path)"
    fresh
    (subst fast fast_marker fresh_marker)

let test_fast_path_id_variants () =
  let s = mk_server () in
  ignore (Serve.Server.handle_request s {|{"cmd":"analyze","nf":"tcpack"}|});
  (* workload defaulted to mixed: the warm entry answers these too *)
  let string_id = Serve.Server.handle_request s {|{"id":"req-9","cmd":"analyze","nf":"tcpack"}|} in
  Alcotest.(check (option string)) "string id rides the fast path" (Some "fast")
    (path_of string_id);
  Alcotest.(check bool) "string id echoed" true
    (Serve.Jsonl.member "id" (parse_reply string_id) = Some (Serve.Jsonl.Str "req-9"));
  let no_id = Serve.Server.handle_request s {|{"cmd":"analyze","nf":"tcpack"}|} in
  Alcotest.(check bool) "absent id echoes null" true
    (Serve.Jsonl.member "id" (parse_reply no_id) = Some Serve.Jsonl.Null);
  Alcotest.(check (option string)) "absent id rides the fast path" (Some "fast") (path_of no_id);
  let op = Serve.Server.handle_request s {|{"id":1,"op":"analyze","nf":"tcpack"}|} in
  Alcotest.(check (option string)) "op alias rides the fast path" (Some "fast") (path_of op);
  (* non-canonical ids (would not round-trip byte-identically) fall back *)
  let float_id = Serve.Server.handle_request s {|{"id":1.5,"cmd":"analyze","nf":"tcpack"}|} in
  Alcotest.(check (option string)) "non-canonical id falls back to slow" (Some "slow")
    (path_of float_id);
  Alcotest.(check bool) "fallback still answers from cache" true
    (Serve.Jsonl.member "cached" (parse_reply float_id) = Some (Serve.Jsonl.Bool true));
  (* unknown workloads and unknown NFs never fast-match *)
  let bad = Serve.Server.handle_request s {|{"cmd":"analyze","nf":"tcpack","workload":"bogus"}|} in
  Alcotest.(check bool) "unknown workload still rejected" false (is_ok (parse_reply bad));
  let trace =
    Serve.Server.handle_request s {|{"id":2,"cmd":"analyze","nf":"tcpack","trace_id":"zz"}|}
  in
  Alcotest.(check (option string)) "client trace id echoed on the fast path" (Some "zz")
    (Serve.Jsonl.str_member "trace_id" (parse_reply trace))

let test_fast_path_robustness () =
  let s = mk_server ~max_pending:1 () in
  let line = {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed"}|} in
  ignore (Serve.Server.handle_request s line);
  Alcotest.(check (option string)) "warm" (Some "fast")
    (path_of (Serve.Server.handle_request s line));
  (* an armed jsonl.parse fault disables the fast path: the reply must be
     the injected parse error, not a stale cached answer (parsed only
     after disarming — the test's own parser shares the fault point) *)
  let faulted =
    with_fault ~point:"jsonl.parse" ~prob:1.0 (fun () -> Serve.Server.handle_request s line)
  in
  let r = parse_reply faulted in
  Alcotest.(check bool) "armed parse fault short-circuits the fast path" false (is_ok r);
  (match Serve.Jsonl.str_member "error" r with
  | Some msg ->
    Alcotest.(check bool) "the error is the injected fault" true
      (String.length msg >= 14 && String.sub msg 0 14 = "malformed JSON")
  | None -> Alcotest.fail "fault reply carries an error");
  (* the fault disarmed, the fast path resumes *)
  Alcotest.(check (option string)) "fast path resumes once disarmed" (Some "fast")
    (path_of (Serve.Server.handle_request s line));
  (* admission control applies before the fast path: the second line of a
     batch is shed even though it would have been a warm hit *)
  (match Serve.Server.process_batch s [ line; line ] with
  | [ first; second ] ->
    Alcotest.(check (option string)) "admitted line is fast" (Some "fast") (path_of first);
    let r2 = parse_reply second in
    Alcotest.(check bool) "overflow line is shed" true
      (Serve.Jsonl.member "overloaded" r2 = Some (Serve.Jsonl.Bool true))
  | replies -> Alcotest.failf "expected 2 replies, got %d" (List.length replies));
  (* deadlines: a warm hit answers inside any budget (same contract as
     the pre-split cache hit) *)
  let tight = {|{"id":9,"cmd":"analyze","nf":"tcpack","workload":"mixed","deadline_ms":10000}|} in
  Alcotest.(check (option string)) "deadline request still rides the fast path" (Some "fast")
    (path_of (Serve.Server.handle_request s tight))

let test_fastpath_metrics_exposed () =
  let s = mk_server () in
  let line = {|{"id":1,"cmd":"analyze","nf":"udpipencap","workload":"mixed"}|} in
  ignore (Serve.Server.handle_request s line);
  ignore (Serve.Server.handle_request s line);
  let r = parse_reply (Serve.Server.handle_request s {|{"id":2,"cmd":"metrics"}|}) in
  match Serve.Jsonl.str_member "metrics" r with
  | None -> Alcotest.fail "metrics reply carries an exposition"
  | Some text ->
    List.iter
      (fun needle ->
        let n = String.length text and m = String.length needle in
        let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
        Alcotest.(check bool) (needle ^ " exposed") true (go 0))
      [ "clara_fastpath_hits_total"; "clara_fastpath_misses_total";
        "clara_slowpath_installs_total"; "clara_fastpath_evictions_total";
        "clara_fastpath_shard_occupancy" ]

let () =
  Alcotest.run "fastpath"
    [ ( "shards",
        [ Alcotest.test_case "stable FNV shard assignment" `Quick test_shard_assignment_stable;
          Alcotest.test_case "per-shard LRU eviction" `Quick test_per_shard_eviction;
          Alcotest.test_case "degenerate capacities and counters" `Quick
            test_degenerate_and_counters ] );
      ( "scan",
        [ Alcotest.test_case "member spans" `Quick test_scanner_members;
          Alcotest.test_case "subset rejections" `Quick test_scanner_rejects_outside_subset;
          Alcotest.test_case "canonical scalars" `Quick test_canonical_scalar ] );
      ( "entry",
        [ Alcotest.test_case "pre-rendered bytes match Jsonl" `Quick test_entry_matches_jsonl ] );
      ( "compiled",
        [ Alcotest.test_case "flat tree ensembles bit-identical" `Quick test_flat_tree_ensembles;
          Alcotest.test_case "compiled pipeline byte-identical" `Quick
            test_compiled_pipeline_identical ] );
      ( "served",
        [ Alcotest.test_case "fast/slow byte equality" `Quick test_fast_slow_byte_equality;
          Alcotest.test_case "id and trace variants" `Quick test_fast_path_id_variants;
          Alcotest.test_case "faults, shedding, deadlines" `Quick test_fast_path_robustness;
          Alcotest.test_case "fastpath metrics exposed" `Quick test_fastpath_metrics_exposed ] ) ]
