(** Tests for the from-scratch ML toolkit: linear algebra, neural models
    (MLP, LSTM, CNN), trees/forests/GBDT, SVM, K-means, PCA, LambdaMART
    ranking, AutoML and metrics. *)

open Mlkit

let rng () = Util.Rng.create 12345

(* -- La -- *)

let test_la_dot_matvec () =
  Alcotest.(check (float 1e-9)) "dot" 11.0 (La.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  let m = [| [| 1.0; 0.0 |]; [| 0.0; 2.0 |] |] in
  let y = La.mat_vec m [| 5.0; 7.0 |] in
  Alcotest.(check (float 1e-9)) "matvec 0" 5.0 y.(0);
  Alcotest.(check (float 1e-9)) "matvec 1" 14.0 y.(1)

let test_la_mat_t_vec () =
  let m = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let y = La.mat_t_vec m [| 1.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "col sums 0" 4.0 y.(0);
  Alcotest.(check (float 1e-9)) "col sums 1" 6.0 y.(1)

let test_la_add_column () =
  let m = [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let dst = [| 0.0; 0.0 |] in
  La.add_column_into dst m 1;
  Alcotest.(check (float 1e-9)) "column picked" 2.0 dst.(0);
  Alcotest.(check (float 1e-9)) "column picked row2" 4.0 dst.(1)

let test_la_standardize () =
  let xs = [| [| 1.0; 10.0 |]; [| 3.0; 10.0 |] |] in
  let out, mu, sd = La.standardize xs in
  Alcotest.(check (float 1e-9)) "mean removed" 0.0 (out.(0).(0) +. out.(1).(0));
  Alcotest.(check (float 1e-9)) "mu" 2.0 mu.(0);
  (* constant column gets unit scale, not an explosion *)
  Alcotest.(check (float 1e-9)) "constant column sd=1" 1.0 sd.(1);
  let z = La.apply_standardize [| 2.0; 10.0 |] mu sd in
  Alcotest.(check (float 1e-9)) "apply consistent" 0.0 z.(0)

let test_la_sigmoid_tanh () =
  Alcotest.(check (float 1e-9)) "sigmoid 0" 0.5 (La.sigmoid 0.0);
  Alcotest.(check (float 1e-9)) "dsigmoid at 0.5" 0.25 (La.dsigmoid 0.5);
  Alcotest.(check (float 1e-9)) "dtanh at 0" 1.0 (La.dtanh 0.0)

(* -- Nn / MLP -- *)

let test_mlp_fits_linear () =
  let r = rng () in
  let xs = Array.init 200 (fun _ -> [| Util.Rng.float_range r (-1.0) 1.0; Util.Rng.float_range r (-1.0) 1.0 |]) in
  let ys = Array.map (fun x -> [| (3.0 *. x.(0)) -. (2.0 *. x.(1)) +. 0.5 |]) xs in
  let net = Nn.mlp_create (rng ()) ~in_dim:2 ~hidden:[ 8 ] ~out_dim:1 in
  Nn.mlp_fit_regression ~epochs:80 net xs ys;
  let preds = Array.map (fun x -> (Nn.mlp_predict net x).(0)) xs in
  let truth = Array.map (fun y -> y.(0)) ys in
  Alcotest.(check bool) "low training error" true (Metrics.mae preds truth < 0.1)

let test_mlp_binary_classifier () =
  let r = rng () in
  let xs = Array.init 300 (fun _ -> [| Util.Rng.float_range r (-1.0) 1.0; Util.Rng.float_range r (-1.0) 1.0 |]) in
  let ys = Array.map (fun x -> if x.(0) +. x.(1) > 0.0 then 1.0 else 0.0) xs in
  let net = Nn.mlp_create (rng ()) ~in_dim:2 ~hidden:[ 8 ] ~out_dim:1 in
  Nn.mlp_fit_binary ~epochs:60 net xs ys;
  let preds = Array.map (fun x -> if Nn.mlp_predict_binary net x > 0.5 then 1.0 else 0.0) xs in
  Alcotest.(check bool) "good accuracy" true (Metrics.accuracy preds ys > 0.9)

let test_gradient_clipping () =
  let p = Nn.zero_param 1 2 in
  La.Flat.set p.Nn.g 0 0 30.0;
  La.Flat.set p.Nn.g 0 1 40.0;
  Nn.clip_gradients [ p ] 5.0;
  let norm = sqrt ((La.Flat.get p.Nn.g 0 0 ** 2.0) +. (La.Flat.get p.Nn.g 0 1 ** 2.0)) in
  Alcotest.(check (float 1e-6)) "clipped to limit" 5.0 norm

let test_adam_reduces_loss () =
  (* minimize (w - 3)^2 with Adam *)
  let p = Nn.zero_param 1 1 in
  let opt = Nn.adam ~lr:0.1 () in
  for _ = 1 to 200 do
    Nn.zero_grad p;
    La.Flat.set p.Nn.g 0 0 (2.0 *. (La.Flat.get p.Nn.w 0 0 -. 3.0));
    Nn.adam_step opt [ p ]
  done;
  Alcotest.(check bool) "converged to 3" true (abs_float (La.Flat.get p.Nn.w 0 0 -. 3.0) < 0.05)

(* -- LSTM -- *)

let lstm_task r () =
  let len = 4 + Util.Rng.int r 10 in
  let seq = Array.init len (fun _ -> Util.Rng.int r 6) in
  let y = Array.fold_left (fun acc tok -> acc +. if tok = 2 then 3.0 else 1.0) 0.0 seq in
  (seq, [| y |])

let test_lstm_learns_counting () =
  let r = rng () in
  let data = Array.init 250 (fun _ -> lstm_task r ()) in
  let test = Array.init 60 (fun _ -> lstm_task r ()) in
  let m = Lstm.create ~hidden:24 ~vocab:6 77 in
  Lstm.fit ~epochs:8 m data;
  let preds = Array.map (fun (s, _) -> (Lstm.predict m s).(0)) test in
  let truth = Array.map (fun (_, y) -> y.(0)) test in
  Alcotest.(check bool) "test WMAPE below 15%" true (Metrics.wmape preds truth < 0.15)

let test_lstm_empty_sequence () =
  let m = Lstm.create ~vocab:4 3 in
  Alcotest.(check (float 0.0)) "empty predicts 0" 0.0 (Lstm.predict m [||]).(0)

let test_lstm_deterministic () =
  let mk () =
    let m = Lstm.create ~vocab:5 9 in
    Lstm.fit ~epochs:2 m [| ([| 1; 2; 3 |], [| 4.0 |]); ([| 0; 0 |], [| 1.0 |]) |];
    (Lstm.predict m [| 1; 2 |]).(0)
  in
  Alcotest.(check (float 1e-12)) "same seed same model" (mk ()) (mk ())

(* -- CNN -- *)

let test_cnn_learns_motif () =
  let r = rng () in
  (* target depends on presence of the bigram (1,2) anywhere: positional
     invariance is what the conv+maxpool should capture *)
  let mk () =
    let len = 6 + Util.Rng.int r 6 in
    let seq = Array.init len (fun _ -> Util.Rng.int r 4) in
    let has =
      Array.exists (fun k -> k < len - 1 && seq.(k) = 1 && seq.(k + 1) = 2)
        (Array.init (max 1 (len - 1)) (fun k -> k))
    in
    (seq, [| (if has then 10.0 else 2.0) |])
  in
  let data = Array.init 300 (fun _ -> mk ()) in
  let m = Cnn.create ~vocab:4 ~filters:12 11 in
  Cnn.fit ~epochs:12 m data;
  let errs =
    Array.map (fun (s, y) -> abs_float ((Cnn.predict m s).(0) -. y.(0))) data
  in
  Alcotest.(check bool) "fits the motif task" true (Util.Stats.mean errs < 2.0)

(* -- Tree / forest / GBDT -- *)

let step_data () =
  let r = rng () in
  let xs = Array.init 300 (fun _ -> [| Util.Rng.float_range r 0.0 10.0 |]) in
  let ys = Array.map (fun x -> if x.(0) < 5.0 then 1.0 else 9.0) xs in
  (xs, ys)

let test_tree_splits_step () =
  let xs, ys = step_data () in
  let t = Tree.grow xs ys in
  Alcotest.(check bool) "left value" true (abs_float (Tree.predict t [| 2.0 |] -. 1.0) < 0.2);
  Alcotest.(check bool) "right value" true (abs_float (Tree.predict t [| 8.0 |] -. 9.0) < 0.2)

let test_tree_respects_depth () =
  let xs, ys = step_data () in
  let t = Tree.grow ~config:{ Tree.default_grow with Tree.max_depth = 0 } xs ys in
  (match t.Tree.root with
  | Tree.Leaf _ -> ()
  | Tree.Split _ -> Alcotest.fail "depth 0 must be a leaf")

let test_forest_predicts () =
  let xs, ys = step_data () in
  let f = Tree.forest_fit ~n_trees:10 xs ys in
  Alcotest.(check bool) "forest fits" true (abs_float (Tree.forest_predict f [| 8.0 |] -. 9.0) < 1.0)

let test_gbdt_beats_single_tree_on_smooth () =
  let r = rng () in
  let xs = Array.init 300 (fun _ -> [| Util.Rng.float_range r 0.0 6.28 |]) in
  let ys = Array.map (fun x -> sin x.(0) *. 5.0) xs in
  let tree = Tree.grow ~config:{ Tree.default_grow with Tree.max_depth = 2 } xs ys in
  let gbdt = Tree.gbdt_fit ~n_stages:60 xs ys in
  let mae_of pred = Metrics.mae (Array.map pred xs) ys in
  Alcotest.(check bool) "boosting beats one shallow tree" true
    (mae_of (Tree.gbdt_predict gbdt) < mae_of (Tree.predict tree))

let test_gbdt_binary () =
  let xs, ys = step_data () in
  let labels = Array.map (fun y -> if y > 5.0 then 1.0 else 0.0) ys in
  let g = Tree.gbdt_fit_binary ~n_stages:30 xs labels in
  let preds = Array.map (fun x -> if Tree.gbdt_predict_binary g x > 0.5 then 1.0 else 0.0) xs in
  Alcotest.(check bool) "classifies the step" true (Metrics.accuracy preds labels > 0.95)

(* -- Simple: kNN, SVM, K-means, PCA -- *)

let test_knn_regression () =
  let xs = [| [| 0.0 |]; [| 1.0 |]; [| 10.0 |]; [| 11.0 |] |] in
  let ys = [| 0.0; 0.0; 10.0; 10.0 |] in
  let m = Simple.knn_fit ~k:2 xs ys in
  Alcotest.(check (float 1e-6)) "near cluster" 0.0 (Simple.knn_predict m [| 0.5 |]);
  Alcotest.(check (float 1e-6)) "far cluster" 10.0 (Simple.knn_predict m [| 10.5 |])

let test_svm_separable () =
  let r = rng () in
  let xs = Array.init 200 (fun _ -> [| Util.Rng.float_range r (-1.0) 1.0; Util.Rng.float_range r (-1.0) 1.0 |]) in
  let ys = Array.map (fun x -> if x.(0) > 0.2 then 1.0 else 0.0) xs in
  let m = Simple.svm_fit xs ys in
  let preds = Array.map (Simple.svm_predict_binary m) xs in
  Alcotest.(check bool) "high accuracy" true (Metrics.accuracy preds ys > 0.95)

let test_svm_imbalanced_recall () =
  let r = rng () in
  (* 10 positives vs 190 negatives: balanced sampling must keep recall *)
  let pos = Array.init 10 (fun _ -> [| 5.0 +. Util.Rng.float r; 5.0 +. Util.Rng.float r |]) in
  let neg = Array.init 190 (fun _ -> [| Util.Rng.float r; Util.Rng.float r |]) in
  let xs = Array.append pos neg in
  let ys = Array.append (Array.make 10 1.0) (Array.make 190 0.0) in
  let m = Simple.svm_fit xs ys in
  let preds = Array.map (Simple.svm_predict_binary m) xs in
  let _, recall = Metrics.precision_recall preds ys in
  Alcotest.(check bool) "recall on minority" true (recall > 0.8)

let test_kmeans_separated_blobs () =
  let r = rng () in
  let blob cx cy = Array.init 30 (fun _ -> [| cx +. Util.Rng.gaussian r *. 0.1; cy +. Util.Rng.gaussian r *. 0.1 |]) in
  let xs = Array.concat [ blob 0.0 0.0; blob 10.0 10.0 ] in
  let m = Simple.kmeans_fit ~k:2 xs in
  let a = Simple.kmeans_assign m [| 0.1; 0.1 |] in
  let b = Simple.kmeans_assign m [| 9.9; 9.9 |] in
  Alcotest.(check bool) "blobs separated" true (a <> b);
  let clusters = Simple.kmeans_clusters m xs in
  Alcotest.(check int) "two clusters" 2 (Array.length clusters);
  Array.iter (fun members -> Alcotest.(check int) "balanced" 30 (List.length members)) clusters

let test_pca_finds_direction () =
  let r = rng () in
  (* points along the y = x line: first component should align with it *)
  let xs = Array.init 100 (fun _ ->
      let t = Util.Rng.float_range r (-5.0) 5.0 in
      [| t +. (Util.Rng.gaussian r *. 0.01); t -. (Util.Rng.gaussian r *. 0.01) |])
  in
  let p = Simple.pca_fit ~n_components:1 xs in
  let c = p.Simple.components.(0) in
  Alcotest.(check bool) "aligned with y=x" true (abs_float (abs_float c.(0) -. abs_float c.(1)) < 0.05)

(* -- Rank -- *)

let test_lambdamart_ranks () =
  let r = rng () in
  (* relevance = -x: smaller feature is better *)
  let mk_group () =
    let features = Array.init 5 (fun _ -> [| Util.Rng.float_range r 0.0 10.0 |]) in
    let relevance = Array.map (fun x -> -.x.(0)) features in
    { Rank.features; relevance }
  in
  let train = List.init 25 (fun _ -> mk_group ()) in
  let model = Rank.fit ~n_stages:30 train in
  let test = List.init 40 (fun _ -> mk_group ()) in
  let hits = List.length (List.filter (fun g -> Rank.topk_hit model g 1) test) in
  Alcotest.(check bool) "top-1 accuracy high on a linear task" true (hits >= 32)

let test_rank_order_permutation () =
  let model = Rank.fit ~n_stages:5 [ { Rank.features = [| [| 1.0 |]; [| 2.0 |] |]; relevance = [| 1.0; 0.0 |] } ] in
  let order = Rank.rank model [| [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |] in
  Alcotest.(check (list int)) "is a permutation" [ 0; 1; 2 ] (List.sort compare (Array.to_list order))

(* -- Metrics -- *)

let test_metrics_wmape () =
  Alcotest.(check (float 1e-9)) "wmape" 0.1 (Metrics.wmape [| 9.0; 11.0 |] [| 10.0; 10.0 |]);
  Alcotest.(check (float 1e-9)) "perfect" 0.0 (Metrics.wmape [| 5.0 |] [| 5.0 |])

let test_metrics_precision_recall () =
  let p, r = Metrics.precision_recall [| 1.0; 1.0; 0.0; 0.0 |] [| 1.0; 0.0; 1.0; 0.0 |] in
  Alcotest.(check (float 1e-9)) "precision" 0.5 p;
  Alcotest.(check (float 1e-9)) "recall" 0.5 r

let test_metrics_split () =
  let train, test = Metrics.train_test_split ~seed:3 ~test_fraction:0.25 100 in
  Alcotest.(check int) "test size" 25 (Array.length test);
  Alcotest.(check int) "train size" 75 (Array.length train);
  let all = List.sort compare (Array.to_list train @ Array.to_list test) in
  Alcotest.(check (list int)) "partition" (List.init 100 (fun i -> i)) all

(* -- AutoML -- *)

let test_automl_regression () =
  let xs, ys = step_data () in
  let f = Automl.search_regression xs ys in
  Alcotest.(check bool) "picked something" true (String.length f.Automl.name > 0);
  Alcotest.(check bool) "fits the step" true
    (abs_float (Automl.predict f [| 8.0 |] -. 9.0) < 1.5)

let test_automl_classification () =
  let xs, ys = step_data () in
  let labels = Array.map (fun y -> if y > 5.0 then 1.0 else 0.0) ys in
  let f = Automl.search_classification xs labels in
  let preds = Array.map (Automl.predict_class f) xs in
  Alcotest.(check bool) "classifies" true (Metrics.accuracy preds labels > 0.9)


(* -- Crossval -- *)

let test_kfold_partition () =
  let folds = Crossval.kfold ~k:4 20 in
  Alcotest.(check int) "four folds" 4 (List.length folds);
  List.iter
    (fun (train, test) ->
      Alcotest.(check int) "covers all indices" 20 (Array.length train + Array.length test);
      let together = List.sort compare (Array.to_list train @ Array.to_list test) in
      Alcotest.(check (list int)) "partition" (List.init 20 (fun i -> i)) together)
    folds;
  (* every index appears in exactly one test fold *)
  let all_test = List.concat_map (fun (_, t) -> Array.to_list t) folds in
  Alcotest.(check (list int)) "test folds partition" (List.init 20 (fun i -> i))
    (List.sort compare all_test)

let test_cv_regression_scores_linear () =
  let r = rng () in
  let xs = Array.init 120 (fun _ -> [| Util.Rng.float_range r 0.0 10.0 |]) in
  let ys = Array.map (fun x -> (2.0 *. x.(0)) +. 1.0) xs in
  let fit tx ty = Tree.gbdt_fit ~n_stages:40 tx ty in
  let mean, sd = Crossval.cv_regression ~k:5 ~fit ~predict:Tree.gbdt_predict xs ys in
  Alcotest.(check bool) "low CV error" true (mean < 1.0);
  Alcotest.(check bool) "sd finite" true (Float.is_finite sd)

let test_cv_select_picks_better_family () =
  let r = rng () in
  let xs = Array.init 150 (fun _ -> [| Util.Rng.float_range r 0.0 10.0 |]) in
  let ys = Array.map (fun x -> if x.(0) < 5.0 then 1.0 else 9.0) xs in
  (* heterogeneous families unify by fitting to a closure *)
  let name, _ =
    Crossval.select_regression ~k:5
      [ ("tree", (fun tx ty -> Tree.predict (Tree.grow tx ty)), fun f x -> f x);
        ("const", (fun _ ty -> let c = Util.Stats.mean ty in fun _ -> c), fun f x -> f x) ]
      xs ys
  in
  Alcotest.(check string) "tree beats the constant predictor" "tree" name

(* -- Bayes -- *)

let test_bayes_separable () =
  let r = rng () in
  let pos = Array.init 60 (fun _ -> [| 5.0 +. Util.Rng.gaussian r; 5.0 +. Util.Rng.gaussian r |]) in
  let neg = Array.init 60 (fun _ -> [| Util.Rng.gaussian r; Util.Rng.gaussian r |]) in
  let xs = Array.append pos neg in
  let ys = Array.append (Array.make 60 1.0) (Array.make 60 0.0) in
  let m = Bayes.fit xs ys in
  let preds = Array.map (Bayes.predict m) xs in
  Alcotest.(check bool) "high accuracy" true (Metrics.accuracy preds ys > 0.95);
  Alcotest.(check bool) "posterior near 1 deep in the positive blob" true
    (Bayes.predict_binary m [| 5.0; 5.0 |] > 0.9);
  Alcotest.(check bool) "posterior near 0 deep in the negative blob" true
    (Bayes.predict_binary m [| 0.0; 0.0 |] < 0.1)

let test_bayes_priors_matter () =
  (* overlapping classes, 9:1 imbalance: the majority prior should win at
     the midpoint *)
  let r = rng () in
  let maj = Array.init 90 (fun _ -> [| Util.Rng.gaussian r |]) in
  let min_ = Array.init 10 (fun _ -> [| 0.5 +. Util.Rng.gaussian r |]) in
  let xs = Array.append maj min_ in
  let ys = Array.append (Array.make 90 0.0) (Array.make 10 1.0) in
  let m = Bayes.fit xs ys in
  Alcotest.(check (float 0.0)) "majority class at the overlap" 0.0 (Bayes.predict m [| 0.25 |])
(* -- properties -- *)

let prop_tree_predicts_in_target_range =
  QCheck.Test.make ~name:"tree predictions within target range" ~count:50
    QCheck.(list_of_size (Gen.int_range 5 40) (pair (float_range 0.0 10.0) (float_range (-5.0) 5.0)))
    (fun data ->
      let xs = Array.of_list (List.map (fun (x, _) -> [| x |]) data) in
      let ys = Array.of_list (List.map snd data) in
      let t = Tree.grow xs ys in
      let lo = Util.Stats.min_arr ys and hi = Util.Stats.max_arr ys in
      Array.for_all (fun x -> let p = Tree.predict t x in p >= lo -. 1e-6 && p <= hi +. 1e-6) xs)

let prop_kmeans_assign_in_range =
  QCheck.Test.make ~name:"kmeans assignments valid" ~count:50
    QCheck.(pair (int_range 2 5) (list_of_size (Gen.int_range 6 30) (pair (float_range 0.0 1.0) (float_range 0.0 1.0))))
    (fun (k, pts) ->
      let xs = Array.of_list (List.map (fun (a, b) -> [| a; b |]) pts) in
      let m = Simple.kmeans_fit ~k xs in
      Array.for_all
        (fun x ->
          let c = Simple.kmeans_assign m x in
          c >= 0 && c < Array.length m.Simple.centroids)
        xs)

let () =
  Alcotest.run "mlkit"
    [ ( "la",
        [ Alcotest.test_case "dot/matvec" `Quick test_la_dot_matvec;
          Alcotest.test_case "transpose matvec" `Quick test_la_mat_t_vec;
          Alcotest.test_case "one-hot column" `Quick test_la_add_column;
          Alcotest.test_case "standardize" `Quick test_la_standardize;
          Alcotest.test_case "activations" `Quick test_la_sigmoid_tanh ] );
      ( "nn",
        [ Alcotest.test_case "mlp fits linear" `Quick test_mlp_fits_linear;
          Alcotest.test_case "mlp binary classifier" `Quick test_mlp_binary_classifier;
          Alcotest.test_case "gradient clipping" `Quick test_gradient_clipping;
          Alcotest.test_case "adam converges" `Quick test_adam_reduces_loss ] );
      ( "lstm",
        [ Alcotest.test_case "learns counting" `Slow test_lstm_learns_counting;
          Alcotest.test_case "empty sequence" `Quick test_lstm_empty_sequence;
          Alcotest.test_case "deterministic" `Quick test_lstm_deterministic ] );
      ("cnn", [ Alcotest.test_case "learns motif" `Slow test_cnn_learns_motif ]);
      ( "trees",
        [ Alcotest.test_case "splits step" `Quick test_tree_splits_step;
          Alcotest.test_case "respects depth" `Quick test_tree_respects_depth;
          Alcotest.test_case "forest predicts" `Quick test_forest_predicts;
          Alcotest.test_case "gbdt beats shallow tree" `Quick test_gbdt_beats_single_tree_on_smooth;
          Alcotest.test_case "gbdt binary" `Quick test_gbdt_binary ] );
      ( "simple",
        [ Alcotest.test_case "knn regression" `Quick test_knn_regression;
          Alcotest.test_case "svm separable" `Quick test_svm_separable;
          Alcotest.test_case "svm imbalanced recall" `Quick test_svm_imbalanced_recall;
          Alcotest.test_case "kmeans blobs" `Quick test_kmeans_separated_blobs;
          Alcotest.test_case "pca direction" `Quick test_pca_finds_direction ] );
      ( "rank",
        [ Alcotest.test_case "lambdamart ranks" `Quick test_lambdamart_ranks;
          Alcotest.test_case "rank is a permutation" `Quick test_rank_order_permutation ] );
      ( "metrics",
        [ Alcotest.test_case "wmape" `Quick test_metrics_wmape;
          Alcotest.test_case "precision/recall" `Quick test_metrics_precision_recall;
          Alcotest.test_case "split" `Quick test_metrics_split ] );
      ( "automl",
        [ Alcotest.test_case "regression search" `Slow test_automl_regression;
          Alcotest.test_case "classification search" `Slow test_automl_classification ] );
      ( "crossval",
        [ Alcotest.test_case "kfold partition" `Quick test_kfold_partition;
          Alcotest.test_case "cv regression" `Quick test_cv_regression_scores_linear;
          Alcotest.test_case "model selection" `Quick test_cv_select_picks_better_family ] );
      ( "bayes",
        [ Alcotest.test_case "separable" `Quick test_bayes_separable;
          Alcotest.test_case "priors matter" `Quick test_bayes_priors_matter ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_tree_predicts_in_target_range; prop_kmeans_assign_in_range ] ) ]
