(** Tests for the observability layer: span recording semantics (nesting,
    exception safety, disabled mode, ring eviction), the stable span-tree
    structure of [Pipeline.analyze] under serial and 4-domain pools,
    [Pool.size], the Prometheus-style exposition (parsed back and checked
    for monotonicity and bucket/count consistency), and the validity of
    both JSON exports.

    Like test_parallel, the suite runs twice from dune — once with
    CLARA_JOBS=1 and once with CLARA_JOBS=4 — so every assertion holds in
    both ambient pool modes. *)

let with_jobs n f =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Util.Pool.set_jobs saved) f

let with_spans f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

let names_of evs = List.map (fun (e : Obs.Span.event) -> e.Obs.Span.name) evs

(* -- span recording -- *)

let test_span_disabled () =
  Obs.Span.reset ();
  Obs.Span.set_enabled false;
  let r = Obs.Span.with_ "off" (fun () -> 41 + 1) in
  Alcotest.(check int) "body still runs" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Span.events ()))

let test_span_nesting () =
  with_spans @@ fun () ->
  Obs.Span.with_ "a" (fun () ->
      Obs.Span.with_ "b" (fun () -> ());
      Obs.Span.with_ "c" (fun () -> ()));
  Obs.Span.with_ "d" (fun () -> ());
  Alcotest.(check (list string)) "start order" [ "a"; "b"; "c"; "d" ]
    (names_of (Obs.Span.events ()));
  match Obs.Span.forest () with
  | [ ta; td ] ->
    Alcotest.(check (list (pair string int)))
      "a's subtree" [ ("a", 0); ("b", 1); ("c", 1) ] (Obs.Span.flatten ta);
    Alcotest.(check (list (pair string int))) "d is its own root" [ ("d", 0) ]
      (Obs.Span.flatten td);
    Alcotest.(check int) "no orphans" 0 (List.length (Obs.Span.orphans ()))
  | f -> Alcotest.failf "expected two roots, got %d" (List.length f)

let test_span_exception_safety () =
  with_spans @@ fun () ->
  (try Obs.Span.with_ "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Obs.Span.with_ "after" (fun () -> ());
  match Obs.Span.events () with
  | [ boom; after ] ->
    Alcotest.(check string) "raising span recorded" "boom" boom.Obs.Span.name;
    Alcotest.(check int) "stack popped: next span is a root" (-1) after.Obs.Span.parent;
    Alcotest.(check int) "next span back at depth 0" 0 after.Obs.Span.depth
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_ring_eviction () =
  with_spans @@ fun () ->
  let extra = 10 in
  for i = 1 to Obs.Span.capacity + extra do
    Obs.Span.with_ (if i <= extra then "old" else "new") (fun () -> ())
  done;
  Alcotest.(check int) "dropped counts evictions" extra (Obs.Span.dropped ());
  let evs = Obs.Span.events () in
  Alcotest.(check int) "ring holds exactly capacity" Obs.Span.capacity (List.length evs);
  Alcotest.(check bool) "oldest events were the ones evicted" false
    (List.exists (fun (e : Obs.Span.event) -> e.Obs.Span.name = "old") evs)

(* -- Pool.size -- *)

let test_pool_size () =
  with_jobs 3 (fun () ->
      Alcotest.(check int) "size = configured jobs outside tasks" 3 (Util.Pool.size ());
      let inside = Util.Pool.parallel_map (fun _ -> Util.Pool.size ()) (Array.init 8 Fun.id) in
      Array.iter
        (Alcotest.(check int) "size = 1 inside a pool task (nested regions run serial)" 1)
        inside);
  with_jobs 1 (fun () -> Alcotest.(check int) "serial pool" 1 (Util.Pool.size ()))

(* -- Pipeline.analyze span tree -- *)

(* Tiny models, spans off during training so only [analyze] is recorded.
   No scaleout model: its [suggest] span would otherwise appear too. *)
let models =
  lazy
    (Obs.Span.set_enabled false;
     Clara.Pipeline.train ~quick:true ~with_scaleout:false ())

let spec = { Workload.default with Workload.n_packets = 200 }

(* The exact preorder (name, relative depth) walk of one analyze call on a
   stateful NF.  This is the structural contract: every pipeline stage
   shows up, properly nested, in deterministic order. *)
let expected_analyze_shape =
  [ ("pipeline.analyze", 0);
    ("prepare", 1);
    ("lower", 2);
    ("vocab.encode", 2);
    ("predict", 1);
    ("prepare", 2);
    ("lower", 3);
    ("vocab.encode", 3);
    ("algo.detect", 1);
    ("nic.port", 1);
    ("placement.solve", 1);
    ("coalesce.suggest", 1);
    (* coalescing sweeps k = 1..3 cluster counts *)
    ("kmeans.fit", 2);
    ("kmeans.fit", 2);
    ("kmeans.fit", 2) ]

let analyze_shape ~jobs () =
  let m = Lazy.force models in
  let elt = Nf_lang.Corpus.find "Mazu-NAT" in
  with_jobs jobs @@ fun () ->
  with_spans @@ fun () ->
  ignore (Clara.Pipeline.analyze m elt spec);
  Alcotest.(check int) "no orphans" 0 (List.length (Obs.Span.orphans ()));
  match
    List.filter
      (fun t -> t.Obs.Span.span.Obs.Span.name = "pipeline.analyze")
      (Obs.Span.forest ())
  with
  | [ tree ] -> Obs.Span.flatten tree
  | l -> Alcotest.failf "expected one pipeline.analyze root, got %d" (List.length l)

let test_analyze_span_tree () =
  let serial = analyze_shape ~jobs:1 () in
  Alcotest.(check (list (pair string int)))
    "every stage present, nested, in order (jobs=1)" expected_analyze_shape serial;
  let parallel = analyze_shape ~jobs:4 () in
  Alcotest.(check (list (pair string int)))
    "identical structure under a 4-domain pool" expected_analyze_shape parallel

(* -- Prometheus exposition golden test -- *)

(* Parse one sample line back: "name value" or "name{labels} value". *)
let parse_sample line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
    let name = String.sub line 0 i in
    let v = float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) in
    Option.map (fun v -> (name, v)) v

let samples_of text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.filter_map parse_sample

let test_exposition () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~help:"test counter" "test_obs_requests_total" in
  let lc = Obs.Metrics.counter ~labels:[ ("mode", "x") ] "test_obs_labeled_total" in
  let g = Obs.Metrics.gauge ~help:"test gauge" "test_obs_depth" in
  let h = Obs.Metrics.histogram ~help:"test histogram" "test_obs_latency_seconds" in
  Obs.Metrics.inc c;
  let after_one = Obs.Metrics.counter_value c in
  Obs.Metrics.add c 2;
  Obs.Metrics.addf c 2.5;
  Alcotest.(check bool) "counter is monotone" true (Obs.Metrics.counter_value c > after_one);
  Alcotest.(check (float 1e-9)) "counter accumulates exactly" 5.5 (Obs.Metrics.counter_value c);
  (match Obs.Metrics.add c (-1) with
  | () -> Alcotest.fail "negative counter add must be rejected"
  | exception Invalid_argument _ -> ());
  Obs.Metrics.inc lc;
  Obs.Metrics.set_gauge g 7.0;
  Obs.Metrics.add_gauge g (-3.0);
  let obs_values = [ 0.0003; 0.002; 0.07; 1.0; 100.0 ] in
  List.iter (Obs.Metrics.observe h) obs_values;
  let text = Obs.Metrics.exposition () in
  let samples = samples_of text in
  let value name =
    match List.assoc_opt name samples with
    | Some v -> v
    | None -> Alcotest.failf "exposition is missing %s" name
  in
  Alcotest.(check (float 1e-9)) "counter sample" 5.5 (value "test_obs_requests_total");
  Alcotest.(check (float 1e-9)) "labeled counter sample" 1.0
    (value {|test_obs_labeled_total{mode="x"}|});
  Alcotest.(check (float 1e-9)) "gauge sample" 4.0 (value "test_obs_depth");
  let contains sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HELP line present" true (contains "# HELP test_obs_requests_total" text);
  Alcotest.(check bool) "counter TYPE line" true
    (contains "# TYPE test_obs_requests_total counter" text);
  Alcotest.(check bool) "histogram TYPE line" true
    (contains "# TYPE test_obs_latency_seconds histogram" text);
  (* histogram consistency: cumulative buckets are monotone, the +Inf
     bucket equals _count, and _sum matches what was observed *)
  let buckets =
    List.filter (fun (n, _) -> contains "test_obs_latency_seconds_bucket{" n) samples
  in
  Alcotest.(check bool) "buckets emitted" true (List.length buckets > 1);
  let cumulative = List.map snd buckets in
  List.iteri
    (fun i v ->
      if i > 0 then
        Alcotest.(check bool) "cumulative buckets never decrease" true
          (v >= List.nth cumulative (i - 1)))
    cumulative;
  let count = value "test_obs_latency_seconds_count" in
  Alcotest.(check (float 1e-9)) "+Inf bucket equals count"
    count
    (value {|test_obs_latency_seconds_bucket{le="+Inf"}|});
  Alcotest.(check (float 1e-9)) "count matches observations"
    (float_of_int (List.length obs_values))
    count;
  Alcotest.(check (float 1e-6)) "sum matches observations"
    (List.fold_left ( +. ) 0.0 obs_values)
    (value "test_obs_latency_seconds_sum");
  Alcotest.(check int) "histogram_count agrees" (List.length obs_values)
    (Obs.Metrics.histogram_count h);
  (* [time] observes even when the body raises *)
  (try Obs.Metrics.time h (fun () -> failwith "expected") with Failure _ -> ());
  Alcotest.(check int) "time observes on exception" (List.length obs_values + 1)
    (Obs.Metrics.histogram_count h)

(* -- structured logging -- *)

let with_log_capture f =
  let buf = ref [] in
  let saved_level = Obs.Log.level () in
  Obs.Log.set_sink (Obs.Log.Custom (fun line -> buf := line :: !buf));
  Fun.protect
    ~finally:(fun () ->
      Obs.Log.set_sink Obs.Log.Stderr;
      Obs.Log.set_level saved_level)
    (fun () -> f buf)

let parse_log_line line =
  match Serve.Jsonl.of_string line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "log line %S is not JSON: %s" line msg

let test_log_levels_and_fields () =
  with_log_capture @@ fun buf ->
  Obs.Log.set_level Obs.Log.Warn;
  Obs.Log.info "dropped";
  Alcotest.(check int) "below threshold emits nothing" 0 (List.length !buf);
  Alcotest.(check bool) "enabled reflects threshold" false (Obs.Log.enabled Obs.Log.Info);
  Alcotest.(check bool) "errors stay enabled" true (Obs.Log.enabled Obs.Log.Error);
  Obs.Log.set_level Obs.Log.Debug;
  Obs.Log.warn
    ~fields:
      [ ("socket", Obs.Log.Str "/tmp/x.sock"); ("jobs", Obs.Log.Int 4);
        ("ratio", Obs.Log.Num 0.5); ("accepting", Obs.Log.Bool true);
        ("bad", Obs.Log.Num Float.nan) ]
    {|weird "msg"|};
  match !buf with
  | [ line ] ->
    let j = parse_log_line line in
    Alcotest.(check (option string)) "level" (Some "warn") (Serve.Jsonl.str_member "level" j);
    Alcotest.(check (option string)) "msg survives escaping" (Some {|weird "msg"|})
      (Serve.Jsonl.str_member "msg" j);
    Alcotest.(check (option string)) "string field" (Some "/tmp/x.sock")
      (Serve.Jsonl.str_member "socket" j);
    Alcotest.(check (option (float 0.0))) "int field" (Some 4.0)
      (Serve.Jsonl.num_member "jobs" j);
    Alcotest.(check (option (float 0.0))) "float field" (Some 0.5)
      (Serve.Jsonl.num_member "ratio" j);
    Alcotest.(check bool) "bool field" true
      (Serve.Jsonl.member "accepting" j = Some (Serve.Jsonl.Bool true));
    Alcotest.(check bool) "non-finite field renders null" true
      (Serve.Jsonl.member "bad" j = Some Serve.Jsonl.Null);
    (match Serve.Jsonl.str_member "ts" j with
    | Some ts ->
      Alcotest.(check bool) "ISO-8601 UTC timestamp" true
        (String.length ts = 24 && ts.[String.length ts - 1] = 'Z' && ts.[10] = 'T')
    | None -> Alcotest.fail "ts missing")
  | l -> Alcotest.failf "expected one log line, got %d" (List.length l)

let test_log_trace_correlation () =
  with_log_capture @@ fun buf ->
  Obs.Log.set_level Obs.Log.Info;
  Obs.Log.info "outside";
  (with_spans @@ fun () ->
   Obs.Span.with_trace "t-42" (fun () ->
       Obs.Span.with_ "work" (fun () -> Obs.Log.info "inside")));
  match List.rev !buf with
  | [ outside; inside ] ->
    let o = parse_log_line outside and i = parse_log_line inside in
    Alcotest.(check (option string)) "no trace outside a request" None
      (Serve.Jsonl.str_member "trace" o);
    Alcotest.(check bool) "no span outside a span" true (Serve.Jsonl.member "span" o = None);
    Alcotest.(check (option string)) "trace id attached" (Some "t-42")
      (Serve.Jsonl.str_member "trace" i);
    (match Serve.Jsonl.num_member "span" i with
    | Some id -> Alcotest.(check bool) "span id is a valid index" true (id >= 0.0)
    | None -> Alcotest.fail "span id missing inside an open span")
  | l -> Alcotest.failf "expected two log lines, got %d" (List.length l)

(* -- training-telemetry series -- *)

let test_series_ring () =
  Obs.Series.reset ();
  let s = Obs.Series.create ~capacity:4 "test.series" in
  for i = 1 to 10 do
    Obs.Series.record s ~step:i (float_of_int (i * i))
  done;
  Alcotest.(check int) "dropped counts evictions" 6 (Obs.Series.dropped s);
  Alcotest.(check (list (pair int (float 0.0)))) "ring keeps the last 4 points"
    [ (7, 49.0); (8, 64.0); (9, 81.0); (10, 100.0) ]
    (Obs.Series.points s);
  let s2 = Obs.Series.create ~capacity:4 "test.series" in
  Obs.Series.record s2 ~step:1 1.0;
  Alcotest.(check int) "second fit opens run 2" 2 (Obs.Series.run s2);
  Alcotest.(check (list (pair int (float 0.0)))) "runs never interleave"
    [ (7, 49.0); (8, 64.0); (9, 81.0); (10, 100.0) ]
    (Obs.Series.points s);
  let tiny = Obs.Series.create ~capacity:0 "test.tiny" in
  Obs.Series.record tiny ~step:1 1.0;
  Obs.Series.record tiny ~step:2 2.0;
  Alcotest.(check (list (pair int (float 0.0)))) "capacity clamps to one point"
    [ (2, 2.0) ]
    (Obs.Series.points tiny);
  Obs.Series.reset ();
  Alcotest.(check (list string)) "reset drops every run" [] (Obs.Series.names ())

let test_series_json () =
  Obs.Series.reset ();
  let s = Obs.Series.create ~capacity:8 "test.json" in
  Obs.Series.record s ~step:1 0.5;
  Obs.Series.record s ~step:2 Float.nan;
  (match Serve.Jsonl.of_string (Obs.Series.to_json_string ()) with
  | Error msg -> Alcotest.failf "series dump is not valid JSON: %s" msg
  | Ok j -> (
    match Serve.Jsonl.member "series" j with
    | Some (Serve.Jsonl.Arr [ run ]) -> (
      Alcotest.(check (option string)) "name" (Some "test.json")
        (Serve.Jsonl.str_member "name" run);
      Alcotest.(check (option (float 0.0))) "run number" (Some 1.0)
        (Serve.Jsonl.num_member "run" run);
      match Serve.Jsonl.member "points" run with
      | Some (Serve.Jsonl.Arr [ p1; p2 ]) ->
        Alcotest.(check (option (float 0.0))) "step kept" (Some 1.0)
          (Serve.Jsonl.num_member "step" p1);
        Alcotest.(check (option (float 0.0))) "value kept" (Some 0.5)
          (Serve.Jsonl.num_member "value" p1);
        Alcotest.(check bool) "non-finite value renders null" true
          (Serve.Jsonl.member "value" p2 = Some Serve.Jsonl.Null)
      | _ -> Alcotest.fail "points array missing")
    | _ -> Alcotest.fail "series array missing"));
  Obs.Series.reset ()

(* Every fitted model family publishes a learning curve: run each fit
   small and direct, then check every buffered run has strictly
   increasing step indices and finite losses (ISSUE acceptance). *)
let test_training_series () =
  Obs.Series.reset ();
  let xs = Array.init 20 (fun i -> [| float_of_int i; float_of_int (i mod 3) |]) in
  let ys = Array.map (fun x -> (2.0 *. x.(0)) +. x.(1)) xs in
  let labels = Array.map (fun x -> if x.(0) > 10.0 then 1.0 else 0.0) xs in
  ignore (Mlkit.Tree.gbdt_fit ~n_stages:5 xs ys);
  ignore (Mlkit.Tree.gbdt_fit_binary ~n_stages:5 xs labels);
  ignore (Mlkit.Simple.svm_fit ~epochs:3 xs labels);
  ignore (Mlkit.Simple.kmeans_fit ~iters:3 ~k:2 xs);
  ignore
    (Mlkit.Rank.fit ~n_stages:4
       [ { Mlkit.Rank.features = [| [| 1.0 |]; [| 2.0 |]; [| 3.0 |] |];
           relevance = [| 2.0; 1.0; 0.0 |] } ]);
  let lstm = Mlkit.Lstm.create ~hidden:4 ~vocab:5 7 in
  Mlkit.Lstm.fit ~epochs:2 lstm [| ([| 1; 2; 3 |], [| 4.0 |]); ([| 0; 4 |], [| 1.0 |]) |];
  let expected =
    [ "gbdt.fit"; "gbdt.fit_binary"; "kmeans.fit"; "lstm.fit"; "rank.fit"; "svm.fit" ]
  in
  let names = Obs.Series.names () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " recorded a run") true (List.mem name names))
    expected;
  (match Serve.Jsonl.of_string (Obs.Series.to_json_string ()) with
  | Error msg -> Alcotest.failf "telemetry dump is not valid JSON: %s" msg
  | Ok j -> (
    match Serve.Jsonl.member "series" j with
    | Some (Serve.Jsonl.Arr runs) ->
      Alcotest.(check bool) "one run per fit" true (List.length runs >= List.length expected);
      List.iter
        (fun run ->
          let name = Option.value ~default:"?" (Serve.Jsonl.str_member "name" run) in
          match Serve.Jsonl.member "points" run with
          | Some (Serve.Jsonl.Arr points) ->
            Alcotest.(check bool) (name ^ " has points") true (points <> []);
            let last = ref min_int in
            List.iter
              (fun p ->
                (match Serve.Jsonl.num_member "step" p with
                | Some s ->
                  let s = int_of_float s in
                  Alcotest.(check bool) (name ^ " steps strictly increase") true (s > !last);
                  last := s
                | None -> Alcotest.failf "%s point without a step" name);
                match Serve.Jsonl.member "value" p with
                | Some (Serve.Jsonl.Num v) ->
                  Alcotest.(check bool) (name ^ " loss is finite") true (Float.is_finite v)
                | _ -> Alcotest.failf "%s run has a non-finite loss" name)
              points
          | _ -> Alcotest.failf "%s run without points" name)
        runs
    | _ -> Alcotest.fail "series array missing"));
  Obs.Series.reset ()

(* -- runtime gauges -- *)

let test_runtime_gauges () =
  Obs.Runtime.sample ();
  let samples = samples_of (Obs.Metrics.exposition ()) in
  let value name =
    match List.assoc_opt name samples with
    | Some v -> v
    | None -> Alcotest.failf "exposition is missing %s" name
  in
  Alcotest.(check bool) "heap words positive" true (value "clara_runtime_gc_heap_words" > 0.0);
  Alcotest.(check bool) "minor words positive" true
    (value "clara_runtime_gc_minor_words" > 0.0);
  Alcotest.(check bool) "uptime nonnegative" true (value "clara_runtime_uptime_seconds" >= 0.0);
  Alcotest.(check bool) "recommended domains >= 1" true
    (value "clara_runtime_recommended_domains" >= 1.0);
  Alcotest.(check bool) "sampler initially stopped" false (Obs.Runtime.running ());
  Obs.Runtime.start ~period_s:0.05 ();
  Alcotest.(check bool) "sampler running" true (Obs.Runtime.running ());
  Obs.Runtime.start ();
  Obs.Runtime.stop ();
  Alcotest.(check bool) "sampler stopped" false (Obs.Runtime.running ());
  Obs.Runtime.stop ()

(* -- request-scoped tracing through the insight server -- *)

let parse_reply line =
  match Serve.Jsonl.of_string line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparseable reply %S: %s" line msg

let rec flatten_span_json depth j =
  let name = Option.value ~default:"?" (Serve.Jsonl.str_member "name" j) in
  let children =
    match Serve.Jsonl.member "children" j with Some (Serve.Jsonl.Arr cs) -> cs | _ -> []
  in
  (name, depth) :: List.concat_map (flatten_span_json (depth + 1)) children

(* One request's span subtree via the server's [trace] command: echo of a
   client-supplied trace_id, the subtree matching a direct
   [Pipeline.analyze] of the same NF/workload, and exclusion of every
   other request's spans. *)
let server_trace_shape ~jobs ~trace () =
  let m = Lazy.force models in
  with_jobs jobs @@ fun () ->
  with_spans @@ fun () ->
  let s = Serve.Server.create ~cache_capacity:8 m in
  let req =
    Printf.sprintf
      {|{"id":1,"cmd":"analyze","nf":"Mazu-NAT","workload":"mixed","trace_id":"%s"}|} trace
  in
  let r = parse_reply (Serve.Server.handle_request s req) in
  Alcotest.(check bool) "traced analyze ok" true
    (Serve.Jsonl.member "ok" r = Some (Serve.Jsonl.Bool true));
  Alcotest.(check (option string)) "reply echoes the client trace id" (Some trace)
    (Serve.Jsonl.str_member "trace_id" r);
  (* a second request under a different trace must stay out of the subtree *)
  let other =
    parse_reply
      (Serve.Server.handle_request s
         {|{"id":2,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"other"}|})
  in
  Alcotest.(check (option string)) "other request keeps its own id" (Some "other")
    (Serve.Jsonl.str_member "trace_id" other);
  let tr =
    parse_reply
      (Serve.Server.handle_request s
         (Printf.sprintf {|{"id":3,"cmd":"trace","trace_id":"%s"}|} trace))
  in
  Alcotest.(check bool) "trace reply ok" true
    (Serve.Jsonl.member "ok" tr = Some (Serve.Jsonl.Bool true));
  Alcotest.(check (option string)) "trace reply names the queried id" (Some trace)
    (Serve.Jsonl.str_member "queried" tr);
  Alcotest.(check bool) "trace reply reports tracing on" true
    (Serve.Jsonl.member "tracing" tr = Some (Serve.Jsonl.Bool true));
  match Serve.Jsonl.member "spans" tr with
  | Some (Serve.Jsonl.Arr roots) -> List.concat_map (flatten_span_json 0) roots
  | _ -> Alcotest.fail "trace reply carries a spans array"

let test_request_trace () =
  let m = Lazy.force models in
  (* reference: the span subtree of one direct analyze, trace-filtered *)
  let reference =
    with_spans @@ fun () ->
    Obs.Span.with_trace "ref" (fun () ->
        ignore
          (Clara.Pipeline.analyze m (Nf_lang.Corpus.find "Mazu-NAT") Serve.Server.mixed_spec));
    match Obs.Span.forest ~trace:"ref" () with
    | [ tree ] -> Obs.Span.flatten tree
    | l -> Alcotest.failf "expected one traced root, got %d" (List.length l)
  in
  let serial = server_trace_shape ~jobs:1 ~trace:"abc" () in
  Alcotest.(check (list (pair string int)))
    "server trace = direct analyze subtree (jobs=1)" reference serial;
  let parallel = server_trace_shape ~jobs:4 ~trace:"abc" () in
  Alcotest.(check (list (pair string int)))
    "identical subtree under a 4-domain pool" reference parallel

(* -- JSON exports parse -- *)

let test_json_exports () =
  (with_spans @@ fun () ->
   Obs.Span.with_ "outer" (fun () -> Obs.Span.with_ {|in "ner"|} (fun () -> ()));
   let txt = Obs.Span.to_chrome_json () in
   match Serve.Jsonl.of_string txt with
   | Error msg -> Alcotest.failf "chrome trace is not valid JSON: %s" msg
   | Ok j -> (
     match Serve.Jsonl.member "traceEvents" j with
     | Some (Serve.Jsonl.Arr evs) ->
       Alcotest.(check int) "one trace event per span" 2 (List.length evs);
       List.iter
         (fun e ->
           Alcotest.(check (option string)) "complete events" (Some "X")
             (Serve.Jsonl.str_member "ph" e))
         evs
     | _ -> Alcotest.fail "traceEvents array missing"));
  match Serve.Jsonl.of_string (Obs.Metrics.to_json_string ()) with
  | Error msg -> Alcotest.failf "metrics dump is not valid JSON: %s" msg
  | Ok j -> (
    match Serve.Jsonl.member "metrics" j with
    | Some (Serve.Jsonl.Arr _) -> ()
    | _ -> Alcotest.fail "metrics array missing")

let () =
  Alcotest.run "obs"
    [ ( "span",
        [ Alcotest.test_case "disabled records nothing" `Quick test_span_disabled;
          Alcotest.test_case "nesting and forest" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "ring eviction" `Quick test_span_ring_eviction ] );
      ("pool", [ Alcotest.test_case "Pool.size" `Quick test_pool_size ]);
      ( "log",
        [ Alcotest.test_case "levels, fields and escaping" `Quick test_log_levels_and_fields;
          Alcotest.test_case "trace/span correlation" `Quick test_log_trace_correlation ] );
      ( "series",
        [ Alcotest.test_case "bounded ring and runs" `Quick test_series_ring;
          Alcotest.test_case "JSON export" `Quick test_series_json;
          Alcotest.test_case "every fit records a learning curve" `Slow test_training_series ] );
      ("runtime", [ Alcotest.test_case "GC gauges and sampler" `Quick test_runtime_gauges ]);
      ( "pipeline",
        [ Alcotest.test_case "analyze span tree is stable" `Slow test_analyze_span_tree;
          Alcotest.test_case "request-scoped trace subtree" `Slow test_request_trace ] );
      ( "metrics",
        [ Alcotest.test_case "exposition golden" `Quick test_exposition;
          Alcotest.test_case "JSON exports parse" `Quick test_json_exports ] ) ]
