(** Tests for the observability layer: span recording semantics (nesting,
    exception safety, disabled mode, ring eviction), the stable span-tree
    structure of [Pipeline.analyze] under serial and 4-domain pools,
    [Pool.size], the Prometheus-style exposition (parsed back and checked
    for monotonicity and bucket/count consistency), and the validity of
    both JSON exports.

    Like test_parallel, the suite runs twice from dune — once with
    CLARA_JOBS=1 and once with CLARA_JOBS=4 — so every assertion holds in
    both ambient pool modes. *)

let with_jobs n f =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Util.Pool.set_jobs saved) f

let with_spans f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

let names_of evs = List.map (fun (e : Obs.Span.event) -> e.Obs.Span.name) evs

(* -- span recording -- *)

let test_span_disabled () =
  Obs.Span.reset ();
  Obs.Span.set_enabled false;
  let r = Obs.Span.with_ "off" (fun () -> 41 + 1) in
  Alcotest.(check int) "body still runs" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (List.length (Obs.Span.events ()))

let test_span_nesting () =
  with_spans @@ fun () ->
  Obs.Span.with_ "a" (fun () ->
      Obs.Span.with_ "b" (fun () -> ());
      Obs.Span.with_ "c" (fun () -> ()));
  Obs.Span.with_ "d" (fun () -> ());
  Alcotest.(check (list string)) "start order" [ "a"; "b"; "c"; "d" ]
    (names_of (Obs.Span.events ()));
  match Obs.Span.forest () with
  | [ ta; td ] ->
    Alcotest.(check (list (pair string int)))
      "a's subtree" [ ("a", 0); ("b", 1); ("c", 1) ] (Obs.Span.flatten ta);
    Alcotest.(check (list (pair string int))) "d is its own root" [ ("d", 0) ]
      (Obs.Span.flatten td);
    Alcotest.(check int) "no orphans" 0 (List.length (Obs.Span.orphans ()))
  | f -> Alcotest.failf "expected two roots, got %d" (List.length f)

let test_span_exception_safety () =
  with_spans @@ fun () ->
  (try Obs.Span.with_ "boom" (fun () -> failwith "expected") with Failure _ -> ());
  Obs.Span.with_ "after" (fun () -> ());
  match Obs.Span.events () with
  | [ boom; after ] ->
    Alcotest.(check string) "raising span recorded" "boom" boom.Obs.Span.name;
    Alcotest.(check int) "stack popped: next span is a root" (-1) after.Obs.Span.parent;
    Alcotest.(check int) "next span back at depth 0" 0 after.Obs.Span.depth
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_ring_eviction () =
  with_spans @@ fun () ->
  let extra = 10 in
  for i = 1 to Obs.Span.capacity + extra do
    Obs.Span.with_ (if i <= extra then "old" else "new") (fun () -> ())
  done;
  Alcotest.(check int) "dropped counts evictions" extra (Obs.Span.dropped ());
  let evs = Obs.Span.events () in
  Alcotest.(check int) "ring holds exactly capacity" Obs.Span.capacity (List.length evs);
  Alcotest.(check bool) "oldest events were the ones evicted" false
    (List.exists (fun (e : Obs.Span.event) -> e.Obs.Span.name = "old") evs)

(* -- Pool.size -- *)

let test_pool_size () =
  with_jobs 3 (fun () ->
      Alcotest.(check int) "size = configured jobs outside tasks" 3 (Util.Pool.size ());
      let inside = Util.Pool.parallel_map (fun _ -> Util.Pool.size ()) (Array.init 8 Fun.id) in
      Array.iter
        (Alcotest.(check int) "size = 1 inside a pool task (nested regions run serial)" 1)
        inside);
  with_jobs 1 (fun () -> Alcotest.(check int) "serial pool" 1 (Util.Pool.size ()))

(* -- Pipeline.analyze span tree -- *)

(* Tiny models, spans off during training so only [analyze] is recorded.
   No scaleout model: its [suggest] span would otherwise appear too. *)
let models =
  lazy
    (Obs.Span.set_enabled false;
     Clara.Pipeline.train ~quick:true ~with_scaleout:false ())

let spec = { Workload.default with Workload.n_packets = 200 }

(* The exact preorder (name, relative depth) walk of one analyze call on a
   stateful NF.  This is the structural contract: every pipeline stage
   shows up, properly nested, in deterministic order. *)
let expected_analyze_shape =
  [ ("pipeline.analyze", 0);
    ("prepare", 1);
    ("lower", 2);
    ("vocab.encode", 2);
    ("predict", 1);
    ("prepare", 2);
    ("lower", 3);
    ("vocab.encode", 3);
    ("algo.detect", 1);
    ("nic.port", 1);
    ("placement.solve", 1);
    ("coalesce.suggest", 1);
    (* coalescing sweeps k = 1..3 cluster counts *)
    ("kmeans.fit", 2);
    ("kmeans.fit", 2);
    ("kmeans.fit", 2) ]

let analyze_shape ~jobs () =
  let m = Lazy.force models in
  let elt = Nf_lang.Corpus.find "Mazu-NAT" in
  with_jobs jobs @@ fun () ->
  with_spans @@ fun () ->
  ignore (Clara.Pipeline.analyze m elt spec);
  Alcotest.(check int) "no orphans" 0 (List.length (Obs.Span.orphans ()));
  match
    List.filter
      (fun t -> t.Obs.Span.span.Obs.Span.name = "pipeline.analyze")
      (Obs.Span.forest ())
  with
  | [ tree ] -> Obs.Span.flatten tree
  | l -> Alcotest.failf "expected one pipeline.analyze root, got %d" (List.length l)

let test_analyze_span_tree () =
  let serial = analyze_shape ~jobs:1 () in
  Alcotest.(check (list (pair string int)))
    "every stage present, nested, in order (jobs=1)" expected_analyze_shape serial;
  let parallel = analyze_shape ~jobs:4 () in
  Alcotest.(check (list (pair string int)))
    "identical structure under a 4-domain pool" expected_analyze_shape parallel

(* -- Prometheus exposition golden test -- *)

(* Parse one sample line back: "name value" or "name{labels} value". *)
let parse_sample line =
  match String.rindex_opt line ' ' with
  | None -> None
  | Some i ->
    let name = String.sub line 0 i in
    let v = float_of_string_opt (String.sub line (i + 1) (String.length line - i - 1)) in
    Option.map (fun v -> (name, v)) v

let samples_of text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.filter_map parse_sample

let test_exposition () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter ~help:"test counter" "test_obs_requests_total" in
  let lc = Obs.Metrics.counter ~labels:[ ("mode", "x") ] "test_obs_labeled_total" in
  let g = Obs.Metrics.gauge ~help:"test gauge" "test_obs_depth" in
  let h = Obs.Metrics.histogram ~help:"test histogram" "test_obs_latency_seconds" in
  Obs.Metrics.inc c;
  let after_one = Obs.Metrics.counter_value c in
  Obs.Metrics.add c 2;
  Obs.Metrics.addf c 2.5;
  Alcotest.(check bool) "counter is monotone" true (Obs.Metrics.counter_value c > after_one);
  Alcotest.(check (float 1e-9)) "counter accumulates exactly" 5.5 (Obs.Metrics.counter_value c);
  (match Obs.Metrics.add c (-1) with
  | () -> Alcotest.fail "negative counter add must be rejected"
  | exception Invalid_argument _ -> ());
  Obs.Metrics.inc lc;
  Obs.Metrics.set_gauge g 7.0;
  Obs.Metrics.add_gauge g (-3.0);
  let obs_values = [ 0.0003; 0.002; 0.07; 1.0; 100.0 ] in
  List.iter (Obs.Metrics.observe h) obs_values;
  let text = Obs.Metrics.exposition () in
  let samples = samples_of text in
  let value name =
    match List.assoc_opt name samples with
    | Some v -> v
    | None -> Alcotest.failf "exposition is missing %s" name
  in
  Alcotest.(check (float 1e-9)) "counter sample" 5.5 (value "test_obs_requests_total");
  Alcotest.(check (float 1e-9)) "labeled counter sample" 1.0
    (value {|test_obs_labeled_total{mode="x"}|});
  Alcotest.(check (float 1e-9)) "gauge sample" 4.0 (value "test_obs_depth");
  let contains sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "HELP line present" true (contains "# HELP test_obs_requests_total" text);
  Alcotest.(check bool) "counter TYPE line" true
    (contains "# TYPE test_obs_requests_total counter" text);
  Alcotest.(check bool) "histogram TYPE line" true
    (contains "# TYPE test_obs_latency_seconds histogram" text);
  (* histogram consistency: cumulative buckets are monotone, the +Inf
     bucket equals _count, and _sum matches what was observed *)
  let buckets =
    List.filter (fun (n, _) -> contains "test_obs_latency_seconds_bucket{" n) samples
  in
  Alcotest.(check bool) "buckets emitted" true (List.length buckets > 1);
  let cumulative = List.map snd buckets in
  List.iteri
    (fun i v ->
      if i > 0 then
        Alcotest.(check bool) "cumulative buckets never decrease" true
          (v >= List.nth cumulative (i - 1)))
    cumulative;
  let count = value "test_obs_latency_seconds_count" in
  Alcotest.(check (float 1e-9)) "+Inf bucket equals count"
    count
    (value {|test_obs_latency_seconds_bucket{le="+Inf"}|});
  Alcotest.(check (float 1e-9)) "count matches observations"
    (float_of_int (List.length obs_values))
    count;
  Alcotest.(check (float 1e-6)) "sum matches observations"
    (List.fold_left ( +. ) 0.0 obs_values)
    (value "test_obs_latency_seconds_sum");
  Alcotest.(check int) "histogram_count agrees" (List.length obs_values)
    (Obs.Metrics.histogram_count h);
  (* [time] observes even when the body raises *)
  (try Obs.Metrics.time h (fun () -> failwith "expected") with Failure _ -> ());
  Alcotest.(check int) "time observes on exception" (List.length obs_values + 1)
    (Obs.Metrics.histogram_count h)

(* -- JSON exports parse -- *)

let test_json_exports () =
  (with_spans @@ fun () ->
   Obs.Span.with_ "outer" (fun () -> Obs.Span.with_ {|in "ner"|} (fun () -> ()));
   let txt = Obs.Span.to_chrome_json () in
   match Serve.Jsonl.of_string txt with
   | Error msg -> Alcotest.failf "chrome trace is not valid JSON: %s" msg
   | Ok j -> (
     match Serve.Jsonl.member "traceEvents" j with
     | Some (Serve.Jsonl.Arr evs) ->
       Alcotest.(check int) "one trace event per span" 2 (List.length evs);
       List.iter
         (fun e ->
           Alcotest.(check (option string)) "complete events" (Some "X")
             (Serve.Jsonl.str_member "ph" e))
         evs
     | _ -> Alcotest.fail "traceEvents array missing"));
  match Serve.Jsonl.of_string (Obs.Metrics.to_json_string ()) with
  | Error msg -> Alcotest.failf "metrics dump is not valid JSON: %s" msg
  | Ok j -> (
    match Serve.Jsonl.member "metrics" j with
    | Some (Serve.Jsonl.Arr _) -> ()
    | _ -> Alcotest.fail "metrics array missing")

let () =
  Alcotest.run "obs"
    [ ( "span",
        [ Alcotest.test_case "disabled records nothing" `Quick test_span_disabled;
          Alcotest.test_case "nesting and forest" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
          Alcotest.test_case "ring eviction" `Quick test_span_ring_eviction ] );
      ("pool", [ Alcotest.test_case "Pool.size" `Quick test_pool_size ]);
      ( "pipeline",
        [ Alcotest.test_case "analyze span tree is stable" `Slow test_analyze_span_tree ] );
      ( "metrics",
        [ Alcotest.test_case "exposition golden" `Quick test_exposition;
          Alcotest.test_case "JSON exports parse" `Quick test_json_exports ] ) ]
