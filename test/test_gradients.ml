(** Numerical gradient checks for the hand-written backpropagation.

    For tiny models, every analytic gradient from BPTT / conv backprop is
    compared against a central finite difference of the loss.  This is the
    strongest correctness evidence for the from-scratch training code the
    whole Figure-8 evaluation rests on. *)

open Mlkit

let epsilon = 1e-5
let tolerance = 1e-3

(** Relative error robust to tiny magnitudes. *)
let rel_err a b = abs_float (a -. b) /. max 1.0 (max (abs_float a) (abs_float b))

(* -- LSTM -- *)

let lstm_loss (m : Lstm.t) seq target =
  let out = (Lstm.predict m seq).(0) /. m.Lstm.y_scale in
  let d = out -. target in
  d *. d

let check_param_gradients name (params : Nn.param list) analytic_of numeric_of =
  List.iteri
    (fun pi (p : Nn.param) ->
      let rows = Nn.rows p in
      let cols = Nn.cols p in
      (* probe a deterministic subset of coordinates *)
      for k = 0 to min 3 ((rows * cols) - 1) do
        let i = k mod rows and j = (k * 7) mod cols in
        let analytic = analytic_of p in
        let a = La.Flat.get analytic i j in
        let saved = La.Flat.get p.Nn.w i j in
        La.Flat.set p.Nn.w i j (saved +. epsilon);
        let up = numeric_of () in
        La.Flat.set p.Nn.w i j (saved -. epsilon);
        let down = numeric_of () in
        La.Flat.set p.Nn.w i j saved;
        let numeric = (up -. down) /. (2.0 *. epsilon) in
        Alcotest.(check bool)
          (Printf.sprintf "%s param %d coord (%d,%d): %.6f vs %.6f" name pi i j a numeric)
          true
          (rel_err a numeric < tolerance)
      done)
    params

let test_lstm_bptt_matches_finite_differences () =
  let m = Lstm.create ~hidden:5 ~fc_dim:4 ~vocab:7 31 in
  m.Lstm.y_scale <- 1.0;
  let seq = [| 1; 3; 0; 6; 2 |] in
  let target = 2.5 in
  (* analytic gradients *)
  List.iter Nn.zero_grad (Lstm.params m);
  ignore (Lstm.backward m seq [| target |]);
  check_param_gradients "lstm" (Lstm.params m)
    (fun p -> p.Nn.g)
    (fun () -> lstm_loss m seq target)

let test_lstm_gradients_nonzero () =
  let m = Lstm.create ~hidden:4 ~vocab:5 33 in
  m.Lstm.y_scale <- 1.0;
  List.iter Nn.zero_grad (Lstm.params m);
  ignore (Lstm.backward m [| 0; 1; 2 |] [| 10.0 |]);
  let total =
    List.fold_left
      (fun acc (p : Nn.param) ->
        Array.fold_left (fun acc g -> acc +. abs_float g) acc p.Nn.g.La.Flat.a)
      0.0 (Lstm.params m)
  in
  Alcotest.(check bool) "gradient mass flows" true (total > 1e-3)

(* -- CNN -- *)

let cnn_loss (m : Cnn.t) seq target =
  let out = (Cnn.predict m seq).(0) /. m.Cnn.y_scale in
  let d = out -. target in
  d *. d

let test_cnn_backprop_matches_finite_differences () =
  let m = Cnn.create ~window:2 ~filters:3 ~vocab:5 37 in
  m.Cnn.y_scale <- 1.0;
  let seq = [| 0; 2; 4; 1; 3 |] in
  let target = 1.5 in
  List.iter Nn.zero_grad (Cnn.params m);
  ignore (Cnn.backward m seq [| target |]);
  (* note: max-pool winners may change under perturbation; the tolerance
     holds because epsilon is far below the winner margins at init *)
  check_param_gradients "cnn" (Cnn.params m)
    (fun p -> p.Nn.g)
    (fun () -> cnn_loss m seq target)

(* -- MLP -- *)

let mlp_loss net x target =
  let out = (Nn.mlp_forward net x |> snd).(0) in
  let d = out -. target in
  d *. d

let test_mlp_backprop_matches_finite_differences () =
  let net = Nn.mlp_create (Util.Rng.create 41) ~in_dim:3 ~hidden:[ 4 ] ~out_dim:1 in
  let x = [| 0.3; -0.7; 1.1 |] in
  let target = 0.9 in
  List.iter Nn.zero_grad net.Nn.layers;
  let caches, out = Nn.mlp_forward net x in
  Nn.mlp_backward net caches [| 2.0 *. (out.(0) -. target) |];
  check_param_gradients "mlp" net.Nn.layers
    (fun p -> p.Nn.g)
    (fun () -> mlp_loss net x target)

let () =
  Alcotest.run "gradients"
    [ ( "lstm",
        [ Alcotest.test_case "BPTT vs finite differences" `Quick
            test_lstm_bptt_matches_finite_differences;
          Alcotest.test_case "gradient mass" `Quick test_lstm_gradients_nonzero ] );
      ( "cnn",
        [ Alcotest.test_case "conv backprop vs finite differences" `Quick
            test_cnn_backprop_matches_finite_differences ] );
      ( "mlp",
        [ Alcotest.test_case "dense backprop vs finite differences" `Quick
            test_mlp_backprop_matches_finite_differences ] ) ]
