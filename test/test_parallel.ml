(** Tests for the Util.Pool domain pool and for serial/parallel
    bit-equivalence of every parallelized hot path: cross-validation,
    GBDT/forest training, dataset synthesis, LSTM minibatch fitting and
    workload generation.  Run by dune under both CLARA_JOBS=1 and
    CLARA_JOBS=4 (the [jobs] calls below override the environment where a
    test needs a specific setting). *)

let with_jobs n f =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Util.Pool.set_jobs saved) f

(** Run [f] under 1 job and under 4, return both results. *)
let serial_vs_parallel f = (with_jobs 1 f, with_jobs 4 f)

let check_float_array name a b =
  Alcotest.(check (array (float 0.0))) name a b

(* -- pool correctness -- *)

let test_map_matches_serial () =
  let input = Array.init 1003 (fun i -> i) in
  let expected = Array.map (fun x -> (x * x) + 1) input in
  Alcotest.(check (array int)) "jobs=1" expected (with_jobs 1 (fun () -> Util.Pool.parallel_map (fun x -> (x * x) + 1) input));
  Alcotest.(check (array int)) "jobs=4" expected (with_jobs 4 (fun () -> Util.Pool.parallel_map (fun x -> (x * x) + 1) input));
  Alcotest.(check (array int)) "empty" [||] (Util.Pool.parallel_map (fun x -> x) [||])

let test_chunked_ranges_cover () =
  List.iter
    (fun (chunk, n) ->
      let ranges = Util.Pool.chunked_ranges ?chunk n in
      let covered = Array.make n false in
      Array.iter
        (fun (lo, hi) ->
          Alcotest.(check bool) "non-empty chunk" true (lo < hi);
          for i = lo to hi - 1 do
            Alcotest.(check bool) "no overlap" false covered.(i);
            covered.(i) <- true
          done)
        ranges;
      Alcotest.(check bool) "full cover" true (Array.for_all Fun.id covered))
    [ (None, 1); (None, 64); (None, 65); (None, 1000); (Some 7, 100); (Some 1000, 10) ]

let test_parallel_for_order_independent () =
  let n = 500 in
  let out = Array.make n 0 in
  with_jobs 4 (fun () -> Util.Pool.parallel_for 0 n (fun i -> out.(i) <- 3 * i));
  Alcotest.(check (array int)) "every index written" (Array.init n (fun i -> 3 * i)) out

let test_reduce_deterministic () =
  (* float sums: chunked ordered reduction must not depend on the job count *)
  let f i = 1.0 /. float_of_int (i + 1) in
  let a, b = serial_vs_parallel (fun () -> Util.Pool.parallel_reduce ~combine:( +. ) f 10_000) in
  Alcotest.(check (float 0.0)) "bit-identical harmonic sum" a b;
  let c = with_jobs 4 (fun () -> Util.Pool.parallel_reduce ~chunk:17 ~combine:( +. ) f 10_000) in
  let d = with_jobs 1 (fun () -> Util.Pool.parallel_reduce ~chunk:17 ~combine:( +. ) f 10_000) in
  Alcotest.(check (float 0.0)) "custom chunk bit-identical" c d

let test_exceptions_propagate () =
  with_jobs 4 (fun () ->
      Alcotest.check_raises "task exception re-raised" (Failure "boom") (fun () ->
          Util.Pool.parallel_for 0 256 (fun i -> if i = 101 then failwith "boom"));
      (* the pool survives a failed region *)
      let out = Util.Pool.parallel_map (fun x -> x + 1) (Array.init 64 Fun.id) in
      Alcotest.(check int) "pool alive after failure" 64 out.(63))

let test_nested_use_safe () =
  let result =
    with_jobs 4 (fun () ->
        Util.Pool.parallel_map
          (fun i ->
            Array.fold_left ( + ) 0
              (Util.Pool.parallel_map (fun j -> (10 * i) + j) (Array.init 20 Fun.id)))
          (Array.init 30 Fun.id))
  in
  Alcotest.(check (array int)) "nested regions compute serially but correctly"
    (Array.init 30 (fun i -> (200 * i) + 190))
    result

let test_jobs_env_fallback () =
  (* jobs () respects set_jobs; serial fallback executes on the caller *)
  with_jobs 1 (fun () ->
      Alcotest.(check int) "set_jobs visible" 1 (Util.Pool.jobs ());
      let self = Domain.self () in
      Util.Pool.parallel_for 0 8 (fun _ ->
          Alcotest.(check bool) "serial fallback stays on caller domain" true
            (Domain.self () = self)));
  Alcotest.check_raises "set_jobs rejects 0" (Invalid_argument "Pool.set_jobs: need >= 1 job")
    (fun () -> Util.Pool.set_jobs 0)

(* -- serial/parallel bit-equivalence of the wired hot paths -- *)

let test_kfold_stable () =
  let folds = Mlkit.Crossval.kfold ~seed:11 ~k:4 23 in
  let folds' = Mlkit.Crossval.kfold ~seed:11 ~k:4 23 in
  Alcotest.(check int) "k folds" 4 (List.length folds);
  List.iter2
    (fun (tr, te) (tr', te') ->
      Alcotest.(check (array int)) "train stable" tr tr';
      Alcotest.(check (array int)) "test stable" te te')
    folds folds';
  (* every index appears exactly once per fold partition, test disjoint train *)
  List.iter
    (fun (tr, te) ->
      let all = Array.append tr te in
      Array.sort compare all;
      Alcotest.(check (array int)) "partition of 0..22" (Array.init 23 Fun.id) all)
    folds;
  (* within-fold order is the shuffled-position order: fold f's test set is
     idx at positions f, f+k, f+2k, ... — recompute the reference here *)
  let rng = Util.Rng.create 11 in
  let idx = Array.init 23 Fun.id in
  Util.Rng.shuffle rng idx;
  List.iteri
    (fun fold (_, te) ->
      let expected =
        Array.of_list
          (List.filter_map
             (fun pos -> if pos mod 4 = fold then Some idx.(pos) else None)
             (List.init 23 Fun.id))
      in
      Alcotest.(check (array int)) "test order = position order" expected te)
    folds

let test_crossval_equivalent () =
  let xs = Array.init 120 (fun i -> [| float_of_int (i mod 11); float_of_int (i mod 5); float_of_int (i mod 3) |]) in
  let ys = Array.mapi (fun i x -> x.(0) +. (2.0 *. x.(1)) -. x.(2) +. float_of_int (i mod 2)) xs in
  let run () =
    Mlkit.Crossval.cv_regression ~k:5
      ~fit:(fun xs ys -> Mlkit.Tree.gbdt_fit ~n_stages:15 xs ys)
      ~predict:Mlkit.Tree.gbdt_predict xs ys
  in
  let (m1, s1), (m4, s4) = serial_vs_parallel run in
  Alcotest.(check (float 0.0)) "cv mean bit-identical" m1 m4;
  Alcotest.(check (float 0.0)) "cv stddev bit-identical" s1 s4

let test_gbdt_equivalent () =
  let xs = Array.init 300 (fun i -> Array.init 6 (fun d -> float_of_int ((i * (d + 2)) mod 23))) in
  let ys = Array.map (fun x -> x.(0) +. (x.(1) *. x.(2)) -. (3.0 *. x.(4))) xs in
  let run () =
    let g = Mlkit.Tree.gbdt_fit ~n_stages:25 xs ys in
    Array.map (Mlkit.Tree.gbdt_predict g) xs
  in
  let a, b = serial_vs_parallel run in
  check_float_array "gbdt predictions bit-identical" a b

let test_forest_equivalent () =
  let xs = Array.init 150 (fun i -> Array.init 5 (fun d -> float_of_int ((i + d) mod 13))) in
  let ys = Array.map (fun x -> (2.0 *. x.(0)) -. x.(3)) xs in
  let run () =
    let f = Mlkit.Tree.forest_fit ~n_trees:8 xs ys in
    Array.map (Mlkit.Tree.forest_predict f) xs
  in
  let a, b = serial_vs_parallel run in
  check_float_array "forest predictions bit-identical" a b

let test_synthesize_dataset_equivalent () =
  let run () = Clara.Predictor.synthesize_dataset ~n:12 () in
  let a, b = serial_vs_parallel run in
  Alcotest.(check int) "vocab size" (Clara.Vocab.size a.Clara.Predictor.vocab)
    (Clara.Vocab.size b.Clara.Predictor.vocab);
  Alcotest.(check int) "example count" (Array.length a.Clara.Predictor.examples)
    (Array.length b.Clara.Predictor.examples);
  Array.iter2
    (fun (ea : Clara.Predictor.example) (eb : Clara.Predictor.example) ->
      Alcotest.(check (array int)) "tokens" ea.Clara.Predictor.tokens eb.Clara.Predictor.tokens;
      Alcotest.(check (float 0.0)) "compute label" ea.Clara.Predictor.nic_compute eb.Clara.Predictor.nic_compute;
      Alcotest.(check (float 0.0)) "mem label" ea.Clara.Predictor.nic_mem eb.Clara.Predictor.nic_mem;
      Alcotest.(check (float 0.0)) "ir mem" ea.Clara.Predictor.ir_mem eb.Clara.Predictor.ir_mem)
    a.Clara.Predictor.examples b.Clara.Predictor.examples

let test_lstm_batch_equivalent () =
  let rng = Util.Rng.create 5 in
  let data =
    Array.init 40 (fun _ ->
        ( Array.init (4 + Util.Rng.int rng 12) (fun _ -> Util.Rng.int rng 32),
          [| Util.Rng.float rng *. 25.0 |] ))
  in
  let probe = Array.init 10 (fun i -> [| i; i + 1; (2 * i) mod 32 |]) in
  let run () =
    let m = Mlkit.Lstm.create ~vocab:32 7 in
    Mlkit.Lstm.fit ~epochs:3 ~batch:4 m data;
    Array.concat (Array.to_list (Array.map (Mlkit.Lstm.predict m) probe))
  in
  let a, b = serial_vs_parallel run in
  check_float_array "batched LSTM weights bit-identical" a b

let test_predictor_train_equivalent () =
  let run () =
    let ds = Clara.Predictor.synthesize_dataset ~n:8 () in
    let m = Clara.Predictor.train ~epochs:2 ds in
    List.map (fun (_, c, _) -> c)
      (Clara.Predictor.predict_element m (Nf_lang.Corpus.find "tcpack"))
  in
  let a, b = serial_vs_parallel run in
  Alcotest.(check (list (float 0.0))) "end-to-end predictor bit-identical" a b

let test_workload_equivalent () =
  let spec = { Workload.large_flows with Workload.n_packets = 700; Workload.payload_len = 32 } in
  let fingerprint p =
    ( Nf_lang.Packet.flow_key p,
      p.Nf_lang.Packet.ip_id,
      p.Nf_lang.Packet.tcp_seq,
      p.Nf_lang.Packet.tcp_flags,
      Bytes.to_string p.Nf_lang.Packet.payload )
  in
  let run () = List.map fingerprint (Workload.generate spec) in
  let a, b = serial_vs_parallel run in
  Alcotest.(check bool) "packet stream bit-identical" true (a = b);
  Alcotest.(check int) "expected packet count" 700 (List.length a)

let test_scaleout_samples_equivalent () =
  let specs =
    [ { Workload.large_flows with Workload.n_packets = 60 };
      { Workload.default with Workload.n_packets = 60; Workload.payload_len = 120 } ]
  in
  let run () =
    List.map
      (fun (s : Clara.Scaleout.sample) -> (Array.to_list s.Clara.Scaleout.x, s.Clara.Scaleout.optimal))
      (Clara.Scaleout.training_samples ~n_programs:4 ~specs ())
  in
  let a, b = serial_vs_parallel run in
  Alcotest.(check bool) "scale-out samples bit-identical" true (a = b);
  Alcotest.(check bool) "samples non-empty" true (a <> [])

let test_bundle_bytes_equivalent () =
  (* A persisted bundle must not depend on the job count: same manifest,
     same file set, byte-identical frames.  (Scale-out is skipped here —
     its training is the dominant cost and its GBDT determinism is already
     covered above.) *)
  let manifest =
    { Persist.Bundle.seed = 501; epochs = 4;
      corpus_hash = Persist.Bundle.corpus_hash ();
      built_at = "1970-01-01T00:00:00Z" }
  in
  let run () =
    Persist.Bundle.encode manifest
      (Clara.Pipeline.train ~quick:true ~with_scaleout:false ~with_colocation:true ())
  in
  let a, b = serial_vs_parallel run in
  Alcotest.(check (list string)) "same artifact files" (List.map fst a) (List.map fst b);
  List.iter2
    (fun (file, bytes_a) (_, bytes_b) ->
      Alcotest.(check bool) (file ^ " byte-identical across job counts") true (bytes_a = bytes_b))
    a b;
  Alcotest.(check bool) "bundle includes the colocation ranker" true
    (List.mem_assoc "colocation.clara" a)

(* -- optimized kernels vs retained references: the bench gate
   (`bench/main.exe parallel`) measures speedup against these pinned
   baselines, so their bit-equivalence is what makes the speedups
   meaningful.  Each test runs under whatever CLARA_JOBS the dune rule
   set (1 and 4), so the flat kernels are checked on both schedules. -- *)

let test_flat_gemm_matches_naive () =
  let rng = Util.Rng.create 19 in
  List.iter
    (fun (m, k, n) ->
      let a = Mlkit.La.randn_mat rng m k and b = Mlkit.La.randn_mat rng k n in
      let fc = Mlkit.La.Flat.create m n in
      Mlkit.La.Flat.gemm ~a:(Mlkit.La.Flat.of_rows a) ~b:(Mlkit.La.Flat.of_rows b) fc;
      let expected = Mlkit.Naive.matmul a b in
      Array.iteri
        (fun i row -> check_float_array (Printf.sprintf "row %d of %dx%dx%d" i m k n) row (Mlkit.La.Flat.to_rows fc).(i))
        expected)
    (* odd sizes exercise the tile and unroll remainders *)
    [ (1, 1, 1); (3, 5, 2); (17, 23, 9); (48, 48, 48); (50, 49, 51) ];
  Alcotest.check_raises "dimension mismatch rejected"
    (Invalid_argument "La.Flat.gemm: dimension mismatch") (fun () ->
      Mlkit.La.Flat.gemm
        ~a:(Mlkit.La.Flat.create 2 3)
        ~b:(Mlkit.La.Flat.create 4 2)
        (Mlkit.La.Flat.create 2 2))

let test_flat_lstm_matches_naive () =
  let rng = Util.Rng.create 23 in
  let data =
    Array.init 24 (fun _ ->
        ( Array.init (3 + Util.Rng.int rng 9) (fun _ -> Util.Rng.int rng 20),
          [| Util.Rng.float rng *. 30.0 |] ))
  in
  let probe = Array.init 8 (fun i -> [| i; (i + 7) mod 20; (3 * i) mod 20 |]) in
  let fast =
    let m = Mlkit.Lstm.create ~vocab:20 9 in
    Mlkit.Lstm.fit ~epochs:2 ~batch:4 m data;
    Array.map (Mlkit.Lstm.predict m) probe
  in
  let naive =
    let m = Mlkit.Naive.lstm_create ~vocab:20 9 in
    Mlkit.Naive.lstm_fit ~epochs:2 ~batch:4 m data;
    Array.map (Mlkit.Naive.lstm_predict m) probe
  in
  Array.iteri
    (fun i out -> check_float_array (Printf.sprintf "probe %d predictions" i) naive.(i) out)
    fast

let test_flat_gbdt_matches_naive () =
  let xs = Array.init 180 (fun i -> Array.init 7 (fun d -> float_of_int ((i * (d + 5)) mod 19))) in
  let ys = Array.map (fun x -> x.(0) +. (x.(2) *. x.(5)) -. (2.0 *. x.(6))) xs in
  let fast = Mlkit.Tree.gbdt_fit ~n_stages:18 xs ys in
  let naive = Mlkit.Naive.gbdt_fit ~n_stages:18 xs ys in
  check_float_array "gbdt predictions match the re-sorting reference"
    (Array.map (Mlkit.Tree.gbdt_predict naive) xs)
    (Array.map (Mlkit.Tree.gbdt_predict fast) xs)

let test_synthesize_matches_reference () =
  let a = Clara.Predictor.synthesize_dataset ~n:6 () in
  let b = Clara.Predictor.synthesize_dataset_reference ~n:6 () in
  Alcotest.(check int) "vocab size" (Clara.Vocab.size b.Clara.Predictor.vocab)
    (Clara.Vocab.size a.Clara.Predictor.vocab);
  Alcotest.(check bool) "examples structurally identical" true
    (a.Clara.Predictor.examples = b.Clara.Predictor.examples);
  Alcotest.(check bool) "dataset non-empty" true (Array.length a.Clara.Predictor.examples > 0)

let test_workload_matches_reference () =
  List.iter
    (fun spec ->
      let fingerprint (p : Nf_lang.Packet.t) =
        ( Nf_lang.Packet.flow_key p, p.Nf_lang.Packet.ip_id, p.Nf_lang.Packet.tcp_seq,
          p.Nf_lang.Packet.tcp_flags, Bytes.to_string p.Nf_lang.Packet.payload )
      in
      let a = List.map fingerprint (Workload.generate spec) in
      let b = List.map fingerprint (Workload.generate_reference spec) in
      Alcotest.(check bool) (spec.Workload.name ^ " identical to reference") true (a = b))
    [ { Workload.default with Workload.n_packets = 400 };
      { Workload.large_flows with Workload.n_packets = 400 };
      { Workload.small_flows with Workload.n_packets = 200 } ]

let test_scaleout_matches_reference () =
  let specs = [ { Workload.large_flows with Workload.n_packets = 50 } ] in
  let a = Clara.Scaleout.training_samples ~n_programs:3 ~specs () in
  let b = Clara.Scaleout.training_samples_reference ~n_programs:3 ~specs () in
  Alcotest.(check bool) "samples identical to reference" true (a = b);
  Alcotest.(check bool) "samples non-empty" true (a <> [])

(* -- cost-aware chunking: the serial-fallback policy itself -- *)

let test_cost_cutoff_policy () =
  (* no cost hint: never forced serial *)
  Alcotest.(check bool) "no hint" false (Util.Pool.too_small_for_parallelism 1_000_000);
  (* 100 items at 0.5 us = 50 us of work: serial *)
  Alcotest.(check bool) "tiny region serial" true
    (Util.Pool.too_small_for_parallelism ~cost:0.5 100);
  (* 1 ms of estimated work is the (exclusive) boundary *)
  Alcotest.(check bool) "at cutoff goes parallel" false
    (Util.Pool.too_small_for_parallelism ~cost:10.0 100);
  Alcotest.(check bool) "just below cutoff stays serial" true
    (Util.Pool.too_small_for_parallelism ~cost:9.99 100);
  (* big regions with per-item hints parallelize *)
  Alcotest.(check bool) "big region parallel" false
    (Util.Pool.too_small_for_parallelism ~cost:0.5 100_000)

let test_cost_hint_preserves_results () =
  (* the hint is a scheduling decision only: same results with and
     without it, serial or parallel, including through parallel_map_list *)
  let input = Array.init 2048 (fun i -> i) in
  let expected = Array.map (fun x -> (7 * x) mod 1001) input in
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          Alcotest.(check (array int))
            (Printf.sprintf "cheap hint jobs=%d" jobs)
            expected
            (Util.Pool.parallel_map ~cost:0.01 (fun x -> (7 * x) mod 1001) input);
          Alcotest.(check (array int))
            (Printf.sprintf "expensive hint jobs=%d" jobs)
            expected
            (Util.Pool.parallel_map ~cost:500.0 (fun x -> (7 * x) mod 1001) input);
          Alcotest.(check (list int))
            (Printf.sprintf "list map hint jobs=%d" jobs)
            (Array.to_list expected)
            (Util.Pool.parallel_map_list ~cost:0.01
               (fun x -> (7 * x) mod 1001)
               (Array.to_list input))))
    [ 1; 4 ]

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
          Alcotest.test_case "chunked ranges cover" `Quick test_chunked_ranges_cover;
          Alcotest.test_case "parallel_for writes all" `Quick test_parallel_for_order_independent;
          Alcotest.test_case "ordered reduce deterministic" `Quick test_reduce_deterministic;
          Alcotest.test_case "exceptions propagate" `Quick test_exceptions_propagate;
          Alcotest.test_case "nested use safe" `Quick test_nested_use_safe;
          Alcotest.test_case "serial fallback" `Quick test_jobs_env_fallback ] );
      ( "equivalence",
        [ Alcotest.test_case "kfold stable order" `Quick test_kfold_stable;
          Alcotest.test_case "crossval" `Quick test_crossval_equivalent;
          Alcotest.test_case "gbdt training" `Quick test_gbdt_equivalent;
          Alcotest.test_case "random forest" `Quick test_forest_equivalent;
          Alcotest.test_case "dataset synthesis" `Slow test_synthesize_dataset_equivalent;
          Alcotest.test_case "lstm minibatch fit" `Quick test_lstm_batch_equivalent;
          Alcotest.test_case "predictor end-to-end" `Slow test_predictor_train_equivalent;
          Alcotest.test_case "workload generation" `Quick test_workload_equivalent;
          Alcotest.test_case "scale-out samples" `Slow test_scaleout_samples_equivalent;
          Alcotest.test_case "persisted bundle bytes" `Slow test_bundle_bytes_equivalent ] );
      ( "reference",
        [ Alcotest.test_case "flat gemm vs naive" `Quick test_flat_gemm_matches_naive;
          Alcotest.test_case "flat lstm vs naive" `Quick test_flat_lstm_matches_naive;
          Alcotest.test_case "flat gbdt vs naive" `Quick test_flat_gbdt_matches_naive;
          Alcotest.test_case "synthesize vs reference" `Slow test_synthesize_matches_reference;
          Alcotest.test_case "workload vs reference" `Quick test_workload_matches_reference;
          Alcotest.test_case "scale-out vs reference" `Slow test_scaleout_matches_reference ] );
      ( "chunking",
        [ Alcotest.test_case "cost cutoff policy" `Quick test_cost_cutoff_policy;
          Alcotest.test_case "cost hint preserves results" `Quick test_cost_hint_preserves_results ] ) ]
