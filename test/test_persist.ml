(** Tests for the persist artifact store: byte-exact codec round-trips,
    typed rejection of corrupt/mismatched frames, and
    predictions-identical-after-reload for a really trained predictor. *)

(* A decoded value must re-encode to the same bytes (codecs are
   canonical), so [encode . decode . encode = encode] is the round-trip
   oracle — it covers every field without a per-type equality. *)
let check_roundtrip name encode decode v =
  let bytes = encode v in
  match decode bytes with
  | Result.Error e -> Alcotest.failf "%s: decode failed: %s" name (Persist.Wire.error_to_string e)
  | Result.Ok v' -> Alcotest.(check string) (name ^ " re-encodes identically") bytes (encode v')

(* -- small synthetic components -- *)

let small_vocab () =
  let v = Clara.Vocab.create () in
  List.iter
    (fun w -> ignore (Clara.Vocab.index v w))
    [ "load"; "store"; "add"; "hash_lookup"; "send" ];
  v

let small_tree =
  { Mlkit.Tree.root =
      Mlkit.Tree.Split
        { feature = 1;
          threshold = 0.75;
          left = Mlkit.Tree.Leaf 1.5;
          right =
            Mlkit.Tree.Split
              { feature = 0; threshold = -2.0; left = Mlkit.Tree.Leaf 0.0; right = Mlkit.Tree.Leaf 9.25 } } }

let small_gbdt =
  { Mlkit.Tree.init = 3.125; shrinkage = 0.1; stages = [ small_tree; { Mlkit.Tree.root = Mlkit.Tree.Leaf 0.5 } ] }

let test_codec_roundtrips () =
  check_roundtrip "vocab" Persist.Codec.encode_vocab Persist.Codec.decode_vocab (small_vocab ());
  check_roundtrip "lstm" Persist.Codec.encode_lstm Persist.Codec.decode_lstm
    (Mlkit.Lstm.create ~hidden:6 ~vocab:16 7);
  check_roundtrip "tree" Persist.Codec.encode_tree Persist.Codec.decode_tree small_tree;
  check_roundtrip "forest" Persist.Codec.encode_forest Persist.Codec.decode_forest
    { Mlkit.Tree.trees = [ small_tree; { Mlkit.Tree.root = Mlkit.Tree.Leaf 2.0 } ] };
  check_roundtrip "gbdt" Persist.Codec.encode_gbdt Persist.Codec.decode_gbdt small_gbdt;
  check_roundtrip "svm" Persist.Codec.encode_svm Persist.Codec.decode_svm
    { Mlkit.Simple.w = [| 0.5; -1.25; 3.0 |]; b = 0.125; mu = [| 1.0; 2.0; 3.0 |]; sd = [| 1.0; 0.5; 2.0 |] };
  check_roundtrip "ranker" Persist.Codec.encode_ranker Persist.Codec.decode_ranker
    { Mlkit.Rank.model = small_gbdt };
  check_roundtrip "kmeans" Persist.Codec.encode_kmeans Persist.Codec.decode_kmeans
    { Mlkit.Simple.centroids = [| [| 0.0; 1.0 |]; [| -4.5; 2.25 |] |] }

let test_special_floats_roundtrip () =
  (* Int64-bits encoding must survive values %g-style printing would not *)
  let weird = [| Float.min_float; -0.0; 1e-310; Float.max_float; 0.1 +. 0.2 |] in
  check_roundtrip "weird floats" Persist.Codec.encode_kmeans Persist.Codec.decode_kmeans
    { Mlkit.Simple.centroids = [| weird |] }

(* -- negative tests: corrupt frames must produce typed errors, never
   crash -- *)

let expect_error name bytes check =
  match Persist.Codec.decode_vocab bytes with
  | Result.Ok _ -> Alcotest.failf "%s: corrupt frame decoded successfully" name
  | Result.Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "%s -> %s" name (Persist.Wire.error_to_string e))
      true (check e)

let flip bytes i =
  let b = Bytes.of_string bytes in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
  Bytes.to_string b

let test_corrupt_frames_rejected () =
  let good = Persist.Codec.encode_vocab (small_vocab ()) in
  expect_error "truncated payload"
    (String.sub good 0 (String.length good - 3))
    (function Persist.Wire.Truncated _ -> true | _ -> false);
  expect_error "empty file" ""
    (function Persist.Wire.Truncated _ -> true | _ -> false);
  expect_error "bad magic" (flip good 0)
    (function Persist.Wire.Bad_magic _ -> true | _ -> false);
  expect_error "wrong format version" (flip good 8)
    (function Persist.Wire.Bad_version _ -> true | _ -> false);
  expect_error "flipped payload byte" (flip good (String.length good - 1))
    (function Persist.Wire.Crc_mismatch _ -> true | _ -> false);
  expect_error "trailing garbage" (good ^ "x")
    (function Persist.Wire.Malformed _ -> true | _ -> false);
  (* decoding a frame as the wrong component *)
  (match Persist.Codec.decode_lstm good with
  | Result.Ok _ -> Alcotest.fail "vocab frame decoded as an LSTM"
  | Result.Error (Persist.Wire.Wrong_component { expected; got }) ->
    Alcotest.(check string) "expected component" Persist.Codec.lstm_tag expected;
    Alcotest.(check string) "got component" Persist.Codec.vocab_tag got
  | Result.Error e ->
    Alcotest.failf "wrong error for component mismatch: %s" (Persist.Wire.error_to_string e))

let test_manifest_roundtrip () =
  let m =
    { Persist.Bundle.seed = 501; epochs = 4; corpus_hash = "deadbeef"; built_at = "2026-01-01T00:00:00Z" }
  in
  match Persist.Bundle.decode_manifest (Persist.Bundle.encode_manifest m) with
  | Result.Ok m' -> Alcotest.(check bool) "manifest round-trips" true (m = m')
  | Result.Error e -> Alcotest.failf "manifest decode failed: %s" (Persist.Wire.error_to_string e)

(* -- trained models: predictions must be bit-identical after a disk
   round-trip -- *)

let tiny_models () =
  let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
  let predictor = Clara.Predictor.train ~epochs:1 ds in
  let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
  { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None }

let test_predictions_survive_reload () =
  let models = tiny_models () in
  let dir = Filename.temp_file "clara_test_bundle" ".d" in
  Sys.remove dir;
  let manifest =
    { Persist.Bundle.seed = 501; epochs = 1;
      corpus_hash = Persist.Bundle.corpus_hash ();
      built_at = "1970-01-01T00:00:00Z" }
  in
  Persist.Bundle.save ~dir manifest models;
  let loaded =
    match Persist.Bundle.load ~dir with
    | Result.Ok b -> b
    | Result.Error e -> Alcotest.failf "bundle load failed: %s" (Persist.Wire.error_to_string e)
  in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  Alcotest.(check bool) "manifest survives" true (loaded.Persist.Bundle.manifest = manifest);
  let elt = Nf_lang.Corpus.find "tcpack" in
  let predict m = Clara.Predictor.predict_element m.Clara.Pipeline.predictor elt in
  Alcotest.(check bool) "per-block predictions bit-identical" true
    (predict models = predict loaded.Persist.Bundle.models);
  let classify m = Clara.Algo_id.classify m.Clara.Pipeline.algo (Nf_lang.Corpus.find "cmsketch") in
  Alcotest.(check bool) "algorithm labels identical" true
    (classify models = classify loaded.Persist.Bundle.models);
  (* and the persisted form itself is canonical *)
  Alcotest.(check bool) "bundle re-encodes identically" true
    (Persist.Bundle.encode manifest models
    = Persist.Bundle.encode loaded.Persist.Bundle.manifest loaded.Persist.Bundle.models)

(* -- crash matrix: every truncation point and every flipped byte of a
   frame must decode to a typed error (or, for the length prefix, still a
   valid value is impossible — the CRC covers the payload), never raise -- *)

let test_crash_matrix () =
  let good = Persist.Codec.encode_vocab (small_vocab ()) in
  let len = String.length good in
  let decode name bytes =
    match Persist.Codec.decode_vocab bytes with
    | Result.Ok _ -> ()
    | Result.Error _ -> ()
    | exception e ->
      Alcotest.failf "%s: decode raised %s instead of a typed error" name (Printexc.to_string e)
  in
  (* every prefix is a possible torn write *)
  for i = 0 to len - 1 do
    let bytes = String.sub good 0 i in
    decode (Printf.sprintf "truncated to %d bytes" i) bytes;
    (match Persist.Codec.decode_vocab bytes with
    | Result.Ok _ -> Alcotest.failf "truncation to %d bytes decoded successfully" i
    | Result.Error _ -> ())
  done;
  (* every single-byte corruption *)
  for i = 0 to len - 1 do
    decode (Printf.sprintf "byte %d flipped" i) (flip good i)
  done;
  (* a flipped byte anywhere must be detected: magic, version, tag and
     lengths are validated, and the CRC covers the whole payload *)
  for i = 0 to len - 1 do
    match Persist.Codec.decode_vocab (flip good i) with
    | Result.Ok _ -> Alcotest.failf "flip at byte %d went undetected" i
    | Result.Error _ -> ()
  done

(* -- atomic writes: a writer killed mid-write (simulated by the armed
   [persist.write] fault) leaves the previous artifact intact -- *)

let with_fault ~point ~prob f =
  Obs.Fault.set ~point ~prob ~seed:1;
  Fun.protect ~finally:(fun () -> Obs.Fault.remove point) f

let read_file path = In_channel.with_open_bin path In_channel.input_all

let test_atomic_write_survives_kill () =
  let path = Filename.temp_file "clara_atomic" ".clara" in
  Fun.protect ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
  @@ fun () ->
  Persist.Wire.save ~component:"v1" path "first version";
  let v1 = read_file path in
  (match
     with_fault ~point:"persist.write" ~prob:1.0 (fun () ->
         Persist.Wire.save ~component:"v1" path "second version, longer than the first")
   with
  | () -> Alcotest.fail "armed persist.write must kill the writer"
  | exception Obs.Fault.Injected _ -> ());
  Alcotest.(check string) "old artifact untouched by the killed writer" v1 (read_file path);
  Alcotest.(check bool) "old artifact still loads" true
    (Persist.Wire.load ~component:"v1" path = Result.Ok "first version");
  (* the torn temp file is evidence of the crash, not part of the store *)
  Alcotest.(check bool) "torn temp file left behind" true (Sys.file_exists (path ^ ".tmp"));
  (* a healthy writer then replaces the artifact atomically *)
  Persist.Wire.save ~component:"v1" path "second version, longer than the first";
  Alcotest.(check bool) "healthy rewrite lands" true
    (Persist.Wire.load ~component:"v1" path
    = Result.Ok "second version, longer than the first")

let test_read_fault_is_typed () =
  let path = Filename.temp_file "clara_readfault" ".clara" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  Persist.Wire.save ~component:"v1" path "payload";
  with_fault ~point:"persist.read" ~prob:1.0 (fun () ->
      match Persist.Wire.load ~component:"v1" path with
      | Result.Error (Persist.Wire.Io_error _) -> ()
      | Result.Ok _ -> Alcotest.fail "armed persist.read must fail the load"
      | Result.Error e ->
        Alcotest.failf "wrong error class: %s" (Persist.Wire.error_to_string e));
  Alcotest.(check bool) "reads recover once the fault clears" true
    (Persist.Wire.load ~component:"v1" path = Result.Ok "payload")

(* -- bundle-level crash recovery -- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let fresh_bundle_dir () =
  let dir = Filename.temp_file "clara_bundle_crash" ".d" in
  Sys.remove dir;
  dir

let save_tiny dir =
  let models = tiny_models () in
  let manifest =
    { Persist.Bundle.seed = 501; epochs = 1;
      corpus_hash = Persist.Bundle.corpus_hash ();
      built_at = "1970-01-01T00:00:00Z" }
  in
  Persist.Bundle.save ~dir manifest models;
  (manifest, models)

let test_bundle_salvage_drops_optional () =
  let dir = fresh_bundle_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let manifest, _ = save_tiny dir in
  (* a torn optional component: scaleout.clara exists but is garbage *)
  Out_channel.with_open_bin (Filename.concat dir "scaleout.clara") (fun oc ->
      Out_channel.output_string oc "CLARAOBJ garbage, not a frame");
  (match Persist.Bundle.load ~dir with
  | Result.Ok _ -> Alcotest.fail "strict load must reject the corrupt component"
  | Result.Error _ -> ());
  match Persist.Bundle.load_salvage ~dir with
  | Result.Error e -> Alcotest.failf "salvage failed: %s" (Persist.Wire.error_to_string e)
  | Result.Ok (b, dropped) ->
    Alcotest.(check bool) "manifest survives" true (b.Persist.Bundle.manifest = manifest);
    Alcotest.(check bool) "corrupt scaleout dropped" true
      (b.Persist.Bundle.models.Clara.Pipeline.scaleout = None);
    (match dropped with
    | [ ("scaleout.clara", _) ] -> ()
    | _ -> Alcotest.failf "expected one dropped component, got %d" (List.length dropped))

let test_bundle_salvage_still_fails_on_required () =
  let dir = fresh_bundle_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  ignore (save_tiny dir);
  (* corrupt a REQUIRED component: salvage must refuse (caller cold-starts) *)
  let pred = Filename.concat dir "predictor.clara" in
  let bytes = read_file pred in
  Out_channel.with_open_bin pred (fun oc ->
      Out_channel.output_string oc (String.sub bytes 0 (String.length bytes / 2)));
  match Persist.Bundle.load_salvage ~dir with
  | Result.Ok _ -> Alcotest.fail "salvage must not invent a predictor"
  | Result.Error (Persist.Wire.Truncated _ | Persist.Wire.Crc_mismatch _) -> ()
  | Result.Error e -> Alcotest.failf "unexpected error class: %s" (Persist.Wire.error_to_string e)

let test_bundle_save_killed_keeps_old () =
  let dir = fresh_bundle_dir () in
  Fun.protect ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
  @@ fun () ->
  let manifest, models = save_tiny dir in
  (* a save killed at its first component write must leave the whole old
     bundle readable (components are atomic; the manifest goes last) *)
  (match
     with_fault ~point:"persist.write" ~prob:1.0 (fun () ->
         Persist.Bundle.save ~dir { manifest with Persist.Bundle.built_at = "2099-01-01" } models)
   with
  | () -> Alcotest.fail "armed persist.write must kill the save"
  | exception Obs.Fault.Injected _ -> ());
  match Persist.Bundle.load ~dir with
  | Result.Error e ->
    Alcotest.failf "old bundle unreadable after killed save: %s"
      (Persist.Wire.error_to_string e)
  | Result.Ok b ->
    Alcotest.(check bool) "old manifest intact (save never reached it)" true
      (b.Persist.Bundle.manifest = manifest)

(* -- hot-reload publish crash matrix: a publisher killed mid-write of
   the new bundle's manifest — at EVERY truncation prefix — must leave a
   serving worker on the old version with its cached replies intact.
   The manifest is written last ([Persist.Bundle.save]) and peeked first
   ([peek_version]), so a torn manifest is exactly what a crashed
   publish looks like to the reload path. -- *)

let test_hot_reload_publish_crash_matrix () =
  let dir_a = fresh_bundle_dir () and dir_b = fresh_bundle_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir_a; rm_rf dir_b) @@ fun () ->
  let manifest_a, models = save_tiny dir_a in
  let version_a = Persist.Bundle.version manifest_a in
  let manifest_b = { manifest_a with Persist.Bundle.built_at = "1999-01-01T00:00:00Z" } in
  Persist.Bundle.save ~dir:dir_b manifest_b models;
  let version_b = Persist.Bundle.version manifest_b in
  Alcotest.(check bool) "bundles version differently" true (version_a <> version_b);
  let srv = Serve.Server.create ~cache_capacity:16 ~version:version_a models in
  (* fixed id + trace_id: the server echoes both, so a warm cached reply
     is byte-for-byte reproducible *)
  let analyze =
    {|{"id":7,"trace_id":"t-fixed","cmd":"analyze","nf":"tcpack","workload":"mixed"}|}
  in
  ignore (Serve.Server.handle_request srv analyze);
  let baseline = Serve.Server.handle_request srv analyze in
  let reload_line =
    Printf.sprintf {|{"id":9,"trace_id":"t-reload","cmd":"reload","bundle":"%s","expect":"%s"}|}
      dir_b version_b
  in
  let reload_refused tag =
    (match Serve.Jsonl.of_string (Serve.Server.handle_request srv reload_line) with
    | Error e -> Alcotest.failf "%s: reload reply unparseable: %s" tag e
    | Ok r ->
      if Serve.Jsonl.member "ok" r <> Some (Serve.Jsonl.Bool false) then
        Alcotest.failf "%s: torn bundle must refuse to load" tag);
    Alcotest.(check string) (tag ^ ": old version keeps serving") version_a
      (Serve.Server.version srv);
    Alcotest.(check string) (tag ^ ": cached reply untouched") baseline
      (Serve.Server.handle_request srv analyze)
  in
  let truncate_to path bytes =
    Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes)
  in
  (* the manifest, killed at every byte *)
  let manifest_path = Filename.concat dir_b "MANIFEST.clara" in
  let whole_manifest = read_file manifest_path in
  for i = 0 to String.length whole_manifest - 1 do
    truncate_to manifest_path (String.sub whole_manifest 0 i);
    reload_refused (Printf.sprintf "manifest torn at %d" i)
  done;
  truncate_to manifest_path whole_manifest;
  (* a required component torn (sampled prefixes — the codec matrix
     already proves every prefix is rejected byte-exactly) *)
  let pred_path = Filename.concat dir_b "predictor.clara" in
  let whole_pred = read_file pred_path in
  let plen = String.length whole_pred in
  List.iter
    (fun i ->
      truncate_to pred_path (String.sub whole_pred 0 i);
      reload_refused (Printf.sprintf "predictor torn at %d" i))
    [ 0; plen / 4; plen / 2; 3 * plen / 4; plen - 1 ];
  truncate_to pred_path whole_pred;
  (* bundle healthy again: the same negotiation now lands the new version *)
  (match Serve.Jsonl.of_string (Serve.Server.handle_request srv reload_line) with
  | Error e -> Alcotest.failf "restored reload reply unparseable: %s" e
  | Ok r ->
    if Serve.Jsonl.member "ok" r <> Some (Serve.Jsonl.Bool true) then
      Alcotest.fail "restored bundle must reload cleanly");
  Alcotest.(check string) "new version serving" version_b (Serve.Server.version srv);
  (* the flow cache restarted with the new version: same request, same
     report, fresh entry *)
  ignore (Serve.Server.handle_request srv analyze);
  Alcotest.(check string) "rewarmed reply identical across versions" baseline
    (Serve.Server.handle_request srv analyze)

let () =
  Alcotest.run "persist"
    [ ( "codec",
        [ Alcotest.test_case "component round-trips" `Quick test_codec_roundtrips;
          Alcotest.test_case "special floats" `Quick test_special_floats_roundtrip;
          Alcotest.test_case "corrupt frames rejected" `Quick test_corrupt_frames_rejected;
          Alcotest.test_case "manifest round-trip" `Quick test_manifest_roundtrip ] );
      ( "crash",
        [ Alcotest.test_case "truncation and bit-flip matrix" `Quick test_crash_matrix;
          Alcotest.test_case "killed writer leaves old artifact" `Quick
            test_atomic_write_survives_kill;
          Alcotest.test_case "read faults are typed" `Quick test_read_fault_is_typed;
          Alcotest.test_case "salvage drops corrupt optional components" `Slow
            test_bundle_salvage_drops_optional;
          Alcotest.test_case "salvage refuses a broken required component" `Slow
            test_bundle_salvage_still_fails_on_required;
          Alcotest.test_case "killed bundle save keeps the old bundle" `Slow
            test_bundle_save_killed_keeps_old;
          Alcotest.test_case "hot-reload publish crash matrix" `Slow
            test_hot_reload_publish_crash_matrix ] );
      ( "bundle",
        [ Alcotest.test_case "predictions survive reload" `Slow test_predictions_survive_reload ] ) ]
