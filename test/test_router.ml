(** Tests for the scale-out router: consistent-hash placement pinned
    against an independent reimplementation, bounded key movement under
    membership churn, per-tenant quota shedding, deterministic canary
    selection, worker-kill failover, and a zero-downtime rollout driven
    end-to-end over real worker processes.

    The topology cases spawn real workers: {!Router.Spawn} re-execs this
    test binary with a sentinel argv, so the hook below must run before
    anything else. *)

let () = Router.Spawn.worker_main_if_requested ()

module Jsonl = Serve.Jsonl

(* -- independent reimplementation of the placement function --

   Written deliberately differently from lib/router/chash.ml (explicit
   index loop, linear successor scan) so a shared bug cannot hide. *)

let fnv64_reimpl s =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to String.length s - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h 0x100000001b3L
  done;
  !h

(* ring position = splitmix64 finalizer of the FNV hash *)
let position_reimpl s =
  let z = fnv64_reimpl s in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let lookup_reimpl ~vnodes names key =
  let points =
    List.concat_map
      (fun name ->
        List.init vnodes (fun i -> (position_reimpl (name ^ "#" ^ string_of_int i), name)))
      (List.sort_uniq String.compare names)
  in
  let sorted =
    List.sort
      (fun (a, an) (b, bn) ->
        match Int64.unsigned_compare a b with 0 -> String.compare an bn | c -> c)
      points
  in
  match sorted with
  | [] -> None
  | (_, first) :: _ ->
    let h = position_reimpl key in
    let rec scan = function
      | [] -> Some first  (* wrap *)
      | (p, name) :: rest ->
        if Int64.unsigned_compare p h >= 0 then Some name else scan rest
    in
    scan sorted

let keys n = List.init n (Printf.sprintf "key-%d")

let test_fnv_vectors () =
  (* published FNV-1a/64 test vectors *)
  Alcotest.(check bool) "offset basis" true (Router.Chash.fnv64 "" = 0xcbf29ce484222325L);
  Alcotest.(check bool) "'a'" true (Router.Chash.fnv64 "a" = 0xaf63dc4c8601ec8cL);
  Alcotest.(check bool) "'foobar'" true (Router.Chash.fnv64 "foobar" = 0x85944171f73967e8L)

let test_pin_against_reimpl () =
  let names = [ "alpha"; "bravo"; "charlie" ] in
  let ring = Router.Chash.create ~vnodes:16 names in
  List.iter
    (fun k ->
      let got = Router.Chash.lookup ring k in
      let want = lookup_reimpl ~vnodes:16 names k in
      if got <> want then
        Alcotest.failf "key %s: ring says %s, reimplementation says %s" k
          (Option.value got ~default:"-") (Option.value want ~default:"-"))
    (keys 500);
  (* creation order must not matter *)
  let shuffled = Router.Chash.create ~vnodes:16 [ "charlie"; "alpha"; "bravo" ] in
  List.iter
    (fun k ->
      Alcotest.(check bool) "order-independent" true
        (Router.Chash.lookup ring k = Router.Chash.lookup shuffled k))
    (keys 200)

let test_bounded_movement () =
  let names = [ "w0"; "w1"; "w2"; "w3"; "w4" ] in
  let before = Router.Chash.create ~vnodes:32 names in
  let owner ring k = Option.get (Router.Chash.lookup ring k) in
  let ks = keys 2000 in
  (* removing w2 may move only keys w2 owned *)
  let without = Router.Chash.create ~vnodes:32 (List.filter (( <> ) "w2") names) in
  let moved = ref 0 in
  List.iter
    (fun k ->
      let o = owner before k and o' = owner without k in
      if o <> o' then begin
        if o <> "w2" then Alcotest.failf "key %s moved %s -> %s though w2 died" k o o';
        incr moved
      end)
    ks;
  let frac = float_of_int !moved /. 2000.0 in
  if frac < 0.05 || frac > 0.45 then
    Alcotest.failf "removal moved %.1f%% of keys (expected ~1/5)" (100.0 *. frac);
  (* adding w5 may only move keys onto w5 *)
  let plus = Router.Chash.create ~vnodes:32 ("w5" :: names) in
  let gained = ref 0 in
  List.iter
    (fun k ->
      let o = owner before k and o' = owner plus k in
      if o <> o' then begin
        if o' <> "w5" then Alcotest.failf "key %s moved %s -> %s though only w5 joined" k o o';
        incr gained
      end)
    ks;
  if !gained = 0 then Alcotest.fail "a joining worker took no keys at all"

let test_canary_draw () =
  let ks = keys 5000 in
  let selected seed fraction =
    List.filter (fun k -> Router.Chash.canary_draw ~seed k < fraction) ks
  in
  let a = selected 7 0.3 in
  (* pure in (seed, key): any evaluation order gives the same set *)
  let b =
    List.rev
      (List.filter (fun k -> Router.Chash.canary_draw ~seed:7 k < 0.3) (List.rev ks))
  in
  Alcotest.(check bool) "order-independent selection" true
    (List.sort compare a = List.sort compare b);
  let frac = float_of_int (List.length a) /. 5000.0 in
  if frac < 0.2 || frac > 0.4 then
    Alcotest.failf "fraction 0.3 selected %.3f of keyspace" frac;
  Alcotest.(check bool) "seed changes the draw" true (selected 8 0.3 <> a)

(* -- quota -- *)

let test_quota () =
  let q = Router.Quota.create ~limit:3 () in
  Router.Quota.begin_round q;
  for _ = 1 to 3 do
    Alcotest.(check bool) "under quota admitted" true (Router.Quota.admit q ~tenant:"a")
  done;
  Alcotest.(check bool) "4th line shed" false (Router.Quota.admit q ~tenant:"a");
  Alcotest.(check bool) "tenants are independent" true (Router.Quota.admit q ~tenant:"b");
  Router.Quota.begin_round q;
  Alcotest.(check bool) "round reset" true (Router.Quota.admit q ~tenant:"a");
  Alcotest.(check int) "sheds counted" 1 (Router.Quota.shed q);
  let unlimited = Router.Quota.create () in
  Router.Quota.begin_round unlimited;
  for _ = 1 to 100 do
    Alcotest.(check bool) "no limit" true (Router.Quota.admit unlimited ~tenant:"a")
  done

(* -- front, no live workers (sockets that do not exist) -- *)

let dead_front ?tenant_quota () =
  Router.Front.create ?tenant_quota ~vnodes:16
    ~workers:
      [ ("w0", "/tmp/clara-no-such-socket-0"); ("w1", "/tmp/clara-no-such-socket-1");
        ("w2", "/tmp/clara-no-such-socket-2") ]
    ()

let analyze_line ?(id = 1) ?tenant ~nf ~workload () =
  let tenant = match tenant with None -> "" | Some s -> Printf.sprintf {|,"tenant":"%s"|} s in
  Printf.sprintf {|{"id":%d,"cmd":"analyze","nf":"%s","workload":"%s"%s}|} id nf workload tenant

let parse line =
  match Jsonl.of_string line with
  | Ok v -> v
  | Error e -> Alcotest.failf "unparseable reply %s: %s" line e

let flagged name reply = Jsonl.member name reply = Some (Jsonl.Bool true)

let test_target_routing () =
  let t = dead_front () in
  (* router-local commands never forward *)
  List.iter
    (fun cmd ->
      let line = Printf.sprintf {|{"id":1,"cmd":"%s"}|} cmd in
      Alcotest.(check bool) (cmd ^ " is local") true (Router.Front.target t line = None))
    [ "health"; "topology"; "rollout"; "promote"; "rollback"; "reload"; "shutdown" ];
  (* analyze keys collapse to nf|workload; tenant comes along *)
  (match Router.Front.target t (analyze_line ~nf:"tcpack" ~workload:"mixed" ~tenant:"acme" ()) with
  | None -> Alcotest.fail "analyze must forward"
  | Some r ->
    Alcotest.(check string) "key" "tcpack|mixed" r.Router.Front.rt_key;
    Alcotest.(check string) "tenant" "acme" r.Router.Front.rt_tenant;
    Alcotest.(check bool) "no canary without a rollout" false r.Router.Front.rt_canary;
    (* pinned to the ring's own answer *)
    let ring = Router.Chash.create ~vnodes:16 [ "w0"; "w1"; "w2" ] in
    Alcotest.(check bool) "worker = ring lookup" true
      (r.Router.Front.rt_worker = Router.Chash.lookup ring "tcpack|mixed"));
  (* malformed lines key on the raw bytes but still salvage the tenant *)
  match Router.Front.target t {|{"id":7,"cmd":"analyze","tenant":"acme","nf": |} with
  | None -> Alcotest.fail "malformed lines forward (workers answer them typed)"
  | Some r -> Alcotest.(check string) "salvaged tenant" "acme" r.Router.Front.rt_tenant

let test_dead_worker_is_typed_unavailable () =
  let t = dead_front () in
  let replies =
    Router.Front.route_batch t [ analyze_line ~id:42 ~nf:"tcpack" ~workload:"mixed" () ]
  in
  match replies with
  | [ line ] ->
    let r = parse line in
    Alcotest.(check bool) "ok:false" true (Jsonl.member "ok" r = Some (Jsonl.Bool false));
    Alcotest.(check bool) "unavailable flag" true (flagged "unavailable" r);
    Alcotest.(check bool) "id echoed" true (Jsonl.member "id" r = Some (Jsonl.Num 42.0));
    Alcotest.(check bool) "worker named" true (Jsonl.str_member "worker" r <> None);
    Alcotest.(check bool) "failover counted" true (Router.Front.failovers t >= 1)
  | _ -> Alcotest.fail "expected exactly one reply"

let test_quota_shed_is_typed_overloaded () =
  let t = dead_front ~tenant_quota:1 () in
  let mk id = analyze_line ~id ~nf:"tcpack" ~workload:"mixed" ~tenant:"noisy" () in
  let other = analyze_line ~id:9 ~nf:"tcpack" ~workload:"mixed" ~tenant:"polite" () in
  let replies = Router.Front.route_batch t [ mk 1; mk 2; mk 3; other ] in
  match List.map parse replies with
  | [ first; second; third; fourth ] ->
    (* the one admitted line then hits the dead worker *)
    Alcotest.(check bool) "admitted line fails unavailable" true (flagged "unavailable" first);
    List.iter
      (fun r ->
        Alcotest.(check bool) "over-quota is overloaded" true (flagged "overloaded" r);
        Alcotest.(check bool) "tenant named" true
          (Jsonl.str_member "tenant" r = Some "noisy"))
      [ second; third ];
    (* an under-quota tenant in the same round is admitted (and then
       fails over the dead worker, not over quota) *)
    Alcotest.(check bool) "other tenant admitted" true (flagged "unavailable" fourth);
    Alcotest.(check bool) "quota sheds counted" true (Router.Front.shed t >= 2)
  | _ -> Alcotest.fail "expected four replies"

(* -- topology: real worker processes -- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let tiny_models () =
  let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
  let predictor = Clara.Predictor.train ~epochs:1 ds in
  let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
  { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None }

(* Two bundles of the same models but distinct manifests: distinct
   version tokens, so rollouts have something to negotiate. *)
let save_bundle ~built_at dir models =
  let manifest =
    { Persist.Bundle.seed = 501; epochs = 1;
      corpus_hash = Persist.Bundle.corpus_hash ();
      built_at }
  in
  Persist.Bundle.save ~dir manifest models;
  Persist.Bundle.version manifest

let fresh_dir tag =
  let dir = Filename.temp_file ("clara_router_" ^ tag) ".d" in
  Sys.remove dir;
  dir

type fleet = {
  fl_workers : Router.Spawn.t list;
  fl_front : Router.Front.t;
  fl_dir_a : string;
  fl_dir_b : string;
  fl_version_a : string;
  fl_version_b : string;
}

let with_fleet ?(n = 3) ?tenant_quota f =
  let models = tiny_models () in
  let dir_a = fresh_dir "a" and dir_b = fresh_dir "b" in
  let version_a = save_bundle ~built_at:"1970-01-01T00:00:00Z" dir_a models in
  let version_b = save_bundle ~built_at:"1971-01-01T00:00:00Z" dir_b models in
  if version_a = version_b then Alcotest.fail "distinct manifests must version differently";
  let sockets =
    List.init n (fun k ->
        Printf.sprintf "%s/clara_rt_%d_w%d.sock" (Filename.get_temp_dir_name ())
          (Unix.getpid ()) k)
  in
  let workers =
    List.mapi
      (fun k socket_path ->
        Router.Spawn.spawn ~name:(Printf.sprintf "w%d" k) ~socket_path ~bundle:dir_a ())
      sockets
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter Router.Spawn.kill workers;
      List.iter Router.Spawn.wait workers;
      List.iter (fun s -> try Sys.remove s with Sys_error _ -> ()) sockets;
      rm_rf dir_a;
      rm_rf dir_b)
  @@ fun () ->
  List.iter
    (fun sp ->
      if not (Router.Spawn.wait_ready sp) then
        Alcotest.failf "worker %s never came up" sp.Router.Spawn.sp_name)
    workers;
  let front =
    Router.Front.create ?tenant_quota ~vnodes:16 ~forward_timeout_s:10.0 ~canary_seed:7
      ~active_bundle:dir_a
      ~workers:(List.map (fun sp -> (sp.Router.Spawn.sp_name, sp.Router.Spawn.sp_socket)) workers)
      ()
  in
  let fleet =
    { fl_workers = workers; fl_front = front; fl_dir_a = dir_a; fl_dir_b = dir_b;
      fl_version_a = version_a; fl_version_b = version_b }
  in
  let out = f fleet in
  Router.Front.close front;
  out

let worker_version sp =
  match
    Router.Upstream.oneshot ~socket_path:sp.Router.Spawn.sp_socket ~timeout_s:10.0
      {|{"cmd":"health","id":0}|}
  with
  | Error e -> Alcotest.failf "health probe of %s failed: %s" sp.Router.Spawn.sp_name e
  | Ok reply -> (
    match Jsonl.str_member "version" (parse reply) with
    | Some v -> v
    | None -> Alcotest.failf "no version in health reply %s" reply)

let good_batch () =
  [ analyze_line ~id:1 ~nf:"tcpack" ~workload:"mixed" ();
    {|{"id":2,"cmd":"ping"}|};
    analyze_line ~id:3 ~nf:"udpipencap" ~workload:"small" ();
    analyze_line ~id:4 ~nf:"tcpack" ~workload:"mixed" () ]

let all_ok replies =
  List.iter
    (fun line ->
      let r = parse line in
      if Jsonl.member "ok" r <> Some (Jsonl.Bool true) then
        Alcotest.failf "reply not ok: %s" line)
    replies

let test_routed_serving () =
  with_fleet @@ fun fl ->
  let replies = Router.Front.route_batch fl.fl_front (good_batch ()) in
  Alcotest.(check int) "reply per line" 4 (List.length replies);
  all_ok replies;
  all_ok (Router.Front.route_batch fl.fl_front (good_batch ()));
  Alcotest.(check int) "all lines forwarded" 8 (Router.Front.forwarded fl.fl_front);
  Alcotest.(check int) "nothing unavailable" 0 (Router.Front.unavailable fl.fl_front);
  (* the aggregate health document sees the whole fleet *)
  Router.Front.probe fl.fl_front;
  let h = parse (Router.Front.healthz_json fl.fl_front) in
  Alcotest.(check bool) "healthz ok" true (flagged "ok" h);
  Alcotest.(check bool) "all workers up" true
    (Jsonl.member "workers_up" h = Some (Jsonl.Num 3.0));
  (match Jsonl.member "workers" h with
  | Some (Jsonl.Arr ws) ->
    Alcotest.(check int) "three workers listed" 3 (List.length ws);
    List.iter
      (fun w ->
        Alcotest.(check bool) "per-worker version aggregated" true
          (Jsonl.str_member "version" w = Some fl.fl_version_a);
        match Jsonl.num_member "pid" w with
        | Some p when p > 0.0 -> ()
        | _ -> Alcotest.fail "per-worker pid aggregated")
      ws
  | _ -> Alcotest.fail "healthz lists workers")

let test_worker_kill_failover () =
  with_fleet @@ fun fl ->
  all_ok (Router.Front.route_batch fl.fl_front (good_batch ()));
  let key_line = analyze_line ~id:5 ~nf:"tcpack" ~workload:"mixed" () in
  let owner =
    match Router.Front.target fl.fl_front key_line with
    | Some { Router.Front.rt_worker = Some w; _ } -> w
    | _ -> Alcotest.fail "key must have an owner"
  in
  let victim = List.find (fun sp -> sp.Router.Spawn.sp_name = owner) fl.fl_workers in
  Router.Spawn.kill victim;
  Router.Spawn.wait victim;
  (* in-flight round: typed unavailable naming the dead worker *)
  (match Router.Front.route_batch fl.fl_front [ key_line ] with
  | [ line ] ->
    let r = parse line in
    Alcotest.(check bool) "typed unavailable" true (flagged "unavailable" r);
    Alcotest.(check bool) "dead worker named" true (Jsonl.str_member "worker" r = Some owner)
  | _ -> Alcotest.fail "expected one reply");
  Alcotest.(check int) "one failover" 1 (Router.Front.failovers fl.fl_front);
  (* next round re-hashes to a survivor *)
  (match Router.Front.target fl.fl_front key_line with
  | Some { Router.Front.rt_worker = Some w; _ } when w <> owner -> ()
  | _ -> Alcotest.fail "key must re-hash off the dead worker");
  all_ok (Router.Front.route_batch fl.fl_front [ key_line ]);
  (* a respawned worker is re-admitted by the prober and takes its keys
     back (deterministic placement) *)
  let replacement =
    Router.Spawn.spawn ~name:owner ~socket_path:victim.Router.Spawn.sp_socket
      ~bundle:fl.fl_dir_a ()
  in
  Fun.protect
    ~finally:(fun () ->
      Router.Spawn.kill replacement;
      Router.Spawn.wait replacement)
  @@ fun () ->
  if not (Router.Spawn.wait_ready replacement) then Alcotest.fail "respawn never came up";
  Router.Front.probe fl.fl_front;
  (match Router.Front.target fl.fl_front key_line with
  | Some { Router.Front.rt_worker = Some w; _ } ->
    Alcotest.(check string) "keys return to the re-admitted worker" owner w
  | _ -> Alcotest.fail "no owner after re-admission");
  all_ok (Router.Front.route_batch fl.fl_front [ key_line ])

let test_canary_rollout () =
  with_fleet @@ fun fl ->
  all_ok (Router.Front.route_batch fl.fl_front (good_batch ()));
  (* canary 40% of a 3-worker fleet -> 2 canaries, 1 kept back *)
  (match Router.Front.start_rollout fl.fl_front ~bundle:fl.fl_dir_b ~fraction:0.4 () with
  | Error e -> Alcotest.failf "rollout failed: %s" e
  | Ok v -> Alcotest.(check string) "negotiated version" fl.fl_version_b v);
  let versions = List.map worker_version fl.fl_workers in
  Alcotest.(check int) "two canaries on the new version" 2
    (List.length (List.filter (( = ) fl.fl_version_b) versions));
  Alcotest.(check int) "one worker kept back" 1
    (List.length (List.filter (( = ) fl.fl_version_a) versions));
  (* zero failed requests while the rollout is live *)
  all_ok (Router.Front.route_batch fl.fl_front (good_batch ()));
  (* canary selection is a pure function of (seed, key): any arrival
     order steers the same keys *)
  let lines = List.init 40 (fun i -> analyze_line ~id:i ~nf:(Printf.sprintf "k%d" i) ~workload:"mixed" ()) in
  let steer ls =
    List.map
      (fun l ->
        match Router.Front.target fl.fl_front l with
        | Some r -> (l, r.Router.Front.rt_canary, r.Router.Front.rt_worker)
        | None -> Alcotest.failf "line did not forward: %s" l)
      ls
  in
  let forward_order = steer lines in
  let reverse_order = List.rev (steer (List.rev lines)) in
  Alcotest.(check bool) "steering ignores arrival order" true (forward_order = reverse_order);
  let canaried = List.length (List.filter (fun (_, c, _) -> c) forward_order) in
  if canaried = 0 || canaried = 40 then
    Alcotest.failf "canary fraction 0.4 steered %d/40 keys" canaried;
  (* promote: the rest of the fleet converges on the new version *)
  (match Router.Front.promote fl.fl_front with
  | Error e -> Alcotest.failf "promote failed: %s" e
  | Ok (v, failed) ->
    Alcotest.(check string) "promoted version" fl.fl_version_b v;
    Alcotest.(check int) "no worker failed to promote" 0 (List.length failed));
  List.iter
    (fun sp -> Alcotest.(check string) "fleet on new version" fl.fl_version_b (worker_version sp))
    fl.fl_workers;
  all_ok (Router.Front.route_batch fl.fl_front (good_batch ()));
  (* a second rollout, rolled back: canaries return to the active bundle *)
  (match Router.Front.start_rollout fl.fl_front ~bundle:fl.fl_dir_a ~fraction:0.4 () with
  | Error e -> Alcotest.failf "second rollout failed: %s" e
  | Ok v -> Alcotest.(check string) "old bundle re-negotiated" fl.fl_version_a v);
  (match Router.Front.rollback fl.fl_front with
  | Error e -> Alcotest.failf "rollback failed: %s" e
  | Ok failed -> Alcotest.(check int) "rollback clean" 0 (List.length failed));
  List.iter
    (fun sp ->
      Alcotest.(check string) "rollback restored the fleet" fl.fl_version_b (worker_version sp))
    fl.fl_workers;
  all_ok (Router.Front.route_batch fl.fl_front (good_batch ()));
  (* worker-side negotiation: a reload whose expectation mismatches is
     refused and the old version keeps serving *)
  let w0 = List.hd fl.fl_workers in
  (match
     Router.Upstream.oneshot ~socket_path:w0.Router.Spawn.sp_socket ~timeout_s:10.0
       (Printf.sprintf {|{"cmd":"reload","bundle":"%s","expect":"deadbeef","id":0}|}
          fl.fl_dir_a)
   with
  | Error e -> Alcotest.failf "reload round trip failed: %s" e
  | Ok reply ->
    let r = parse reply in
    Alcotest.(check bool) "mismatched expect refused" true
      (Jsonl.member "ok" r = Some (Jsonl.Bool false)));
  Alcotest.(check string) "old version still serving" fl.fl_version_b (worker_version w0)

let test_client_through_router_socket () =
  with_fleet ~n:2 @@ fun fl ->
  let socket_path =
    Printf.sprintf "%s/clara_rt_%d_front.sock" (Filename.get_temp_dir_name ()) (Unix.getpid ())
  in
  let front_domain =
    Domain.spawn (fun () -> Router.Front.run fl.fl_front ~socket_path)
  in
  Fun.protect
    ~finally:(fun () ->
      Router.Front.request_drain fl.fl_front;
      Domain.join front_domain)
  @@ fun () ->
  (* wait for the router socket *)
  let deadline = Unix.gettimeofday () +. 10.0 in
  while (not (Sys.file_exists socket_path)) && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.02
  done;
  (* the stock retrying client works unchanged against a router socket *)
  let client = Serve.Client.create ~timeout_s:10.0 ~socket_path () in
  (match
     Serve.Client.request client
       [ ("cmd", Jsonl.Str "analyze"); ("nf", Jsonl.Str "tcpack");
         ("workload", Jsonl.Str "mixed") ]
   with
  | Error e -> Alcotest.failf "query via router failed: %s" (Serve.Client.error_to_string e)
  | Ok r ->
    Alcotest.(check bool) "analyze ok via router" true
      (Jsonl.member "ok" r = Some (Jsonl.Bool true));
    Alcotest.(check bool) "report present" true (Jsonl.str_member "report" r <> None));
  (match Serve.Client.request client [ ("cmd", Jsonl.Str "health") ] with
  | Error e -> Alcotest.failf "health via router failed: %s" (Serve.Client.error_to_string e)
  | Ok r -> (
    Alcotest.(check bool) "role router" true (Jsonl.str_member "role" r = Some "router");
    match Jsonl.member "workers" r with
    | Some (Jsonl.Arr ws) -> Alcotest.(check int) "workers aggregated" 2 (List.length ws)
    | _ -> Alcotest.fail "workers missing from health"));
  Serve.Client.close client

let () =
  Alcotest.run "router"
    [ ( "chash",
        [ Alcotest.test_case "fnv-1a vectors" `Quick test_fnv_vectors;
          Alcotest.test_case "pin against independent reimplementation" `Quick
            test_pin_against_reimpl;
          Alcotest.test_case "bounded movement on membership change" `Quick
            test_bounded_movement;
          Alcotest.test_case "canary draw pure and seeded" `Quick test_canary_draw ] );
      ( "quota",
        [ Alcotest.test_case "per-tenant per-round admission" `Quick test_quota ] );
      ( "front",
        [ Alcotest.test_case "placement and local commands" `Quick test_target_routing;
          Alcotest.test_case "dead worker is typed unavailable" `Quick
            test_dead_worker_is_typed_unavailable;
          Alcotest.test_case "quota shed is typed overloaded" `Quick
            test_quota_shed_is_typed_overloaded ] );
      ( "topology",
        [ Alcotest.test_case "routed serving and health fan-in" `Quick test_routed_serving;
          Alcotest.test_case "worker-kill failover and re-admission" `Quick
            test_worker_kill_failover;
          Alcotest.test_case "canary rollout, promote, rollback" `Quick test_canary_rollout;
          Alcotest.test_case "client unchanged through router socket" `Quick
            test_client_through_router_socket ] ) ]
