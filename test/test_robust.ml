(** Adversarial tests for the hardened service: the Obs.Fault registry
    itself, fuzzed Jsonl parsing, deadlines, load shedding, fault-injected
    analyses, client-disconnect handling, graceful drain, and the retrying
    {!Serve.Client} against misbehaving stub servers.

    Runs (via dune rules) under both CLARA_JOBS=1 and CLARA_JOBS=4: every
    outcome here must be identical in both ambient modes. *)

let with_jobs n f =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Util.Pool.set_jobs saved) f

(* Every test that arms a fault point must disarm on every exit path, or
   it would poison the rest of the binary. *)
let with_fault ~point ~prob ?(seed = 1) f =
  Obs.Fault.set ~point ~prob ~seed;
  Fun.protect ~finally:(fun () -> Obs.Fault.remove point) f

(* -- Obs.Fault: the registry itself -- *)

let test_fault_parse () =
  Alcotest.(check bool) "point:prob" true
    (Obs.Fault.parse "persist.read:0.5" = Ok [ ("persist.read", 0.5, 1) ]);
  Alcotest.(check bool) "point:prob:seed" true
    (Obs.Fault.parse "pool.task:1.0:42" = Ok [ ("pool.task", 1.0, 42) ]);
  Alcotest.(check bool) "comma-separated list" true
    (Obs.Fault.parse "a:0:7,b:1" = Ok [ ("a", 0.0, 7); ("b", 1.0, 1) ]);
  Alcotest.(check bool) "empty spec is empty" true (Obs.Fault.parse "" = Ok []);
  List.iter
    (fun bad ->
      match Obs.Fault.parse bad with
      | Error _ -> ()
      | Ok l ->
        Alcotest.failf "%S should not parse (got %d points)" bad (List.length l))
    [ "a"; "a:nope"; "a:1.5"; "a:-0.1"; "a:0.5:xyz"; "a:0.5:1:2" ]

let test_fault_determinism () =
  let sequence () =
    with_fault ~point:"t.det" ~prob:0.3 ~seed:99 (fun () ->
        List.init 200 (fun k -> Obs.Fault.fire ~k "t.det"))
  in
  let a = sequence () and b = sequence () in
  Alcotest.(check bool) "same seed replays the same decisions" true (a = b);
  Alcotest.(check bool) "prob 0.3 fires sometimes" true (List.mem true a);
  Alcotest.(check bool) "prob 0.3 spares sometimes" true (List.mem false a);
  (* keyed draws are order-independent: the same keys asked in reverse
     give the same per-key answers *)
  let forward =
    with_fault ~point:"t.order" ~prob:0.5 ~seed:7 (fun () ->
        List.init 50 (fun k -> Obs.Fault.fire ~k "t.order"))
  in
  let backward =
    with_fault ~point:"t.order" ~prob:0.5 ~seed:7 (fun () ->
        List.rev (List.rev_map (fun k -> Obs.Fault.fire ~k "t.order") (List.init 50 Fun.id)))
  in
  Alcotest.(check bool) "keyed draws ignore ask order" true (forward = backward);
  (* a different seed gives a different sequence *)
  let other =
    with_fault ~point:"t.det" ~prob:0.3 ~seed:100 (fun () ->
        List.init 200 (fun k -> Obs.Fault.fire ~k "t.det"))
  in
  Alcotest.(check bool) "different seed, different decisions" true (a <> other)

let test_fault_edges () =
  with_fault ~point:"t.never" ~prob:0.0 (fun () ->
      Alcotest.(check bool) "prob 0 never fires" false
        (List.exists (fun k -> Obs.Fault.fire ~k "t.never") (List.init 100 Fun.id));
      Alcotest.(check int) "prob 0 counts no hits" 0 (Obs.Fault.fired "t.never"));
  with_fault ~point:"t.always" ~prob:1.0 (fun () ->
      Alcotest.(check bool) "prob 1 always fires" true
        (List.for_all (fun k -> Obs.Fault.fire ~k "t.always") (List.init 100 Fun.id));
      Alcotest.(check int) "prob 1 counts every hit" 100 (Obs.Fault.fired "t.always");
      (match Obs.Fault.guard "t.always" with
      | () -> Alcotest.fail "guard on an armed point must raise"
      | exception Obs.Fault.Injected "t.always" -> ());
      Alcotest.(check bool) "armed point listed" true
        (List.mem ("t.always", 1.0, 1) (Obs.Fault.active ())));
  Alcotest.(check bool) "disarmed point never fires" false (Obs.Fault.fire "t.always");
  Alcotest.(check bool) "unkeyed draws advance" true
    (with_fault ~point:"t.seq" ~prob:0.5 ~seed:3 (fun () ->
         let draws = List.init 100 (fun _ -> Obs.Fault.fire "t.seq") in
         List.mem true draws && List.mem false draws))

(* -- Jsonl fuzzing: the parser must never raise, and salvage_member must
   agree with the full parse on valid inputs -- *)

let rec gen_value rng depth =
  match if depth = 0 then Random.State.int rng 4 else Random.State.int rng 6 with
  | 0 -> Serve.Jsonl.Null
  | 1 -> Serve.Jsonl.Bool (Random.State.bool rng)
  | 2 ->
    (* finite, round-trippable magnitudes *)
    Serve.Jsonl.Num
      (Float.of_int (Random.State.int rng 2_000_001 - 1_000_000)
      /. Float.of_int (1 + Random.State.int rng 1000))
  | 3 ->
    let n = Random.State.int rng 12 in
    let alphabet = "ab\"\\/{}[]:,\t\n\x01 éπ0" in
    Serve.Jsonl.Str
      (String.init n (fun _ -> alphabet.[Random.State.int rng (String.length alphabet)]))
  | 4 -> Serve.Jsonl.Arr (List.init (Random.State.int rng 4) (fun _ -> gen_value rng (depth - 1)))
  | _ ->
    Serve.Jsonl.Obj
      (List.init (Random.State.int rng 4) (fun i ->
           (Printf.sprintf "k%d" i, gen_value rng (depth - 1))))

let mutate rng s =
  if s = "" then "x"
  else
    match Random.State.int rng 3 with
    | 0 -> String.sub s 0 (Random.State.int rng (String.length s)) (* truncate *)
    | 1 ->
      let i = Random.State.int rng (String.length s) in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Random.State.int rng 256));
      Bytes.to_string b
    | _ ->
      let i = Random.State.int rng (String.length s + 1) in
      String.sub s 0 i ^ "\x00{\"" ^ String.sub s i (String.length s - i)

let test_jsonl_fuzz () =
  let rng = Random.State.make [| 0x5EED |] in
  for _ = 1 to 500 do
    let v = gen_value rng 3 in
    let printed = Serve.Jsonl.to_string v in
    (* valid input parses back to the same value *)
    (match Serve.Jsonl.of_string printed with
    | Ok v' ->
      if v' <> v then Alcotest.failf "%S did not round-trip" printed
    | Error msg -> Alcotest.failf "%S failed to reparse: %s" printed msg
    | exception e ->
      Alcotest.failf "parser raised %s on valid %S" (Printexc.to_string e) printed);
    (* mutated input may fail, but only as [Error] *)
    let mutant = mutate rng printed in
    (match Serve.Jsonl.of_string mutant with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "parser raised %s on mutant %S" (Printexc.to_string e) mutant);
    match Serve.Jsonl.salvage_member "id" mutant with
    | Some _ | None -> ()
    | exception e ->
      Alcotest.failf "salvage raised %s on mutant %S" (Printexc.to_string e) mutant
  done

let test_salvage_agrees_on_valid () =
  let rng = Random.State.make [| 0xA6EE |] in
  let scalar rng =
    match Random.State.int rng 4 with
    | 0 -> Serve.Jsonl.Null
    | 1 -> Serve.Jsonl.Bool (Random.State.bool rng)
    | 2 -> Serve.Jsonl.Num (Float.of_int (Random.State.int rng 10_000))
    | _ -> Serve.Jsonl.Str (Printf.sprintf "req-%d" (Random.State.int rng 1000))
  in
  for _ = 1 to 300 do
    let id = scalar rng in
    let decoys =
      List.init (Random.State.int rng 3) (fun i ->
          (Printf.sprintf "d%d" i, gen_value rng 2))
    in
    let line = Serve.Jsonl.to_string (Serve.Jsonl.Obj (decoys @ [ ("id", id) ])) in
    let full =
      match Serve.Jsonl.of_string line with
      | Ok v -> Serve.Jsonl.member "id" v
      | Error msg -> Alcotest.failf "%S should parse: %s" line msg
    in
    let salvaged = Serve.Jsonl.salvage_member "id" line in
    if salvaged <> full then
      Alcotest.failf "salvage disagrees with full parse on %S" line
  done

(* -- server under injected faults / deadlines / overload (tiny models,
   in-process) -- *)

let models =
  lazy
    (let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
     let predictor = Clara.Predictor.train ~epochs:1 ds in
     let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
     { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None })

let parse_reply line =
  match Serve.Jsonl.of_string line with
  | Ok v -> v
  | Error msg -> Alcotest.failf "unparseable reply %S: %s" line msg

let is_ok reply = Serve.Jsonl.member "ok" reply = Some (Serve.Jsonl.Bool true)
let flag name reply = Serve.Jsonl.member name reply = Some (Serve.Jsonl.Bool true)

let test_pool_fault_typed_reply () =
  let s = Serve.Server.create ~cache_capacity:8 (Lazy.force models) in
  let q = {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed"}|} in
  let faulted =
    with_fault ~point:"pool.task" ~prob:1.0 (fun () ->
        parse_reply (Serve.Server.handle_request s q))
  in
  Alcotest.(check bool) "injected analysis fails" false (is_ok faulted);
  (match Serve.Jsonl.str_member "error" faulted with
  | Some msg ->
    Alcotest.(check bool) "error names the injected fault" true
      (String.length msg > 0
      && (let has_sub sub =
            let n = String.length msg and m = String.length sub in
            let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
            go 0
          in
          has_sub "pool.task"))
  | None -> Alcotest.fail "faulted reply carries an error");
  Alcotest.(check bool) "id still echoed" true
    (Serve.Jsonl.member "id" faulted = Some (Serve.Jsonl.Num 1.0));
  (* once the fault clears, the same request succeeds (nothing was cached) *)
  let healed = parse_reply (Serve.Server.handle_request s q) in
  Alcotest.(check bool) "recovers after the fault clears" true (is_ok healed);
  Alcotest.(check bool) "failed analysis was not cached" true
    (Serve.Jsonl.member "cached" healed = Some (Serve.Jsonl.Bool false))

(* The same faulty batch must produce the same per-request outcomes
   whether the pool runs serial or on four domains: decisions are keyed
   by task index, and the pool re-raises the lowest-indexed failure. *)
let test_pool_fault_outcomes_jobs_independent () =
  let batch =
    [ {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed"}|};
      {|{"id":2,"cmd":"analyze","nf":"udpipencap","workload":"mixed"}|};
      {|{"id":3,"cmd":"analyze","nf":"anonipaddr","workload":"mixed"}|};
      {|{"id":4,"cmd":"analyze","nf":"cmsketch","workload":"mixed"}|} ]
  in
  let outcomes jobs =
    with_jobs jobs (fun () ->
        with_fault ~point:"pool.task" ~prob:0.5 ~seed:11 (fun () ->
            let s = Serve.Server.create ~cache_capacity:8 (Lazy.force models) in
            List.map (fun r -> is_ok (parse_reply r)) (Serve.Server.process_batch s batch)))
  in
  let serial = outcomes 1 and parallel = outcomes 4 in
  Alcotest.(check bool) "serial and 4-domain outcomes identical" true (serial = parallel);
  Alcotest.(check bool) "prob 0.5 failed at least one" true (List.mem false serial)

let test_jsonl_fault_typed_reply () =
  let s = Serve.Server.create ~cache_capacity:8 (Lazy.force models) in
  let raw =
    with_fault ~point:"jsonl.parse" ~prob:1.0 (fun () ->
        Serve.Server.handle_request s {|{"id":9,"cmd":"ping"}|})
  in
  (* parse the reply only after the fault is disarmed *)
  let reply = parse_reply raw in
  Alcotest.(check bool) "parse fault becomes an error reply" false (is_ok reply);
  Alcotest.(check bool) "id salvaged around the broken parser" true
    (Serve.Jsonl.member "id" reply = Some (Serve.Jsonl.Num 9.0))

let test_deadline_exceeded () =
  (* a 1ns default budget is always already spent by planning time *)
  let s = Serve.Server.create ~cache_capacity:8 ~deadline_ms:0.000001 (Lazy.force models) in
  let r =
    parse_reply (Serve.Server.handle_request s {|{"id":1,"cmd":"analyze","nf":"tcpack"}|})
  in
  Alcotest.(check bool) "expired budget rejected" false (is_ok r);
  Alcotest.(check bool) "flagged deadline_exceeded" true (flag "deadline_exceeded" r);
  Alcotest.(check bool) "not flagged overloaded" false (flag "overloaded" r);
  (* a request-level budget overrides the server default *)
  let roomy =
    parse_reply
      (Serve.Server.handle_request s
         {|{"id":2,"cmd":"analyze","nf":"tcpack","deadline_ms":60000}|})
  in
  Alcotest.(check bool) "request budget overrides default" true (is_ok roomy);
  (* an explicit 0 disables the default entirely *)
  let unlimited =
    parse_reply
      (Serve.Server.handle_request s
         {|{"id":3,"cmd":"analyze","nf":"udpipencap","deadline_ms":0}|})
  in
  Alcotest.(check bool) "deadline_ms 0 means unlimited" true (is_ok unlimited);
  (* non-analyze commands never consult the deadline *)
  let pong = parse_reply (Serve.Server.handle_request s {|{"id":4,"cmd":"ping"}|}) in
  Alcotest.(check bool) "ping ignores the budget" true (is_ok pong)

let test_shedding_beyond_max_pending () =
  let s = Serve.Server.create ~cache_capacity:8 ~max_pending:2 (Lazy.force models) in
  let lines = List.init 5 (fun i -> Printf.sprintf {|{"id":%d,"cmd":"ping"}|} (i + 1)) in
  let replies = List.map parse_reply (Serve.Server.process_batch s lines) in
  Alcotest.(check int) "one reply per line" 5 (List.length replies);
  List.iteri
    (fun i r ->
      let id_ok = Serve.Jsonl.member "id" r = Some (Serve.Jsonl.Num (float_of_int (i + 1))) in
      Alcotest.(check bool) (Printf.sprintf "reply %d keeps its id" (i + 1)) true id_ok;
      if i < 2 then
        Alcotest.(check bool) (Printf.sprintf "admitted %d ok" (i + 1)) true (is_ok r)
      else begin
        Alcotest.(check bool) (Printf.sprintf "overflow %d rejected" (i + 1)) false (is_ok r);
        Alcotest.(check bool) (Printf.sprintf "overflow %d flagged" (i + 1)) true
          (flag "overloaded" r)
      end)
    replies;
  Alcotest.(check int) "shed counter" 3 (Serve.Server.shed s);
  Alcotest.(check int) "every line counted as served" 5 (Serve.Server.served s)

(* A client that vanishes mid-reply (EPIPE) is logged at info — not warn,
   not error — and does not count as a server error. *)
let test_disconnect_logged_at_info () =
  let captured = ref [] in
  Obs.Log.set_sink (Obs.Log.Custom (fun line -> captured := line :: !captured));
  Fun.protect ~finally:(fun () -> Obs.Log.set_sink Obs.Log.Stderr) @@ fun () ->
  let errors_before =
    Obs.Metrics.counter_value (Obs.Metrics.counter "clara_serve_errors_total")
  in
  let s = Serve.Server.create ~cache_capacity:8 (Lazy.force models) in
  let server_fd, client_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let req = {|{"id":1,"cmd":"ping"}|} ^ "\n" in
  ignore (Unix.write_substring client_fd req 0 (String.length req));
  Unix.shutdown client_fd Unix.SHUTDOWN_SEND;
  with_fault ~point:"serve.write" ~prob:1.0 (fun () ->
      (* must return quietly, not raise the injected EPIPE *)
      Serve.Server.serve_until_eof s server_fd);
  Unix.close server_fd;
  Unix.close client_fd;
  let has_sub sub line =
    let n = String.length line and m = String.length sub in
    let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
    go 0
  in
  let disconnect_lines = List.filter (has_sub "serve.client_disconnected") !captured in
  Alcotest.(check bool) "disconnect logged" true (disconnect_lines <> []);
  List.iter
    (fun line ->
      Alcotest.(check bool) "logged at info" true (has_sub {|"level":"info"|} line))
    disconnect_lines;
  let errors_after =
    Obs.Metrics.counter_value (Obs.Metrics.counter "clara_serve_errors_total")
  in
  Alcotest.(check (float 0.0)) "no server-error metric for a disconnect" errors_before
    errors_after

(* -- graceful drain -- *)

let connect_with_retry path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go attempts =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when attempts > 0 ->
      Unix.sleepf 0.05;
      go (attempts - 1)
  in
  go 100

let client_round path request =
  let fd = connect_with_retry path in
  let out = Unix.out_channel_of_descr fd in
  output_string out (request ^ "\n");
  flush out;
  let line = input_line (Unix.in_channel_of_descr fd) in
  Unix.close fd;
  line

let test_programmatic_drain () =
  let s = Serve.Server.create ~cache_capacity:8 (Lazy.force models) in
  Serve.Server.request_drain s;
  let path = Filename.temp_file "clara_robust_drain" ".sock" in
  Sys.remove path;
  (* run must notice the pre-set drain flag and return promptly *)
  Serve.Server.run s ~socket_path:path;
  Alcotest.(check bool) "socket removed after drain" false (Sys.file_exists path)

let test_sigterm_drain () =
  let s = Serve.Server.create ~cache_capacity:8 (Lazy.force models) in
  let path = Filename.temp_file "clara_robust_sigterm" ".sock" in
  Sys.remove path;
  let pid = Unix.getpid () in
  let closer =
    Domain.spawn (fun () ->
        let reply = client_round path {|{"id":1,"cmd":"ping"}|} in
        Unix.kill pid Sys.sigterm;
        reply)
  in
  (* serves the ping, then the signal handler requests the drain and the
     EINTR'd select notices it; if drain were broken this would hang the
     whole binary, which is itself the failure signal *)
  Serve.Server.run s ~socket_path:path;
  let reply = Domain.join closer in
  Alcotest.(check bool) "request before SIGTERM answered" true (is_ok (parse_reply reply));
  Alcotest.(check bool) "socket removed after drain" false (Sys.file_exists path);
  Alcotest.(check int) "served the one request" 1 (Serve.Server.served s)

(* -- Serve.Client against stub servers -- *)

let write_line fd s =
  let s = s ^ "\n" in
  ignore (Unix.write_substring fd s 0 (String.length s))

(* The caller unlinks [path] before spawning a stub, so the socket file
   reappearing means the stub's [bind] completed — after this, a client
   connect cannot race the listener into an ENOENT that would skew the
   attempt counts under test. *)
let await_stub path =
  let rec go n =
    if Sys.file_exists path then ()
    else if n = 0 then Alcotest.failf "stub never bound %s" path
    else begin
      Unix.sleepf 0.01;
      go (n - 1)
    end
  in
  go 500

(* A stub that sheds its first [overloaded_first] conversations with an
   overloaded reply (closing each time, like the connection-limit path),
   then answers ok.  Records every request id it sees. *)
let overloaded_stub path ~overloaded_first =
  Domain.spawn (fun () ->
      let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind listener (Unix.ADDR_UNIX path);
      Unix.listen listener 8;
      let ids = ref [] in
      let rec serve n =
        let fd, _ = Unix.accept listener in
        let line =
          match input_line (Unix.in_channel_of_descr fd) with
          | l -> l
          | exception End_of_file -> ""
        in
        (match Serve.Jsonl.of_string line with
        | Ok j -> ids := Serve.Jsonl.member "id" j :: !ids
        | Error _ -> ());
        if n < overloaded_first then begin
          write_line fd {|{"ok":false,"error":"overloaded: stub","overloaded":true}|};
          (try Unix.close fd with Unix.Unix_error _ -> ());
          serve (n + 1)
        end
        else begin
          write_line fd {|{"ok":true,"pong":true}|};
          try Unix.close fd with Unix.Unix_error _ -> ()
        end
      in
      serve 0;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      (try Sys.remove path with Sys_error _ -> ());
      List.rev !ids)

let test_client_retries_overloaded () =
  let path = Filename.temp_file "clara_robust_client" ".sock" in
  Sys.remove path;
  let stub = overloaded_stub path ~overloaded_first:2 in
  await_stub path;
  (* tiny backoff keeps the test fast; the schedule is still exercised *)
  let c =
    Serve.Client.create ~timeout_s:5.0 ~retries:4 ~backoff_base_s:0.005 ~backoff_cap_s:0.02
      ~seed:3 ~socket_path:path ()
  in
  let reply =
    match Serve.Client.request c [ ("cmd", Serve.Jsonl.Str "ping") ] with
    | Ok r -> r
    | Error e -> Alcotest.failf "request failed: %s" (Serve.Client.error_to_string e)
  in
  Serve.Client.close c;
  let ids = Domain.join stub in
  Alcotest.(check bool) "eventually ok" true (is_ok reply);
  Alcotest.(check int) "two shed attempts plus success" 3 (Serve.Client.attempts c);
  Alcotest.(check int) "two retries used" 2 (Serve.Client.retries_used c);
  Alcotest.(check int) "stub saw three attempts" 3 (List.length ids);
  (* idempotent ids: every retry re-sent the same id *)
  match ids with
  | first :: rest ->
    Alcotest.(check bool) "id assigned" true (first <> Some Serve.Jsonl.Null && first <> None);
    List.iter
      (fun id -> Alcotest.(check bool) "same id on every attempt" true (id = first))
      rest
  | [] -> Alcotest.fail "stub saw no requests"

let test_client_timeout_then_error () =
  let path = Filename.temp_file "clara_robust_mute" ".sock" in
  Sys.remove path;
  (* a mute stub: accepts and reads, never replies *)
  let stub =
    Domain.spawn (fun () ->
        let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind listener (Unix.ADDR_UNIX path);
        Unix.listen listener 8;
        let conns =
          List.init 2 (fun _ ->
              let fd, _ = Unix.accept listener in
              let ic = Unix.in_channel_of_descr fd in
              (try ignore (input_line ic) with End_of_file -> ());
              (fd, ic))
        in
        (* hold every connection open (never replying) until the client
           gives up on it, so each attempt fails by timeout, not by EOF *)
        List.iter
          (fun (_, ic) -> try ignore (input_line ic) with End_of_file | Sys_error _ -> ())
          conns;
        List.iter (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ()) conns;
        (try Unix.close listener with Unix.Unix_error _ -> ());
        try Sys.remove path with Sys_error _ -> ())
  in
  await_stub path;
  let c =
    Serve.Client.create ~timeout_s:0.1 ~retries:1 ~backoff_base_s:0.005 ~socket_path:path ()
  in
  (match Serve.Client.request c [ ("cmd", Serve.Jsonl.Str "ping") ] with
  | Error Serve.Client.Timeout -> ()
  | Error e -> Alcotest.failf "expected Timeout, got %s" (Serve.Client.error_to_string e)
  | Ok _ -> Alcotest.fail "mute server cannot answer");
  Serve.Client.close c;
  Alcotest.(check int) "original attempt plus one retry" 2 (Serve.Client.attempts c);
  Domain.join stub

let test_client_does_not_retry_deadline () =
  let path = Filename.temp_file "clara_robust_deadline" ".sock" in
  Sys.remove path;
  let stub =
    Domain.spawn (fun () ->
        let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind listener (Unix.ADDR_UNIX path);
        Unix.listen listener 8;
        let fd, _ = Unix.accept listener in
        (try ignore (input_line (Unix.in_channel_of_descr fd)) with End_of_file -> ());
        write_line fd {|{"ok":false,"error":"deadline exceeded","deadline_exceeded":true}|};
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try Unix.close listener with Unix.Unix_error _ -> ());
        try Sys.remove path with Sys_error _ -> ())
  in
  await_stub path;
  let c = Serve.Client.create ~timeout_s:5.0 ~retries:4 ~socket_path:path () in
  (match Serve.Client.request c [ ("cmd", Serve.Jsonl.Str "ping") ] with
  | Ok r ->
    Alcotest.(check bool) "deadline reply passed through" true (flag "deadline_exceeded" r)
  | Error e -> Alcotest.failf "should not fail: %s" (Serve.Client.error_to_string e));
  Serve.Client.close c;
  Alcotest.(check int) "no retries for a deadline reply" 1 (Serve.Client.attempts c);
  Domain.join stub

let () =
  Alcotest.run "robust"
    [ ( "fault",
        [ Alcotest.test_case "CLARA_FAULT spec parsing" `Quick test_fault_parse;
          Alcotest.test_case "seeded decisions replay" `Quick test_fault_determinism;
          Alcotest.test_case "probability edges and counters" `Quick test_fault_edges ] );
      ( "jsonl-fuzz",
        [ Alcotest.test_case "parser never raises" `Quick test_jsonl_fuzz;
          Alcotest.test_case "salvage agrees with full parse" `Quick
            test_salvage_agrees_on_valid ] );
      ( "server",
        [ Alcotest.test_case "pool fault becomes a typed reply" `Slow
            test_pool_fault_typed_reply;
          Alcotest.test_case "fault outcomes independent of CLARA_JOBS" `Slow
            test_pool_fault_outcomes_jobs_independent;
          Alcotest.test_case "parse fault becomes a typed reply" `Quick
            test_jsonl_fault_typed_reply;
          Alcotest.test_case "deadlines enforced and overridable" `Slow test_deadline_exceeded;
          Alcotest.test_case "shedding beyond max_pending" `Quick
            test_shedding_beyond_max_pending;
          Alcotest.test_case "disconnects logged at info" `Quick
            test_disconnect_logged_at_info ] );
      ( "drain",
        [ Alcotest.test_case "programmatic drain" `Quick test_programmatic_drain;
          Alcotest.test_case "SIGTERM drains gracefully" `Slow test_sigterm_drain ] );
      ( "client",
        [ Alcotest.test_case "retries overloaded with one id" `Quick
            test_client_retries_overloaded;
          Alcotest.test_case "timeout after a mute server" `Quick test_client_timeout_then_error;
          Alcotest.test_case "deadline replies are not retried" `Quick
            test_client_does_not_retry_deadline ] ) ]
