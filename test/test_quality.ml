(** Tests for the prediction-quality telemetry stack: the mergeable
    quantile sketch (accuracy bounds, exact merge associativity), the
    drift detectors (quiet streams stay quiet, mean shifts fire "ph",
    variance blowups fire "qdist"), SLO burn rates under an explicit
    clock, deterministic shadow sampling (CLARA_JOBS=1 and =4 produce
    byte-identical quality documents), detection of a perturbed nicsim
    profile within a bounded sample budget, and agreement between the
    HTTP [/quality] endpoint and the socket [quality] command. *)

let () = Obs.Log.set_sink Obs.Log.Off

let with_jobs n f =
  let saved = Util.Pool.jobs () in
  Util.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Util.Pool.set_jobs saved) f

(* -- Obs.Sketch -- *)

(* Same rank convention as the sketch: ceil(q*n), clamped to [1,n]. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n)))) in
  sorted.(rank - 1)

let test_sketch_accuracy () =
  let t = Obs.Sketch.create () in
  let rng = Util.Rng.create 42 in
  let values =
    Array.init 2000 (fun _ ->
        (* signed log-uniform over six decades: exercises both bucket
           arrays and a wide dynamic range *)
        let mag = 10.0 ** ((Util.Rng.float rng *. 6.0) -. 3.0) in
        if Util.Rng.float rng < 0.3 then -.mag else mag)
  in
  Array.iter (Obs.Sketch.add t) values;
  let sorted = Array.copy values in
  Array.sort compare sorted;
  Alcotest.(check int) "count" (Array.length values) (Obs.Sketch.count t);
  Alcotest.(check bool) "min exact" true
    (Float.equal sorted.(0) (Obs.Sketch.min_value t));
  Alcotest.(check bool) "max exact" true
    (Float.equal sorted.(Array.length sorted - 1) (Obs.Sketch.max_value t));
  List.iter
    (fun q ->
      let est = Obs.Sketch.quantile t q in
      let exact = exact_quantile sorted q in
      let tol = (2.0 *. Obs.Sketch.alpha t *. Float.abs exact) +. 1e-12 in
      if Float.abs (est -. exact) > tol then
        Alcotest.failf "q=%g: estimate %g vs exact %g (tol %g)" q est exact tol)
    [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ];
  (* non-finite inputs are ignored, tiny magnitudes land in the zero bucket *)
  let z = Obs.Sketch.create () in
  Obs.Sketch.add z Float.nan;
  Obs.Sketch.add z Float.infinity;
  Obs.Sketch.add z 1e-9;
  Obs.Sketch.add z 0.0;
  Alcotest.(check int) "non-finite ignored, tiny collapse to zero" 2 (Obs.Sketch.count z);
  Alcotest.(check bool) "zero-bucket quantile" true
    (Float.equal 0.0 (Obs.Sketch.quantile z 0.5));
  (* empty sketch quantiles are nan and serialize as null *)
  let e = Obs.Sketch.create () in
  Alcotest.(check bool) "empty quantile is nan" true (Float.is_nan (Obs.Sketch.quantile e 0.5))

let test_sketch_merge_associative () =
  (* integer-valued samples keep every aggregate exact in float, so the
     merged documents must be byte-identical however the merge tree is
     shaped -- the property shard-merge determinism rides on *)
  let fill lo hi =
    let s = Obs.Sketch.create () in
    for v = lo to hi do
      Obs.Sketch.add s (float_of_int v)
    done;
    s
  in
  let a = fill 1 40 and b = fill (-20) (-1) and c = fill 41 130 in
  Obs.Sketch.add c 0.0;
  let all = Obs.Sketch.create () in
  for v = 1 to 40 do Obs.Sketch.add all (float_of_int v) done;
  for v = -20 to -1 do Obs.Sketch.add all (float_of_int v) done;
  for v = 41 to 130 do Obs.Sketch.add all (float_of_int v) done;
  Obs.Sketch.add all 0.0;
  let j s = Obs.Sketch.to_json_string s in
  let left = Obs.Sketch.merge (Obs.Sketch.merge a b) c in
  let right = Obs.Sketch.merge a (Obs.Sketch.merge b c) in
  Alcotest.(check string) "merge associative" (j left) (j right);
  Alcotest.(check string) "merge equals streaming" (j all) (j left);
  Alcotest.(check string) "merge commutative"
    (j (Obs.Sketch.merge a b)) (j (Obs.Sketch.merge b a));
  (* merge must not mutate its inputs *)
  Alcotest.(check int) "left input untouched" 40 (Obs.Sketch.count a);
  Alcotest.(check int) "right input untouched" 20 (Obs.Sketch.count b);
  (* mismatched geometry is a programming error, not a silent corruption *)
  match Obs.Sketch.merge a (Obs.Sketch.create ~alpha:0.02 ()) with
  | _ -> Alcotest.fail "geometry mismatch must be rejected"
  | exception Invalid_argument _ -> ()

(* -- Obs.Drift -- *)

let test_drift_quiet () =
  let d = Obs.Drift.create ~name:"quiet" () in
  for i = 1 to 200 do
    Obs.Drift.observe d (0.1 +. (if i mod 2 = 0 then 0.001 else -0.001))
  done;
  Alcotest.(check bool) "steady stream stays quiet" false (Obs.Drift.active d);
  Alcotest.(check int) "samples counted" 200 (Obs.Drift.samples d);
  Alcotest.(check bool) "no detector" true (Obs.Drift.detector d = None)

let test_drift_mean_shift_fires_ph () =
  let d = Obs.Drift.create ~name:"shift" () in
  for _ = 1 to 40 do Obs.Drift.observe d 0.1 done;
  Alcotest.(check bool) "quiet before the shift" false (Obs.Drift.active d);
  let budget = ref 0 in
  while (not (Obs.Drift.active d)) && !budget < 10 do
    incr budget;
    Obs.Drift.observe d 0.5
  done;
  Alcotest.(check bool) "mean shift detected" true (Obs.Drift.active d);
  Alcotest.(check (option string)) "page-hinkley fired" (Some "ph") (Obs.Drift.detector d);
  Alcotest.(check bool) "fired_at recorded" true (Obs.Drift.fired_at d > 40);
  (* latched: more quiet samples do not clear it *)
  for _ = 1 to 20 do Obs.Drift.observe d 0.5 done;
  Alcotest.(check bool) "latched until reset" true (Obs.Drift.active d);
  Obs.Drift.reset d;
  Alcotest.(check bool) "reset clears" false (Obs.Drift.active d);
  Alcotest.(check int) "reset clears samples" 0 (Obs.Drift.samples d)

let test_drift_variance_fires_qdist () =
  (* symmetric alternation keeps the running mean near zero, so the
     Page-Hinkley cumulative gap stays under lambda; only the two-window
     quantile distance sees the amplitude blowup *)
  let d = Obs.Drift.create ~name:"variance" () in
  for i = 1 to 64 do
    Obs.Drift.observe d (if i mod 2 = 0 then 0.01 else -0.01)
  done;
  Alcotest.(check bool) "quiet at small amplitude" false (Obs.Drift.active d);
  let budget = ref 0 in
  while (not (Obs.Drift.active d)) && !budget < 64 do
    incr budget;
    Obs.Drift.observe d (if !budget mod 2 = 0 then 0.3 else -0.3)
  done;
  Alcotest.(check bool) "variance blowup detected" true (Obs.Drift.active d);
  Alcotest.(check (option string)) "quantile-distance fired" (Some "qdist")
    (Obs.Drift.detector d)

let test_drift_json () =
  let d = Obs.Drift.create ~name:"json" () in
  Obs.Drift.observe d 0.25;
  match Serve.Jsonl.of_string (Obs.Drift.to_json_string d) with
  | Error msg -> Alcotest.failf "drift json unparseable: %s" msg
  | Ok v ->
    Alcotest.(check (option string)) "name" (Some "json") (Serve.Jsonl.str_member "name" v);
    Alcotest.(check bool) "samples" true
      (Serve.Jsonl.member "samples" v = Some (Serve.Jsonl.Num 1.0));
    Alcotest.(check bool) "inactive detector is null" true
      (Serve.Jsonl.member "detector" v = Some Serve.Jsonl.Null)

(* -- Obs.Slo -- *)

let test_slo_burn_rates () =
  let t0 = 1_000_000.0 in
  let slo = Obs.Slo.create ~name:"avail" ~objective:0.99 Obs.Slo.Availability in
  for _ = 1 to 20 do
    Obs.Slo.record ~now:t0 slo ~good:false
  done;
  let burns = Obs.Slo.burn_rates ~now:t0 slo in
  Alcotest.(check (list string)) "default windows" [ "fast"; "slow" ] (List.map fst burns);
  List.iter
    (fun (w, b) ->
      if Float.abs (b -. 100.0) > 1e-6 then Alcotest.failf "%s burn %g, wanted 100" w b)
    burns;
  Alcotest.(check bool) "both windows over threshold -> firing" true
    (Obs.Slo.firing ~now:t0 slo);
  (* 400s later the 300s fast window has aged out; firing needs ALL windows *)
  let t1 = t0 +. 400.0 in
  Alcotest.(check bool) "fast window aged out -> not firing" false
    (Obs.Slo.firing ~now:t1 slo);
  (match List.assoc_opt "slow" (Obs.Slo.burn_rates ~now:t1 slo) with
  | Some b when Float.abs (b -. 100.0) < 1e-6 -> ()
  | Some b -> Alcotest.failf "slow burn %g after 400s, wanted 100" b
  | None -> Alcotest.fail "slow window missing");
  (* fixed clock -> stable serialization *)
  Alcotest.(check string) "json stable under a fixed clock"
    (Obs.Slo.to_json_string ~now:t1 slo)
    (Obs.Slo.to_json_string ~now:t1 slo)

let test_slo_latency_kind () =
  let t0 = 2_000_000.0 in
  let slo = Obs.Slo.create ~name:"lat" ~objective:0.9 (Obs.Slo.Latency 0.1) in
  for _ = 1 to 9 do
    Obs.Slo.record_latency ~now:t0 slo 0.05
  done;
  Obs.Slo.record_latency ~now:t0 slo 0.2;
  (* 1 bad in 10 against a 0.9 objective: bad_ratio 0.1, budget 0.1 -> burn 1 *)
  List.iter
    (fun (w, b) ->
      if Float.abs (b -. 1.0) > 1e-6 then Alcotest.failf "%s burn %g, wanted 1" w b)
    (Obs.Slo.burn_rates ~now:t0 slo);
  Alcotest.(check bool) "burn 1 is under both thresholds" false (Obs.Slo.firing ~now:t0 slo);
  let avail = Obs.Slo.create ~name:"a" ~objective:0.99 Obs.Slo.Availability in
  match Obs.Slo.record_latency ~now:t0 avail 0.1 with
  | () -> Alcotest.fail "record_latency on an availability SLO must be rejected"
  | exception Invalid_argument _ -> ()

(* -- CLARA_LATENCY_BUCKETS -- *)

let test_latency_buckets_env () =
  let set v = Unix.putenv "CLARA_LATENCY_BUCKETS" v in
  Fun.protect ~finally:(fun () -> set "") @@ fun () ->
  set "";
  let defaults = Array.to_list (Obs.Metrics.latency_buckets ()) in
  Alcotest.(check bool) "defaults non-empty" true (defaults <> []);
  set "0.001,0.01,0.1";
  Alcotest.(check (list (float 0.0))) "explicit bounds parsed" [ 0.001; 0.01; 0.1 ]
    (Array.to_list (Obs.Metrics.latency_buckets ()));
  set " 1e-6 , 1e-3 ";
  Alcotest.(check (list (float 0.0))) "whitespace tolerated" [ 1e-6; 1e-3 ]
    (Array.to_list (Obs.Metrics.latency_buckets ()));
  set "abc";
  Alcotest.(check (list (float 0.0))) "garbage falls back" defaults
    (Array.to_list (Obs.Metrics.latency_buckets ()));
  set "0.1,0.05";
  Alcotest.(check (list (float 0.0))) "non-increasing falls back" defaults
    (Array.to_list (Obs.Metrics.latency_buckets ()))

(* -- served shadow evaluation -- *)

let models =
  lazy
    (let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
     let predictor = Clara.Predictor.train ~epochs:1 ds in
     let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
     { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None })

let analyze_line ~id nf = Printf.sprintf {|{"id":%S,"cmd":"analyze","nf":%S}|} id nf

(* The deterministic members of a quality document: everything except the
   wall-clock fast-path latency sketch and the SLO sections.  A fixed
   [~now] far from the wall clock zeroes the SLO windows, but the latency
   sketch really does hold measured timings, so comparisons go member by
   member. *)
let stable_members json =
  match Serve.Jsonl.of_string json with
  | Error msg -> Alcotest.failf "quality json unparseable: %s" msg
  | Ok v ->
    List.map
      (fun k -> (k, Option.map Serve.Jsonl.to_string (Serve.Jsonl.member k v)))
      [ "enabled"; "rate"; "sampled"; "evaluated"; "eval_errors"; "shadow"; "drift" ]

let test_shadow_deterministic_across_jobs () =
  let script server =
    let nfs = [ "tcpack"; "udpipencap"; "anonipaddr" ] in
    let batch tag =
      List.concat_map
        (fun nf -> List.init 8 (fun i -> analyze_line ~id:(Printf.sprintf "%s-%s-%d" tag nf i) nf))
        nfs
    in
    (* batch 1 misses through the slow path; 2 and 3 hit the fast path *)
    List.iter
      (fun tag -> ignore (Serve.Server.process_batch server (batch tag)))
      [ "b1"; "b2"; "b3" ]
  in
  let run jobs =
    with_jobs jobs @@ fun () ->
    let s =
      Serve.Server.create ~cache_capacity:16 ~shards:4 ~shadow_rate:0.5 ~shadow_seed:42
        (Lazy.force models)
    in
    script s;
    stable_members (Serve.Server.quality_json ~now:1000.0 s)
  in
  let serial = run 1 and parallel = run 4 in
  Alcotest.(check (list (pair string (option string))))
    "quality document identical under CLARA_JOBS=1 and =4" serial parallel;
  (* and it actually shadowed something: rate 0.5 over 72 requests *)
  (match List.assoc "sampled" serial with
  | Some n ->
    let n = float_of_string n in
    if not (n > 0.0 && n < 72.0) then
      Alcotest.failf "sampling looks degenerate: %g of 72 requests" n
  | None -> Alcotest.fail "sampled member missing");
  match List.assoc "evaluated" serial with
  | Some n when float_of_string n > 0.0 -> ()
  | _ -> Alcotest.fail "nothing was shadow-evaluated"

let test_perturbation_detected () =
  (* webtcp's memory prediction is a direct count that matches the
     unperturbed simulator exactly, so the 1.4x memory-profile shift
     steps its error stream by a known ~0.29 *)
  Nicsim.Perturb.reset ();
  Fun.protect ~finally:Nicsim.Perturb.reset @@ fun () ->
  let s = Serve.Server.create ~shadow_rate:1.0 (Lazy.force models) in
  let q = Serve.Server.quality s in
  let send i = ignore (Serve.Server.handle_request s (analyze_line ~id:(string_of_int i) "webtcp")) in
  for i = 1 to 24 do send i done;
  Serve.Server.drain_quality s;
  Alcotest.(check int) "every request shadowed" 24 (Serve.Quality.evaluated q);
  Alcotest.(check bool) "memory detector quiet before the shift" false
    (Serve.Quality.drift_active q "webtcp/memory");
  Alcotest.(check bool) "compute detector quiet before the shift" false
    (Serve.Quality.drift_active q "webtcp");
  Nicsim.Perturb.set ~memory_scale:1.4 ();
  let budget = ref 0 in
  while (not (Serve.Quality.drift_active q "webtcp/memory")) && !budget < 64 do
    incr budget;
    send (24 + !budget)
  done;
  Alcotest.(check bool) "perturbation detected" true
    (Serve.Quality.drift_active q "webtcp/memory");
  Alcotest.(check bool) "within the sample budget" true (!budget < 64);
  Alcotest.(check bool) "unperturbed compute stream stays quiet" false
    (Serve.Quality.drift_active q "webtcp")

let test_unperturbed_stays_quiet () =
  Nicsim.Perturb.reset ();
  let s = Serve.Server.create ~shadow_rate:1.0 (Lazy.force models) in
  let q = Serve.Server.quality s in
  for i = 1 to 80 do
    ignore (Serve.Server.handle_request s (analyze_line ~id:(string_of_int i) "webtcp"))
  done;
  Serve.Server.drain_quality s;
  Alcotest.(check int) "all evaluated" 80 (Serve.Quality.evaluated q);
  Alcotest.(check bool) "compute detector quiet" false (Serve.Quality.drift_active q "webtcp");
  Alcotest.(check bool) "memory detector quiet" false
    (Serve.Quality.drift_active q "webtcp/memory")

(* -- surfaces agree: HTTP /quality vs socket `quality` -- *)

let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let raw = Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path in
      let n = String.length raw in
      let sent = ref 0 in
      while !sent < n do
        sent := !sent + Unix.write_substring fd raw !sent (n - !sent)
      done;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      let resp = Buffer.contents buf in
      let len = String.length resp in
      let rec scan i =
        if i + 3 >= len then Alcotest.failf "no header terminator in %S" resp
        else if
          resp.[i] = '\r' && resp.[i + 1] = '\n' && resp.[i + 2] = '\r' && resp.[i + 3] = '\n'
        then i
        else scan (i + 1)
      in
      let term = scan 0 in
      String.sub resp (term + 4) (len - term - 4))

let test_http_matches_socket () =
  Nicsim.Perturb.reset ();
  let s = Serve.Server.create ~shadow_rate:1.0 ~shadow_seed:7 (Lazy.force models) in
  List.iteri
    (fun i nf -> ignore (Serve.Server.handle_request s (analyze_line ~id:(string_of_int i) nf)))
    [ "tcpack"; "tcpack"; "udpipencap"; "udpipencap"; "tcpack"; "udpipencap" ];
  let h = Serve.Http.create ~quality:(fun () -> Serve.Server.quality_json s) ~port:0 () in
  let d = Domain.spawn (fun () -> Serve.Http.run h) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Http.stop h;
      Domain.join d)
    (fun () ->
      (* HTTP scrape first: the socket command's own SLO bookkeeping lands
         after its reply renders, so in this order both surfaces render
         from identical state *)
      let body = http_get ~port:(Serve.Http.port h) "/quality" in
      let reply = Serve.Server.handle_request s {|{"id":99,"cmd":"quality"}|} in
      let socket_doc =
        match Serve.Jsonl.of_string reply with
        | Error msg -> Alcotest.failf "quality reply unparseable: %s" msg
        | Ok v -> (
          match Serve.Jsonl.str_member "quality" v with
          | Some doc -> doc
          | None -> Alcotest.fail "quality reply carries no document")
      in
      Alcotest.(check string) "HTTP body equals the socket document" socket_doc body;
      match Serve.Jsonl.of_string body with
      | Error msg -> Alcotest.failf "quality document is not JSON: %s" msg
      | Ok v ->
        Alcotest.(check bool) "document reports enabled" true
          (Serve.Jsonl.member "enabled" v = Some (Serve.Jsonl.Bool true)))

let () =
  Alcotest.run "quality"
    [ ( "sketch",
        [ Alcotest.test_case "quantile accuracy" `Quick test_sketch_accuracy;
          Alcotest.test_case "merge associativity" `Quick test_sketch_merge_associative ] );
      ( "drift",
        [ Alcotest.test_case "steady stream quiet" `Quick test_drift_quiet;
          Alcotest.test_case "mean shift fires ph" `Quick test_drift_mean_shift_fires_ph;
          Alcotest.test_case "variance fires qdist" `Quick test_drift_variance_fires_qdist;
          Alcotest.test_case "json export" `Quick test_drift_json ] );
      ( "slo",
        [ Alcotest.test_case "burn rates and firing" `Quick test_slo_burn_rates;
          Alcotest.test_case "latency objective" `Quick test_slo_latency_kind ] );
      ( "metrics",
        [ Alcotest.test_case "latency bucket env" `Quick test_latency_buckets_env ] );
      ( "shadow",
        [ Alcotest.test_case "deterministic across jobs" `Slow
            test_shadow_deterministic_across_jobs;
          Alcotest.test_case "perturbation detected" `Slow test_perturbation_detected;
          Alcotest.test_case "unperturbed stays quiet" `Slow test_unperturbed_stays_quiet;
          Alcotest.test_case "http matches socket" `Slow test_http_matches_socket ] ) ]
