(** Tests for the HTTP telemetry exporter: endpoint bodies and statuses,
    equivalence of [GET /metrics] with the socket [metrics] command (same
    renderer, same metric families), error statuses for unknown paths /
    methods / garbage, and clean stop semantics. *)

let () = Obs.Log.set_sink Obs.Log.Off

(* -- raw HTTP over loopback TCP -- *)

let http_request ~port raw =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let n = String.length raw in
      let sent = ref 0 in
      while !sent < n do
        sent := !sent + Unix.write_substring fd raw !sent (n - !sent)
      done;
      Unix.shutdown fd Unix.SHUTDOWN_SEND;
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
      in
      drain ();
      Buffer.contents buf)

type response = { status : string; headers : (string * string) list; body : string }

let parse_response resp =
  let len = String.length resp in
  let term =
    let rec scan i =
      if i + 3 >= len then Alcotest.failf "no header terminator in %S" resp
      else if
        resp.[i] = '\r' && resp.[i + 1] = '\n' && resp.[i + 2] = '\r' && resp.[i + 3] = '\n'
      then i
      else scan (i + 1)
    in
    scan 0
  in
  let head = String.sub resp 0 term in
  let body = String.sub resp (term + 4) (len - term - 4) in
  match String.split_on_char '\n' head |> List.map (fun l -> String.trim l) with
  | [] -> Alcotest.fail "empty response head"
  | status_line :: header_lines ->
    let status =
      match String.index_opt status_line ' ' with
      | Some i -> String.sub status_line (i + 1) (String.length status_line - i - 1)
      | None -> status_line
    in
    let headers =
      List.filter_map
        (fun l ->
          match String.index_opt l ':' with
          | Some i ->
            Some
              ( String.lowercase_ascii (String.sub l 0 i),
                String.trim (String.sub l (i + 1) (String.length l - i - 1)) )
          | None -> None)
        header_lines
    in
    { status; headers; body }

let get ~port path =
  parse_response
    (http_request ~port (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path))

let header r name = List.assoc_opt name r.headers

(* -- server lifecycle shared by the suite -- *)

let with_http f =
  let h = Serve.Http.create ~port:0 () in
  let d = Domain.spawn (fun () -> Serve.Http.run h) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Http.stop h;
      Domain.join d)
    (fun () -> f (Serve.Http.port h))

(* tiny models for the socket-command comparison *)
let models =
  lazy
    (let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
     let predictor = Clara.Predictor.train ~epochs:1 ds in
     let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
     { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None })

let type_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.length l > 7 && String.sub l 0 7 = "# TYPE ")
  |> List.sort_uniq compare

let contains sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* -- tests -- *)

let test_healthz () =
  with_http @@ fun port ->
  let r = get ~port "/healthz" in
  Alcotest.(check string) "status" "200 OK" r.status;
  Alcotest.(check (option string)) "json content type" (Some "application/json")
    (header r "content-type");
  (match Serve.Jsonl.of_string r.body with
  | Error msg -> Alcotest.failf "healthz body is not JSON: %s" msg
  | Ok j ->
    Alcotest.(check (option string)) "ok flag" (Some "true")
      (Option.map Serve.Jsonl.to_string (Serve.Jsonl.member "ok" j));
    Alcotest.(check (option (float 0.0))) "pid" (Some (float_of_int (Unix.getpid ())))
      (Serve.Jsonl.num_member "pid" j);
    (match Serve.Jsonl.num_member "uptime_s" j with
    | Some u when u >= 0.0 -> ()
    | _ -> Alcotest.fail "uptime_s missing or negative"));
  Alcotest.(check (option string)) "content-length matches"
    (Some (string_of_int (String.length r.body)))
    (header r "content-length");
  Alcotest.(check (option string)) "one-shot connections" (Some "close")
    (header r "connection");
  (* query strings are stripped: the endpoints take no parameters *)
  let q = get ~port "/healthz?verbose=1" in
  Alcotest.(check string) "query string ignored" "200 OK" q.status;
  (* a wired renderer overrides the built-in document *)
  let doc = {|{"ok":true,"bundle":"b1","shards":4,"draining":false}|} in
  let h = Serve.Http.create ~health:(fun () -> doc) ~port:0 () in
  let d = Domain.spawn (fun () -> Serve.Http.run h) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Http.stop h;
      Domain.join d)
    (fun () ->
      let r = get ~port:(Serve.Http.port h) "/healthz" in
      Alcotest.(check string) "custom health document served" doc r.body)

let test_metrics_matches_socket_command () =
  with_http @@ fun port ->
  let r = get ~port "/metrics" in
  Alcotest.(check string) "status" "200 OK" r.status;
  Alcotest.(check (option string)) "prometheus content type"
    (Some "text/plain; version=0.0.4; charset=utf-8")
    (header r "content-type");
  Alcotest.(check bool) "scrape counts itself" true
    (contains {|clara_http_requests_total{path="/metrics"}|} r.body);
  Alcotest.(check bool) "runtime gauges sampled" true
    (contains "clara_runtime_gc_heap_words" r.body);
  (* the socket `metrics` command uses the same renderer: identical
     metric families (values move between scrapes, families must not) *)
  let s = Serve.Server.create ~cache_capacity:4 (Lazy.force models) in
  let reply = Serve.Server.handle_request s {|{"id":1,"cmd":"metrics"}|} in
  let socket_text =
    match Serve.Jsonl.of_string reply with
    | Ok j -> (
      match Serve.Jsonl.str_member "metrics" j with
      | Some text -> text
      | None -> Alcotest.fail "metrics reply carries an exposition")
    | Error msg -> Alcotest.failf "unparseable metrics reply: %s" msg
  in
  let again = get ~port "/metrics" in
  Alcotest.(check (list string)) "same metric families as the socket command"
    (type_lines socket_text) (type_lines again.body)

let test_trace_json () =
  with_http @@ fun port ->
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    (fun () ->
      Obs.Span.with_ "http.test.span" (fun () -> ());
      let r = get ~port "/trace.json" in
      Alcotest.(check string) "status" "200 OK" r.status;
      Alcotest.(check (option string)) "json content type" (Some "application/json")
        (header r "content-type");
      match Serve.Jsonl.of_string r.body with
      | Error msg -> Alcotest.failf "trace body is not JSON: %s" msg
      | Ok j -> (
        match Serve.Jsonl.member "traceEvents" j with
        | Some (Serve.Jsonl.Arr evs) ->
          Alcotest.(check bool) "recorded span exported" true
            (List.exists
               (fun e -> Serve.Jsonl.str_member "name" e = Some "http.test.span")
               evs)
        | _ -> Alcotest.fail "traceEvents array missing"))

let test_errors () =
  with_http @@ fun port ->
  let missing = get ~port "/nope" in
  Alcotest.(check string) "unknown path" "404 Not Found" missing.status;
  Alcotest.(check string) "404 body names the condition" "not found\n" missing.body;
  Alcotest.(check (option string)) "404 is plain text"
    (Some "text/plain; charset=utf-8") (header missing "content-type");
  let post =
    parse_response
      (http_request ~port "POST /metrics HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n")
  in
  Alcotest.(check string) "non-GET method" "405 Method Not Allowed" post.status;
  Alcotest.(check string) "405 body names the condition" "method not allowed\n" post.body;
  let garbage = parse_response (http_request ~port "GARBAGE\r\n\r\n") in
  Alcotest.(check string) "unparsable request line" "400 Bad Request" garbage.status;
  (* a head beyond the 8 KiB cap is dropped without a reply (the reader
     gives up rather than buffering unboundedly) *)
  let oversized =
    http_request ~port ("GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\nHost: x\r\n\r\n")
  in
  Alcotest.(check string) "oversized request head gets no reply" "" oversized;
  (* and the server is still fine afterwards *)
  let after = get ~port "/healthz" in
  Alcotest.(check string) "still serving after abuse" "200 OK" after.status

let test_flight_and_profile_endpoints () =
  (* without a wired renderer, /flight.json is a 404 like any unknown path *)
  with_http (fun port ->
      let r = get ~port "/flight.json" in
      Alcotest.(check string) "404 without a flight source" "404 Not Found" r.status);
  let doc = {|{"enabled":true,"recorded":3,"records":[]}|} in
  let h = Serve.Http.create ~flight:(fun () -> doc) ~port:0 () in
  let d = Domain.spawn (fun () -> Serve.Http.run h) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Http.stop h;
      Domain.join d)
    (fun () ->
      let port = Serve.Http.port h in
      let r = get ~port "/flight.json" in
      Alcotest.(check string) "status" "200 OK" r.status;
      Alcotest.(check (option string)) "json content type" (Some "application/json")
        (header r "content-type");
      Alcotest.(check string) "body is the rendered snapshot" doc r.body;
      (* /profile.folded serves the global profiler's collapsed stacks *)
      Obs.Prof.reset ();
      ignore (Obs.Prof.enter "httptest.span");
      let p = get ~port "/profile.folded" in
      Obs.Prof.exit_ ();
      Obs.Prof.reset ();
      Alcotest.(check string) "profile status" "200 OK" p.status;
      Alcotest.(check (option string)) "profile is plain text"
        (Some "text/plain; charset=utf-8") (header p "content-type"))

let test_quality_endpoint () =
  (* without a wired renderer the path is just another 404 *)
  with_http (fun port ->
      let r = get ~port "/quality" in
      Alcotest.(check string) "404 without a quality source" "404 Not Found" r.status);
  (* with a renderer the endpoint serves whatever the renderer returns *)
  let doc = {|{"enabled":false,"rate":0,"probe":"http"}|} in
  let h = Serve.Http.create ~quality:(fun () -> doc) ~port:0 () in
  let d = Domain.spawn (fun () -> Serve.Http.run h) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Http.stop h;
      Domain.join d)
    (fun () ->
      let port = Serve.Http.port h in
      let r = get ~port "/quality" in
      Alcotest.(check string) "status" "200 OK" r.status;
      Alcotest.(check (option string)) "json content type" (Some "application/json")
        (header r "content-type");
      Alcotest.(check string) "body is the rendered document" doc r.body;
      match Serve.Jsonl.of_string r.body with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "quality body is not JSON: %s" msg)

(* Repeated scrapes (including /quality) — and a stream of bad requests:
   404s, bad request lines, oversized heads — must not leak fds, and
   stopping the Obs.Runtime sampler afterwards must leave it cleanly
   stopped. *)
let test_fd_hygiene () =
  let fd_count () = Array.length (Sys.readdir "/proc/self/fd") in
  let h = Serve.Http.create ~quality:(fun () -> "{\"enabled\":false}") ~port:0 () in
  let d = Domain.spawn (fun () -> Serve.Http.run h) in
  Fun.protect
    ~finally:(fun () ->
      Serve.Http.stop h;
      Domain.join d)
    (fun () ->
      let port = Serve.Http.port h in
      Obs.Runtime.start ~period_s:0.05 ();
      (* warm up allocators / lazy metric registration before the baseline *)
      ignore (get ~port "/healthz");
      ignore (get ~port "/metrics");
      ignore (get ~port "/quality");
      ignore (get ~port "/nope");
      ignore (http_request ~port "GARBAGE\r\n\r\n");
      let oversized = "GET /" ^ String.make 9000 'a' ^ " HTTP/1.1\r\n\r\n" in
      ignore (http_request ~port oversized);
      let baseline = fd_count () in
      for _ = 1 to 25 do
        ignore (get ~port "/healthz");
        ignore (get ~port "/metrics");
        ignore (get ~port "/quality");
        ignore (get ~port "/nope");
        ignore (http_request ~port "GARBAGE\r\n\r\n");
        ignore (http_request ~port oversized)
      done;
      Obs.Runtime.stop ();
      Alcotest.(check int) "no fds leaked across 150 requests" baseline (fd_count ());
      Alcotest.(check bool) "runtime sampler stopped" false (Obs.Runtime.running ()))

let test_stop_closes_listener () =
  let h = Serve.Http.create ~port:0 () in
  let port = Serve.Http.port h in
  Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
  let d = Domain.spawn (fun () -> Serve.Http.run h) in
  let r = get ~port "/healthz" in
  Alcotest.(check string) "serving before stop" "200 OK" r.status;
  Serve.Http.stop h;
  Serve.Http.stop h;
  Domain.join d;
  (match
     let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
     Fun.protect
       ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
       (fun () -> Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port)))
   with
  | () -> Alcotest.fail "listener still accepting after stop"
  | exception Unix.Unix_error (Unix.ECONNREFUSED, _, _) -> ());
  (* the port is reusable straight away (SO_REUSEADDR) *)
  let h2 = Serve.Http.create ~port () in
  let d2 = Domain.spawn (fun () -> Serve.Http.run h2) in
  let r2 = get ~port "/healthz" in
  Alcotest.(check string) "rebound after stop" "200 OK" r2.status;
  Serve.Http.stop h2;
  Domain.join d2

let () =
  Alcotest.run "http"
    [ ( "endpoints",
        [ Alcotest.test_case "healthz" `Quick test_healthz;
          Alcotest.test_case "metrics matches the socket command" `Slow
            test_metrics_matches_socket_command;
          Alcotest.test_case "trace.json export" `Quick test_trace_json;
          Alcotest.test_case "quality endpoint" `Quick test_quality_endpoint;
          Alcotest.test_case "flight and profile endpoints" `Quick
            test_flight_and_profile_endpoints;
          Alcotest.test_case "error statuses" `Quick test_errors ] );
      ( "lifecycle",
        [ Alcotest.test_case "stop closes the listener" `Quick test_stop_closes_listener;
          Alcotest.test_case "fd hygiene under repeated scrapes" `Quick test_fd_hygiene ] ) ]
