(** Benchmark harness.

    - `bench/main.exe` (no args): regenerate every paper table and figure,
      printing the same rows/series the paper reports.  With CLARA_JOBS > 1
      the independent experiments fan out as concurrent child processes;
      output is buffered per experiment and printed in registry order, so
      the report reads identically to a serial run.
    - `bench/main.exe <id> [...]`: run selected experiments (ids: fig1,
      table1, table2, fig8..fig16).
    - `bench/main.exe micro`: Bechamel micro-benchmarks, one per
      table/figure kernel plus the Util.Pool parallel kernels.
    - `bench/main.exe parallel`: time the parallelized kernels under
      CLARA_JOBS=1 and the current job count and write the machine-readable
      BENCH_parallel.json summary (the cross-PR perf trajectory record).
    - `bench/main.exe obs`: measure the Obs.Span instrumentation overhead
      (bare kernel vs disabled spans vs enabled spans) and write
      BENCH_obs.json; exits nonzero when disabled-mode overhead exceeds 5%.
    - `bench/main.exe robust`: measure warm-path request latency through
      the retrying client (p50/p99) and the deterministic load-shedding
      rate at 1x/4x/16x overload; writes BENCH_robust.json and exits
      nonzero when the admission policy or the committed baseline drifts.
    - `bench/main.exe quality`: gate the prediction-quality telemetry:
      shadow-off warm fast-path p50 inside the 15 µs envelope, and a
      synthetic nicsim profile shift detected in a deterministic number
      of shadow samples; writes BENCH_quality.json.
    - `bench/main.exe flight`: gate the flight recorder: warm fast-path
      hit p50 with recording on must stay within 10% of recording off
      (and off must stay inside the 15 µs envelope — the profiler-off
      span hook is part of that path); writes BENCH_flight.json.
    - `bench/main.exe router`: gate the scale-out front: warm analyze
      round-trip p50 direct to one worker vs through the router (the
      routed overhead, drift-gated), and pipelined throughput through a
      1-worker vs 3-worker topology (>= 1.8x on a box with enough cores;
      report-only "degraded" below that); writes BENCH_router.json.
    - `bench/main.exe list`: list experiment ids.

    CLARA_FULL=1 enlarges training sets and sweeps. *)

let usage () =
  print_endline
    "usage: main.exe [--trace FILE] [--metrics FILE] [list | micro | parallel | serve | obs | robust | fastpath | quality | flight | router | <experiment id>...]";
  print_endline "experiments:";
  List.iter
    (fun e -> Printf.printf "  %-8s %s\n" e.Experiments.Registry.id e.Experiments.Registry.title)
    Experiments.Registry.all

(* -- concurrent experiment fan-out (process-per-experiment) --

   Experiments print straight to stdout, so in-process domain parallelism
   would interleave their reports.  Instead each experiment re-executes
   this binary as a child with stdout sent to a temp file; children run
   with CLARA_JOBS=1 (the fan-out already uses the cores) and results are
   printed in registry order, making the full report byte-identical to a
   serial run. *)

let child_env () =
  let kept =
    Array.to_list (Unix.environment ())
    |> List.filter (fun kv -> not (String.length kv >= 11 && String.sub kv 0 11 = "CLARA_JOBS="))
  in
  Array.of_list ("CLARA_JOBS=1" :: kept)

let spawn_experiment env (e : Experiments.Registry.experiment) =
  let path = Filename.temp_file ("clara_bench_" ^ e.Experiments.Registry.id) ".out" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name; e.Experiments.Registry.id |]
      env Unix.stdin fd fd
  in
  Unix.close fd;
  (pid, path)

let cat_file path =
  let ic = open_in path in
  (try
     while true do
       print_endline (input_line ic)
     done
   with End_of_file -> ());
  close_in ic

let run_all_concurrent jobs =
  let env = child_env () in
  let pending = Queue.create () in
  List.iter (fun e -> Queue.add e pending) Experiments.Registry.all;
  let running = Hashtbl.create 16 in
  (* id -> output file, filled as children finish *)
  let finished = Hashtbl.create 16 in
  let failed = ref [] in
  let reap () =
    let pid, status = Unix.wait () in
    match Hashtbl.find_opt running pid with
    | None -> ()
    | Some ((e : Experiments.Registry.experiment), path) ->
      Hashtbl.remove running pid;
      Hashtbl.replace finished e.Experiments.Registry.id path;
      if status <> Unix.WEXITED 0 then failed := e.Experiments.Registry.id :: !failed
  in
  while (not (Queue.is_empty pending)) || Hashtbl.length running > 0 do
    if (not (Queue.is_empty pending)) && Hashtbl.length running < jobs then begin
      let e = Queue.pop pending in
      let pid, path = spawn_experiment env e in
      Hashtbl.replace running pid (e, path)
    end
    else reap ()
  done;
  List.iter
    (fun (e : Experiments.Registry.experiment) ->
      match Hashtbl.find_opt finished e.Experiments.Registry.id with
      | Some path ->
        cat_file path;
        Sys.remove path
      | None -> ())
    Experiments.Registry.all;
  match !failed with
  | [] -> ()
  | ids ->
    Printf.printf "FAILED experiments: %s\n" (String.concat ", " ids);
    exit 1

let run_all () =
  let jobs = Util.Pool.size () in
  if jobs > 1 then run_all_concurrent jobs else Experiments.Registry.run_all ();
  print_newline ();
  print_endline "All experiments complete. See EXPERIMENTS.md for paper-vs-measured notes."

(* -- Bechamel micro-benchmarks: one kernel per table/figure -- *)

let micro_tests () =
  let open Bechamel in
  let spec = { Workload.default with Workload.n_packets = 200; Workload.proto = Workload.Mixed } in
  let mazu = Nf_lang.Corpus.find "Mazu-NAT" in
  let ported = Nicsim.Nic.port mazu spec in
  let demand = ported.Nicsim.Nic.demand in
  let ir = Nf_frontend.Lower.lower_element (Nf_lang.Corpus.find "iplookup_256") in
  let vocab = Clara.Vocab.create () in
  let prep = Clara.Prepare.prepare vocab mazu in
  let tokens =
    match List.filter (fun b -> Array.length b.Clara.Prepare.tokens > 4) prep.Clara.Prepare.blocks with
    | b :: _ -> b.Clara.Prepare.tokens
    | [] -> [| 1; 2; 3; 4 |]
  in
  let lstm = Mlkit.Lstm.create ~vocab:64 99 in
  let stats = Synth.Ast_stats.of_corpus (Nf_lang.Corpus.table2 ()) in
  let packets = Workload.generate spec in
  let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:10 ()) () in
  (* pool kernels: raw region overhead and a real fold-parallel crossval *)
  let pool_input = Array.init 4096 float_of_int in
  let cv_xs = Array.init 160 (fun i -> [| float_of_int (i mod 13); float_of_int (i mod 7) |]) in
  let cv_ys = Array.map (fun x -> (2.0 *. x.(0)) -. x.(1)) cv_xs in
  let cv ~jobs () =
    let saved = Util.Pool.jobs () in
    Util.Pool.set_jobs jobs;
    Fun.protect
      ~finally:(fun () -> Util.Pool.set_jobs saved)
      (fun () ->
        Mlkit.Crossval.cv_regression ~k:5
          ~fit:(fun xs ys -> Mlkit.Tree.gbdt_fit ~n_stages:10 xs ys)
          ~predict:Mlkit.Tree.gbdt_predict cv_xs cv_ys)
  in
  [ Test.make ~name:"fig1:port+measure Mazu-NAT"
      (Staged.stage (fun () -> ignore (Nicsim.Nic.measure ~cores:8 ported)));
    Test.make ~name:"table1:synthesize program"
      (Staged.stage (fun () -> ignore (Synth.Generator.generate ~stats ~seed:77 "bench_syn")));
    Test.make ~name:"table2:prepare element"
      (Staged.stage (fun () -> ignore (Clara.Prepare.prepare (Clara.Vocab.create ()) mazu)));
    Test.make ~name:"fig8:lstm inference"
      (Staged.stage (fun () -> ignore (Mlkit.Lstm.predict lstm tokens)));
    Test.make ~name:"fig9:classify element"
      (Staged.stage (fun () -> ignore (Clara.Algo_id.classify algo mazu)));
    Test.make ~name:"fig10:nfcc compile iplookup"
      (Staged.stage (fun () -> ignore (Nicsim.Nfcc.compile ir)));
    Test.make ~name:"fig11:core sweep"
      (Staged.stage (fun () -> ignore (Nicsim.Multicore.sweep demand)));
    Test.make ~name:"fig12:placement ILP"
      (Staged.stage (fun () -> ignore (Clara.Placement.solve mazu ported)));
    Test.make ~name:"fig13:coalescing suggest"
      (Staged.stage (fun () -> ignore (Clara.Coalesce.suggest mazu ported.Nicsim.Nic.profile)));
    Test.make ~name:"fig14:colocate pair"
      (Staged.stage (fun () -> ignore (Nicsim.Colocate.colocate demand demand)));
    Test.make ~name:"fig15:reconfigure placement"
      (Staged.stage (fun () -> ignore (Nicsim.Nic.reconfigure ported Nicsim.Nic.naive_port)));
    Test.make ~name:"fig16:host interp 200 pkts"
      (Staged.stage (fun () ->
           let interp = Nf_lang.Interp.create ~mode:Nf_lang.State.Nic mazu in
           ignore (Nf_lang.Interp.run interp packets)));
    Test.make ~name:"pool:parallel_map 4k sqrt"
      (Staged.stage (fun () -> ignore (Util.Pool.parallel_map sqrt pool_input)));
    Test.make ~name:"pool:serial_map 4k sqrt (baseline)"
      (Staged.stage (fun () -> ignore (Array.map sqrt pool_input)));
    Test.make ~name:"pool:crossval gbdt k=5 (parallel folds)"
      (Staged.stage (fun () -> ignore (cv ~jobs:(max 2 (Util.Pool.jobs ())) ())));
    Test.make ~name:"pool:crossval gbdt k=5 (serial folds)"
      (Staged.stage (fun () -> ignore (cv ~jobs:1 ()))) ]

let run_micro () =
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  print_endline "Bechamel micro-benchmarks (monotonic clock, ns/run):";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"clara" [ test ]) in
      let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ ns ] -> Printf.printf "  %-45s %14.0f ns/run\n%!" name ns
          | Some _ | None -> Printf.printf "  %-45s (no estimate)\n%!" name)
        results)
    (micro_tests ())

(* -- BENCH_parallel.json: speedup of the optimized compute core over the
   retained references (Mlkit.Naive, *_reference), at jobs in {1, 2, 4},
   with hard floors.

   Methodology: for every kernel and jobs level, the optimized path (at
   [jobs]) and its pinned reference (always serial — it is the frozen
   baseline) run interleaved inside one rep loop, keeping the minimum of
   each.  Pairing fast and reference back-to-back sheds machine drift
   that separate best-of loops let through; on this box it turns a
   ±0.2x wobble into a stable ratio.  On a single-core host the pool
   clamps every level to width 1 (effective_jobs in the JSON records
   this), so the speedups measure the flat-buffer/algorithmic rewrite;
   on a multi-core host the higher levels add domain parallelism on
   top. -- *)

let parallel_kernels () =
  let rng = Util.Rng.create 7 in
  let a_rows = Mlkit.La.randn_mat rng 192 192 in
  let b_rows = Mlkit.La.randn_mat rng 192 192 in
  let fa = Mlkit.La.Flat.of_rows a_rows and fb = Mlkit.La.Flat.of_rows b_rows in
  let fc = Mlkit.La.Flat.create 192 192 in
  let cv_xs = Array.init 240 (fun i -> Array.init 8 (fun d -> float_of_int ((i * (d + 3)) mod 17))) in
  let cv_ys = Array.map (fun x -> Array.fold_left ( +. ) 0.0 x) cv_xs in
  let lstm_data =
    let rng = Util.Rng.create 31 in
    Array.init 96 (fun _ ->
        (Array.init (8 + Util.Rng.int rng 24) (fun _ -> Util.Rng.int rng 48), [| Util.Rng.float rng *. 40.0 |]))
  in
  let wspec = { Workload.default with Workload.n_packets = 20_000 } in
  (* (name, reps, optimized, reference); reps scale inversely with kernel
     cost so the whole gate stays around a minute *)
  [ ( "la_gemm_192", 7,
      (fun () -> Mlkit.La.Flat.gemm ~a:fa ~b:fb fc),
      fun () -> ignore (Mlkit.Naive.matmul a_rows b_rows) );
    ( "lstm_fit_batch8", 3,
      (fun () ->
        let m = Mlkit.Lstm.create ~vocab:48 17 in
        Mlkit.Lstm.fit ~epochs:2 ~batch:8 m lstm_data),
      fun () ->
        let m = Mlkit.Naive.lstm_create ~vocab:48 17 in
        Mlkit.Naive.lstm_fit ~epochs:2 ~batch:8 m lstm_data );
    ( "gbdt_fit_240x8", 3,
      (fun () -> ignore (Mlkit.Tree.gbdt_fit ~n_stages:40 cv_xs cv_ys)),
      fun () -> ignore (Mlkit.Naive.gbdt_fit ~n_stages:40 cv_xs cv_ys) );
    ( "crossval_gbdt_k5", 3,
      (fun () ->
        ignore
          (Mlkit.Crossval.cv_regression ~k:5
             ~fit:(fun xs ys -> Mlkit.Tree.gbdt_fit ~n_stages:20 xs ys)
             ~predict:Mlkit.Tree.gbdt_predict cv_xs cv_ys)),
      fun () ->
        ignore
          (Mlkit.Crossval.cv_regression ~k:5
             ~fit:(fun xs ys -> Mlkit.Naive.gbdt_fit ~n_stages:20 xs ys)
             ~predict:Mlkit.Tree.gbdt_predict cv_xs cv_ys) );
    ( "synthesize_dataset_n30", 7,
      (fun () -> ignore (Clara.Predictor.synthesize_dataset ~n:30 ())),
      fun () -> ignore (Clara.Predictor.synthesize_dataset_reference ~n:30 ()) );
    ( "scaleout_samples_n8", 2,
      (fun () -> ignore (Clara.Scaleout.training_samples ~n_programs:8 ())),
      fun () -> ignore (Clara.Scaleout.training_samples_reference ~n_programs:8 ()) );
    ( "workload_generate_20k", 5,
      (fun () -> ignore (Workload.generate wspec)),
      fun () -> ignore (Workload.generate_reference wspec) ) ]

let parallel_jobs_levels = [ 1; 2; 4 ]

(* Speedup floors.  jobs=1 is informational (the rewrite should already
   win serially, but only the gated levels fail the run); jobs=2 must
   never lose to the reference; jobs=4 must show the work paying off,
   and the embarrassingly-parallel scale-out sweep must scale. *)
let parallel_floor ~name ~jobs =
  if jobs >= 4 then Some (if name = "scaleout_samples_n8" then 2.0 else 1.5)
  else if jobs >= 2 then Some 1.0
  else None

let run_parallel_report () =
  let saved = Util.Pool.jobs () in
  let cores = Domain.recommended_domain_count () in
  let rows =
    List.map
      (fun (name, reps, fast, refr) ->
        let levels =
          List.map
            (fun j ->
              (* warm both paths (allocator, memo tables) before timing *)
              Util.Pool.set_jobs j;
              fast ();
              Util.Pool.set_jobs 1;
              refr ();
              let eff = ref 1 in
              let bf = ref infinity and br = ref infinity in
              for _ = 1 to reps do
                Util.Pool.set_jobs j;
                eff := Util.Pool.size ();
                let t0 = Unix.gettimeofday () in
                fast ();
                let t1 = Unix.gettimeofday () in
                Util.Pool.set_jobs 1;
                let t2 = Unix.gettimeofday () in
                refr ();
                let t3 = Unix.gettimeofday () in
                bf := min !bf (t1 -. t0);
                br := min !br (t3 -. t2)
              done;
              (j, !eff, !bf, !br))
            parallel_jobs_levels
        in
        (name, levels))
      (parallel_kernels ())
  in
  Util.Pool.set_jobs saved;
  let speedup fast refr = refr /. Float.max 1e-9 fast in
  let violations = ref [] in
  List.iter
    (fun (name, levels) ->
      List.iter
        (fun (j, _eff, bf, br) ->
          match parallel_floor ~name ~jobs:j with
          | Some floor when speedup bf br < floor ->
            violations :=
              Printf.sprintf "%s at jobs=%d: %.2fx < required %.2fx" name j (speedup bf br) floor
              :: !violations
          | _ -> ())
        levels)
    rows;
  let pass = !violations = [] in
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n  \"schema\": \"clara-parallel-bench/2\",\n  \"cores\": %d,\n  \"jobs_levels\": [%s],\n\
    \  \"pass\": %b,\n  \"kernels\": [\n"
    cores
    (String.concat ", " (List.map string_of_int parallel_jobs_levels))
    pass;
  List.iteri
    (fun i (name, levels) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"reference_s\": %.6f, \"levels\": [\n" name
        (match levels with (_, _, _, br) :: _ -> br | [] -> 0.0);
      List.iteri
        (fun k (j, eff, bf, br) ->
          Printf.fprintf oc
            "      {\"jobs\": %d, \"effective_jobs\": %d, \"fast_s\": %.6f, \"ref_s\": %.6f, \
             \"speedup\": %.3f%s%s}%s\n"
            j eff bf br (speedup bf br)
            (match parallel_floor ~name ~jobs:j with
            | Some f -> Printf.sprintf ", \"floor\": %.1f" f
            | None -> "")
            (* a clamped level measured the rewrite, not domain
               parallelism: mark it so readers don't compare the number
               across hosts *)
            (if eff < j then ", \"degraded\": true" else "")
            (if k = List.length levels - 1 then "" else ","))
        levels;
      Printf.fprintf oc "    ]}%s\n" (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf
    "Compute-core speedups vs retained references (cores=%d), also written to BENCH_parallel.json:\n"
    cores;
  List.iter
    (fun (name, levels) ->
      Printf.printf "  %-24s" name;
      List.iter
        (fun (j, eff, bf, br) ->
          let s = speedup bf br in
          let gated = match parallel_floor ~name ~jobs:j with Some f -> s < f | None -> false in
          Printf.printf "  j%d(w%d) %6.2fx%s" j eff s (if gated then "!" else " "))
        levels;
      (match levels with
      | (_, _, bf, br) :: _ -> Printf.printf "  [ref %7.1f ms, fast %7.1f ms serial]" (br *. 1e3) (bf *. 1e3)
      | [] -> ());
      print_newline ())
    rows;
  let max_jobs = List.fold_left max 1 parallel_jobs_levels in
  if cores < max_jobs then
    Printf.printf
      "WARNING: %d core(s) < jobs=%d; clamped levels are marked \"degraded\" in \
       BENCH_parallel.json and measure the serial rewrite only\n"
      cores max_jobs;
  if not pass then begin
    List.iter (fun v -> Printf.printf "FAIL: %s\n" v) (List.rev !violations);
    exit 1
  end;
  Printf.printf "PASS: all kernels meet their speedup floors\n"

(* -- BENCH_serve.json: why the artifact store exists — cold train+analyze
   vs warm-starting from a persisted bundle vs a cache hit in the insight
   server, for the same (NF, workload) query -- *)

let run_serve_report () =
  let nf = "cmsketch" in
  let elt = Nf_lang.Corpus.find nf in
  let spec = Serve.Server.mixed_spec in
  let cold, models =
    let t0 = Unix.gettimeofday () in
    let models = Clara.Pipeline.train ~quick:true ~with_colocation:true () in
    ignore (Clara.Pipeline.report models elt spec);
    (Unix.gettimeofday () -. t0, models)
  in
  let dir = Filename.temp_file "clara_bundle" ".d" in
  Sys.remove dir;
  let manifest =
    { Persist.Bundle.seed = 501; epochs = 4;
      corpus_hash = Persist.Bundle.corpus_hash ();
      built_at = "1970-01-01T00:00:00Z" }
  in
  Persist.Bundle.save ~dir manifest models;
  let warm, loaded =
    let t0 = Unix.gettimeofday () in
    let bundle =
      match Persist.Bundle.load ~dir with
      | Ok b -> b
      | Error e -> failwith (Persist.Wire.error_to_string e)
    in
    ignore (Clara.Pipeline.report bundle.Persist.Bundle.models elt spec);
    (Unix.gettimeofday () -. t0, bundle.Persist.Bundle.models)
  in
  let server = Serve.Server.create loaded in
  let query =
    Printf.sprintf "{\"id\":1,\"cmd\":\"analyze\",\"nf\":\"%s\",\"workload\":\"mixed\"}" nf
  in
  ignore (Serve.Server.handle_request server query);
  let cached =
    let t0 = Unix.gettimeofday () in
    ignore (Serve.Server.handle_request server query);
    Unix.gettimeofday () -. t0
  in
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Unix.rmdir dir;
  let speedup over = cold /. Float.max 1e-9 over in
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"clara-serve-bench/1\",\n\
    \  \"nf\": \"%s\",\n\
    \  \"workload\": \"mixed\",\n\
    \  \"cold_train_s\": %.6f,\n\
    \  \"warm_load_s\": %.6f,\n\
    \  \"cached_query_s\": %.6f,\n\
    \  \"warm_speedup\": %.1f,\n\
    \  \"cached_speedup\": %.1f\n\
     }\n"
    nf cold warm cached (speedup warm) (speedup cached);
  close_out oc;
  Printf.printf "Serve path timings for %s (also written to BENCH_serve.json):\n" nf;
  Printf.printf "  cold  (train + analyze)   %10.3f s\n" cold;
  Printf.printf "  warm  (load + analyze)    %10.3f s   %8.1fx vs cold\n" warm (speedup warm);
  Printf.printf "  cached (LRU hit in serve) %10.6f s   %8.1fx vs cold\n" cached (speedup cached)

(* -- BENCH_obs.json: what the span instrumentation costs — a bare kernel
   vs the same kernel under [Obs.Span.with_] with recording disabled (the
   always-compiled-in production configuration) vs enabled.  The disabled
   overhead is the number that matters: it is paid by every instrumented
   call in every untraced run, so the report gates on it. -- *)

(* Roughly the size of the smallest instrumented units (a block encode, a
   GBDT stage): big enough that one atomic load is noise, small enough
   that a per-span cost would show. *)
let obs_kernel () =
  let acc = ref 0.0 in
  for i = 1 to 256 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  !acc

(* Minimum over reps sheds scheduler and GC noise. *)
let obs_time ~iters ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let sink = ref 0.0 in
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      sink := !sink +. f ()
    done;
    let dt = Unix.gettimeofday () -. t0 in
    ignore (Sys.opaque_identity !sink);
    if dt < !best then best := dt
  done;
  !best

(* The committed baseline's disabled overhead, for the drift gate: a fresh
   measurement more than [drift_limit_pp] percentage points away from the
   checked-in BENCH_obs.json means the disabled path regressed (or the
   baseline went stale) and the run exits nonzero. *)
let read_committed_disabled_pct () =
  if not (Sys.file_exists "BENCH_obs.json") then None
  else
    let ic = open_in_bin "BENCH_obs.json" in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    (* the file is pretty-printed; Jsonl wants one line *)
    let flat = String.concat " " (String.split_on_char '\n' raw) in
    match Serve.Jsonl.of_string flat with
    | Ok j -> Serve.Jsonl.num_member "disabled_overhead_pct" j
    | Error _ -> None

let run_obs_report () =
  let iters = 100_000 and reps = 5 in
  let committed = read_committed_disabled_pct () in
  let saved = Obs.Span.enabled () in
  let instrumented () = Obs.Span.with_ ~cat:"bench" "bench.obs_kernel" obs_kernel in
  Obs.Span.set_enabled false;
  let bare = obs_time ~iters ~reps obs_kernel in
  let disabled = obs_time ~iters ~reps instrumented in
  Obs.Span.set_enabled true;
  Obs.Span.reset ();
  let enabled = obs_time ~iters ~reps instrumented in
  Obs.Span.reset ();
  Obs.Span.set_enabled saved;
  let per_call_ns t = t /. float_of_int iters *. 1e9 in
  let overhead_pct t = (t -. bare) /. Float.max 1e-12 bare *. 100.0 in
  let disabled_pct = overhead_pct disabled and enabled_pct = overhead_pct enabled in
  let limit_pct = 5.0 in
  let pass = disabled_pct <= limit_pct in
  let oc = open_out "BENCH_obs.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"clara-obs-bench/1\",\n\
    \  \"iters\": %d,\n\
    \  \"bare_ns_per_call\": %.2f,\n\
    \  \"disabled_ns_per_call\": %.2f,\n\
    \  \"enabled_ns_per_call\": %.2f,\n\
    \  \"disabled_overhead_pct\": %.2f,\n\
    \  \"enabled_overhead_pct\": %.2f,\n\
    \  \"disabled_limit_pct\": %.1f,\n\
    \  \"pass\": %b\n\
     }\n"
    iters (per_call_ns bare) (per_call_ns disabled) (per_call_ns enabled) disabled_pct
    enabled_pct limit_pct pass;
  close_out oc;
  Printf.printf "Span instrumentation overhead (also written to BENCH_obs.json):\n";
  Printf.printf "  bare kernel       %10.1f ns/call\n" (per_call_ns bare);
  Printf.printf "  spans disabled    %10.1f ns/call   overhead %+6.2f%% (limit %.1f%%)\n"
    (per_call_ns disabled) disabled_pct limit_pct;
  Printf.printf "  spans enabled     %10.1f ns/call   overhead %+6.2f%%\n" (per_call_ns enabled)
    enabled_pct;
  if not pass then begin
    Printf.printf "FAIL: disabled-span overhead %.2f%% exceeds %.1f%%\n" disabled_pct limit_pct;
    exit 1
  end;
  let drift_limit_pp = 10.0 in
  match committed with
  | None -> Printf.printf "  (no committed BENCH_obs.json baseline; drift gate skipped)\n"
  | Some baseline ->
    let drift = Float.abs (disabled_pct -. baseline) in
    Printf.printf "  drift vs committed baseline: %+.2f pp (baseline %+.2f%%, limit %.1f pp)\n"
      (disabled_pct -. baseline) baseline drift_limit_pp;
    if drift > drift_limit_pp then begin
      Printf.printf "FAIL: disabled-span overhead drifted %.2f pp from the committed baseline\n"
        drift;
      exit 1
    end

(* -- BENCH_robust.json: what the hardening layer costs and guarantees —
   request latency through the retrying client against a live socket
   server (p50/p99), and the load-shedding rate at 1x/4x/16x overload.
   Shedding is deterministic: a batch of [f * max_pending] lines admits
   exactly [max_pending], so the rate is 1 - 1/f bit-for-bit; the drift
   gate on the 16x rate therefore catches any change to the admission
   policy, not measurement noise. -- *)

let percentile sorted p =
  let n = Array.length sorted in
  let idx = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) idx))

let read_committed_shed_16x () =
  if not (Sys.file_exists "BENCH_robust.json") then None
  else
    let ic = open_in_bin "BENCH_robust.json" in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    let flat = String.concat " " (String.split_on_char '\n' raw) in
    match Serve.Jsonl.of_string flat with
    | Ok j -> Serve.Jsonl.num_member "shed_rate_16x" j
    | Error _ -> None

let run_robust_report () =
  let committed = read_committed_shed_16x () in
  let models =
    let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
    let predictor = Clara.Predictor.train ~epochs:1 ds in
    let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
    { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None }
  in
  (* latency: warm-cache analyze round trips through Serve.Client against
     the real socket server (connect is reused, ids are idempotent) *)
  let n_requests = 200 in
  let server = Serve.Server.create ~cache_capacity:16 models in
  ignore
    (Serve.Server.process_batch server [ {|{"cmd":"analyze","nf":"tcpack","workload":"mixed"}|} ]);
  let path = Filename.temp_file "clara_bench_robust" ".sock" in
  Sys.remove path;
  let srv = Domain.spawn (fun () -> Serve.Server.run server ~socket_path:path) in
  let client = Serve.Client.create ~timeout_s:10.0 ~retries:2 ~socket_path:path () in
  let analyze_fields =
    [ ("cmd", Serve.Jsonl.Str "analyze"); ("nf", Serve.Jsonl.Str "tcpack");
      ("workload", Serve.Jsonl.Str "mixed") ]
  in
  let lat = Array.make n_requests 0.0 in
  for i = 0 to n_requests - 1 do
    let t0 = Unix.gettimeofday () in
    (match Serve.Client.request client analyze_fields with
    | Ok _ -> ()
    | Error e -> failwith ("robust bench query failed: " ^ Serve.Client.error_to_string e));
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.0
  done;
  ignore (Serve.Client.request client [ ("cmd", Serve.Jsonl.Str "shutdown") ]);
  Serve.Client.close client;
  Domain.join srv;
  Array.sort compare lat;
  let p50 = percentile lat 50.0 and p99 = percentile lat 99.0 in
  (* shedding: oversized batches straight through process_batch on a
     fresh server with a small admission bound *)
  let max_pending = 64 in
  let shed_rate factor =
    let s = Serve.Server.create ~cache_capacity:16 ~max_pending models in
    let total = factor * max_pending in
    let lines =
      List.init total (fun i -> Printf.sprintf {|{"id":%d,"cmd":"ping"}|} i)
    in
    let replies = Serve.Server.process_batch s lines in
    let overloaded =
      List.length
        (List.filter
           (fun line ->
             match Serve.Jsonl.of_string line with
             | Ok v -> Serve.Jsonl.member "overloaded" v = Some (Serve.Jsonl.Bool true)
             | Error _ -> false)
           replies)
    in
    if List.length replies <> total then failwith "robust bench: reply count mismatch";
    float_of_int overloaded /. float_of_int total
  in
  let shed_1x = shed_rate 1 and shed_4x = shed_rate 4 and shed_16x = shed_rate 16 in
  let oc = open_out "BENCH_robust.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"clara-robust-bench/1\",\n\
    \  \"requests\": %d,\n\
    \  \"latency_p50_ms\": %.3f,\n\
    \  \"latency_p99_ms\": %.3f,\n\
    \  \"max_pending\": %d,\n\
    \  \"shed_rate_1x\": %.4f,\n\
    \  \"shed_rate_4x\": %.4f,\n\
    \  \"shed_rate_16x\": %.4f\n\
     }\n"
    n_requests p50 p99 max_pending shed_1x shed_4x shed_16x;
  close_out oc;
  Printf.printf "Robustness report (also written to BENCH_robust.json):\n";
  Printf.printf "  warm analyze via client   p50 %8.3f ms   p99 %8.3f ms   (%d requests)\n" p50
    p99 n_requests;
  Printf.printf "  shed rate (max_pending=%d)   1x %6.4f   4x %6.4f   16x %6.4f\n" max_pending
    shed_1x shed_4x shed_16x;
  let expected f = 1.0 -. (1.0 /. float_of_int f) in
  List.iter
    (fun (f, rate) ->
      if Float.abs (rate -. expected f) > 1e-9 then begin
        Printf.printf "FAIL: shed rate at %dx is %.4f, admission policy expects %.4f\n" f rate
          (expected f);
        exit 1
      end)
    [ (1, shed_1x); (4, shed_4x); (16, shed_16x) ];
  let drift_limit = 0.02 in
  match committed with
  | None -> Printf.printf "  (no committed BENCH_robust.json baseline; drift gate skipped)\n"
  | Some baseline ->
    let drift = Float.abs (shed_16x -. baseline) in
    Printf.printf "  drift vs committed baseline: %+.4f (baseline %.4f, limit %.2f)\n"
      (shed_16x -. baseline) baseline drift_limit;
    if drift > drift_limit then begin
      Printf.printf "FAIL: 16x shed rate drifted %.4f from the committed baseline\n" drift;
      exit 1
    end

(* -- BENCH_fastpath.json: what the fast-path/slow-path split buys — the
   in-process latency of a warm fast-path hit (p50/p99 over blocks of
   calls, gated hard at p50 < 15 µs), and sustained req/s through the
   event-loop socket server at 1/4/16 concurrent pipelined clients on a
   warm cache (gated hard at >= 100k req/s for the best concurrency).
   The replies themselves are cross-checked first: a fast-path reply must
   equal the slow-path reply for the same request modulo exactly the
   cached/path fields, so the numbers can never come from a route that
   answers something different. -- *)

let read_committed_fastpath_rate () =
  if not (Sys.file_exists "BENCH_fastpath.json") then None
  else
    let ic = open_in_bin "BENCH_fastpath.json" in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    let flat = String.concat " " (String.split_on_char '\n' raw) in
    match Serve.Jsonl.of_string flat with
    | Ok j -> Serve.Jsonl.num_member "warm_reqs_per_s_best" j
    | Error _ -> None

(* Replace the single occurrence of [sub] in [s] with [by]; None when
   absent. *)
let subst_once s sub by =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  Option.map (fun i -> String.sub s 0 i ^ by ^ String.sub s (i + m) (n - i - m)) (go 0)

let run_fastpath_report () =
  let committed = read_committed_fastpath_rate () in
  let models =
    let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
    let predictor = Clara.Predictor.train ~epochs:1 ds in
    let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
    { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None }
  in
  (* max_pending must cover a full round of every client's pipelined
     block (16 clients x depth 200) or the rates would count overload
     errors instead of served requests *)
  let server = Serve.Server.create ~cache_capacity:16 ~max_pending:8192 models in
  let warm_line = {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"b"}|} in
  let fresh = Serve.Server.handle_request server warm_line in
  (* correctness cross-check before any timing: byte equality modulo the
     cached/path markers *)
  let fast = Serve.Server.handle_request server warm_line in
  let slow_hit =
    (* the escaped member pushes the same request down the slow path *)
    Serve.Server.handle_request server
      {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"b","x":"a\\b"}|}
  in
  let fast_marker = {|"cached":true,"path":"fast"|} in
  (match subst_once fast fast_marker {|"cached":true,"path":"slow"|} with
  | Some normalized when normalized = slow_hit -> ()
  | _ ->
    Printf.printf "FAIL: fast-path reply is not byte-equal to the slow-path reply\n";
    Printf.printf "  fast: %s\n  slow: %s\n" fast slow_hit;
    exit 1);
  (match subst_once fast fast_marker {|"cached":false,"path":"slow"|} with
  | Some normalized when normalized = fresh -> ()
  | _ ->
    Printf.printf "FAIL: fast-path reply is not byte-equal to the install reply\n";
    exit 1);
  (* in-process fast-path latency: blocks of calls bound the 1 µs clock
     granularity; keep the per-request time of each block *)
  let block = 64 and n_blocks = 300 in
  let samples = Array.make n_blocks 0.0 in
  for b = 0 to n_blocks - 1 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to block do
      ignore (Serve.Server.handle_request server warm_line)
    done;
    samples.(b) <- (Unix.gettimeofday () -. t0) /. float_of_int block *. 1e6
  done;
  Array.sort compare samples;
  let p50_us = percentile samples 50.0 and p99_us = percentile samples 99.0 in
  (* sustained throughput through the socket server: pipelined blocks on
     warm cache, counting reply newlines *)
  let path = Filename.temp_file "clara_bench_fastpath" ".sock" in
  Sys.remove path;
  let srv = Domain.spawn (fun () -> Serve.Server.run server ~socket_path:path) in
  let connect_with_retry () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let rec go attempts =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> fd
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when attempts > 0 ->
        Unix.sleepf 0.02;
        go (attempts - 1)
    in
    go 200
  in
  let pipeline_depth = 200 in
  let request_block =
    String.concat ""
      (List.init pipeline_depth (fun i ->
           Printf.sprintf {|{"id":%d,"cmd":"analyze","nf":"tcpack","workload":"mixed"}|} i ^ "\n"))
  in
  let client_loop dur =
    let fd = connect_with_retry () in
    let buf = Bytes.create 65536 in
    let count = ref 0 in
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < dur do
      let len = String.length request_block in
      let off = ref 0 in
      while !off < len do
        off := !off + Unix.write_substring fd request_block !off (len - !off)
      done;
      let replies = ref 0 in
      while !replies < pipeline_depth do
        let n = Unix.read fd buf 0 (Bytes.length buf) in
        if n = 0 then failwith "fastpath bench: server closed mid-block";
        for i = 0 to n - 1 do
          if Bytes.get buf i = '\n' then incr replies
        done
      done;
      count := !count + pipeline_depth
    done;
    Unix.close fd;
    !count
  in
  let throughput concurrency =
    let dur = 0.6 in
    let t0 = Unix.gettimeofday () in
    let clients = List.init concurrency (fun _ -> Domain.spawn (fun () -> client_loop dur)) in
    let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 clients in
    float_of_int total /. (Unix.gettimeofday () -. t0)
  in
  let rate_1 = throughput 1 in
  let rate_4 = throughput 4 in
  let rate_16 = throughput 16 in
  (* stop the server through the front door *)
  let fd = connect_with_retry () in
  let bye = {|{"cmd":"shutdown"}|} ^ "\n" in
  ignore (Unix.write_substring fd bye 0 (String.length bye));
  ignore (Unix.read fd (Bytes.create 256) 0 256);
  Unix.close fd;
  Domain.join srv;
  let best = Float.max rate_1 (Float.max rate_4 rate_16) in
  let oc = open_out "BENCH_fastpath.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"clara-fastpath-bench/1\",\n\
    \  \"fast_hit_p50_us\": %.3f,\n\
    \  \"fast_hit_p99_us\": %.3f,\n\
    \  \"pipeline_depth\": %d,\n\
    \  \"warm_reqs_per_s_1c\": %.0f,\n\
    \  \"warm_reqs_per_s_4c\": %.0f,\n\
    \  \"warm_reqs_per_s_16c\": %.0f,\n\
    \  \"warm_reqs_per_s_best\": %.0f\n\
     }\n"
    p50_us p99_us pipeline_depth rate_1 rate_4 rate_16 best;
  close_out oc;
  Printf.printf "Fast-path report (also written to BENCH_fastpath.json):\n";
  Printf.printf "  warm fast-path hit (in-process)   p50 %8.3f us   p99 %8.3f us\n" p50_us p99_us;
  Printf.printf
    "  sustained warm req/s (pipelined x%d)   1c %9.0f   4c %9.0f   16c %9.0f\n"
    pipeline_depth rate_1 rate_4 rate_16;
  let failed = ref false in
  if p50_us >= 15.0 then begin
    Printf.printf "FAIL: warm fast-path p50 %.3f us breaches the 15 us gate\n" p50_us;
    failed := true
  end;
  if best < 100_000.0 then begin
    Printf.printf "FAIL: best sustained rate %.0f req/s under the 100k req/s gate\n" best;
    failed := true
  end;
  (match committed with
  | None -> Printf.printf "  (no committed BENCH_fastpath.json baseline; drift gate skipped)\n"
  | Some baseline ->
    Printf.printf "  best vs committed baseline: %.0f / %.0f req/s\n" best baseline;
    if best < 0.4 *. baseline then begin
      Printf.printf "FAIL: best rate fell below 40%% of the committed baseline\n";
      failed := true
    end);
  if !failed then exit 1

(* -- BENCH_quality.json: what shadow evaluation costs and guarantees —
   the warm fast-path hit latency with shadowing disabled must stay
   inside the 15 µs BENCH_fastpath envelope (rate 0 is one float compare
   on the hit path), the rate-1.0 latency is reported for context, and a
   synthetic 1.4x nicsim memory-profile shift must trip the per-NF drift
   detector in a deterministic number of shadow samples.  Shadow
   selection, evaluation order, and the detectors are all deterministic,
   so the detection latency is gated by exact match against the
   committed baseline, not a tolerance band. -- *)

let read_committed_drift_samples () =
  if not (Sys.file_exists "BENCH_quality.json") then None
  else
    let ic = open_in_bin "BENCH_quality.json" in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    let flat = String.concat " " (String.split_on_char '\n' raw) in
    match Serve.Jsonl.of_string flat with
    | Ok j -> Serve.Jsonl.num_member "drift_detect_samples" j
    | Error _ -> None

let run_quality_report () =
  let committed = read_committed_drift_samples () in
  let models =
    let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
    let predictor = Clara.Predictor.train ~epochs:1 ds in
    let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
    { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None }
  in
  let warm_line = {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed"}|} in
  (* warm fast-path hit latency at a given shadow rate (blocks of calls
     bound the 1 µs clock granularity, same method as the fastpath gate) *)
  let hit_p50 ~shadow_rate =
    let server = Serve.Server.create ~cache_capacity:16 ~shadow_rate models in
    ignore (Serve.Server.handle_request server warm_line);
    let block = 64 and n_blocks = 300 in
    let samples = Array.make n_blocks 0.0 in
    for b = 0 to n_blocks - 1 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to block do
        ignore (Serve.Server.handle_request server warm_line)
      done;
      samples.(b) <- (Unix.gettimeofday () -. t0) /. float_of_int block *. 1e6
    done;
    Array.sort compare samples;
    percentile samples 50.0
  in
  let p50_off_us = hit_p50 ~shadow_rate:0.0 in
  let p50_shadow_us = hit_p50 ~shadow_rate:1.0 in
  (* drift scenario: warm an NF whose memory prediction matches the
     unperturbed simulator exactly, shift the simulated memory profile by
     1.4x, and count shadow samples until the detector latches *)
  Nicsim.Perturb.reset ();
  let detect_samples, control_quiet =
    Fun.protect ~finally:Nicsim.Perturb.reset @@ fun () ->
    let server = Serve.Server.create ~cache_capacity:16 ~shadow_rate:1.0 models in
    let q = Serve.Server.quality server in
    let send i =
      ignore
        (Serve.Server.handle_request server
           (Printf.sprintf {|{"id":%d,"cmd":"analyze","nf":"webtcp"}|} i))
    in
    for i = 1 to 24 do send i done;
    Serve.Server.drain_quality server;
    if Serve.Quality.drift_active q "webtcp/memory" then begin
      Printf.printf "FAIL: memory drift detector fired before the perturbation\n";
      exit 1
    end;
    Nicsim.Perturb.set ~memory_scale:1.4 ();
    let budget = ref 0 in
    while (not (Serve.Quality.drift_active q "webtcp/memory")) && !budget < 64 do
      incr budget;
      send (24 + !budget)
    done;
    (* the unshifted compute-error stream must have stayed quiet *)
    (!budget, not (Serve.Quality.drift_active q "webtcp"))
  in
  let oc = open_out "BENCH_quality.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"clara-quality-bench/1\",\n\
    \  \"fast_hit_p50_us_shadow_off\": %.3f,\n\
    \  \"fast_hit_p50_us_shadow_full\": %.3f,\n\
    \  \"drift_nf\": \"webtcp\",\n\
    \  \"drift_detector\": \"memory\",\n\
    \  \"drift_memory_scale\": 1.4,\n\
    \  \"drift_warmup_samples\": 24,\n\
    \  \"drift_detect_samples\": %d\n\
     }\n"
    p50_off_us p50_shadow_us detect_samples;
  close_out oc;
  Printf.printf "Prediction-quality report (also written to BENCH_quality.json):\n";
  Printf.printf "  warm fast-path hit p50   shadow off %8.3f us   shadow 1.0 %8.3f us\n"
    p50_off_us p50_shadow_us;
  Printf.printf "  1.4x memory-profile shift detected after %d shadow samples\n" detect_samples;
  let failed = ref false in
  if p50_off_us >= 15.0 then begin
    Printf.printf "FAIL: shadow-off warm hit p50 %.3f us breaches the 15 us gate\n" p50_off_us;
    failed := true
  end;
  if detect_samples >= 64 then begin
    Printf.printf "FAIL: drift not detected within the 64-sample budget\n";
    failed := true
  end;
  if not control_quiet then begin
    Printf.printf "FAIL: unshifted compute-error stream tripped its detector\n";
    failed := true
  end;
  (match committed with
  | None -> Printf.printf "  (no committed BENCH_quality.json baseline; drift gate skipped)\n"
  | Some baseline ->
    Printf.printf "  detection latency vs committed baseline: %d / %.0f samples\n"
      detect_samples baseline;
    if float_of_int detect_samples <> baseline then begin
      Printf.printf
        "FAIL: detection latency moved from the committed baseline (deterministic pipeline)\n";
      failed := true
    end);
  if !failed then exit 1

(* -- BENCH_flight.json: what always-on flight recording costs — the warm
   fast-path hit p50 with recording on must stay within 10% of recording
   off (the record is a clip check, one allocation and an O(1) ring write
   off the reply bytes already built), and the recording-off p50 must
   stay inside the 15 µs fastpath envelope — which also bounds the
   profiler-off cost of the Prof hook in Span.with_ at ~0 (one atomic
   load).  The profiler-on p50 is reported for context only: on a
   single-core host the ticker domain steals cycles from the serving
   loop, which is the profiler's documented cost model, not a
   regression.  Off/on blocks run interleaved so machine drift cancels
   out of the ratio. -- *)

let read_committed_flight_ratio () =
  if not (Sys.file_exists "BENCH_flight.json") then None
  else
    let ic = open_in_bin "BENCH_flight.json" in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    let flat = String.concat " " (String.split_on_char '\n' raw) in
    match Serve.Jsonl.of_string flat with
    | Ok j -> Serve.Jsonl.num_member "flight_on_ratio" j
    | Error _ -> None

let run_flight_report () =
  let committed = read_committed_flight_ratio () in
  let models =
    let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
    let predictor = Clara.Predictor.train ~epochs:1 ds in
    let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
    { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None }
  in
  (* the pinned trace_id keeps replies byte-comparable across servers
     (generated t-N ids draw from a process-global counter) *)
  let warm_line = {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed","trace_id":"b"}|} in
  let server_off = Serve.Server.create ~cache_capacity:16 ~flight_capacity:0 models in
  let server_on = Serve.Server.create ~cache_capacity:16 ~flight_capacity:64 models in
  let reply_off = Serve.Server.handle_request server_off warm_line in
  let reply_on = Serve.Server.handle_request server_on warm_line in
  (* recording must never perturb the bytes on the wire *)
  let hit_off = Serve.Server.handle_request server_off warm_line in
  let hit_on = Serve.Server.handle_request server_on warm_line in
  if hit_off <> hit_on || reply_off <> reply_on then begin
    Printf.printf "FAIL: flight-on reply differs from flight-off reply\n";
    Printf.printf "  off: %s\n  on:  %s\n" hit_off hit_on;
    exit 1
  end;
  let block = 64 and n_blocks = 300 in
  let time_block server =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to block do
      ignore (Serve.Server.handle_request server warm_line)
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int block *. 1e6
  in
  let s_off = Array.make n_blocks 0.0 and s_on = Array.make n_blocks 0.0 in
  for b = 0 to n_blocks - 1 do
    s_off.(b) <- time_block server_off;
    s_on.(b) <- time_block server_on
  done;
  Array.sort compare s_off;
  Array.sort compare s_on;
  let p50_off = percentile s_off 50.0 and p50_on = percentile s_on 50.0 in
  if Obs.Flight.recorded (Serve.Server.flight server_on) = 0 then begin
    Printf.printf "FAIL: the flight-on server recorded nothing while being timed\n";
    exit 1
  end;
  (* profiler-on context number: same loop with the ticker running *)
  let prof_hz = 200.0 in
  Obs.Prof.start ~hz:prof_hz ();
  let s_prof = Array.make n_blocks 0.0 in
  for b = 0 to n_blocks - 1 do
    s_prof.(b) <- time_block server_off
  done;
  Obs.Prof.stop ();
  Obs.Prof.reset ();
  Array.sort compare s_prof;
  let p50_prof = percentile s_prof 50.0 in
  let ratio = p50_on /. Float.max 1e-9 p50_off in
  let oc = open_out "BENCH_flight.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"clara-flight-bench/1\",\n\
    \  \"flight_off_p50_us\": %.3f,\n\
    \  \"flight_on_p50_us\": %.3f,\n\
    \  \"flight_on_ratio\": %.3f,\n\
    \  \"prof_hz\": %.0f,\n\
    \  \"prof_on_p50_us\": %.3f\n\
     }\n"
    p50_off p50_on ratio prof_hz p50_prof;
  close_out oc;
  Printf.printf "Flight-recorder report (also written to BENCH_flight.json):\n";
  Printf.printf
    "  warm fast-path hit p50   flight off %8.3f us   flight on %8.3f us   (%.3fx)\n" p50_off
    p50_on ratio;
  Printf.printf "  with profiler at %.0f Hz  %8.3f us   (context only, not gated)\n" prof_hz
    p50_prof;
  let failed = ref false in
  if p50_off >= 15.0 then begin
    Printf.printf "FAIL: flight-off warm hit p50 %.3f us breaches the 15 us gate\n" p50_off;
    failed := true
  end;
  (* 10% relative budget with a 0.2 µs absolute grace: at ~2 µs a p50,
     one clock quantum of noise is already 5% *)
  if p50_on > (1.10 *. p50_off) +. 0.2 then begin
    Printf.printf "FAIL: flight-on p50 %.3f us exceeds 1.10x off (%.3f us) + 0.2 us\n" p50_on
      p50_off;
    failed := true
  end;
  (match committed with
  | None -> Printf.printf "  (no committed BENCH_flight.json baseline; drift gate skipped)\n"
  | Some baseline ->
    Printf.printf "  ratio vs committed baseline: %.3f / %.3f\n" ratio baseline;
    if ratio > baseline +. 0.15 then begin
      Printf.printf "FAIL: flight-on ratio drifted %.3f above the committed baseline\n"
        (ratio -. baseline);
      failed := true
    end);
  if !failed then exit 1;
  Printf.printf "PASS: flight recording stays inside the fast-path budget\n"

(* -- BENCH_router.json: what the scale-out front costs and buys — the
   p50 of a warm analyze round trip direct to one worker vs through the
   router (the routed overhead, drift-gated against the committed
   baseline), and sustained pipelined throughput through a 1-worker vs a
   3-worker topology.  The scale-out gate (>= 1.8x) only fires on a box
   with at least as many cores as workers; below that the topologies
   time-slice one core and the run is marked report-only "degraded". -- *)

let router_workers = 3

let read_committed_routed_p50 () =
  if not (Sys.file_exists "BENCH_router.json") then None
  else
    let ic = open_in_bin "BENCH_router.json" in
    let len = in_channel_length ic in
    let raw = really_input_string ic len in
    close_in ic;
    let flat = String.concat " " (String.split_on_char '\n' raw) in
    match Serve.Jsonl.of_string flat with
    | Ok j -> Serve.Jsonl.num_member "routed_p50_us" j
    | Error _ -> None

let run_router_report () =
  let committed = read_committed_routed_p50 () in
  let cores = Domain.recommended_domain_count () in
  let models =
    let ds = Clara.Predictor.synthesize_dataset ~n:6 () in
    let predictor = Clara.Predictor.train ~epochs:1 ds in
    let algo = Clara.Algo_id.train ~corpus:(Clara.Algo_corpus.labeled ~negatives:5 ()) () in
    { Clara.Pipeline.predictor; algo; scaleout = None; colocation = None }
  in
  let bundle = Filename.temp_file "clara_bench_router" ".d" in
  Sys.remove bundle;
  let manifest =
    { Persist.Bundle.seed = 501; epochs = 1;
      corpus_hash = Persist.Bundle.corpus_hash ();
      built_at = "1970-01-01T00:00:00Z" }
  in
  Persist.Bundle.save ~dir:bundle manifest models;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists bundle then begin
        Array.iter (fun f -> Sys.remove (Filename.concat bundle f)) (Sys.readdir bundle);
        Unix.rmdir bundle
      end)
  @@ fun () ->
  let sock k = Printf.sprintf "%s/clara_bench_rt_%d_w%d.sock" (Filename.get_temp_dir_name ()) (Unix.getpid ()) k in
  let connect_with_retry path =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let rec go attempts =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> fd
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when attempts > 0 ->
        Unix.sleepf 0.02;
        go (attempts - 1)
    in
    go 200
  in
  let really_write fd s =
    let n = String.length s in
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write_substring fd s !off (n - !off)
    done
  in
  let read_replies fd buf n =
    let replies = ref 0 in
    while !replies < n do
      let k = Unix.read fd buf 0 (Bytes.length buf) in
      if k = 0 then failwith "router bench: peer closed mid-block";
      for i = 0 to k - 1 do
        if Bytes.get buf i = '\n' then incr replies
      done
    done
  in
  let warm_line = {|{"id":1,"cmd":"analyze","nf":"tcpack","workload":"mixed"}|} ^ "\n" in
  (* sequential round-trip p50 over a connected socket, in blocks (the
     1 µs clock is too coarse for single round trips) *)
  let rtt_p50 path =
    let fd = connect_with_retry path in
    let buf = Bytes.create 65536 in
    for _ = 1 to 32 do
      really_write fd warm_line;
      read_replies fd buf 1
    done;
    let block = 16 and n_blocks = 200 in
    let samples = Array.make n_blocks 0.0 in
    for b = 0 to n_blocks - 1 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to block do
        really_write fd warm_line;
        read_replies fd buf 1
      done;
      samples.(b) <- (Unix.gettimeofday () -. t0) /. float_of_int block *. 1e6
    done;
    Unix.close fd;
    Array.sort compare samples;
    percentile samples 50.0
  in
  (* pipelined throughput: distinct analyze keys so a multi-worker ring
     actually spreads the load *)
  let key_block =
    let names =
      let all = Serve.Server.corpus_names () in
      List.filteri (fun i _ -> i < 8) all
    in
    String.concat ""
      (List.concat_map
         (fun w ->
           List.mapi
             (fun i nf ->
               Printf.sprintf {|{"id":%d,"cmd":"analyze","nf":"%s","workload":"%s"}|} i nf w
               ^ "\n")
             names)
         [ "mixed"; "small" ])
  in
  let block_lines =
    List.length (String.split_on_char '\n' key_block) - 1
  in
  let throughput path ~concurrency ~dur =
    (* warm every key on its pinned worker before timing *)
    let fd = connect_with_retry path in
    let buf = Bytes.create 65536 in
    really_write fd key_block;
    read_replies fd buf block_lines;
    Unix.close fd;
    let client () =
      let fd = connect_with_retry path in
      let buf = Bytes.create 65536 in
      let count = ref 0 in
      let t0 = Unix.gettimeofday () in
      while Unix.gettimeofday () -. t0 < dur do
        really_write fd key_block;
        read_replies fd buf block_lines;
        count := !count + block_lines
      done;
      Unix.close fd;
      !count
    in
    let t0 = Unix.gettimeofday () in
    let clients = List.init concurrency (fun _ -> Domain.spawn client) in
    let total = List.fold_left (fun acc d -> acc + Domain.join d) 0 clients in
    float_of_int total /. (Unix.gettimeofday () -. t0)
  in
  (* one topology: spawn n workers, front them, measure, shut down
     through the front door (the router broadcasts shutdown) *)
  let with_topology n f =
    let fleet =
      List.init n (fun k ->
          Router.Spawn.spawn ~name:(Printf.sprintf "w%d" k) ~socket_path:(sock k) ~bundle ())
    in
    List.iter
      (fun sp ->
        if not (Router.Spawn.wait_ready sp) then begin
          Printf.printf "FAIL: bench worker %s never came up\n" sp.Router.Spawn.sp_name;
          exit 1
        end)
      fleet;
    let front =
      Router.Front.create ~forward_timeout_s:10.0
        ~workers:(List.map (fun sp -> (sp.Router.Spawn.sp_name, sp.Router.Spawn.sp_socket)) fleet)
        ()
    in
    let path = Filename.temp_file "clara_bench_router" ".sock" in
    Sys.remove path;
    let rtr = Domain.spawn (fun () -> Router.Front.run front ~socket_path:path) in
    let out = f path in
    let fd = connect_with_retry path in
    let bye = {|{"cmd":"shutdown"}|} ^ "\n" in
    really_write fd bye;
    ignore (Unix.read fd (Bytes.create 256) 0 256);
    Unix.close fd;
    Domain.join rtr;
    List.iter Router.Spawn.wait fleet;
    List.iter (fun sp -> try Sys.remove sp.Router.Spawn.sp_socket with Sys_error _ -> ()) fleet;
    out
  in
  (* direct baseline: one worker, no router in the path *)
  let lone =
    Router.Spawn.spawn ~name:"direct" ~socket_path:(sock 9) ~bundle ()
  in
  if not (Router.Spawn.wait_ready lone) then begin
    Printf.printf "FAIL: bench worker direct never came up\n";
    exit 1
  end;
  let direct_p50 = rtt_p50 lone.Router.Spawn.sp_socket in
  Router.Spawn.terminate lone;
  Router.Spawn.wait lone;
  (try Sys.remove lone.Router.Spawn.sp_socket with Sys_error _ -> ());
  let dur = 0.6 in
  let rate_1w = with_topology 1 (fun path -> throughput path ~concurrency:4 ~dur) in
  let routed_p50, rate_3w =
    with_topology router_workers (fun path ->
        let p50 = rtt_p50 path in
        (p50, throughput path ~concurrency:4 ~dur))
  in
  let overhead = routed_p50 -. direct_p50 in
  let scale = rate_3w /. Float.max 1.0 rate_1w in
  let degraded = cores < router_workers in
  let oc = open_out "BENCH_router.json" in
  Printf.fprintf oc
    "{\n\
    \  \"schema\": \"clara-router-bench/1\",\n\
    \  \"cores\": %d,\n\
    \  \"workers\": %d,\n\
    \  \"direct_p50_us\": %.3f,\n\
    \  \"routed_p50_us\": %.3f,\n\
    \  \"routed_overhead_us\": %.3f,\n\
    \  \"block_lines\": %d,\n\
    \  \"reqs_per_s_1w\": %.0f,\n\
    \  \"reqs_per_s_3w\": %.0f,\n\
    \  \"scaleout_x\": %.3f%s\n\
     }\n"
    cores router_workers direct_p50 routed_p50 overhead block_lines rate_1w rate_3w scale
    (if degraded then ",\n  \"degraded\": true" else "");
  close_out oc;
  Printf.printf "Router report (also written to BENCH_router.json):\n";
  Printf.printf "  warm analyze round trip   direct %8.3f us   routed %8.3f us   (+%.3f us)\n"
    direct_p50 routed_p50 overhead;
  Printf.printf
    "  sustained warm req/s (x%d keys, 4 clients)   1 worker %9.0f   %d workers %9.0f   \
     (%.2fx)\n"
    block_lines rate_1w router_workers rate_3w scale;
  let failed = ref false in
  if routed_p50 >= 2000.0 then begin
    Printf.printf "FAIL: routed warm p50 %.3f us breaches the 2 ms sanity gate\n" routed_p50;
    failed := true
  end;
  if degraded then
    Printf.printf
      "  (%d core(s) < %d workers: topologies time-slice one core, so the %.1fx scale-out \
       gate is reported as \"degraded\", not enforced)\n"
      cores router_workers 1.8
  else if scale < 1.8 then begin
    Printf.printf "FAIL: %d-worker throughput only %.2fx a single worker (gate 1.8x)\n"
      router_workers scale;
    failed := true
  end;
  (match committed with
  | None -> Printf.printf "  (no committed BENCH_router.json baseline; drift gate skipped)\n"
  | Some baseline ->
    Printf.printf "  routed p50 vs committed baseline: %.3f / %.3f us\n" routed_p50 baseline;
    if routed_p50 > 3.0 *. baseline then begin
      Printf.printf "FAIL: routed p50 drifted above 3x the committed baseline\n";
      failed := true
    end);
  if !failed then exit 1;
  Printf.printf "PASS: routed overhead and scale-out inside budget\n"

(* Peel `--trace FILE` / `--metrics FILE` off argv (any position), enable
   span recording when tracing, and flush both files when the run ends. *)
let with_obs_flags args f =
  let trace = ref None and metrics = ref None in
  let rec strip = function
    | "--trace" :: file :: rest ->
      trace := Some file;
      strip rest
    | "--metrics" :: file :: rest ->
      metrics := Some file;
      strip rest
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  let rest = strip args in
  if !trace <> None then Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Option.iter Obs.Span.write_chrome !trace;
      Option.iter Obs.Metrics.write_file !metrics)
    (fun () -> f rest)

let () =
  (* in a re-exec'd router-bench worker child this serves and exits *)
  Router.Spawn.worker_main_if_requested ();
  with_obs_flags (List.tl (Array.to_list Sys.argv)) @@ fun args ->
  match "main.exe" :: args with
  | [] | _ :: [] -> run_all ()
  | _ :: [ "list" ] -> usage ()
  | _ :: [ "micro" ] -> run_micro ()
  | _ :: [ "parallel" ] -> run_parallel_report ()
  | _ :: [ "serve" ] -> run_serve_report ()
  | _ :: [ "obs" ] -> run_obs_report ()
  | _ :: [ "robust" ] -> run_robust_report ()
  | _ :: [ "fastpath" ] -> run_fastpath_report ()
  | _ :: [ "quality" ] -> run_quality_report ()
  | _ :: [ "flight" ] -> run_flight_report ()
  | _ :: [ "router" ] -> run_router_report ()
  | _ :: ids ->
    List.iter
      (fun id ->
        match Experiments.Registry.find id with
        | Some e -> e.Experiments.Registry.run ()
        | None ->
          Printf.printf "unknown experiment %s\n" id;
          usage ();
          exit 1)
      ids
